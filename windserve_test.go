package windserve_test

import (
	"strings"
	"testing"

	"windserve"
)

func TestNewConfigAllModels(t *testing.T) {
	for _, name := range windserve.Models() {
		cfg, err := windserve.NewConfig(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if cfg.Model.Name != name {
			t.Errorf("config model = %s", cfg.Model.Name)
		}
		if cfg.SLO.TTFT <= 0 || cfg.SLO.TPOT <= 0 {
			t.Errorf("%s: SLO not set", name)
		}
	}
	if _, err := windserve.NewConfig("GPT-4"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunAllSystems(t *testing.T) {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	reqs := windserve.GenerateTrace(windserve.ShareGPT(), 3, cfg, 120, 7)
	for _, sys := range windserve.Systems() {
		res, err := windserve.Run(sys, cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if res.Unfinished != 0 {
			t.Errorf("%s: %d unfinished", sys, res.Unfinished)
		}
		if res.Summary.Requests != 120 {
			t.Errorf("%s: %d requests summarized", sys, res.Summary.Requests)
		}
	}
	if _, err := windserve.Run("nonsense", cfg, reqs); err == nil {
		t.Error("unknown system accepted")
	}
}

func TestCompareDefaults(t *testing.T) {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	reqs := windserve.GenerateTrace(windserve.ShareGPT(), 2, cfg, 80, 3)
	results, err := windserve.Compare(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	names := []string{"vLLM", "DistServe", "WindServe"}
	for i, res := range results {
		if !strings.Contains(res.System, names[i]) {
			t.Errorf("result %d = %s, want %s", i, res.System, names[i])
		}
	}
}

func TestGenerateTraceRespectsModelContext(t *testing.T) {
	cfg, err := windserve.NewConfig("OPT-13B") // 2048-token context
	if err != nil {
		t.Fatal(err)
	}
	reqs := windserve.GenerateTrace(windserve.LongBench(), 1, cfg, 500, 5)
	for _, r := range reqs {
		if r.TotalTokens() > 2048 {
			t.Fatalf("request %d exceeds model context: %d", r.ID, r.TotalTokens())
		}
	}
}

func TestFixedWorkload(t *testing.T) {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	reqs := windserve.GenerateTrace(windserve.FixedWorkload(256, 16, 2048), 1, cfg, 10, 1)
	for _, r := range reqs {
		if r.PromptTokens != 256 || r.OutputTokens != 16 {
			t.Fatalf("fixed workload request = %+v", r)
		}
	}
}
