#!/usr/bin/env bash
# Regenerates BENCH_sim.json: kernel micro-benchmarks (ns/op, allocs/op),
# per-exhibit regeneration cost, and windbench serial-vs-parallel wall
# clock. Run from anywhere in the repo:
#
#   scripts/bench.sh [output.json]
#
# The committed BENCH_sim.json was produced by this script; the host's
# core count is recorded alongside the numbers, since the parallel
# speedup is bounded by it (on a 1-core host serial == parallel).
set -euo pipefail
cd "$(dirname "$0")/.."

out=${1:-BENCH_sim.json}
micro_txt=$(mktemp)
exhibit_txt=$(mktemp)
trap 'rm -f "$micro_txt" "$exhibit_txt"' EXIT

echo "== micro-benchmarks (sim, metrics, perf) ==" >&2
go test -run '^$' -bench 'SimulatorScheduleFire|Summarize|OpenIDs|IterTime' \
    -benchmem ./internal/sim ./internal/metrics ./internal/perf | tee "$micro_txt" >&2

echo "== exhibit benchmarks (one full regeneration each) ==" >&2
go test -run '^$' -bench . -benchmem -benchtime 2x . | tee "$exhibit_txt" >&2

echo "== windbench wall clock: serial vs parallel ==" >&2
go build -o /tmp/windbench.bench ./cmd/windbench
t0=$(date +%s.%N)
/tmp/windbench.bench -n 300 -parallel 1 all > /tmp/windbench.serial.txt
t1=$(date +%s.%N)
/tmp/windbench.bench -n 300 all > /tmp/windbench.parallel.txt
t2=$(date +%s.%N)
cmp /tmp/windbench.serial.txt /tmp/windbench.parallel.txt \
    || { echo "bench.sh: parallel output differs from serial" >&2; exit 1; }
serial=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
parallel=$(echo "$t2 $t1" | awk '{printf "%.3f", $1 - $2}')
echo "serial ${serial}s  parallel ${parallel}s  ($(nproc) cores)" >&2

MICRO="$micro_txt" EXHIBIT="$exhibit_txt" SERIAL="$serial" PARALLEL="$parallel" OUT="$out" \
python3 - <<'EOF'
import json, os, re

def parse(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op'
                     r'(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?', line)
        if not m:
            continue
        row = {"name": m.group(1), "iterations": int(m.group(2)),
               "ns_per_op": float(m.group(3))}
        if m.group(5) is not None:
            row["bytes_per_op"] = float(m.group(4))
            row["allocs_per_op"] = int(m.group(5))
        rows.append(row)
    return rows

serial = float(os.environ["SERIAL"])
parallel = float(os.environ["PARALLEL"])
doc = {
    "description": "Simulation-kernel benchmarks; regenerate with scripts/bench.sh",
    "host_cores": os.cpu_count(),
    "micro": parse(os.environ["MICRO"]),
    "exhibits": parse(os.environ["EXHIBIT"]),
    "windbench_all": {
        "args": "-n 300 all",
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "speedup": round(serial / parallel, 3) if parallel else None,
        "note": "speedup is bounded by host_cores; on a 1-core host the "
                "pool degenerates to the serial loop and speedup ~= 1",
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f'wrote {os.environ["OUT"]}')
EOF
