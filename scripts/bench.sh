#!/usr/bin/env bash
# Regenerates BENCH_sim.json: kernel micro-benchmarks (ns/op, allocs/op),
# per-exhibit regeneration cost, and windbench serial-vs-parallel wall
# clock. Run from anywhere in the repo:
#
#   scripts/bench.sh [--smoke] [output.json]
#
# --smoke shrinks every run (and skips the per-exhibit benchmarks) so the
# whole script finishes in CI minutes while still writing a JSON with the
# full schema — the bench-sanity job runs it and checks the fields. Smoke
# numbers are not representative; the default output then becomes
# BENCH_sim.smoke.json so the committed capture is never clobbered.
#
# The committed BENCH_sim.json was produced by this script; the host's
# core count is recorded alongside the numbers, since the parallel
# speedup is bounded by it (on a 1-core host serial == parallel).
set -euo pipefail
cd "$(dirname "$0")/.."

smoke=0
if [[ "${1:-}" == "--smoke" ]]; then
    smoke=1
    shift
fi
if [[ $smoke -eq 1 ]]; then
    out=${1:-BENCH_sim.smoke.json}
else
    out=${1:-BENCH_sim.json}
fi
micro_txt=$(mktemp)
exhibit_txt=$(mktemp)
mega_txt=$(mktemp)
fleet_txt=$(mktemp)
scale_txt=$(mktemp)
trap 'rm -f "$micro_txt" "$exhibit_txt" "$mega_txt" "$fleet_txt" "$scale_txt"' EXIT

# Smoke sizes: enough requests for every parser below to find rows,
# small enough for CI. The full capture uses the exhibits' defaults.
benchtime=1s
all_n=300
mega_args=(ext-mega)
fleet_args=(ext-fleet-chaos)
scale_args=(ext-fleet-scale)
if [[ $smoke -eq 1 ]]; then
    benchtime=100x
    all_n=120
    mega_args=(-n 20000 ext-mega)
    fleet_args=(-n 4000 -fleet 8 ext-fleet-chaos)
    scale_args=(-n 20000 ext-fleet-scale)
fi

echo "== micro-benchmarks (sim, metrics, perf, stats) ==" >&2
go test -run '^$' -bench 'SimulatorScheduleFire|Summarize|OpenIDs|IterTime|EventQueue|ServeSteady|P2Add|PercentilesOf' \
    -benchmem -benchtime "$benchtime" ./internal/sim ./internal/metrics ./internal/perf ./internal/stats | tee "$micro_txt" >&2

if [[ $smoke -eq 1 ]]; then
    echo "== exhibit benchmarks skipped (--smoke) ==" >&2
    : > "$exhibit_txt"
else
    echo "== exhibit benchmarks (one full regeneration each) ==" >&2
    go test -run '^$' -bench . -benchmem -benchtime 2x . | tee "$exhibit_txt" >&2
fi

echo "== windbench wall clock: serial vs parallel ==" >&2
go build -o /tmp/windbench.bench ./cmd/windbench
t0=$(date +%s.%N)
/tmp/windbench.bench -n "$all_n" -parallel 1 all > /tmp/windbench.serial.txt
t1=$(date +%s.%N)
/tmp/windbench.bench -n "$all_n" all > /tmp/windbench.parallel.txt
t2=$(date +%s.%N)
cmp /tmp/windbench.serial.txt /tmp/windbench.parallel.txt \
    || { echo "bench.sh: parallel output differs from serial" >&2; exit 1; }
serial=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
parallel=$(echo "$t2 $t1" | awk '{printf "%.3f", $1 - $2}')
echo "serial ${serial}s  parallel ${parallel}s  ($(nproc) cores)" >&2

echo "== ext-mega: million-request streaming horizon ==" >&2
/tmp/windbench.bench "${mega_args[@]}" | tee "$mega_txt" >&2

echo "== ext-fleet-chaos: 16-replica fleet under seeded chaos ==" >&2
t5=$(date +%s.%N)
/tmp/windbench.bench "${fleet_args[@]}" | tee "$fleet_txt" >&2
t6=$(date +%s.%N)
fleet_wall=$(echo "$t6 $t5" | awk '{printf "%.3f", $1 - $2}')
echo "ext-fleet-chaos wall clock ${fleet_wall}s" >&2

echo "== ext-fleet-scale: 64-replica fleet across shard counts ==" >&2
/tmp/windbench.bench "${scale_args[@]}" | tee "$scale_txt" >&2
grep -q "byte-identical virtual-time results" "$scale_txt" \
    || { echo "bench.sh: sharded fleet results diverged" >&2; exit 1; }
grep -q "results byte-identical" "$scale_txt" \
    || { echo "bench.sh: adaptive vs fixed lookahead results diverged" >&2; exit 1; }
grep -q "single-testbed shard counts produced byte-identical results" "$scale_txt" \
    || { echo "bench.sh: single-testbed sharded results diverged" >&2; exit 1; }

# Physical core count from the host, not Python's os.cpu_count(): under a
# container cpuset/affinity mask the latter reports the mask width (often
# 1), which misdocuments the machine the numbers came from. gomaxprocs is
# what the Go scheduler actually got — the bound on any within-run
# (shards) or across-run (-parallel) speedup measured above.
host_cores=$(nproc --all 2>/dev/null || getconf _NPROCESSORS_CONF)
gomaxprocs=${GOMAXPROCS:-$(nproc)}

MICRO="$micro_txt" EXHIBIT="$exhibit_txt" MEGA="$mega_txt" FLEET="$fleet_txt" \
SCALE="$scale_txt" \
FLEET_WALL="$fleet_wall" SERIAL="$serial" PARALLEL="$parallel" OUT="$out" \
HOST_CORES="$host_cores" GOMAXPROCS_USED="$gomaxprocs" SMOKE="$smoke" \
python3 - <<'EOF'
import json, os, re

def parse(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op'
                     r'(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?', line)
        if not m:
            continue
        row = {"name": m.group(1), "iterations": int(m.group(2)),
               "ns_per_op": float(m.group(3))}
        if m.group(5) is not None:
            row["bytes_per_op"] = float(m.group(4))
            row["allocs_per_op"] = int(m.group(5))
        rows.append(row)
    return rows

def parse_mega(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(\S+)\s+(streaming|exact)\s+(\d+)\s+([\d.]+)\s+([\d.]+)'
                     r'\s+([\d.]+)\s+([\d.]+)\s+([\d.]+)%', line)
        if not m:
            continue
        rows.append({
            "system": m.group(1), "mode": m.group(2),
            "requests": int(m.group(3)),
            "sim_seconds": float(m.group(4)),
            "wall_seconds": float(m.group(5)),
            "sim_req_per_sec": float(m.group(6)),
            "peak_heap_mb": float(m.group(7)),
            "slo_attainment": float(m.group(8)) / 100,
        })
    return rows

def parse_fleet(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(round-robin|least-loaded|weighted)\s+(on|off)\s+(\d+)'
                     r'\s+(\d+)\s+(\d+)\s+([\d.]+)%\s+([\d.]+)\s+(\d+)\s+(\d+)'
                     r'\s+(\d+)\s+(\S+)\s+([\d.]+)', line)
        if not m:
            continue
        rows.append({
            "policy": m.group(1), "chaos": m.group(2) == "on",
            "completed": int(m.group(3)),
            "aborted": int(m.group(4)), "rejected": int(m.group(5)),
            "slo_attainment": float(m.group(6)) / 100,
            "goodput_rps": float(m.group(7)),
            "failovers": int(m.group(8)), "recovered": int(m.group(9)),
            "wasted_tokens": int(m.group(10)),
            "recovery_s": m.group(11), "brownout_s": float(m.group(12)),
        })
    return rows

def parse_scale(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(\d+)\s+([\d.]+)\s+(\d+)\s+([\d.]+)x\s+(\d+)\s+(\d+)'
                     r'\s+([0-9a-f]+)\s+(\d+)\s+(\d+)\s*$', line)
        if not m:
            continue
        rows.append({
            "shards": int(m.group(1)),
            "wall_seconds": float(m.group(2)),
            "sim_req_per_sec": int(m.group(3)),
            "speedup": float(m.group(4)),
            "windows": int(m.group(5)),
            "crossings": int(m.group(6)),
            "result_digest": m.group(7),
            "completed": int(m.group(8)),
            "unfinished": int(m.group(9)),
        })
    return rows

def parse_lookahead(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(adaptive|fixed)\s+(\d+)\s+(\d+)\s+(\d+)'
                     r'\s+([0-9a-f]+)\s+(\d+)\s+(\d+)\s*$', line)
        if not m:
            continue
        rows.append({
            "lookahead": m.group(1),
            "windows": int(m.group(2)),
            "crossings": int(m.group(3)),
            "solo_windows": int(m.group(4)),
            "result_digest": m.group(5),
            "completed": int(m.group(6)),
            "unfinished": int(m.group(7)),
        })
    return rows

def parse_testbed(path):
    rows = []
    for line in open(path):
        m = re.match(r'^(\d+)\s+(\d+)\s+(\d+)\s+([0-9a-f]+)'
                     r'\s+(\d+)\s+(\d+)\s*$', line)
        if not m:
            continue
        rows.append({
            "shards": int(m.group(1)),
            "windows": int(m.group(2)),
            "crossings": int(m.group(3)),
            "result_digest": m.group(4),
            "completed": int(m.group(5)),
            "unfinished": int(m.group(6)),
        })
    return rows

micro = parse(os.environ["MICRO"])
ns = {r["name"]: r["ns_per_op"] for r in micro}
heap_ns = ns.get("BenchmarkEventQueueHeap10k")
cal_ns = ns.get("BenchmarkEventQueueCalendar10k")

serial = float(os.environ["SERIAL"])
parallel = float(os.environ["PARALLEL"])
gomaxprocs = int(os.environ["GOMAXPROCS_USED"])
scale_rows = parse_scale(os.environ["SCALE"])
lookahead_rows = parse_lookahead(os.environ["SCALE"])
by_mode = {r["lookahead"]: r for r in lookahead_rows}
crossing_reduction = None
if "adaptive" in by_mode and "fixed" in by_mode:
    ad, fx = by_mode["adaptive"]["crossings"], by_mode["fixed"]["crossings"]
    crossing_reduction = round(fx / ad, 1) if ad else None
scale_note = (
    "wall_seconds/sim_req_per_sec/speedup are host measurements; "
    "result_digest fingerprints the virtual-time Result and is identical "
    "across rows (sharded == sequential, byte for byte). Speedup is "
    "bounded by min(shards, gomaxprocs). ")
if gomaxprocs <= 1:
    scale_note += (
        f"This capture ran with gomaxprocs={gomaxprocs}: the shard workers "
        "serialize onto one core, so the barrier and cross-shard message "
        "traffic show as pure overhead (speedup < 1) and the >=4x-at-8-"
        "shards / 1M+ sim req/s targets are unreachable here by "
        "construction — regenerate on a multicore host to measure real "
        "scaling.")
else:
    scale_note += (
        f"This capture ran with gomaxprocs={gomaxprocs}; compare the "
        "8-shard row against 1-shard for the within-run scaling factor.")

doc = {
    "description": "Simulation-kernel benchmarks; regenerate with scripts/bench.sh",
    "smoke": os.environ["SMOKE"] == "1",
    "host_cores": int(os.environ["HOST_CORES"]),
    "gomaxprocs": gomaxprocs,
    "micro": micro,
    "event_queue_10k": {
        "heap_ns_per_op": heap_ns,
        "calendar_ns_per_op": cal_ns,
        "speedup": round(heap_ns / cal_ns, 2) if heap_ns and cal_ns else None,
        "note": "hold model with 10k pending events; the calendar queue's "
                "O(1) expected schedule/fire replaces the binary heap's "
                "O(log n) sift",
    },
    "ext_mega": {
        "args": "ext-mega (1,000,000 requests, streaming source + recorder)",
        "rows": parse_mega(os.environ["MEGA"]),
        "note": "peak_heap_mb is the high-water HeapAlloc sampled every 5ms; "
                "streaming rows hold O(in-flight + retained records) "
                "regardless of horizon length",
    },
    "ext_fleet_chaos": {
        "args": "ext-fleet-chaos (16 replicas, 100,000 requests, "
                "3 policies x {clean, chaos})",
        "wall_seconds": float(os.environ["FLEET_WALL"]),
        "requests_per_wall_second": round(
            sum(r["completed"] + r["aborted"] + r["rejected"]
                for r in parse_fleet(os.environ["FLEET"]))
            / float(os.environ["FLEET_WALL"]), 1),
        "rows": parse_fleet(os.environ["FLEET"]),
        "note": "goodput/SLO/recovery are virtual-time quantities and "
                "byte-identical per seed; requests_per_wall_second is the "
                "simulator's sustained throughput across all six runs",
    },
    "ext_fleet_scale": {
        "args": "ext-fleet-scale (64 replicas, 1,000,000 streamed requests, "
                "least-loaded, shards in {1, 4, 8, NumCPU})",
        "rows": scale_rows,
        "note": scale_note,
        "lookahead": {
            "rows": lookahead_rows,
            "crossing_reduction": crossing_reduction,
            "note": "adaptive vs fixed barrier mode on the idle-heavy "
                    "diurnal scenario (4 replicas, 4 shards): identical "
                    "result_digest proves the modes byte-identical; "
                    "crossing_reduction is fixed crossings / adaptive "
                    "crossings — the factor by which the adaptive barrier "
                    "avoids full cross-shard synchronization. windows/"
                    "crossings/solo_windows are virtual-time quantities, "
                    "host-independent",
        },
        "testbed": {
            "rows": parse_testbed(os.environ["SCALE"]),
            "note": "one DistServe testbed (2P/2D) sharded across its "
                    "instances with the KV-transfer links as the cross-"
                    "shard wire; identical result_digest across shard "
                    "counts including 1",
        },
    },
    "exhibits": parse(os.environ["EXHIBIT"]),
    "windbench_all": {
        "args": "-n 300 all",
        "serial_seconds": serial,
        "parallel_seconds": parallel,
        "speedup": round(serial / parallel, 3) if parallel else None,
        "note": "speedup is bounded by gomaxprocs; on a 1-core host the "
                "pool degenerates to the serial loop and speedup ~= 1",
    },
}
with open(os.environ["OUT"], "w") as f:
    json.dump(doc, f, indent=2)
    f.write("\n")
print(f'wrote {os.environ["OUT"]}')
EOF
