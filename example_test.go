package windserve_test

import (
	"bytes"
	"fmt"
	"log"

	"windserve"
)

// Serve a fixed workload with WindServe and inspect the outcome. A fixed
// dataset (identical prompt/output lengths) keeps the output stable.
func Example() {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		log.Fatal(err)
	}
	trace := windserve.GenerateTrace(windserve.FixedWorkload(512, 64, 2048), 1, cfg, 50, 42)
	res, err := windserve.Run(windserve.SystemWindServe, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s served %d requests, %d unfinished\n", res.System, res.Requests, res.Unfinished)
	fmt.Printf("all within SLO: %v\n", res.Summary.Attainment == 1)
	// Output:
	// WindServe served 50 requests, 0 unfinished
	// all within SLO: true
}

// Compare the paper's three systems on one identical trace.
func ExampleCompare() {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		log.Fatal(err)
	}
	trace := windserve.GenerateTrace(windserve.FixedWorkload(512, 64, 2048), 1, cfg, 40, 7)
	results, err := windserve.Compare(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("%s: %d requests\n", r.System, r.Summary.Requests)
	}
	// Output:
	// vLLM: 40 requests
	// DistServe: 40 requests
	// WindServe: 40 requests
}

// Traces round-trip through JSON so every system sees the same stream.
func ExampleSaveTrace() {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		log.Fatal(err)
	}
	trace := windserve.GenerateTrace(windserve.ShareGPT(), 2, cfg, 5, 1)
	var buf bytes.Buffer
	if err := windserve.SaveTrace(&buf, trace); err != nil {
		log.Fatal(err)
	}
	loaded, err := windserve.LoadTrace(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(loaded) == len(trace))
	// Output:
	// true
}
