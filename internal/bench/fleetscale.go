package bench

import (
	"crypto/sha256"
	"fmt"
	"io"
	"runtime"
	"slices"
	"time"

	"windserve/internal/fleet"
	"windserve/internal/model"
	"windserve/internal/serve"
	"windserve/internal/shard"
	"windserve/internal/workload"
)

// FleetScaleRow is one measurement of the fleet-scale exhibit.
type FleetScaleRow struct {
	// Kind tags which section of the exhibit the row belongs to: "sweep"
	// (shard-count scaling), "lookahead" (adaptive vs fixed on the
	// idle-heavy scenario), or "testbed" (single-testbed sharding).
	Kind   string
	Shards int
	// Mode is the lookahead mode for "lookahead" rows; empty elsewhere.
	Mode string
	// WallSec is host wall-clock time for the run; SimReqPerSec is
	// requests simulated per wall second; Speedup is vs the 1-shard row.
	// These three are the only host-dependent numbers in the exhibit.
	WallSec      float64
	SimReqPerSec float64
	Speedup      float64
	// Windows/Crossings/Solo are the barrier counters: total windows
	// executed, windows that synchronized every shard (full barrier
	// crossings), and windows the coordinator ran alone because all work
	// sat on one shard. Partition-dependent, hence reported out of band —
	// they never enter the Result the digest fingerprints.
	Windows   int64
	Crossings int64
	Solo      int64
	// Digest fingerprints the virtual-time Result (%+v, SHA-256 prefix).
	// Identical digests across rows prove the runs are byte-identical.
	Digest     string
	Completed  int
	Unfinished int
}

// ExpFleetScale is the parallel-in-time scaling exhibit, in three parts:
//
//  1. One fleet configuration (default 64 OPT-13B replicas serving a
//     million streamed ShareGPT requests under least-loaded routing)
//     executed at increasing shard counts — shards ∈ {1, 4, 8, NumCPU} —
//     with every run checked to produce the same virtual-time Result.
//     Wall seconds and sim req/s are host measurements (the one windbench
//     exhibit whose output legitimately varies across machines); the
//     digest column is the determinism proof, and the windows/crossings
//     columns show how often the shards actually synchronized.
//  2. Adaptive vs fixed lookahead on an idle-heavy diurnal workload:
//     both modes must produce byte-identical results while the adaptive
//     barrier, which runs single-shard windows on the coordinator without
//     a cross-shard handshake, crosses far less often.
//  3. Single-testbed sharding: one DistServe testbed's prefill/decode
//     instances partitioned across shard counts, digests compared.
//
// (Extension — not a paper exhibit; excluded from `windbench all`. Size
// with -n and -fleet, pin a single shard count with -shards, pick the
// sweep's barrier mode with -lookahead and its actor layout with
// -placement.)
func ExpFleetScale(o Options, w io.Writer) ([]FleetScaleRow, error) {
	o = o.withDefaults()
	n := o.FleetScaleRequests
	if n <= 0 {
		n = 1_000_000
	}
	replicas := o.FleetScaleReplicas
	if replicas <= 0 {
		replicas = 64
	}

	rcfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	if rcfg.NumPrefill <= 0 {
		rcfg.NumPrefill = 1
	}
	if rcfg.NumDecode <= 0 {
		rcfg.NumDecode = 1
	}
	// A million in-flight records would defeat the point: the streaming
	// recorder keeps memory bounded regardless of n.
	rcfg.Stream = serve.StreamPolicy{Enabled: true, MaxRecords: o.MaxRecords}
	const perGPURate = 3.0
	rate := perGPURate * float64(rcfg.TotalGPUs()) * float64(replicas)
	ds := workload.ShareGPT()
	if ds.MaxContext > model.OPT13B.MaxContext {
		ds.MaxContext = model.OPT13B.MaxContext
	}

	if o.FleetShards < 0 {
		return nil, fmt.Errorf("bench: fleet-scale: negative shard count %d", o.FleetShards)
	}
	sweep := []int{1, 4, 8, runtime.NumCPU()}
	if o.FleetShards > 0 {
		sweep = []int{1, o.FleetShards}
	}
	for i, s := range sweep {
		if s > replicas {
			sweep[i] = replicas // fleet clamps shards to replicas; pre-dedup
		}
	}
	slices.Sort(sweep)
	sweep = slices.Compact(sweep)

	// Runs execute serially — each one owns the whole machine, since
	// wall-clock speedup is the measurement.
	rows := make([]FleetScaleRow, 0, len(sweep)+5)
	var base float64
	for _, shards := range sweep {
		var st shard.Stats
		cfg := fleet.Config{
			Replica:     rcfg,
			NumReplicas: replicas,
			Policy:      "least-loaded",
			Shards:      shards,
			Lookahead:   o.Lookahead,
			Placement:   o.Placement,
			ShardStats:  &st,
		}
		g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: rate}, o.Seed)
		start := time.Now()
		res, err := fleet.RunFrom(cfg, g.Source(n))
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("bench: fleet-scale %d shards: %w", shards, err)
		}
		sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", res)))
		if shards == 1 {
			base = wall
		}
		rows = append(rows, FleetScaleRow{
			Kind:         "sweep",
			Shards:       shards,
			WallSec:      wall,
			SimReqPerSec: float64(res.Requests) / wall,
			Speedup:      base / wall,
			Windows:      st.Windows,
			Crossings:    st.Crossings,
			Solo:         st.SoloWindows,
			Digest:       fmt.Sprintf("%x", sum[:6]),
			Completed:    res.Completed,
			Unfinished:   res.Unfinished,
		})
	}

	fmt.Fprintf(w, "Fleet scale: %d replicas × OPT-13B [%dP,%dD], %d ShareGPT reqs streamed, least-loaded routing, %s lookahead, %s placement; host: %d CPUs, GOMAXPROCS=%d\n",
		replicas, rcfg.NumPrefill, rcfg.NumDecode, n,
		orDefault(o.Lookahead, "adaptive"), orDefault(o.Placement, fleet.PlaceRoundRobin),
		runtime.NumCPU(), runtime.GOMAXPROCS(0))
	tw := table(w)
	fmt.Fprintln(tw, "shards\twall s\tsim req/s\tspeedup\twindows\tcrossings\tresult digest\tcompleted\tunfinished")
	identical := true
	for _, r := range rows {
		if r.Digest != rows[0].Digest {
			identical = false
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.0f\t%.2fx\t%d\t%d\t%s\t%d\t%d\n",
			r.Shards, r.WallSec, r.SimReqPerSec, r.Speedup, r.Windows, r.Crossings, r.Digest, r.Completed, r.Unfinished)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	if identical {
		fmt.Fprintln(w, "all shard counts produced byte-identical virtual-time results")
	} else {
		fmt.Fprintln(w, "WARNING: result digests differ across shard counts — determinism violated")
	}

	la, err := lookaheadSection(o, w, rcfg, n)
	if err != nil {
		return rows, err
	}
	rows = append(rows, la...)

	tb, err := testbedSection(o, w, n)
	if err != nil {
		return rows, err
	}
	return append(rows, tb...), nil
}

// lookaheadSection runs the adaptive-vs-fixed comparison on an idle-heavy
// diurnal workload: long quiet troughs where the fleet's activity sits on
// one shard at a time, so the adaptive barrier's solo-window fast path —
// not available to the fixed grid — carries most of the run.
func lookaheadSection(o Options, w io.Writer, rcfg serve.Config, n int) ([]FleetScaleRow, error) {
	const replicas, shards = 4, 4
	nIdle := n / 10
	if nIdle > 20_000 {
		nIdle = 20_000
	}
	if nIdle < 500 {
		nIdle = 500
	}
	sc, err := workload.ScenarioByName("diurnal")
	if err != nil {
		return nil, err
	}
	// A low mean rate leaves the overnight troughs nearly empty — the
	// regime the adaptive window derivation is for.
	rate := 0.02 * float64(rcfg.TotalGPUs()) * replicas

	rows := make([]FleetScaleRow, 0, 2)
	for _, mode := range []string{"adaptive", "fixed"} {
		var st shard.Stats
		cfg := fleet.Config{
			Replica:     rcfg,
			NumReplicas: replicas,
			Policy:      "least-loaded",
			Shards:      shards,
			Lookahead:   mode,
			ShardStats:  &st,
		}
		res, err := fleet.RunFrom(cfg, sc.Source(nIdle, rate, o.Seed))
		if err != nil {
			return nil, fmt.Errorf("bench: fleet-scale lookahead %s: %w", mode, err)
		}
		sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", res)))
		rows = append(rows, FleetScaleRow{
			Kind: "lookahead", Shards: shards, Mode: mode,
			Windows: st.Windows, Crossings: st.Crossings, Solo: st.SoloWindows,
			Digest:    fmt.Sprintf("%x", sum[:6]),
			Completed: res.Completed, Unfinished: res.Unfinished,
		})
	}

	fmt.Fprintf(w, "\nLookahead: %d replicas on diurnal (idle-heavy), %d reqs @ %.2f req/s, %d shards\n",
		replicas, nIdle, rate, shards)
	tw := table(w)
	fmt.Fprintln(tw, "lookahead\twindows\tcrossings\tsolo\tresult digest\tcompleted\tunfinished")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%s\t%d\t%d\n",
			r.Mode, r.Windows, r.Crossings, r.Solo, r.Digest, r.Completed, r.Unfinished)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	ad, fx := rows[0], rows[1]
	switch {
	case ad.Digest != fx.Digest:
		fmt.Fprintln(w, "WARNING: adaptive and fixed lookahead results differ — determinism violated")
	case ad.Crossings == 0:
		fmt.Fprintf(w, "adaptive lookahead crossed the barrier 0 times (fixed: %d); results byte-identical\n", fx.Crossings)
	default:
		fmt.Fprintf(w, "adaptive lookahead crossed the barrier %.1fx fewer times than fixed (%d vs %d); results byte-identical\n",
			float64(fx.Crossings)/float64(ad.Crossings), ad.Crossings, fx.Crossings)
	}
	return rows, nil
}

// testbedSection shards one DistServe testbed — not a fleet — across
// shard counts: 2 prefill + 2 decode instances with the KV-transfer links
// as the cross-shard wire, digests compared across every count.
func testbedSection(o Options, w io.Writer, n int) ([]FleetScaleRow, error) {
	nTB := n / 100
	if nTB > 5_000 {
		nTB = 5_000
	}
	if nTB < 200 {
		nTB = 200
	}
	scfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	scfg.NumPrefill, scfg.NumDecode = 2, 2
	const perGPURate = 3.0
	rate := perGPURate * float64(scfg.TotalGPUs())
	ds := workload.ShareGPT()
	if ds.MaxContext > model.OPT13B.MaxContext {
		ds.MaxContext = model.OPT13B.MaxContext
	}

	rows := make([]FleetScaleRow, 0, 3)
	for _, shards := range []int{1, 2, 4} {
		var st shard.Stats
		cfg := serve.ShardedConfig{
			Serve:      scfg,
			Shards:     shards,
			Lookahead:  o.Lookahead,
			ShardStats: &st,
		}
		g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: rate}, o.Seed)
		res, err := serve.RunShardedDistServeFrom(cfg, g.Source(nTB))
		if err != nil {
			return nil, fmt.Errorf("bench: fleet-scale testbed %d shards: %w", shards, err)
		}
		sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", res)))
		rows = append(rows, FleetScaleRow{
			Kind: "testbed", Shards: shards,
			Windows: st.Windows, Crossings: st.Crossings, Solo: st.SoloWindows,
			Digest:    fmt.Sprintf("%x", sum[:6]),
			Completed: len(res.Records), Unfinished: res.Unfinished,
		})
	}

	fmt.Fprintf(w, "\nSingle-testbed sharding: one DistServe testbed (2P/2D OPT-13B), %d reqs @ %.0f req/s, xfer links as the cross-shard wire\n",
		nTB, rate)
	tw := table(w)
	fmt.Fprintln(tw, "shards\twindows\tcrossings\tresult digest\tcompleted\tunfinished")
	identical := true
	for _, r := range rows {
		if r.Digest != rows[0].Digest {
			identical = false
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%d\t%d\n",
			r.Shards, r.Windows, r.Crossings, r.Digest, r.Completed, r.Unfinished)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	if identical {
		fmt.Fprintln(w, "single-testbed shard counts produced byte-identical results")
	} else {
		fmt.Fprintln(w, "WARNING: single-testbed result digests differ across shard counts — determinism violated")
	}
	return rows, nil
}

// orDefault returns s, or def when s is empty.
func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
