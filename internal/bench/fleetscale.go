package bench

import (
	"crypto/sha256"
	"fmt"
	"io"
	"runtime"
	"slices"
	"time"

	"windserve/internal/fleet"
	"windserve/internal/model"
	"windserve/internal/serve"
	"windserve/internal/workload"
)

// FleetScaleRow is one shard-count measurement of the fleet-scale exhibit.
type FleetScaleRow struct {
	Shards int
	// WallSec is host wall-clock time for the run; SimReqPerSec is
	// requests simulated per wall second; Speedup is vs the 1-shard row.
	// These three are the only host-dependent numbers in the exhibit.
	WallSec      float64
	SimReqPerSec float64
	Speedup      float64
	// Digest fingerprints the virtual-time Result (%+v, SHA-256 prefix).
	// Identical digests across rows prove the sharded runs are
	// byte-identical to the sequential one.
	Digest     string
	Completed  int
	Unfinished int
}

// ExpFleetScale is the parallel-in-time scaling exhibit: one fleet
// configuration (default 64 OPT-13B replicas serving a million streamed
// ShareGPT requests under least-loaded routing) executed at increasing
// shard counts — shards ∈ {1, 4, 8, NumCPU} — with every run checked to
// produce the same virtual-time Result. Wall seconds and sim req/s are
// host measurements (the one windbench exhibit whose output legitimately
// varies across machines); the digest column is the determinism proof.
// (Extension — not a paper exhibit; excluded from `windbench all`. Size
// with -n and -fleet, pin a single shard count with -shards.)
func ExpFleetScale(o Options, w io.Writer) ([]FleetScaleRow, error) {
	o = o.withDefaults()
	n := o.FleetScaleRequests
	if n <= 0 {
		n = 1_000_000
	}
	replicas := o.FleetScaleReplicas
	if replicas <= 0 {
		replicas = 64
	}

	rcfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	if rcfg.NumPrefill <= 0 {
		rcfg.NumPrefill = 1
	}
	if rcfg.NumDecode <= 0 {
		rcfg.NumDecode = 1
	}
	// A million in-flight records would defeat the point: the streaming
	// recorder keeps memory bounded regardless of n.
	rcfg.Stream = serve.StreamPolicy{Enabled: true, MaxRecords: o.MaxRecords}
	const perGPURate = 3.0
	rate := perGPURate * float64(rcfg.TotalGPUs()) * float64(replicas)
	ds := workload.ShareGPT()
	if ds.MaxContext > model.OPT13B.MaxContext {
		ds.MaxContext = model.OPT13B.MaxContext
	}

	if o.FleetShards < 0 {
		return nil, fmt.Errorf("bench: fleet-scale: negative shard count %d", o.FleetShards)
	}
	sweep := []int{1, 4, 8, runtime.NumCPU()}
	if o.FleetShards > 0 {
		sweep = []int{1, o.FleetShards}
	}
	for i, s := range sweep {
		if s > replicas {
			sweep[i] = replicas // fleet clamps shards to replicas; pre-dedup
		}
	}
	slices.Sort(sweep)
	sweep = slices.Compact(sweep)

	// Runs execute serially — each one owns the whole machine, since
	// wall-clock speedup is the measurement.
	rows := make([]FleetScaleRow, 0, len(sweep))
	var base float64
	for _, shards := range sweep {
		cfg := fleet.Config{
			Replica:     rcfg,
			NumReplicas: replicas,
			Policy:      "least-loaded",
			Shards:      shards,
		}
		g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: rate}, o.Seed)
		start := time.Now()
		res, err := fleet.RunFrom(cfg, g.Source(n))
		wall := time.Since(start).Seconds()
		if err != nil {
			return nil, fmt.Errorf("bench: fleet-scale %d shards: %w", shards, err)
		}
		sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", res)))
		if shards == 1 {
			base = wall
		}
		rows = append(rows, FleetScaleRow{
			Shards:       shards,
			WallSec:      wall,
			SimReqPerSec: float64(res.Requests) / wall,
			Speedup:      base / wall,
			Digest:       fmt.Sprintf("%x", sum[:6]),
			Completed:    res.Completed,
			Unfinished:   res.Unfinished,
		})
	}

	fmt.Fprintf(w, "Fleet scale: %d replicas × OPT-13B [%dP,%dD], %d ShareGPT reqs streamed, least-loaded routing; host: %d CPUs, GOMAXPROCS=%d\n",
		replicas, rcfg.NumPrefill, rcfg.NumDecode, n, runtime.NumCPU(), runtime.GOMAXPROCS(0))
	tw := table(w)
	fmt.Fprintln(tw, "shards\twall s\tsim req/s\tspeedup\tresult digest\tcompleted\tunfinished")
	identical := true
	for _, r := range rows {
		if r.Digest != rows[0].Digest {
			identical = false
		}
		fmt.Fprintf(tw, "%d\t%.1f\t%.0f\t%.2fx\t%s\t%d\t%d\n",
			r.Shards, r.WallSec, r.SimReqPerSec, r.Speedup, r.Digest, r.Completed, r.Unfinished)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	if identical {
		fmt.Fprintln(w, "all shard counts produced byte-identical virtual-time results")
	} else {
		fmt.Fprintln(w, "WARNING: result digests differ across shard counts — determinism violated")
	}
	return rows, nil
}
