package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"windserve/internal/model"
	"windserve/internal/serve"
	"windserve/internal/workload"
)

// MegaRow is one long-horizon run's digest: how fast the simulator chews
// through requests and how much memory it holds while doing so.
type MegaRow struct {
	System       string
	Mode         string // "streaming" or "exact"
	Requests     int
	SimSeconds   float64 // virtual time simulated
	WallSeconds  float64
	SimReqPerSec float64 // requests simulated per wall-clock second
	PeakHeapMB   float64 // high-water HeapAlloc over the run
	Attainment   float64
	TTFTP50Ms    float64
	TPOTP99Ms    float64
}

// heapSampler polls the runtime for the heap high-water mark. ReadMemStats
// only sees live-after-GC plus currently-allocated bytes, so a 5 ms poll
// tracks the peak closely enough for a memory-budget exhibit.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak atomic.Uint64
}

func startHeapSampler() *heapSampler {
	h := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(h.done)
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > h.peak.Load() {
				h.peak.Store(ms.HeapAlloc)
			}
			select {
			case <-h.stop:
				return
			case <-t.C:
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the observed peak heap in bytes.
func (h *heapSampler) Stop() uint64 {
	close(h.stop)
	<-h.done
	return h.peak.Load()
}

// ExpMega is the million-request horizon exhibit: WindServe and DistServe
// each serve o.MegaRequests Poisson arrivals (OPT-13B, ShareGPT, a
// below-capacity 3 req/s/GPU) from a pull-based generator source with the
// streaming recorder, so neither the trace nor the per-request records are
// ever materialized. A shorter exact-recorder run rides along to show the
// heap contrast. Runs are serial — each owns the whole heap so the peak
// measurement is clean — which also means this exhibit, unlike the sweeps,
// ignores Options.Parallel. (Extension — not a paper exhibit; excluded
// from `windbench all` because its runtime scales with MegaRequests.)
func ExpMega(o Options, w io.Writer) ([]MegaRow, error) {
	o = o.withDefaults()
	n := o.MegaRequests
	if n <= 0 {
		n = 1_000_000
	}
	exactN := n / 10
	if exactN > 100_000 {
		exactN = 100_000
	}
	if exactN < 1 {
		exactN = 1
	}
	const rate = 3.0 // per-GPU req/s, below OPT-13B capacity

	type job struct {
		system string
		run    func(serve.Config, workload.Source) (*serve.Result, error)
		stream bool
		n      int
	}
	jobs := []job{
		{"WindServe", serve.RunWindServeFrom, true, n},
		{"DistServe", serve.RunDistServeFrom, true, n},
		{"DistServe", serve.RunDistServeFrom, false, exactN},
	}

	rows := make([]MegaRow, 0, len(jobs))
	for _, j := range jobs {
		cfg, err := serve.DefaultConfig(model.OPT13B)
		if err != nil {
			return nil, err
		}
		if j.stream {
			cfg.Stream = serve.StreamPolicy{Enabled: true, MaxRecords: o.MaxRecords}
		}
		g := workload.NewGenerator(workload.ShareGPT(),
			workload.PoissonArrivals{Rate: rate * float64(cfg.TotalGPUs())}, o.Seed)
		src := g.Source(j.n)

		runtime.GC()
		sampler := startHeapSampler()
		start := time.Now()
		res, err := j.run(cfg, src)
		wall := time.Since(start).Seconds()
		peak := sampler.Stop()
		if err != nil {
			return nil, fmt.Errorf("bench: mega %s: %w", j.system, err)
		}
		if res.Requests != j.n {
			return nil, fmt.Errorf("bench: mega %s: served %d of %d requests", j.system, res.Requests, j.n)
		}
		mode := "exact"
		if j.stream {
			mode = "streaming"
		}
		s := res.Summary
		rows = append(rows, MegaRow{
			System: res.System, Mode: mode, Requests: j.n,
			SimSeconds: float64(res.Elapsed), WallSeconds: wall,
			SimReqPerSec: float64(j.n) / wall,
			PeakHeapMB:   float64(peak) / (1 << 20),
			Attainment:   s.Attainment,
			TTFTP50Ms:    s.TTFTP50.Milliseconds(),
			TPOTP99Ms:    s.TPOTP99.Milliseconds(),
		})
	}

	fmt.Fprintf(w, "Long-horizon serving: %d Poisson requests (OPT-13B, ShareGPT @ %.0f req/s/GPU)\n", n, rate)
	tw := table(w)
	fmt.Fprintln(tw, "system\tmode\trequests\tsim s\twall s\tsim req/s\tpeak heap MB\tSLO\tTTFT p50 (ms)\tTPOT p99 (ms)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%.1f\t%.0f\t%.1f\t%s\t%.1f\t%.1f\n",
			r.System, r.Mode, r.Requests, r.SimSeconds, r.WallSeconds, r.SimReqPerSec,
			r.PeakHeapMB, pctStr(r.Attainment), r.TTFTP50Ms, r.TPOTP99Ms)
	}
	return rows, tw.Flush()
}
