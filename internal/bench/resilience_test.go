package bench

import (
	"io"
	"testing"
)

func TestExpResilienceShape(t *testing.T) {
	o := Options{Requests: 300, Seed: 42}
	rows, err := ExpResilience(o, io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 { // 3 systems x {clean, faulted}
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		clean, faulted := rows[i], rows[i+1]
		// Losing half the decode capacity must not lose requests: every
		// non-shed request still reaches a terminal state.
		if faulted.Unfinished != 0 {
			t.Errorf("%s: %d requests unfinished after decode crash", faulted.System, faulted.Unfinished)
		}
		total := faulted.Completed + faulted.Aborted + faulted.Rejected + faulted.Unfinished
		if total != o.Requests {
			t.Errorf("%s: lifecycle counts sum to %d, want %d", faulted.System, total, o.Requests)
		}
		// The crash cannot improve things.
		if faulted.GoodputRPS > clean.GoodputRPS*1.01 {
			t.Errorf("%s: goodput improved under a crash: %.3f vs %.3f",
				faulted.System, faulted.GoodputRPS, clean.GoodputRPS)
		}
	}
	// The PD systems report orphan recovery (vLLM rows are 0 and 1).
	for _, i := range []int{3, 5} {
		if rows[i].Recovered == 0 {
			t.Errorf("%s: decode crash recovered no orphans", rows[i].System)
		}
	}
}
