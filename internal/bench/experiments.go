package bench

import (
	"fmt"
	"io"

	"windserve/internal/engine"
	"windserve/internal/gpu"
	"windserve/internal/kvcache"
	"windserve/internal/model"
	"windserve/internal/par"
	"windserve/internal/perf"
	"windserve/internal/sched"
	"windserve/internal/serve"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// ExpTable1 prints the per-layer FLOPs / IO-bytes accounting of Table 1,
// both symbolically and evaluated for OPT-13B at the paper's shapes.
func ExpTable1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: per-layer overhead of Attention and FFN (OPT family, FP16)")
	tw := table(w)
	fmt.Fprintln(tw, "Module\tPrefill FLOPs\tDecode FLOPs\tPrefill IO bytes\tDecode IO bytes")
	fmt.Fprintln(tw, "Attn\t8NH² + 4N²H\t8BH² + 4ΣLH\t8H²\t8H² + 4ΣLH")
	fmt.Fprintln(tw, "FFN\t16NH²\t16BH²\t16H²\t16H²")
	if err := tw.Flush(); err != nil {
		return err
	}
	c := model.OPT13B
	n, b, sum := 1024, 16, 16*1024
	p := c.PrefillLayerCost(n)
	d := c.DecodeLayerCost(b, sum)
	fmt.Fprintf(w, "\nEvaluated for %s (H=%d), N=%d, B=%d, ΣL=%d:\n", c.Name, c.Hidden, n, b, sum)
	tw = table(w)
	fmt.Fprintln(tw, "Module\tPrefill GFLOPs\tDecode GFLOPs\tPrefill IO MB\tDecode IO MB")
	fmt.Fprintf(tw, "Attn\t%.1f\t%.1f\t%.1f\t%.1f\n", p.AttnFLOPs/1e9, d.AttnFLOPs/1e9, p.AttnIOBytes/1e6, d.AttnIOBytes/1e6)
	fmt.Fprintf(tw, "FFN\t%.1f\t%.1f\t%.1f\t%.1f\n", p.FFNFLOPs/1e9, d.FFNFLOPs/1e9, p.FFNIOBytes/1e6, d.FFNIOBytes/1e6)
	return tw.Flush()
}

// Fig1Row is one rate point of the motivation experiment.
type Fig1Row struct {
	Model                          string
	Rate                           float64
	DistDecodeQueueP99Ms           float64
	DistSwapEvents                 uint64
	DistAttainment, VLLMAttainment float64
	DistTPOTP99Ms                  float64
}

// ExpFig1 reproduces Fig. 1: under rising load, DistServe's decode queuing
// and KV swapping degrade TPOT (1a) and its SLO attainment falls to or
// below co-located vLLM's (1b). ShareGPT workload. Both OPT models are
// shown: on OPT-13B the prefill side saturates first (queuing only), on
// OPT-66B the decode instance's KV runs dry and swapping dominates —
// together they cover both degradation modes the paper's figure shows.
func ExpFig1(o Options, w io.Writer) ([]Fig1Row, error) {
	o = o.withDefaults()
	points, err := runSweep([]scenario{chatbot13B(), chatbot66B()}, o, threeSystems())
	if err != nil {
		return nil, err
	}
	var rows []Fig1Row
	tw := table(w)
	fmt.Fprintln(w, "Fig 1: TPOT/TTFT degradation under high load (ShareGPT)")
	fmt.Fprintln(tw, "model\trate\tdist decodeQ p99 (ms)\tdist swaps\tdist TPOT p99 (ms)\tSLO dist\tSLO vllm")
	for _, pt := range points {
		var dist, vllm Row
		for _, r := range pt.rows {
			switch r.System {
			case "DistServe":
				dist = r
			case "vLLM":
				vllm = r
			}
		}
		row := Fig1Row{
			Model:                pt.sc.model.Name,
			Rate:                 pt.rate,
			DistDecodeQueueP99Ms: dist.Summary.DecodeQueueP99.Milliseconds(),
			DistSwapEvents:       dist.Result.DecodeKV.SwapOutEvents,
			DistAttainment:       dist.Summary.Attainment,
			VLLMAttainment:       vllm.Summary.Attainment,
			DistTPOTP99Ms:        dist.Summary.TPOTP99.Milliseconds(),
		}
		rows = append(rows, row)
		fmt.Fprintf(tw, "%s\t%.2f\t%.1f\t%d\t%.1f\t%s\t%s\n", row.Model, pt.rate,
			row.DistDecodeQueueP99Ms, row.DistSwapEvents, row.DistTPOTP99Ms,
			pctStr(row.DistAttainment), pctStr(row.VLLMAttainment))
	}
	return rows, tw.Flush()
}

// Fig2Row holds mean utilizations for one model.
type Fig2Row struct {
	Model               string
	TensorCoreP, MemBWP float64 // prefill instance
	TensorCoreD, MemBWD float64 // decode instance
}

// ExpFig2 reproduces Fig. 2: mean tensor-core utilization of prefill
// instances vs memory-bandwidth utilization of decode instances, for
// OPT-13B and OPT-66B under DistServe.
func ExpFig2(o Options, w io.Writer) ([]Fig2Row, error) {
	o = o.withDefaults()
	var thunks []func() (Fig2Row, error)
	for _, c := range []struct {
		sc   scenario
		rate float64
	}{
		{chatbot13B(), 4},
		{chatbot66B(), 0.6},
	} {
		c := c
		thunks = append(thunks, func() (Fig2Row, error) {
			cfg, err := o.config(c.sc.model)
			if err != nil {
				return Fig2Row{}, err
			}
			res, err := serve.RunDistServe(cfg, c.sc.trace(c.rate, cfg, o))
			if err != nil {
				return Fig2Row{}, err
			}
			return Fig2Row{
				Model:       c.sc.model.Name,
				TensorCoreP: res.PrefillComputeUtil, MemBWP: res.PrefillBWUtil,
				TensorCoreD: res.DecodeComputeUtil, MemBWD: res.DecodeBWUtil,
			}, nil
		})
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Fig 2: mean resource utilization of prefill vs decode instances (DistServe)")
	tw := table(w)
	fmt.Fprintln(tw, "model\tTensorCore(P)\tMemBW(P)\tTensorCore(D)\tMemBW(D)")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\n", row.Model,
			pctStr(row.TensorCoreP), pctStr(row.MemBWP), pctStr(row.TensorCoreD), pctStr(row.MemBWD))
	}
	return rows, tw.Flush()
}

// Fig3Row is one placement's queuing picture.
type Fig3Row struct {
	Placement                            string
	PrefillQueueMeanMs, DecodeQueueP99Ms float64
	TTFTAttain, TPOTAttain               float64
}

// ExpFig3 reproduces Fig. 3: queuing delays at 4 req/s/GPU under the
// [TP-2,TP-1] and [TP-2,TP-2] allocations — whichever side is starved
// becomes the bottleneck.
func ExpFig3(o Options, w io.Writer) ([]Fig3Row, error) {
	o = o.withDefaults()
	var thunks []func() (Fig3Row, error)
	for _, pl := range []struct {
		name   string
		decode perf.Placement
	}{
		{"[TP-2, TP-1]", perf.Placement{TP: 1, PP: 1}},
		{"[TP-2, TP-2]", perf.Placement{TP: 2, PP: 1}},
	} {
		pl := pl
		thunks = append(thunks, func() (Fig3Row, error) {
			cfg, err := o.config(model.OPT13B)
			if err != nil {
				return Fig3Row{}, err
			}
			cfg.DecodePlace = pl.decode
			gpus := float64(cfg.TotalGPUs())
			g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 4 * gpus}, o.Seed)
			res, err := serve.RunDistServe(cfg, g.Generate(o.Requests))
			if err != nil {
				return Fig3Row{}, err
			}
			return Fig3Row{
				Placement:          pl.name,
				PrefillQueueMeanMs: res.Summary.PrefillQueueMean.Milliseconds(),
				DecodeQueueP99Ms:   res.Summary.DecodeQueueP99.Milliseconds(),
				TTFTAttain:         res.Summary.TTFTAttainment,
				TPOTAttain:         res.Summary.TPOTAttainment,
			}, nil
		})
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Fig 3: queuing delays for different placements (13B, ShareGPT, 4 req/s/GPU, DistServe)")
	tw := table(w)
	fmt.Fprintln(tw, "placement\tprefill queue mean (ms)\tdecode queue p99 (ms)\tTTFT attain\tTPOT attain")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%s\t%s\n", row.Placement,
			row.PrefillQueueMeanMs, row.DecodeQueueP99Ms, pctStr(row.TTFTAttain), pctStr(row.TPOTAttain))
	}
	return rows, tw.Flush()
}

// ExpTable2 prints the synthetic datasets' statistics next to the paper's.
func ExpTable2(o Options, w io.Writer) ([]workload.TraceStats, error) {
	o = o.withDefaults()
	datasets := []workload.Dataset{workload.ShareGPT(), workload.LongBench()}
	var thunks []func() (workload.TraceStats, error)
	for _, ds := range datasets {
		ds := ds
		thunks = append(thunks, func() (workload.TraceStats, error) {
			g := workload.NewGenerator(ds, workload.UniformArrivals{Rate: 1}, o.Seed)
			return workload.Summarize(g.Generate(max(o.Requests, 20000))), nil
		})
	}
	out, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Table 2: dataset statistics (synthetic samplers vs paper)")
	tw := table(w)
	fmt.Fprintln(tw, "dataset\tprompt avg/med/P90\tpaper\toutput avg/med/P90\tpaper")
	paper := map[string][2]string{
		"ShareGPT":  {"768.2/695/1556", "195.9/87/518"},
		"LongBench": {"2890.4/2887/3792", "97.4/12/369"},
	}
	for i, ds := range datasets {
		st := out[i]
		fmt.Fprintf(tw, "%s\t%.1f/%.0f/%.0f\t%s\t%.1f/%.0f/%.0f\t%s\n", ds.Name,
			st.PromptAvg, st.PromptMedian, st.PromptP90, paper[ds.Name][0],
			st.OutputAvg, st.OutputMedian, st.OutputP90, paper[ds.Name][1])
	}
	return out, tw.Flush()
}

// Fig5Row is one threshold setting's outcome.
type Fig5Row struct {
	Scenario      string
	ThresholdFrac float64 // × TTFT SLO
	Attainment    float64
}

// ExpFig5 reproduces Fig. 5: SLO attainment across dispatch-threshold
// settings; the best threshold sits slightly below the TTFT SLO.
func ExpFig5(o Options, w io.Writer) ([]Fig5Row, error) {
	o = o.withDefaults()
	fracs := []float64{0.1, 0.3, 0.6, 0.8, 1.0, 2.0, 6.0}
	cases := []struct {
		name string
		sc   scenario
		rate float64
	}{
		{"OPT-13B/ShareGPT@4", chatbot13B(), 4},
		{"LLaMA2-13B/LongBench@1.5", summarize13B(), 1.5},
	}
	var thunks []func() (Fig5Row, error)
	for _, c := range cases {
		cfg, err := o.config(c.sc.model)
		if err != nil {
			return nil, err
		}
		reqs := c.sc.trace(c.rate, cfg, o)
		for _, f := range fracs {
			c, f := c, f
			thunks = append(thunks, func() (Fig5Row, error) {
				cf := cfg
				cf.Wind.ThresholdFrac = f
				res, err := serve.RunWindServe(cf, reqs)
				if err != nil {
					return Fig5Row{}, err
				}
				return Fig5Row{Scenario: c.name, ThresholdFrac: f, Attainment: res.Summary.Attainment}, nil
			})
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Fig 5: impact of dispatch threshold thrd on SLO attainment (WindServe)")
	tw := table(w)
	fmt.Fprintln(tw, "scenario\tthrd (×TTFT SLO)\tSLO attainment")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%s\n", row.Scenario, row.ThresholdFrac, pctStr(row.Attainment))
	}
	return rows, tw.Flush()
}

// ExpFig7 reproduces Fig. 7's execution timelines: the same workload —
// three decoding requests joined by one long prefill — executed with
// chunked prefill (hybrid batches) and with stream-based disaggregation.
// Returns the rendered Gantt charts (chunked, SBD).
func ExpFig7(w io.Writer) (string, string, error) {
	mk := func(sbd bool) (string, error) {
		s := sim.New()
		cm := perf.MustNew(model.OPT13B, gpu.A800, perf.Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, perf.DefaultParams())
		kv := kvcache.MustNew(1<<20, 1<<20, 16)
		tr := trace.New()
		host := xfer.NewLink(s, "host", gpu.HostPCIe, xfer.DefaultEfficiency)
		name := "chunked"
		if sbd {
			name = "sbd"
		}
		ins, err := engine.NewInstance(s, engine.Config{
			Name: name, CM: cm, KV: kv, HostLink: host, Tracer: tr,
			AllowPrefill: !sbd, ChunkSize: 512, SBD: sbd,
		}, engine.Hooks{})
		if err != nil {
			return "", err
		}
		// Three requests mid-decode.
		for i := 1; i <= 3; i++ {
			r := engine.NewReq(workload.Request{ID: uint64(i), PromptTokens: 1024, OutputTokens: 64})
			r.PrefillDone, r.Generated = 1024, 1
			if err := kv.Allocate(r.KVID(), 1025); err != nil {
				return "", err
			}
			ins.AdmitDecode(r)
		}
		// A 2048-token prefill (request D) arrives shortly after.
		s.Schedule(sim.Milliseconds(30), func() {
			r := engine.NewReq(workload.Request{ID: 4, PromptTokens: 2048, OutputTokens: 8})
			if sbd {
				if err := kv.Allocate(r.KVID(), 2049); err != nil {
					panic(err)
				}
				ins.EnqueueAssist(r)
			} else {
				ins.EnqueuePrefill(r)
			}
		})
		s.Run(sim.Time(1.2))
		from, to := tr.Bounds()
		_ = from
		return tr.Gantt(0, to, 96), nil
	}
	charts, err := par.Run(par.NewPool(0), 2, func(i int) (string, error) {
		return mk(i == 1)
	})
	if err != nil {
		return "", "", err
	}
	chunked, sbd := charts[0], charts[1]
	fmt.Fprintln(w, "Fig 7: chunked-prefill vs stream-based disaggregation timelines")
	fmt.Fprintln(w, "\n-- chunked prefill (prefill D chunks ride hybrid passes, slowing every decode) --")
	fmt.Fprint(w, chunked)
	fmt.Fprintln(w, "\n-- stream-based disaggregation (prefill D runs in stream 2; decodes continue) --")
	fmt.Fprint(w, sbd)
	return chunked, sbd, nil
}

// Fig8Row is one point of the single-pass interference microbenchmark.
type Fig8Row struct {
	Model         string
	PrefillTokens int
	// Milliseconds per pass (or, for chunked prefill, total duration).
	RegularPrefillMs, RegularDecodeMs float64 // hybrid batch: both see the pass
	SBDPrefillMs, SBDDecodeMs         float64
	ChunkedPrefillMs, ChunkedDecodeMs float64 // chunk size 512, §3.4's comparison
	DecodeAloneMs, PrefillAloneMs     float64
}

// ExpFig8 reproduces Fig. 8 and the §3.4 case study: prefill and decode
// cost under regular (hybrid) batching, chunked prefill (chunk 512), and
// stream-based disaggregation, batching 16 decode requests (ctx 2048)
// with growing prefill sizes. Chunked prefill bounds the decode pass but
// stretches the prefill across many passes (the paper's LLaMA2-70B
// example: ~2× the SBD prefill time); SBD keeps both near isolated cost.
func ExpFig8(w io.Writer) ([]Fig8Row, error) {
	cases := []struct {
		cfg   model.Config
		place perf.Placement
	}{
		{model.OPT13B, perf.Placement{TP: 2, PP: 1}},
		{model.OPT66B, perf.Placement{TP: 2, PP: 2}},
		{model.LLaMA270B, perf.Placement{TP: 2, PP: 2}},
	}
	const chunkSize = 512
	perModel, err := par.Run(par.NewPool(0), len(cases), func(ci int) ([]Fig8Row, error) {
		c := cases[ci]
		cm := perf.MustNew(c.cfg, gpu.A800, c.place, gpu.NVLinkBridge, perf.DefaultParams())
		ctx := 2048
		if ctx > c.cfg.MaxContext {
			ctx = c.cfg.MaxContext
		}
		dec := perf.DecodeOnly(16, 16*ctx)
		var rows []Fig8Row
		for _, n := range []int{512, 1024, 2048} {
			pre := perf.PrefillOnly(n)
			hybrid := cm.IterTime(perf.Batch{Prefill: pre.Prefill, DecodeReqs: dec.DecodeReqs, DecodeSumCtx: dec.DecodeSumCtx})
			// Chunked prefill: the prompt crosses in ceil(n/chunk) hybrid
			// passes; each pass is what decode steps now cost, and the
			// prefill's total duration is their sum.
			var chunkTotal, chunkPass sim.Duration
			for done := 0; done < n; done += chunkSize {
				sz := chunkSize
				if n-done < sz {
					sz = n - done
				}
				pass := cm.IterTime(perf.Batch{
					Prefill:      []perf.PrefillSeg{{NewTokens: sz, CtxBefore: done}},
					DecodeReqs:   dec.DecodeReqs,
					DecodeSumCtx: dec.DecodeSumCtx,
				})
				chunkTotal += pass
				if pass > chunkPass {
					chunkPass = pass
				}
			}
			rows = append(rows, Fig8Row{
				Model:            c.cfg.Name,
				PrefillTokens:    n,
				DecodeAloneMs:    cm.IterTime(dec).Milliseconds(),
				PrefillAloneMs:   cm.IterTime(pre).Milliseconds(),
				RegularPrefillMs: hybrid.Milliseconds(),
				RegularDecodeMs:  hybrid.Milliseconds(),
				ChunkedPrefillMs: chunkTotal.Milliseconds(),
				ChunkedDecodeMs:  chunkPass.Milliseconds(),
				SBDPrefillMs:     cm.SBDPrefillTime(pre, dec).Milliseconds(),
				SBDDecodeMs:      cm.SBDDecodeTime(dec, pre).Milliseconds(),
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	fmt.Fprintln(w, "Fig 8 + §3.4: per-pass prefill/decode cost — Regular vs chunked(512) vs SBD (16 decodes, ctx 2048)")
	tw := table(w)
	fmt.Fprintln(tw, "model\tprefill N\tdec alone\tpre alone\treg dec\treg pre\tchunk dec\tchunk pre total\tSBD dec\tSBD pre\t(ms)")
	for _, mr := range perModel {
		for _, row := range mr {
			rows = append(rows, row)
			fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
				row.Model, row.PrefillTokens, row.DecodeAloneMs, row.PrefillAloneMs,
				row.RegularDecodeMs, row.RegularPrefillMs,
				row.ChunkedDecodeMs, row.ChunkedPrefillMs,
				row.SBDDecodeMs, row.SBDPrefillMs)
		}
	}
	return rows, tw.Flush()
}

// ProfilerRow is one model's fitted Profiler summary.
type ProfilerRow struct {
	Model               string
	PrefillR2, DecodeR2 float64
	Cp, Ap, Bp          float64 // eq. 1 coefficients (seconds)
	Cd, Ad              float64 // eq. 2 coefficients (seconds)
	MaxPrefillErrPct    float64 // worst prediction error on a probe grid
	MaxDecodeErrPct     float64
}

// ExpProfiler reports the Global Scheduler's Profiler fits (§3.2.1): the
// regression coefficients of eqs. (1)–(2), their R², and the worst-case
// prediction error against the engine on shapes outside the sampling
// grid — the quantity Algorithm 1's threshold comparison depends on.
func ExpProfiler(w io.Writer) ([]ProfilerRow, error) {
	cases := []struct {
		cfg   model.Config
		place perf.Placement
	}{
		{model.OPT13B, perf.Placement{TP: 2, PP: 1}},
		{model.OPT66B, perf.Placement{TP: 2, PP: 2}},
		{model.LLaMA213B, perf.Placement{TP: 2, PP: 1}},
		{model.LLaMA270B, perf.Placement{TP: 2, PP: 2}},
	}
	rows, err := par.Run(par.NewPool(0), len(cases), func(ci int) (ProfilerRow, error) {
		c := cases[ci]
		cm := perf.MustNew(c.cfg, gpu.A800, c.place, gpu.NVLinkBridge, perf.DefaultParams())
		prof, err := sched.Profile(cm, nil)
		if err != nil {
			return ProfilerRow{}, err
		}
		row := ProfilerRow{Model: c.cfg.Name, PrefillR2: prof.PrefillR2, DecodeR2: prof.DecodeR2}
		row.Cp, row.Ap, row.Bp = prof.PrefillCoefficients()
		row.Cd, row.Ad = prof.DecodeCoefficients()
		// Probe off-grid shapes.
		for _, n := range []int{100, 300, 900, 1700} {
			if n > c.cfg.MaxContext {
				continue
			}
			actual := cm.PrefillTime(n).Seconds()
			errPct := 100 * absf(prof.PredictPrefill(n).Seconds()-actual) / actual
			if errPct > row.MaxPrefillErrPct {
				row.MaxPrefillErrPct = errPct
			}
		}
		for _, bc := range []struct{ b, ctx int }{{6, 700}, {20, 1100}, {40, 1500}} {
			sum := bc.b * bc.ctx
			actual := cm.DecodeTime(bc.b, sum).Seconds()
			errPct := 100 * absf(prof.PredictDecode(sum).Seconds()-actual) / actual
			if errPct > row.MaxDecodeErrPct {
				row.MaxDecodeErrPct = errPct
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Profiler fits (eqs. 1-2): T̂p = cₚ + aₚN + bₚN², T̂d = c_d + a_d·ΣL")
	tw := table(w)
	fmt.Fprintln(tw, "model\tprefill R²\tdecode R²\tmax prefill err\tmax decode err\taₚ (µs/tok)\ta_d (µs/tok)")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.4f\t%.4f\t%.1f%%\t%.1f%%\t%.2f\t%.3f\n",
			row.Model, row.PrefillR2, row.DecodeR2, row.MaxPrefillErrPct, row.MaxDecodeErrPct,
			row.Ap*1e6, row.Ad*1e6)
	}
	return rows, tw.Flush()
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ExpFig9 prints the simulated testbed topology (paper Fig. 9).
func ExpFig9(w io.Writer) error {
	fmt.Fprintln(w, "Fig 9: testbed topology")
	_, err := fmt.Fprintln(w, gpu.PaperTestbed().String())
	return err
}

// ExpTable3 prints the placement strategies per model.
func ExpTable3(w io.Writer) error {
	fmt.Fprintln(w, "Table 3: placement strategies")
	tw := table(w)
	fmt.Fprintln(tw, "model\tprefill placement\tdecode placement")
	for _, m := range []model.Config{model.OPT13B, model.LLaMA213B, model.OPT66B, model.LLaMA270B} {
		p, d := serve.PaperPlacement(m)
		fmt.Fprintf(tw, "%s\t%s\t%s\n", m.Name, p, d)
	}
	return tw.Flush()
}

// ExpTable4 prints the SLOs per model and scenario.
func ExpTable4(w io.Writer) error {
	fmt.Fprintln(w, "Table 4: SLOs")
	tw := table(w)
	fmt.Fprintln(tw, "model\tattention\tTTFT SLO\tTPOT SLO\tdataset")
	for _, c := range []struct {
		m  model.Config
		ds string
	}{
		{model.LLaMA213B, "LongBench"}, {model.LLaMA270B, "LongBench"},
		{model.OPT13B, "ShareGPT"}, {model.OPT66B, "ShareGPT"},
	} {
		slo, err := serve.PaperSLO(c.m)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%s\t%v\t%v\t%s\n", c.m.Name, c.m.Attention(), slo.TTFT, slo.TPOT, c.ds)
	}
	return tw.Flush()
}

// ExpFig10 reproduces the end-to-end latency sweeps of Fig. 10 across all
// four model/dataset scenarios and three systems; the returned rows also
// carry the attainment data for Fig. 11.
func ExpFig10(o Options, w io.Writer) ([]Row, error) {
	o = o.withDefaults()
	scs := []scenario{chatbot13B(), chatbot66B(), summarize13B(), summarize70B()}
	points, err := runSweep(scs, o, threeSystems())
	if err != nil {
		return nil, err
	}
	var all []Row
	for si, sc := range scs {
		fmt.Fprintf(w, "Fig 10: %s on %s\n", sc.model.Name, sc.dataset.Name)
		tw := table(w)
		fmt.Fprintln(tw, "rate\tsystem\tTTFT p50\tTTFT p99\tTPOT p90\tTPOT p99\t(ms)")
		for _, pt := range points {
			if pt.scIdx != si {
				continue
			}
			for _, r := range pt.rows {
				fmt.Fprintf(tw, "%.2f\t%s\t%s\t%s\t%s\t%s\t\n", pt.rate, r.System,
					ms(r.Summary.TTFTP50), ms(r.Summary.TTFTP99),
					ms(r.Summary.TPOTP90), ms(r.Summary.TPOTP99))
			}
			all = append(all, pt.rows...)
		}
		if err := tw.Flush(); err != nil {
			return nil, err
		}
		fmt.Fprintln(w)
	}
	return all, nil
}

// ExpFig11 prints the SLO attainment curves of Fig. 11 from Fig. 10 rows
// (pass nil to run the sweeps).
func ExpFig11(o Options, w io.Writer, rows []Row) ([]Row, error) {
	if rows == nil {
		var err error
		rows, err = ExpFig10(o, io.Discard)
		if err != nil {
			return nil, err
		}
	}
	fmt.Fprintln(w, "Fig 11: SLO attainment")
	tw := table(w)
	fmt.Fprintln(tw, "model\tdataset\trate\tsystem\tSLO attainment")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%s\t%s\n", r.Model, r.Dataset, r.Rate, r.System, pctStr(r.Summary.Attainment))
	}
	return rows, tw.Flush()
}

// Fig12Row is one (placement, rate, system) attainment point.
type Fig12Row struct {
	Placement  string
	Rate       float64
	System     string
	Attainment float64
	TTFTAttain float64
	TPOTAttain float64
}

// ExpFig12 reproduces Fig. 12: SLO attainment under the two resource
// allocations of Fig. 3. With a starved decode instance ([TP-2,TP-1])
// DistServe is TPOT-limited and WindServe recovers via Dynamic
// Rescheduling; with a redundant decode instance ([TP-2,TP-2]) DistServe
// is TTFT-limited and WindServe recovers via Dynamic Prefill Dispatch.
func ExpFig12(o Options, w io.Writer) ([]Fig12Row, error) {
	o = o.withDefaults()
	var thunks []func() (Fig12Row, error)
	for _, pl := range []struct {
		name   string
		decode perf.Placement
		rates  []float64
	}{
		{"[TP-2, TP-1]", perf.Placement{TP: 1, PP: 1}, []float64{2, 3, 4}},
		{"[TP-2, TP-2]", perf.Placement{TP: 2, PP: 1}, []float64{3, 4, 5}},
	} {
		for _, rate := range pl.rates {
			cfg, err := o.config(model.OPT13B)
			if err != nil {
				return nil, err
			}
			cfg.DecodePlace = pl.decode
			gpus := float64(cfg.TotalGPUs())
			g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate * gpus}, o.Seed)
			reqs := g.Generate(o.Requests)
			for _, sys := range []struct {
				name string
				run  func(serve.Config, []workload.Request) (*serve.Result, error)
			}{{"DistServe", serve.RunDistServe}, {"WindServe", serve.RunWindServe}} {
				pl, rate, name, run := pl, rate, sys.name, sys.run
				thunks = append(thunks, func() (Fig12Row, error) {
					res, err := run(cfg, reqs)
					if err != nil {
						return Fig12Row{}, fmt.Errorf("bench: fig12 %s %s: %w", pl.name, name, err)
					}
					return Fig12Row{
						Placement: pl.name, Rate: rate, System: res.System,
						Attainment: res.Summary.Attainment,
						TTFTAttain: res.Summary.TTFTAttainment,
						TPOTAttain: res.Summary.TPOTAttainment,
					}, nil
				})
			}
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Fig 12: SLO attainment under different allocations (OPT-13B, ShareGPT)")
	tw := table(w)
	fmt.Fprintln(tw, "placement\trate\tsystem\tSLO\tTTFT-only\tTPOT-only")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%s\t%s\t%s\n", row.Placement, row.Rate, row.System,
			pctStr(row.Attainment), pctStr(row.TTFTAttain), pctStr(row.TPOTAttain))
	}
	return rows, tw.Flush()
}

// Fig13Row is one ablation measurement.
type Fig13Row struct {
	Study                string // "no-split" or "no-resche"
	Rate                 float64
	System               string
	TTFTP99Ms, TPOTP99Ms float64
}

// ExpFig13 reproduces the §5.4 ablations: (a) WindServe-no-split on the
// LongBench-style workload — without SBD, dispatched prefills interfere
// with decoding; (b) WindServe-no-resche on ShareGPT — without Dynamic
// Rescheduling, decode memory pressure turns into queuing and swapping.
// Both serve OPT-13B, as in the paper. The no-resche study runs at the
// starved-decode allocation ([TP-2, TP-1]): with our calibration the
// paper's balanced 13B placement never exhausts decode KV (the prefill
// side saturates first), so that is where rescheduling is load-bearing.
func ExpFig13(o Options, w io.Writer) ([]Fig13Row, error) {
	o = o.withDefaults()
	studies := []struct {
		name        string
		dataset     workload.Dataset
		rates       []float64
		decodePlace perf.Placement
		variant     func(serve.Config, []workload.Request) (*serve.Result, error)
	}{
		{"no-split", workload.LongBench(), []float64{1.0, 1.5, 2.0}, perf.Placement{TP: 2, PP: 1}, serve.RunWindServeNoSplit},
		{"no-resche", workload.ShareGPT(), []float64{2, 3, 4}, perf.Placement{TP: 1, PP: 1}, serve.RunWindServeNoResched},
	}
	var thunks []func() (Fig13Row, error)
	for _, st := range studies {
		sc := scenario{model: model.OPT13B, dataset: st.dataset, rates: st.rates}
		for _, rate := range st.rates {
			cfg, err := o.config(sc.model)
			if err != nil {
				return nil, err
			}
			cfg.DecodePlace = st.decodePlace
			reqs := sc.trace(rate, cfg, o)
			for _, run := range []func(serve.Config, []workload.Request) (*serve.Result, error){
				serve.RunWindServe, st.variant,
			} {
				st, rate, run := st, rate, run
				thunks = append(thunks, func() (Fig13Row, error) {
					res, err := run(cfg, reqs)
					if err != nil {
						return Fig13Row{}, err
					}
					return Fig13Row{
						Study: st.name, Rate: rate, System: res.System,
						TTFTP99Ms: res.Summary.TTFTP99.Milliseconds(),
						TPOTP99Ms: res.Summary.TPOTP99.Milliseconds(),
					}, nil
				})
			}
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Fig 13: ablation studies (OPT-13B)")
	tw := table(w)
	fmt.Fprintln(tw, "study\trate\tsystem\tTTFT p99 (ms)\tTPOT p99 (ms)")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.2f\t%s\t%.1f\t%.1f\n", row.Study, row.Rate, row.System, row.TTFTP99Ms, row.TPOTP99Ms)
	}
	return rows, tw.Flush()
}
