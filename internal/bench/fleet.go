package bench

import (
	"fmt"
	"io"
	"math"
	"strings"

	"windserve/internal/elastic"
	"windserve/internal/fault"
	"windserve/internal/fleet"
	"windserve/internal/model"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// FleetRow is one (policy, chaos) outcome of the fleet-chaos exhibit.
type FleetRow struct {
	Policy       string
	Chaos        bool
	Requests     int
	Completed    int
	Aborted      int
	Rejected     int
	Unfinished   int
	Attainment   float64
	GoodputRPS   float64
	FailedOver   int
	Recovered    int
	WastedTokens int
	// RecoverySec has one entry per replica-crash event: seconds until
	// fleet throughput returned to ≥90% of its pre-crash baseline.
	RecoverySec []float64
	BrownoutSec float64
	// Flips counts elastic role flips (nonzero only under windbench
	// -elastic, which runs these fleets with the default flipping policy).
	Flips int
}

// DefaultChaosPlan builds the exhibit's standard chaos schedule, scaled to
// the run's expected arrival span (n requests at rate req/s) and replica
// count: one replica crash early, a network partition and a client-cancel
// wave mid-run, and a slowdown late. Victim indices spread across the
// fleet so no single replica absorbs every fault.
func DefaultChaosPlan(n, replicas int, rate float64, seed int64) (*fault.Plan, error) {
	span := float64(n) / rate
	at := func(frac float64) int {
		v := int(math.Round(frac * span))
		if v < 1 {
			v = 1
		}
		return v
	}
	spec := fmt.Sprintf(
		"rcrash:r0@%d+%d; rpart:r%d@%d+%d; cancel@%dx0.05; rslow:r%d@%dx8+%d",
		at(0.10), at(0.15),
		(replicas/3)%replicas, at(0.35), at(0.10),
		at(0.45),
		(2*replicas/3)%replicas, at(0.55), at(0.15))
	p, err := fault.Parse(spec)
	if err != nil {
		return nil, err
	}
	p.Seed = seed
	return p, nil
}

// ExpFleetChaos is the fleet-scale resilience exhibit: FleetReplicas
// identical OPT-13B prefill/decode replicas behind the router serve
// FleetRequests ShareGPT arrivals from a pull-based source, once clean and
// once under a seeded chaos plan (replica crash, partition, slowdown,
// client cancels), for each routing policy. The router hedges with timeout
// failover, sheds past its admission limit, and browns out under overload;
// the table reports goodput, SLO attainment, failover/wasted-work
// accounting, and per-crash recovery time. Every printed quantity is
// virtual-time arithmetic, so the same seed yields byte-identical output
// at any pool size. (Extension — not a paper exhibit; excluded from
// `windbench all` because its runtime scales with FleetRequests. A nil
// plan means DefaultChaosPlan; windbench -chaos overrides it.)
func ExpFleetChaos(o Options, w io.Writer, plan *fault.Plan) ([]FleetRow, error) {
	o = o.withDefaults()
	n := o.FleetRequests
	if n <= 0 {
		n = 100_000
	}
	replicas := o.FleetReplicas
	if replicas <= 0 {
		replicas = 16
	}

	rcfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	if rcfg.NumPrefill <= 0 {
		rcfg.NumPrefill = 1
	}
	if rcfg.NumDecode <= 0 {
		rcfg.NumDecode = 1
	}
	if o.Elastic {
		// The one-instance-per-role floor pins a 1P/1D replica in place;
		// widen to 2P/2D so the controller has room to flip.
		rcfg.NumPrefill = max(rcfg.NumPrefill, 2)
		rcfg.NumDecode = max(rcfg.NumDecode, 2)
	}
	// 3 req/s/GPU is comfortably under OPT-13B capacity, so the clean runs
	// meet SLO and the chaos runs isolate the faults' damage.
	const perGPURate = 3.0
	rate := perGPURate * float64(rcfg.TotalGPUs()) * float64(replicas)
	ds := workload.ShareGPT()
	if ds.MaxContext > model.OPT13B.MaxContext {
		ds.MaxContext = model.OPT13B.MaxContext
	}

	if plan == nil {
		if plan, err = DefaultChaosPlan(n, replicas, rate, o.Seed); err != nil {
			return nil, err
		}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if err := plan.ValidateTargets(0, 0, replicas); err != nil {
		return nil, err
	}

	type job struct {
		policy string
		chaos  bool
	}
	var jobs []job
	for _, pol := range []string{"round-robin", "least-loaded", "weighted"} {
		for _, chaos := range []bool{false, true} {
			jobs = append(jobs, job{pol, chaos})
		}
	}
	thunks := make([]func() (FleetRow, error), len(jobs))
	for i, j := range jobs {
		j := j
		thunks[i] = func() (FleetRow, error) {
			cfg := fleet.Config{
				Replica:         rcfg,
				NumReplicas:     replicas,
				Shards:          o.FleetShards,
				Lookahead:       o.Lookahead,
				Placement:       o.Placement,
				Policy:          j.policy,
				FailoverTimeout: sim.Seconds(10),
				MaxQueueDepth:   32 * replicas,
				TTFTDeadline:    sim.Seconds(60),
				BrownoutDepth:   24,
			}
			if j.chaos {
				cfg.Faults = plan
			}
			if o.Elastic {
				cfg.Elastic = elastic.Default()
			}
			g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: rate}, o.Seed)
			res, err := fleet.RunFrom(cfg, g.Source(n))
			if err != nil {
				return FleetRow{}, fmt.Errorf("bench: fleet %s chaos=%v: %w", j.policy, j.chaos, err)
			}
			return FleetRow{
				Policy: j.policy, Chaos: j.chaos, Requests: res.Requests,
				Completed: res.Completed, Aborted: res.Aborted, Rejected: res.Rejected,
				Unfinished: res.Unfinished,
				Attainment: res.Summary.Attainment, GoodputRPS: res.Summary.GoodputRPS,
				FailedOver: res.FailedOver, Recovered: res.Recovered,
				WastedTokens: res.WastedTokens,
				RecoverySec:  res.RecoverySec, BrownoutSec: res.BrownoutSec,
				Flips: res.Flips,
			}, nil
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Fleet chaos: %d replicas × OPT-13B [%dP,%dD], %d ShareGPT reqs @ %.0f req/s/GPU, plan %q\n",
		replicas, rcfg.NumPrefill, rcfg.NumDecode, n, perGPURate, plan.String())
	tw := table(w)
	fmt.Fprintln(tw, "policy\tchaos\tcompleted\taborted\trejected\tSLO\tgoodput (rps)\tfailovers\trecovered\twasted tok\trecovery s\tbrownout s")
	for _, r := range rows {
		chaos := "off"
		if r.Chaos {
			chaos = "on"
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\t%.2f\t%d\t%d\t%d\t%s\t%.0f\n",
			r.Policy, chaos, r.Completed, r.Aborted, r.Rejected,
			pctStr(r.Attainment), r.GoodputRPS, r.FailedOver, r.Recovered,
			r.WastedTokens, recoveryStr(r.RecoverySec), r.BrownoutSec)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	if o.Elastic {
		var flips int
		for _, r := range rows {
			flips += r.Flips
		}
		fmt.Fprintf(w, "elastic role flipping on (default policy): %d flips across %d runs\n", flips, len(rows))
	}
	return rows, nil
}

// recoveryStr renders per-crash recovery times: "-" when no crash was
// scheduled, "never" when throughput did not return to baseline in-run.
func recoveryStr(secs []float64) string {
	if len(secs) == 0 {
		return "-"
	}
	parts := make([]string, len(secs))
	for i, s := range secs {
		if s < 0 {
			parts[i] = "never"
		} else {
			parts[i] = fmt.Sprintf("%.0f", s)
		}
	}
	return strings.Join(parts, "/")
}
