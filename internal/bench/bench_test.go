package bench

import (
	"io"
	"strings"
	"testing"
)

// small keeps unit-test experiment runs fast; the committed EXPERIMENTS.md
// uses DefaultOptions.
func small() Options { return Options{Requests: 250, Seed: 42} }

func TestExpTable1(t *testing.T) {
	var sb strings.Builder
	if err := ExpTable1(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"8NH² + 4N²H", "16BH²", "OPT-13B", "Attn", "FFN"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q", want)
		}
	}
}

func TestExpFig1Shape(t *testing.T) {
	rows, err := ExpFig1(small(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	byModel := map[string][]Fig1Row{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for model, mr := range byModel {
		first, last := mr[0], mr[len(mr)-1]
		// Decode queuing grows with load; attainment collapses.
		if last.DistDecodeQueueP99Ms <= first.DistDecodeQueueP99Ms {
			t.Errorf("%s: decode queue p99 did not grow: %.1f → %.1f",
				model, first.DistDecodeQueueP99Ms, last.DistDecodeQueueP99Ms)
		}
		if last.DistAttainment >= first.DistAttainment {
			t.Errorf("%s: attainment did not fall: %.2f → %.2f", model, first.DistAttainment, last.DistAttainment)
		}
	}
	// Paper's Fig. 1b point: at the highest 13B loads, phase-disaggregated
	// DistServe does no better than (here: worse than) co-located vLLM.
	last13 := byModel["OPT-13B"][len(byModel["OPT-13B"])-1]
	if last13.DistAttainment > last13.VLLMAttainment+0.1 {
		t.Errorf("at saturation DistServe %.2f should not beat vLLM %.2f by much",
			last13.DistAttainment, last13.VLLMAttainment)
	}
	// Fig. 1a's swapping: the 66B decode instance must actually swap under
	// pressure.
	swaps := uint64(0)
	for _, r := range byModel["OPT-66B"] {
		swaps += r.DistSwapEvents
	}
	if swaps == 0 {
		t.Error("no KV swapping observed on OPT-66B under load")
	}
}

func TestExpFig2Shape(t *testing.T) {
	rows, err := ExpFig2(small(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's core observation: prefill instances burn compute,
		// decode instances burn bandwidth, and both leave the complementary
		// resource badly underutilized.
		if r.TensorCoreP <= r.TensorCoreD {
			t.Errorf("%s: prefill tensor util %.2f should exceed decode's %.2f", r.Model, r.TensorCoreP, r.TensorCoreD)
		}
		if r.MemBWD <= r.MemBWP {
			t.Errorf("%s: decode BW util %.2f should exceed prefill's %.2f", r.Model, r.MemBWD, r.MemBWP)
		}
		if r.TensorCoreD > 0.35 {
			t.Errorf("%s: decode tensor util %.2f should be low", r.Model, r.TensorCoreD)
		}
	}
}

func TestExpFig3Shape(t *testing.T) {
	rows, err := ExpFig3(small(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	starved, redundant := rows[0], rows[1]
	// [TP-2,TP-1]: decode is the bottleneck → decode-side delay dominates;
	// [TP-2,TP-2]: prefill queue dominates instead (Fig. 3's two bars).
	if starved.DecodeQueueP99Ms <= redundant.DecodeQueueP99Ms {
		t.Errorf("starved decode queue %.1f should exceed redundant %.1f",
			starved.DecodeQueueP99Ms, redundant.DecodeQueueP99Ms)
	}
	if redundant.PrefillQueueMeanMs <= 0 {
		t.Error("prefill queue should be non-zero at 4 req/s/GPU")
	}
}

func TestExpTable2(t *testing.T) {
	stats, err := ExpTable2(small(), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats = %d", len(stats))
	}
	if stats[0].PromptAvg < 700 || stats[0].PromptAvg > 840 {
		t.Errorf("ShareGPT prompt avg = %.1f", stats[0].PromptAvg)
	}
	if stats[1].PromptMedian < 2700 || stats[1].PromptMedian > 3050 {
		t.Errorf("LongBench prompt median = %.1f", stats[1].PromptMedian)
	}
}

func TestExpFig5Shape(t *testing.T) {
	rows, err := ExpFig5(Options{Requests: 220, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// For the OPT-13B scenario: attainment near thrd=0.8×SLO must beat the
	// effectively-never-dispatch setting (6×SLO) — the Fig. 5 peak.
	var at08, at6 float64
	for _, r := range rows {
		if r.Scenario == "OPT-13B/ShareGPT@4" {
			switch r.ThresholdFrac {
			case 0.8:
				at08 = r.Attainment
			case 6.0:
				at6 = r.Attainment
			}
		}
	}
	if at08 <= at6 {
		t.Errorf("attainment at 0.8xSLO (%.2f) should beat 6xSLO (%.2f)", at08, at6)
	}
}

func TestExpFig7Timelines(t *testing.T) {
	var sb strings.Builder
	chunked, sbd, err := ExpFig7(&sb)
	if err != nil {
		t.Fatal(err)
	}
	// The chunked timeline shows hybrid/chunk passes on the main lane; the
	// SBD timeline shows a second stream lane running the prefill.
	if !strings.Contains(chunked, "chunked") {
		t.Error("chunked gantt missing lane")
	}
	if !strings.Contains(sbd, "sbd/stream2") {
		t.Errorf("SBD gantt missing second stream lane:\n%s", sbd)
	}
	if !strings.Contains(sbd, "P") {
		t.Error("SBD gantt missing prefill span")
	}
	if !strings.Contains(chunked, "H") && !strings.Contains(chunked, "c") {
		t.Errorf("chunked gantt missing hybrid/chunk spans:\n%s", chunked)
	}
}

func TestExpFig8Shape(t *testing.T) {
	rows, err := ExpFig8(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// SBD keeps decode near decode-alone (within ~25%), while the
		// regular hybrid pass inflates decode latency far more for large
		// prefills.
		if r.SBDDecodeMs > r.DecodeAloneMs*1.3 {
			t.Errorf("%s N=%d: SBD decode %.1f vs alone %.1f", r.Model, r.PrefillTokens, r.SBDDecodeMs, r.DecodeAloneMs)
		}
		if r.PrefillTokens >= 2048 && r.RegularDecodeMs < r.SBDDecodeMs*1.5 {
			t.Errorf("%s N=%d: regular decode %.1f should far exceed SBD %.1f",
				r.Model, r.PrefillTokens, r.RegularDecodeMs, r.SBDDecodeMs)
		}
		// SBD prefill pays a bounded penalty over prefill-alone.
		if r.SBDPrefillMs < r.PrefillAloneMs || r.SBDPrefillMs > r.PrefillAloneMs*1.6 {
			t.Errorf("%s N=%d: SBD prefill %.1f vs alone %.1f", r.Model, r.PrefillTokens, r.SBDPrefillMs, r.PrefillAloneMs)
		}
		// §3.4's case study: chunked prefill's total time far exceeds the
		// SBD prefill (paper's 70B example: ~2×), while its per-pass decode
		// cost stays bounded (well below the regular hybrid pass for large
		// prompts, since only one chunk rides each pass).
		if r.PrefillTokens >= 1024 {
			// The gap is ~1.2-1.3× here vs the paper's ~1.9×: our decode
			// passes are cheap relative to prefill (their backend's were
			// not), so each chunk pass adds less decode overhead.
			if r.ChunkedPrefillMs < r.SBDPrefillMs*1.15 {
				t.Errorf("%s N=%d: chunked prefill total %.1f should exceed SBD %.1f",
					r.Model, r.PrefillTokens, r.ChunkedPrefillMs, r.SBDPrefillMs)
			}
			if r.ChunkedDecodeMs >= r.RegularDecodeMs {
				t.Errorf("%s N=%d: chunked decode pass %.1f should beat regular %.1f",
					r.Model, r.PrefillTokens, r.ChunkedDecodeMs, r.RegularDecodeMs)
			}
		}
	}
}

func TestExpProfilerFidelity(t *testing.T) {
	rows, err := ExpProfiler(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PrefillR2 < 0.98 || r.DecodeR2 < 0.98 {
			t.Errorf("%s: fit R² = %.4f/%.4f", r.Model, r.PrefillR2, r.DecodeR2)
		}
		// Prediction error small enough for Algorithm 1's threshold test.
		if r.MaxPrefillErrPct > 15 || r.MaxDecodeErrPct > 15 {
			t.Errorf("%s: prediction error %.1f%%/%.1f%%", r.Model, r.MaxPrefillErrPct, r.MaxDecodeErrPct)
		}
		if r.Ap <= 0 || r.Ad <= 0 {
			t.Errorf("%s: nonpositive linear coefficients", r.Model)
		}
	}
	// GQA's smaller KV shows up as a lower decode slope than the MHA model
	// of similar scale (LLaMA2-70B vs OPT-66B).
	var ad66, ad70 float64
	for _, r := range rows {
		switch r.Model {
		case "OPT-66B":
			ad66 = r.Ad
		case "LLaMA2-70B":
			ad70 = r.Ad
		}
	}
	if ad70 >= ad66 {
		t.Errorf("GQA decode slope %.3g should undercut MHA's %.3g", ad70, ad66)
	}
}

func TestExpFig9AndTables(t *testing.T) {
	var sb strings.Builder
	if err := ExpFig9(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "8 devices") {
		t.Error("Fig 9 output missing topology")
	}
	sb.Reset()
	if err := ExpTable3(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "TP-2,PP-2") {
		t.Error("Table 3 missing placements")
	}
	sb.Reset()
	if err := ExpTable4(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"OPT-13B", "GQA", "LongBench"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table 4 missing %q", want)
		}
	}
}

func TestExpFig10And11EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep in -short mode")
	}
	rows, err := ExpFig10(Options{Requests: 150, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	// 4 scenarios × 5 rates × 3 systems.
	if len(rows) != 60 {
		t.Fatalf("rows = %d, want 60", len(rows))
	}
	// Headline: at each scenario's top rate, WindServe's TTFT p50 beats
	// DistServe's.
	byKey := map[string]Row{}
	for _, r := range rows {
		byKey[r.Model+r.System+string(rune(int(r.Rate*100)))] = r
	}
	for _, sc := range []scenario{chatbot13B(), chatbot66B(), summarize13B(), summarize70B()} {
		top := sc.rates[len(sc.rates)-1]
		k := string(rune(int(top * 100)))
		wind, dist := byKey[sc.model.Name+"WindServe"+k], byKey[sc.model.Name+"DistServe"+k]
		if wind.Summary.TTFTP50 >= dist.Summary.TTFTP50 {
			t.Errorf("%s@%.2f: WindServe TTFT p50 %v !< DistServe %v",
				sc.model.Name, top, wind.Summary.TTFTP50, dist.Summary.TTFTP50)
		}
		if wind.Summary.Attainment < dist.Summary.Attainment {
			t.Errorf("%s@%.2f: WindServe attainment %.2f < DistServe %.2f",
				sc.model.Name, top, wind.Summary.Attainment, dist.Summary.Attainment)
		}
	}
	// Fig 11 renders from the same rows.
	var sb strings.Builder
	if _, err := ExpFig11(Options{}, &sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SLO attainment") {
		t.Error("Fig 11 output empty")
	}
}

func TestExpFig12Shape(t *testing.T) {
	rows, err := ExpFig12(Options{Requests: 220, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At the top rate of each placement WindServe must match or beat
	// DistServe (bottleneck-awareness), and the placements must expose
	// different binding constraints for DistServe.
	find := func(pl, sys string, rate float64) Fig12Row {
		for _, r := range rows {
			if r.Placement == pl && r.System == sys && r.Rate == rate {
				return r
			}
		}
		t.Fatalf("row %s/%s/%v missing", pl, sys, rate)
		return Fig12Row{}
	}
	if w, d := find("[TP-2, TP-1]", "WindServe", 4), find("[TP-2, TP-1]", "DistServe", 4); w.Attainment < d.Attainment {
		t.Errorf("starved decode: WindServe %.2f < DistServe %.2f", w.Attainment, d.Attainment)
	}
	if w, d := find("[TP-2, TP-2]", "WindServe", 5), find("[TP-2, TP-2]", "DistServe", 5); w.Attainment <= d.Attainment {
		t.Errorf("redundant decode: WindServe %.2f <= DistServe %.2f", w.Attainment, d.Attainment)
	}
	// DistServe's binding constraint flips between placements: with a
	// starved decode instance TPOT attainment suffers relative to the
	// redundant-decode case.
	dStarved := find("[TP-2, TP-1]", "DistServe", 4)
	dRedund := find("[TP-2, TP-2]", "DistServe", 4)
	if dStarved.TPOTAttain >= dRedund.TPOTAttain {
		t.Errorf("TPOT attainment should bind under [TP-2,TP-1]: %.2f vs %.2f",
			dStarved.TPOTAttain, dRedund.TPOTAttain)
	}
}

func TestExpFig13Shape(t *testing.T) {
	rows, err := ExpFig13(Options{Requests: 250, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At the top rates the full system's TPOT tail must not exceed the
	// ablated variants'.
	worst := func(study, system string) float64 {
		m := 0.0
		for _, r := range rows {
			if r.Study == study && r.System == system && r.TPOTP99Ms > m {
				m = r.TPOTP99Ms
			}
		}
		return m
	}
	if full, abl := worst("no-split", "WindServe"), worst("no-split", "WindServe-no-split"); full > abl {
		t.Errorf("no-split study: full TPOT p99 %.1f worse than ablation %.1f", full, abl)
	}
	if full, abl := worst("no-resche", "WindServe"), worst("no-resche", "WindServe-no-resche"); full > abl {
		t.Errorf("no-resche study: full TPOT p99 %.1f worse than ablation %.1f", full, abl)
	}
}
