package bench

import (
	"fmt"
	"io"

	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/par"
	"windserve/internal/perf"
	"windserve/internal/serve"
	"windserve/internal/stats"
	"windserve/internal/workload"
)

// Approximate street prices used for the cost-efficiency extension
// (USD; the exact values only set the scale of the $-normalized column).
const (
	priceA800    = 15000.0
	priceRTX4090 = 1800.0
)

// HeteroRow is one deployment's outcome in the heterogeneous-cluster
// extension experiment.
type HeteroRow struct {
	Deployment  string
	Rate        float64
	Attainment  float64
	TTFTP50Ms   float64
	TPOTP99Ms   float64
	ClusterCost float64
	// GoodputPerKiloUSD is SLO-satisfying req/s per $1000 of GPUs.
	GoodputPerKiloUSD float64
}

// ExpHetero explores the paper's §7 future-work proposal: prefill is
// compute-bound and does not need NVLink or large memory, so cheap
// high-FLOPS consumer GPUs (RTX 4090) can serve as prefill instances in
// front of A800 decode instances. We compare the all-A800 deployment
// against the mixed one under WindServe at equal per-GPU request rates
// and report cost-normalized goodput. (Extension — not a paper exhibit.)
func ExpHetero(o Options, w io.Writer) ([]HeteroRow, error) {
	o = o.withDefaults()
	// Each job builds its own topology: runs never share mutable state.
	deployments := []struct {
		name string
		topo func() *gpu.Topology
		cost float64
	}{
		{
			name: "4x A800 (paper baseline)",
			topo: func() *gpu.Topology { return gpu.HomogeneousTestbed(4, gpu.A800) },
			cost: 4 * priceA800,
		},
		{
			// 4090s prefill over PCIe (no NVLink); A800 pair decodes.
			name: "2x RTX4090 prefill + 2x A800 decode",
			topo: func() *gpu.Topology { return gpu.MixedTestbed(gpu.RTX4090, 2, false, gpu.A800, 2, true) },
			cost: 2*priceRTX4090 + 2*priceA800,
		},
	}
	var thunks []func() (HeteroRow, error)
	for _, rate := range []float64{2, 3, 4} {
		for _, dep := range deployments {
			rate, dep := rate, dep
			thunks = append(thunks, func() (HeteroRow, error) {
				cfg, err := o.config(model.OPT13B)
				if err != nil {
					return HeteroRow{}, err
				}
				cfg.Topo = dep.topo()
				gpus := float64(cfg.TotalGPUs())
				g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate * gpus}, o.Seed)
				res, err := serve.RunWindServe(cfg, g.Generate(o.Requests))
				if err != nil {
					return HeteroRow{}, fmt.Errorf("bench: hetero %s: %w", dep.name, err)
				}
				s := res.Summary
				return HeteroRow{
					Deployment:        dep.name,
					Rate:              rate,
					Attainment:        s.Attainment,
					TTFTP50Ms:         s.TTFTP50.Milliseconds(),
					TPOTP99Ms:         s.TPOTP99.Milliseconds(),
					ClusterCost:       dep.cost,
					GoodputPerKiloUSD: s.ThroughputRPS * s.Attainment / (dep.cost / 1000),
				}, nil
			})
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Extension (paper §7): heterogeneous prefill hardware under WindServe (OPT-13B, ShareGPT)")
	tw := table(w)
	fmt.Fprintln(tw, "deployment\trate\tSLO\tTTFT p50 (ms)\tTPOT p99 (ms)\tcluster $\tgoodput per k$")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%.1f\t%.1f\t$%.0f\t%.3f\n",
			row.Deployment, row.Rate, pctStr(row.Attainment), row.TTFTP50Ms, row.TPOTP99Ms,
			row.ClusterCost, row.GoodputPerKiloUSD)
	}
	return rows, tw.Flush()
}

// AblationRow is one design-knob measurement.
type AblationRow struct {
	Knob       string
	Setting    string
	Attainment float64
	TPOTP99Ms  float64
	TTFTP50Ms  float64
	Extra      string
}

// ExpDesignAblations sweeps the design choices DESIGN.md calls out beyond
// the paper's own ablations: the stall-free drain threshold, the backup
// policy, and the rescheduling watermark. OPT-13B, ShareGPT at a
// memory-pressured rate. (Extension — not a paper exhibit.)
func ExpDesignAblations(o Options, w io.Writer) ([]AblationRow, error) {
	o = o.withDefaults()
	sc := chatbot13B()
	// The starved-decode allocation of Fig. 3/12 at a moderate rate: the
	// decode instance's KV runs dry, so rescheduling (and thus the drain
	// threshold, watermark and backup knobs) is the active mechanism.
	const rate = 3
	cfg, err := o.config(sc.model)
	if err != nil {
		return nil, err
	}
	cfg.DecodePlace = perf.Placement{TP: 1, PP: 1}
	reqs := sc.trace(rate, cfg, o)

	// The knob grid, in print order. Each job copies cfg before mutating,
	// so the shared base config and trace stay read-only under the pool.
	type spec struct {
		knob, setting string
		mut           func(*serve.Config)
	}
	specs := []spec{
		{"baseline", "defaults", nil},
	}
	for _, thr := range []int{16, 256, 1024} {
		thr := thr
		specs = append(specs, spec{"drain-threshold", fmt.Sprintf("%d tokens", thr), func(c *serve.Config) {
			c.Wind.Resched.DrainThresholdTokens = thr
		}})
	}
	specs = append(specs, spec{"backups", "disabled", func(c *serve.Config) {
		c.Wind.DisableBackup = true
	}})
	for _, wm := range []float64{0.02, 0.20} {
		wm := wm
		specs = append(specs, spec{"watermark", fmt.Sprintf("%.2f free", wm), func(c *serve.Config) {
			c.Wind.Resched.LowWatermark = wm
			if c.Wind.Resched.TargetFree <= wm {
				c.Wind.Resched.TargetFree = wm + 0.1
			}
		}})
	}
	for _, mc := range []int{1, 8} {
		mc := mc
		specs = append(specs, spec{"max-migrations", fmt.Sprintf("%d", mc), func(c *serve.Config) {
			c.Wind.Resched.MaxConcurrentMigrations = mc
		}})
	}

	rows, err := par.Map(o.pool(), specs, func(_ int, sp spec) (AblationRow, error) {
		c := cfg
		if sp.mut != nil {
			sp.mut(&c)
		}
		res, err := serve.RunWindServe(c, reqs)
		if err != nil {
			return AblationRow{}, err
		}
		s := res.Summary
		return AblationRow{
			Knob: sp.knob, Setting: sp.setting,
			Attainment: s.Attainment,
			TPOTP99Ms:  s.TPOTP99.Milliseconds(),
			TTFTP50Ms:  s.TTFTP50.Milliseconds(),
			Extra: fmt.Sprintf("resched=%d backups=%d swaps=%d",
				res.Rescheduled, res.Backups, res.DecodeKV.SwapOutEvents),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Design ablations (OPT-13B, ShareGPT @ 3 req/s/GPU, [TP-2,TP-1], WindServe)")
	tw := table(w)
	fmt.Fprintln(tw, "knob\tsetting\tSLO\tTTFT p50 (ms)\tTPOT p99 (ms)\tnotes")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\t%.1f\t%s\n", row.Knob, row.Setting,
			pctStr(row.Attainment), row.TTFTP50Ms, row.TPOTP99Ms, row.Extra)
	}
	return rows, tw.Flush()
}

// VictimRow compares the victim-selection policies of §3.3.
type VictimRow struct {
	Policy      string
	Rescheduled int
	MigrationGB float64
	Attainment  float64
	TPOTP99Ms   float64
}

// ExpVictimPolicy compares WindServe's longest-context-first victim
// selection against Llumnix's shortest-first (the paper contrasts the two
// in §3.3: short victims are cheap to move but free little memory, so
// pressure recurs and total migrations grow). OPT-13B, ShareGPT, starved
// decode allocation. (Extension — not a paper exhibit.)
func ExpVictimPolicy(o Options, w io.Writer) ([]VictimRow, error) {
	o = o.withDefaults()
	cfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	cfg.DecodePlace = perf.Placement{TP: 1, PP: 1}
	sc := chatbot13B()
	reqs := sc.trace(3, cfg, o)
	policies := []struct {
		name  string
		short bool
	}{
		{"longest-first (WindServe)", false},
		{"shortest-first (Llumnix)", true},
	}
	rows, err := par.Map(o.pool(), policies, func(_ int, pol struct {
		name  string
		short bool
	}) (VictimRow, error) {
		c := cfg
		c.Wind.Resched.PreferShortVictims = pol.short
		res, err := serve.RunWindServe(c, reqs)
		if err != nil {
			return VictimRow{}, err
		}
		return VictimRow{
			Policy:      pol.name,
			Rescheduled: res.Rescheduled,
			MigrationGB: res.MigrationGB,
			Attainment:  res.Summary.Attainment,
			TPOTP99Ms:   res.Summary.TPOTP99.Milliseconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Victim selection: WindServe (longest-first) vs Llumnix-style (shortest-first)")
	fmt.Fprintln(w, "(OPT-13B, ShareGPT @ 3 req/s/GPU, [TP-2, TP-1])")
	tw := table(w)
	fmt.Fprintln(tw, "policy\tmigrations\tmigrated+backup GB\tSLO\tTPOT p99 (ms)")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\t%.1f\n", row.Policy, row.Rescheduled,
			row.MigrationGB, pctStr(row.Attainment), row.TPOTP99Ms)
	}
	return rows, tw.Flush()
}

// ShiftRow is one system's per-phase outcome under a load step.
type ShiftRow struct {
	System          string
	Phase1Attain    float64 // before the step (2 req/s/GPU)
	Phase2Attain    float64 // after the step (5 req/s/GPU)
	Phase2TTFTP50Ms float64
}

// ExpShift steps the request rate mid-trace (2 → 5 req/s/GPU on OPT-13B
// ShareGPT). DistServe's answer to pattern shifts is offline replanning
// with stagnation (§2.2); WindServe's dynamic scheduling absorbs the step
// online. We report per-phase SLO attainment. (Extension — not a paper
// exhibit.)
func ExpShift(o Options, w io.Writer) ([]ShiftRow, error) {
	o = o.withDefaults()
	cfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	gpus := float64(cfg.TotalGPUs())
	n1 := o.Requests / 2
	n2 := o.Requests - n1
	low := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 2 * gpus}, o.Seed).Generate(n1)
	high := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 5 * gpus}, o.Seed+1).Generate(n2)
	reqs := workload.Concat(low, high, 0)
	shiftAt := reqs[n1].Arrival

	runs := []func(serve.Config, []workload.Request) (*serve.Result, error){
		serve.RunDistServe, serve.RunWindServe,
	}
	rows, err := par.Map(o.pool(), runs, func(_ int, run func(serve.Config, []workload.Request) (*serve.Result, error)) (ShiftRow, error) {
		res, err := run(cfg, reqs)
		if err != nil {
			return ShiftRow{}, err
		}
		var p1Meet, p1N, p2Meet, p2N int
		var p2TTFT []float64
		for _, rec := range res.Records {
			meets := rec.MeetsSLO(cfg.SLO)
			if rec.Arrival < shiftAt {
				p1N++
				if meets {
					p1Meet++
				}
			} else {
				p2N++
				if meets {
					p2Meet++
				}
				p2TTFT = append(p2TTFT, rec.TTFT().Seconds())
			}
		}
		row := ShiftRow{System: res.System}
		if p1N > 0 {
			row.Phase1Attain = float64(p1Meet) / float64(p1N)
		}
		if p2N > 0 {
			row.Phase2Attain = float64(p2Meet) / float64(p2N)
			row.Phase2TTFTP50Ms = stats.PercentilesOf(p2TTFT, 50)[0] * 1e3
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Load step: 2 → 5 req/s/GPU mid-trace (OPT-13B, ShareGPT)")
	tw := table(w)
	fmt.Fprintln(tw, "system\tphase-1 SLO\tphase-2 SLO\tphase-2 TTFT p50 (ms)")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\n", row.System,
			pctStr(row.Phase1Attain), pctStr(row.Phase2Attain), row.Phase2TTFTP50Ms)
	}
	return rows, tw.Flush()
}

// MixedRow is one system's outcome under a blended workload.
type MixedRow struct {
	System     string
	Attainment float64
	TTFTP50Ms  float64
	TPOTP99Ms  float64
}

// ExpMixed serves a 50/50 blend of chatbot (ShareGPT) and summarization
// (LongBench) lengths from one LLaMA2-13B cluster — the mixed downstream
// workload scenario that motivates disaggregation in related work
// (TetriInfer). Heterogeneous prompt lengths stress the dispatch
// threshold's token-based load signal. (Extension — not a paper exhibit.)
func ExpMixed(o Options, w io.Writer) ([]MixedRow, error) {
	o = o.withDefaults()
	cfg, err := o.config(model.LLaMA213B)
	if err != nil {
		return nil, err
	}
	ds := workload.Mixture(workload.ShareGPT(), workload.LongBench(), 0.5, cfg.Model.MaxContext)
	g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: 1.5 * float64(cfg.TotalGPUs())}, o.Seed)
	reqs := g.Generate(o.Requests)
	runs := []func(serve.Config, []workload.Request) (*serve.Result, error){
		serve.RunVLLM, serve.RunDistServe, serve.RunWindServe,
	}
	rows, err := par.Map(o.pool(), runs, func(_ int, run func(serve.Config, []workload.Request) (*serve.Result, error)) (MixedRow, error) {
		res, err := run(cfg, reqs)
		if err != nil {
			return MixedRow{}, err
		}
		return MixedRow{
			System:     res.System,
			Attainment: res.Summary.Attainment,
			TTFTP50Ms:  res.Summary.TTFTP50.Milliseconds(),
			TPOTP99Ms:  res.Summary.TPOTP99.Milliseconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Mixed workload: %s on LLaMA2-13B @ 1.5 req/s/GPU\n", ds.Name)
	tw := table(w)
	fmt.Fprintln(tw, "system\tSLO\tTTFT p50 (ms)\tTPOT p99 (ms)")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.1f\n", row.System, pctStr(row.Attainment), row.TTFTP50Ms, row.TPOTP99Ms)
	}
	return rows, tw.Flush()
}

// ScaleRow is one deployment-scale point of the linear-scaling study.
type ScaleRow struct {
	Deployment string
	GPUs       int
	Rate       float64 // per GPU
	System     string
	Attainment float64
	TTFTP50Ms  float64
	Dispatched int
}

// ExpScale verifies the paper's linear scaling rule across instance
// counts and exercises multi-instance load balancing (the paper's stated
// future work, §7): the 8-GPU deployment runs 2 prefill + 2 decode
// instances and should hold per-GPU service quality close to the 4-GPU
// 1+1 deployment at equal per-GPU rates. (Extension — not a paper
// exhibit.)
func ExpScale(o Options, w io.Writer) ([]ScaleRow, error) {
	o = o.withDefaults()
	// Configs and traces per (deployment, rate) are built serially; the
	// flattened (deployment × rate × system) runs fan out on the pool.
	var thunks []func() (ScaleRow, error)
	for _, dep := range []struct {
		name   string
		np, nd int
	}{
		{"1 prefill + 1 decode (4 GPUs)", 1, 1},
		{"2 prefill + 2 decode (8 GPUs)", 2, 2},
	} {
		for _, rate := range []float64{2, 3, 4} {
			cfg, err := o.config(model.OPT13B)
			if err != nil {
				return nil, err
			}
			cfg.NumPrefill, cfg.NumDecode = dep.np, dep.nd
			g := workload.NewGenerator(workload.ShareGPT(),
				workload.PoissonArrivals{Rate: rate * float64(cfg.TotalGPUs())}, o.Seed)
			reqs := g.Generate(o.Requests)
			for _, sys := range []struct {
				name string
				run  func(serve.Config, []workload.Request) (*serve.Result, error)
			}{{"DistServe", serve.RunDistServe}, {"WindServe", serve.RunWindServe}} {
				dep, rate, cfg, reqs := dep, rate, cfg, reqs
				name, run := sys.name, sys.run
				thunks = append(thunks, func() (ScaleRow, error) {
					res, err := run(cfg, reqs)
					if err != nil {
						return ScaleRow{}, fmt.Errorf("bench: scale %s %s: %w", dep.name, name, err)
					}
					return ScaleRow{
						Deployment: dep.name, GPUs: cfg.TotalGPUs(), Rate: rate, System: res.System,
						Attainment: res.Summary.Attainment,
						TTFTP50Ms:  res.Summary.TTFTP50.Milliseconds(),
						Dispatched: res.Dispatched,
					}, nil
				})
			}
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Linear scaling across instance counts (OPT-13B, ShareGPT, WindServe vs DistServe)")
	tw := table(w)
	fmt.Fprintln(tw, "deployment\trate/GPU\tsystem\tSLO\tTTFT p50 (ms)\tdispatched")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%s\t%s\t%.1f\t%d\n", row.Deployment, row.Rate, row.System,
			pctStr(row.Attainment), row.TTFTP50Ms, row.Dispatched)
	}
	return rows, tw.Flush()
}

// ChunkRow is one chunk-size point of the chunked-prefill trade-off.
type ChunkRow struct {
	ChunkSize  int
	TTFTP50Ms  float64
	TPOTP99Ms  float64
	Attainment float64
}

// ExpChunkSize sweeps vLLM's chunked-prefill chunk size — the trade-off
// §3.4 describes: smaller chunks cut single-step decode cost but inflate
// prefill time (and TTFT), larger chunks do the opposite. OPT-13B,
// ShareGPT at a moderate rate. (Extension — not a paper exhibit.)
func ExpChunkSize(o Options, w io.Writer) ([]ChunkRow, error) {
	o = o.withDefaults()
	cfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	sc := chatbot13B()
	reqs := sc.trace(3, cfg, o)
	rows, err := par.Map(o.pool(), []int{128, 256, 512, 1024, 2048}, func(_ int, chunk int) (ChunkRow, error) {
		c := cfg
		c.ChunkSize = chunk
		res, err := serve.RunVLLM(c, reqs)
		if err != nil {
			return ChunkRow{}, err
		}
		return ChunkRow{
			ChunkSize:  chunk,
			TTFTP50Ms:  res.Summary.TTFTP50.Milliseconds(),
			TPOTP99Ms:  res.Summary.TPOTP99.Milliseconds(),
			Attainment: res.Summary.Attainment,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Chunked-prefill chunk-size trade-off (vLLM, OPT-13B, ShareGPT @ 3 req/s/GPU)")
	tw := table(w)
	fmt.Fprintln(tw, "chunk\tTTFT p50 (ms)\tTPOT p99 (ms)\tSLO")
	for _, row := range rows {
		fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%s\n", row.ChunkSize, row.TTFTP50Ms, row.TPOTP99Ms, pctStr(row.Attainment))
	}
	return rows, tw.Flush()
}

// BurstRow is one arrival-process point of the burstiness extension.
type BurstRow struct {
	Process    string
	System     string
	Attainment float64
	TTFTP99Ms  float64
	Dispatched int
}

// ExpBurst stresses the dynamic scheduler with bursty (hyperexponential)
// arrivals at the same mean rate as the Poisson baseline: flash crowds
// pile onto the prefill queue, which is exactly the signal Dynamic
// Prefill Dispatch reacts to. (Extension — not a paper exhibit.)
func ExpBurst(o Options, w io.Writer) ([]BurstRow, error) {
	o = o.withDefaults()
	cfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	gpus := float64(cfg.TotalGPUs())
	const rate = 3
	// Traces per arrival process are generated serially; the flattened
	// (process × system) runs fan out on the pool.
	var thunks []func() (BurstRow, error)
	for _, proc := range []workload.ArrivalProcess{
		workload.PoissonArrivals{Rate: rate * gpus},
		workload.BurstyArrivals{Rate: rate * gpus, BurstProb: 0.3, BurstFactor: 6},
	} {
		g := workload.NewGenerator(workload.ShareGPT(), proc, o.Seed)
		reqs := g.Generate(o.Requests)
		for _, sys := range []struct {
			name string
			run  func(serve.Config, []workload.Request) (*serve.Result, error)
		}{{"DistServe", serve.RunDistServe}, {"WindServe", serve.RunWindServe}} {
			proc, reqs := proc, reqs
			name, run := sys.name, sys.run
			thunks = append(thunks, func() (BurstRow, error) {
				res, err := run(cfg, reqs)
				if err != nil {
					return BurstRow{}, fmt.Errorf("bench: burst %s: %w", name, err)
				}
				return BurstRow{
					Process:    proc.Name(),
					System:     res.System,
					Attainment: res.Summary.Attainment,
					TTFTP99Ms:  res.Summary.TTFTP99.Milliseconds(),
					Dispatched: res.Dispatched,
				}, nil
			})
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "Burst robustness (OPT-13B, ShareGPT, mean 3 req/s/GPU)")
	tw := table(w)
	fmt.Fprintln(tw, "arrivals\tsystem\tSLO\tTTFT p99 (ms)\tdispatched")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%.1f\t%d\n", row.Process, row.System,
			pctStr(row.Attainment), row.TTFTP99Ms, row.Dispatched)
	}
	return rows, tw.Flush()
}
