package bench

import (
	"fmt"
	"io"

	"windserve/internal/fleet"
	"windserve/internal/model"
	"windserve/internal/serve"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// ScenarioRow is one (scenario, cache, affinity) outcome of the scenario
// exhibit.
type ScenarioRow struct {
	Scenario string
	Cache    bool // prefix caching (tiered) enabled on every KV manager
	Affinity bool // prefix-affinity routing instead of least-loaded

	Requests   int
	Completed  int
	Unfinished int
	Attainment float64
	GoodputRPS float64
	TTFTP50Ms  float64
	TTFTP99Ms  float64
	// HitRatio is the token-weighted prefix-cache hit ratio summed over
	// every KV manager in the fleet (0 with caching off).
	HitRatio float64
	// RestoredTokens counts host-tier prefix tokens promoted back to GPU
	// (nonzero only when the tiered path actually fired).
	RestoredTokens uint64
}

// ExpScenarios is the named-scenario exhibit: every workload scenario in
// the library (multi-turn chat, RAG, agentic tool loops, reasoning,
// diurnal) runs against a small LLaMA2-13B fleet under the full
// {prefix cache off/on} × {prefix-affinity routing off/on} grid. The
// table reports goodput, TTFT percentiles, SLO attainment, and the
// token-weighted prefix-cache hit ratio, so the value of cross-request
// caching (and of routing sessions back to the replica that holds their
// prefix) is readable per traffic class. Output is byte-identical per
// seed at any pool size. (Extension — not a paper exhibit; excluded from
// `windbench all`. Restrict with -scenario NAME or -prefixcache; size
// with -n.)
func ExpScenarios(o Options, w io.Writer) ([]ScenarioRow, error) {
	o = o.withDefaults()
	n := o.ScenarioRequests
	if n <= 0 {
		n = 5000
	}
	const replicas = 2

	// LLaMA2-13B: the only paper model whose 4096-token context fits the
	// agentic/RAG/reasoning scenarios' growth.
	rcfg, err := o.config(model.LLaMA213B)
	if err != nil {
		return nil, err
	}

	scs := workload.Scenarios()
	if o.Scenario != "" {
		sc, err := workload.ScenarioByName(o.Scenario)
		if err != nil {
			return nil, err
		}
		scs = []workload.Scenario{sc}
	} else {
		// mixshift carries no prefix identity, so the cache × affinity
		// grid has nothing to show on it; it headlines ext-elastic
		// instead. Still reachable here with -scenario mixshift.
		kept := scs[:0]
		for _, sc := range scs {
			if sc.Name != "mixshift" {
				kept = append(kept, sc)
			}
		}
		scs = kept
	}

	// ~1 req/s/GPU keeps the fleet below saturation in the cache-off
	// baseline, so cache-on improvements show up in TTFT rather than
	// drowning in queueing collapse.
	rate := 1.0 * float64(rcfg.TotalGPUs()) * float64(replicas)

	type job struct {
		sc              workload.Scenario
		cache, affinity bool
	}
	var jobs []job
	for _, sc := range scs {
		for _, cache := range []bool{false, true} {
			if o.PrefixCache && !cache {
				continue
			}
			for _, affinity := range []bool{false, true} {
				jobs = append(jobs, job{sc, cache, affinity})
			}
		}
	}
	thunks := make([]func() (ScenarioRow, error), len(jobs))
	for i, j := range jobs {
		j := j
		thunks[i] = func() (ScenarioRow, error) {
			cfg := fleet.Config{
				Replica:         rcfg,
				NumReplicas:     replicas,
				Policy:          "least-loaded",
				FailoverTimeout: sim.Seconds(30),
				MaxQueueDepth:   64 * replicas,
				TTFTDeadline:    sim.Seconds(120),
				BrownoutDepth:   48,
			}
			if j.affinity {
				cfg.Policy = "prefix-affinity"
			}
			if j.cache {
				cfg.Replica.Prefix = serve.PrefixPolicy{Enabled: true, Tiered: true}
			}
			res, err := fleet.RunFrom(cfg, j.sc.Source(n, rate, o.Seed))
			if err != nil {
				return ScenarioRow{}, fmt.Errorf("bench: scenario %s cache=%v affinity=%v: %w",
					j.sc.Name, j.cache, j.affinity, err)
			}
			var kv = res.PrefillKV
			kv.Accumulate(res.DecodeKV)
			return ScenarioRow{
				Scenario: j.sc.Name, Cache: j.cache, Affinity: j.affinity,
				Requests: res.Requests, Completed: res.Completed, Unfinished: res.Unfinished,
				Attainment: res.Summary.Attainment, GoodputRPS: res.Summary.GoodputRPS,
				TTFTP50Ms: res.Summary.TTFTP50.Milliseconds(),
				TTFTP99Ms: res.Summary.TTFTP99.Milliseconds(),
				HitRatio:  kv.PrefixHitRatio(), RestoredTokens: kv.PrefixRestoredTokens,
			}, nil
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Scenario library: %d replicas × LLaMA2-13B [%dP,%dD], %d reqs/run @ %.0f req/s, seed %d\n",
		replicas, max(rcfg.NumPrefill, 1), max(rcfg.NumDecode, 1), n, rate, o.Seed)
	tw := table(w)
	fmt.Fprintln(tw, "scenario\tcache\taffinity\tcompleted\tgoodput (rps)\tTTFT p50 (ms)\tTTFT p99 (ms)\tSLO\thit ratio\trestored tok")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.2f\t%.1f\t%.1f\t%s\t%.1f%%\t%d\n",
			r.Scenario, onOff(r.Cache), onOff(r.Affinity), r.Completed,
			r.GoodputRPS, r.TTFTP50Ms, r.TTFTP99Ms, pctStr(r.Attainment),
			100*r.HitRatio, r.RestoredTokens)
	}
	return rows, tw.Flush()
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
