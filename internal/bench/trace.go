package bench

import (
	"fmt"
	"io"

	"windserve/internal/fault"
	"windserve/internal/metrics"
	"windserve/internal/sched"
	"windserve/internal/serve"
	"windserve/internal/trace"
)

// TraceArtifacts is everything a traced run produces: the result, the
// execution-span tracer, and the scheduler decision log. The caller
// exports them (obs.WriteChromeTrace, DecisionLog.WriteJSONL) or inspects
// them directly in tests.
type TraceArtifacts struct {
	Result    *serve.Result
	Tracer    *trace.Tracer
	Decisions *sched.DecisionLog
}

// ExpTraceCapture runs WindServe on the OPT-13B ShareGPT scenario at
// 4 req/s/GPU — the middle of the Fig. 10a sweep — with full observability
// on: execution spans and occupancy counters in the Tracer, every
// scheduler decision in the DecisionLog. An optional fault plan perturbs
// the run (traced fault runs are where the timeline earns its keep).
func ExpTraceCapture(o Options, w io.Writer, plan *fault.Plan) (*TraceArtifacts, error) {
	o = o.withDefaults()
	sc := chatbot13B()
	cfg, err := o.config(sc.model)
	if err != nil {
		return nil, err
	}
	cfg.Tracer = trace.New()
	cfg.Decisions = sched.NewDecisionLog()
	cfg.Faults = plan

	reqs := sc.trace(4, cfg, o)
	res, err := serve.RunWindServe(cfg, reqs)
	if err != nil {
		return nil, fmt.Errorf("bench: trace capture: %w", err)
	}

	tw := table(w)
	fmt.Fprintf(tw, "system\treqs\tspans\tlanes\tcounter tracks\tdispatch\treschedule\troute\n")
	fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		res.System, res.Requests,
		len(cfg.Tracer.Spans), len(cfg.Tracer.Lanes()), len(cfg.Tracer.CounterTracks()),
		len(cfg.Decisions.Dispatches), len(cfg.Decisions.Reschedules), len(cfg.Decisions.Routes))
	tw.Flush()
	fmt.Fprintln(w, res)

	return &TraceArtifacts{Result: res, Tracer: cfg.Tracer, Decisions: cfg.Decisions}, nil
}

// AllRecords returns every finalized record — completed, aborted, and
// rejected — the full track set for timeline export.
func (a *TraceArtifacts) AllRecords() []*metrics.Record {
	r := a.Result
	out := make([]*metrics.Record, 0, len(r.Records)+len(r.AbortedRecords)+len(r.RejectedRecords))
	out = append(out, r.Records...)
	out = append(out, r.AbortedRecords...)
	out = append(out, r.RejectedRecords...)
	return out
}
