package bench

import (
	"fmt"
	"io"
	"math"

	"windserve/internal/fault"
	"windserve/internal/model"
	"windserve/internal/serve"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// ResilienceRow is one (system, plan) outcome of the fault-injection
// experiment.
type ResilienceRow struct {
	System     string
	Plan       string
	GoodputRPS float64
	Attainment float64
	Completed  int
	Aborted    int
	Rejected   int
	Recovered  int
	Unfinished int
}

// ExpResilience injects faults into a mid-trace serving run and compares
// how the systems degrade and recover: a decode-instance crash orphans
// every request decoding there, and the serving layer must either restore
// it from a proactive KV backup (WindServe §3.3) or re-prefill it from
// scratch (DistServe, vLLM). OPT-13B ShareGPT on a [1 prefill, 2 decode]
// deployment so a survivor exists; SLO-aware shedding keeps the overload
// after the crash bounded. A non-nil plan (windbench -faults) replaces
// the default mid-trace decode crash. (Extension — not a paper exhibit.)
func ExpResilience(o Options, w io.Writer, plan *fault.Plan) ([]ResilienceRow, error) {
	o = o.withDefaults()
	cfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	cfg.NumDecode = 2
	cfg.Shed = serve.ShedPolicy{MaxQueueDepth: 4 * o.Requests, TTFTDeadline: 20 * cfg.SLO.TTFT}
	sc := chatbot13B()
	const rate = 2.5
	reqs := sc.trace(rate, cfg, o)
	if plan == nil {
		// Crash decode 0 a third of the way through the arrival span and
		// never restore it: half the decode capacity is gone for good.
		at := sim.Time(math.Round(float64(reqs[len(reqs)-1].Arrival) / 3))
		plan = &fault.Plan{Seed: o.Seed, Events: []fault.Event{
			{Kind: fault.Crash, Role: fault.RoleDecode, Instance: 0, At: at},
		}}
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}

	// The validated plan and trace are shared read-only across the six
	// (system × {clean, faulted}) runs fanned out on the pool.
	var thunks []func() (ResilienceRow, error)
	for _, sys := range []struct {
		name string
		run  func(serve.Config, []workload.Request) (*serve.Result, error)
	}{
		{"vLLM", serve.RunVLLM},
		{"DistServe", serve.RunDistServe},
		{"WindServe", serve.RunWindServe},
	} {
		for _, faulted := range []bool{false, true} {
			name, run, faulted := sys.name, sys.run, faulted
			thunks = append(thunks, func() (ResilienceRow, error) {
				c := cfg
				label := "none"
				if faulted {
					c.Faults = plan
					label = fmt.Sprint(plan)
				}
				res, err := run(c, reqs)
				if err != nil {
					return ResilienceRow{}, fmt.Errorf("bench: resilience %s: %w", name, err)
				}
				return ResilienceRow{
					System: res.System, Plan: label,
					GoodputRPS: res.Summary.GoodputRPS, Attainment: res.Summary.Attainment,
					Completed: len(res.Records), Aborted: res.Aborted, Rejected: res.Rejected,
					Recovered: res.Recovered, Unfinished: res.Unfinished,
				}, nil
			})
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Fault injection (OPT-13B, ShareGPT @ %.1f req/s/GPU, [1P,2D], plan %q)\n", rate, plan.String())
	tw := table(w)
	fmt.Fprintln(tw, "system\tplan\tgoodput (rps)\tSLO\tcompleted\taborted\trejected\trecovered\tunfinished")
	for _, row := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%s\t%d\t%d\t%d\t%d\t%d\n",
			row.System, row.Plan, row.GoodputRPS, pctStr(row.Attainment),
			row.Completed, row.Aborted, row.Rejected, row.Recovered, row.Unfinished)
	}
	return rows, tw.Flush()
}
