package bench

import (
	"strings"
	"testing"
)

// elasticSmall sizes ExpElastic for tests: long enough to cross the
// mixshift phase boundary (so the controller actually flips) and the
// flash crowd, short enough for the default test timeout.
func elasticSmall() Options {
	o := small()
	o.ElasticRequests = 6000
	return o
}

func TestExpElastic(t *testing.T) {
	var sb strings.Builder
	rows, err := ExpElastic(elasticSmall(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (three static splits + elastic)", len(rows))
	}
	var elastic int
	for _, r := range rows {
		if r.Completed != 6000 {
			t.Errorf("%s: completed %d of 6000", r.Config, r.Completed)
		}
		if r.Digest == "" {
			t.Errorf("%s: empty result digest", r.Config)
		}
		if r.Elastic {
			elastic++
			if r.Flips == 0 {
				t.Errorf("%s: controller never flipped across a phase boundary", r.Config)
			}
		} else if r.Flips != 0 || r.Migrated != 0 || r.Requeued != 0 {
			t.Errorf("%s: static split reported flip activity: %+v", r.Config, r)
		}
	}
	if elastic != 1 {
		t.Fatalf("got %d elastic rows, want 1", elastic)
	}
	out := sb.String()
	for _, want := range []string{"mixshift", "2P/2D elastic", "goodput", "result digest"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestElasticParallelByteIdentical extends the runner contract to the
// elastic exhibit: serial and fanned-out execution print the same bytes —
// the property the CI elastic-smoke job enforces end to end (which also
// compares shard counts; fleet-level shard identity is pinned in
// internal/fleet's elastic tests).
func TestElasticParallelByteIdentical(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		o := elasticSmall()
		o.Parallel = workers
		var sb strings.Builder
		if _, err := ExpElastic(o, &sb); err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if workers == 1 {
			want = sb.String()
			continue
		}
		if got := sb.String(); got != want {
			t.Errorf("parallel=%d output differs from serial\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}
