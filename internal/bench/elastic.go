package bench

import (
	"crypto/sha256"
	"fmt"
	"io"

	"windserve/internal/elastic"
	"windserve/internal/fleet"
	"windserve/internal/model"
	"windserve/internal/workload"
)

// ElasticRow is one fleet configuration's outcome on the mix-shift
// workload.
type ElasticRow struct {
	// Config labels the per-replica split ("2P/2D", "3P/1D", ...) and
	// Elastic marks the row whose split moves at runtime.
	Config  string
	Elastic bool

	Requests   int
	Completed  int
	Unfinished int
	// GoodputRPS (SLO-attaining completions per second) is the exhibit's
	// headline: the quantity a wrong static split burns and role flipping
	// recovers.
	GoodputRPS float64
	Attainment float64
	TTFTP99Ms  float64
	TPOTP99Ms  float64
	Flips      int
	Migrated   int
	Requeued   int
	// Digest fingerprints the full Result (%+v, SHA-256 prefix) — the
	// byte-identity handle the CI elastic smoke compares across runs and
	// shard counts.
	Digest string
}

// ExpElastic is the elastic role-flipping exhibit: a 4-replica OPT-13B
// fleet serving the mixshift scenario — square-wave swings between
// prompt-heavy and decode-heavy traffic with a flash crowd — under four
// per-replica splits: the balanced static 2P/2D, the two statically
// "tuned" extremes (3P/1D and 1P/3D, each right for one phase and wrong
// for the other), and an elastic 2P/2D whose RoleController flips
// instances between roles as the mix moves. The comparison is
// goodput-at-SLO: any static split is mismatched half the time, so the
// elastic fleet is expected to beat all three. Output is byte-identical
// per seed at any -shards value. (Extension — not a paper exhibit;
// excluded from `windbench all`. Size with -n; pin shards with -shards.)
func ExpElastic(o Options, w io.Writer) ([]ElasticRow, error) {
	o = o.withDefaults()
	n := o.ElasticRequests
	if n <= 0 {
		n = 20_000
	}
	const replicas = 4

	rcfg, err := o.config(model.OPT13B)
	if err != nil {
		return nil, err
	}
	sc, err := workload.ScenarioByName("mixshift")
	if err != nil {
		return nil, err
	}
	// Every split below deploys 4 TP-2 instances per replica (8 GPUs).
	// ~1 req/s/GPU puts each phase right at the capacity of the matching
	// split: prompt-heavy phases saturate a balanced split's prefill side
	// and decode-heavy phases its decode side, while a right-sized split
	// still serves them — the regime where moving instances (rather than
	// shedding load) pays.
	const gpusPerReplica = 8
	rate := 1.0 * gpusPerReplica * float64(replicas)

	type split struct {
		label   string
		np, nd  int
		elastic bool
	}
	splits := []split{
		{"2P/2D static", 2, 2, false},
		{"3P/1D static", 3, 1, false},
		{"1P/3D static", 1, 3, false},
		{"2P/2D elastic", 2, 2, true},
	}
	thunks := make([]func() (ElasticRow, error), len(splits))
	for i, sp := range splits {
		sp := sp
		thunks[i] = func() (ElasticRow, error) {
			cfg := fleet.Config{
				Replica:     rcfg,
				NumReplicas: replicas,
				Policy:      "least-loaded",
				Shards:      o.FleetShards,
				Lookahead:   o.Lookahead,
				Placement:   o.Placement,
			}
			cfg.Replica.NumPrefill = sp.np
			cfg.Replica.NumDecode = sp.nd
			if sp.elastic {
				cfg.Elastic = elastic.Default()
			}
			res, err := fleet.RunFrom(cfg, sc.Source(n, rate, o.Seed))
			if err != nil {
				return ElasticRow{}, fmt.Errorf("bench: elastic %s: %w", sp.label, err)
			}
			sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", res)))
			return ElasticRow{
				Config: sp.label, Elastic: sp.elastic,
				Requests: res.Requests, Completed: res.Completed, Unfinished: res.Unfinished,
				GoodputRPS: res.Summary.GoodputRPS, Attainment: res.Summary.Attainment,
				TTFTP99Ms: res.Summary.TTFTP99.Milliseconds(),
				TPOTP99Ms: res.Summary.TPOTP99.Milliseconds(),
				Flips:     res.Flips, Migrated: res.FlipMigrated, Requeued: res.FlipRequeued,
				Digest: fmt.Sprintf("%x", sum[:6]),
			}, nil
		}
	}
	rows, err := fanOut(o, thunks)
	if err != nil {
		return nil, err
	}

	fmt.Fprintf(w, "Elastic role flipping: %d replicas × OPT-13B on mixshift, %d reqs @ %.0f req/s, seed %d\n",
		replicas, n, rate, o.Seed)
	tw := table(w)
	fmt.Fprintln(tw, "config\tcompleted\tgoodput (rps)\tSLO\tTTFT p99 (ms)\tTPOT p99 (ms)\tflips\tmigrated\trequeued\tresult digest")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%s\t%.1f\t%.1f\t%d\t%d\t%d\t%s\n",
			r.Config, r.Completed, r.GoodputRPS, pctStr(r.Attainment),
			r.TTFTP99Ms, r.TPOTP99Ms, r.Flips, r.Migrated, r.Requeued, r.Digest)
	}
	if err := tw.Flush(); err != nil {
		return rows, err
	}
	var el ElasticRow
	bestStatic := ElasticRow{GoodputRPS: -1}
	for _, r := range rows {
		if r.Elastic {
			el = r
		} else if r.GoodputRPS > bestStatic.GoodputRPS {
			bestStatic = r
		}
	}
	if el.GoodputRPS > bestStatic.GoodputRPS {
		fmt.Fprintf(w, "elastic beats best static split on goodput-at-SLO: %.2f vs %.2f rps (%s, %d flips)\n",
			el.GoodputRPS, bestStatic.GoodputRPS, bestStatic.Config, el.Flips)
	} else {
		fmt.Fprintf(w, "WARNING: elastic did not beat the best static split: %.2f vs %.2f rps (%s)\n",
			el.GoodputRPS, bestStatic.GoodputRPS, bestStatic.Config)
	}
	return rows, nil
}
