package bench

import (
	"strings"
	"testing"
)

// scenarioSmall sizes ExpScenarios for tests: the full scenario × cache ×
// affinity grid on short traces.
func scenarioSmall() Options {
	o := small()
	o.ScenarioRequests = 300
	return o
}

func TestExpScenarios(t *testing.T) {
	var sb strings.Builder
	rows, err := ExpScenarios(scenarioSmall(), &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("got %d rows, want 20 (5 scenarios × cache off/on × affinity off/on)", len(rows))
	}
	byKey := map[[3]string]ScenarioRow{}
	for _, r := range rows {
		byKey[[3]string{r.Scenario, onOff(r.Cache), onOff(r.Affinity)}] = r
		if !r.Cache && r.HitRatio != 0 {
			t.Errorf("%s cache=off: nonzero hit ratio %v", r.Scenario, r.HitRatio)
		}
	}
	// The session scenarios must actually hit the cache, and the hits must
	// buy TTFT: the exhibit's headline claim, enforced as a test.
	for _, name := range []string{"chat", "rag", "agentic"} {
		off := byKey[[3]string{name, "off", "off"}]
		on := byKey[[3]string{name, "on", "off"}]
		if on.HitRatio <= 0 {
			t.Errorf("%s: cache-on run recorded no prefix hits", name)
		}
		if on.TTFTP50Ms >= off.TTFTP50Ms {
			t.Errorf("%s: cache did not improve TTFT p50 (%.1fms on vs %.1fms off)",
				name, on.TTFTP50Ms, off.TTFTP50Ms)
		}
	}
	// Scenarios without prefix identity must be unaffected by either knob.
	base := byKey[[3]string{"reasoning", "off", "off"}]
	for _, cache := range []string{"off", "on"} {
		for _, aff := range []string{"off", "on"} {
			r := byKey[[3]string{"reasoning", cache, aff}]
			if r.HitRatio != 0 || r.TTFTP50Ms != base.TTFTP50Ms || r.Completed != base.Completed {
				t.Errorf("reasoning cache=%s affinity=%s drifted from baseline: %+v", cache, aff, r)
			}
		}
	}
	out := sb.String()
	for _, want := range []string{"chat", "rag", "agentic", "reasoning", "diurnal", "hit ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestExpScenariosFilters: -scenario and -prefixcache restrict the grid.
func TestExpScenariosFilters(t *testing.T) {
	o := scenarioSmall()
	o.Scenario = "chat"
	o.PrefixCache = true
	var sb strings.Builder
	rows, err := ExpScenarios(o, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2 (one scenario, cache on only, affinity off/on)", len(rows))
	}
	for _, r := range rows {
		if r.Scenario != "chat" || !r.Cache {
			t.Errorf("filtered grid leaked row %+v", r)
		}
	}
	o.Scenario = "no-such-scenario"
	if _, err := ExpScenarios(o, &sb); err == nil {
		t.Fatal("unknown scenario name did not error")
	}
}

// TestScenariosParallelByteIdentical extends the runner contract to the
// scenario exhibit: serial and fanned-out execution print the same bytes —
// the property the CI scenarios-smoke job enforces end to end.
func TestScenariosParallelByteIdentical(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		o := scenarioSmall()
		o.Parallel = workers
		var sb strings.Builder
		if _, err := ExpScenarios(o, &sb); err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if workers == 1 {
			want = sb.String()
			continue
		}
		if got := sb.String(); got != want {
			t.Errorf("parallel=%d output differs from serial\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}
