package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// WriteRowsCSV emits Fig. 10/11 sweep rows as CSV for external plotting:
// one line per (model, dataset, rate, system) with the latency percentiles
// and attainment the paper's figures plot.
func WriteRowsCSV(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"model", "dataset", "rate_per_gpu", "system",
		"ttft_p50_ms", "ttft_p90_ms", "ttft_p99_ms",
		"tpot_p50_ms", "tpot_p90_ms", "tpot_p99_ms",
		"slo_attainment", "ttft_attainment", "tpot_attainment",
		"throughput_rps", "goodput_rps", "decode_queue_p99_ms",
		"aborted", "rejected", "recovered", "completed",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.4f", v) }
	for _, r := range rows {
		s := r.Summary
		var aborted, rejected, recovered, completed int
		if r.Result != nil {
			aborted, rejected, recovered = r.Result.Aborted, r.Result.Rejected, r.Result.Recovered
			completed = len(r.Result.Records)
		}
		rec := []string{
			r.Model, r.Dataset, f(r.Rate), r.System,
			f(s.TTFTP50.Milliseconds()), f(s.TTFTP90.Milliseconds()), f(s.TTFTP99.Milliseconds()),
			f(s.TPOTP50.Milliseconds()), f(s.TPOTP90.Milliseconds()), f(s.TPOTP99.Milliseconds()),
			f(s.Attainment), f(s.TTFTAttainment), f(s.TPOTAttainment),
			f(s.ThroughputRPS), f(s.GoodputRPS), f(s.DecodeQueueP99.Milliseconds()),
			fmt.Sprint(aborted), fmt.Sprint(rejected), fmt.Sprint(recovered),
			fmt.Sprint(completed),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
