package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"sort"
	"strings"
	"testing"

	"windserve/internal/metrics"
	"windserve/internal/obs"
)

// captureOnce runs the traced capture at a small, fixed scale. Shared by
// the acceptance tests below so the simulation runs once.
var captured *TraceArtifacts

func capture(t *testing.T) *TraceArtifacts {
	t.Helper()
	if captured != nil {
		return captured
	}
	art, err := ExpTraceCapture(Options{Requests: 120, Seed: 42}, io.Discard, nil)
	if err != nil {
		t.Fatal(err)
	}
	captured = art
	return art
}

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

func exportChrome(t *testing.T, art *TraceArtifacts) []chromeEvent {
	t.Helper()
	var b bytes.Buffer
	if err := obs.WriteChromeTrace(&b, art.Tracer, art.AllRecords()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &f); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	return f.TraceEvents
}

// TestTraceCaptureChromeExport is the -trace acceptance criterion: the
// emitted JSON parses, carries at least one named track per instance,
// and every completed request's phase spans tile arrival→completion.
func TestTraceCaptureChromeExport(t *testing.T) {
	art := capture(t)
	events := exportChrome(t, art)

	// Track names, by pid.
	threads := map[int]map[int]string{}
	for _, e := range events {
		if e.Ph == "M" && e.Name == "thread_name" {
			if threads[e.Pid] == nil {
				threads[e.Pid] = map[int]string{}
			}
			threads[e.Pid][e.Tid], _ = e.Args["name"].(string)
		}
	}
	instNames := map[string]bool{}
	for _, n := range threads[1] {
		instNames[n] = true
	}
	for _, want := range []string{"prefill-0", "decode-0"} {
		if !instNames[want] {
			t.Errorf("no instance track named %q (got %v)", want, instNames)
		}
	}

	// Request tracks are assigned tids in ID order; map each completed
	// record to its tid and check its spans tile without gaps.
	recs := art.AllRecords()
	sorted := append([]*metrics.Record(nil), recs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	spansByTid := map[int][]chromeEvent{}
	for _, e := range events {
		// Zero-length phases export as thread instants; they still count
		// toward the tiling. Outcome markers (aborted/rejected) do not.
		phase := e.Ph == "X" || (e.Ph == "i" && e.Args["req"] != nil)
		if e.Pid == 2 && phase {
			spansByTid[e.Tid] = append(spansByTid[e.Tid], e)
		}
	}
	if len(art.Result.Records) == 0 {
		t.Fatal("capture completed no requests")
	}
	for i, r := range sorted {
		if r.Outcome != metrics.OutcomeCompleted {
			continue
		}
		tid := i + 1
		spans := spansByTid[tid]
		if len(spans) == 0 {
			t.Fatalf("completed req %d (tid %d) has no spans", r.ID, tid)
		}
		sort.Slice(spans, func(a, b int) bool { return spans[a].Ts < spans[b].Ts })
		const usTol = 1e-3
		if got, want := spans[0].Ts, float64(r.Arrival)*1e6; got-want > usTol || want-got > usTol {
			t.Errorf("req %d: first span starts %v µs, want arrival %v", r.ID, got, want)
		}
		end := spans[0].Ts
		for _, s := range spans {
			if s.Ts-end > usTol {
				t.Errorf("req %d: gap before %q at %v µs (prev end %v)", r.ID, s.Name, s.Ts, end)
			}
			if s.Ts+s.Dur > end {
				end = s.Ts + s.Dur
			}
		}
		if want := float64(r.Completion) * 1e6; end-want > usTol || want-end > usTol {
			t.Errorf("req %d: spans end at %v µs, want completion %v", r.ID, end, want)
		}
	}
}

// TestTraceCaptureDecisionLog is the -decisions acceptance criterion:
// one dispatch entry per Coordinator decision, each carrying the full
// candidate set with per-candidate predicted TTFT, and the JSONL export
// parses line by line.
func TestTraceCaptureDecisionLog(t *testing.T) {
	art := capture(t)
	dl := art.Decisions
	if len(dl.Dispatches) == 0 {
		t.Fatal("no dispatch decisions recorded")
	}
	toDecode := 0
	for _, d := range dl.Dispatches {
		if len(d.Candidates) < 2 {
			t.Fatalf("req %d: %d candidates, want prefill and decode", d.ReqID, len(d.Candidates))
		}
		for _, c := range d.Candidates {
			if c.PredictedTTFT != c.ComputeTTFT+c.TransferTTFT {
				t.Fatalf("req %d %s: TTFT terms do not sum", d.ReqID, c.Instance)
			}
		}
		if d.ToDecode {
			toDecode++
		}
	}
	if toDecode != art.Result.Dispatched {
		t.Errorf("log shows %d decode dispatches, Result says %d", toDecode, art.Result.Dispatched)
	}

	var b bytes.Buffer
	if err := dl.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	lines := 0
	sc := bufio.NewScanner(&b)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var obj struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		switch obj.Type {
		case "dispatch", "reschedule", "route":
		default:
			t.Fatalf("unknown decision type %q", obj.Type)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != dl.Len() {
		t.Errorf("JSONL lines = %d, log Len() = %d", lines, dl.Len())
	}
}

// TestTraceCaptureSummaryOutput checks the human-readable capture summary
// names the collectors' totals.
func TestTraceCaptureSummaryOutput(t *testing.T) {
	var b strings.Builder
	if _, err := ExpTraceCapture(Options{Requests: 40, Seed: 7}, &b, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, col := range []string{"spans", "dispatch", "reschedule", "route"} {
		if !strings.Contains(out, col) {
			t.Errorf("summary missing %q column:\n%s", col, out)
		}
	}
}
