// Package bench regenerates every table and figure of the paper's
// evaluation (§5) plus its motivating measurements (§1–2): each ExpXxx
// function runs the necessary simulations and prints rows/series shaped
// like the paper's, returning the structured data for tests and plots.
//
// Absolute numbers differ from the paper (their testbed, our simulator);
// the reproduced quantities are the shapes: who wins, by what factor, and
// where the crossovers are. EXPERIMENTS.md records both sides.
package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"windserve/internal/metrics"
	"windserve/internal/model"
	"windserve/internal/par"
	"windserve/internal/serve"
	"windserve/internal/workload"
)

// Options sizes the experiment runs.
type Options struct {
	// Requests per simulation run. Larger = tighter percentiles, slower.
	Requests int
	// Seed fixes the workload RNG.
	Seed int64
	// Parallel bounds how many independent simulation runs an exhibit
	// executes concurrently; <= 0 means par.Default() (GOMAXPROCS unless
	// overridden by windbench -parallel). Every run owns its simulator,
	// RNG, and recorder, and rows are collected in submission order, so
	// output is byte-identical at any setting.
	Parallel int
	// Stream opts every run into the bounded-memory streaming recorder
	// (serve.Config.Stream): per-class online aggregates and P² percentile
	// sketches instead of full per-request record retention. Off by
	// default, keeping the committed exhibits byte-identical.
	Stream bool
	// MaxRecords bounds per-class record retention when Stream is set;
	// <= 0 means metrics.DefaultMaxRecords.
	MaxRecords int
	// MegaRequests sizes ExpMega's long-horizon run; <= 0 means 1,000,000.
	MegaRequests int
	// FleetRequests sizes ExpFleetChaos's runs; <= 0 means 100,000.
	FleetRequests int
	// FleetReplicas sets ExpFleetChaos's replica count; <= 0 means 16.
	FleetReplicas int
	// FleetShards, when > 0, fixes the shard count for ExpFleetChaos's
	// fleet runs and restricts ExpFleetScale's sweep to {1, FleetShards}.
	// Fleet results are byte-identical at any value (windbench -shards).
	FleetShards int
	// FleetScaleRequests sizes ExpFleetScale's runs; <= 0 means 1,000,000.
	FleetScaleRequests int
	// FleetScaleReplicas sets ExpFleetScale's replica count; <= 0 means 64.
	FleetScaleReplicas int
	// Lookahead picks the shard-barrier mode for fleet runs: "adaptive"
	// (default) or "fixed". Results are byte-identical either way
	// (windbench -lookahead).
	Lookahead string
	// Placement picks the replica→shard layout for fleet runs:
	// "round-robin" (default) or "cost". Placement moves actors between
	// shards, never bytes of output (windbench -placement).
	Placement string
	// ScenarioRequests sizes ExpScenarios's runs; <= 0 means 5,000.
	ScenarioRequests int
	// ElasticRequests sizes ExpElastic's runs; <= 0 means 20,000.
	ElasticRequests int
	// Elastic additionally runs ExpFleetChaos's fleets with the default
	// elastic role-flipping policy (windbench -elastic). ExpElastic always
	// compares elastic against static splits regardless of this flag.
	Elastic bool
	// Scenario restricts ExpScenarios to one named workload scenario;
	// empty runs the whole library.
	Scenario string
	// PrefixCache restricts ExpScenarios to its prefix-caching-on
	// configurations (skipping the cache-off baselines).
	PrefixCache bool
}

// DefaultOptions returns the sizes used for the committed EXPERIMENTS.md.
func DefaultOptions() Options { return Options{Requests: 600, Seed: 42} }

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 600
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// pool returns the worker pool an exhibit fans its runs across.
func (o Options) pool() *par.Pool { return par.NewPool(o.Parallel) }

// config builds a model's default serving config with the exhibit's
// streaming policy applied — the single point where Options.Stream reaches
// the serve layer.
func (o Options) config(m model.Config) (serve.Config, error) {
	cfg, err := serve.DefaultConfig(m)
	if err != nil {
		return cfg, err
	}
	if o.Stream {
		cfg.Stream = serve.StreamPolicy{Enabled: true, MaxRecords: o.MaxRecords}
	}
	return cfg, nil
}

// scenario binds a model to its dataset and rate sweep (per-GPU req/s,
// following the paper's linear scaling rule).
type scenario struct {
	model   model.Config
	dataset workload.Dataset
	rates   []float64
}

// chatbot13B is the OPT-13B ShareGPT scenario of Fig. 10a/b (top).
func chatbot13B() scenario {
	return scenario{model: model.OPT13B, dataset: workload.ShareGPT(), rates: []float64{2, 3, 4, 5, 6}}
}

// chatbot66B is the OPT-66B ShareGPT scenario of Fig. 10a/b (bottom).
func chatbot66B() scenario {
	return scenario{model: model.OPT66B, dataset: workload.ShareGPT(), rates: []float64{0.3, 0.45, 0.6, 0.75, 0.9}}
}

// summarize13B is the LLaMA2-13B LongBench scenario of Fig. 10c/d (top).
func summarize13B() scenario {
	return scenario{model: model.LLaMA213B, dataset: workload.LongBench(), rates: []float64{0.5, 0.75, 1.0, 1.25, 1.5}}
}

// summarize70B is the LLaMA2-70B LongBench scenario of Fig. 10c/d (bottom).
func summarize70B() scenario {
	return scenario{model: model.LLaMA270B, dataset: workload.LongBench(), rates: []float64{0.1, 0.15, 0.2, 0.25, 0.3}}
}

// trace generates the scenario's request stream at a per-GPU rate. The
// dataset's context cap is tightened to the serving model's limit.
func (sc scenario) trace(perGPURate float64, cfg serve.Config, o Options) []workload.Request {
	ds := sc.dataset
	if ds.MaxContext > sc.model.MaxContext {
		ds.MaxContext = sc.model.MaxContext
	}
	gpus := float64(cfg.TotalGPUs())
	g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: perGPURate * gpus}, o.Seed)
	return g.Generate(o.Requests)
}

// Row is one (system, rate) measurement — the atom of Fig. 10/11 series.
type Row struct {
	Model   string
	Dataset string
	System  string
	Rate    float64 // per-GPU req/s
	Summary metrics.Summary
	Result  *serve.Result
}

// fanOut runs independent simulation thunks on the exhibit's pool and
// returns their results in submission order. Thunks must not share
// mutable state: each simulation run owns its simulator, RNG, and
// recorder, and anything shared (request traces, fault plans, topologies)
// is read-only for the duration.
func fanOut[R any](o Options, thunks []func() (R, error)) ([]R, error) {
	return par.Run(o.pool(), len(thunks), func(i int) (R, error) { return thunks[i]() })
}

// systemOrder fixes the deterministic row order within every sweep point.
var systemOrder = []string{"vLLM", "DistServe", "WindServe", "WindServe-no-split", "WindServe-no-resche"}

// sweepPoint is one (scenario, rate) cell of a sweep, carrying its system
// rows in canonical order once the pool has drained.
type sweepPoint struct {
	scIdx int
	sc    scenario
	rate  float64
	rows  []Row
}

// runSweep flattens (scenario × rate × system) into a single pool fan-out
// — the finest independent-run granularity a sweep has — and regroups the
// rows per (scenario, rate) point in serial nesting order, so callers
// print byte-identical output at any pool size. Traces are generated
// up front (cheap, deterministic) and shared read-only across the
// point's systems.
func runSweep(scs []scenario, o Options, systems map[string]func(serve.Config, []workload.Request) (*serve.Result, error)) ([]sweepPoint, error) {
	type job struct {
		point int
		name  string
		run   func(serve.Config, []workload.Request) (*serve.Result, error)
		cfg   serve.Config
		reqs  []workload.Request
		sc    scenario
		rate  float64
	}
	var points []sweepPoint
	var jobs []job
	for si, sc := range scs {
		for _, rate := range sc.rates {
			cfg, err := o.config(sc.model)
			if err != nil {
				return nil, err
			}
			reqs := sc.trace(rate, cfg, o)
			points = append(points, sweepPoint{scIdx: si, sc: sc, rate: rate})
			for _, name := range systemOrder {
				run, ok := systems[name]
				if !ok {
					continue
				}
				jobs = append(jobs, job{
					point: len(points) - 1, name: name, run: run,
					cfg: cfg, reqs: reqs, sc: sc, rate: rate,
				})
			}
		}
	}
	rows, err := par.Map(o.pool(), jobs, func(_ int, j job) (Row, error) {
		res, err := j.run(j.cfg, j.reqs)
		if err != nil {
			return Row{}, fmt.Errorf("bench: %s %s rate %v: %w", j.sc.model.Name, j.name, j.rate, err)
		}
		return Row{
			Model: j.sc.model.Name, Dataset: j.sc.dataset.Name, System: res.System,
			Rate: j.rate, Summary: res.Summary, Result: res,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		points[j.point].rows = append(points[j.point].rows, rows[i])
	}
	return points, nil
}

// runSystems runs the named systems on one scenario/rate and returns rows.
func runSystems(sc scenario, rate float64, o Options, systems map[string]func(serve.Config, []workload.Request) (*serve.Result, error)) ([]Row, error) {
	sc.rates = []float64{rate}
	points, err := runSweep([]scenario{sc}, o, systems)
	if err != nil {
		return nil, err
	}
	return points[0].rows, nil
}

func threeSystems() map[string]func(serve.Config, []workload.Request) (*serve.Result, error) {
	return map[string]func(serve.Config, []workload.Request) (*serve.Result, error){
		"vLLM":      serve.RunVLLM,
		"DistServe": serve.RunDistServe,
		"WindServe": serve.RunWindServe,
	}
}

// table starts an aligned writer.
func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func ms(d interface{ Milliseconds() float64 }) string {
	return fmt.Sprintf("%.1f", d.Milliseconds())
}

func pctStr(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
