package bench

import (
	"encoding/csv"
	"strings"
	"testing"

	"windserve/internal/metrics"
	"windserve/internal/sim"
)

func TestWriteRowsCSV(t *testing.T) {
	rows := []Row{
		{
			Model: "OPT-13B", Dataset: "ShareGPT", System: "WindServe", Rate: 4,
			Summary: metrics.Summary{
				TTFTP50: sim.Milliseconds(100), TTFTP99: sim.Milliseconds(400),
				TPOTP99: sim.Milliseconds(60), Attainment: 0.9,
			},
		},
		{
			Model: "OPT-13B", Dataset: "ShareGPT", System: "DistServe", Rate: 4,
			Summary: metrics.Summary{TTFTP50: sim.Milliseconds(2000), Attainment: 0.07},
		},
	}
	var sb strings.Builder
	if err := WriteRowsCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "model" || recs[0][10] != "slo_attainment" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][3] != "WindServe" || recs[1][4] != "100.0000" {
		t.Errorf("row 1 = %v", recs[1])
	}
	if recs[2][10] != "0.0700" {
		t.Errorf("row 2 attainment = %v", recs[2][10])
	}
}
