package bench

import (
	"encoding/csv"
	"strings"
	"testing"

	"windserve/internal/metrics"
	"windserve/internal/serve"
	"windserve/internal/sim"
)

func TestWriteRowsCSV(t *testing.T) {
	rows := []Row{
		{
			Model: "OPT-13B", Dataset: "ShareGPT", System: "WindServe", Rate: 4,
			Summary: metrics.Summary{
				TTFTP50: sim.Milliseconds(100), TTFTP99: sim.Milliseconds(400),
				TPOTP99: sim.Milliseconds(60), Attainment: 0.9,
			},
		},
		{
			Model: "OPT-13B", Dataset: "ShareGPT", System: "DistServe", Rate: 4,
			Summary: metrics.Summary{TTFTP50: sim.Milliseconds(2000), Attainment: 0.07, GoodputRPS: 1.25},
			Result:  &serve.Result{Aborted: 3, Rejected: 7, Recovered: 2},
		},
	}
	var sb strings.Builder
	if err := WriteRowsCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 { // header + 2 rows
		t.Fatalf("records = %d", len(recs))
	}
	if recs[0][0] != "model" || recs[0][10] != "slo_attainment" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[1][3] != "WindServe" || recs[1][4] != "100.0000" {
		t.Errorf("row 1 = %v", recs[1])
	}
	if recs[2][10] != "0.0700" {
		t.Errorf("row 2 attainment = %v", recs[2][10])
	}
	gp := indexOf(recs[0], "goodput_rps")
	if gp < 0 || recs[2][gp] != "1.2500" {
		t.Errorf("row 2 goodput = %v", recs[2])
	}
	// Fault-lifecycle counters ride along; rows without a Result emit zeros.
	ab := indexOf(recs[0], "aborted")
	if ab < 0 || recs[2][ab] != "3" || recs[2][ab+1] != "7" || recs[2][ab+2] != "2" {
		t.Errorf("row 2 lifecycle counters = %v", recs[2])
	}
	if recs[1][ab] != "0" || recs[1][ab+1] != "0" || recs[1][ab+2] != "0" {
		t.Errorf("row 1 lifecycle counters = %v", recs[1])
	}
}

func indexOf(header []string, name string) int {
	for i, h := range header {
		if h == name {
			return i
		}
	}
	return -1
}
