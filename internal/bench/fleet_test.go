package bench

import (
	"strings"
	"testing"
)

// fleetSmall sizes ExpFleetChaos for tests: the full policy × chaos grid
// on a small fleet and trace.
func fleetSmall() Options {
	o := small()
	o.FleetRequests = 600
	o.FleetReplicas = 4
	return o
}

func TestExpFleetChaos(t *testing.T) {
	var sb strings.Builder
	rows, err := ExpFleetChaos(fleetSmall(), &sb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6 (3 policies × clean/chaos)", len(rows))
	}
	for _, r := range rows {
		if got := r.Completed + r.Aborted + r.Rejected + r.Unfinished; got != r.Requests {
			t.Errorf("%s chaos=%v: lifecycle partition broken: %d != %d requests",
				r.Policy, r.Chaos, got, r.Requests)
		}
		if r.Chaos {
			if r.FailedOver == 0 {
				t.Errorf("%s: chaos run failed nothing over", r.Policy)
			}
			if len(r.RecoverySec) != 1 {
				t.Errorf("%s: want 1 recovery-time entry for 1 rcrash, got %v", r.Policy, r.RecoverySec)
			}
		} else if r.FailedOver != 0 || r.Aborted != 0 {
			t.Errorf("%s: clean run lost requests: %+v", r.Policy, r)
		}
	}
	out := sb.String()
	for _, want := range []string{"round-robin", "least-loaded", "weighted", "rcrash:r0@", "recovery s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestFleetChaosParallelByteIdentical extends the runner contract to the
// fleet exhibit: serial and fanned-out execution print the same bytes —
// the property the CI chaos-smoke job enforces end to end.
func TestFleetChaosParallelByteIdentical(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4} {
		o := fleetSmall()
		o.Parallel = workers
		var sb strings.Builder
		if _, err := ExpFleetChaos(o, &sb, nil); err != nil {
			t.Fatalf("parallel=%d: %v", workers, err)
		}
		if workers == 1 {
			want = sb.String()
			continue
		}
		if got := sb.String(); got != want {
			t.Errorf("parallel=%d output differs from serial\nserial:\n%s\nparallel:\n%s",
				workers, want, got)
		}
	}
}
