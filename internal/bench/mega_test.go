package bench

import (
	"strings"
	"testing"
)

// TestExpMegaSmall exercises the long-horizon exhibit end to end at a
// size CI can afford: all rows complete their requests, streaming rows
// report plausible rates, and the table prints.
func TestExpMegaSmall(t *testing.T) {
	var sb strings.Builder
	rows, err := ExpMega(Options{Requests: 100, MegaRequests: 3000, Seed: 42}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.SimReqPerSec <= 0 || r.PeakHeapMB <= 0 || r.SimSeconds <= 0 {
			t.Errorf("%s/%s: implausible row %+v", r.System, r.Mode, r)
		}
	}
	if rows[0].Requests != 3000 || rows[1].Requests != 3000 {
		t.Errorf("streaming rows sized %d/%d, want 3000", rows[0].Requests, rows[1].Requests)
	}
	if rows[2].Mode != "exact" || rows[2].Requests != 300 {
		t.Errorf("contrast row = %+v, want exact mode at n/10", rows[2])
	}
	if !strings.Contains(sb.String(), "peak heap MB") {
		t.Errorf("table missing header:\n%s", sb.String())
	}
}
