package bench

import (
	"io"
	"strings"
	"testing"

	"windserve/internal/workload"
)

// TestParallelOutputByteIdentical pins the runner's central contract: an
// exhibit's printed output is byte-for-byte the same whether its runs
// execute serially or fan out across the pool. ExpFig1 covers the
// runSweep path (scenario × rate × system), ExpFig5 the thunk path, and
// ExpResilience the extension path with a shared fault plan.
func TestParallelOutputByteIdentical(t *testing.T) {
	o := small()
	o.Requests = 120
	exhibits := []struct {
		name string
		run  func(o Options, w io.Writer) error
	}{
		{"fig1", func(o Options, w io.Writer) error { _, err := ExpFig1(o, w); return err }},
		{"fig5", func(o Options, w io.Writer) error { _, err := ExpFig5(o, w); return err }},
		{"ext-faults", func(o Options, w io.Writer) error { _, err := ExpResilience(o, w, nil); return err }},
	}
	for _, ex := range exhibits {
		var want string
		for _, workers := range []int{1, 4, 8} {
			po := o
			po.Parallel = workers
			var sb strings.Builder
			if err := ex.run(po, &sb); err != nil {
				t.Fatalf("%s parallel=%d: %v", ex.name, workers, err)
			}
			if workers == 1 {
				want = sb.String()
				continue
			}
			if got := sb.String(); got != want {
				t.Errorf("%s: parallel=%d output differs from serial\nserial:\n%s\nparallel:\n%s",
					ex.name, workers, want, got)
			}
		}
	}
}

// TestExpTable2RunToRun pins run-to-run determinism under the pool: the
// same options must yield identical rows (and bytes) every invocation.
func TestExpTable2RunToRun(t *testing.T) {
	o := small()
	o.Parallel = 4
	var want string
	var wantRows []workload.TraceStats
	for i := 0; i < 3; i++ {
		var sb strings.Builder
		rows, err := ExpTable2(o, &sb)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want, wantRows = sb.String(), rows
			continue
		}
		if sb.String() != want {
			t.Fatalf("run %d: output differs from run 0", i)
		}
		if len(rows) != len(wantRows) {
			t.Fatalf("run %d: %d rows, want %d", i, len(rows), len(wantRows))
		}
		for j := range rows {
			if rows[j] != wantRows[j] {
				t.Errorf("run %d row %d: %+v != %+v", i, j, rows[j], wantRows[j])
			}
		}
	}
}
