package bench

import (
	"fmt"
	"io"
	"testing"
)

func TestExpHeteroShape(t *testing.T) {
	rows, err := ExpHetero(Options{Requests: 250, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		homo, mixed := rows[i], rows[i+1]
		// The §7 thesis: the mixed cluster trades some absolute SLO
		// attainment for markedly better cost efficiency.
		if mixed.ClusterCost >= homo.ClusterCost {
			t.Errorf("mixed cluster should be cheaper: $%.0f vs $%.0f", mixed.ClusterCost, homo.ClusterCost)
		}
		if mixed.GoodputPerKiloUSD <= homo.GoodputPerKiloUSD {
			t.Errorf("rate %.1f: mixed goodput/k$ %.3f should beat homogeneous %.3f",
				homo.Rate, mixed.GoodputPerKiloUSD, homo.GoodputPerKiloUSD)
		}
		// But the homogeneous cluster keeps the better absolute latency
		// profile (A800 prefill is faster than 4090 prefill here).
		if mixed.Attainment > homo.Attainment+0.05 {
			t.Errorf("rate %.1f: mixed attainment %.2f unexpectedly beats homogeneous %.2f",
				homo.Rate, mixed.Attainment, homo.Attainment)
		}
	}
}

func TestExpVictimPolicyShape(t *testing.T) {
	rows, err := ExpVictimPolicy(Options{Requests: 400, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	longest, shortest := rows[0], rows[1]
	// §3.3's argument: short victims free little memory, so pressure
	// recurs and migration count balloons relative to longest-first.
	if longest.Rescheduled == 0 {
		t.Fatal("no migrations at the pressured allocation")
	}
	if shortest.Rescheduled <= longest.Rescheduled {
		t.Errorf("Llumnix-style migrations %d should exceed WindServe's %d",
			shortest.Rescheduled, longest.Rescheduled)
	}
}

func TestExpBurstShape(t *testing.T) {
	rows, err := ExpBurst(Options{Requests: 350, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(procPrefix, sys string) BurstRow {
		for _, r := range rows {
			if r.System == sys && len(r.Process) >= len(procPrefix) && r.Process[:len(procPrefix)] == procPrefix {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", procPrefix, sys)
		return BurstRow{}
	}
	// Bursts hurt both systems, but WindServe degrades far less: its
	// dispatch absorbs flash crowds into the decode instance.
	dp, db := get("poisson", "DistServe"), get("bursty", "DistServe")
	wp, wb := get("poisson", "WindServe"), get("bursty", "WindServe")
	if db.Attainment >= dp.Attainment {
		t.Errorf("bursts should hurt DistServe: %.2f -> %.2f", dp.Attainment, db.Attainment)
	}
	if wb.Attainment <= db.Attainment {
		t.Errorf("WindServe under bursts %.2f should beat DistServe %.2f", wb.Attainment, db.Attainment)
	}
	if wb.Dispatched <= wp.Dispatched {
		t.Errorf("bursts should increase dispatch activity: %d -> %d", wp.Dispatched, wb.Dispatched)
	}
}

func TestExpScaleShape(t *testing.T) {
	rows, err := ExpScale(Options{Requests: 300, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	att := map[string]float64{}
	for _, r := range rows {
		att[fmt.Sprintf("%d/%s/%.0f", r.GPUs, r.System, r.Rate)] = r.Attainment
	}
	// Linear scaling: WindServe's per-GPU quality at 8 GPUs stays within
	// ~12 points of the 4-GPU deployment at every rate (statistical
	// multiplexing may even improve it).
	for _, rate := range []float64{2, 3, 4} {
		small := att[fmt.Sprintf("4/WindServe/%.0f", rate)]
		big := att[fmt.Sprintf("8/WindServe/%.0f", rate)]
		if big < small-0.12 {
			t.Errorf("rate %.0f: 8-GPU attainment %.2f collapsed vs 4-GPU %.2f", rate, big, small)
		}
	}
}

func TestExpChunkSizeShape(t *testing.T) {
	rows, err := ExpChunkSize(Options{Requests: 300, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §3.4's trade-off: the largest chunk must beat the smallest on TTFT,
	// and the smallest chunk must have the lowest (or tied) decode tail.
	smallest, largest := rows[0], rows[len(rows)-1]
	if largest.TTFTP50Ms >= smallest.TTFTP50Ms {
		t.Errorf("TTFT p50 should fall with chunk size: %d→%.1f ms vs %d→%.1f ms",
			smallest.ChunkSize, smallest.TTFTP50Ms, largest.ChunkSize, largest.TTFTP50Ms)
	}
	if smallest.TPOTP99Ms > largest.TPOTP99Ms {
		t.Errorf("TPOT p99 should grow with chunk size: %d→%.1f ms vs %d→%.1f ms",
			smallest.ChunkSize, smallest.TPOTP99Ms, largest.ChunkSize, largest.TPOTP99Ms)
	}
}

func TestExpShiftShape(t *testing.T) {
	rows, err := ExpShift(Options{Requests: 400, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	dist, wind := rows[0], rows[1]
	// Both hold phase 1; the step separates them.
	if dist.Phase1Attain < 0.6 || wind.Phase1Attain < 0.9 {
		t.Errorf("phase 1: dist %.2f wind %.2f", dist.Phase1Attain, wind.Phase1Attain)
	}
	if wind.Phase2Attain <= dist.Phase2Attain {
		t.Errorf("phase 2: WindServe %.2f should beat DistServe %.2f", wind.Phase2Attain, dist.Phase2Attain)
	}
	if wind.Phase2TTFTP50Ms >= dist.Phase2TTFTP50Ms {
		t.Errorf("phase 2 TTFT: WindServe %.1f should beat DistServe %.1f",
			wind.Phase2TTFTP50Ms, dist.Phase2TTFTP50Ms)
	}
}

func TestExpMixedShape(t *testing.T) {
	rows, err := ExpMixed(Options{Requests: 300, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]MixedRow{}
	for _, r := range rows {
		byName[r.System] = r
	}
	wind, dist := byName["WindServe"], byName["DistServe"]
	if wind.Attainment < dist.Attainment {
		t.Errorf("mixed workload: WindServe %.2f below DistServe %.2f", wind.Attainment, dist.Attainment)
	}
	if wind.TPOTP99Ms >= dist.TPOTP99Ms {
		t.Errorf("mixed workload: WindServe TPOT p99 %.1f not below DistServe %.1f",
			wind.TPOTP99Ms, dist.TPOTP99Ms)
	}
}

func TestExpDesignAblations(t *testing.T) {
	rows, err := ExpDesignAblations(Options{Requests: 350, Seed: 42}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	var baseline AblationRow
	for _, r := range rows {
		if r.Knob == "baseline" {
			baseline = r
		}
		if r.Attainment <= 0 || r.Attainment > 1 {
			t.Errorf("%s/%s attainment = %v", r.Knob, r.Setting, r.Attainment)
		}
	}
	if baseline.Knob == "" {
		t.Fatal("no baseline row")
	}
	// In the starved-decode regime the baseline must actually exercise
	// rescheduling (otherwise the knobs are untested no-ops).
	if baseline.Extra == "resched=0 backups=0 swaps=0" {
		t.Errorf("baseline exercised nothing: %s", baseline.Extra)
	}
}
