package fleet

// The role controller is the fleet's elastic brain: it watches each
// replica's self-reported pressure signals (the same NetDelay-stale view
// the routing policies read) and flips instances between prefill and
// decode roles when one phase is predicted to miss its SLO while the
// other has headroom. Decisions happen on the router actor; execution is
// an mFlip message to the replica, whose serve-layer drain/migrate
// protocol (serve/elastic.go) does the actual work. Hysteresis lives in
// elastic.Policy.Decide, overload deferral in the shared brown-out
// helpers, and a per-replica cooldown keeps the fleet from thrashing.

import (
	"fmt"

	"windserve/internal/elastic"
	"windserve/internal/sched"
	"windserve/internal/sim"
)

// roleController runs on the router shard. One tick chain (the same
// kick/park pattern as replica load reports) evaluates every replica;
// per-replica cooldown and pending-flip state serialize flips so a
// replica never sees a second mFlip while draining the first.
type roleController struct {
	f   *fleet
	pol elastic.Policy

	// profP/profD predict prefill latency and decode iteration time for
	// the replicas' instance shapes (identical across replicas).
	profP, profD *sched.Profiler
	mdb          int // per-instance decode batch cap (occupancy denominator)

	pendingFlip []bool     // an mFlip is in flight toward this replica
	nextFlipAt  []sim.Time // cooldown gate, per replica

	ticking bool
	tickFn  func()

	flips    int // executed flips (FlipResult.OK)
	migrated int // decode streams migrated by flips
	requeued int // queued prefills re-routed by flips
}

func newRoleController(f *fleet) (*roleController, error) {
	pcm, dcm := f.acts[0].rp.CostModels()
	profP, err := sched.Profile(pcm, nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: profiling prefill shape: %w", err)
	}
	profD, err := sched.Profile(dcm, nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: profiling decode shape: %w", err)
	}
	mdb := f.cfg.Replica.MaxDecodeBatch
	if mdb <= 0 {
		mdb = 256 // serve's fillDefaults value
	}
	rc := &roleController{
		f: f, pol: f.cfg.Elastic,
		profP: profP, profD: profD, mdb: mdb,
		pendingFlip: make([]bool, f.cfg.NumReplicas),
		nextFlipAt:  make([]sim.Time, f.cfg.NumReplicas),
	}
	rc.tickFn = rc.tick
	return rc, nil
}

// kick (re)starts the tick chain; called on every admission. Nil-safe so
// the static fleet's admit path stays branch-free.
func (rc *roleController) kick() {
	if rc == nil || rc.ticking {
		return
	}
	rc.ticking = true
	rc.f.s.Schedule(rc.pol.Every, rc.tickFn)
}

// tick evaluates every replica once, then re-arms — or parks when the
// fleet has drained, so the shard group can terminate.
func (rc *roleController) tick() {
	f := rc.f
	if len(f.state) == 0 && len(f.parked) == 0 {
		rc.ticking = false // idle: park; the next admission restarts it
		return
	}
	f.updateBrownout()
	if !f.brownout {
		// A browned-out fleet defers flips the way it defers failovers:
		// draining and re-prefilling work mid-overload only deepens it.
		for i := range f.replicas {
			rc.consider(i)
		}
	}
	f.s.Schedule(rc.pol.Every, rc.tickFn)
}

// consider evaluates one replica and sends at most one mFlip.
func (rc *roleController) consider(i int) {
	f := rc.f
	if f.down[i] || f.partitioned[i] || rc.pendingFlip[i] || f.s.Now() < rc.nextFlipAt[i] {
		return
	}
	sig := f.replicas[i].sig
	if sig.actP <= 0 || sig.actD <= 0 {
		return // no elastic report yet (or a role drained to zero mid-crash)
	}
	pp, dp := rc.pressures(sig)
	dir := rc.pol.Decide(pp, dp, sig.actP, sig.actD)
	if dir == elastic.None {
		return
	}
	f.dec.AddRoute(f.s.Now(), 0, f.replicas[i].Name(),
		fmt.Sprintf("flip-%s pp=%.2f dp=%.2f", dir, pp, dp))
	rc.pendingFlip[i] = true
	a := 0
	if dir == elastic.ToDecode {
		a = 1
	}
	f.sendTo(i, msg{kind: mFlip, a: a})
}

// pressures converts a replica's load signals into dimensionless SLO
// pressures: predicted TTFT of the per-instance prompt backlog over the
// TTFT SLO, and the larger of decode batch occupancy and predicted
// iteration time over the TPOT SLO. A pressure of 1.0 means the phase is
// right at its SLO with zero slack.
func (rc *roleController) pressures(sig loadInfo) (prefill, decode float64) {
	slo := rc.f.cfg.Replica.SLO
	prefill = sloRatio(rc.profP.PredictPrefill(sig.qTok/sig.actP), slo.TTFT)
	decode = float64(sig.run) / float64(sig.actD*rc.mdb)
	if r := sloRatio(rc.profD.PredictDecode(sig.sumCtx/sig.actD), slo.TPOT); r > decode {
		decode = r
	}
	return prefill, decode
}

// sloRatio is predicted/slo with a zero SLO reading as "no pressure" —
// an unset SLO must not divide by zero or pin the controller one way.
func sloRatio(pred, slo sim.Duration) float64 {
	if slo <= 0 {
		return 0
	}
	return pred.Seconds() / slo.Seconds()
}

// flipDone resolves one flip: the replica finished (or refused) the role
// change. The cooldown arms either way — a refused flip means the floor
// or health stopped it, and re-asking every tick would spam the wire.
func (rc *roleController) flipDone(idx int, m msg) {
	if rc == nil {
		return
	}
	rc.pendingFlip[idx] = false
	rc.nextFlipAt[idx] = rc.f.s.Now().Add(rc.pol.Cooldown)
	if m.ok {
		rc.flips++
		rc.migrated += m.a
		rc.requeued += m.b
	}
}
