package fleet

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"windserve/internal/sched"
	"windserve/internal/sim"
)

// digest runs one fleet config and returns the printed Result plus a
// SHA-256 over the decision log's JSONL — the same two artifacts the CI
// determinism gate compares.
func digest(t *testing.T, cfg Config, seed int64) (string, [32]byte) {
	t.Helper()
	cfg.Decisions = sched.NewDecisionLog()
	res, err := Run(cfg, trace(150, 10, seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Decisions.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", res), sha256.Sum256(buf.Bytes())
}

// TestShardedDeterminism is the tentpole property: partitioning the fleet
// across shard simulators on worker goroutines must not change a single
// byte of output. Every seed runs sequentially (Shards=1, adaptive
// lookahead — the default) and then at 2/4/8 shards in both lookahead
// modes under the same rcrash+rpart+cancel chaos; the printed Result and
// the decision-log digest must match exactly across every combination.
func TestShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(1); seed <= 10; seed++ {
		cfg := testConfig(t, 8)
		// Alternate policies so the delayed-load view, penalty decay, and
		// affinity spill paths all cross the determinism gate.
		cfg.Policy = []string{"least-loaded", "weighted", "prefix-affinity"}[seed%3]
		cfg.FailoverTimeout = sim.Seconds(10)
		cfg.BrownoutDepth = 16
		cfg.Faults = mustPlan(t, "rcrash:r1@10+20; rpart:r3@25+10; cancel@30x0.1")
		cfg.Faults.Seed = seed
		cfg.Shards = 1
		wantRes, wantDig := digest(t, cfg, seed)
		for _, mode := range []string{"adaptive", "fixed"} {
			cfg.Lookahead = mode
			for _, shards := range []int{1, 2, 4, 8} {
				cfg.Shards = shards
				gotRes, gotDig := digest(t, cfg, seed)
				if gotRes != wantRes {
					t.Fatalf("seed %d: result diverges at %d shards (%s lookahead):\nsequential: %s\ngot:        %s",
						seed, shards, mode, wantRes, gotRes)
				}
				if gotDig != wantDig {
					t.Fatalf("seed %d: decision log diverges at %d shards (%s lookahead)", seed, shards, mode)
				}
			}
		}
	}
}

// TestPlacementInvariance pins the placement theorem: the replica→shard
// map changes where actors execute, never what they produce. Round-robin
// (the historical idx % Shards layout) is the reference; cost placement
// with wildly skewed synthetic costs, and with costs actually measured by
// a calibration run (CostsOut → ReplicaCosts), must reproduce its Result
// and decision log byte-for-byte.
func TestPlacementInvariance(t *testing.T) {
	cfg := testConfig(t, 8)
	cfg.Policy = "least-loaded"
	cfg.FailoverTimeout = sim.Seconds(10)
	cfg.Faults = mustPlan(t, "rcrash:r1@10+20; cancel@30x0.1")
	cfg.Faults.Seed = 5
	cfg.Shards = 4

	var costs []float64
	cfg.Placement = PlaceRoundRobin
	cfg.CostsOut = &costs
	wantRes, wantDig := digest(t, cfg, 5)
	cfg.CostsOut = nil
	if len(costs) != 8 {
		t.Fatalf("calibration run measured %d costs, want 8", len(costs))
	}
	nonzero := 0
	for _, c := range costs {
		if c > 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Fatal("calibration run measured no replica activity")
	}

	cases := map[string][]float64{
		"cost-skewed":   {100, 1, 1, 90, 2, 80, 3, 70},
		"cost-measured": costs,
		"cost-uniform":  nil,
	}
	for name, rc := range cases {
		cfg.Placement = PlaceCost
		cfg.ReplicaCosts = rc
		gotRes, gotDig := digest(t, cfg, 5)
		if gotRes != wantRes {
			t.Errorf("%s: result diverges from round-robin:\nwant %s\ngot  %s", name, wantRes, gotRes)
		}
		if gotDig != wantDig {
			t.Errorf("%s: decision log diverges from round-robin", name)
		}
	}
}

// TestPlacementLPT pins the greedy balancer itself: descending-cost
// assignment onto the lightest shard, deterministic tie-breaks.
func TestPlacementLPT(t *testing.T) {
	p, err := NewPlacement(PlaceCost, 5, 2, []float64{10, 9, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	// 10→s0, 9→s1, 2→s1 (11 vs 10... s1=9 lighter), 2→s0? loads: s0=10,
	// s1=9 → r2(2)→s1 (11); r3(2)→s0 (12)? s0=10 < s1=11 → s0; r4(1)→s1.
	want := []int{0, 1, 1, 0, 1}
	for i, w := range want {
		if got := p.ShardOf(i); got != w {
			t.Errorf("replica %d on shard %d, want %d", i, got, w)
		}
	}
	if _, err := NewPlacement("bogus", 2, 2, nil); err == nil {
		t.Error("unknown placement kind accepted")
	}
	if _, err := NewPlacement(PlaceCost, 3, 2, []float64{1}); err == nil {
		t.Error("mismatched cost vector accepted")
	}
}

// TestShardedDeterminismSmoke is the fast always-on slice of the sweep:
// one seed, chaos on, 1 vs 4 shards. CI runs the full sweep under -race
// with GOMAXPROCS=4.
func TestShardedDeterminismSmoke(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Policy = "least-loaded"
	cfg.FailoverTimeout = sim.Seconds(10)
	cfg.Faults = mustPlan(t, "rcrash:r1@10+20; rpart:r3@25+10")
	cfg.Faults.Seed = 3
	cfg.Shards = 1
	wantRes, wantDig := digest(t, cfg, 3)
	cfg.Shards = 4
	gotRes, gotDig := digest(t, cfg, 3)
	if gotRes != wantRes {
		t.Fatalf("result diverges at 4 shards:\nsequential: %s\n4 shards:   %s", wantRes, gotRes)
	}
	if gotDig != wantDig {
		t.Fatal("decision log diverges at 4 shards")
	}
}
