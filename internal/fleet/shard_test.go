package fleet

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"windserve/internal/sched"
	"windserve/internal/sim"
)

// digest runs one fleet config and returns the printed Result plus a
// SHA-256 over the decision log's JSONL — the same two artifacts the CI
// determinism gate compares.
func digest(t *testing.T, cfg Config, seed int64) (string, [32]byte) {
	t.Helper()
	cfg.Decisions = sched.NewDecisionLog()
	res, err := Run(cfg, trace(150, 10, seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Decisions.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", res), sha256.Sum256(buf.Bytes())
}

// TestShardedDeterminism is the tentpole property: partitioning the fleet
// across shard simulators on worker goroutines must not change a single
// byte of output. Every seed runs sequentially (Shards=1) and then at
// 2/4/8 shards under the same rcrash+rpart+cancel chaos; the printed
// Result and the decision-log digest must match exactly.
func TestShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep")
	}
	for seed := int64(1); seed <= 10; seed++ {
		cfg := testConfig(t, 8)
		// Alternate policies so the delayed-load view, penalty decay, and
		// affinity spill paths all cross the determinism gate.
		cfg.Policy = []string{"least-loaded", "weighted", "prefix-affinity"}[seed%3]
		cfg.FailoverTimeout = sim.Seconds(10)
		cfg.BrownoutDepth = 16
		cfg.Faults = mustPlan(t, "rcrash:r1@10+20; rpart:r3@25+10; cancel@30x0.1")
		cfg.Faults.Seed = seed
		cfg.Shards = 1
		wantRes, wantDig := digest(t, cfg, seed)
		for _, shards := range []int{2, 4, 8} {
			cfg.Shards = shards
			gotRes, gotDig := digest(t, cfg, seed)
			if gotRes != wantRes {
				t.Fatalf("seed %d: result diverges at %d shards:\nsequential: %s\n%d shards:  %s",
					seed, shards, wantRes, shards, gotRes)
			}
			if gotDig != wantDig {
				t.Fatalf("seed %d: decision log diverges at %d shards", seed, shards)
			}
		}
	}
}

// TestShardedDeterminismSmoke is the fast always-on slice of the sweep:
// one seed, chaos on, 1 vs 4 shards. CI runs the full sweep under -race
// with GOMAXPROCS=4.
func TestShardedDeterminismSmoke(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Policy = "least-loaded"
	cfg.FailoverTimeout = sim.Seconds(10)
	cfg.Faults = mustPlan(t, "rcrash:r1@10+20; rpart:r3@25+10")
	cfg.Faults.Seed = 3
	cfg.Shards = 1
	wantRes, wantDig := digest(t, cfg, 3)
	cfg.Shards = 4
	gotRes, gotDig := digest(t, cfg, 3)
	if gotRes != wantRes {
		t.Fatalf("result diverges at 4 shards:\nsequential: %s\n4 shards:   %s", wantRes, gotRes)
	}
	if gotDig != wantDig {
		t.Fatal("decision log diverges at 4 shards")
	}
}
