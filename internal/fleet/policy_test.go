package fleet

import (
	"testing"

	"windserve/internal/fault"
	"windserve/internal/sched"
	"windserve/internal/sim"
)

// failureWeight maps a replica-granularity chaos event to the weight the
// router would feed observeFailure with: crashes weigh 4, a slow replica
// surfaces as failover timeouts weighing 1 each.
func failureWeight(k fault.Kind) float64 {
	if k == fault.ReplicaCrash {
		return 4
	}
	return 1
}

// TestWeightedDecayProperties is the satellite property test: driving the
// weighted policy with observations derived from an rcrash/rslow chaos
// plan, each replica's penalty must (a) only ever decrease between its
// own observations, (b) be completely unaffected by interleaved
// observations on other replicas, and (c) saturate at penaltyCap under
// sustained chaos instead of accumulating without bound.
func TestWeightedDecayProperties(t *testing.T) {
	plan, err := fault.Parse(
		"rcrash:r0@5+10; rslow:r1@7x8+20; rcrash:r2@9+5; rslow:r0@12x4+10; " +
			"rcrash:r1@14+6; rslow:r2@15x16+30; rcrash:r0@21+4; rslow:r1@23x2+5")
	if err != nil {
		t.Fatal(err)
	}
	const replicas = 3
	p := newWeighted()
	p.ensure(replicas)

	at := func(s float64) sim.Time { return sim.Time(0).Add(sim.Seconds(s)) }
	for _, e := range plan.Events {
		now := at(e.At.Sub(sim.Time(0)).Seconds())
		// (b) isolation: an observation on e.Instance must not move any
		// other replica's decayed penalty.
		var before [replicas]float64
		for i := 0; i < replicas; i++ {
			before[i] = p.decayedAt(i, now)
		}
		p.observeAt(e.Instance, now, failureWeight(e.Kind))
		for i := 0; i < replicas; i++ {
			if i == e.Instance {
				if p.decayedAt(i, now) <= before[i] {
					t.Fatalf("event %v: observed replica %d penalty did not rise (%v -> %v)",
						e, i, before[i], p.decayedAt(i, now))
				}
				continue
			}
			if got := p.decayedAt(i, now); got != before[i] {
				t.Fatalf("event %v: replica %d penalty moved %v -> %v without an observation",
					e, i, before[i], got)
			}
		}
		// Rebase correctness: the stored value is exact as of now.
		if got := p.decayedAt(e.Instance, now); got != p.penalty[e.Instance] {
			t.Fatalf("event %v: decayedAt(now)=%v != stored %v", e, got, p.penalty[e.Instance])
		}
		// (a) monotone decay after the observation.
		prev := p.decayedAt(e.Instance, now)
		for _, dt := range []float64{0.5, 1, 5, 30, 120} {
			cur := p.decayedAt(e.Instance, now.Add(sim.Seconds(dt)))
			if cur > prev {
				t.Fatalf("event %v: penalty rose with time: %v -> %v at +%gs", e, prev, cur, dt)
			}
			if cur < 0 {
				t.Fatalf("event %v: negative penalty %v", e, cur)
			}
			prev = cur
		}
	}

	// (c) saturation: a replica hammered by back-to-back crashes holds
	// at the cap; no overflow, and recovery time stays bounded.
	now := at(100)
	for i := 0; i < 10_000; i++ {
		p.observeAt(0, now, 4)
	}
	if p.penalty[0] != penaltyCap {
		t.Fatalf("sustained chaos penalty = %v, want cap %v", p.penalty[0], penaltyCap)
	}
	// From the cap, the penalty decays below one queue-depth unit within
	// ~3 minutes of virtual time — the replica is routable again.
	if v := p.decayedAt(0, now.Add(sim.Seconds(200))); v >= 1 {
		t.Fatalf("penalty %v still >= 1 after 200s: saturated replica cannot recover", v)
	}
}

// TestPrefixAffinityRouting: same session → same healthy replica; no
// identity → load balancing; an unhealthy home reroutes deterministically.
func TestPrefixAffinityRouting(t *testing.T) {
	cfg := testConfig(t, 4)
	cfg.Policy = "prefix-affinity"

	// Multi-turn sessions: 60 requests over 12 sessions.
	reqs := trace(60, 30, 9)
	for i := range reqs {
		sid := uint64(i%12 + 1)
		reqs[i].SessionID = sid
		reqs[i].PrefixGroup = sid
		reqs[i].PrefixTokens = reqs[i].PromptTokens / 2
	}
	cfg.Decisions = sched.NewDecisionLog()
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	if res.Completed != 60 {
		t.Fatalf("completed %d of 60", res.Completed)
	}
	// Every session's routes must target a single replica.
	target := map[uint64]string{}
	for _, rr := range cfg.Decisions.Routes {
		if rr.Reason != "prefix-affinity" { // skip replica-internal routes
			continue
		}
		sid := uint64((rr.ReqID-1)%12 + 1)
		if prev, ok := target[sid]; ok && prev != rr.Target {
			t.Fatalf("session %d split across %s and %s", sid, prev, rr.Target)
		} else if !ok {
			target[sid] = rr.Target
		}
	}
	// And the hash must actually spread sessions over replicas.
	distinct := map[string]bool{}
	for _, tg := range target {
		distinct[tg] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all sessions on one replica: %v", target)
	}
}

// TestPrefixAffinityFailover: with the home replica crashed, sessions
// still complete — affinity degrades to balancing, never to parking.
func TestPrefixAffinityFailover(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.Policy = "prefix-affinity"
	cfg.Faults = mustPlan(t, "rcrash:r1@5+30")
	reqs := trace(120, 8, 11)
	for i := range reqs {
		reqs[i].SessionID = uint64(i%10 + 1)
	}
	res, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished under affinity failover", res.Unfinished)
	}
}
