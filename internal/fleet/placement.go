package fleet

import (
	"fmt"
	"sort"
)

// Placement is the single source of truth for which shard each replica
// actor lives on. Placement affects wall-clock balance only, never output:
// cross-shard message order is built from per-actor quantities (actor id,
// per-actor sequence numbers) and window ends from global state, so moving
// an actor between shards is unobservable in virtual time — any placement
// produces byte-identical results.
type Placement struct {
	shardOf []int
}

// Placement kinds accepted by Config.Placement.
const (
	// PlaceRoundRobin pins replica i to shard i % Shards — the historical
	// layout, kept as the default.
	PlaceRoundRobin = "round-robin"
	// PlaceCost balances replicas across shards by measured cost (longest-
	// processing-time greedy): replicas are taken in descending cost order
	// and each lands on the currently lightest shard. Costs come from
	// Config.ReplicaCosts — typically Config.CostsOut of a calibration run.
	// With no costs every replica weighs 1 and the greedy degenerates to
	// round-robin.
	PlaceCost = "cost"
)

// NewPlacement builds a replica→shard map for the given kind. costs may be
// nil (uniform); otherwise it must have one entry per replica.
func NewPlacement(kind string, replicas, shards int, costs []float64) (Placement, error) {
	if replicas < 1 || shards < 1 {
		return Placement{}, fmt.Errorf("fleet: placement needs >=1 replicas and shards, got %d/%d", replicas, shards)
	}
	if len(costs) != 0 && len(costs) != replicas {
		return Placement{}, fmt.Errorf("fleet: %d replica costs for %d replicas", len(costs), replicas)
	}
	p := Placement{shardOf: make([]int, replicas)}
	switch kind {
	case PlaceRoundRobin, "":
		for i := range p.shardOf {
			p.shardOf[i] = i % shards
		}
	case PlaceCost:
		// LPT greedy, fully deterministic: ties in cost order break toward
		// the lower replica index, ties in shard load toward the lower
		// shard index.
		order := make([]int, replicas)
		for i := range order {
			order[i] = i
		}
		cost := func(i int) float64 {
			if len(costs) == 0 {
				return 1
			}
			return costs[i]
		}
		sort.SliceStable(order, func(a, b int) bool { return cost(order[a]) > cost(order[b]) })
		load := make([]float64, shards)
		for _, i := range order {
			best := 0
			for s := 1; s < shards; s++ {
				if load[s] < load[best] {
					best = s
				}
			}
			p.shardOf[i] = best
			load[best] += cost(i)
		}
	default:
		return Placement{}, fmt.Errorf("fleet: unknown placement %q (want %s or %s)", kind, PlaceRoundRobin, PlaceCost)
	}
	return p, nil
}

// ShardOf returns the shard replica i lives on.
func (p Placement) ShardOf(i int) int { return p.shardOf[i] }
