package fleet

import (
	"windserve/internal/serve"
	"windserve/internal/shard"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// The fleet is a set of actors exchanging messages over a shard.Group:
// actor 0 is the router (always on shard 0, which executes on the
// coordinating goroutine), actor i+1 is replica i (on shard i % Shards).
// Actors never touch each other's memory — every interaction, including
// the request ledger writes that used to go straight into the shared
// recorder, is a message delayed by NetDelay. That delay is the group's
// conservative lookahead, which is what lets shards run concurrently.

// mkind enumerates the fleet's cross-shard message types.
type mkind uint8

const (
	// router → replica
	mSubmit   mkind = iota // w: the request to run
	mAbort                 // id: finalize as aborted and scrub
	mEvict                 // id, seq: remove without finalizing (failover)
	mCrash                 // whole-replica crash
	mRestore               // bring a crashed replica back
	mSlowdown              // f: compute slowdown factor
	mDegrade               // f: link bandwidth fraction
	mFlip                  // a=1: flip an acting prefill to decode; a=0 the reverse

	// replica → router
	mEvictReply   // id, seq, ok, lost, gen: eviction outcome
	mOrphan       // id, lost, gen: request orphaned by a crash
	mFlipDone     // ok, a=streams migrating, b=prefills requeued: flip outcome
	mLoad         // a=queue depth, b=in-flight, ld=elastic signals: delta-suppressed load report
	mPrefillStart // id, t: ledger forward
	mFirstToken   // id, t: ledger forward
	mDecodeStart  // id, t: ledger forward
	mComplete     // id, t: ledger forward
	mAbortRec     // id, t, a=emitted tokens: ledger forward
)

// msg is the one wire format every fleet actor speaks. Field meaning is
// per-kind (see the mkind constants); unused fields stay zero.
type msg struct {
	kind mkind
	to   int // destination actor: 0 = router, i+1 = replica i
	id   uint64
	a    int // lost tokens / queue depth / emitted tokens
	b    int // generated tokens / in-flight count
	seq  int // evict token, echoed in the reply
	ok   bool
	f    float64
	t    sim.Time // the true event time a ledger forward carries
	w    workload.Request
	ld   loadInfo // elastic pressure signals riding mLoad (zero unless elastic)
}

// loadInfo is the per-replica elastic pressure snapshot carried by mLoad.
// Populated only when the fleet runs elastic; otherwise every field stays
// zero and the wire format is byte-identical to the static fleet's.
type loadInfo struct {
	qTok   int // prompt-token backlog across acting prefills
	run    int // streams running across acting decodes
	sumCtx int // total context tokens across those streams
	actP   int // instances currently acting as prefill
	actD   int // instances currently acting as decode
}

// replicaActor runs one serve.Replica on its shard and speaks msg to the
// router: executes submits/aborts/evicts/faults, forwards every ledger
// write with its true timestamp, and self-reports load on a delta-
// suppressed timer (the router routes on this delayed view instead of
// reading replica state synchronously).
type replicaActor struct {
	f   *fleet
	idx int
	sh  *shard.Shard[msg]
	rp  *serve.Replica

	lastQ, lastIn int
	lastSig       loadInfo
	reporting     bool
	reportFn      func()
	// msgs counts messages this actor handled and sent — the measured
	// per-replica cost surfaced through Config.CostsOut for cost-based
	// placement of a repeat run.
	msgs int64
}

// send posts a message to the router.
func (ra *replicaActor) send(m msg) {
	m.to = 0
	ra.msgs++
	ra.sh.Send(0, ra.idx+1, ra.f.cfg.NetDelay, m)
}

func (ra *replicaActor) handle(m msg) {
	ra.msgs++
	switch m.kind {
	case mSubmit:
		ra.rp.Submit(m.w)
		ra.kickReports()
	case mAbort:
		ra.rp.Abort(m.id)
	case mEvict:
		q := ra.rp.Evict(m.id)
		if q == nil {
			ra.send(msg{kind: mEvictReply, id: m.id, seq: m.seq})
			return
		}
		ra.send(msg{kind: mEvictReply, id: m.id, seq: m.seq, ok: true,
			a: q.PrefillDone + q.Generated, b: q.Generated})
	case mCrash:
		for _, q := range ra.rp.Crash() { // orphans in ID order
			ra.send(msg{kind: mOrphan, id: q.W.ID,
				a: q.PrefillDone + q.Generated, b: q.Generated})
		}
	case mRestore:
		ra.rp.Restore()
	case mSlowdown:
		ra.rp.SetSlowdown(m.f)
	case mDegrade:
		ra.rp.DegradeLinks(m.f)
	case mFlip:
		res := ra.rp.Flip(m.a == 1)
		ra.send(msg{kind: mFlipDone, ok: res.OK, a: res.Migrating, b: res.Requeued})
		// A flip reshapes the load signals immediately; make sure the
		// report chain is running to carry the new shape to the router.
		ra.kickReports()
	}
}

// kickReports (re)starts the load-report chain. The chain runs only while
// the replica is busy and parks itself when idle, so a drained fleet has
// no self-rescheduling events left and the shard group can terminate.
func (ra *replicaActor) kickReports() {
	if ra.reporting {
		return
	}
	ra.reporting = true
	ra.sh.Sim().Schedule(ra.f.cfg.LoadReportEvery, ra.reportFn)
}

func (ra *replicaActor) report() {
	q, in := ra.rp.QueueDepth(), ra.rp.InFlight()
	var sig loadInfo
	if ra.f.cfg.Elastic.Enabled {
		sig.qTok, sig.run, sig.sumCtx, sig.actP, sig.actD = ra.rp.LoadSignals()
	}
	if q != ra.lastQ || in != ra.lastIn || sig != ra.lastSig {
		ra.lastQ, ra.lastIn, ra.lastSig = q, in, sig
		ra.send(msg{kind: mLoad, a: q, b: in, ld: sig})
	}
	if q == 0 && in == 0 {
		ra.reporting = false // idle: park; the next Submit restarts it
		return
	}
	ra.sh.Sim().Schedule(ra.f.cfg.LoadReportEvery, ra.reportFn)
}

// replicaLedger satisfies serve.Ledger by forwarding each lifecycle write —
// with its explicit event time — to the router, which owns the only real
// metrics.Recorder. Arrival-side methods are never reached on a replica
// (the router owns admission, shedding, and cancellation) and panic to
// keep that invariant loud.
type replicaLedger struct {
	ra *replicaActor
}

func (l replicaLedger) PrefillStart(id uint64, at sim.Time) {
	l.ra.send(msg{kind: mPrefillStart, id: id, t: at})
}
func (l replicaLedger) FirstToken(id uint64, at sim.Time) {
	l.ra.send(msg{kind: mFirstToken, id: id, t: at})
}
func (l replicaLedger) DecodeStart(id uint64, at sim.Time) {
	l.ra.send(msg{kind: mDecodeStart, id: id, t: at})
}
func (l replicaLedger) Complete(id uint64, at sim.Time) {
	l.ra.send(msg{kind: mComplete, id: id, t: at})
}
func (l replicaLedger) Abort(id uint64, at sim.Time, emitted int) {
	l.ra.send(msg{kind: mAbortRec, id: id, t: at, a: emitted})
}

// InFlight gates abortReq on the replica; there, "the runner still owns
// the request" is exactly the live-map check abortReq already did, so the
// ledger side is unconditionally true.
func (l replicaLedger) InFlight(id uint64) bool { return true }

func (l replicaLedger) Arrive(id uint64, promptTokens, outputTokens int, at sim.Time) {
	panic("fleet: replica ledger: Arrive is router-side")
}
func (l replicaLedger) Reject(id uint64, at sim.Time) {
	panic("fleet: replica ledger: Reject is router-side")
}
func (l replicaLedger) HasFirstToken(id uint64) bool {
	panic("fleet: replica ledger: HasFirstToken is router-side")
}
func (l replicaLedger) OpenIDs() []uint64 {
	panic("fleet: replica ledger: OpenIDs is router-side")
}

// replicaHandle is the router's delayed view of one replica: the last
// self-reported load, plus a bump counter for requests routed since that
// report (so back-to-back routing decisions inside one report interval
// don't dogpile the momentarily-emptiest replica). Policies read load
// through the same QueueDepth/InFlight surface the live replica used to
// expose — the numbers are now NetDelay-stale by construction.
type replicaHandle struct {
	name     string
	q        int // last reported queue depth
	inflight int // last reported in-flight count
	bump     int // routed since last report
	// sig is the last reported elastic pressure snapshot (zero until the
	// replica's first elastic report; always zero in a static fleet).
	sig loadInfo
}

func (h *replicaHandle) Name() string    { return h.name }
func (h *replicaHandle) QueueDepth() int { return h.q + h.bump }
func (h *replicaHandle) InFlight() int   { return h.inflight }
