package fleet

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"windserve/internal/elastic"
	"windserve/internal/sched"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// elasticConfig is a 4-replica fleet of 2P+2D replicas with an eager flip
// policy — low thresholds and a short cooldown so tests exercise flips in
// seconds of virtual time, floors at one instance per role.
func elasticConfig(t *testing.T) Config {
	t.Helper()
	cfg := testConfig(t, 4)
	cfg.Replica.NumPrefill = 2
	cfg.Replica.NumDecode = 2
	cfg.Policy = "least-loaded"
	cfg.Elastic = elastic.Policy{
		Enabled:     true,
		Every:       sim.Seconds(0.05),
		Cooldown:    sim.Seconds(1),
		Ratio:       1.1,
		MinPressure: 0.05,
		MinPrefill:  1,
		MinDecode:   1,
	}
	return cfg
}

// mixShiftTrace alternates a prompt-heavy phase (long prefills, near-no
// decode) with a decode-heavy one — the workload shape whose optimal
// prefill:decode split moves, which is what role flipping exploits.
func mixShiftTrace(t *testing.T, n int, seed int64) []workload.Request {
	t.Helper()
	maxCtx := 2048
	heavyPrompt := workload.NewGenerator(workload.Fixed(1200, 16, maxCtx),
		workload.PoissonArrivals{Rate: 20}, seed).Generate(n / 2)
	heavyDecode := workload.NewGenerator(workload.Fixed(64, 256, maxCtx),
		workload.PoissonArrivals{Rate: 20}, seed+1000).Generate(n - n/2)
	return workload.Concat(heavyPrompt, heavyDecode, sim.Seconds(2))
}

// TestElasticFlipExactlyOnce is the role-change extension of the fleet's
// exactly-once property: across 10 seeds of mix-shifting load plus
// replica chaos (crash, partition, client cancels), with flips firing
// eagerly, every request still ends in exactly one lifecycle state —
// migrating a decode stream between instances mid-flight never drops or
// duplicates it.
func TestElasticFlipExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := elasticConfig(t)
		cfg.FailoverTimeout = sim.Seconds(20)
		cfg.Faults = mustPlan(t, "rcrash:r1@20+15; rpart:r2@40+10; cancel@30x0.05")
		cfg.Faults.Seed = seed
		cfg.Decisions = sched.NewDecisionLog()
		res, err := Run(cfg, mixShiftTrace(t, 300, seed))
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, res)
		if res.Unfinished != 0 {
			t.Fatalf("seed %d: %d unfinished after drain", seed, res.Unfinished)
		}
		if res.Flips == 0 {
			t.Fatalf("seed %d: mix-shift + eager policy executed no flips", seed)
		}
		if res.LiveKVBlocks != 0 {
			t.Fatalf("seed %d: KV leak after elastic run: %d blocks", seed, res.LiveKVBlocks)
		}
		flipRoutes := 0
		for _, rr := range cfg.Decisions.Routes {
			if len(rr.Reason) >= 5 && rr.Reason[:5] == "flip-" {
				flipRoutes++
			}
		}
		if flipRoutes == 0 {
			t.Fatalf("seed %d: %d flips executed but none logged with a trigger", seed, res.Flips)
		}
	}
}

// TestElasticMigratesStreams checks the flip-to-prefill path actually
// migrates running decode streams (not just the empty-batch easy case).
func TestElasticMigratesStreams(t *testing.T) {
	cfg := elasticConfig(t)
	res, err := Run(cfg, mixShiftTrace(t, 400, 42))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	if res.Flips == 0 {
		t.Fatal("no flips executed")
	}
	if res.FlipMigrated == 0 && res.FlipRequeued == 0 {
		t.Fatalf("flips executed (%d) but drained nothing: %+v", res.Flips, res)
	}
}

// elasticDigest mirrors shard_test's digest for an elastic run: printed
// Result plus a SHA-256 of the decision log.
func elasticDigest(t *testing.T, cfg Config, seed int64) (string, [32]byte) {
	t.Helper()
	cfg.Decisions = sched.NewDecisionLog()
	res, err := Run(cfg, mixShiftTrace(t, 300, seed))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Decisions.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("%+v", res), sha256.Sum256(buf.Bytes())
}

// TestElasticShardDeterminism extends the sharded-determinism gate to
// role flips: mFlip/mFlipDone and the signal-bearing load reports cross
// the NetDelay wire, so results must stay byte-identical when the
// replicas are split across worker goroutines.
func TestElasticShardDeterminism(t *testing.T) {
	cfg := elasticConfig(t)
	cfg.FailoverTimeout = sim.Seconds(20)
	cfg.Faults = mustPlan(t, "rcrash:r1@20+15; rpart:r2@40+10")
	cfg.Faults.Seed = 3
	cfg.Shards = 1
	wantRes, wantDig := elasticDigest(t, cfg, 3)
	for _, shards := range []int{2, 4} {
		cfg.Shards = shards
		gotRes, gotDig := elasticDigest(t, cfg, 3)
		if gotRes != wantRes {
			t.Fatalf("elastic result diverges at %d shards:\nsequential: %s\n%d shards:  %s",
				shards, wantRes, shards, gotRes)
		}
		if gotDig != wantDig {
			t.Fatalf("elastic decision log diverges at %d shards", shards)
		}
	}
}

// TestElasticValidation covers the elastic-specific config rejections.
func TestElasticValidation(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"replica elastic set": func(c *Config) { c.Replica.Elastic = true },
		"negative cooldown":   func(c *Config) { c.Elastic = elastic.Policy{Enabled: true, Cooldown: -1} },
		"negative floor":      func(c *Config) { c.Elastic = elastic.Policy{Enabled: true, MinPrefill: -1} },
	} {
		cfg := testConfig(t, 2)
		mutate(&cfg)
		if _, err := Run(cfg, trace(5, 5, 1)); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

// TestBrownoutUnchangedByHelperRefactor pins the brown-out hysteresis
// behavior now that it routes through the shared elastic helpers: a
// saturating burst must still enter and exit brown-out, and the entry
// and exit must land in the decision log in that order.
func TestBrownoutUnchangedByHelperRefactor(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.BrownoutDepth = 4
	cfg.Decisions = sched.NewDecisionLog()
	res, err := Run(cfg, trace(300, 150, 9))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	if res.BrownoutSec <= 0 {
		t.Fatalf("saturating burst never browned out: %+v", res)
	}
	var enter, exit bool
	for _, rr := range cfg.Decisions.Routes {
		switch rr.Reason {
		case "brownout-enter":
			if exit {
				continue
			}
			enter = true
		case "brownout-exit":
			if !enter {
				t.Fatal("brownout-exit logged before brownout-enter")
			}
			exit = true
		}
	}
	if !enter || !exit {
		t.Fatalf("brown-out enter/exit not both logged (enter=%v exit=%v)", enter, exit)
	}
}
