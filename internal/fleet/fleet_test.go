package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"windserve/internal/fault"
	"windserve/internal/model"
	"windserve/internal/sched"
	"windserve/internal/serve"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

func testConfig(t *testing.T, replicas int) Config {
	t.Helper()
	rcfg, err := serve.DefaultConfig(model.OPT13B)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Replica:         rcfg,
		NumReplicas:     replicas,
		FailoverTimeout: sim.Seconds(20),
		Horizon:         sim.Seconds(600),
	}
}

func trace(n int, rate float64, seed int64) []workload.Request {
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate}, seed)
	return g.Generate(n)
}

// checkPartition asserts the lifecycle partition: every request ends in
// exactly one of completed/aborted/rejected/unfinished.
func checkPartition(t *testing.T, res *Result) {
	t.Helper()
	if got := res.Completed + res.Aborted + res.Rejected + res.Unfinished; got != res.Requests {
		t.Fatalf("lifecycle partition broken: %d completed + %d aborted + %d rejected + %d unfinished != %d requests",
			res.Completed, res.Aborted, res.Rejected, res.Unfinished, res.Requests)
	}
}

func TestFleetCleanRun(t *testing.T) {
	cfg := testConfig(t, 4)
	res, err := Run(cfg, trace(200, 8, 1))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	if res.Unfinished != 0 || res.Aborted != 0 || res.Rejected != 0 {
		t.Fatalf("clean run lost requests: %v", res)
	}
	if res.Completed != 200 {
		t.Fatalf("completed %d of 200", res.Completed)
	}
	if res.LiveKVBlocks != 0 {
		t.Fatalf("KV leak: %d blocks live after drain", res.LiveKVBlocks)
	}
	if res.Recovered != 0 || res.FailedOver != 0 {
		t.Fatalf("clean run recorded failovers: %v", res)
	}
}

// TestFleetCrashFailover is the exactly-once invariant under chaos: a
// replica crash orphans its requests, the router fails them over, and
// every one still ends in exactly one lifecycle state. A double-complete
// or complete-after-abort would panic inside the recorder.
func TestFleetCrashFailover(t *testing.T) {
	for _, pol := range []string{"round-robin", "least-loaded", "weighted"} {
		cfg := testConfig(t, 3)
		cfg.Policy = pol
		cfg.Faults = mustPlan(t, "rcrash:r0@10+30")
		cfg.Decisions = sched.NewDecisionLog()
		res, err := Run(cfg, trace(300, 10, 2))
		if err != nil {
			t.Fatal(err)
		}
		checkPartition(t, res)
		if res.Unfinished != 0 {
			t.Fatalf("%s: %d unfinished after crash+restore", pol, res.Unfinished)
		}
		if res.Recovered == 0 || res.FailedOver == 0 {
			t.Fatalf("%s: crash at t=10 orphaned nothing (recovered %d, failovers %d)",
				pol, res.Recovered, res.FailedOver)
		}
		if res.Recovered > res.Completed {
			t.Fatalf("%s: recovered %d > completed %d", pol, res.Recovered, res.Completed)
		}
		if res.LiveKVBlocks != 0 {
			t.Fatalf("%s: KV leak after crash recovery: %d blocks", pol, res.LiveKVBlocks)
		}
		if res.WastedTokens == 0 {
			t.Fatalf("%s: crash evicted in-flight requests but no wasted work accounted", pol)
		}
		reasons := map[string]int{}
		for _, rr := range cfg.Decisions.Routes {
			reasons[rr.Reason]++
		}
		if reasons["failover-crash"] == 0 {
			t.Fatalf("%s: no failover-crash decisions logged: %v", pol, reasons)
		}
		if reasons["replica-crash"] != 1 || reasons["replica-restore"] != 1 {
			t.Fatalf("%s: crash/restore decisions missing: %v", pol, reasons)
		}
	}
}

// TestFleetPartitionAndSlow exercises the two non-crash health faults:
// a partitioned replica's first-token-less requests move immediately, and
// a slowed replica triggers timeout failovers.
func TestFleetPartitionAndSlow(t *testing.T) {
	cfg := testConfig(t, 3)
	cfg.Policy = "weighted"
	cfg.FailoverTimeout = sim.Seconds(5)
	cfg.Faults = mustPlan(t, "rpart:r1@8+20; rslow:r2@30x50+30")
	cfg.Decisions = sched.NewDecisionLog()
	res, err := Run(cfg, trace(300, 10, 3))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	reasons := map[string]int{}
	for _, rr := range cfg.Decisions.Routes {
		reasons[rr.Reason]++
	}
	if reasons["partition-start"] == 0 || reasons["partition-heal"] == 0 {
		t.Fatalf("partition events not logged: %v", reasons)
	}
	if reasons["failover-partition"]+reasons["failover-timeout"] == 0 {
		t.Fatalf("no failovers under partition+slow chaos: %v", reasons)
	}
}

// TestFleetShedding drives the fleet past its admission limit and checks
// the router rejects (never queues unboundedly) and aborts on deadline.
func TestFleetShedding(t *testing.T) {
	cfg := testConfig(t, 2)
	cfg.MaxQueueDepth = 8
	cfg.TTFTDeadline = sim.Seconds(5)
	res, err := Run(cfg, trace(400, 200, 4))
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, res)
	if res.Rejected == 0 {
		t.Fatal("overload run rejected nothing")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished despite shedding", res.Unfinished)
	}
}

// TestFleetDeterminism runs the same seeded chaos twice and requires
// byte-identical results and decision logs — the property the CI chaos
// gate enforces end to end.
func TestFleetDeterminism(t *testing.T) {
	run := func() (string, []byte) {
		cfg := testConfig(t, 4)
		cfg.Policy = "least-loaded"
		cfg.BrownoutDepth = 16
		cfg.Faults = mustPlan(t, "rcrash:r1@10+20; rpart:r3@25+10; rslow:r0@40x8+20; cancel@30x0.1")
		cfg.Faults.Seed = 7
		cfg.Decisions = sched.NewDecisionLog()
		res, err := Run(cfg, trace(400, 12, 5))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := cfg.Decisions.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res), buf.Bytes()
	}
	r1, d1 := run()
	r2, d2 := run()
	if r1 != r2 {
		t.Fatalf("results differ across identical runs:\n%s\n%s", r1, r2)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("decision logs differ across identical runs")
	}
}

// TestFleetValidation covers the router-level config rejections.
func TestFleetValidation(t *testing.T) {
	base := testConfig(t, 2)
	for name, mutate := range map[string]func(*Config){
		"no replicas":     func(c *Config) { c.NumReplicas = 0 },
		"prefix set":      func(c *Config) { c.Replica.NamePrefix = "x/" },
		"unknown policy":  func(c *Config) { c.Policy = "random" },
		"instance fault":  func(c *Config) { c.Faults = mustPlan(t, "crash:d0@5+5") },
		"replica too big": func(c *Config) { c.Faults = mustPlan(t, "rcrash:r2@5+5") },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := Run(cfg, trace(5, 5, 1)); err == nil {
			t.Errorf("%s: Run accepted invalid config", name)
		}
	}
}

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
