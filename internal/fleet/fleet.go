// Package fleet composes N independent serving replicas — each a
// complete prefill/decode group from internal/serve — behind a request
// router, and makes resilience the headline capability: per-replica
// health driven by the fault plan DSL (rcrash/rslow/rpart), router-level
// timeout failover of first-token-less requests to healthy replicas
// (idempotent re-prefill with wasted-work accounting), admission control
// and deadline shedding at the router, and a brown-out mode that defers
// failovers under overload, trading TTFT slack for goodput.
//
// The fleet is built as message-passing actors on a shard.Group: the
// router actor owns the request ledger, the workload source, admission
// and failover policy; each replica actor owns its replica's entire
// state and talks to the router only through NetDelay-latent messages
// (submits, evictions, load reports, ledger forwards). With Shards == 1
// everything runs on one event loop; with Shards > 1 the replicas are
// partitioned across shard simulators driven on separate goroutines with
// a conservative-lookahead barrier — and because actors share no mutable
// state and cross-shard messages merge in an order built only from
// per-actor quantities, the results are byte-identical at any shard
// count: same seed, same plan ⇒ same Result, same DecisionLog.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"windserve/internal/elastic"
	"windserve/internal/fault"
	"windserve/internal/kvcache"
	"windserve/internal/metrics"
	"windserve/internal/sched"
	"windserve/internal/serve"
	"windserve/internal/shard"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// Config describes one fleet experiment.
type Config struct {
	// Replica is the per-replica serving configuration (model, placements,
	// instance counts). NamePrefix, Shed, and Faults must be zero: the
	// fleet assigns prefixes and owns shedding and fault injection.
	Replica serve.Config
	// NumReplicas deploys that many identical replicas (≥1).
	NumReplicas int

	// Shards partitions the replicas across this many shard simulators
	// (the router on shard 0; replicas wherever Placement puts them).
	// With Shards > 1 the shards execute on separate goroutines. Results
	// are byte-identical at any value. Default 1; clamped to NumReplicas.
	Shards int
	// Lookahead selects the shard barrier's window derivation: "adaptive"
	// (default — windows run to the earliest-output-time bound tmin+L and
	// single-shard windows skip the worker barrier) or "fixed" (the
	// original fixed L-width grid). Output is byte-identical either way;
	// only wall-clock barrier counts differ.
	Lookahead string
	// Placement maps replicas to shards: "round-robin" (default, replica
	// i on shard i % Shards) or "cost" (LPT greedy over ReplicaCosts).
	// Placement affects wall-clock balance only, never output.
	Placement string
	// ReplicaCosts optionally weighs replicas for cost placement — e.g.
	// the CostsOut measured by a prior calibration run. Empty means
	// uniform weights.
	ReplicaCosts []float64
	// ShardStats, when non-nil, receives the shard group's window/barrier
	// counters after the run. They are reported out of band because they
	// depend on the shard count and lookahead mode — folding them into
	// Result would break digest identity across configurations.
	ShardStats *shard.Stats
	// CostsOut, when non-nil, receives the per-replica measured activity
	// (messages handled and sent) after the run — feed it back as
	// ReplicaCosts to let cost placement balance a repeat run.
	CostsOut *[]float64
	// NetDelay is the virtual router↔replica message latency: every
	// dispatch, eviction, load report, and ledger write crosses it. It is
	// also the shard group's conservative lookahead — larger values mean
	// fewer barriers and faster parallel runs, staler routing views.
	// Default 5 ms.
	NetDelay sim.Duration
	// LoadReportEvery is how often a busy replica self-reports queue
	// depth and in-flight count to the router (unchanged loads are
	// suppressed). Default 25 ms.
	LoadReportEvery sim.Duration

	// Policy picks the router: "round-robin", "least-loaded", or
	// "weighted" (health/SLO-aware scoring). Default "round-robin".
	Policy string

	// FailoverTimeout fails a request over to another replica when it has
	// produced no first token this long after being routed — the hedge
	// against slow, partitioned, or silently sick replicas. 0 disables
	// timeout failover (crash failover still happens).
	FailoverTimeout sim.Duration
	// MaxFailovers caps how many times one request may be failed over
	// before the router gives up and aborts it (default 2).
	MaxFailovers int

	// MaxQueueDepth rejects an arrival when the fleet-wide queue depth
	// (all replicas + parked orphans) is already at least this. 0
	// disables admission control.
	MaxQueueDepth int
	// TTFTDeadline aborts a request with no first token this long after
	// arrival, wherever it is. 0 disables deadline aborts.
	TTFTDeadline sim.Duration

	// BrownoutDepth enters brown-out when the mean queue depth per
	// healthy replica reaches it; the fleet exits at half that. While
	// browned out, timeout failovers are deferred by BrownoutSlack× —
	// re-prefilling elsewhere would only deepen the overload. 0 disables.
	BrownoutDepth int
	// BrownoutSlack multiplies FailoverTimeout during brown-out
	// (default 2).
	BrownoutSlack float64

	// Elastic turns on runtime prefill↔decode role flipping: the fleet's
	// RoleController watches each replica's reported pressure signals and
	// flips instances between roles under hysteresis, cooldown, and a
	// minimum-per-role floor, draining in-flight work through the replica's
	// link mesh. The zero value keeps the fleet static and byte-identical.
	Elastic elastic.Policy

	// Faults is the chaos schedule: replica-granularity events
	// (rcrash/rslow/rpart) plus degrade and cancel. Instance-granularity
	// events (crash/slow) are rejected — address replicas in fleet plans.
	Faults *fault.Plan

	// Horizon bounds the drain after the last arrival (default 7200 s).
	Horizon sim.Duration

	// Decisions collects route/failover/health decisions; nil skips.
	// Actors log into private per-actor logs during the run; finish
	// merges them here in canonical (time, actor, append) order.
	Decisions *sched.DecisionLog
}

// Result is what one fleet run produces.
type Result struct {
	Policy   string
	Replicas int

	Requests   int
	Completed  int
	Unfinished int
	Aborted    int
	Rejected   int
	// Recovered counts requests that survived a replica crash or a router
	// failover (re-prefilled elsewhere) and whose record closed normally.
	Recovered int
	// FailedOver counts failover decisions (one request can fail over
	// more than once).
	FailedOver int
	// WastedTokens is the prefill+decode work discarded by evictions.
	WastedTokens int
	// BrownoutSec is the virtual time spent in brown-out.
	BrownoutSec float64
	// Flips counts executed role flips across the fleet; FlipMigrated is
	// the decode streams that changed instances mid-flight because of
	// them, FlipRequeued the queued prefills re-routed. All zero in a
	// static fleet.
	Flips        int
	FlipMigrated int
	FlipRequeued int
	// RecoverySec has one entry per replica-crash event: seconds from
	// crash onset until fleet completion throughput is back to ≥90% of
	// its pre-crash baseline, or -1 if it never recovered in the run.
	RecoverySec []float64

	Elapsed sim.Time
	Summary metrics.Summary

	// LiveKVBlocks nonzero with Unfinished == 0 means a leak — except
	// under prefix caching, where resident cached blocks are expected to
	// outlive their requests.
	LiveKVBlocks int
	TransferGB   float64
	// PrefillKV / DecodeKV aggregate KV-manager counters across replicas
	// (prefix-cache hit ratios for the scenario exhibit come from here).
	PrefillKV, DecodeKV kvcache.Stats

	MeanPrefillUtil, MeanDecodeUtil float64
}

func (r *Result) String() string {
	s := r.Summary
	return fmt.Sprintf(
		"fleet/%s: %d replicas, %d reqs (%d unfinished) | TTFT p50=%v p99=%v | SLO %.1f%% | goodput %.2f rps | aborted %d, rejected %d, recovered %d, failovers %d, wasted %d tok",
		r.Policy, r.Replicas, r.Requests, r.Unfinished,
		s.TTFTP50, s.TTFTP99, 100*s.Attainment, s.GoodputRPS,
		r.Aborted, r.Rejected, r.Recovered, r.FailedOver, r.WastedTokens)
}

// reqState is the router's view of one in-flight request.
type reqState struct {
	w         workload.Request
	replica   int // owning replica, -1 while parked
	failovers int
	timerSeq  int // invalidates stale failover timers after a re-route
	// pendingEvict marks an eviction in flight toward the owning replica;
	// the router holds further action on the request until the reply (or
	// an orphan notice) resolves it. evictReason labels the failover the
	// eviction is for; abortReason, if set while the evict is pending,
	// converts the outcome into an abort.
	pendingEvict bool
	evictReason  string
	abortReason  string
}

// fleet is the router actor: the only actor that touches the recorder,
// the workload source, the routing policy, and the request state table.
// It runs on shard 0, which executes on the coordinating goroutine.
type fleet struct {
	g   *shard.Group[msg]
	s   *sim.Simulator // shard 0's simulator — the router's clock
	rec *metrics.Recorder
	cfg Config
	dec *sched.DecisionLog // router's private log; nil if cfg.Decisions is

	acts  []*replicaActor
	place Placement
	// replicas is the router's delayed load view, one handle per replica
	// — the surface the routing policies read.
	replicas    []*replicaHandle
	down        []bool
	partitioned []bool
	pol         policy

	// rc is the elastic role controller; nil in a static fleet.
	rc *roleController

	state  map[uint64]*reqState
	parked []uint64 // FIFO of requests waiting for any healthy replica

	recovered map[uint64]bool
	completed int // completions observed via mComplete
	aborted   int // router-side aborts (parked, given-up, evict-aborted)
	rejected  int
	failovers int
	wasted    int

	brownout      bool
	brownoutSince sim.Time
	brownoutSec   float64

	// completions[i] counts records closed in virtual second i — the
	// recovery-time signal. Bucketed by the completion's true event time,
	// not its (NetDelay-later) application time.
	completions []int

	// arrival streaming (the runner pattern: one pending event).
	src         workload.Source
	arrivalFn   func()
	nextReq     workload.Request
	haveNext    bool
	arrivals    int
	lastArrival sim.Time
}

func (c *Config) validate() error {
	if c.NumReplicas < 1 {
		return fmt.Errorf("fleet: NumReplicas %d < 1", c.NumReplicas)
	}
	if c.Replica.NamePrefix != "" {
		return fmt.Errorf("fleet: Replica.NamePrefix is assigned per replica; leave it empty")
	}
	if c.BrownoutSlack < 0 || c.MaxFailovers < 0 || c.MaxQueueDepth < 0 {
		return fmt.Errorf("fleet: negative policy knob")
	}
	if c.FailoverTimeout < 0 || c.TTFTDeadline < 0 {
		return fmt.Errorf("fleet: negative timeout")
	}
	if c.Shards < 0 || c.NetDelay < 0 || c.LoadReportEvery < 0 {
		return fmt.Errorf("fleet: negative shard knob")
	}
	if c.Shards > 1 && c.Replica.Tracer != nil {
		return fmt.Errorf("fleet: tracing is single-threaded; run with Shards <= 1")
	}
	switch c.Lookahead {
	case "", "adaptive", "fixed":
	default:
		return fmt.Errorf("fleet: unknown lookahead mode %q (want adaptive or fixed)", c.Lookahead)
	}
	if _, err := NewPlacement(c.Placement, c.NumReplicas, 1, c.ReplicaCosts); err != nil {
		return err
	}
	if c.Replica.Elastic {
		return fmt.Errorf("fleet: set Config.Elastic (the policy), not Replica.Elastic; the fleet wires replicas itself")
	}
	if err := c.Elastic.Validate(); err != nil {
		return err
	}
	if _, err := newPolicy(c.Policy); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		if err := c.Faults.ValidateTargets(0, 0, c.NumReplicas); err != nil {
			return fmt.Errorf("fleet: %w", err)
		}
	}
	return nil
}

func (c *Config) fillDefaults() {
	if c.Policy == "" {
		c.Policy = "round-robin"
	}
	if c.MaxFailovers == 0 {
		c.MaxFailovers = 2
	}
	if c.BrownoutSlack == 0 {
		c.BrownoutSlack = 2
	}
	if c.Horizon <= 0 {
		c.Horizon = sim.Seconds(7200)
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Lookahead == "" {
		c.Lookahead = "adaptive"
	}
	if c.Placement == "" {
		c.Placement = PlaceRoundRobin
	}
	if c.Shards > c.NumReplicas {
		c.Shards = c.NumReplicas
	}
	if c.NetDelay == 0 {
		c.NetDelay = sim.Seconds(0.005)
	}
	if c.LoadReportEvery == 0 {
		c.LoadReportEvery = sim.Seconds(0.025)
	}
	if sim.Time(c.NetDelay) > sim.Time(c.Horizon) {
		c.NetDelay = c.Horizon // lookahead may never exceed the drain cap
	}
	c.Elastic = c.Elastic.WithDefaults()
}

// Run executes one fleet experiment over a materialized trace.
func Run(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunFrom(cfg, workload.NewSliceSource(reqs))
}

// RunFrom is Run fed from a pull-based request source, so a 100k-request
// chaos exhibit never materializes its trace.
func RunFrom(cfg Config, src workload.Source) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()

	g := shard.NewGroup[msg](cfg.Shards, cfg.NetDelay)
	if cfg.Lookahead == "fixed" {
		g.SetMode(shard.FixedGrid)
	}
	place, err := NewPlacement(cfg.Placement, cfg.NumReplicas, cfg.Shards, cfg.ReplicaCosts)
	if err != nil {
		return nil, err
	}
	g.GrowActors(cfg.NumReplicas + 1)
	rec := metrics.NewRecorder()
	if cfg.Replica.Stream.Enabled {
		rec = metrics.NewStreamingRecorder(cfg.Replica.SLO, cfg.Replica.Stream.MaxRecords)
	}
	f := &fleet{
		g: g, s: g.Shard(0).Sim(), rec: rec, cfg: cfg, place: place,
		down:        make([]bool, cfg.NumReplicas),
		partitioned: make([]bool, cfg.NumReplicas),
		state:       make(map[uint64]*reqState),
		recovered:   make(map[uint64]bool),
	}
	if cfg.Decisions != nil {
		f.dec = sched.NewDecisionLog()
	}
	f.pol, _ = newPolicy(cfg.Policy)
	for i := 0; i < cfg.NumReplicas; i++ {
		ra := &replicaActor{f: f, idx: i, sh: g.Shard(place.ShardOf(i))}
		ra.reportFn = ra.report
		rcfg := cfg.Replica
		rcfg.NamePrefix = fmt.Sprintf("r%d/", i)
		rcfg.Elastic = cfg.Elastic.Enabled
		if cfg.Decisions != nil {
			rcfg.Decisions = sched.NewDecisionLog()
		} else {
			rcfg.Decisions = nil
		}
		rp, err := serve.NewReplica(ra.sh.Sim(), replicaLedger{ra: ra}, rcfg, nil)
		if err != nil {
			return nil, err
		}
		ra.rp = rp
		f.acts = append(f.acts, ra)
		f.replicas = append(f.replicas, &replicaHandle{name: rp.Name()})
	}
	for i := 0; i < cfg.Shards; i++ {
		g.Shard(i).OnMessage(f.dispatch)
	}
	if err := f.installFaults(); err != nil {
		return nil, err
	}
	if cfg.Elastic.Enabled {
		rc, err := newRoleController(f)
		if err != nil {
			return nil, err
		}
		f.rc = rc
	}

	f.src = src
	f.arrivalFn = f.arrive
	if w, ok := src.Next(); ok {
		f.nextReq, f.haveNext = w, true
		f.s.At(w.Arrival, f.arrivalFn)
	} else {
		g.SetEnd(sim.Time(0).Add(cfg.Horizon))
	}

	g.Run(cfg.Shards > 1)

	if cfg.ShardStats != nil {
		*cfg.ShardStats = g.Stats()
	}
	if cfg.CostsOut != nil {
		costs := make([]float64, len(f.acts))
		for i, ra := range f.acts {
			costs[i] = float64(ra.msgs)
		}
		*cfg.CostsOut = costs
	}
	return f.finish(), nil
}

// dispatch is every shard's message handler: deliveries address an actor,
// and the destination actor's state lives on the delivering shard.
func (f *fleet) dispatch(src int, m msg) {
	if m.to == 0 {
		f.routerMsg(src-1, m)
		return
	}
	f.acts[m.to-1].handle(m)
}

// sendTo posts a message from the router to replica idx.
func (f *fleet) sendTo(idx int, m msg) {
	m.to = idx + 1
	f.g.Shard(0).Send(f.place.ShardOf(idx), 0, f.cfg.NetDelay, m)
}

// routerMsg handles one replica→router message. idx is the sender.
func (f *fleet) routerMsg(idx int, m msg) {
	switch m.kind {
	case mLoad:
		h := f.replicas[idx]
		h.q, h.inflight, h.bump = m.a, m.b, 0
		h.sig = m.ld
	case mFlipDone:
		f.rc.flipDone(idx, m)
	case mPrefillStart:
		if f.rec.InFlight(m.id) {
			f.rec.PrefillStart(m.id, m.t)
		}
	case mFirstToken:
		if f.rec.InFlight(m.id) {
			f.rec.FirstToken(m.id, m.t)
		}
	case mDecodeStart:
		if f.rec.InFlight(m.id) {
			f.rec.DecodeStart(m.id, m.t)
		}
	case mComplete:
		f.rec.Complete(m.id, m.t)
		f.completed++
		sec := int(float64(m.t))
		for len(f.completions) <= sec {
			f.completions = append(f.completions, 0)
		}
		f.completions[sec]++
		delete(f.state, m.id)
		f.updateBrownout()
	case mAbortRec:
		if f.rec.InFlight(m.id) {
			f.rec.Abort(m.id, m.t, m.a)
		}
	case mEvictReply:
		f.evictReply(idx, m)
	case mOrphan:
		f.orphanReturned(m)
	}
}

// arrive admits or sheds one arrival, then chains the next; when the
// source dries up, the drain horizon becomes the group's end cap.
func (f *fleet) arrive() {
	w := f.nextReq
	f.arrivals++
	f.lastArrival = w.Arrival
	f.admit(w)
	if nw, ok := f.src.Next(); ok {
		f.nextReq = nw
		f.s.At(nw.Arrival, f.arrivalFn)
	} else {
		f.haveNext = false
		f.g.SetEnd(f.lastArrival.Add(f.cfg.Horizon))
	}
}

func (f *fleet) admit(w workload.Request) {
	f.rec.Arrive(w.ID, w.PromptTokens, w.OutputTokens, f.s.Now())
	f.updateBrownout()
	if d := f.cfg.MaxQueueDepth; d > 0 && f.totalQueueDepth() >= d {
		f.rec.Reject(w.ID, f.s.Now())
		f.rejected++
		f.dec.AddRoute(f.s.Now(), w.ID, "router", "admission-reject")
		return
	}
	st := &reqState{w: w, replica: -1}
	f.state[w.ID] = st
	f.rc.kick()
	if dl := f.cfg.TTFTDeadline; dl > 0 {
		id := w.ID
		f.s.Schedule(dl, func() {
			if f.rec.InFlight(id) && !f.rec.HasFirstToken(id) {
				f.abort(id, "deadline-abort")
			}
		})
	}
	f.route(st, "")
}

// route places a request on a healthy replica (or parks it). reason
// overrides the policy's decision label — failover paths pass theirs.
func (f *fleet) route(st *reqState, reason string) {
	avoid := st.replica
	j := f.pol.pick(f, st.w, avoid)
	if j < 0 {
		st.replica = -1
		f.parked = append(f.parked, st.w.ID)
		f.dec.AddRoute(f.s.Now(), st.w.ID, "router", "parked-no-healthy-replica")
		return
	}
	st.replica = j
	st.timerSeq++
	if reason == "" {
		reason = f.pol.name()
	}
	f.dec.AddRoute(f.s.Now(), st.w.ID, f.replicas[j].Name(), reason)
	f.replicas[j].bump++
	f.sendTo(j, msg{kind: mSubmit, id: st.w.ID, w: st.w})
	f.armFailoverTimer(st.w.ID)
}

// armFailoverTimer hedges a routed request: if it still has no first
// token when the (possibly brown-out-stretched) timeout fires, it moves.
func (f *fleet) armFailoverTimer(id uint64) {
	if f.cfg.FailoverTimeout <= 0 {
		return
	}
	st, ok := f.state[id]
	if !ok {
		return
	}
	seq := st.timerSeq
	f.s.Schedule(f.cfg.FailoverTimeout, func() { f.failoverTimerFired(id, seq) })
}

func (f *fleet) failoverTimerFired(id uint64, seq int) {
	st, ok := f.state[id]
	if !ok || st.timerSeq != seq || st.replica < 0 || st.pendingEvict {
		return
	}
	if !f.rec.InFlight(id) || f.rec.HasFirstToken(id) {
		return
	}
	f.updateBrownout()
	if f.brownout {
		// Deferred, not cancelled: re-check after the slack interval. If
		// the brown-out has ended by then the request finally moves.
		extra := sim.Duration(float64(f.cfg.FailoverTimeout) * (f.cfg.BrownoutSlack - 1))
		if extra > 0 {
			f.s.Schedule(extra, func() { f.failoverTimerFired(id, seq) })
			return
		}
	}
	f.startEvict(st, "failover-timeout")
}

// startEvict begins a failover: ask the owning replica to give the
// request back. The outcome arrives as mEvictReply (or as mOrphan, if a
// crash beats the eviction there).
func (f *fleet) startEvict(st *reqState, reason string) {
	st.pendingEvict = true
	st.evictReason = reason
	st.timerSeq++ // a pending failover timer must not re-trigger mid-evict
	f.sendTo(st.replica, msg{kind: mEvict, id: st.w.ID, seq: st.timerSeq})
}

// evictReply resolves an eviction the router started. ok=false means the
// request left the replica first (completed, or crash-orphaned — both
// reach the router on their own paths).
func (f *fleet) evictReply(idx int, m msg) {
	st, ok := f.state[m.id]
	if !ok || !st.pendingEvict || st.timerSeq != m.seq {
		return
	}
	st.pendingEvict = false
	reason := st.evictReason
	st.evictReason = ""
	if !m.ok {
		return
	}
	f.wasted += m.a
	if reason == "failover-timeout" {
		f.pol.observeFailure(f, idx, 1)
	}
	if st.abortReason != "" {
		// An abort landed while the evict was in flight: the request is
		// now off every replica with its record open — finalize here.
		f.rec.Abort(m.id, f.s.Now(), m.b)
		f.aborted++
		delete(f.state, m.id)
		return
	}
	f.failover(st, m.b, reason)
}

// orphanReturned handles a request a replica crash threw back.
func (f *fleet) orphanReturned(m msg) {
	st, ok := f.state[m.id]
	if !ok {
		// An abort was already in flight toward the crashed replica; it
		// will find nothing there to finalize, so finalize here.
		if f.rec.InFlight(m.id) {
			f.rec.Abort(m.id, f.s.Now(), m.b)
			f.aborted++
		}
		return
	}
	if st.pendingEvict {
		// The crash superseded an in-flight eviction; its reply (ok=false)
		// is void. An abort queued behind that eviction still wins.
		st.pendingEvict = false
		st.evictReason = ""
		if st.abortReason != "" {
			f.rec.Abort(m.id, f.s.Now(), m.b)
			f.aborted++
			delete(f.state, m.id)
			return
		}
	}
	f.wasted += m.a
	f.failover(st, m.b, "failover-crash")
}

// failover re-routes an evicted request (record still open) to another
// healthy replica, or gives up after MaxFailovers. generated is the token
// count the record closes with if the router gives up.
func (f *fleet) failover(st *reqState, generated int, reason string) {
	id := st.w.ID
	st.failovers++
	f.failovers++
	if st.failovers > f.cfg.MaxFailovers {
		f.rec.Abort(id, f.s.Now(), generated)
		f.aborted++
		delete(f.state, id)
		f.dec.AddRoute(f.s.Now(), id, "router", "failover-give-up")
		return
	}
	f.recovered[id] = true
	f.route(st, reason)
}

// abort finalizes a request wherever it is: parked at the router (closed
// immediately), on a replica (an mAbort crosses the wire; the replica's
// ledger forward closes the record), or mid-eviction (the evict outcome
// finalizes it).
func (f *fleet) abort(id uint64, reason string) {
	st, ok := f.state[id]
	if !ok {
		return
	}
	f.dec.AddRoute(f.s.Now(), id, "router", reason)
	if st.pendingEvict {
		st.abortReason = reason
		return
	}
	if st.replica >= 0 {
		f.sendTo(st.replica, msg{kind: mAbort, id: id})
	} else {
		f.unpark(id)
		f.rec.Abort(id, f.s.Now(), 0)
		f.aborted++
	}
	delete(f.state, id)
}

// unpark removes one id from the parked queue.
func (f *fleet) unpark(id uint64) {
	for i, p := range f.parked {
		if p == id {
			f.parked = append(f.parked[:i], f.parked[i+1:]...)
			return
		}
	}
}

// drainParked re-routes parked requests now that a replica came back.
func (f *fleet) drainParked() {
	if len(f.parked) == 0 {
		return
	}
	ids := f.parked
	f.parked = nil
	for _, id := range ids {
		st, ok := f.state[id]
		if !ok || st.replica >= 0 {
			continue
		}
		f.route(st, "unparked")
	}
}

// cancelFrac aborts a seeded-random fraction of open requests — the
// client-cancellation fault, fleet edition (same victim rule as serve).
func (f *fleet) cancelFrac(frac float64, seed int64) {
	ids := f.rec.OpenIDs()
	n := len(ids)
	k := int(math.Round(frac * float64(n)))
	if k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	picks := rand.New(rand.NewSource(seed)).Perm(n)[:k]
	sort.Ints(picks)
	for _, i := range picks {
		f.abort(ids[i], "client-cancel")
	}
}

// totalQueueDepth is the fleet-wide admission signal, read off the
// delayed load view.
func (f *fleet) totalQueueDepth() int {
	n := len(f.parked)
	for _, h := range f.replicas {
		n += h.QueueDepth()
	}
	return n
}

// healthy reports whether the router may route to replica i.
func (f *fleet) healthy(i int) bool {
	return !f.down[i] && !f.partitioned[i]
}

func (f *fleet) numHealthy() int {
	n := 0
	for i := range f.replicas {
		if f.healthy(i) {
			n++
		}
	}
	return n
}

// updateBrownout applies the overload hysteresis — enter at BrownoutDepth
// mean queue depth per healthy replica, exit at half — through the same
// elastic helpers the role controller's flip deferral reads, so the two
// mechanisms can never disagree about what "overloaded" means.
func (f *fleet) updateBrownout() {
	d := f.cfg.BrownoutDepth
	if d == 0 {
		return
	}
	nh := f.numHealthy()
	if nh == 0 {
		return // no denominator: hold the current state
	}
	mean := elastic.MeanQueueDepth(f.totalQueueDepth(), nh)
	now := elastic.OverloadHysteresis(f.brownout, mean, d)
	if now && !f.brownout {
		f.brownout = true
		f.brownoutSince = f.s.Now()
		f.dec.AddRoute(f.s.Now(), 0, "router", "brownout-enter")
	} else if !now && f.brownout {
		f.brownout = false
		f.brownoutSec += f.s.Now().Sub(f.brownoutSince).Seconds()
		f.dec.AddRoute(f.s.Now(), 0, "router", "brownout-exit")
	}
}

// installFaults compiles the chaos plan into router-side hooks. Fault
// events fire on the router's shard; effects cross to the replicas as
// messages, so health flips at the router the instant the event fires and
// at the replica one NetDelay later — in that order, on every shard count.
func (f *fleet) installFaults() error {
	if f.cfg.Faults == nil {
		return nil
	}
	h := fault.Hooks{
		ReplicaCrash: func(idx int) {
			if f.down[idx] {
				return
			}
			f.down[idx] = true
			f.dec.AddRoute(f.s.Now(), 0, f.replicas[idx].Name(), "replica-crash")
			f.sendTo(idx, msg{kind: mCrash})
			f.pol.observeFailure(f, idx, 4)
		},
		ReplicaRestore: func(idx int) {
			if !f.down[idx] {
				return
			}
			f.down[idx] = false
			f.dec.AddRoute(f.s.Now(), 0, f.replicas[idx].Name(), "replica-restore")
			// Restore crosses before any submit the drain routes to it:
			// messages to one destination deliver in send order.
			f.sendTo(idx, msg{kind: mRestore})
			f.drainParked()
		},
		SetReplicaSlowdown: func(idx int, factor float64) {
			f.sendTo(idx, msg{kind: mSlowdown, f: factor})
		},
		SetPartition: func(idx int, partitioned bool) {
			f.partitioned[idx] = partitioned
			if partitioned {
				f.dec.AddRoute(f.s.Now(), 0, f.replicas[idx].Name(), "partition-start")
				// The replica keeps executing, but the router writes off
				// its first-token-less requests as timed out and moves
				// them; requests already streaming ride the partition out.
				var move []uint64
				for id, st := range f.state {
					if st.replica == idx && !st.pendingEvict && !f.rec.HasFirstToken(id) {
						move = append(move, id)
					}
				}
				sort.Slice(move, func(a, b int) bool { return move[a] < move[b] })
				for _, id := range move {
					f.startEvict(f.state[id], "failover-partition")
				}
				f.pol.observeFailure(f, idx, 2)
			} else {
				f.dec.AddRoute(f.s.Now(), 0, f.replicas[idx].Name(), "partition-heal")
				f.drainParked()
			}
		},
		SetLinkDegrade: func(frac float64) {
			for i := range f.acts {
				f.sendTo(i, msg{kind: mDegrade, f: frac})
			}
		},
		Cancel: f.cancelFrac,
	}
	return fault.Apply(f.s, f.cfg.Faults, h)
}

// finish assembles the result after the shard group drains (single-
// threaded again: the workers joined inside Run).
func (f *fleet) finish() *Result {
	elapsed := f.g.LastFired()
	if f.g.AnyPending() {
		// Events remain past the cap — the clock stopped at the horizon,
		// exactly as a sequential Run(horizon) leaves it.
		elapsed = f.lastArrival.Add(f.cfg.Horizon)
	}
	res := &Result{
		Policy:       f.cfg.Policy,
		Replicas:     f.cfg.NumReplicas,
		Requests:     f.arrivals,
		Unfinished:   f.rec.Outstanding(),
		Rejected:     f.rejected,
		FailedOver:   f.failovers,
		WastedTokens: f.wasted,
		Elapsed:      elapsed,
	}
	if f.brownout {
		f.brownoutSec += elapsed.Sub(f.brownoutSince).Seconds()
		f.brownout = false
	}
	res.BrownoutSec = f.brownoutSec
	if f.rc != nil {
		res.Flips, res.FlipMigrated, res.FlipRequeued = f.rc.flips, f.rc.migrated, f.rc.requeued
	}
	res.Aborted = f.aborted
	for _, ra := range f.acts {
		res.Aborted += ra.rp.Aborted()
	}
	// Counted as completions fire, not derived — so the lifecycle
	// partition (Completed+Aborted+Rejected+Unfinished == Requests) is a
	// checkable invariant, not a tautology.
	res.Completed = f.completed
	// Recovered counts failed-over requests whose record closed normally:
	// exactly-once semantics — a request is completed (and recovered) or
	// aborted, never both.
	for id := range f.recovered {
		if !f.rec.InFlight(id) {
			res.Recovered++
		}
	}
	res.Recovered -= f.recoveredAborted()
	if f.rec.Streaming() {
		res.Summary = f.rec.StreamSummary()
	} else {
		res.Summary = metrics.Summarize(f.rec.Completed(), f.cfg.Replica.SLO)
	}
	for _, ra := range f.acts {
		st := ra.rp.Stats(res.Elapsed)
		res.LiveKVBlocks += st.LiveKVBlocks
		res.TransferGB += st.TransferGB
		res.PrefillKV.Accumulate(st.PrefillKV)
		res.DecodeKV.Accumulate(st.DecodeKV)
		res.MeanPrefillUtil += st.PrefillComputeUtil
		res.MeanDecodeUtil += st.DecodeComputeUtil
	}
	res.MeanPrefillUtil /= float64(len(f.acts))
	res.MeanDecodeUtil /= float64(len(f.acts))
	res.RecoverySec = f.recoveryTimes()
	if f.cfg.Decisions != nil {
		logs := make([]*sched.DecisionLog, 0, len(f.acts)+1)
		logs = append(logs, f.dec)
		for _, ra := range f.acts {
			logs = append(logs, ra.rp.Decisions())
		}
		f.cfg.Decisions.Absorb(logs...)
	}
	return res
}

// recoveredAborted counts failed-over requests that later aborted — they
// must not inflate Recovered.
func (f *fleet) recoveredAborted() int {
	n := 0
	for _, r := range f.rec.Aborted() {
		if f.recovered[r.ID] {
			n++
		}
	}
	return n
}

// recoveryTimes measures, for each replica-crash event, how long fleet
// completion throughput took to return to ≥90% of its pre-crash
// baseline (mean over the 10 s before the crash, judged over forward
// 5 s windows). Purely virtual-time arithmetic — deterministic.
func (f *fleet) recoveryTimes() []float64 {
	if f.cfg.Faults == nil {
		return nil
	}
	var out []float64
	for _, e := range f.cfg.Faults.Events {
		if e.Kind != fault.ReplicaCrash {
			continue
		}
		out = append(out, f.recoveryAfter(float64(e.At)))
	}
	return out
}

func (f *fleet) recoveryAfter(crash float64) float64 {
	mean := func(from, to int) float64 {
		if from < 0 {
			from = 0
		}
		if to > len(f.completions) {
			to = len(f.completions)
		}
		if to <= from {
			return 0
		}
		n := 0
		for i := from; i < to; i++ {
			n += f.completions[i]
		}
		return float64(n) / float64(to-from)
	}
	c := int(crash)
	baseline := mean(c-10, c)
	if baseline == 0 {
		return 0 // nothing was flowing; trivially recovered
	}
	for t := c; t+5 <= len(f.completions); t++ {
		if mean(t, t+5) >= 0.9*baseline {
			return float64(t) - crash
		}
	}
	return -1
}
