package fleet

import (
	"fmt"
	"math"

	"windserve/internal/sim"
	"windserve/internal/workload"
)

// policy is a pluggable router: pick returns the replica index for the
// next request (preferring not to return avoid, the replica a failover
// just left), or -1 when no healthy replica exists. The request being
// routed is passed so affinity policies can read its session identity;
// load-only policies ignore it. observeFailure feeds health signals
// (timeouts, crashes, partitions) to policies that score.
type policy interface {
	name() string
	pick(f *fleet, w workload.Request, avoid int) int
	observeFailure(f *fleet, idx int, weight float64)
}

func newPolicy(name string) (policy, error) {
	switch name {
	case "", "round-robin":
		return &roundRobin{}, nil
	case "least-loaded":
		return leastLoaded{}, nil
	case "weighted":
		return newWeighted(), nil
	case "prefix-affinity":
		return prefixAffinity{}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (want round-robin, least-loaded, weighted, or prefix-affinity)", name)
	}
}

// roundRobin rotates over healthy replicas — the static baseline.
type roundRobin struct{ next int }

func (p *roundRobin) name() string { return "round-robin" }

func (p *roundRobin) pick(f *fleet, _ workload.Request, avoid int) int {
	n := len(f.replicas)
	fallback := -1
	for k := 0; k < n; k++ {
		i := (p.next + k) % n
		if !f.healthy(i) {
			continue
		}
		if i == avoid {
			fallback = i
			continue
		}
		p.next = (i + 1) % n
		return i
	}
	if fallback >= 0 {
		p.next = (fallback + 1) % n
	}
	return fallback
}

func (p *roundRobin) observeFailure(*fleet, int, float64) {}

// leastLoaded routes to the healthy replica with the shallowest queue
// (ties broken by in-flight count, then index) — load-aware, not
// health-history-aware.
type leastLoaded struct{}

func (leastLoaded) name() string { return "least-loaded" }

func (leastLoaded) pick(f *fleet, _ workload.Request, avoid int) int {
	best, fallback := -1, -1
	var bq, bi int
	for i := range f.replicas {
		if !f.healthy(i) {
			continue
		}
		if i == avoid {
			fallback = i
			continue
		}
		q, fl := f.replicas[i].QueueDepth(), f.replicas[i].InFlight()
		if best < 0 || q < bq || (q == bq && fl < bi) {
			best, bq, bi = i, q, fl
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

func (leastLoaded) observeFailure(*fleet, int, float64) {}

// weighted scores replicas on load plus an exponentially-decaying failure
// penalty: every timeout, partition, or crash attributed to a replica
// makes it less attractive for the next ~30 s of virtual time, so the
// router steers around flapping or sick replicas before they are formally
// declared down. Deterministic: the decay clock is virtual time.
//
// Each replica's penalty carries its own timestamp: an observation on
// replica A folds A's elapsed decay into A's stored value and re-stamps
// only A, so interleaved failures across replicas can never under-decay
// (or skip decaying) another replica's penalty. Penalties saturate at
// penaltyCap so sustained chaos — hundreds of timeouts against one
// replica — cannot accumulate a value the replica would need hours to
// decay out of (or, pathologically, overflow).
type weighted struct {
	penalty []float64
	stamped []sim.Time
}

func newWeighted() *weighted { return &weighted{} }

func (p *weighted) name() string { return "weighted" }

const (
	penaltyDecaySec = 30.0
	// penaltyCap bounds the stored penalty. 256 ≫ any realistic queue
	// depth term, so a saturated replica is still firmly last choice,
	// but it decays below 1 in penaltyDecaySec·ln(256) ≈ 166 s.
	penaltyCap = 256.0
	// penaltyPerWeight converts an observeFailure weight (timeout 1,
	// partition 2, crash 4) into score units.
	penaltyPerWeight = 8.0
)

func (p *weighted) ensure(n int) {
	for len(p.penalty) < n {
		p.penalty = append(p.penalty, 0)
		p.stamped = append(p.stamped, 0)
	}
}

// decayedAt returns replica i's penalty as of now without mutating
// anything; now must not precede the replica's own stamp.
func (p *weighted) decayedAt(i int, now sim.Time) float64 {
	dt := now.Sub(p.stamped[i]).Seconds()
	return p.penalty[i] * math.Exp(-dt/penaltyDecaySec)
}

// observeAt folds decay-to-now into replica idx's penalty, adds the new
// failure, saturates, and re-stamps that replica alone.
func (p *weighted) observeAt(idx int, now sim.Time, weight float64) {
	pen := p.decayedAt(idx, now) + penaltyPerWeight*weight
	if pen > penaltyCap {
		pen = penaltyCap
	}
	p.penalty[idx] = pen
	p.stamped[idx] = now
}

func (p *weighted) pick(f *fleet, _ workload.Request, avoid int) int {
	p.ensure(len(f.replicas))
	now := f.s.Now()
	best, fallback := -1, -1
	var bs float64
	for i := range f.replicas {
		if !f.healthy(i) {
			continue
		}
		if i == avoid {
			fallback = i
			continue
		}
		s := float64(f.replicas[i].QueueDepth()) +
			0.1*float64(f.replicas[i].InFlight()) +
			p.decayedAt(i, now)
		if best < 0 || s < bs {
			best, bs = i, s
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

func (p *weighted) observeFailure(f *fleet, idx int, weight float64) {
	p.ensure(len(f.replicas))
	p.observeAt(idx, f.s.Now(), weight)
}

// prefixAffinity keeps a session's requests on one "home" replica so its
// cached prefix blocks keep hitting, spilling to load balancing only when
// the home is unhealthy or running hot — the cache-affinity vs.
// load-balance tradeoff made explicit. Requests without a session or
// prefix identity fall through to least-loaded. Deterministic: the home
// is a pure hash of the affinity key.
type prefixAffinity struct{}

func (prefixAffinity) name() string { return "prefix-affinity" }

func (prefixAffinity) pick(f *fleet, w workload.Request, avoid int) int {
	key := w.SessionID
	if key == 0 {
		key = w.PrefixGroup
	}
	if key == 0 {
		return leastLoaded{}.pick(f, w, avoid)
	}
	n := len(f.replicas)
	// Spill threshold: twice the fleet's mean queue depth plus slack, so
	// affinity bends before it lets one hot session group melt a replica.
	depth := 0
	for i := range f.replicas {
		depth += f.replicas[i].QueueDepth()
	}
	limit := 2*depth/n + 8
	home := int(mix64(key) % uint64(n))
	for k := 0; k < n; k++ {
		i := (home + k) % n
		if !f.healthy(i) || i == avoid {
			continue // next probe is the session's stable secondary home
		}
		if f.replicas[i].QueueDepth() <= limit {
			return i
		}
		break // home found but hot: balance instead
	}
	return leastLoaded{}.pick(f, w, avoid)
}

func (prefixAffinity) observeFailure(*fleet, int, float64) {}

// mix64 is the splitmix64 finalizer — a cheap, well-distributed hash for
// placing affinity keys on replicas.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
