package fleet

import (
	"fmt"
	"math"

	"windserve/internal/sim"
)

// policy is a pluggable router: pick returns the replica index for the
// next request (preferring not to return avoid, the replica a failover
// just left), or -1 when no healthy replica exists. observeFailure feeds
// health signals (timeouts, crashes, partitions) to policies that score.
type policy interface {
	name() string
	pick(f *fleet, avoid int) int
	observeFailure(f *fleet, idx int, weight float64)
}

func newPolicy(name string) (policy, error) {
	switch name {
	case "", "round-robin":
		return &roundRobin{}, nil
	case "least-loaded":
		return leastLoaded{}, nil
	case "weighted":
		return newWeighted(), nil
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q (want round-robin, least-loaded, or weighted)", name)
	}
}

// roundRobin rotates over healthy replicas — the static baseline.
type roundRobin struct{ next int }

func (p *roundRobin) name() string { return "round-robin" }

func (p *roundRobin) pick(f *fleet, avoid int) int {
	n := len(f.replicas)
	fallback := -1
	for k := 0; k < n; k++ {
		i := (p.next + k) % n
		if !f.healthy(i) {
			continue
		}
		if i == avoid {
			fallback = i
			continue
		}
		p.next = (i + 1) % n
		return i
	}
	if fallback >= 0 {
		p.next = (fallback + 1) % n
	}
	return fallback
}

func (p *roundRobin) observeFailure(*fleet, int, float64) {}

// leastLoaded routes to the healthy replica with the shallowest queue
// (ties broken by in-flight count, then index) — load-aware, not
// health-history-aware.
type leastLoaded struct{}

func (leastLoaded) name() string { return "least-loaded" }

func (leastLoaded) pick(f *fleet, avoid int) int {
	best, fallback := -1, -1
	var bq, bi int
	for i := range f.replicas {
		if !f.healthy(i) {
			continue
		}
		if i == avoid {
			fallback = i
			continue
		}
		q, fl := f.replicas[i].QueueDepth(), f.replicas[i].InFlight()
		if best < 0 || q < bq || (q == bq && fl < bi) {
			best, bq, bi = i, q, fl
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

func (leastLoaded) observeFailure(*fleet, int, float64) {}

// weighted scores replicas on load plus an exponentially-decaying failure
// penalty: every timeout, partition, or crash attributed to a replica
// makes it less attractive for the next ~30 s of virtual time, so the
// router steers around flapping or sick replicas before they are formally
// declared down. Deterministic: the decay clock is virtual time.
type weighted struct {
	penalty []float64
	stamped []sim.Time
}

func newWeighted() *weighted { return &weighted{} }

func (p *weighted) name() string { return "weighted" }

const penaltyDecaySec = 30.0

func (p *weighted) ensure(n int) {
	for len(p.penalty) < n {
		p.penalty = append(p.penalty, 0)
		p.stamped = append(p.stamped, 0)
	}
}

func (p *weighted) decayed(i int, now sim.Time) float64 {
	dt := now.Sub(p.stamped[i]).Seconds()
	return p.penalty[i] * math.Exp(-dt/penaltyDecaySec)
}

func (p *weighted) pick(f *fleet, avoid int) int {
	p.ensure(len(f.replicas))
	now := f.s.Now()
	best, fallback := -1, -1
	var bs float64
	for i := range f.replicas {
		if !f.healthy(i) {
			continue
		}
		if i == avoid {
			fallback = i
			continue
		}
		s := float64(f.replicas[i].QueueDepth()) +
			0.1*float64(f.replicas[i].InFlight()) +
			p.decayed(i, now)
		if best < 0 || s < bs {
			best, bs = i, s
		}
	}
	if best < 0 {
		return fallback
	}
	return best
}

func (p *weighted) observeFailure(f *fleet, idx int, weight float64) {
	p.ensure(len(f.replicas))
	now := f.s.Now()
	p.penalty[idx] = p.decayed(idx, now) + 8*weight
	p.stamped[idx] = now
}
