package stats

import "sort"

// P2Quantile estimates one quantile of a stream with the P² algorithm
// (Jain & Chlamtac, CACM 1985): five markers bracket the target quantile
// and are nudged by parabolic interpolation as observations arrive, giving
// O(1) memory and O(1) time per observation. The estimate is a pure
// function of the observation sequence, so streaming runs stay
// deterministic. Typical relative error against the exact percentile is
// well under 1% for smooth distributions (pinned by tests).
type P2Quantile struct {
	p    float64    // target quantile in (0, 1)
	n    int        // observations seen
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based ranks)
	want [5]float64 // desired marker positions
	dn   [5]float64 // desired-position increments per observation
	init [5]float64 // the first five observations, before markers exist
}

// NewP2Quantile returns an estimator for quantile p in (0, 1), e.g. 0.99.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic("stats: P² quantile must be in (0, 1)")
	}
	s := &P2Quantile{p: p}
	s.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

// Quantile returns the target quantile the estimator tracks.
func (s *P2Quantile) Quantile() float64 { return s.p }

// Count returns the number of observations added.
func (s *P2Quantile) Count() int { return s.n }

// Add feeds one observation.
func (s *P2Quantile) Add(x float64) {
	if s.n < 5 {
		s.init[s.n] = x
		s.n++
		if s.n == 5 {
			q := s.init
			sort.Float64s(q[:])
			s.q = q
			s.pos = [5]float64{1, 2, 3, 4, 5}
			p := s.p
			s.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	// Locate the cell x falls in, extending the extremes if needed.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	s.n++
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := 0; i < 5; i++ {
		s.want[i] += s.dn[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			qn := s.parabolic(i, sign)
			if !(s.q[i-1] < qn && qn < s.q[i+1]) {
				qn = s.linear(i, sign)
			}
			// Clamp to the neighbors: on duplicate-heavy streams the
			// parabolic test above passes with equal neighbor heights
			// and the linear fallback can still land outside
			// [q[i-1], q[i+1]] (the classic P² failure), after which the
			// marker invariant — and the estimate — never recovers.
			if qn < s.q[i-1] {
				qn = s.q[i-1]
			} else if qn > s.q[i+1] {
				qn = s.q[i+1]
			}
			s.q[i] = qn
			s.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic marker adjustment.
func (s *P2Quantile) parabolic(i int, d float64) float64 {
	return s.q[i] + d/(s.pos[i+1]-s.pos[i-1])*
		((s.pos[i]-s.pos[i-1]+d)*(s.q[i+1]-s.q[i])/(s.pos[i+1]-s.pos[i])+
			(s.pos[i+1]-s.pos[i]-d)*(s.q[i]-s.q[i-1])/(s.pos[i]-s.pos[i-1]))
}

// linear is the fallback adjustment when the parabola overshoots a
// neighboring marker.
func (s *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact percentile of what has been
// seen; with none it returns 0 (matching Summarize's empty-set convention).
func (s *P2Quantile) Value() float64 {
	if s.n == 0 {
		return 0
	}
	if s.n < 5 {
		var buf [5]float64
		head := buf[:s.n]
		copy(head, s.init[:s.n])
		sort.Float64s(head)
		return percentileSorted(head, s.p*100)
	}
	return s.q[2]
}
