// Package stats provides the small numerical toolbox WindServe needs:
// least-squares polynomial regression (used by the Profiler to fit the
// paper's eqs. 1–2), percentile computation, and summary statistics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrSingular is returned when a regression system has no unique solution
// (e.g. fewer distinct sample points than coefficients).
var ErrSingular = errors.New("stats: singular system, not enough distinct samples")

// PolyFit fits y ≈ c[0] + c[1]·x + … + c[degree]·x^degree by ordinary least
// squares and returns the coefficients, lowest order first.
//
// The Profiler uses degree 2 for prefill (T = c_p + a_p·N + b_p·N²) and
// degree 1 for decode (T = c_d + a_d·ΣL), matching the paper §3.2.1.
func PolyFit(xs, ys []float64, degree int) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: len(xs)=%d != len(ys)=%d", len(xs), len(ys))
	}
	if degree < 0 {
		return nil, fmt.Errorf("stats: negative degree %d", degree)
	}
	n := degree + 1
	if len(xs) < n {
		return nil, ErrSingular
	}
	// Normal equations: (VᵀV)c = Vᵀy with Vandermonde V.
	// Accumulate moments sum(x^k) for k=0..2·degree and sum(y·x^k).
	moments := make([]float64, 2*degree+1)
	rhs := make([]float64, n)
	for i, x := range xs {
		pk := 1.0
		for k := 0; k <= 2*degree; k++ {
			moments[k] += pk
			if k < n {
				rhs[k] += ys[i] * pk
			}
			pk *= x
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
		for j := 0; j < n; j++ {
			a[i][j] = moments[i+j]
		}
		a[i][n] = rhs[i]
	}
	c, err := solveGauss(a)
	if err != nil {
		return nil, err
	}
	return c, nil
}

// solveGauss solves the augmented system a (n×(n+1)) in place by Gaussian
// elimination with partial pivoting.
func solveGauss(a [][]float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, ErrSingular
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := a[i][n]
		for j := i + 1; j < n; j++ {
			sum -= a[i][j] * x[j]
		}
		x[i] = sum / a[i][i]
	}
	return x, nil
}

// PolyEval evaluates a polynomial with coefficients c (lowest order first)
// at x using Horner's rule.
func PolyEval(c []float64, x float64) float64 {
	y := 0.0
	for i := len(c) - 1; i >= 0; i-- {
		y = y*x + c[i]
	}
	return y
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns NaN for an empty slice.
// xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// PercentilesOf computes several percentiles with a single sort.
func PercentilesOf(xs []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(xs) == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, p := range ps {
		out[i] = percentileSorted(sorted, p)
	}
	return out
}

func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (NaN if empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the total of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// StdDev returns the population standard deviation of xs (NaN if empty).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Max returns the maximum of xs (NaN if empty).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (NaN if empty).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// R2 returns the coefficient of determination of predictions yhat against
// observations y; 1 means a perfect fit.
func R2(y, yhat []float64) float64 {
	if len(y) == 0 || len(y) != len(yhat) {
		return math.NaN()
	}
	m := Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
