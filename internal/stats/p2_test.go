package stats

import (
	"math"
	"math/rand"
	"testing"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestP2ErrorBounds pins the sketch's accuracy contract: within 1%
// relative error of the exact percentile at p50 and p99 on 100k samples,
// across distribution shapes a latency stream actually takes (uniform,
// exponential tail, lognormal).
func TestP2ErrorBounds(t *testing.T) {
	dists := []struct {
		name string
		draw func(rng *rand.Rand) float64
	}{
		{"uniform", func(rng *rand.Rand) float64 { return rng.Float64() * 10 }},
		{"exponential", func(rng *rand.Rand) float64 { return rng.ExpFloat64() * 0.25 }},
		{"lognormal", func(rng *rand.Rand) float64 { return math.Exp(rng.NormFloat64() * 0.8) }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.99} {
			rng := rand.New(rand.NewSource(42))
			sketch := NewP2Quantile(p)
			xs := make([]float64, 100_000)
			for i := range xs {
				xs[i] = d.draw(rng)
				sketch.Add(xs[i])
			}
			exact := Percentile(xs, p*100)
			if e := relErr(sketch.Value(), exact); e > 0.01 {
				t.Errorf("%s p%g: sketch=%.6f exact=%.6f relative error %.4f > 1%%",
					d.name, p*100, sketch.Value(), exact, e)
			}
		}
	}
}

// TestP2SmallN: below five observations the estimator must be exact.
func TestP2SmallN(t *testing.T) {
	s := NewP2Quantile(0.5)
	if s.Value() != 0 {
		t.Errorf("empty sketch Value = %v, want 0", s.Value())
	}
	s.Add(3)
	if s.Value() != 3 {
		t.Errorf("single-sample Value = %v, want 3", s.Value())
	}
	s.Add(1)
	s.Add(2)
	if s.Value() != 2 {
		t.Errorf("3-sample median = %v, want 2", s.Value())
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
}

// TestP2Deterministic: identical streams give identical estimates.
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(7))
		s := NewP2Quantile(0.9)
		for i := 0; i < 10_000; i++ {
			s.Add(rng.NormFloat64())
		}
		return s.Value()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("P² not deterministic: %v != %v", a, b)
	}
}

// checkMarkers asserts the P² marker-height invariant q[0] ≤ … ≤ q[4];
// once it breaks the estimate can wander arbitrarily far and never
// recover.
func checkMarkers(t *testing.T, s *P2Quantile, what string) {
	t.Helper()
	if s.n < 5 {
		return
	}
	for i := 1; i < 5; i++ {
		if s.q[i] < s.q[i-1] {
			t.Fatalf("%s: marker heights non-monotone: q=%v", what, s.q)
		}
	}
}

// TestP2DuplicateHeavyStreams is the satellite regression: the classic P²
// failure mode is a duplicate-heavy stream, where the parabolic update's
// strict-inequality guard passes with equal neighbor heights and the
// linear fallback lands outside [q[i-1], q[i+1]]. The clamped update must
// keep marker heights monotone and the estimate near the exact percentile
// on constant, two-value, and adversarial step streams.
func TestP2DuplicateHeavyStreams(t *testing.T) {
	streams := []struct {
		name string
		gen  func(i int) float64
		tol  float64 // absolute tolerance vs the exact percentile
	}{
		{"constant", func(i int) float64 { return 7 }, 0},
		// 30% of mass at 5: the tested percentiles (50/90/99) all sit
		// inside a constant run, not on the jump at p70.
		{"two-value", func(i int) float64 {
			if i%10 < 3 {
				return 5
			}
			return 1
		}, 0.01},
		{"step", func(i int) float64 { // long constant runs with jumps
			return float64(i / 2500)
		}, 1},
		{"alternating-step", func(i int) float64 { // dup runs straddling the median
			switch {
			case i%100 < 49:
				return 2
			case i%100 < 98:
				return 4
			default:
				return float64(i % 7)
			}
		}, 1},
	}
	for _, st := range streams {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			s := NewP2Quantile(p)
			xs := make([]float64, 10_000)
			for i := range xs {
				xs[i] = st.gen(i)
				s.Add(xs[i])
				checkMarkers(t, s, st.name)
			}
			exact := Percentile(xs, p*100)
			if d := math.Abs(s.Value() - exact); d > st.tol {
				t.Errorf("%s p%g: sketch=%v exact=%v (|Δ|=%v > %v)",
					st.name, p*100, s.Value(), exact, d, st.tol)
			}
		}
	}
}

// BenchmarkPercentileRepeated vs BenchmarkPercentilesOf quantify the
// satellite win: N percentiles of the same slice cost one sort, not N
// copies+sorts.
func BenchmarkPercentileRepeated(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Percentile(xs, 50)
		_ = Percentile(xs, 90)
		_ = Percentile(xs, 99)
	}
}

func BenchmarkPercentilesOf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PercentilesOf(xs, 50, 90, 99)
	}
}

func BenchmarkP2Add(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	s := NewP2Quantile(0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
}
