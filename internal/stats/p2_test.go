package stats

import (
	"math"
	"math/rand"
	"testing"
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestP2ErrorBounds pins the sketch's accuracy contract: within 1%
// relative error of the exact percentile at p50 and p99 on 100k samples,
// across distribution shapes a latency stream actually takes (uniform,
// exponential tail, lognormal).
func TestP2ErrorBounds(t *testing.T) {
	dists := []struct {
		name string
		draw func(rng *rand.Rand) float64
	}{
		{"uniform", func(rng *rand.Rand) float64 { return rng.Float64() * 10 }},
		{"exponential", func(rng *rand.Rand) float64 { return rng.ExpFloat64() * 0.25 }},
		{"lognormal", func(rng *rand.Rand) float64 { return math.Exp(rng.NormFloat64() * 0.8) }},
	}
	for _, d := range dists {
		for _, p := range []float64{0.5, 0.99} {
			rng := rand.New(rand.NewSource(42))
			sketch := NewP2Quantile(p)
			xs := make([]float64, 100_000)
			for i := range xs {
				xs[i] = d.draw(rng)
				sketch.Add(xs[i])
			}
			exact := Percentile(xs, p*100)
			if e := relErr(sketch.Value(), exact); e > 0.01 {
				t.Errorf("%s p%g: sketch=%.6f exact=%.6f relative error %.4f > 1%%",
					d.name, p*100, sketch.Value(), exact, e)
			}
		}
	}
}

// TestP2SmallN: below five observations the estimator must be exact.
func TestP2SmallN(t *testing.T) {
	s := NewP2Quantile(0.5)
	if s.Value() != 0 {
		t.Errorf("empty sketch Value = %v, want 0", s.Value())
	}
	s.Add(3)
	if s.Value() != 3 {
		t.Errorf("single-sample Value = %v, want 3", s.Value())
	}
	s.Add(1)
	s.Add(2)
	if s.Value() != 2 {
		t.Errorf("3-sample median = %v, want 2", s.Value())
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}
}

// TestP2Deterministic: identical streams give identical estimates.
func TestP2Deterministic(t *testing.T) {
	run := func() float64 {
		rng := rand.New(rand.NewSource(7))
		s := NewP2Quantile(0.9)
		for i := 0; i < 10_000; i++ {
			s.Add(rng.NormFloat64())
		}
		return s.Value()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("P² not deterministic: %v != %v", a, b)
	}
}

// BenchmarkPercentileRepeated vs BenchmarkPercentilesOf quantify the
// satellite win: N percentiles of the same slice cost one sort, not N
// copies+sorts.
func BenchmarkPercentileRepeated(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Percentile(xs, 50)
		_ = Percentile(xs, 90)
		_ = Percentile(xs, 99)
	}
}

func BenchmarkPercentilesOf(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 10_000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PercentilesOf(xs, 50, 90, 99)
	}
}

func BenchmarkP2Add(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	s := NewP2Quantile(0.99)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(xs[i&4095])
	}
}
