package sched

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"

	"windserve/internal/sim"
)

// This file is the Global Scheduler's decision audit trail. Every Dynamic
// Prefill Dispatch choice records the candidate set it weighed (with the
// predicted TTFT split into its compute and transfer terms), the budget in
// force, and the outcome; every Dynamic Rescheduling records its trigger,
// victim, and per-round copy timings. The log makes simulated scheduler
// claims inspectable: "why did request 17 land on decode-1 at t=42s" has a
// recorded answer instead of a guess.
//
// All times serialize as float64 seconds of virtual time.

// DispatchCandidate is one placement the Coordinator could have chosen for
// an arriving request, with its TTFT prediction broken into terms.
type DispatchCandidate struct {
	// Instance is the candidate's name (e.g. "prefill-0", "decode-1").
	Instance string `json:"instance"`
	// QueuedTokens is the candidate's waiting prefill work at decision time.
	QueuedTokens int `json:"queued_tokens"`
	// ComputeTTFT is the predicted queue+compute term (eq. 1 plus the busy
	// remainder); TransferTTFT is the predicted post-prefill KV copy at the
	// Profiler's observed link rate (0 for placements needing no transfer).
	ComputeTTFT  sim.Duration `json:"compute_ttft_s"`
	TransferTTFT sim.Duration `json:"transfer_ttft_s"`
	// PredictedTTFT = ComputeTTFT + TransferTTFT.
	PredictedTTFT sim.Duration `json:"predicted_ttft_s"`
}

// DispatchRecord is one Dynamic Prefill Dispatch decision (Algorithm 1).
type DispatchRecord struct {
	Time         sim.Time `json:"t_s"`
	ReqID        uint64   `json:"req"`
	PromptTokens int      `json:"prompt_tokens"`
	// CachedTokens is how many prompt tokens the prefill instance's
	// cross-request prefix cache already held at decision time (0, and
	// omitted, unless prefix caching is enabled).
	CachedTokens int `json:"cached_tokens,omitempty"`
	// Candidates holds every placement weighed, prefill instances first.
	Candidates []DispatchCandidate `json:"candidates"`
	// Threshold is Algorithm 1's thrd on predicted TTFT.
	Threshold sim.Duration `json:"threshold_s"`
	// BudgetTokens is the AssistBudget in force; AssistInFlight the tokens
	// already dispatched and unfinished; Slots the remaining capacity after
	// the budget and KV-safety checks.
	BudgetTokens   int `json:"budget_tokens"`
	AssistInFlight int `json:"assist_in_flight"`
	Slots          int `json:"slots"`
	// Target is the chosen instance; ToDecode is true when the request was
	// dispatched to a decode instance's SBD stream.
	Target   string `json:"target"`
	ToDecode bool   `json:"to_decode"`
}

// CopyRound is one link occupation of a stall-free migration: a background
// copy of the dirty span, or the final bounded drain.
type CopyRound struct {
	Kind   string   `json:"kind"` // "copy" | "drain"
	Start  sim.Time `json:"start_s"`
	End    sim.Time `json:"end_s"`
	Tokens int      `json:"tokens"`
}

// RescheduleRecord is one Dynamic Rescheduling (migration) of a decode job.
type RescheduleRecord struct {
	Time  sim.Time `json:"t_s"`
	ReqID uint64   `json:"req"`
	// Trigger names what started the migration (e.g. "low-watermark").
	Trigger string `json:"trigger"`
	// FreeFrac is the decode instance's free-KV fraction at trigger time.
	FreeFrac float64 `json:"free_frac"`
	Src      string  `json:"src"`
	Dst      string  `json:"dst"`
	// CtxTokens is the victim's context at trigger; BackupTokens how much a
	// proactive backup already held at the destination.
	CtxTokens    int `json:"ctx_tokens"`
	BackupTokens int `json:"backup_tokens"`
	// Rounds are the copy rounds in order, the drain last when it happened.
	Rounds []CopyRound `json:"rounds,omitempty"`
	// Outcome: "migrated" after a completed drain, "dead" when an endpoint
	// crashed or the request terminated mid-copy, "" while still in flight.
	Outcome string `json:"outcome,omitempty"`
}

// RouteRecord is a plain routing choice with no prediction behind it —
// DistServe's round-robin, vLLM's replica pick, WindServe's least-loaded
// prefill fallback. Logged so every system's placements are auditable in
// the same file.
type RouteRecord struct {
	Time   sim.Time `json:"t_s"`
	ReqID  uint64   `json:"req"`
	Target string   `json:"target"`
	// Reason names the policy ("round-robin", "least-loaded", ...).
	Reason string `json:"reason"`
}

// DecisionLog accumulates scheduler decisions during a run. A nil
// *DecisionLog is valid and records nothing, so systems can log
// unconditionally (mirroring trace.Tracer).
type DecisionLog struct {
	Dispatches  []*DispatchRecord
	Reschedules []*RescheduleRecord
	Routes      []*RouteRecord
}

// NewDecisionLog returns an empty log.
func NewDecisionLog() *DecisionLog { return &DecisionLog{} }

// AddDispatch appends a dispatch record. No-op on a nil log.
func (l *DecisionLog) AddDispatch(r *DispatchRecord) {
	if l == nil {
		return
	}
	l.Dispatches = append(l.Dispatches, r)
}

// AddReschedule appends a reschedule record and returns it so the caller
// can keep appending copy rounds as they complete. Returns nil on a nil
// log (callers must nil-check before mutating).
func (l *DecisionLog) AddReschedule(r *RescheduleRecord) *RescheduleRecord {
	if l == nil {
		return nil
	}
	l.Reschedules = append(l.Reschedules, r)
	return r
}

// AddRoute appends a routing record. No-op on a nil log.
func (l *DecisionLog) AddRoute(at sim.Time, reqID uint64, target, reason string) {
	if l == nil {
		return
	}
	l.Routes = append(l.Routes, &RouteRecord{Time: at, ReqID: reqID, Target: target, Reason: reason})
}

// Absorb merges per-actor logs into l in canonical order. Each part must
// be internally time-sorted (true of any log appended from a single
// simulator's events); parts are passed in actor order. Concatenating in
// part order and stable-sorting by Time is then exactly a merge keyed by
// (Time, actor, per-actor append order) — independent of how the actors
// were scheduled, so a sharded fleet run absorbs to the same log as a
// sequential one. No-op on a nil receiver; nil parts are skipped.
func (l *DecisionLog) Absorb(parts ...*DecisionLog) {
	if l == nil {
		return
	}
	for _, p := range parts {
		if p == nil {
			continue
		}
		l.Dispatches = append(l.Dispatches, p.Dispatches...)
		l.Reschedules = append(l.Reschedules, p.Reschedules...)
		l.Routes = append(l.Routes, p.Routes...)
	}
	sort.SliceStable(l.Dispatches, func(i, j int) bool { return l.Dispatches[i].Time < l.Dispatches[j].Time })
	sort.SliceStable(l.Reschedules, func(i, j int) bool { return l.Reschedules[i].Time < l.Reschedules[j].Time })
	sort.SliceStable(l.Routes, func(i, j int) bool { return l.Routes[i].Time < l.Routes[j].Time })
}

// CacheHitRatio is the fraction of dispatched prompt tokens that were
// already resident in a prefix cache at decision time, over every
// dispatch in the log. Returns 0 on a nil/empty log or when prefix
// caching is off (all CachedTokens zero).
func (l *DecisionLog) CacheHitRatio() float64 {
	if l == nil {
		return 0
	}
	var hit, total int
	for _, r := range l.Dispatches {
		hit += r.CachedTokens
		total += r.PromptTokens
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// Len returns the total number of recorded decisions.
func (l *DecisionLog) Len() int {
	if l == nil {
		return 0
	}
	return len(l.Dispatches) + len(l.Reschedules) + len(l.Routes)
}

// jsonl envelopes: one self-describing object per line.
type dispatchLine struct {
	Type string `json:"type"`
	*DispatchRecord
}
type rescheduleLine struct {
	Type string `json:"type"`
	*RescheduleRecord
}
type routeLine struct {
	Type string `json:"type"`
	*RouteRecord
}

// WriteJSONL emits the log as JSON Lines, one decision per line tagged
// with its type ("dispatch", "reschedule", "route"), merged into virtual-
// time order. Safe on a nil log (writes nothing).
func (l *DecisionLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	type entry struct {
		t   sim.Time
		seq int
		v   any
	}
	entries := make([]entry, 0, l.Len())
	for _, r := range l.Dispatches {
		entries = append(entries, entry{r.Time, len(entries), dispatchLine{"dispatch", r}})
	}
	for _, r := range l.Reschedules {
		entries = append(entries, entry{r.Time, len(entries), rescheduleLine{"reschedule", r}})
	}
	for _, r := range l.Routes {
		entries = append(entries, entry{r.Time, len(entries), routeLine{"route", r}})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if entries[i].t != entries[j].t {
			return entries[i].t < entries[j].t
		}
		return entries[i].seq < entries[j].seq
	})
	// Each Encode is one small Write; for a long capture that is one
	// syscall per decision unless the writer is buffered.
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	for _, e := range entries {
		if err := enc.Encode(e.v); err != nil {
			return err
		}
	}
	return bw.Flush()
}
