package sched

import (
	"sort"

	"windserve/internal/engine"
	"windserve/internal/sim"
)

// Coordinator makes the Global Scheduler's cross-instance decisions
// (paper §3.2.2). It is pure policy: the serving system feeds it
// observations and executes its decisions, which keeps every branch of
// Algorithm 1 unit-testable without a simulator.
type Coordinator struct {
	Prof *Profiler
	// Thrd is Algorithm 1's dispatch threshold on predicted TTFT — set
	// slightly below the TTFT SLO (paper Fig. 5 discussion).
	Thrd sim.Duration
	// BudgetTokens caps concurrently dispatched prefill tokens in the
	// decode instance (the §3.2.2 budget, from AssistBudget).
	BudgetTokens int
	// KVSafetyTokens is the free-KV floor the decode instance must keep
	// after accepting an assist, so dispatch never starves decode growth.
	KVSafetyTokens int
}

// DispatchInput is the Coordinator's view when a request arrives
// (Algorithm 1's inputs).
type DispatchInput struct {
	// NewPromptTokens is R_new's prompt length.
	NewPromptTokens int
	// QueuedPrefillTokens is the prefill instance's waiting-queue total.
	QueuedPrefillTokens int
	// PrefillBusyRemaining is the anticipated remaining time of the batch
	// currently prefilling.
	PrefillBusyRemaining sim.Duration
	// DecodeFreeKVTokens is the decode instance's free block capacity.
	DecodeFreeKVTokens int
	// AssistInFlightTokens counts prefill tokens already dispatched and
	// not yet finished in the decode instance.
	AssistInFlightTokens int
	// TransferBytes is the KV payload the prefill path would have to move
	// to a decode instance afterwards. Priced with the Profiler's observed
	// transfer rate, it biases dispatch toward the decode instance (whose
	// prefill needs no transfer) when links degrade.
	TransferBytes float64
	// CachedTokens is how many of R_new's prompt tokens the prefill
	// instance already holds in its cross-request prefix cache: they cost
	// no prefill compute there, so the TTFT prediction shrinks by the hit
	// length. Zero unless prefix caching is enabled.
	CachedTokens int
}

// DispatchDecision is the outcome of Algorithm 1 for one arrival.
type DispatchDecision struct {
	// ToDecode dispatches the prefill to the decode instance.
	ToDecode bool
	// PredictedTTFT is the Profiler's estimate if served by the prefill
	// instance (lines 1 of Algorithm 1): ComputeTTFT + TransferTTFT.
	PredictedTTFT sim.Duration
	// ComputeTTFT is the queue+compute term (eq. 1 over the waiting tokens
	// plus the busy remainder); TransferTTFT the post-prefill KV copy at
	// the observed link rate. Split out for the decision log.
	ComputeTTFT  sim.Duration
	TransferTTFT sim.Duration
	// Slots is the assist capacity that was available (tokens).
	Slots int
}

// DecideDispatch runs Algorithm 1: predict the TTFT on the prefill
// instance; if it exceeds the threshold and the decode instance has
// enough slots (budget and KV), dispatch there.
func (c *Coordinator) DecideDispatch(in DispatchInput) DispatchDecision {
	newTokens := in.NewPromptTokens - in.CachedTokens
	if newTokens < 0 {
		newTokens = 0
	}
	compute := c.Prof.PredictPrefill(in.QueuedPrefillTokens+newTokens) + in.PrefillBusyRemaining
	transfer := c.Prof.PredictTransfer(in.TransferBytes)
	pred := compute + transfer

	slots := c.BudgetTokens - in.AssistInFlightTokens
	if kvRoom := in.DecodeFreeKVTokens - c.KVSafetyTokens; kvRoom < slots {
		slots = kvRoom
	}
	if slots < 0 {
		slots = 0
	}
	d := DispatchDecision{PredictedTTFT: pred, ComputeTTFT: compute, TransferTTFT: transfer, Slots: slots}
	if pred > c.Thrd && slots >= in.NewPromptTokens {
		d.ToDecode = true
	}
	return d
}

// ReschedulePolicy parameterizes Dynamic Rescheduling (§3.2.2, §3.3).
type ReschedulePolicy struct {
	// LowWatermark triggers rescheduling when the decode instance's free
	// block fraction falls below it.
	LowWatermark float64
	// TargetFree is the free fraction rescheduling tries to restore.
	TargetFree float64
	// DrainThresholdTokens pauses a migrating request's decoding once its
	// un-copied tail is at most this many tokens (stall-free migration's
	// final-copy bound).
	DrainThresholdTokens int
	// MaxConcurrentMigrations bounds in-flight migrations.
	MaxConcurrentMigrations int
	// PreferShortVictims migrates the shortest contexts first — Llumnix's
	// choice, which minimizes per-migration cost. WindServe instead
	// migrates the longest contexts (the default, false) to free the most
	// blocks per migration and minimize repeat migrations (§3.3). Exposed
	// so the two policies can be compared experimentally.
	PreferShortVictims bool
}

// DefaultReschedulePolicy returns the paper-calibrated policy.
func DefaultReschedulePolicy() ReschedulePolicy {
	return ReschedulePolicy{
		LowWatermark:            0.08,
		TargetFree:              0.18,
		DrainThresholdTokens:    64,
		MaxConcurrentMigrations: 2,
	}
}

// ShouldTrigger reports whether rescheduling should start.
func (p ReschedulePolicy) ShouldTrigger(freeFrac float64) bool {
	return freeFrac < p.LowWatermark
}

// PickVictims selects which running requests to migrate. By default the
// longest contexts go first (the paper migrates long sequences to free
// the most blocks and reduce repeat migrations — the opposite of Llumnix,
// §3.3); PreferShortVictims flips the order for comparison. Requests
// already migrating are skipped. Enough victims are returned to free at
// least needTokens of context.
func (p ReschedulePolicy) PickVictims(running []*engine.Req, needTokens, maxVictims int) []*engine.Req {
	cands := make([]*engine.Req, 0, len(running))
	for _, r := range running {
		if r.Migrating || r.Phase != engine.PhaseDecoding {
			continue
		}
		cands = append(cands, r)
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if p.PreferShortVictims {
			return cands[i].Ctx() < cands[j].Ctx()
		}
		return cands[i].Ctx() > cands[j].Ctx()
	})
	var out []*engine.Req
	freed := 0
	for _, r := range cands {
		if freed >= needTokens || len(out) >= maxVictims {
			break
		}
		out = append(out, r)
		freed += r.Ctx()
	}
	return out
}

// BackupPolicy parameterizes proactive KV backups (§3.3): when the
// prefill instance has plenty of free blocks and the decode instance is
// filling up, copy long-context requests' KV ahead of time so a later
// migration only moves the delta.
type BackupPolicy struct {
	// DecodePressure: start backing up when decode free fraction drops
	// below this.
	DecodePressure float64
	// PrefillFreeFloor: only use prefill KV while its free fraction stays
	// above this (prefill work always has priority for its own blocks).
	PrefillFreeFloor float64
	// MinContextTokens: only back up requests at least this long.
	MinContextTokens int
}

// DefaultBackupPolicy returns the paper-calibrated policy.
func DefaultBackupPolicy() BackupPolicy {
	return BackupPolicy{DecodePressure: 0.35, PrefillFreeFloor: 0.5, MinContextTokens: 512}
}

// ShouldBackup reports whether conditions favor proactive backups.
func (p BackupPolicy) ShouldBackup(decodeFreeFrac, prefillFreeFrac float64) bool {
	return decodeFreeFrac < p.DecodePressure && prefillFreeFrac > p.PrefillFreeFloor
}

// PickBackupCandidate returns the longest running request above the
// length floor that has no backup yet and is not migrating, or nil.
func (p BackupPolicy) PickBackupCandidate(running []*engine.Req) *engine.Req {
	var best *engine.Req
	for _, r := range running {
		if r.Migrating || r.BackupTokens > 0 || r.Ctx() < p.MinContextTokens {
			continue
		}
		if best == nil || r.Ctx() > best.Ctx() {
			best = r
		}
	}
	return best
}
