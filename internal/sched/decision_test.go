package sched

import (
	"bufio"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"windserve/internal/sim"
)

func TestDecisionLogWriteJSONL(t *testing.T) {
	l := NewDecisionLog()
	l.AddRoute(3, 9, "prefill-1", "round-robin")
	l.AddDispatch(&DispatchRecord{
		Time: 1, ReqID: 7, PromptTokens: 512,
		Candidates: []DispatchCandidate{
			{Instance: "prefill-0", QueuedTokens: 100, ComputeTTFT: 0.2, TransferTTFT: 0.05, PredictedTTFT: 0.25},
			{Instance: "decode-0", ComputeTTFT: 0.3, PredictedTTFT: 0.3},
		},
		Threshold: 0.4, BudgetTokens: 4096, Target: "prefill-0",
	})
	m := l.AddReschedule(&RescheduleRecord{
		Time: 2, ReqID: 7, Trigger: "low-watermark", FreeFrac: 0.05,
		Src: "decode-0", Dst: "prefill-1", CtxTokens: 900,
	})
	m.Rounds = append(m.Rounds, CopyRound{Kind: "copy", Start: 2, End: 2.4, Tokens: 800})
	m.Outcome = "migrated"

	if l.Len() != 3 {
		t.Fatalf("Len() = %d, want 3", l.Len())
	}
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}

	var types []string
	var times []float64
	sc := bufio.NewScanner(strings.NewReader(b.String()))
	for sc.Scan() {
		var obj map[string]any
		if err := json.Unmarshal(sc.Bytes(), &obj); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		types = append(types, obj["type"].(string))
		times = append(times, obj["t_s"].(float64))
	}
	// Merged into virtual-time order, regardless of insertion order.
	if want := []string{"dispatch", "reschedule", "route"}; len(types) != 3 ||
		types[0] != want[0] || types[1] != want[1] || types[2] != want[2] {
		t.Fatalf("types = %v, want %v", types, want)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("lines out of time order: %v", times)
		}
	}
	// The dispatch line keeps the per-candidate TTFT split.
	var d struct {
		Candidates []struct {
			Instance  string  `json:"instance"`
			Compute   float64 `json:"compute_ttft_s"`
			Transfer  float64 `json:"transfer_ttft_s"`
			Predicted float64 `json:"predicted_ttft_s"`
		} `json:"candidates"`
	}
	first, _, _ := strings.Cut(b.String(), "\n")
	if err := json.Unmarshal([]byte(first), &d); err != nil {
		t.Fatal(err)
	}
	if len(d.Candidates) != 2 {
		t.Fatalf("candidates = %d, want 2", len(d.Candidates))
	}
	for _, c := range d.Candidates {
		if math.Abs(c.Predicted-(c.Compute+c.Transfer)) > 1e-12 {
			t.Errorf("%s: predicted %v != compute %v + transfer %v", c.Instance, c.Predicted, c.Compute, c.Transfer)
		}
	}
}

func TestDecisionLogNilSafe(t *testing.T) {
	var l *DecisionLog
	l.AddDispatch(&DispatchRecord{ReqID: 1})
	l.AddRoute(0, 1, "prefill-0", "round-robin")
	if r := l.AddReschedule(&RescheduleRecord{ReqID: 1}); r != nil {
		t.Error("nil log returned a live reschedule record")
	}
	if l.Len() != 0 {
		t.Errorf("nil log Len() = %d", l.Len())
	}
	var b strings.Builder
	if err := l.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("nil log wrote %q", b.String())
	}
}

func TestWarmStartTransfer(t *testing.T) {
	p := &Profiler{}
	if p.PredictTransfer(1e9) != 0 {
		t.Fatal("cold profiler should predict 0 (unknown link)")
	}
	p.WarmStartTransfer(32e9)
	if p.TransferRate() != 32e9 {
		t.Fatalf("TransferRate = %v, want warm-started 32e9", p.TransferRate())
	}
	if got := p.PredictTransfer(16e9).Seconds(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("PredictTransfer(16GB) = %vs, want 0.5s at the nominal rate", got)
	}
	// A second warm start must not clobber an existing estimate.
	p.WarmStartTransfer(64e9)
	if p.TransferRate() != 32e9 {
		t.Errorf("warm start overwrote a live estimate: %v", p.TransferRate())
	}
}

func TestWarmStartedEWMAConvergesToDegradedRate(t *testing.T) {
	p := &Profiler{}
	p.WarmStartTransfer(32e9)
	// The link degrades to a quarter of nominal; every observed copy now
	// runs at 8 GB/s. The EWMA must converge there despite the warm start.
	degraded := 8e9
	for i := 0; i < 60; i++ {
		p.ObserveTransfer(1e9, sim.Seconds(1e9/degraded))
	}
	if rel := math.Abs(p.TransferRate()-degraded) / degraded; rel > 0.01 {
		t.Errorf("TransferRate = %v after 60 degraded copies, want within 1%% of %v", p.TransferRate(), degraded)
	}
}
