package sched

import (
	"math"
	"testing"
	"testing/quick"

	"windserve/internal/engine"
	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/perf"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

func testCM(t *testing.T) *perf.CostModel {
	t.Helper()
	return perf.MustNew(model.OPT13B, gpu.A800, perf.Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, perf.DefaultParams())
}

func testProfiler(t *testing.T) *Profiler {
	t.Helper()
	p, err := Profile(testCM(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfilerFitQuality(t *testing.T) {
	p := testProfiler(t)
	if p.PrefillR2 < 0.98 {
		t.Errorf("prefill fit R2 = %v, want > 0.98", p.PrefillR2)
	}
	if p.DecodeR2 < 0.95 {
		t.Errorf("decode fit R2 = %v, want > 0.95", p.DecodeR2)
	}
}

func TestProfilerPredictionsTrackCostModel(t *testing.T) {
	cm := testCM(t)
	p := testProfiler(t)
	// On unsampled shapes the prediction should land within ~15% — real
	// prediction error, but useful for scheduling.
	for _, n := range []int{100, 500, 900, 1700} {
		got := p.PredictPrefill(n).Seconds()
		want := cm.PrefillTime(n).Seconds()
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("PredictPrefill(%d) = %.4f, actual %.4f", n, got, want)
		}
	}
	for _, c := range []struct{ b, ctx int }{{8, 700}, {16, 900}, {24, 1200}} {
		got := p.PredictDecode(c.b * c.ctx).Seconds()
		want := cm.DecodeTime(c.b, c.b*c.ctx).Seconds()
		if math.Abs(got-want) > 0.25*want {
			t.Errorf("PredictDecode(b=%d,ctx=%d) = %.4f, actual %.4f", c.b, c.ctx, got, want)
		}
	}
}

func TestProfilerCoefficientSigns(t *testing.T) {
	p := testProfiler(t)
	_, ap, bp := p.PrefillCoefficients()
	if ap <= 0 {
		t.Errorf("a_p = %v, want positive linear term", ap)
	}
	if bp <= 0 {
		t.Errorf("b_p = %v, want positive quadratic term", bp)
	}
	_, ad := p.DecodeCoefficients()
	if ad <= 0 {
		t.Errorf("a_d = %v, want positive", ad)
	}
}

func TestProfilerEdgeInputs(t *testing.T) {
	p := testProfiler(t)
	if p.PredictPrefill(0) != 0 || p.PredictPrefill(-5) != 0 {
		t.Error("non-positive token counts should predict 0")
	}
	if p.PredictDecode(0) < 0 {
		t.Error("decode prediction must be non-negative")
	}
}

// Property: predictions are monotone.
func TestPropertyPredictionMonotone(t *testing.T) {
	p := testProfiler(t)
	f := func(a, b uint16) bool {
		x, y := int(a%4096), int(b%4096)
		if x > y {
			x, y = y, x
		}
		return p.PredictPrefill(x) <= p.PredictPrefill(y) &&
			p.PredictDecode(x) <= p.PredictDecode(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssistBudget(t *testing.T) {
	cm := testCM(t)
	ref := perf.DecodeOnly(16, 16*900)
	slo := sim.Milliseconds(100)
	budget := AssistBudget(cm, ref, slo)
	if budget <= 0 {
		t.Fatalf("budget = %d, want positive", budget)
	}
	// At the budget the SLO holds; just above it (if not maxed) it fails.
	if td := cm.SBDDecodeTime(ref, perf.PrefillOnly(budget)); td > slo {
		t.Errorf("decode at budget %d takes %v > SLO %v", budget, td, slo)
	}
	if budget < cm.Cfg.MaxContext {
		if td := cm.SBDDecodeTime(ref, perf.PrefillOnly(budget+64)); td <= slo {
			t.Errorf("budget %d not maximal: %d tokens still meets SLO (%v)", budget, budget+64, td)
		}
	}
	// Tighter SLO → smaller budget.
	tight := AssistBudget(cm, ref, sim.Milliseconds(18))
	if tight > budget {
		t.Errorf("tighter SLO grew the budget: %d > %d", tight, budget)
	}
	// No decode load → full budget.
	if b := AssistBudget(cm, perf.Batch{}, slo); b != cm.Cfg.MaxContext {
		t.Errorf("empty reference budget = %d, want max context", b)
	}
	// SLO already blown → full budget (KV gate still applies at runtime).
	if b := AssistBudget(cm, perf.DecodeOnly(200, 200*2000), sim.Milliseconds(1)); b != cm.Cfg.MaxContext {
		t.Errorf("blown-SLO budget = %d", b)
	}
}

func mkCoord(t *testing.T) *Coordinator {
	return &Coordinator{
		Prof:           testProfiler(t),
		Thrd:           sim.Milliseconds(200), // slightly below the 250ms SLO
		BudgetTokens:   2048,
		KVSafetyTokens: 4096,
	}
}

func TestDispatchUnderloadedStaysOnPrefill(t *testing.T) {
	c := mkCoord(t)
	d := c.DecideDispatch(DispatchInput{
		NewPromptTokens:     700,
		QueuedPrefillTokens: 0,
		DecodeFreeKVTokens:  100_000,
	})
	if d.ToDecode {
		t.Errorf("empty queue should not dispatch (pred=%v)", d.PredictedTTFT)
	}
}

func TestDispatchOverloadedGoesToDecode(t *testing.T) {
	c := mkCoord(t)
	d := c.DecideDispatch(DispatchInput{
		NewPromptTokens:      700,
		QueuedPrefillTokens:  6000, // deep queue → predicted TTFT above thrd
		PrefillBusyRemaining: sim.Milliseconds(100),
		DecodeFreeKVTokens:   100_000,
	})
	if !d.ToDecode {
		t.Errorf("overloaded prefill should dispatch (pred=%v, slots=%d)", d.PredictedTTFT, d.Slots)
	}
	if d.PredictedTTFT <= c.Thrd {
		t.Errorf("predicted TTFT %v should exceed threshold", d.PredictedTTFT)
	}
}

func TestDispatchBlockedByBudget(t *testing.T) {
	c := mkCoord(t)
	d := c.DecideDispatch(DispatchInput{
		NewPromptTokens:      700,
		QueuedPrefillTokens:  6000,
		DecodeFreeKVTokens:   100_000,
		AssistInFlightTokens: 1500, // 2048-1500 = 548 < 700
	})
	if d.ToDecode {
		t.Error("dispatch should be blocked by the assist budget")
	}
	if d.Slots != 548 {
		t.Errorf("slots = %d, want 548", d.Slots)
	}
}

func TestDispatchBlockedByKV(t *testing.T) {
	c := mkCoord(t)
	d := c.DecideDispatch(DispatchInput{
		NewPromptTokens:     700,
		QueuedPrefillTokens: 6000,
		DecodeFreeKVTokens:  4500, // 4500-4096 = 404 < 700
	})
	if d.ToDecode {
		t.Error("dispatch should be blocked by decode KV pressure")
	}
	if d.Slots != 404 {
		t.Errorf("slots = %d, want 404", d.Slots)
	}
	// Paper: "if the KV blocks in the decoding instance are inadequate,
	// the available slot is set to 0".
	d = c.DecideDispatch(DispatchInput{
		NewPromptTokens:     700,
		QueuedPrefillTokens: 6000,
		DecodeFreeKVTokens:  1000,
	})
	if d.Slots != 0 || d.ToDecode {
		t.Errorf("slots = %d with exhausted KV, want 0", d.Slots)
	}
}

func TestReschedulePolicyTrigger(t *testing.T) {
	p := DefaultReschedulePolicy()
	if !p.ShouldTrigger(0.05) {
		t.Error("5% free should trigger")
	}
	if p.ShouldTrigger(0.5) {
		t.Error("50% free should not trigger")
	}
}

func mkReq(id uint64, prompt, generated int) *engine.Req {
	r := engine.NewReq(workload.Request{ID: id, PromptTokens: prompt, OutputTokens: 1000})
	r.PrefillDone = prompt
	r.Generated = generated
	r.Phase = engine.PhaseDecoding
	return r
}

func TestPickVictimsPrefersLongContexts(t *testing.T) {
	p := DefaultReschedulePolicy()
	running := []*engine.Req{
		mkReq(1, 100, 10),
		mkReq(2, 1800, 50), // longest
		mkReq(3, 900, 20),
		mkReq(4, 1200, 5),
	}
	victims := p.PickVictims(running, 1800, 4)
	if len(victims) != 1 || victims[0].W.ID != 2 {
		t.Fatalf("victims = %v, want just req2", victims)
	}
	// Needing more frees the next-longest too.
	victims = p.PickVictims(running, 2500, 4)
	if len(victims) != 2 || victims[0].W.ID != 2 || victims[1].W.ID != 4 {
		t.Fatalf("victims = %v, want req2 then req4", victims)
	}
}

func TestPickVictimsSkipsMigratingAndCaps(t *testing.T) {
	p := DefaultReschedulePolicy()
	a, b, c := mkReq(1, 2000, 1), mkReq(2, 1500, 1), mkReq(3, 1400, 1)
	a.Migrating = true
	victims := p.PickVictims([]*engine.Req{a, b, c}, 10_000, 1)
	if len(victims) != 1 || victims[0] != b {
		t.Fatalf("victims = %v, want just b", victims)
	}
	// Swapped-out requests are not eligible.
	b.Phase = engine.PhaseSwapped
	victims = p.PickVictims([]*engine.Req{a, b, c}, 10_000, 5)
	if len(victims) != 1 || victims[0] != c {
		t.Fatalf("victims = %v, want just c", victims)
	}
}

func TestPickVictimsShortestFirst(t *testing.T) {
	p := DefaultReschedulePolicy()
	p.PreferShortVictims = true
	running := []*engine.Req{
		mkReq(1, 1800, 50),
		mkReq(2, 100, 10), // shortest
		mkReq(3, 900, 20),
	}
	victims := p.PickVictims(running, 1, 4)
	if len(victims) != 1 || victims[0].W.ID != 2 {
		t.Fatalf("victims = %v, want the shortest (req2)", victims)
	}
}

func TestBackupPolicy(t *testing.T) {
	p := DefaultBackupPolicy()
	if !p.ShouldBackup(0.2, 0.8) {
		t.Error("pressured decode + free prefill should back up")
	}
	if p.ShouldBackup(0.6, 0.8) {
		t.Error("relaxed decode should not back up")
	}
	if p.ShouldBackup(0.2, 0.3) {
		t.Error("busy prefill should not back up")
	}
	long := mkReq(1, 1500, 10)
	short := mkReq(2, 100, 10)
	backed := mkReq(3, 1900, 10)
	backed.BackupTokens = 1900
	got := p.PickBackupCandidate([]*engine.Req{short, long, backed})
	if got != long {
		t.Fatalf("candidate = %v, want the long unbacked request", got)
	}
	if p.PickBackupCandidate([]*engine.Req{short}) != nil {
		t.Error("short requests should not be backed up")
	}
}
