// Package sched implements WindServe's Global Scheduler — the paper's
// primary contribution (§3.2): a Profiler that characterizes each
// instance's compute capability by offline profiling and regression
// (eqs. 1–2), and a Coordinator that uses those predictions for Dynamic
// Prefill Dispatch (Algorithm 1) and Dynamic Rescheduling.
package sched

import (
	"fmt"

	"windserve/internal/perf"
	"windserve/internal/sim"
	"windserve/internal/stats"
)

// Profiler predicts iteration times from fitted curves, exactly as the
// paper's Profiler does:
//
//	T̂_prefill(N)  = a_p·N + b_p·N² + c_p   (eq. 1)
//	T̂_decode(ΣL) = a_d·ΣL + c_d            (eq. 2)
//
// The coefficients come from least-squares regression over samples taken
// from the serving engine before runtime — here, from the same cost model
// the simulated hardware runs on, so the Profiler has realistic (small
// but nonzero) prediction error on shapes it did not sample.
type Profiler struct {
	prefillCoef []float64 // c_p, a_p, b_p
	decodeCoef  []float64 // c_d, a_d
	PrefillR2   float64
	DecodeR2    float64

	// xferRate is an EWMA of observed cross-instance transfer throughput
	// (bytes/second), fed back by the serving layer from completed KV
	// copies. Unlike the compute curves it is learned online, because
	// link health changes at runtime (degradation faults, congestion);
	// Dynamic Prefill Dispatch folds the resulting transfer-time estimate
	// into its TTFT prediction so dispatch adapts to slow links.
	xferRate float64
}

// ProfileOptions controls the offline sampling grid.
type ProfileOptions struct {
	// PrefillSamples are the prompt sizes to measure (defaults cover
	// 64..MaxContext).
	PrefillSamples []int
	// DecodeBatches are the batch sizes to measure at.
	DecodeBatches []int
	// DecodeAvgCtxs are the per-request context lengths to measure at.
	DecodeAvgCtxs []int
}

func defaultOptions(maxCtx int) ProfileOptions {
	var pre []int
	for n := 64; n <= maxCtx; n *= 2 {
		pre = append(pre, n, n+n/2)
	}
	return ProfileOptions{
		PrefillSamples: pre,
		DecodeBatches:  []int{1, 4, 8, 16, 32, 64},
		DecodeAvgCtxs:  []int{128, 256, 512, 1024, maxCtx / 2, maxCtx},
	}
}

// Profile builds a Profiler for one instance by measuring its cost model.
func Profile(cm *perf.CostModel, opts *ProfileOptions) (*Profiler, error) {
	o := defaultOptions(cm.Cfg.MaxContext)
	if opts != nil {
		if len(opts.PrefillSamples) > 0 {
			o.PrefillSamples = opts.PrefillSamples
		}
		if len(opts.DecodeBatches) > 0 {
			o.DecodeBatches = opts.DecodeBatches
		}
		if len(opts.DecodeAvgCtxs) > 0 {
			o.DecodeAvgCtxs = opts.DecodeAvgCtxs
		}
	}
	var (
		preX, preY []float64
		decX, decY []float64
	)
	for _, n := range o.PrefillSamples {
		if n > cm.Cfg.MaxContext {
			continue
		}
		preX = append(preX, float64(n))
		preY = append(preY, cm.PrefillTime(n).Seconds())
	}
	for _, b := range o.DecodeBatches {
		for _, ctx := range o.DecodeAvgCtxs {
			sum := b * ctx
			decX = append(decX, float64(sum))
			decY = append(decY, cm.DecodeTime(b, sum).Seconds())
		}
	}
	pc, err := stats.PolyFit(preX, preY, 2)
	if err != nil {
		return nil, fmt.Errorf("sched: fitting prefill curve: %w", err)
	}
	dc, err := stats.PolyFit(decX, decY, 1)
	if err != nil {
		return nil, fmt.Errorf("sched: fitting decode curve: %w", err)
	}
	p := &Profiler{prefillCoef: pc, decodeCoef: dc}
	p.PrefillR2 = fitR2(preX, preY, pc)
	p.DecodeR2 = fitR2(decX, decY, dc)
	return p, nil
}

func fitR2(xs, ys, coef []float64) float64 {
	yhat := make([]float64, len(xs))
	for i, x := range xs {
		yhat[i] = stats.PolyEval(coef, x)
	}
	return stats.R2(ys, yhat)
}

// PredictPrefill estimates the time to prefill a cumulative count of
// prompt tokens (the paper feeds the waiting queue's total token count
// plus the new request through eq. 1).
func (p *Profiler) PredictPrefill(tokens int) sim.Duration {
	if tokens <= 0 {
		return 0
	}
	v := stats.PolyEval(p.prefillCoef, float64(tokens))
	if v < 0 {
		v = 0
	}
	return sim.Seconds(v)
}

// PredictDecode estimates one decode iteration for a batch with total
// context sumCtx (eq. 2).
func (p *Profiler) PredictDecode(sumCtx int) sim.Duration {
	v := stats.PolyEval(p.decodeCoef, float64(sumCtx))
	if v < 0 {
		v = 0
	}
	return sim.Seconds(v)
}

// ObserveTransfer folds one completed KV copy (payload size and wall
// time, including queuing) into the transfer-throughput EWMA.
func (p *Profiler) ObserveTransfer(bytes float64, d sim.Duration) {
	if bytes <= 0 || d <= 0 {
		return
	}
	rate := bytes / d.Seconds()
	if p.xferRate == 0 {
		p.xferRate = rate
		return
	}
	p.xferRate = 0.8*p.xferRate + 0.2*rate
}

// WarmStartTransfer seeds the transfer-rate estimate from the topology's
// nominal link bandwidth (bytes/second) so the very first dispatch round
// already prices transfer time instead of ignoring it. Only applies when
// no real observation has been folded in yet; after that, observed copies
// own the estimate.
func (p *Profiler) WarmStartTransfer(bytesPerSec float64) {
	if p.xferRate == 0 && bytesPerSec > 0 {
		p.xferRate = bytesPerSec
	}
}

// PredictTransfer estimates the time to move a KV payload across the
// interconnect at the observed rate. Zero until the first observation or
// warm start — with neither, the Profiler has nothing to go on, which
// matches the paper's compute-only Algorithm 1.
func (p *Profiler) PredictTransfer(bytes float64) sim.Duration {
	if bytes <= 0 || p.xferRate <= 0 {
		return 0
	}
	return sim.Seconds(bytes / p.xferRate)
}

// TransferRate returns the current observed link throughput estimate in
// bytes/second (0 before any observation).
func (p *Profiler) TransferRate() float64 { return p.xferRate }

// PrefillCoefficients returns (c_p, a_p, b_p).
func (p *Profiler) PrefillCoefficients() (c, a, b float64) {
	return p.prefillCoef[0], p.prefillCoef[1], p.prefillCoef[2]
}

// DecodeCoefficients returns (c_d, a_d).
func (p *Profiler) DecodeCoefficients() (c, a float64) {
	return p.decodeCoef[0], p.decodeCoef[1]
}

// AssistBudget computes the paper's dispatch budget: the largest prompt
// whose SBD-stream prefill keeps a reference decode iteration within the
// TPOT SLO. The paper determines this "through simulation and profiling
// before runtime" (§3.2.2); we binary-search the decode instance's cost
// model at the reference batch shape.
func AssistBudget(cm *perf.CostModel, refBatch perf.Batch, tpotSLO sim.Duration) int {
	if refBatch.DecodeReqs == 0 || cm.IterTime(refBatch) > tpotSLO {
		// Either no reference decode load (everything fits) or the SLO is
		// already blown without assists; grant the full context either way
		// — the KV slot check still gates admission at runtime.
		return cm.Cfg.MaxContext
	}
	lo, hi := 0, cm.Cfg.MaxContext
	for lo < hi {
		mid := (lo + hi + 1) / 2
		td := cm.SBDDecodeTime(refBatch, perf.PrefillOnly(mid))
		if td <= tpotSLO {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
