// Package kvcache implements a PagedAttention-style KV-cache block manager
// (paper §2.1): the KV space of a serving instance is divided into
// fixed-size blocks of tokens, allocated on demand per request as contexts
// grow, with optional swap space in host memory for preempted requests and
// backup copies used by WindServe's rescheduling (paper §3.3).
//
// Because allocation is paged there is no fragmentation to model; the
// manager tracks block counts and per-request block tables, which is all
// the schedulers observe.
package kvcache

import (
	"errors"
	"fmt"
)

// DefaultBlockSize is the tokens-per-block used by vLLM and DistServe.
const DefaultBlockSize = 16

// ErrNoSpace is returned when a GPU allocation cannot be satisfied.
var ErrNoSpace = errors.New("kvcache: insufficient free GPU blocks")

// ErrNoCPUSpace is returned when swap space is exhausted.
var ErrNoCPUSpace = errors.New("kvcache: insufficient free CPU swap blocks")

// ErrUnknownRequest is returned for operations on requests with no
// allocation.
var ErrUnknownRequest = errors.New("kvcache: unknown request")

// RequestID identifies a request's allocation.
type RequestID uint64

// Location says where a request's KV blocks currently live.
type Location int

const (
	// OnGPU means all the request's blocks are in device memory.
	OnGPU Location = iota
	// Swapped means the blocks were swapped out to host memory.
	Swapped
)

type table struct {
	tokens   int
	blocks   int // private blocks only; shared prefix blocks are counted in shared
	loc      Location
	isBackup bool
	// group/shared link the request to the prefix pool: the first
	// shared*blockSize tokens live in refcounted blocks of the given
	// prefix group (see prefix.go). Zero for plain allocations.
	group  uint64
	shared int
}

// privateTokens is the token span held in the request's own blocks, i.e.
// what actually moves on a swap. The shared prefix stays resident.
func (t *table) privateTokens(blockSize int) int {
	return t.tokens - t.shared*blockSize
}

// Stats aggregates allocator activity for the experiment harness
// (Fig. 1a's swap counts come from here).
type Stats struct {
	// PeakBlocks is the maximum concurrently-used GPU block count.
	PeakBlocks int
	// SwapOutEvents / SwapInEvents count whole-request swaps.
	SwapOutEvents, SwapInEvents uint64
	// SwapOutTokens / SwapInTokens count tokens moved across the host link.
	SwapOutTokens, SwapInTokens uint64
	// FailedAllocs counts admission-path allocation attempts (Allocate,
	// Grow, AllocatePrefixed) rejected with ErrNoSpace. Swap-in retries
	// are deliberately excluded: they are transient back-pressure, not
	// admission failures, and are counted in SwapInFailures instead.
	FailedAllocs uint64
	// SwapInFailures counts SwapIn attempts deferred by transient GPU
	// pressure. The engine retries these every kick, so one stuck
	// request can contribute many; shedding heuristics must not read
	// them as admission failures.
	SwapInFailures uint64

	// Prefix-cache counters; all zero unless EnablePrefixCache was
	// called (see prefix.go).

	// PrefixLookups counts AllocatePrefixed calls that consulted the pool.
	PrefixLookups uint64
	// PrefixHitTokens / PrefixMissTokens partition every looked-up
	// prompt's tokens into prefix-cache hits and misses.
	PrefixHitTokens, PrefixMissTokens uint64
	// PrefixEvictions counts unreferenced prefix blocks dropped outright;
	// PrefixDemotions counts those demoted to the host tier instead.
	PrefixEvictions, PrefixDemotions uint64
	// PrefixRestores / PrefixRestoredTokens count host-tier prefix blocks
	// promoted back to GPU on a hit (the timed PCIe restore path).
	PrefixRestores, PrefixRestoredTokens uint64
	// BackupReclaims counts backup copies dropped to make room, which
	// happens before any prefix block is evicted.
	BackupReclaims uint64
}

// PrefixHitRatio is the token-weighted prefix-cache hit ratio across all
// lookups, 0 when the cache saw no traffic.
func (s Stats) PrefixHitRatio() float64 {
	tot := s.PrefixHitTokens + s.PrefixMissTokens
	if tot == 0 {
		return 0
	}
	return float64(s.PrefixHitTokens) / float64(tot)
}

// Accumulate folds another manager's counters into s for cross-instance
// aggregation: counters add, PeakBlocks takes the max (peaks on distinct
// GPUs are concurrent, not sequential).
func (s *Stats) Accumulate(o Stats) {
	s.SwapOutEvents += o.SwapOutEvents
	s.SwapInEvents += o.SwapInEvents
	s.SwapOutTokens += o.SwapOutTokens
	s.SwapInTokens += o.SwapInTokens
	s.FailedAllocs += o.FailedAllocs
	s.SwapInFailures += o.SwapInFailures
	s.PrefixLookups += o.PrefixLookups
	s.PrefixHitTokens += o.PrefixHitTokens
	s.PrefixMissTokens += o.PrefixMissTokens
	s.PrefixEvictions += o.PrefixEvictions
	s.PrefixDemotions += o.PrefixDemotions
	s.PrefixRestores += o.PrefixRestores
	s.PrefixRestoredTokens += o.PrefixRestoredTokens
	s.BackupReclaims += o.BackupReclaims
	if o.PeakBlocks > s.PeakBlocks {
		s.PeakBlocks = o.PeakBlocks
	}
}

// Manager is a block allocator for one serving instance. It is not
// goroutine-safe; the event-driven simulation is single-threaded.
type Manager struct {
	blockSize int
	gpuBlocks int
	gpuFree   int
	cpuBlocks int
	cpuFree   int
	tables    map[RequestID]*table
	stats     Stats

	// Prefix-cache state (see prefix.go); nil maps when disabled.
	prefixMode bool
	tiered     bool
	prefix     map[pkey]*pblock
	useSeq     uint64
}

// New creates a manager with capacity for gpuTokens of KV cache on device
// and cpuTokens of swap space, in blocks of blockSize tokens.
func New(gpuTokens, cpuTokens, blockSize int) (*Manager, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("kvcache: block size %d must be positive", blockSize)
	}
	if gpuTokens < 0 || cpuTokens < 0 {
		return nil, fmt.Errorf("kvcache: negative capacity")
	}
	g, c := gpuTokens/blockSize, cpuTokens/blockSize
	return &Manager{
		blockSize: blockSize,
		gpuBlocks: g, gpuFree: g,
		cpuBlocks: c, cpuFree: c,
		tables: make(map[RequestID]*table),
	}, nil
}

// MustNew is New that panics on error.
func MustNew(gpuTokens, cpuTokens, blockSize int) *Manager {
	m, err := New(gpuTokens, cpuTokens, blockSize)
	if err != nil {
		panic(err)
	}
	return m
}

// BlockSize returns tokens per block.
func (m *Manager) BlockSize() int { return m.blockSize }

// BlocksFor returns the number of blocks needed to hold tokens.
func (m *Manager) BlocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + m.blockSize - 1) / m.blockSize
}

// TotalBlocks returns total GPU block capacity.
func (m *Manager) TotalBlocks() int { return m.gpuBlocks }

// FreeBlocks returns currently free GPU blocks.
func (m *Manager) FreeBlocks() int { return m.gpuFree }

// UsedBlocks returns currently allocated GPU blocks.
func (m *Manager) UsedBlocks() int { return m.gpuBlocks - m.gpuFree }

// FreeTokens returns the token capacity of the free GPU blocks.
func (m *Manager) FreeTokens() int { return m.gpuFree * m.blockSize }

// Utilization returns the used fraction of GPU blocks (0 when empty, and
// 0 for a zero-capacity manager).
func (m *Manager) Utilization() float64 {
	if m.gpuBlocks == 0 {
		return 0
	}
	return float64(m.UsedBlocks()) / float64(m.gpuBlocks)
}

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Has reports whether the request has an allocation (on GPU or swapped).
func (m *Manager) Has(id RequestID) bool {
	_, ok := m.tables[id]
	return ok
}

// LocationOf returns where the request's blocks live.
func (m *Manager) LocationOf(id RequestID) (Location, error) {
	t, ok := m.tables[id]
	if !ok {
		return OnGPU, ErrUnknownRequest
	}
	return t.loc, nil
}

// Tokens returns the number of tokens allocated for the request.
func (m *Manager) Tokens(id RequestID) int {
	if t, ok := m.tables[id]; ok {
		return t.tokens
	}
	return 0
}

// CanAllocate reports whether tokens more could be allocated on GPU now.
func (m *Manager) CanAllocate(tokens int) bool {
	return m.BlocksFor(tokens) <= m.gpuFree
}

// Allocate reserves GPU blocks for a new request with the given context
// length. Allocating an existing id is an error. In prefix mode a
// shortfall first reclaims backups and then idle prefix blocks.
func (m *Manager) Allocate(id RequestID, tokens int) error {
	return m.allocate(id, tokens, true)
}

func errAlreadyAllocated(id RequestID) error {
	return fmt.Errorf("kvcache: request %d already allocated", id)
}

func (m *Manager) allocate(id RequestID, tokens int, reclaim bool) error {
	if _, ok := m.tables[id]; ok {
		return errAlreadyAllocated(id)
	}
	need := m.BlocksFor(tokens)
	if need > m.gpuFree && (!reclaim || !m.ensureFree(need)) {
		m.stats.FailedAllocs++
		return ErrNoSpace
	}
	m.gpuFree -= need
	m.tables[id] = &table{tokens: tokens, blocks: need, loc: OnGPU}
	m.touchPeak()
	return nil
}

// Grow extends a request's allocation to newTokens total (e.g. one more
// token per decode step). Shrinking is not supported; growing a swapped
// request is an error.
func (m *Manager) Grow(id RequestID, newTokens int) error {
	t, ok := m.tables[id]
	if !ok {
		return ErrUnknownRequest
	}
	if t.loc != OnGPU {
		return fmt.Errorf("kvcache: request %d is swapped out", id)
	}
	if newTokens < t.tokens {
		return fmt.Errorf("kvcache: cannot shrink request %d from %d to %d tokens", id, t.tokens, newTokens)
	}
	need := m.BlocksFor(newTokens) - t.shared - t.blocks
	if need > m.gpuFree && !m.ensureFree(need) {
		m.stats.FailedAllocs++
		return ErrNoSpace
	}
	m.gpuFree -= need
	t.blocks += need
	t.tokens = newTokens
	m.touchPeak()
	return nil
}

// Release frees all private blocks of a request (on GPU or in swap) and
// drops its references on shared prefix blocks. The shared blocks
// themselves stay cached until evicted.
func (m *Manager) Release(id RequestID) error {
	t, ok := m.tables[id]
	if !ok {
		return ErrUnknownRequest
	}
	if t.loc == OnGPU {
		m.gpuFree += t.blocks
	} else {
		m.cpuFree += t.blocks
	}
	m.derefShared(t)
	delete(m.tables, id)
	return nil
}

// SwapOut moves a request's blocks to host memory, freeing GPU blocks.
// Returns the number of tokens moved (for transfer timing).
func (m *Manager) SwapOut(id RequestID) (tokens int, err error) {
	t, ok := m.tables[id]
	if !ok {
		return 0, ErrUnknownRequest
	}
	if t.loc == Swapped {
		return 0, fmt.Errorf("kvcache: request %d already swapped", id)
	}
	if t.blocks > m.cpuFree && !m.ensureHostFree(t.blocks) {
		return 0, ErrNoCPUSpace
	}
	m.gpuFree += t.blocks
	m.cpuFree -= t.blocks
	t.loc = Swapped
	moved := t.privateTokens(m.blockSize)
	m.stats.SwapOutEvents++
	m.stats.SwapOutTokens += uint64(moved)
	return moved, nil
}

// SwapIn moves a swapped request's blocks back to GPU memory.
// Returns the number of tokens moved.
func (m *Manager) SwapIn(id RequestID) (tokens int, err error) {
	t, ok := m.tables[id]
	if !ok {
		return 0, ErrUnknownRequest
	}
	if t.loc == OnGPU {
		return 0, fmt.Errorf("kvcache: request %d is not swapped", id)
	}
	if t.blocks > m.gpuFree && !m.ensureFree(t.blocks) {
		m.stats.SwapInFailures++
		return 0, ErrNoSpace
	}
	m.gpuFree -= t.blocks
	m.cpuFree += t.blocks
	t.loc = OnGPU
	moved := t.privateTokens(m.blockSize)
	m.stats.SwapInEvents++
	m.stats.SwapInTokens += uint64(moved)
	m.touchPeak()
	return moved, nil
}

// AllocateBackup reserves GPU blocks holding a *copy* of another
// instance's KV cache for a request (WindServe's migration-cost
// optimization, §3.3). Backups are identical to normal allocations except
// they are flagged, so the engine can reclaim them first under pressure.
func (m *Manager) AllocateBackup(id RequestID, tokens int) error {
	// A backup is an opportunistic use of spare memory, so it never
	// reclaims other backups or cached prefix blocks to fit.
	if err := m.allocate(id, tokens, false); err != nil {
		return err
	}
	m.tables[id].isBackup = true
	return nil
}

// IsBackup reports whether the request's allocation is a backup copy.
func (m *Manager) IsBackup(id RequestID) bool {
	t, ok := m.tables[id]
	return ok && t.isBackup
}

// PromoteBackup converts a backup into a normal allocation (when the
// backed-up request is actually rescheduled here).
func (m *Manager) PromoteBackup(id RequestID) error {
	t, ok := m.tables[id]
	if !ok {
		return ErrUnknownRequest
	}
	t.isBackup = false
	return nil
}

// Backups returns the ids of all backup allocations.
func (m *Manager) Backups() []RequestID {
	var ids []RequestID
	for id, t := range m.tables {
		if t.isBackup {
			ids = append(ids, id)
		}
	}
	return ids
}

// BackupBlocks returns the number of GPU blocks held by backups.
func (m *Manager) BackupBlocks() int {
	n := 0
	for _, t := range m.tables {
		if t.isBackup && t.loc == OnGPU {
			n += t.blocks
		}
	}
	return n
}

// Reset drops every allocation — GPU, swap, backups, and the shared
// prefix pool on both tiers — restoring full free capacity, as when an
// instance crashes and its memory contents are lost. Statistics
// accumulate across resets so a run's totals survive; prefix mode stays
// enabled and the pool refills from post-crash traffic.
func (m *Manager) Reset() {
	m.gpuFree = m.gpuBlocks
	m.cpuFree = m.cpuBlocks
	m.tables = make(map[RequestID]*table)
	if m.prefixMode {
		m.prefix = make(map[pkey]*pblock)
	}
}

func (m *Manager) touchPeak() {
	if used := m.UsedBlocks(); used > m.stats.PeakBlocks {
		m.stats.PeakBlocks = used
	}
}

func (m *Manager) String() string {
	return fmt.Sprintf("kvcache: %d/%d GPU blocks used (%.0f%%), %d/%d CPU blocks used, %d requests",
		m.UsedBlocks(), m.gpuBlocks, 100*m.Utilization(), m.cpuBlocks-m.cpuFree, m.cpuBlocks, len(m.tables))
}
