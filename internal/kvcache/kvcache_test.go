package kvcache

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustMgr(t *testing.T, gpuTokens, cpuTokens int) *Manager {
	t.Helper()
	m, err := New(gpuTokens, cpuTokens, DefaultBlockSize)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(100, 100, 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(-1, 0, 16); err == nil {
		t.Error("negative capacity accepted")
	}
	m := mustMgr(t, 160, 320)
	if m.TotalBlocks() != 10 {
		t.Errorf("TotalBlocks = %d, want 10", m.TotalBlocks())
	}
	if m.BlockSize() != 16 {
		t.Errorf("BlockSize = %d", m.BlockSize())
	}
}

func TestBlocksFor(t *testing.T) {
	m := mustMgr(t, 160, 0)
	cases := []struct{ tokens, want int }{
		{0, 0}, {-5, 0}, {1, 1}, {16, 1}, {17, 2}, {32, 2}, {33, 3},
	}
	for _, c := range cases {
		if got := m.BlocksFor(c.tokens); got != c.want {
			t.Errorf("BlocksFor(%d) = %d, want %d", c.tokens, got, c.want)
		}
	}
}

func TestAllocateReleaseCycle(t *testing.T) {
	m := mustMgr(t, 160, 0) // 10 blocks
	if err := m.Allocate(1, 100); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 7 || m.FreeBlocks() != 3 {
		t.Errorf("used/free = %d/%d, want 7/3", m.UsedBlocks(), m.FreeBlocks())
	}
	if !m.Has(1) || m.Tokens(1) != 100 {
		t.Error("allocation not recorded")
	}
	if err := m.Allocate(1, 10); err == nil {
		t.Error("double allocate accepted")
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 0 || m.Has(1) {
		t.Error("release did not free")
	}
	if err := m.Release(1); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("double release = %v", err)
	}
}

func TestAllocateNoSpace(t *testing.T) {
	m := mustMgr(t, 160, 0)
	if err := m.Allocate(1, 161); !errors.Is(err, ErrNoSpace) {
		t.Errorf("oversized alloc = %v, want ErrNoSpace", err)
	}
	if m.Stats().FailedAllocs != 1 {
		t.Error("failed alloc not counted")
	}
	if !m.CanAllocate(160) || m.CanAllocate(161) {
		t.Error("CanAllocate mismatch")
	}
}

func TestGrow(t *testing.T) {
	m := mustMgr(t, 160, 0)
	if err := m.Allocate(1, 16); err != nil {
		t.Fatal(err)
	}
	// Growing within the same block consumes nothing... only new blocks.
	if err := m.Grow(1, 17); err != nil {
		t.Fatal(err)
	}
	if m.UsedBlocks() != 2 {
		t.Errorf("used = %d, want 2", m.UsedBlocks())
	}
	if err := m.Grow(1, 10); err == nil {
		t.Error("shrink accepted")
	}
	if err := m.Grow(2, 20); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("grow unknown = %v", err)
	}
	if err := m.Grow(1, 1000); !errors.Is(err, ErrNoSpace) {
		t.Errorf("grow beyond capacity = %v", err)
	}
	// Failed grow must not corrupt state.
	if m.Tokens(1) != 17 || m.UsedBlocks() != 2 {
		t.Error("failed grow mutated state")
	}
}

func TestSwapOutIn(t *testing.T) {
	m := mustMgr(t, 160, 160)
	if err := m.Allocate(1, 64); err != nil {
		t.Fatal(err)
	}
	tokens, err := m.SwapOut(1)
	if err != nil || tokens != 64 {
		t.Fatalf("SwapOut = %d, %v", tokens, err)
	}
	if m.UsedBlocks() != 0 {
		t.Error("swap out should free GPU blocks")
	}
	if loc, _ := m.LocationOf(1); loc != Swapped {
		t.Error("location should be Swapped")
	}
	if _, err := m.SwapOut(1); err == nil {
		t.Error("double swap out accepted")
	}
	if err := m.Grow(1, 65); err == nil {
		t.Error("grow while swapped accepted")
	}
	tokens, err = m.SwapIn(1)
	if err != nil || tokens != 64 {
		t.Fatalf("SwapIn = %d, %v", tokens, err)
	}
	if loc, _ := m.LocationOf(1); loc != OnGPU {
		t.Error("location should be OnGPU after swap in")
	}
	if _, err := m.SwapIn(1); err == nil {
		t.Error("swap in of resident request accepted")
	}
	st := m.Stats()
	if st.SwapOutEvents != 1 || st.SwapInEvents != 1 || st.SwapOutTokens != 64 || st.SwapInTokens != 64 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSwapOutNoCPUSpace(t *testing.T) {
	m := mustMgr(t, 160, 16) // only 1 CPU block
	if err := m.Allocate(1, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapOut(1); !errors.Is(err, ErrNoCPUSpace) {
		t.Errorf("SwapOut = %v, want ErrNoCPUSpace", err)
	}
}

func TestSwapInNoGPUSpace(t *testing.T) {
	m := mustMgr(t, 160, 160)
	if err := m.Allocate(1, 96); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapOut(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(2, 160); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapIn(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("SwapIn with full GPU = %v, want ErrNoSpace", err)
	}
}

func TestReleaseSwappedFreesCPU(t *testing.T) {
	m := mustMgr(t, 160, 160)
	if err := m.Allocate(1, 160); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapOut(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	// All CPU space should be free again: a full swap-out must succeed.
	if err := m.Allocate(2, 160); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapOut(2); err != nil {
		t.Errorf("CPU space not reclaimed: %v", err)
	}
}

func TestBackups(t *testing.T) {
	m := mustMgr(t, 320, 0)
	if err := m.AllocateBackup(7, 100); err != nil {
		t.Fatal(err)
	}
	if !m.IsBackup(7) {
		t.Error("IsBackup(7) = false")
	}
	if m.IsBackup(8) {
		t.Error("IsBackup of unknown request = true")
	}
	if got := m.BackupBlocks(); got != 7 {
		t.Errorf("BackupBlocks = %d, want 7", got)
	}
	ids := m.Backups()
	if len(ids) != 1 || ids[0] != 7 {
		t.Errorf("Backups = %v", ids)
	}
	if err := m.PromoteBackup(7); err != nil {
		t.Fatal(err)
	}
	if m.IsBackup(7) || m.BackupBlocks() != 0 {
		t.Error("promote did not clear backup flag")
	}
	if err := m.PromoteBackup(99); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("promote unknown = %v", err)
	}
}

func TestUtilizationAndPeak(t *testing.T) {
	m := mustMgr(t, 160, 0)
	if m.Utilization() != 0 {
		t.Error("empty utilization should be 0")
	}
	m.Allocate(1, 80)
	if u := m.Utilization(); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
	m.Allocate(2, 80)
	m.Release(1)
	m.Release(2)
	if m.Stats().PeakBlocks != 10 {
		t.Errorf("PeakBlocks = %d, want 10", m.Stats().PeakBlocks)
	}
	zero := MustNew(0, 0, 16)
	if zero.Utilization() != 0 {
		t.Error("zero-capacity utilization should be 0")
	}
}

func TestLocationOfUnknown(t *testing.T) {
	m := mustMgr(t, 160, 0)
	if _, err := m.LocationOf(42); !errors.Is(err, ErrUnknownRequest) {
		t.Errorf("LocationOf unknown = %v", err)
	}
	if m.Tokens(42) != 0 {
		t.Error("Tokens of unknown should be 0")
	}
}

func TestStringer(t *testing.T) {
	m := mustMgr(t, 160, 160)
	m.Allocate(1, 32)
	if s := m.String(); !strings.Contains(s, "2/10") {
		t.Errorf("String = %q", s)
	}
}

// Property: block accounting is conserved across random operation
// sequences — gpuFree + Σ resident blocks == capacity, and likewise for
// CPU swap space.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := MustNew(64*16, 32*16, 16)
		live := map[RequestID]bool{}
		next := RequestID(1)
		for op := 0; op < 300; op++ {
			switch rng.Intn(5) {
			case 0: // allocate
				id := next
				next++
				if m.Allocate(id, rng.Intn(200)+1) == nil {
					live[id] = true
				}
			case 1: // grow
				for id := range live {
					if loc, _ := m.LocationOf(id); loc == OnGPU {
						m.Grow(id, m.Tokens(id)+rng.Intn(40)+1)
					}
					break
				}
			case 2: // release
				for id := range live {
					m.Release(id)
					delete(live, id)
					break
				}
			case 3: // swap out
				for id := range live {
					if loc, _ := m.LocationOf(id); loc == OnGPU {
						m.SwapOut(id)
					}
					break
				}
			case 4: // swap in
				for id := range live {
					if loc, _ := m.LocationOf(id); loc == Swapped {
						m.SwapIn(id)
					}
					break
				}
			}
			// Invariants.
			gpuHeld, cpuHeld := 0, 0
			for id := range live {
				loc, err := m.LocationOf(id)
				if err != nil {
					return false
				}
				blocks := m.BlocksFor(m.Tokens(id))
				if loc == OnGPU {
					gpuHeld += blocks
				} else {
					cpuHeld += blocks
				}
			}
			if m.UsedBlocks() != gpuHeld {
				return false
			}
			if m.FreeBlocks()+gpuHeld != 64 {
				return false
			}
			if m.FreeBlocks() < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
