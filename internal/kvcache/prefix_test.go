package kvcache

import (
	"errors"
	"testing"
)

// TestSwapInFailureCounter is the satellite regression: a swap-in
// deferred by transient GPU pressure must count as SwapInFailures, not
// FailedAllocs — shedding heuristics read the latter as admission
// failures.
func TestSwapInFailureCounter(t *testing.T) {
	m := mustMgr(t, 160, 320) // 10 GPU blocks
	if err := m.Allocate(1, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapOut(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(2, 160); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SwapIn(1); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("SwapIn under pressure = %v, want ErrNoSpace", err)
	}
	st := m.Stats()
	if st.SwapInFailures != 1 {
		t.Errorf("SwapInFailures = %d, want 1", st.SwapInFailures)
	}
	if st.FailedAllocs != 0 {
		t.Errorf("FailedAllocs = %d, want 0: swap-in retries are not admission failures", st.FailedAllocs)
	}
	// A true admission failure still lands in FailedAllocs.
	if err := m.Allocate(3, 32); !errors.Is(err, ErrNoSpace) {
		t.Fatal(err)
	}
	if st := m.Stats(); st.FailedAllocs != 1 || st.SwapInFailures != 1 {
		t.Errorf("stats = %+v, want FailedAllocs 1, SwapInFailures 1", st)
	}
}

func TestPrefixSharing(t *testing.T) {
	m := mustMgr(t, 320, 0) // 20 blocks
	m.EnablePrefixCache(false)

	acq, err := m.AllocatePrefixed(1, 100, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if acq.HitTokens != 0 || acq.MissTokens != 100 {
		t.Fatalf("first acquire = %+v, want all-miss", acq)
	}
	// 4 shared + 3 private blocks for the 100-token context.
	if m.UsedBlocks() != 7 {
		t.Fatalf("used = %d, want 7", m.UsedBlocks())
	}

	acq, err = m.AllocatePrefixed(2, 100, 7, 64)
	if err != nil {
		t.Fatal(err)
	}
	if acq.HitTokens != 64 || acq.MissTokens != 36 || acq.RestoredTokens != 0 {
		t.Fatalf("second acquire = %+v, want 64-token hit", acq)
	}
	// Only the 3 private blocks are new.
	if m.UsedBlocks() != 10 {
		t.Fatalf("used = %d, want 10", m.UsedBlocks())
	}
	if got := m.PeekPrefix(7, 64); got != 64 {
		t.Fatalf("PeekPrefix = %d, want 64", got)
	}
	if got := m.PeekPrefix(8, 64); got != 0 {
		t.Fatalf("PeekPrefix(other group) = %d, want 0", got)
	}
	st := m.Stats()
	if st.PrefixLookups != 2 || st.PrefixHitTokens != 64 || st.PrefixMissTokens != 136 {
		t.Fatalf("stats = %+v", st)
	}
	if r := st.PrefixHitRatio(); r <= 0.31 || r >= 0.33 { // 64/200
		t.Fatalf("hit ratio = %v", r)
	}
}

// TestPrefixReleaseKeepsSharedBlocks: releasing one sharer must not free
// blocks another request still references, and releasing the last sharer
// leaves them cached for future hits.
func TestPrefixReleaseKeepsSharedBlocks(t *testing.T) {
	m := mustMgr(t, 320, 0)
	m.EnablePrefixCache(false)
	for id := RequestID(1); id <= 2; id++ {
		if _, err := m.AllocatePrefixed(id, 100, 7, 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	// Sharer 2 still holds the chain: 4 shared + its 3 private blocks.
	if m.UsedBlocks() != 7 {
		t.Fatalf("used after one release = %d, want 7", m.UsedBlocks())
	}
	if got := m.PeekPrefix(7, 64); got != 64 {
		t.Fatalf("shared blocks freed with a sharer in flight: peek = %d", got)
	}
	if err := m.Grow(2, 120); err != nil { // sharer 2 keeps decoding fine
		t.Fatal(err)
	}
	if err := m.Release(2); err != nil {
		t.Fatal(err)
	}
	// Last sharer gone: chain stays cached, only private blocks freed.
	if gpu, host := m.PrefixBlocks(); gpu != 4 || host != 0 {
		t.Fatalf("cached blocks = %d/%d, want 4/0", gpu, host)
	}
	if m.UsedBlocks() != 4 {
		t.Fatalf("used after both release = %d, want 4", m.UsedBlocks())
	}
}

// TestPrefixEvictionRespectsRefs: eviction must never reclaim a block
// with in-flight sharers, even under hard GPU pressure; once the sharer
// releases, LRU eviction trims the chain from the tail.
func TestPrefixEvictionRespectsRefs(t *testing.T) {
	m := mustMgr(t, 128, 0) // 8 blocks
	m.EnablePrefixCache(false)
	if _, err := m.AllocatePrefixed(1, 65, 9, 64); err != nil { // 4 shared + 1 private
		t.Fatal(err)
	}
	if err := m.Allocate(2, 48); err != nil { // 3 blocks, GPU now full
		t.Fatal(err)
	}
	if err := m.Allocate(3, 16); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("alloc over referenced blocks = %v, want ErrNoSpace", err)
	}
	if st := m.Stats(); st.PrefixEvictions != 0 {
		t.Fatalf("evicted %d referenced blocks", st.PrefixEvictions)
	}
	if got := m.PeekPrefix(9, 64); got != 64 {
		t.Fatalf("referenced chain damaged: peek = %d", got)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	// refs==0 now: the same allocation succeeds by evicting LRU blocks,
	// and the chain is trimmed strictly from the tail.
	if err := m.Allocate(3, 32); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.PrefixEvictions != 1 {
		t.Fatalf("PrefixEvictions = %d, want 1", st.PrefixEvictions)
	}
	if got := m.PeekPrefix(9, 64); got != 48 {
		t.Fatalf("peek after tail eviction = %d, want 48", got)
	}
}

// TestPrefixResetDropsPoolKeepsStats: a crash wipes the pool on both
// tiers but cumulative statistics survive, as for every other counter.
func TestPrefixResetDropsPoolKeepsStats(t *testing.T) {
	m := mustMgr(t, 320, 320)
	m.EnablePrefixCache(true)
	if _, err := m.AllocatePrefixed(1, 100, 7, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocatePrefixed(2, 100, 7, 64); err != nil {
		t.Fatal(err)
	}
	before := m.Stats()
	if before.PrefixHitTokens == 0 {
		t.Fatal("setup produced no hits")
	}
	m.Reset()
	if gpu, host := m.PrefixBlocks(); gpu != 0 || host != 0 {
		t.Fatalf("pool survived reset: %d/%d blocks", gpu, host)
	}
	if m.PeekPrefix(7, 64) != 0 {
		t.Fatal("peek found blocks after reset")
	}
	if m.FreeBlocks() != m.TotalBlocks() {
		t.Fatalf("free = %d, want %d", m.FreeBlocks(), m.TotalBlocks())
	}
	if after := m.Stats(); after != before {
		t.Fatalf("stats changed across reset: %+v != %+v", after, before)
	}
	if !m.PrefixEnabled() {
		t.Fatal("prefix mode lost on reset")
	}
	// The pool refills from post-reset traffic.
	if _, err := m.AllocatePrefixed(3, 100, 7, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AllocatePrefixed(4, 100, 7, 64); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.PrefixHitTokens != before.PrefixHitTokens+64 {
		t.Fatalf("no hits after reset: %+v", st)
	}
}

// TestTieredDemoteRestore: under pressure idle blocks demote to the host
// tier instead of dropping, and a later hit promotes them back reporting
// the restored span for PCIe timing.
func TestTieredDemoteRestore(t *testing.T) {
	m := mustMgr(t, 128, 128) // 8 GPU + 8 host blocks
	m.EnablePrefixCache(true)
	if _, err := m.AllocatePrefixed(1, 65, 9, 64); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(2, 128); err != nil { // needs all 8 blocks
		t.Fatal(err)
	}
	st := m.Stats()
	if st.PrefixDemotions != 4 || st.PrefixEvictions != 0 {
		t.Fatalf("stats = %+v, want 4 demotions, 0 evictions", st)
	}
	if gpu, host := m.PrefixBlocks(); gpu != 0 || host != 4 {
		t.Fatalf("tiers = %d/%d, want 0/4", gpu, host)
	}
	if got := m.PeekPrefix(9, 64); got != 64 { // host-tier blocks still count
		t.Fatalf("peek = %d, want 64", got)
	}
	if err := m.Release(2); err != nil {
		t.Fatal(err)
	}
	acq, err := m.AllocatePrefixed(3, 65, 9, 64)
	if err != nil {
		t.Fatal(err)
	}
	if acq.HitTokens != 64 || acq.RestoredTokens != 64 {
		t.Fatalf("acquire = %+v, want 64 hit / 64 restored", acq)
	}
	st = m.Stats()
	if st.PrefixRestores != 4 || st.PrefixRestoredTokens != 64 {
		t.Fatalf("stats = %+v, want 4 restores / 64 tokens", st)
	}
	if gpu, host := m.PrefixBlocks(); gpu != 4 || host != 0 {
		t.Fatalf("tiers after restore = %d/%d, want 4/0", gpu, host)
	}
	if free := m.cpuFree; free != m.cpuBlocks {
		t.Fatalf("host tier leaked: %d/%d free", free, m.cpuBlocks)
	}
}

// TestBackupsReclaimedFirst: GPU pressure drops backup copies before any
// cached prefix block is touched.
func TestBackupsReclaimedFirst(t *testing.T) {
	m := mustMgr(t, 128, 0) // 8 blocks
	m.EnablePrefixCache(false)
	if err := m.AllocateBackup(9, 32); err != nil { // 2 blocks
		t.Fatal(err)
	}
	if _, err := m.AllocatePrefixed(1, 33, 5, 32); err != nil { // 2 shared + 1 private
		t.Fatal(err)
	}
	if err := m.Release(1); err != nil {
		t.Fatal(err)
	}
	if err := m.Allocate(2, 96); err != nil { // need 6, free 4
		t.Fatal(err)
	}
	st := m.Stats()
	if st.BackupReclaims != 1 || st.PrefixEvictions != 0 {
		t.Fatalf("stats = %+v, want 1 backup reclaim, 0 prefix evictions", st)
	}
	if m.Has(9) {
		t.Fatal("backup survived reclaim")
	}
	if got := m.PeekPrefix(5, 32); got != 32 {
		t.Fatalf("prefix evicted before backups: peek = %d", got)
	}
	// A backup itself never reclaims cached state to fit.
	if err := m.AllocateBackup(10, 96); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("backup alloc reclaimed cache: %v", err)
	}
	if got := m.PeekPrefix(5, 32); got != 32 {
		t.Fatalf("backup alloc damaged cache: peek = %d", got)
	}
}
