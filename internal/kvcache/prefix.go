// Cross-request prefix caching with a tiered GPU→host backing store.
//
// Real systems (vLLM, SGLang, BLIS) key KV blocks by a rolling content
// hash of the tokens they hold, so any two requests whose prompts share a
// token-for-token prefix share the underlying blocks. The simulator does
// not materialize token values — requests carry lengths — so the hash
// chain is modeled directly by its structure: a block's identity is
// (PrefixGroup, block index). Two requests in the same group with
// PrefixTokens ≥ k·blockSize share their first k blocks, exactly the
// sharing pattern a content hash would discover, and the chain property
// (block i's hash covers all earlier tokens) maps to the rule that a hit
// is the longest fully-cached *run* of blocks starting at index 0.
//
// Shared blocks are refcounted: every resident request that acquired a
// block holds a reference, and only refs==0 blocks are eviction
// candidates. Eviction order under GPU pressure is
//
//	backup copies → idle prefix blocks (LRU) → the engine's own
//	preemption machinery (swap-out / recompute)
//
// so redundant state always yields before useful state, and cached
// prefixes yield before any running request is disturbed. Recency stamps
// are issued tail-first within a chain, which makes LRU eviction trim
// chains strictly from the tail — a cached chain is never holed in the
// middle.
//
// In tiered mode an evicted-but-warm block is demoted to host memory
// instead of dropped (an asynchronous write-back off the critical path,
// so demotion is untimed). A later hit on a demoted block promotes it
// back to GPU and reports the restored token span, which the engine
// charges as a PCIe transfer over its host xfer.Link — the restore, which
// IS on the critical path, is timed.
package kvcache

import "sort"

// pkey identifies one shared prefix block: the group stands in for the
// content-hash chain, idx for the block's position in it.
type pkey struct {
	group uint64
	idx   int
}

// pblock is one refcounted shared block.
type pblock struct {
	refs    int
	onGPU   bool   // false: demoted to the host tier
	lastUse uint64 // monotone recency stamp; unique per block
}

// PrefixAcquire reports what AllocatePrefixed found in the cache.
type PrefixAcquire struct {
	// HitTokens of the prompt were already cached (GPU or host tier)
	// and need no prefill compute.
	HitTokens int
	// MissTokens is the remainder of the prompt that must be computed.
	MissTokens int
	// RestoredTokens of the hit were on the host tier and were promoted
	// back to GPU; the caller charges their PCIe transfer time.
	RestoredTokens int
}

// EnablePrefixCache turns on cross-request prefix sharing, optionally
// with the tiered host backing store. Must be called before traffic;
// managers without it behave exactly as before (no reclaim, no sharing).
func (m *Manager) EnablePrefixCache(tiered bool) {
	m.prefixMode = true
	m.tiered = tiered
	m.prefix = make(map[pkey]*pblock)
}

// PrefixEnabled reports whether EnablePrefixCache was called.
func (m *Manager) PrefixEnabled() bool { return m.prefixMode }

// PrefixBlocks returns the cached shared blocks on (GPU, host) tiers.
func (m *Manager) PrefixBlocks() (gpu, host int) {
	for _, b := range m.prefix {
		if b.onGPU {
			gpu++
		} else {
			host++
		}
	}
	return gpu, host
}

// PeekPrefix returns how many tokens of a prompt's shared prefix are
// currently cached (either tier), without acquiring anything — the
// scheduler's view of the cache before it commits a dispatch.
func (m *Manager) PeekPrefix(group uint64, prefixTokens int) int {
	if !m.prefixMode || group == 0 {
		return 0
	}
	hit := 0
	for i := 0; i < prefixTokens/m.blockSize; i++ {
		if _, ok := m.prefix[pkey{group, i}]; !ok {
			break
		}
		hit++
	}
	return hit * m.blockSize
}

// AllocatePrefixed is Allocate for a request whose first prefixTokens
// prompt tokens belong to shared prefix group. Whole blocks of that span
// are looked up in the pool: hits are acquired (refcounted, promoted from
// the host tier if demoted), misses are computed by this request and
// published for later arrivals. The remainder of the context gets
// private blocks as usual. With the cache disabled or group 0 it
// degenerates to plain Allocate.
func (m *Manager) AllocatePrefixed(id RequestID, tokens int, group uint64, prefixTokens int) (PrefixAcquire, error) {
	if !m.prefixMode || group == 0 || prefixTokens < m.blockSize {
		return PrefixAcquire{}, m.Allocate(id, tokens)
	}
	if _, ok := m.tables[id]; ok {
		return PrefixAcquire{}, errAlreadyAllocated(id)
	}
	// Only whole blocks strictly inside the prompt are sharable: the
	// request always computes at least its last token itself.
	share := prefixTokens
	if share > tokens-1 {
		share = tokens - 1
	}
	nShare := share / m.blockSize
	if nShare <= 0 {
		return PrefixAcquire{}, m.Allocate(id, tokens)
	}
	m.stats.PrefixLookups++

	// The hit is the unbroken run of cached blocks from the chain head.
	chain := make([]*pblock, 0, nShare)
	restoreBlocks := 0
	for i := 0; i < nShare; i++ {
		b, ok := m.prefix[pkey{group, i}]
		if !ok {
			break
		}
		chain = append(chain, b)
		if !b.onGPU {
			restoreBlocks++
		}
	}
	hitBlocks := len(chain)
	missBlocks := nShare - hitBlocks
	privateBlocks := m.BlocksFor(tokens) - nShare
	gpuNeed := privateBlocks + missBlocks + restoreBlocks

	// Acquire references before reclaiming so eviction cannot take the
	// very blocks this request is hitting; roll back on failure.
	for _, b := range chain {
		b.refs++
	}
	if gpuNeed > m.gpuFree && !m.ensureFree(gpuNeed) {
		for _, b := range chain {
			b.refs--
		}
		m.stats.FailedAllocs++
		return PrefixAcquire{}, ErrNoSpace
	}
	m.gpuFree -= gpuNeed
	for _, b := range chain {
		if !b.onGPU {
			b.onGPU = true
			m.cpuFree++
			m.stats.PrefixRestores++
			m.stats.PrefixRestoredTokens += uint64(m.blockSize)
		}
	}
	// Publish missed blocks immediately: followers share them while this
	// request is still prefilling, holding a reference the whole time.
	for i := hitBlocks; i < nShare; i++ {
		m.prefix[pkey{group, i}] = &pblock{refs: 1, onGPU: true}
	}
	// Stamp recency tail-first so LRU eviction trims chains from the
	// tail: within a group, lastUse stays strictly decreasing in idx.
	for i := nShare - 1; i >= 0; i-- {
		m.useSeq++
		m.prefix[pkey{group, i}].lastUse = m.useSeq
	}

	m.tables[id] = &table{
		tokens: tokens, blocks: privateBlocks, loc: OnGPU,
		group: group, shared: nShare,
	}
	m.touchPeak()

	hitTokens := hitBlocks * m.blockSize
	m.stats.PrefixHitTokens += uint64(hitTokens)
	m.stats.PrefixMissTokens += uint64(tokens - hitTokens)
	return PrefixAcquire{
		HitTokens:      hitTokens,
		MissTokens:     tokens - hitTokens,
		RestoredTokens: restoreBlocks * m.blockSize,
	}, nil
}

// derefShared drops a releasing request's references on its shared
// chain. Blocks stay cached at refs==0 until pressure evicts them.
func (m *Manager) derefShared(t *table) {
	for i := 0; i < t.shared; i++ {
		if b, ok := m.prefix[pkey{t.group, i}]; ok && b.refs > 0 {
			b.refs--
		}
	}
}

// ensureFree tries to raise gpuFree to need by reclaiming redundant and
// idle state, in order: backup copies first (as the engine always
// reclaimed them first conceptually — they are copies by construction),
// then unreferenced prefix blocks, least recently used first. It is a
// no-op outside prefix mode, preserving the historical never-reclaim
// behavior exactly.
func (m *Manager) ensureFree(need int) bool {
	if need <= m.gpuFree {
		return true
	}
	if !m.prefixMode {
		return false
	}
	m.dropBackups(need)
	if need <= m.gpuFree {
		return true
	}
	m.evictPrefixBlocks(need - m.gpuFree)
	return need <= m.gpuFree
}

// dropBackups releases backup allocations (ascending request id, for
// determinism) until need GPU blocks are free or none remain. Dropping a
// backup is always safe: every consumer checks Has/IsBackup before use.
func (m *Manager) dropBackups(need int) {
	var ids []RequestID
	for id, t := range m.tables {
		if t.isBackup && t.loc == OnGPU {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		if m.gpuFree >= need {
			return
		}
		m.gpuFree += m.tables[id].blocks
		delete(m.tables, id)
		m.stats.BackupReclaims++
	}
}

// evictPrefixBlocks removes up to n unreferenced prefix blocks from the
// GPU, least recently used first. In tiered mode a victim is demoted to
// host memory while space remains there (write-back is asynchronous and
// untimed); otherwise it is dropped. Victim choice is deterministic:
// lastUse stamps are unique.
func (m *Manager) evictPrefixBlocks(n int) {
	for n > 0 {
		var vk pkey
		var victim *pblock
		for k, b := range m.prefix {
			if b.refs > 0 || !b.onGPU {
				continue
			}
			if victim == nil || b.lastUse < victim.lastUse {
				victim, vk = b, k
			}
		}
		if victim == nil {
			return
		}
		m.gpuFree++
		n--
		if m.tiered && m.cpuFree > 0 {
			m.cpuFree--
			victim.onGPU = false
			m.stats.PrefixDemotions++
		} else {
			delete(m.prefix, vk)
			m.stats.PrefixEvictions++
		}
	}
}

// ensureHostFree makes room in the host tier for a swap-out by dropping
// idle demoted prefix blocks (LRU): a preempted request's KV always
// outranks a cold cached prefix.
func (m *Manager) ensureHostFree(need int) bool {
	if need <= m.cpuFree {
		return true
	}
	if !m.prefixMode {
		return false
	}
	for need > m.cpuFree {
		var vk pkey
		var victim *pblock
		for k, b := range m.prefix {
			if b.refs > 0 || b.onGPU {
				continue
			}
			if victim == nil || b.lastUse < victim.lastUse {
				victim, vk = b, k
			}
		}
		if victim == nil {
			return false
		}
		m.cpuFree++
		delete(m.prefix, vk)
		m.stats.PrefixEvictions++
	}
	return true
}
