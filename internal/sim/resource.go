package sim

// FIFOResource models a serially-shared resource (e.g. an interconnect link
// in one direction): jobs queue and are served one at a time in submission
// order, each occupying the resource for its service duration.
//
// This is the classic M/G/1-style server used for KV-cache transfers: a
// transfer of size S over a link of bandwidth B occupies the link for S/B,
// and later transfers wait behind it.
type FIFOResource struct {
	sim  *Simulator
	name string

	busy  bool
	queue []fifoJob

	// BusyTime accumulates total occupied time, for utilization metrics.
	BusyTime Duration
	// Served counts completed jobs.
	Served uint64
}

type fifoJob struct {
	d    Duration
	done func()
}

// NewFIFOResource creates an idle resource bound to s.
func NewFIFOResource(s *Simulator, name string) *FIFOResource {
	return &FIFOResource{sim: s, name: name}
}

// Name returns the resource's diagnostic name.
func (r *FIFOResource) Name() string { return r.name }

// Busy reports whether a job is currently in service.
func (r *FIFOResource) Busy() bool { return r.busy }

// QueueLen returns the number of jobs waiting (not counting the one in
// service).
func (r *FIFOResource) QueueLen() int { return len(r.queue) }

// Submit enqueues a job needing the resource for d; done runs when the job
// completes service. Zero-duration jobs still respect FIFO order.
func (r *FIFOResource) Submit(d Duration, done func()) {
	if d < 0 {
		panic("sim: negative service duration")
	}
	r.queue = append(r.queue, fifoJob{d: d, done: done})
	if !r.busy {
		r.startNext()
	}
}

func (r *FIFOResource) startNext() {
	if len(r.queue) == 0 {
		r.busy = false
		return
	}
	job := r.queue[0]
	r.queue = r.queue[1:]
	r.busy = true
	r.BusyTime += job.d
	r.sim.Schedule(job.d, func() {
		r.Served++
		if job.done != nil {
			job.done()
		}
		r.startNext()
	})
}

// Backlog returns the total service time of queued jobs (excluding the
// remaining time of the job in service, which the caller cannot observe).
func (r *FIFOResource) Backlog() Duration {
	var total Duration
	for _, j := range r.queue {
		total += j.d
	}
	return total
}
