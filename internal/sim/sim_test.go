package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3, func() { got = append(got, 3) })
	s.Schedule(1, func() { got = append(got, 1) })
	s.Schedule(2, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("Now() = %v, want 3", s.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { got = append(got, i) })
	}
	s.RunAll()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	s.Schedule(1, func() {
		fired = append(fired, s.Now())
		s.Schedule(1, func() {
			fired = append(fired, s.Now())
		})
	})
	s.RunAll()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired = %v, want [1 2]", fired)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i), func() { count++ })
	}
	s.Run(5)
	if count != 5 {
		t.Errorf("fired %d events before horizon, want 5", count)
	}
	if s.Now() != 5 {
		t.Errorf("Now() = %v, want clamped to horizon 5", s.Now())
	}
	s.RunAll()
	if count != 10 {
		t.Errorf("fired %d total, want 10", count)
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	id := s.Schedule(1, func() { fired = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	s.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	var zero EventID
	if zero.Valid() {
		t.Fatal("zero EventID should be invalid")
	}
	if s.Cancel(zero) {
		t.Fatal("Cancel of zero id returned true")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	var ids []EventID
	for i := 0; i < 20; i++ {
		i := i
		ids = append(ids, s.Schedule(Duration(i), func() { got = append(got, i) }))
	}
	// Cancel all odd events.
	for i := 1; i < 20; i += 2 {
		s.Cancel(ids[i])
	}
	s.RunAll()
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10: %v", len(got), got)
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Fatalf("cancelled event %d fired", v)
		}
	}
}

func TestHalt(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Duration(i), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.RunAll()
	if count != 3 {
		t.Errorf("count = %d after Halt, want 3", count)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestPastAtPanics(t *testing.T) {
	s := New()
	s.Schedule(5, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(1, func() {})
}

func TestStepAndCounters(t *testing.T) {
	s := New()
	s.Schedule(1, func() {})
	s.Schedule(2, func() {})
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	if !s.Step() {
		t.Fatal("Step returned false with events pending")
	}
	if s.Fired() != 1 || s.Pending() != 1 {
		t.Fatalf("Fired=%d Pending=%d, want 1,1", s.Fired(), s.Pending())
	}
	s.Step()
	if s.Step() {
		t.Fatal("Step returned true with empty queue")
	}
}

// Property: events always fire in non-decreasing time order regardless of
// the insertion order of random delays.
func TestPropertyMonotoneFiring(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var fired []Time
		k := int(n%64) + 1
		for i := 0; i < k; i++ {
			s.Schedule(Duration(rng.Float64()*100), func() {
				fired = append(fired, s.Now())
			})
		}
		s.RunAll()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the simulator is deterministic — same schedule, same trace.
func TestPropertyDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		var fired []Time
		for i := 0; i < 100; i++ {
			d := Duration(rng.Float64() * 10)
			s.Schedule(d, func() {
				fired = append(fired, s.Now())
				if rng.Float64() < 0.3 {
					s.Schedule(Duration(rng.Float64()), func() { fired = append(fired, s.Now()) })
				}
			})
		}
		s.RunAll()
		return fired
	}
	f := func(seed int64) bool {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOResourceSerial(t *testing.T) {
	s := New()
	r := NewFIFOResource(s, "link")
	var doneAt []Time
	r.Submit(2, func() { doneAt = append(doneAt, s.Now()) })
	r.Submit(3, func() { doneAt = append(doneAt, s.Now()) })
	r.Submit(1, func() { doneAt = append(doneAt, s.Now()) })
	if !r.Busy() {
		t.Fatal("resource should be busy after submit")
	}
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", r.QueueLen())
	}
	if r.Backlog() != 4 {
		t.Fatalf("Backlog = %v, want 4", r.Backlog())
	}
	s.RunAll()
	want := []Time{2, 5, 6}
	for i := range want {
		if doneAt[i] != want[i] {
			t.Fatalf("doneAt = %v, want %v", doneAt, want)
		}
	}
	if r.Busy() || r.Served != 3 || r.BusyTime != 6 {
		t.Errorf("final state busy=%v served=%d busyTime=%v", r.Busy(), r.Served, r.BusyTime)
	}
}

func TestFIFOResourceZeroDuration(t *testing.T) {
	s := New()
	r := NewFIFOResource(s, "link")
	order := []int{}
	r.Submit(0, func() { order = append(order, 1) })
	r.Submit(0, func() { order = append(order, 2) })
	s.RunAll()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("order = %v, want [1 2]", order)
	}
}

func TestFIFOResourceSubmitFromCallback(t *testing.T) {
	s := New()
	r := NewFIFOResource(s, "link")
	var doneAt []Time
	r.Submit(1, func() {
		doneAt = append(doneAt, s.Now())
		r.Submit(1, func() { doneAt = append(doneAt, s.Now()) })
	})
	s.RunAll()
	if len(doneAt) != 2 || doneAt[0] != 1 || doneAt[1] != 2 {
		t.Fatalf("doneAt = %v, want [1 2]", doneAt)
	}
}

func TestDurationHelpers(t *testing.T) {
	if Seconds(1.5) != 1.5 {
		t.Error("Seconds")
	}
	if Milliseconds(1500) != 1.5 {
		t.Error("Milliseconds")
	}
	if Microseconds(2e6) != 2 {
		t.Error("Microseconds")
	}
	if d := Time(5).Sub(Time(2)); d != 3 {
		t.Errorf("Sub = %v", d)
	}
	if tm := Time(5).Add(2); tm != 7 {
		t.Errorf("Add = %v", tm)
	}
	if Duration(0.5).Seconds() != 0.5 || Duration(0.5).Milliseconds() != 500 {
		t.Error("Duration accessors")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	fired := false
	id := s.Schedule(1, func() { fired = true })
	s.RunAll()
	if !fired {
		t.Fatal("event did not fire")
	}
	if s.Cancel(id) {
		t.Fatal("Cancel returned true for an already-fired event")
	}
}

func TestRunUntilHorizonWithPending(t *testing.T) {
	// Events strictly beyond the horizon must stay pending while the clock
	// lands exactly on the horizon — systems rely on Now() == deadline when
	// the run is bounded, not on the clock stopping at the last fired event.
	s := New()
	fired := 0
	s.Schedule(1, func() { fired++ })
	s.Schedule(10, func() { fired++ })
	s.Run(Time(3.5))
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if s.Now() != 3.5 {
		t.Errorf("Now() = %v, want exactly 3.5", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
	// A later bounded run resumes from the clamped clock; with the queue
	// drained the clock rests at the last fired event, not the horizon.
	s.Run(Time(20))
	if fired != 2 || s.Now() != 10 {
		t.Errorf("after second run: fired=%d Now()=%v, want 2 and 10", fired, s.Now())
	}
}
