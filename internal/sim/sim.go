// Package sim provides a deterministic discrete-event simulation kernel.
//
// All WindServe experiments run on virtual time: instances schedule
// "iteration complete" events, transfer engines schedule "copy done" events,
// and workload generators schedule request arrivals. The kernel guarantees a
// total order over events (time, then insertion sequence), so a run with a
// fixed seed is bit-for-bit reproducible.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Forever is a time later than any event a simulation will ever schedule.
const Forever Time = math.MaxFloat64 / 4

// Seconds constructs a Duration from a float64 number of seconds.
func Seconds(s float64) Duration { return Duration(s) }

// Milliseconds constructs a Duration from milliseconds.
func Milliseconds(ms float64) Duration { return Duration(ms / 1e3) }

// Microseconds constructs a Duration from microseconds.
func Microseconds(us float64) Duration { return Duration(us / 1e6) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Milliseconds returns the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) * 1e3 }

func (t Time) String() string     { return fmt.Sprintf("%.6fs", float64(t)) }
func (d Duration) String() string { return fmt.Sprintf("%.3fms", float64(d)*1e3) }

// event is a scheduled callback. Events are pooled: once fired or
// cancelled, the struct goes on the simulator's free list and is reused
// by a later Schedule. gen distinguishes the incarnations, so an EventID
// held across a recycle can never cancel the wrong event.
type event struct {
	at     Time
	seq    uint64 // tie-breaker: FIFO among same-time events
	fn     func()
	epoch  int64  // absolute calendar-bucket number at insertion width
	bucket int    // owning bucket, fixed by epoch & mask
	index  int    // position within the bucket, -1 when popped/cancelled
	gen    uint64 // incarnation counter, bumped on every recycle
}

// before reports whether e fires ahead of other in the kernel's total
// order: time first, then insertion sequence (FIFO among ties).
func (e *event) before(other *event) bool {
	if e.at != other.at {
		return e.at < other.at
	}
	return e.seq < other.seq
}

// calendarQueue is the pending-event set, organized as a calendar (bucket)
// queue (Brown, CACM 1988): virtual time is cut into windows of `width`
// seconds, window k maps to bucket k mod nbuckets, and a cursor sweeps
// windows in order. With the bucket count resized to track the event
// population, Schedule, Cancel, and pop are all O(1) amortized — against
// the binary heap's O(log n) — which is what makes million-request
// horizons with tens of thousands of pending events affordable.
//
// Ordering is exact, not approximate: an event's window is its integer
// epoch floor(at/width), the in-window test compares epochs (never
// accumulated float boundaries), and within a window the minimum is chosen
// by (at, seq) — so firing order, including FIFO among equal timestamps,
// is identical to the heap's total order.
type calendarQueue struct {
	buckets [][]*event
	mask    int // len(buckets)-1; len is a power of two
	n       int
	width   Time
	// curEpoch is the window the sweep cursor is on. Invariant: no pending
	// event has epoch < curEpoch.
	curEpoch int64
	// sample is resize's scratch for width estimation.
	sample []float64
}

const (
	minBuckets = 16
	// maxEpoch is the clamped window for events so far in the future that
	// floor(at/width) overflows — e.g. horizon guards near Forever. They
	// are only ever reached through the direct-search fallback, which
	// compares (at, seq) exactly, so sharing one clamped window is safe.
	maxEpoch = int64(1) << 62
)

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{
		buckets: make([][]*event, minBuckets),
		mask:    minBuckets - 1,
		width:   1,
	}
}

// epochOf maps a timestamp to its window at the current width.
func (q *calendarQueue) epochOf(at Time) int64 {
	e := math.Floor(float64(at) / float64(q.width))
	if !(e < float64(maxEpoch)) { // also catches +Inf/NaN from extreme at
		return maxEpoch
	}
	if e < 0 {
		return 0
	}
	return int64(e)
}

// push inserts an event, rewinding the cursor if it lands before it.
func (q *calendarQueue) push(ev *event) {
	q.place(ev)
	q.n++
	if q.n == 1 || ev.epoch < q.curEpoch {
		q.curEpoch = ev.epoch
	}
	if q.n > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// place computes the event's window at the current width and appends it to
// its bucket.
func (q *calendarQueue) place(ev *event) {
	ev.epoch = q.epochOf(ev.at)
	b := int(ev.epoch) & q.mask
	ev.bucket = b
	ev.index = len(q.buckets[b])
	q.buckets[b] = append(q.buckets[b], ev)
}

// remove unlinks a pending event from its bucket in O(1) by swapping the
// bucket's last event into its slot.
func (q *calendarQueue) remove(ev *event) {
	b := q.buckets[ev.bucket]
	last := len(b) - 1
	if ev.index != last {
		moved := b[last]
		b[ev.index] = moved
		moved.index = ev.index
	}
	b[last] = nil
	q.buckets[ev.bucket] = b[:last]
	ev.index = -1
	q.n--
	if q.n < len(q.buckets)/2 && len(q.buckets) > minBuckets {
		q.resize(len(q.buckets) / 2)
	}
}

// peek returns the next event in (at, seq) order without removing it. The
// cursor advances past empty windows as a side effect; if a whole year
// (every bucket once) is swept without a hit, the pending set is sparse
// relative to the cursor and a direct minimum search jumps the cursor to
// wherever the events actually are.
func (q *calendarQueue) peek() *event {
	if q.n == 0 {
		return nil
	}
	for i := 0; i <= q.mask; i++ {
		var best *event
		for _, ev := range q.buckets[int(q.curEpoch)&q.mask] {
			if ev.epoch == q.curEpoch && (best == nil || ev.before(best)) {
				best = ev
			}
		}
		if best != nil {
			return best
		}
		q.curEpoch++
	}
	var best *event
	for _, bkt := range q.buckets {
		for _, ev := range bkt {
			if best == nil || ev.before(best) {
				best = ev
			}
		}
	}
	q.curEpoch = best.epoch
	return best
}

// pop removes and returns the next event in (at, seq) order.
func (q *calendarQueue) pop() *event {
	ev := q.peek()
	if ev != nil {
		q.remove(ev)
	}
	return ev
}

// resize rebuilds the calendar with nb buckets and a width re-estimated
// from the current population's spacing, keeping amortized bucket
// occupancy O(1) as the pending count grows and shrinks.
func (q *calendarQueue) resize(nb int) {
	if nb < minBuckets {
		nb = minBuckets
	}
	if w := q.sampleWidth(); w > 0 {
		q.width = w
	}
	old := q.buckets
	q.buckets = make([][]*event, nb)
	q.mask = nb - 1
	var min *event
	for _, bkt := range old {
		for _, ev := range bkt {
			q.place(ev)
			if min == nil || ev.before(min) {
				min = ev
			}
		}
	}
	if min != nil {
		q.curEpoch = min.epoch
	}
}

// sampleWidth estimates a bucket width from the median positive gap
// between a deterministic sample of pending-event timestamps. The median
// keeps one far-future outlier (a horizon guard) from stretching every
// bucket; dividing by the sampling stride converts the sample's spacing
// back to the population's adjacent-event spacing, so occupancy stays
// around one event per swept window. Returns 0 when no estimate is
// possible (fewer than two distinct timestamps), in which case the caller
// keeps the current width.
func (q *calendarQueue) sampleWidth() Time {
	const sampleCap = 64
	stride := 1
	if q.n > sampleCap {
		stride = q.n / sampleCap
	}
	ts := q.sample[:0]
	i := 0
	for _, bkt := range q.buckets {
		for _, ev := range bkt {
			if i%stride == 0 {
				ts = append(ts, float64(ev.at))
			}
			i++
		}
	}
	q.sample = ts
	sort.Float64s(ts)
	gaps := 0
	for i := 1; i < len(ts); i++ {
		if g := ts[i] - ts[i-1]; g > 0 {
			ts[gaps] = g // reuse the prefix for the positive gaps
			gaps++
		}
	}
	if gaps == 0 {
		return 0
	}
	sort.Float64s(ts[:gaps])
	w := 4 * ts[gaps/2] / float64(stride)
	if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
		return 0
	}
	return Time(w)
}

// EventID identifies a scheduled event so it can be cancelled. The id
// captures the event's incarnation, so holding one past the event's
// firing (after which the struct may be recycled into an unrelated
// event) is safe: Cancel on a stale id is a no-op.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the id refers to a (possibly already fired) event.
func (id EventID) Valid() bool { return id.ev != nil }

// Simulator is a single-threaded discrete-event scheduler.
// The zero value is not usable; call New.
type Simulator struct {
	now       Time
	q         *calendarQueue
	seq       uint64
	fired     uint64
	lastFired Time
	halted    bool
	// free recycles fired/cancelled event structs. Bounded by the peak
	// number of simultaneously pending events, it eliminates the
	// per-Schedule heap allocation on the kernel's hottest path.
	free []*event
}

// New returns an empty simulator at time 0.
func New() *Simulator {
	return &Simulator{q: newCalendarQueue()}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled-but-unfired events.
func (s *Simulator) Pending() int { return s.q.n }

// Schedule runs fn after delay d (>= 0). Scheduling in the past panics,
// since it indicates a cost-model bug rather than a recoverable condition.
func (s *Simulator) Schedule(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// At runs fn at absolute time t (>= Now).
func (s *Simulator) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = t, s.seq, fn
	s.seq++
	s.q.push(ev)
	return EventID{ev: ev, gen: ev.gen}
}

// alloc takes an event off the free list, or allocates the list's first
// incarnation of one.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle retires an event to the free list. Bumping gen first
// invalidates every outstanding EventID for this incarnation.
func (s *Simulator) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	s.q.remove(id.ev)
	s.recycle(id.ev)
	return true
}

// Halt stops the run loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Step fires the single earliest pending event, if any, advancing the clock.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	ev := s.q.pop()
	if ev == nil {
		return false
	}
	if ev.at < s.now {
		panic("sim: time went backwards")
	}
	s.now = ev.at
	s.lastFired = ev.at
	s.fired++
	fn := ev.fn
	// Recycle before firing: the callback's own Schedule calls may reuse
	// the struct immediately, and the gen bump keeps any EventID the
	// callback still holds for *this* firing inert.
	s.recycle(ev)
	fn()
	return true
}

// Run fires events in order until no events remain, the horizon is passed,
// or Halt is called. The clock is left at the last fired event (or at the
// horizon, whichever is smaller, if events remain beyond it).
func (s *Simulator) Run(until Time) {
	s.halted = false
	for !s.halted {
		next := s.q.peek()
		if next == nil {
			return
		}
		if next.at > until {
			s.now = until
			return
		}
		s.Step()
	}
}

// RunAll fires all events until the queue drains or Halt is called.
func (s *Simulator) RunAll() { s.Run(Forever) }

// NextAt returns the time of the earliest pending event, if any.
func (s *Simulator) NextAt() (Time, bool) {
	next := s.q.peek()
	if next == nil {
		return 0, false
	}
	return next.at, true
}

// LastFired returns the time of the most recently fired event (0 if none
// has fired). Unlike Now, it never reflects a Run/RunWindow horizon the
// clock was merely advanced to.
func (s *Simulator) LastFired() Time { return s.lastFired }

// RunWindow fires events strictly before end and leaves the clock exactly
// at end. It is the shard executor's primitive: a window [start, end) is
// exhausted and the clock parked on the boundary so cross-shard messages
// delivered at >= end can be scheduled without violating At's no-past rule.
func (s *Simulator) RunWindow(end Time) {
	s.halted = false
	for !s.halted {
		next := s.q.peek()
		if next == nil || next.at >= end {
			break
		}
		s.Step()
	}
	if end > s.now {
		s.now = end
	}
}
