// Package sim provides a deterministic discrete-event simulation kernel.
//
// All WindServe experiments run on virtual time: instances schedule
// "iteration complete" events, transfer engines schedule "copy done" events,
// and workload generators schedule request arrivals. The kernel guarantees a
// total order over events (time, then insertion sequence), so a run with a
// fixed seed is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in virtual time, in seconds since simulation start.
type Time float64

// Duration is a span of virtual time in seconds.
type Duration float64

// Forever is a time later than any event a simulation will ever schedule.
const Forever Time = math.MaxFloat64 / 4

// Seconds constructs a Duration from a float64 number of seconds.
func Seconds(s float64) Duration { return Duration(s) }

// Milliseconds constructs a Duration from milliseconds.
func Milliseconds(ms float64) Duration { return Duration(ms / 1e3) }

// Microseconds constructs a Duration from microseconds.
func Microseconds(us float64) Duration { return Duration(us / 1e6) }

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// Milliseconds returns the duration in milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) * 1e3 }

func (t Time) String() string     { return fmt.Sprintf("%.6fs", float64(t)) }
func (d Duration) String() string { return fmt.Sprintf("%.3fms", float64(d)*1e3) }

// event is a scheduled callback. Events are pooled: once fired or
// cancelled, the struct goes on the simulator's free list and is reused
// by a later Schedule. gen distinguishes the incarnations, so an EventID
// held across a recycle can never cancel the wrong event.
type event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among same-time events
	fn    func()
	index int    // heap index, -1 when popped/cancelled
	gen   uint64 // incarnation counter, bumped on every recycle
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// EventID identifies a scheduled event so it can be cancelled. The id
// captures the event's incarnation, so holding one past the event's
// firing (after which the struct may be recycled into an unrelated
// event) is safe: Cancel on a stale id is a no-op.
type EventID struct {
	ev  *event
	gen uint64
}

// Valid reports whether the id refers to a (possibly already fired) event.
func (id EventID) Valid() bool { return id.ev != nil }

// Simulator is a single-threaded discrete-event scheduler.
// The zero value is not usable; call New.
type Simulator struct {
	now    Time
	pq     eventHeap
	seq    uint64
	fired  uint64
	halted bool
	// free recycles fired/cancelled event structs. Bounded by the peak
	// number of simultaneously pending events, it eliminates the
	// per-Schedule heap allocation on the kernel's hottest path.
	free []*event
}

// New returns an empty simulator at time 0.
func New() *Simulator {
	s := &Simulator{}
	heap.Init(&s.pq)
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Fired returns how many events have executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of scheduled-but-unfired events.
func (s *Simulator) Pending() int { return len(s.pq) }

// Schedule runs fn after delay d (>= 0). Scheduling in the past panics,
// since it indicates a cost-model bug rather than a recoverable condition.
func (s *Simulator) Schedule(d Duration, fn func()) EventID {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// At runs fn at absolute time t (>= Now).
func (s *Simulator) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("sim: nil event function")
	}
	ev := s.alloc()
	ev.at, ev.seq, ev.fn = t, s.seq, fn
	s.seq++
	heap.Push(&s.pq, ev)
	return EventID{ev: ev, gen: ev.gen}
}

// alloc takes an event off the free list, or allocates the list's first
// incarnation of one.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle retires an event to the free list. Bumping gen first
// invalidates every outstanding EventID for this incarnation.
func (s *Simulator) recycle(ev *event) {
	ev.fn = nil
	ev.gen++
	s.free = append(s.free, ev)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (s *Simulator) Cancel(id EventID) bool {
	if id.ev == nil || id.ev.gen != id.gen || id.ev.index < 0 {
		return false
	}
	heap.Remove(&s.pq, id.ev.index)
	s.recycle(id.ev)
	return true
}

// Halt stops the run loop after the current event returns.
func (s *Simulator) Halt() { s.halted = true }

// Step fires the single earliest pending event, if any, advancing the clock.
// It reports whether an event fired.
func (s *Simulator) Step() bool {
	if len(s.pq) == 0 {
		return false
	}
	ev := heap.Pop(&s.pq).(*event)
	if ev.at < s.now {
		panic("sim: time went backwards")
	}
	s.now = ev.at
	s.fired++
	fn := ev.fn
	// Recycle before firing: the callback's own Schedule calls may reuse
	// the struct immediately, and the gen bump keeps any EventID the
	// callback still holds for *this* firing inert.
	s.recycle(ev)
	fn()
	return true
}

// Run fires events in order until no events remain, the horizon is passed,
// or Halt is called. The clock is left at the last fired event (or at the
// horizon, whichever is smaller, if events remain beyond it).
func (s *Simulator) Run(until Time) {
	s.halted = false
	for !s.halted {
		if len(s.pq) == 0 {
			return
		}
		if s.pq[0].at > until {
			s.now = until
			return
		}
		s.Step()
	}
}

// RunAll fires all events until the queue drains or Halt is called.
func (s *Simulator) RunAll() { s.Run(Forever) }
