package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the binary-heap pending set the kernel used before the
// calendar queue, kept as an executable specification of the (at, seq)
// total order for equivalence tests and as the baseline in the
// event-queue benchmarks.
type refHeap []*event

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h refHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *refHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	old[n] = nil
	ev.index = -1
	*h = old[:n]
	return ev
}

// TestCalendarHeapEquivalence drives the calendar queue and the reference
// heap through the same random push/cancel/pop script and checks they
// yield the exact same event at every pop — including FIFO order among
// equal timestamps, which the grid delays force constantly.
func TestCalendarHeapEquivalence(t *testing.T) {
	grid := []float64{0, 0, 0.5, 0.5, 1, 1, 1.5, 2, 10, 1e6, float64(Forever)}
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		cq := newCalendarQueue()
		var hq refHeap
		type pair struct{ c, h *event }
		live := map[uint64]pair{}
		var liveSeqs []uint64
		now := 0.0
		seq := uint64(0)
		for op := 0; op < 5000; op++ {
			x := rng.Float64()
			switch {
			case x < 0.55 || cq.n == 0:
				var d float64
				if rng.Float64() < 0.5 {
					d = grid[rng.Intn(len(grid))]
				} else {
					d = rng.Float64() * 100
				}
				at := Time(now) + Time(d)
				ce := &event{at: at, seq: seq}
				he := &event{at: at, seq: seq}
				cq.push(ce)
				heap.Push(&hq, he)
				live[seq] = pair{ce, he}
				liveSeqs = append(liveSeqs, seq)
				seq++
			case x < 0.75 && len(liveSeqs) > 0:
				i := rng.Intn(len(liveSeqs))
				sq := liveSeqs[i]
				liveSeqs[i] = liveSeqs[len(liveSeqs)-1]
				liveSeqs = liveSeqs[:len(liveSeqs)-1]
				p := live[sq]
				delete(live, sq)
				cq.remove(p.c)
				heap.Remove(&hq, p.h.index)
			default:
				ce := cq.pop()
				he := heap.Pop(&hq).(*event)
				if ce.at != he.at || ce.seq != he.seq {
					t.Fatalf("seed %d op %d: calendar popped (at=%v seq=%d), heap popped (at=%v seq=%d)",
						seed, op, ce.at, ce.seq, he.at, he.seq)
				}
				now = float64(ce.at)
				p := live[ce.seq]
				delete(live, ce.seq)
				for i, sq := range liveSeqs {
					if sq == ce.seq {
						liveSeqs[i] = liveSeqs[len(liveSeqs)-1]
						liveSeqs = liveSeqs[:len(liveSeqs)-1]
						break
					}
				}
				_ = p
			}
			if cq.n != hq.Len() {
				t.Fatalf("seed %d op %d: calendar has %d events, heap has %d", seed, op, cq.n, hq.Len())
			}
		}
		// Drain: remaining events must come out in identical order.
		for cq.n > 0 {
			ce := cq.pop()
			he := heap.Pop(&hq).(*event)
			if ce.at != he.at || ce.seq != he.seq {
				t.Fatalf("seed %d drain: calendar popped (at=%v seq=%d), heap popped (at=%v seq=%d)",
					seed, ce.at, ce.seq, he.at, he.seq)
			}
		}
	}
}

// TestCalendarFarFuture pins the overflow path: events near Forever clamp
// to the overflow window and are reached through the direct-search
// fallback, in (at, seq) order, without disturbing near-term events.
func TestCalendarFarFuture(t *testing.T) {
	s := New()
	var got []int
	s.At(Forever/2, func() { got = append(got, 2) })
	s.At(Forever/4, func() { got = append(got, 1) })
	s.Schedule(1, func() { got = append(got, 0) })
	s.At(Forever/2, func() { got = append(got, 3) })
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("far-future events fired out of order: %v", got)
		}
	}
}

// TestCalendarSparseAfterBurst pins the shrink path: a large burst popped
// down to a handful of stragglers must keep firing in order as the bucket
// array contracts underneath them.
func TestCalendarSparseAfterBurst(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(3))
	var fired []Time
	for i := 0; i < 3000; i++ {
		s.Schedule(Duration(rng.Float64()), func() { fired = append(fired, s.Now()) })
	}
	for i := 0; i < 5; i++ {
		s.Schedule(Duration(1000+1000*float64(i)), func() { fired = append(fired, s.Now()) })
	}
	s.RunAll()
	if len(fired) != 3005 {
		t.Fatalf("fired %d events, want 3005", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("time went backwards at %d: %v < %v", i, fired[i], fired[i-1])
		}
	}
}

// benchDelays returns a fixed table of pseudo-random delays so the
// benchmark loop pays no rng cost.
func benchDelays(n int, scale float64) []Time {
	rng := rand.New(rand.NewSource(11))
	out := make([]Time, n)
	for i := range out {
		out[i] = Time(rng.Float64() * scale)
	}
	return out
}

// BenchmarkEventQueueHeap10k / BenchmarkEventQueueCalendar10k measure the
// classic hold model (pop the minimum, reinsert at now+delay) with 10k
// pending events — the occupancy a mega-run's deadline timers and
// per-instance iteration events produce. The heap pays O(log n) sifts per
// operation; the calendar queue is O(1) amortized.
func BenchmarkEventQueueHeap10k(b *testing.B) {
	delays := benchDelays(4096, 20)
	hq := make(refHeap, 0, 10001)
	for i := 0; i < 10000; i++ {
		heap.Push(&hq, &event{at: delays[i&4095], seq: uint64(i)})
	}
	seq := uint64(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := heap.Pop(&hq).(*event)
		ev.at += delays[i&4095]
		ev.seq = seq
		seq++
		heap.Push(&hq, ev)
	}
}

func BenchmarkEventQueueCalendar10k(b *testing.B) {
	delays := benchDelays(4096, 20)
	cq := newCalendarQueue()
	for i := 0; i < 10000; i++ {
		cq.push(&event{at: delays[i&4095], seq: uint64(i)})
	}
	seq := uint64(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := cq.pop()
		ev.at += delays[i&4095]
		ev.seq = seq
		seq++
		cq.push(ev)
	}
}

// BenchmarkServeSteady is the whole-kernel steady state the CI
// alloc-budget job gates on: a simulator holding 10k pending events doing
// schedule+fire cycles must run allocation-free.
func BenchmarkServeSteady(b *testing.B) {
	s := New()
	fn := func() {}
	delays := benchDelays(4096, 20)
	for i := 0; i < 10000; i++ {
		s.Schedule(Duration(delays[i&4095]), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(20, fn)
		s.Step()
	}
}
