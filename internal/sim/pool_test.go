package sim

import "testing"

// TestCancelStaleAfterFire pins the event-pool safety contract: an
// EventID held past its event's firing must stay inert even after the
// underlying struct is recycled into a new, still-pending event.
func TestCancelStaleAfterFire(t *testing.T) {
	s := New()
	fired := 0
	id1 := s.Schedule(1, func() { fired++ })
	if !s.Step() {
		t.Fatal("no event fired")
	}
	// The struct behind id1 is now on the free list; this Schedule
	// recycles it as a fresh incarnation.
	id2 := s.Schedule(1, func() { fired++ })
	if s.Cancel(id1) {
		t.Fatal("stale Cancel of a fired event succeeded")
	}
	if !s.Step() {
		t.Fatal("recycled event did not fire — stale Cancel killed it")
	}
	if fired != 2 {
		t.Fatalf("fired %d events, want 2", fired)
	}
	if s.Cancel(id2) {
		t.Fatal("Cancel after fire should be a no-op")
	}
}

// TestCancelStaleAfterCancel does the same across a Cancel-driven recycle.
func TestCancelStaleAfterCancel(t *testing.T) {
	s := New()
	id1 := s.Schedule(1, func() {})
	if !s.Cancel(id1) {
		t.Fatal("first Cancel failed")
	}
	ran := false
	s.Schedule(1, func() { ran = true })
	if s.Cancel(id1) {
		t.Fatal("double Cancel succeeded against the recycled event")
	}
	s.RunAll()
	if !ran {
		t.Fatal("recycled event did not run")
	}
}

// TestSelfCancelDuringFire: a callback cancelling its own (already
// popped) event must be a no-op, and must not corrupt the free list.
func TestSelfCancelDuringFire(t *testing.T) {
	s := New()
	var id EventID
	id = s.Schedule(1, func() {
		if s.Cancel(id) {
			t.Error("self-Cancel during fire succeeded")
		}
	})
	s.RunAll()
	n := 0
	s.Schedule(1, func() { n++ })
	s.Schedule(2, func() { n++ })
	s.RunAll()
	if n != 2 {
		t.Fatalf("post-recycle events fired %d times, want 2", n)
	}
}

// TestPoolReusesEvents checks the free list actually eliminates steady-
// state allocation: schedule/fire cycles after warm-up allocate nothing.
func TestPoolReusesEvents(t *testing.T) {
	s := New()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Schedule(1, func() {})
		s.Step()
	})
	if allocs > 0 {
		t.Fatalf("schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

// BenchmarkSimulatorScheduleFire measures the kernel's hottest path: one
// Schedule plus the Step that fires it.
func BenchmarkSimulatorScheduleFire(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(1, fn)
		s.Step()
	}
}

// BenchmarkSimulatorScheduleFireDeep is the same with a deep pending
// queue, so heap sift costs at realistic occupancy are visible.
func BenchmarkSimulatorScheduleFireDeep(b *testing.B) {
	s := New()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		s.Schedule(Duration(1+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(2048, fn)
		s.Step()
	}
}
