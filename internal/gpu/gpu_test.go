package gpu

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSpecConversions(t *testing.T) {
	if A800.FLOPS() != 312e12 {
		t.Errorf("A800 FLOPS = %v", A800.FLOPS())
	}
	if A800.BandwidthBytes() != 2039e9 {
		t.Errorf("A800 BW = %v", A800.BandwidthBytes())
	}
	if A800.MemoryBytes() != 80*(1<<30) {
		t.Errorf("A800 mem = %v", A800.MemoryBytes())
	}
}

func TestPaperTestbedShape(t *testing.T) {
	topo := PaperTestbed()
	if topo.NumDevices() != 8 {
		t.Fatalf("devices = %d, want 8", topo.NumDevices())
	}
	for i := 0; i < 8; i++ {
		d := topo.Device(DeviceID(i))
		if wantNUMA := i / 4; d.NUMA != wantNUMA {
			t.Errorf("gpu%d NUMA = %d, want %d", i, d.NUMA, wantNUMA)
		}
		if want := DeviceID(i ^ 1); d.NVLinkPeer != want {
			t.Errorf("gpu%d peer = %d, want %d", i, d.NVLinkPeer, want)
		}
		if d.Spec.Name != "A800-80G" {
			t.Errorf("gpu%d spec = %s", i, d.Spec.Name)
		}
	}
}

func TestPathClassification(t *testing.T) {
	topo := PaperTestbed()
	cases := []struct {
		src, dst DeviceID
		want     LinkKind
	}{
		{0, 0, LinkLocal},
		{0, 1, LinkNVLink},      // bridged pair
		{2, 3, LinkNVLink},      // bridged pair
		{0, 2, LinkPCIeSwitch},  // same NUMA, not bridged
		{1, 3, LinkPCIeSwitch},  // same NUMA, not bridged
		{0, 4, LinkRootComplex}, // cross NUMA
		{3, 7, LinkRootComplex}, // cross NUMA
		{4, 5, LinkNVLink},      // bridged pair on NUMA 1
		{5, 6, LinkPCIeSwitch},  // same NUMA 1
	}
	for _, c := range cases {
		if got := topo.PathBetween(c.src, c.dst); got.Kind != c.want {
			t.Errorf("path %d→%d = %v, want %v", c.src, c.dst, got.Kind, c.want)
		}
	}
}

func TestPathSymmetry(t *testing.T) {
	topo := PaperTestbed()
	f := func(a, b uint8) bool {
		s, d := DeviceID(a%8), DeviceID(b%8)
		return topo.PathBetween(s, d).Kind == topo.PathBetween(d, s).Kind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestPairLink(t *testing.T) {
	topo := PaperTestbed()
	// Groups {0,2} and {1,3}: 0→1 is NVLink, so best is NVLink.
	l := topo.BestPairLink([]DeviceID{0, 2}, []DeviceID{1, 3})
	if l.Kind != LinkNVLink {
		t.Errorf("best link = %v, want NVLink", l.Kind)
	}
	// Groups {0} and {4}: only cross-NUMA available.
	l = topo.BestPairLink([]DeviceID{0}, []DeviceID{4})
	if l.Kind != LinkRootComplex {
		t.Errorf("best link = %v, want root-complex", l.Kind)
	}
	// Overlapping single device → local.
	l = topo.BestPairLink([]DeviceID{0}, []DeviceID{0})
	if l.Kind != LinkLocal {
		t.Errorf("overlap link = %v, want local", l.Kind)
	}
}

func TestMixedTestbed(t *testing.T) {
	topo := MixedTestbed(RTX4090, 2, false, A800, 2, true)
	if topo.NumDevices() != 4 {
		t.Fatalf("devices = %d", topo.NumDevices())
	}
	// Consumer cards have no NVLink peers.
	if topo.Device(0).NVLinkPeer != -1 || topo.Device(1).NVLinkPeer != -1 {
		t.Error("RTX4090s should have no NVLink")
	}
	if topo.Device(0).Spec.Name != "RTX-4090" || topo.Device(2).Spec.Name != "A800-80G" {
		t.Error("specs misassigned")
	}
	// A800 pair keeps its bridge.
	if topo.Device(2).NVLinkPeer != 3 || topo.Device(3).NVLinkPeer != 2 {
		t.Error("A800 pair should be NVLinked")
	}
	// 4090↔4090 falls back to PCIe.
	if topo.PathBetween(0, 1).Kind != LinkPCIeSwitch {
		t.Error("4090 pair should route over PCIe")
	}
	// Odd group sizes leave the last device unpaired.
	topo2 := MixedTestbed(A800, 3, true, RTX4090, 1, false)
	if topo2.Device(2).NVLinkPeer != -1 {
		t.Errorf("odd A800 peer = %d, want -1", topo2.Device(2).NVLinkPeer)
	}
}

func TestHomogeneousTestbed(t *testing.T) {
	topo := HomogeneousTestbed(3, A100)
	if topo.NumDevices() != 3 {
		t.Fatalf("devices = %d", topo.NumDevices())
	}
	if topo.Device(0).NVLinkPeer != 1 || topo.Device(1).NVLinkPeer != 0 {
		t.Error("pair 0-1 should be NVLinked")
	}
	if topo.Device(2).NVLinkPeer != -1 {
		t.Errorf("odd device peer = %d, want -1", topo.Device(2).NVLinkPeer)
	}
	if topo.PathBetween(0, 2).Kind != LinkPCIeSwitch {
		t.Error("0→2 should be PCIe")
	}
}

func TestSetLinkOverride(t *testing.T) {
	topo := PaperTestbed()
	topo.SetLink(LinkPCIeSwitch, LinkSpec{Kind: LinkPCIeSwitch, GBs: 64})
	if got := topo.PathBetween(0, 2).GBs; got != 64 {
		t.Errorf("overridden PCIe BW = %v, want 64", got)
	}
}

func TestKVTransferTimeMatchesPaper(t *testing.T) {
	// Paper §2.2: ~1.5 GB KV cache over PCIe Gen4 ×16 @ 32 GB/s ≈ 47 ms raw
	// ("~65 ms" with protocol overhead). Sanity-check the raw number here;
	// the efficiency factor lives in internal/xfer.
	secs := 1.5e9 / PCIeGen4.BytesPerSecond()
	if secs < 0.04 || secs > 0.06 {
		t.Errorf("raw 1.5GB PCIe transfer = %.1f ms, want ~47 ms", secs*1e3)
	}
}

func TestLinkKindString(t *testing.T) {
	for k, want := range map[LinkKind]string{
		LinkNVLink: "NVLink", LinkPCIeSwitch: "PCIe-switch",
		LinkRootComplex: "root-complex", LinkLocal: "local", LinkHostPCIe: "host-PCIe",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(LinkKind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestTopologyString(t *testing.T) {
	s := PaperTestbed().String()
	for _, want := range []string{"8 devices", "A800-80G", "NVLink 200"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
