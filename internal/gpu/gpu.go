// Package gpu models the hardware substrate WindServe runs on: GPU device
// specifications (compute, memory, bandwidth) and the interconnect topology
// of the paper's testbed (Fig. 9): 8× NVIDIA A800-80GB across two NUMA
// nodes, NVLink-bridged in pairs, PCIe Gen4 within a NUMA node, and the
// root complex across nodes.
//
// Nothing here executes real kernels; the specs feed the roofline cost
// model in internal/perf and the transfer engine in internal/xfer.
package gpu

import "fmt"

// Spec describes one GPU device model.
type Spec struct {
	// Name is the marketing name, e.g. "A800-80G".
	Name string
	// FP16TFLOPS is peak dense FP16 tensor-core throughput (TFLOP/s).
	FP16TFLOPS float64
	// HBMBandwidthGBs is peak device-memory bandwidth (GB/s).
	HBMBandwidthGBs float64
	// MemoryGiB is device memory capacity (GiB).
	MemoryGiB float64
	// SMs is the number of streaming multiprocessors (informational; the
	// SBD contention model works in fractions of the device).
	SMs int
}

// FLOPS returns peak FP16 throughput in FLOP/s.
func (s Spec) FLOPS() float64 { return s.FP16TFLOPS * 1e12 }

// BandwidthBytes returns peak HBM bandwidth in bytes/s.
func (s Spec) BandwidthBytes() float64 { return s.HBMBandwidthGBs * 1e9 }

// MemoryBytes returns device memory capacity in bytes.
func (s Spec) MemoryBytes() float64 { return s.MemoryGiB * (1 << 30) }

// Built-in device specs. The A800-80G matches the paper's testbed; the
// others support the heterogeneous-cluster discussion in the paper's
// future-work section and additional experiments.
var (
	// A800 is the PCIe A800-80GB used in the paper: A100-class compute
	// with NVLink capped at 400 GB/s bidirectional.
	A800 = Spec{Name: "A800-80G", FP16TFLOPS: 312, HBMBandwidthGBs: 2039, MemoryGiB: 80, SMs: 108}
	// A100 SXM 80 GB.
	A100 = Spec{Name: "A100-80G", FP16TFLOPS: 312, HBMBandwidthGBs: 2039, MemoryGiB: 80, SMs: 108}
	// H100 SXM.
	H100 = Spec{Name: "H100-80G", FP16TFLOPS: 989, HBMBandwidthGBs: 3350, MemoryGiB: 80, SMs: 132}
	// RTX4090: high compute, low memory — the paper's candidate prefill
	// device for heterogeneous clusters (§7).
	RTX4090 = Spec{Name: "RTX-4090", FP16TFLOPS: 165, HBMBandwidthGBs: 1008, MemoryGiB: 24, SMs: 128}
)

// LinkKind classifies an interconnect hop.
type LinkKind int

const (
	// LinkNVLink is an NVLink bridge between a GPU pair.
	LinkNVLink LinkKind = iota
	// LinkPCIeSwitch is PCIe Gen4 ×16 through a switch within one NUMA node.
	LinkPCIeSwitch
	// LinkRootComplex is a cross-NUMA path through the CPU root complex.
	LinkRootComplex
	// LinkLocal means source and destination are the same GPU.
	LinkLocal
	// LinkHostPCIe is the GPU↔host-DRAM path used for KV-cache swapping.
	LinkHostPCIe
)

func (k LinkKind) String() string {
	switch k {
	case LinkNVLink:
		return "NVLink"
	case LinkPCIeSwitch:
		return "PCIe-switch"
	case LinkRootComplex:
		return "root-complex"
	case LinkLocal:
		return "local"
	case LinkHostPCIe:
		return "host-PCIe"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// LinkSpec gives the unidirectional bandwidth and base latency for one hop.
type LinkSpec struct {
	Kind LinkKind
	// GBs is unidirectional bandwidth in GB/s.
	GBs float64
	// LatencyUS is the fixed per-transfer latency in microseconds.
	LatencyUS float64
}

// BytesPerSecond returns the link bandwidth in bytes/s.
func (l LinkSpec) BytesPerSecond() float64 { return l.GBs * 1e9 }

// Default link specs for the paper's testbed. NVLink 400 GB/s bidirectional
// → 200 GB/s per direction; PCIe Gen4 ×16 64 GB/s bidirectional → 32 GB/s
// per direction (the paper's ~65 ms for a 1.5 GB KV cache plus protocol
// overhead implies ~23 GB/s effective; we model 32 GB/s raw with an
// efficiency factor applied in internal/xfer).
var (
	NVLinkBridge = LinkSpec{Kind: LinkNVLink, GBs: 200, LatencyUS: 5}
	PCIeGen4     = LinkSpec{Kind: LinkPCIeSwitch, GBs: 32, LatencyUS: 10}
	RootComplex  = LinkSpec{Kind: LinkRootComplex, GBs: 24, LatencyUS: 25}
	HostPCIe     = LinkSpec{Kind: LinkHostPCIe, GBs: 32, LatencyUS: 10}
	SameDevice   = LinkSpec{Kind: LinkLocal, GBs: 1300, LatencyUS: 1} // device-to-device copy within one GPU
)

// DeviceID identifies a GPU within a Topology.
type DeviceID int

// Device is one GPU in the cluster.
type Device struct {
	ID   DeviceID
	Spec Spec
	// NUMA is the NUMA node the device attaches to.
	NUMA int
	// NVLinkPeer is the device this GPU shares an NVLink bridge with, or
	// -1 if none.
	NVLinkPeer DeviceID
}

// Topology is a cluster of GPUs and the rules for routing between them.
type Topology struct {
	Devices []Device
	// links maps kind → spec so alternative hardware can be configured.
	links map[LinkKind]LinkSpec
}

// NewTopology builds a topology over devices using the default link specs.
func NewTopology(devices []Device) *Topology {
	t := &Topology{
		Devices: devices,
		links: map[LinkKind]LinkSpec{
			LinkNVLink:      NVLinkBridge,
			LinkPCIeSwitch:  PCIeGen4,
			LinkRootComplex: RootComplex,
			LinkLocal:       SameDevice,
			LinkHostPCIe:    HostPCIe,
		},
	}
	return t
}

// PaperTestbed returns the 8×A800 dual-NUMA topology of the paper's Fig. 9:
// devices 0..3 on NUMA 0, 4..7 on NUMA 1, NVLink bridges between pairs
// (0,1), (2,3), (4,5), (6,7).
func PaperTestbed() *Topology {
	devs := make([]Device, 8)
	for i := range devs {
		peer := i ^ 1 // pairwise bridges
		devs[i] = Device{ID: DeviceID(i), Spec: A800, NUMA: i / 4, NVLinkPeer: DeviceID(peer)}
	}
	return NewTopology(devs)
}

// MixedTestbed returns a heterogeneous node (the paper's §7 proposal):
// nA GPUs of specA followed by nB GPUs of specB, all on one NUMA node.
// Devices are NVLink-paired within each group only when the spec supports
// NVLink (consumer cards like the RTX 4090 do not — withNVLinkA/B).
func MixedTestbed(specA Spec, nA int, withNVLinkA bool, specB Spec, nB int, withNVLinkB bool) *Topology {
	devs := make([]Device, 0, nA+nB)
	add := func(spec Spec, n int, nvlink bool, base int) {
		for i := 0; i < n; i++ {
			peer := DeviceID(-1)
			if nvlink {
				p := i ^ 1
				if p < n {
					peer = DeviceID(base + p)
				}
			}
			devs = append(devs, Device{ID: DeviceID(base + i), Spec: spec, NUMA: 0, NVLinkPeer: peer})
		}
	}
	add(specA, nA, withNVLinkA, 0)
	add(specB, nB, withNVLinkB, nA)
	return NewTopology(devs)
}

// HomogeneousTestbed returns n GPUs of the given spec on one NUMA node with
// NVLink between adjacent pairs, for smaller experiments.
func HomogeneousTestbed(n int, spec Spec) *Topology {
	devs := make([]Device, n)
	for i := range devs {
		peer := i ^ 1
		if peer >= n {
			peer = -1
		}
		devs[i] = Device{ID: DeviceID(i), Spec: spec, NUMA: 0, NVLinkPeer: DeviceID(peer)}
	}
	return NewTopology(devs)
}

// SetLink overrides the spec used for one link kind.
func (t *Topology) SetLink(kind LinkKind, spec LinkSpec) { t.links[kind] = spec }

// Link returns the spec for a link kind.
func (t *Topology) Link(kind LinkKind) LinkSpec { return t.links[kind] }

// NumDevices returns the number of GPUs.
func (t *Topology) NumDevices() int { return len(t.Devices) }

// Device returns the device with the given id.
func (t *Topology) Device(id DeviceID) Device {
	return t.Devices[int(id)]
}

// PathBetween classifies the interconnect path from src to dst:
// same device → local; NVLink-bridged pair → NVLink; same NUMA → PCIe
// switch; otherwise → root complex.
func (t *Topology) PathBetween(src, dst DeviceID) LinkSpec {
	if src == dst {
		return t.links[LinkLocal]
	}
	s, d := t.Device(src), t.Device(dst)
	if s.NVLinkPeer == dst {
		return t.links[LinkNVLink]
	}
	if s.NUMA == d.NUMA {
		return t.links[LinkPCIeSwitch]
	}
	return t.links[LinkRootComplex]
}

// HostPath returns the GPU↔host link used for swapping.
func (t *Topology) HostPath() LinkSpec { return t.links[LinkHostPCIe] }

// BestPairLink returns the fastest link between any device in group a and
// any device in group b — the path a cross-instance KV transfer will use
// when instances span multiple GPUs (rank-aligned transfers pick the best
// available pairing).
func (t *Topology) BestPairLink(a, b []DeviceID) LinkSpec {
	best := LinkSpec{GBs: -1}
	for _, s := range a {
		for _, d := range b {
			if s == d {
				continue
			}
			l := t.PathBetween(s, d)
			if l.GBs > best.GBs {
				best = l
			}
		}
	}
	if best.GBs < 0 {
		return t.links[LinkLocal]
	}
	return best
}

func (t *Topology) String() string {
	s := fmt.Sprintf("topology: %d devices\n", len(t.Devices))
	for _, d := range t.Devices {
		s += fmt.Sprintf("  gpu%-2d %-9s NUMA%d nvlink-peer=%d\n", d.ID, d.Spec.Name, d.NUMA, d.NVLinkPeer)
	}
	s += fmt.Sprintf("  links: NVLink %.0f GB/s, PCIe %.0f GB/s, root-complex %.0f GB/s, host %.0f GB/s",
		t.links[LinkNVLink].GBs, t.links[LinkPCIeSwitch].GBs, t.links[LinkRootComplex].GBs, t.links[LinkHostPCIe].GBs)
	return s
}
