package shard

import (
	"fmt"
	"strings"
	"testing"

	"windserve/internal/sim"
)

// hopMsg is the synthetic workload: a token bouncing between actors,
// burning one hop per delivery.
type hopMsg struct {
	token int
	hops  int
}

// buildRing wires nActors over nShards (actor a on shard a%nShards).
// Each delivery appends to the actor's trace and forwards the token to
// (a+1)%nActors with a delay that varies by token, plus schedules a local
// event to exercise native/delivered interleaving. Returns the per-actor
// traces, merged in actor order after the run.
func runRing(t *testing.T, nShards, nActors int, parallel bool, mode LookaheadMode) string {
	t.Helper()
	const L = sim.Duration(0.5)
	g := NewGroup[hopMsg](nShards, L)
	g.SetMode(mode)
	g.GrowActors(nActors)
	traces := make([][]string, nActors)
	shardOf := func(a int) int { return a % nShards }
	for i := 0; i < nShards; i++ {
		sh := g.Shard(i)
		sh.OnMessage(func(src int, m hopMsg) {
			// Identify the receiving actor from the token's path.
			a := (src + 1) % nActors
			traces[a] = append(traces[a],
				fmt.Sprintf("recv a%d t=%.6f src=%d tok=%d hops=%d", a, sh.Sim().Now(), src, m.token, m.hops))
			sh.Sim().Schedule(0.1, func() {
				traces[a] = append(traces[a], fmt.Sprintf("local a%d t=%.6f tok=%d", a, sh.Sim().Now(), m.token))
			})
			if m.hops > 0 {
				d := L * sim.Duration(1+m.token%3)
				sh.Send(shardOf((a+1)%nActors), a, d, hopMsg{token: m.token, hops: m.hops - 1})
			}
		})
	}
	// Seed: each actor launches one token at a staggered start time.
	for a := 0; a < nActors; a++ {
		a := a
		sh := g.Shard(shardOf(a))
		sh.Sim().At(sim.Time(a)*0.3, func() {
			traces[a] = append(traces[a], fmt.Sprintf("seed a%d t=%.6f", a, sh.Sim().Now()))
			sh.Send(shardOf((a+1)%nActors), a, L, hopMsg{token: a, hops: 12})
		})
	}
	g.Run(parallel)
	var b strings.Builder
	for a := 0; a < nActors; a++ {
		for _, line := range traces[a] {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestByteIdentityAcrossShardCounts is the core determinism property: the
// merged trace must be identical at every shard count, sequential or
// parallel, in both lookahead modes.
func TestByteIdentityAcrossShardCounts(t *testing.T) {
	const actors = 7
	want := runRing(t, 1, actors, false, Adaptive)
	if !strings.Contains(want, "recv") {
		t.Fatalf("reference run produced no deliveries:\n%s", want)
	}
	for _, mode := range []LookaheadMode{Adaptive, FixedGrid} {
		for _, shards := range []int{1, 2, 3, 4, 7} {
			for _, parallel := range []bool{false, true} {
				got := runRing(t, shards, actors, parallel, mode)
				if got != want {
					t.Errorf("mode=%v shards=%d parallel=%v diverged from sequential run", mode, shards, parallel)
				}
			}
		}
	}
}

// TestAdaptiveCutsCrossings: on a sparse workload where activity hops
// between shards separated by idle gaps much wider than L, the adaptive
// barrier must cross far fewer times than the fixed grid (that is its
// entire purpose), while producing the same trace.
func TestAdaptiveCutsCrossings(t *testing.T) {
	run := func(mode LookaheadMode) (string, Stats) {
		const L = sim.Duration(0.5)
		g := NewGroup[hopMsg](2, L)
		g.SetMode(mode)
		g.GrowActors(2)
		var trace strings.Builder
		for i := 0; i < 2; i++ {
			sh := g.Shard(i)
			sh.OnMessage(func(src int, m hopMsg) {
				fmt.Fprintf(&trace, "recv t=%.6f src=%d hops=%d\n", sh.Sim().Now(), src, m.hops)
				if m.hops > 0 {
					// ~40L of idle virtual time between hops.
					sh.Send(1-sh.Index(), 1-src, 20, hopMsg{hops: m.hops - 1})
				}
			})
		}
		g.Shard(0).Sim().At(0, func() { g.Shard(0).Send(1, 0, 20, hopMsg{hops: 30}) })
		g.Run(false)
		return trace.String(), g.Stats()
	}
	aTrace, aStats := run(Adaptive)
	fTrace, fStats := run(FixedGrid)
	if aTrace != fTrace {
		t.Fatalf("adaptive trace diverged from fixed grid:\n%s\nvs\n%s", aTrace, fTrace)
	}
	if aStats.Crossings*3 > fStats.Crossings {
		t.Errorf("adaptive crossings %d not >=3x below fixed %d", aStats.Crossings, fStats.Crossings)
	}
	if aStats.Windows != aStats.Crossings+aStats.SoloWindows {
		t.Errorf("stats identity broken: %+v", aStats)
	}
	if aStats.Delivered != fStats.Delivered || aStats.Delivered == 0 {
		t.Errorf("delivered mismatch: adaptive %d fixed %d", aStats.Delivered, fStats.Delivered)
	}
}

// TestEndCap checks SetEnd matches sequential Run semantics: events at
// <= end fire, later ones stay pending, and LastFired reflects the last
// event actually executed.
func TestEndCap(t *testing.T) {
	g := NewGroup[int](2, 1)
	g.GrowActors(2)
	var fired []sim.Time
	for i := 0; i < 2; i++ {
		sh := g.Shard(i)
		sh.OnMessage(func(src int, m int) {})
		for _, at := range []sim.Time{0.25, 3.75, 9.5, 20} {
			at := at
			s := sh.Sim()
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
	}
	g.SetEnd(9.5)
	g.Run(false)
	if len(fired) != 6 {
		t.Fatalf("fired %d events, want 6 (three per shard at <= 9.5): %v", len(fired), fired)
	}
	if !g.AnyPending() {
		t.Fatal("events at t=20 should remain pending past the cap")
	}
	if lf := g.LastFired(); lf != 9.5 {
		t.Fatalf("LastFired = %v, want 9.5", lf)
	}
}

// TestWindowSkipping: sparse events separated by huge gaps must all fire
// without executing one barrier per lookahead of empty virtual time.
func TestWindowSkipping(t *testing.T) {
	g := NewGroup[int](2, sim.Duration(0.001))
	g.GrowActors(2)
	var got []string
	for i := 0; i < 2; i++ {
		i := i
		sh := g.Shard(i)
		sh.OnMessage(func(src int, m int) {
			got = append(got, fmt.Sprintf("msg shard=%d t=%.3f v=%d", i, sh.Sim().Now(), m))
		})
	}
	s0 := g.Shard(0).Sim()
	s0.At(1e6, func() {
		got = append(got, fmt.Sprintf("fire t=%.0f", s0.Now()))
		g.Shard(0).Send(1, 0, 0.001, 42)
	})
	g.Run(false)
	want := []string{"fire t=1000000", "msg shard=1 t=1000000.001 v=42"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

// TestLookaheadViolationPanics: sending below the lookahead must panic —
// it silently breaks causality otherwise.
func TestLookaheadViolationPanics(t *testing.T) {
	g := NewGroup[int](2, 1)
	g.GrowActors(1)
	g.Shard(0).OnMessage(func(int, int) {})
	g.Shard(1).OnMessage(func(int, int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Send with delay below lookahead did not panic")
		}
	}()
	g.Shard(0).Sim().At(0, func() { g.Shard(0).Send(1, 0, 0.5, 1) })
	g.Run(false)
}

// BenchmarkBarrierCrossing measures a steady-state window + barrier with
// empty mailboxes across 4 shards — the hot path of a sharded run. The CI
// alloc-budget job gates this at 0 allocs/op.
func BenchmarkBarrierCrossing(b *testing.B) {
	g := NewGroup[int](4, 1)
	for i := 0; i < 4; i++ {
		sh := g.Shard(i)
		sh.OnMessage(func(int, int) {})
		s := sh.Sim()
		var tick func()
		tick = func() { s.Schedule(0.5, tick) }
		s.Schedule(0.5, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	end := sim.Time(0)
	for i := 0; i < b.N; i++ {
		end++
		g.runAll(false, windowCmd{end: end})
		g.deliver()
	}
}

// BenchmarkShardBarrierIdle measures an adaptive solo-window step: only
// one shard has events, so the coordinator derives the window end, runs
// the active shard, parks the idle shards' clocks, and sweeps empty
// outboxes — no worker handshake, and (CI-gated) no allocation.
func BenchmarkShardBarrierIdle(b *testing.B) {
	g := NewGroup[int](4, 1)
	for i := 0; i < 4; i++ {
		g.Shard(i).OnMessage(func(int, int) {})
	}
	s := g.Shard(0).Sim()
	var tick func()
	tick = func() { s.Schedule(0.5, tick) }
	s.Schedule(0.5, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !g.step(false) {
			b.Fatal("idle step drained")
		}
	}
	st := g.Stats()
	if st.Crossings != 0 || st.SoloWindows != int64(b.N) {
		b.Fatalf("expected all-solo windows, got %+v after %d steps", st, b.N)
	}
}

// BenchmarkBarrierMessages measures a window + barrier where every shard
// sends one message per window — the loaded steady state.
func BenchmarkBarrierMessages(b *testing.B) {
	const n = 4
	g := NewGroup[int](n, 1)
	g.GrowActors(n)
	for i := 0; i < n; i++ {
		i := i
		sh := g.Shard(i)
		sh.OnMessage(func(int, int) {})
		s := sh.Sim()
		var tick func()
		tick = func() {
			sh.Send((i+1)%n, i, 1, 7)
			s.Schedule(0.5, tick)
		}
		s.Schedule(0.5, tick)
	}
	b.ReportAllocs()
	b.ResetTimer()
	end := sim.Time(0)
	for i := 0; i < b.N; i++ {
		end++
		g.runAll(false, windowCmd{end: end})
		g.deliver()
	}
}
