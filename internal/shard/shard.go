// Package shard runs N sim.Simulator instances in lockstep windows with a
// conservative lookahead barrier, so loosely-coupled actors (fleet router,
// replicas) can be simulated on separate goroutines while producing output
// byte-identical to a single sequential event loop.
//
// # Model
//
// Time is cut into windows whose width is bounded by the lookahead L — the
// minimum virtual latency of any cross-shard message. Every shard executes
// the same window concurrently, each on its own simulator. Actors within a
// window communicate across shards only via Send, which requires
// delay >= L: a message sent at t inside a window ending at wend satisfies
// t >= tmin (the global minimum pending event time when the window was
// opened) and therefore delivers at t+delay >= tmin+L >= wend, i.e. never
// inside the window being executed, so no shard can observe an effect
// before the barrier that publishes it.
//
// Window ends are derived in one of two modes. Adaptive (the default)
// uses the Chandy–Misra earliest-output-time bound directly: outboxes are
// empty at every window start, so no shard can emit a cross-shard effect
// before tmin+L, and the window runs to exactly wend = tmin+L. FixedGrid
// (the original model) aligns wend to the fixed grid of [kL, (k+1)L)
// windows containing tmin. Both ends are functions of (tmin, L) only —
// global, shard-count-invariant quantities — so the window sequence, and
// therefore all output, is identical at any shard count. Adaptive mode
// additionally skips the worker barrier for windows whose in-window
// events all live on a single shard: the coordinating goroutine executes
// the window itself (workers stay parked between channel handshakes, so
// the access is ordered), which turns idle-heavy stretches from one
// barrier per window into none.
//
// At each barrier the group gathers every shard's outbox, sorts each
// destination's inbound messages by (deliverAt, sentAt, srcActor, srcSeq),
// and schedules them on the destination simulator. The sort key is built
// only from per-actor quantities — never from shard indices — so the merged
// order (and therefore every downstream event sequence) is identical at any
// shard count, including 1. Empty stretches are skipped by deriving the
// next window from the earliest pending event, so sparse periods cost one
// min-scan, not one barrier per L of virtual time.
package shard

import (
	"fmt"
	"math"
	"slices"

	"windserve/internal/sim"
)

// LookaheadMode selects how window ends are derived from the global state.
type LookaheadMode int

const (
	// Adaptive derives each window end as tmin + L — the Chandy–Misra
	// earliest-output-time bound over all shards (outboxes are empty at
	// window start, so shard i cannot emit before NextAt_i + L, and the
	// minimum over shards is tmin + L). Quiet stretches are crossed in
	// one window instead of ⌈gap/L⌉ grid steps, and single-shard windows
	// skip the worker barrier entirely.
	Adaptive LookaheadMode = iota
	// FixedGrid steps the fixed grid of [kL, (k+1)L) windows. Kept as a
	// fallback and as the baseline for the adaptive-vs-fixed digest
	// equality gate.
	FixedGrid
)

// Stats counts window and barrier work performed by Run. Windows =
// Crossings + SoloWindows. The counts depend on the shard count and
// lookahead mode (that is their purpose) and must therefore never be
// folded into digested simulation output.
type Stats struct {
	Windows     int64 // windows executed in total
	Crossings   int64 // windows synchronized across all shards (full barrier)
	SoloWindows int64 // windows run on the coordinator: all events on one shard
	Delivered   int64 // cross-shard envelopes delivered at barriers
}

// envelope is one cross-shard message in flight.
type envelope[M any] struct {
	at     sim.Time // delivery time (sentAt + delay)
	sentAt sim.Time
	actor  int    // sending actor id — stable across shard counts
	seq    uint64 // per-sending-actor sequence number
	dst    int    // destination shard
	m      M
}

// Handler consumes a delivered message on the destination shard, in the
// destination simulator's event context at the message's delivery time.
type Handler[M any] func(srcActor int, m M)

// Shard is one partition: a simulator plus mailboxes. All methods must be
// called from the shard's own goroutine (i.e. from within its events).
type Shard[M any] struct {
	g       *Group[M]
	idx     int
	sim     *sim.Simulator
	handler Handler[M]
	outbox  []envelope[M]
	inbox   []envelope[M] // barrier scratch, owned by the coordinator
}

// Sim returns the shard's simulator.
func (sh *Shard[M]) Sim() *sim.Simulator { return sh.sim }

// Index returns the shard's index within the group.
func (sh *Shard[M]) Index() int { return sh.idx }

// OnMessage installs the delivery handler. Must be set before Run.
func (sh *Shard[M]) OnMessage(h Handler[M]) { sh.handler = h }

// Send queues a message from actor (a caller-chosen id, unique across the
// whole group and stable across shard counts) for delivery on shard dst
// after delay. delay must be >= the group lookahead — that inequality is
// the entire correctness argument, so violating it panics.
func (sh *Shard[M]) Send(dst, actor int, delay sim.Duration, m M) {
	if sim.Time(delay) < sim.Time(sh.g.lookahead) {
		panic(fmt.Sprintf("shard: message delay %v below lookahead %v", delay, sh.g.lookahead))
	}
	now := sh.sim.Now()
	sh.outbox = append(sh.outbox, envelope[M]{
		at:     now.Add(delay),
		sentAt: now,
		actor:  actor,
		seq:    sh.g.actorSeq[actor],
		dst:    dst,
		m:      m,
	})
	sh.g.actorSeq[actor]++
}

// Group coordinates N shards through lockstep windows.
type Group[M any] struct {
	lookahead sim.Duration
	shards    []*Shard[M]
	// actorSeq numbers each actor's sends. Indexed lazily (grown on
	// first use); an actor lives on exactly one shard, and barriers
	// order cross-goroutine access, so no locking is needed.
	actorSeq []uint64
	end      sim.Time
	endSet   bool
	mode     LookaheadMode
	stats    Stats

	// Persistent window workers for shards 1..N-1 (shard 0 runs on the
	// coordinating goroutine). Nil until Run starts them.
	work []chan windowCmd
	done chan struct{}
}

type windowCmd struct {
	end       sim.Time
	inclusive bool // final partial window: fire events at <= end
}

// NewGroup builds a group of n shards (n >= 1) with the given lookahead
// (> 0): the minimum virtual latency of any cross-shard message.
func NewGroup[M any](n int, lookahead sim.Duration) *Group[M] {
	if n < 1 {
		panic("shard: need at least one shard")
	}
	if lookahead <= 0 {
		panic("shard: lookahead must be positive")
	}
	g := &Group[M]{lookahead: lookahead}
	for i := 0; i < n; i++ {
		g.shards = append(g.shards, &Shard[M]{g: g, idx: i, sim: sim.New()})
	}
	return g
}

// Shards returns the number of shards.
func (g *Group[M]) Shards() int { return len(g.shards) }

// Shard returns shard i.
func (g *Group[M]) Shard(i int) *Shard[M] { return g.shards[i] }

// Lookahead returns the group lookahead.
func (g *Group[M]) Lookahead() sim.Duration { return g.lookahead }

// SetMode selects the lookahead mode. Call before Run; the default is
// Adaptive.
func (g *Group[M]) SetMode(m LookaheadMode) { g.mode = m }

// Mode returns the lookahead mode.
func (g *Group[M]) Mode() LookaheadMode { return g.mode }

// Stats returns window/barrier counters accumulated by Run. They describe
// wall-clock work only — virtual-time output is independent of them.
func (g *Group[M]) Stats() Stats { return g.stats }

// GrowActors pre-sizes the per-actor sequence table for actor ids < n.
func (g *Group[M]) GrowActors(n int) {
	for len(g.actorSeq) < n {
		g.actorSeq = append(g.actorSeq, 0)
	}
}

// SetEnd caps the run at t (inclusive), mirroring a sequential
// Simulator.Run(t): events at <= t fire, later ones stay pending. Call it
// before Run or from within shard 0's events (shard 0 executes on the
// coordinating goroutine, so no synchronization is needed); the lowest
// value wins.
func (g *Group[M]) SetEnd(t sim.Time) {
	if g.endSet && g.end <= t {
		return
	}
	g.end, g.endSet = t, true
}

// AnyPending reports whether any shard still has undelivered events
// (meaningful after Run returns with an end cap).
func (g *Group[M]) AnyPending() bool {
	for _, sh := range g.shards {
		if sh.sim.Pending() > 0 {
			return true
		}
	}
	return false
}

// LastFired returns the latest event time fired on any shard.
func (g *Group[M]) LastFired() sim.Time {
	var t sim.Time
	for _, sh := range g.shards {
		if lf := sh.sim.LastFired(); lf > t {
			t = lf
		}
	}
	return t
}

// Run executes windows until every shard drains or the end cap is
// reached. With parallel true, shards 1..N-1 run on persistent worker
// goroutines and the calling goroutine runs shard 0; barriers are
// channel-synchronized, so all cross-shard memory access is ordered.
// With parallel false (or one shard), everything runs on the caller.
func (g *Group[M]) Run(parallel bool) {
	parallel = parallel && len(g.shards) > 1
	if parallel {
		g.startWorkers()
		defer g.stopWorkers()
	}
	for g.step(parallel) {
	}
}

// step derives and executes the next window; it reports false when every
// shard has drained or the end cap is reached. The window end is a
// function of (tmin, L, end) only — all global, shard-count-invariant
// quantities — which is the whole invariance argument: the window
// sequence, and hence every simulator's event sequence, is identical at
// any shard count and in any execution mode.
func (g *Group[M]) step(parallel bool) bool {
	tmin, any := sim.Time(0), false
	for _, sh := range g.shards {
		if t, ok := sh.sim.NextAt(); ok && (!any || t < tmin) {
			tmin, any = t, true
		}
	}
	if !any || (g.endSet && tmin > g.end) {
		return false
	}
	L := sim.Time(g.lookahead)
	var wend sim.Time
	if g.mode == FixedGrid {
		// Jump to the grid window containing tmin; every executed
		// window fires at least one event. When tmin sits on a grid
		// boundary within float rounding, tmin/L can round down and
		// leave tmin at (not before) wend — bump until the window
		// strictly contains it. wend <= tmin + L keeps every in-window
		// send (sentAt >= tmin) delivering at >= sentAt + L >= wend,
		// outside the window.
		k := sim.Time(int64(tmin / L))
		wend = (k + 1) * L
		for wend <= tmin {
			k++
			wend = (k + 1) * L
		}
	} else {
		// Adaptive: the earliest-output-time bound. No shard can emit a
		// cross-shard effect before tmin + L (outboxes are empty here,
		// and any in-window send has sentAt >= tmin, delay >= L), so
		// the window safely runs all the way to wend = tmin + L — one
		// window per event cluster instead of one per grid cell. When
		// L underflows an ulp of tmin, widen to the next representable
		// time so the window still contains tmin.
		wend = tmin + L
		if wend <= tmin {
			wend = sim.Time(math.Nextafter(float64(tmin), math.Inf(1)))
		}
	}
	cmd := windowCmd{end: wend}
	last := false
	if g.endSet && wend > g.end {
		// Final partial window [tmin, end]. Any message sent here has
		// sentAt >= tmin, so it delivers at >= tmin + L = wend > end:
		// the cap drops it, exactly as a sequential run would leave its
		// delivery pending past the horizon.
		cmd = windowCmd{end: g.end, inclusive: true}
		last = true
	}
	g.stats.Windows++
	if g.mode == Adaptive && g.activeShards(cmd) <= 1 {
		// Every in-window event lives on one shard: execute the window
		// on the coordinating goroutine without waking the workers.
		// Idle shards still get their clocks parked at the window end
		// (a peek plus an assignment each), so per-shard state after a
		// solo window is indistinguishable from a full barrier — only
		// the synchronization is skipped. Workers are parked between
		// channel handshakes, so the coordinator's access is ordered.
		g.stats.SoloWindows++
		g.runAll(false, cmd)
	} else {
		g.stats.Crossings++
		g.runAll(parallel, cmd)
	}
	if last {
		return false
	}
	g.deliver()
	return true
}

// activeShards counts shards holding at least one event inside the window.
func (g *Group[M]) activeShards(cmd windowCmd) int {
	n := 0
	for _, sh := range g.shards {
		if t, ok := sh.sim.NextAt(); ok && (t < cmd.end || (cmd.inclusive && t <= cmd.end)) {
			n++
		}
	}
	return n
}

// runAll executes one window on every shard.
func (g *Group[M]) runAll(parallel bool, cmd windowCmd) {
	if parallel {
		for _, ch := range g.work {
			ch <- cmd
		}
		g.shards[0].runWindow(cmd)
		for range g.work {
			<-g.done
		}
		return
	}
	for _, sh := range g.shards {
		sh.runWindow(cmd)
	}
}

func (sh *Shard[M]) runWindow(cmd windowCmd) {
	if cmd.inclusive {
		sh.sim.Run(cmd.end)
	} else {
		sh.sim.RunWindow(cmd.end)
	}
}

// deliver is the barrier: move every outbox message to its destination,
// order each destination's batch canonically, and schedule deliveries.
// Runs on the coordinating goroutine between windows; steady-state
// crossings with empty mailboxes do not allocate.
func (g *Group[M]) deliver() {
	for _, src := range g.shards {
		for _, env := range src.outbox {
			dst := g.shards[env.dst]
			dst.inbox = append(dst.inbox, env)
		}
		src.outbox = src.outbox[:0]
	}
	for _, dst := range g.shards {
		if len(dst.inbox) == 0 {
			continue
		}
		g.stats.Delivered += int64(len(dst.inbox))
		// (deliverAt, sentAt, actor, seq): built from per-actor
		// quantities only, so the order is shard-count-invariant.
		slices.SortFunc(dst.inbox, func(a, b envelope[M]) int {
			switch {
			case a.at != b.at:
				if a.at < b.at {
					return -1
				}
				return 1
			case a.sentAt != b.sentAt:
				if a.sentAt < b.sentAt {
					return -1
				}
				return 1
			case a.actor != b.actor:
				return a.actor - b.actor
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			}
			return 0
		})
		h, s := dst.handler, dst.sim
		for _, env := range dst.inbox {
			env := env
			at := env.at
			// Guard against float rounding landing a delivery a
			// half-ulp inside the already-executed window. The clamp
			// is applied identically at every shard count, so it
			// cannot perturb cross-config determinism.
			if now := s.Now(); at < now {
				at = now
			}
			s.At(at, func() { h(env.actor, env.m) })
		}
		dst.inbox = dst.inbox[:0]
	}
}

func (g *Group[M]) startWorkers() {
	n := len(g.shards) - 1
	g.work = make([]chan windowCmd, n)
	g.done = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		ch := make(chan windowCmd)
		g.work[i] = ch
		sh := g.shards[i+1]
		go func() {
			for cmd := range ch {
				sh.runWindow(cmd)
				g.done <- struct{}{}
			}
		}()
	}
}

func (g *Group[M]) stopWorkers() {
	for _, ch := range g.work {
		close(ch)
	}
	g.work, g.done = nil, nil
}
