// Package model describes the transformer architectures WindServe serves
// (OPT and LLaMA2 families) and implements the per-layer FLOPs and IO-byte
// accounting of the paper's Table 1, which underlies both the simulated
// hardware timing (internal/perf) and the Global Scheduler's Profiler.
//
// Only architecture metadata is modelled — layer counts, hidden sizes,
// attention geometry, KV-cache footprint. No tensor math is performed.
package model

import "fmt"

// BytesFP16 is the storage size of one FP16 scalar; all paper experiments
// run FP16 weights and KV cache.
const BytesFP16 = 2

// AttentionKind distinguishes multi-head attention from grouped-query
// attention (LLaMA2-70B), which shrinks the KV cache and its transfer cost
// (paper §5.2).
type AttentionKind int

const (
	// MHA is standard multi-head attention (KV heads == query heads).
	MHA AttentionKind = iota
	// GQA is grouped-query attention (fewer KV heads).
	GQA
)

func (k AttentionKind) String() string {
	if k == GQA {
		return "GQA"
	}
	return "MHA"
}

// Config describes one decoder-only transformer.
type Config struct {
	// Name is the model's common name, e.g. "OPT-13B".
	Name string
	// Layers is the number of transformer blocks.
	Layers int
	// Hidden is the model (embedding) dimension H.
	Hidden int
	// Heads is the number of query heads.
	Heads int
	// KVHeads is the number of key/value heads (== Heads for MHA).
	KVHeads int
	// FFNDim is the FFN intermediate dimension (4H for OPT; larger,
	// gated, for LLaMA2).
	FFNDim int
	// GatedFFN is true for SwiGLU-style FFNs with three weight matrices
	// (LLaMA2) instead of two (OPT).
	GatedFFN bool
	// MaxContext is the maximum supported context length in tokens
	// (2048 for OPT, 4096 for LLaMA2).
	MaxContext int
	// VocabSize is the vocabulary size (embedding/LM-head weights).
	VocabSize int
}

// Built-in configs for the models evaluated in the paper.
var (
	OPT13B = Config{
		Name: "OPT-13B", Layers: 40, Hidden: 5120, Heads: 40, KVHeads: 40,
		FFNDim: 20480, MaxContext: 2048, VocabSize: 50272,
	}
	OPT30B = Config{
		Name: "OPT-30B", Layers: 48, Hidden: 7168, Heads: 56, KVHeads: 56,
		FFNDim: 28672, MaxContext: 2048, VocabSize: 50272,
	}
	OPT66B = Config{
		Name: "OPT-66B", Layers: 64, Hidden: 9216, Heads: 72, KVHeads: 72,
		FFNDim: 36864, MaxContext: 2048, VocabSize: 50272,
	}
	LLaMA213B = Config{
		Name: "LLaMA2-13B", Layers: 40, Hidden: 5120, Heads: 40, KVHeads: 40,
		FFNDim: 13824, GatedFFN: true, MaxContext: 4096, VocabSize: 32000,
	}
	LLaMA270B = Config{
		Name: "LLaMA2-70B", Layers: 80, Hidden: 8192, Heads: 64, KVHeads: 8,
		FFNDim: 28672, GatedFFN: true, MaxContext: 4096, VocabSize: 32000,
	}
)

// ByName returns a built-in config by its Name, or an error.
func ByName(name string) (Config, error) {
	for _, c := range []Config{OPT13B, OPT30B, OPT66B, LLaMA213B, LLaMA270B} {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// Attention returns MHA or GQA based on head counts.
func (c Config) Attention() AttentionKind {
	if c.KVHeads < c.Heads {
		return GQA
	}
	return MHA
}

// HeadDim returns the per-head dimension H / Heads.
func (c Config) HeadDim() int { return c.Hidden / c.Heads }

// KVDim returns the total key (or value) projection width
// KVHeads · HeadDim; equals Hidden for MHA.
func (c Config) KVDim() int { return c.KVHeads * c.HeadDim() }

// KVBytesPerToken returns the KV-cache footprint of one token across all
// layers: 2 tensors (K and V) × KVDim × FP16 × Layers.
//
// For OPT-13B this is ~0.78 MiB/token, i.e. ~1.6 GB for a 2048-token
// context — the paper's "~1.5 GB" example in §2.2.
func (c Config) KVBytesPerToken() float64 {
	return float64(2*c.KVDim()*BytesFP16) * float64(c.Layers)
}

// KVBytesPerTokenLayer returns the per-layer KV footprint of one token.
func (c Config) KVBytesPerTokenLayer() float64 {
	return float64(2 * c.KVDim() * BytesFP16)
}

// attnParams returns attention weight parameters per layer:
// Q and output projections (H×H each) plus K and V projections (H×KVDim).
func (c Config) attnParams() float64 {
	h := float64(c.Hidden)
	return 2*h*h + 2*h*float64(c.KVDim())
}

// ffnParams returns FFN weight parameters per layer: two matrices H×F
// (OPT) or three (gated LLaMA2).
func (c Config) ffnParams() float64 {
	mats := 2.0
	if c.GatedFFN {
		mats = 3
	}
	return mats * float64(c.Hidden) * float64(c.FFNDim)
}

// ParamsPerLayer returns weight parameters in one transformer block.
func (c Config) ParamsPerLayer() float64 { return c.attnParams() + c.ffnParams() }

// TotalParams approximates total parameters including embeddings.
func (c Config) TotalParams() float64 {
	return c.ParamsPerLayer()*float64(c.Layers) + float64(c.VocabSize*c.Hidden)
}

// WeightBytes returns total FP16 weight bytes for the model.
func (c Config) WeightBytes() float64 { return c.TotalParams() * BytesFP16 }

// WeightBytesPerLayer returns FP16 weight bytes for one block.
func (c Config) WeightBytesPerLayer() float64 { return c.ParamsPerLayer() * BytesFP16 }

// LayerCost carries the Table 1 accounting for one transformer block.
type LayerCost struct {
	// AttnFLOPs and FFNFLOPs are floating-point operations.
	AttnFLOPs, FFNFLOPs float64
	// AttnIOBytes and FFNIOBytes are HBM traffic: weight reads plus, for
	// decode attention, KV-cache reads.
	AttnIOBytes, FFNIOBytes float64
}

// FLOPs returns total FLOPs for the block.
func (lc LayerCost) FLOPs() float64 { return lc.AttnFLOPs + lc.FFNFLOPs }

// IOBytes returns total HBM bytes moved for the block.
func (lc LayerCost) IOBytes() float64 { return lc.AttnIOBytes + lc.FFNIOBytes }

// PrefillLayerCost returns per-layer cost of prefilling n tokens
// (paper Table 1, prefill column):
//
//	Attn FLOPs = 8NH² + 4N²H   (projections + score/value matmuls; GQA
//	                            scales the KV projections)
//	FFN  FLOPs = 16NH²          (OPT: two H×4H matmuls)
//
// Prefill is compute-bound; IO bytes are the weight reads (amortized over
// the N tokens in one pass) plus activation traffic ≈ weights only, as in
// Table 1's FFN entry 16H².
func (c Config) PrefillLayerCost(n int) LayerCost {
	nf := float64(n)
	h := float64(c.Hidden)
	// Projections: 2 FLOPs per weight per token.
	proj := 2 * nf * c.attnParams()
	// Attention score (QKᵀ) and value (PV) matmuls: 2·N²·H each.
	score := 4 * nf * nf * h
	ffn := 2 * nf * c.ffnParams()
	return LayerCost{
		AttnFLOPs:   proj + score,
		FFNFLOPs:    ffn,
		AttnIOBytes: c.attnParams() * BytesFP16,
		FFNIOBytes:  c.ffnParams() * BytesFP16,
	}
}

// DecodeLayerCost returns per-layer cost of one decode step for a batch of
// b requests whose context lengths sum to sumCtx (paper Table 1, decode
// column):
//
//	Attn FLOPs = 8BH² + 4·ΣL·H
//	FFN  FLOPs = 16BH²
//	IO bytes   = weight reads (24H² for OPT) + KV reads 4·ΣL·H
//
// Decode is IO-bound: the weight and KV reads dominate.
func (c Config) DecodeLayerCost(b int, sumCtx int) LayerCost {
	bf, lf := float64(b), float64(sumCtx)
	h := float64(c.Hidden)
	kvRatio := float64(c.KVDim()) / h // GQA shrinks KV read/write traffic
	proj := 2 * bf * c.attnParams()
	score := 4 * lf * h * kvRatio // attend over ΣL cached tokens
	ffn := 2 * bf * c.ffnParams()
	return LayerCost{
		AttnFLOPs:   proj + score,
		FFNFLOPs:    ffn,
		AttnIOBytes: c.attnParams()*BytesFP16 + 4*lf*h*kvRatio,
		FFNIOBytes:  c.ffnParams() * BytesFP16,
	}
}

// PrefillCost returns whole-model cost of prefilling n tokens.
func (c Config) PrefillCost(n int) LayerCost { return c.scale(c.PrefillLayerCost(n)) }

// DecodeCost returns whole-model cost of one decode step.
func (c Config) DecodeCost(b, sumCtx int) LayerCost { return c.scale(c.DecodeLayerCost(b, sumCtx)) }

func (c Config) scale(lc LayerCost) LayerCost {
	l := float64(c.Layers)
	return LayerCost{
		AttnFLOPs:   lc.AttnFLOPs * l,
		FFNFLOPs:    lc.FFNFLOPs * l,
		AttnIOBytes: lc.AttnIOBytes * l,
		FFNIOBytes:  lc.FFNIOBytes * l,
	}
}

// Validate checks internal consistency of a config.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %s: non-positive layers", c.Name)
	case c.Hidden <= 0:
		return fmt.Errorf("model %s: non-positive hidden", c.Name)
	case c.Heads <= 0 || c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %s: heads %d must divide hidden %d", c.Name, c.Heads, c.Hidden)
	case c.KVHeads <= 0 || c.KVHeads > c.Heads || c.Heads%c.KVHeads != 0:
		return fmt.Errorf("model %s: invalid KV heads %d for %d heads", c.Name, c.KVHeads, c.Heads)
	case c.FFNDim <= 0:
		return fmt.Errorf("model %s: non-positive FFN dim", c.Name)
	case c.MaxContext <= 0:
		return fmt.Errorf("model %s: non-positive max context", c.Name)
	}
	return nil
}

func (c Config) String() string {
	return fmt.Sprintf("%s (L=%d H=%d heads=%d kv=%d ffn=%d %s ctx=%d)",
		c.Name, c.Layers, c.Hidden, c.Heads, c.KVHeads, c.FFNDim, c.Attention(), c.MaxContext)
}
