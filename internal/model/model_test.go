package model

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinConfigsValid(t *testing.T) {
	for _, c := range []Config{OPT13B, OPT30B, OPT66B, LLaMA213B, LLaMA270B} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestParameterCounts(t *testing.T) {
	// Total parameters should be within ~10% of the nameplate size.
	cases := []struct {
		cfg  Config
		want float64
	}{
		{OPT13B, 13e9},
		{OPT30B, 30e9},
		{OPT66B, 66e9},
		{LLaMA213B, 13e9},
		{LLaMA270B, 70e9},
	}
	for _, c := range cases {
		got := c.cfg.TotalParams()
		if ratio := got / c.want; ratio < 0.88 || ratio > 1.12 {
			t.Errorf("%s params = %.2fB, want ~%.0fB", c.cfg.Name, got/1e9, c.want/1e9)
		}
	}
}

func TestAttentionKind(t *testing.T) {
	if OPT13B.Attention() != MHA {
		t.Error("OPT-13B should be MHA")
	}
	if LLaMA270B.Attention() != GQA {
		t.Error("LLaMA2-70B should be GQA")
	}
	if MHA.String() != "MHA" || GQA.String() != "GQA" {
		t.Error("AttentionKind.String")
	}
}

func TestKVBytesMatchesPaperExample(t *testing.T) {
	// Paper §2.2: OPT-13B, 2048 tokens → ~1.5 GB of KV cache.
	gb := OPT13B.KVBytesPerToken() * 2048 / 1e9
	if gb < 1.4 || gb > 1.8 {
		t.Errorf("OPT-13B 2048-token KV = %.2f GB, want ~1.5-1.7 GB", gb)
	}
}

func TestGQAShrinksKV(t *testing.T) {
	// LLaMA2-70B has 8 KV heads vs 64 query heads → KV cache 8× smaller
	// than an MHA model of the same hidden size would have.
	mha := LLaMA270B
	mha.KVHeads = mha.Heads
	if ratio := mha.KVBytesPerToken() / LLaMA270B.KVBytesPerToken(); math.Abs(ratio-8) > 1e-9 {
		t.Errorf("GQA KV reduction = %.1f×, want 8×", ratio)
	}
}

func TestTable1PrefillFormulas(t *testing.T) {
	// For OPT (MHA, FFN=4H) Table 1 gives, per layer:
	//   Attn FLOPs = 8NH² + 4N²H, FFN FLOPs = 16NH², FFN IO = 16H².
	c := OPT13B
	h := float64(c.Hidden)
	for _, n := range []int{1, 128, 2048} {
		nf := float64(n)
		lc := c.PrefillLayerCost(n)
		wantAttn := 8*nf*h*h + 4*nf*nf*h
		if math.Abs(lc.AttnFLOPs-wantAttn)/wantAttn > 1e-12 {
			t.Errorf("n=%d attn FLOPs = %g, want %g", n, lc.AttnFLOPs, wantAttn)
		}
		wantFFN := 16 * nf * h * h
		if math.Abs(lc.FFNFLOPs-wantFFN)/wantFFN > 1e-12 {
			t.Errorf("n=%d ffn FLOPs = %g, want %g", n, lc.FFNFLOPs, wantFFN)
		}
		if want := 16 * h * h; math.Abs(lc.FFNIOBytes-want)/want > 1e-12 {
			t.Errorf("n=%d ffn IO = %g, want %g", n, lc.FFNIOBytes, want)
		}
	}
}

func TestTable1DecodeFormulas(t *testing.T) {
	// For OPT Table 1 gives, per layer:
	//   Attn FLOPs = 8BH² + 4·ΣL·H, FFN FLOPs = 16BH²,
	//   total IO = 24H² + 4·ΣL·H (weights + KV reads).
	c := OPT13B
	h := float64(c.Hidden)
	b, sum := 16, 16*1024
	lc := c.DecodeLayerCost(b, sum)
	bf, lf := float64(b), float64(sum)
	if want := 8*bf*h*h + 4*lf*h; math.Abs(lc.AttnFLOPs-want)/want > 1e-12 {
		t.Errorf("attn FLOPs = %g, want %g", lc.AttnFLOPs, want)
	}
	if want := 16 * bf * h * h; math.Abs(lc.FFNFLOPs-want)/want > 1e-12 {
		t.Errorf("ffn FLOPs = %g, want %g", lc.FFNFLOPs, want)
	}
	if want := 24*h*h + 4*lf*h; math.Abs(lc.IOBytes()-want)/want > 1e-12 {
		t.Errorf("total IO = %g, want %g", lc.IOBytes(), want)
	}
}

func TestDecodeIsIOBoundPrefillComputeBound(t *testing.T) {
	// Using A800-ish peak numbers (312 TFLOPS, 2039 GB/s): prefill
	// arithmetic intensity must exceed the machine balance point, decode
	// must fall below it.
	balance := 312e12 / 2039e9 // FLOPs per byte ≈ 153
	c := OPT13B
	p := c.PrefillLayerCost(512)
	if ai := p.FLOPs() / p.IOBytes(); ai < balance {
		t.Errorf("prefill arithmetic intensity %.0f < balance %.0f; should be compute-bound", ai, balance)
	}
	d := c.DecodeLayerCost(16, 16*1024)
	if ai := d.FLOPs() / d.IOBytes(); ai > balance {
		t.Errorf("decode arithmetic intensity %.0f > balance %.0f; should be IO-bound", ai, balance)
	}
}

func TestWholeModelScaling(t *testing.T) {
	c := OPT13B
	lc := c.PrefillLayerCost(100)
	full := c.PrefillCost(100)
	if math.Abs(full.FLOPs()-lc.FLOPs()*float64(c.Layers)) > 1 {
		t.Error("PrefillCost should scale layer cost by Layers")
	}
	d := c.DecodeLayerCost(4, 4000)
	fd := c.DecodeCost(4, 4000)
	if math.Abs(fd.IOBytes()-d.IOBytes()*float64(c.Layers)) > 1 {
		t.Error("DecodeCost should scale layer cost by Layers")
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("OPT-66B")
	if err != nil || c.Layers != 64 {
		t.Fatalf("ByName(OPT-66B) = %v, %v", c, err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("unknown model should error")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Name: "x", Layers: 0, Hidden: 4, Heads: 2, KVHeads: 2, FFNDim: 8, MaxContext: 10},
		{Name: "x", Layers: 2, Hidden: 0, Heads: 2, KVHeads: 2, FFNDim: 8, MaxContext: 10},
		{Name: "x", Layers: 2, Hidden: 5, Heads: 2, KVHeads: 2, FFNDim: 8, MaxContext: 10},  // heads don't divide
		{Name: "x", Layers: 2, Hidden: 4, Heads: 2, KVHeads: 3, FFNDim: 8, MaxContext: 10},  // kv > heads
		{Name: "x", Layers: 2, Hidden: 12, Heads: 4, KVHeads: 3, FFNDim: 8, MaxContext: 10}, // heads%kv != 0
		{Name: "x", Layers: 2, Hidden: 4, Heads: 2, KVHeads: 2, FFNDim: 0, MaxContext: 10},  // ffn
		{Name: "x", Layers: 2, Hidden: 4, Heads: 2, KVHeads: 2, FFNDim: 8, MaxContext: 0},   // ctx
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected error for %+v", i, c)
		}
	}
}

func TestHeadAndKVDims(t *testing.T) {
	if OPT13B.HeadDim() != 128 {
		t.Errorf("OPT-13B head dim = %d", OPT13B.HeadDim())
	}
	if LLaMA270B.HeadDim() != 128 {
		t.Errorf("LLaMA2-70B head dim = %d", LLaMA270B.HeadDim())
	}
	if LLaMA270B.KVDim() != 1024 {
		t.Errorf("LLaMA2-70B KV dim = %d, want 1024", LLaMA270B.KVDim())
	}
	if OPT13B.KVDim() != OPT13B.Hidden {
		t.Error("MHA KVDim should equal Hidden")
	}
}

func TestStringContainsEssentials(t *testing.T) {
	s := LLaMA270B.String()
	for _, want := range []string{"LLaMA2-70B", "GQA", "L=80"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q: %s", want, s)
		}
	}
}

// Property: costs are monotone in their inputs and non-negative.
func TestPropertyCostMonotone(t *testing.T) {
	f := func(a, b uint16) bool {
		n1, n2 := int(a%4096)+1, int(b%4096)+1
		if n1 > n2 {
			n1, n2 = n2, n1
		}
		c := OPT13B
		p1, p2 := c.PrefillLayerCost(n1), c.PrefillLayerCost(n2)
		if p1.FLOPs() > p2.FLOPs() || p1.FLOPs() <= 0 {
			return false
		}
		d1 := c.DecodeLayerCost(1, n1)
		d2 := c.DecodeLayerCost(1, n2)
		return d1.IOBytes() <= d2.IOBytes() && d1.IOBytes() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: decode FLOPs of a batch of b equals b× the projections of a
// single request plus the shared ΣL attention term (linearity check).
func TestPropertyDecodeLinearInBatch(t *testing.T) {
	f := func(a uint8) bool {
		b := int(a%32) + 1
		c := OPT13B
		withB := c.DecodeLayerCost(b, 0)
		with1 := c.DecodeLayerCost(1, 0)
		return math.Abs(withB.FLOPs()-float64(b)*with1.FLOPs()) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
