// Package fault injects failures into a serving simulation. A Plan is a
// declarative, seeded list of disturbance events — instance crashes,
// transient GPU slowdowns, interconnect degradation, client cancellations
// — that Apply compiles into simulator events against a set of
// system-provided Hooks. Because the simulator orders events totally and
// the only randomness (picking which requests a cancellation hits) is
// seeded from the plan, a run under a fault plan is exactly as
// reproducible as a run without one.
//
// Plans can be built programmatically or parsed from a compact spec
// string (see Parse):
//
//	crash:d0@15+10; slow:p0@10x1.5+20; degrade@20x0.25+30; cancel@12x0.2
//
// The recovery semantics — what a crash loses, what KV backups restore,
// how degradation feeds the Global Scheduler — live in internal/serve;
// this package only decides when each disturbance fires.
package fault

import (
	"fmt"
	"strconv"
	"strings"

	"windserve/internal/sim"
)

// Kind classifies a disturbance.
type Kind int

const (
	// Crash takes an instance down, losing its KV cache and in-flight
	// work. With a Duration the instance restores afterwards (empty).
	Crash Kind = iota
	// Slowdown multiplies an instance's pass durations by Factor
	// (thermal throttling, a noisy neighbor). Factor >= 1.
	Slowdown
	// LinkDegrade scales all cross-instance link bandwidth to Factor of
	// nominal (0 < Factor <= 1) — congestion or a failing NIC.
	LinkDegrade
	// Cancel aborts a Factor fraction of the currently in-flight
	// requests, chosen by the plan's seeded RNG (client disconnects).
	Cancel
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Slowdown:
		return "slow"
	case LinkDegrade:
		return "degrade"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Role selects which side of the disaggregated deployment an instance
// event targets. Systems without the role (vLLM has no decode instances)
// map both roles onto their replica set.
type Role int

const (
	// RolePrefill targets prefill instance Event.Instance.
	RolePrefill Role = iota
	// RoleDecode targets decode instance Event.Instance.
	RoleDecode
)

func (r Role) String() string {
	if r == RoleDecode {
		return "d"
	}
	return "p"
}

// Event is one scheduled disturbance.
type Event struct {
	Kind Kind
	// Role and Instance pick the target for Crash and Slowdown.
	Role     Role
	Instance int
	// At is when the disturbance begins.
	At sim.Time
	// Duration is how long it lasts; 0 means it persists to the end of
	// the run (permanent for Crash/Slowdown/LinkDegrade, irrelevant for
	// Cancel, which is instantaneous).
	Duration sim.Duration
	// Factor parameterizes the disturbance: slowdown multiplier (>= 1),
	// remaining bandwidth fraction (0..1], or cancelled request fraction
	// (0..1].
	Factor float64
}

func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", e.Kind)
	if e.Kind == Crash || e.Kind == Slowdown {
		fmt.Fprintf(&b, ":%s%d", e.Role, e.Instance)
	}
	fmt.Fprintf(&b, "@%g", float64(e.At))
	if e.Kind != Crash {
		fmt.Fprintf(&b, "x%g", e.Factor)
	}
	if e.Duration > 0 {
		fmt.Fprintf(&b, "+%g", e.Duration.Seconds())
	}
	return b.String()
}

// Plan is a seeded set of disturbances for one run.
type Plan struct {
	// Seed drives the plan's own randomness (cancellation victims). The
	// workload seed stays separate so the same trace can be replayed
	// under different plans.
	Seed   int64
	Events []Event
}

// String renders the plan in the spec syntax Parse accepts.
func (p *Plan) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Validate checks every event for well-formedness.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d (%s): negative time", i, e)
		}
		if e.Duration < 0 {
			return fmt.Errorf("fault: event %d (%s): negative duration", i, e)
		}
		if e.Instance < 0 {
			return fmt.Errorf("fault: event %d (%s): negative instance index", i, e)
		}
		switch e.Kind {
		case Crash:
			// No factor.
		case Slowdown:
			if e.Factor < 1 {
				return fmt.Errorf("fault: event %d (%s): slowdown factor %g < 1", i, e, e.Factor)
			}
		case LinkDegrade:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d (%s): degrade factor %g outside (0,1]", i, e, e.Factor)
			}
		case Cancel:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d (%s): cancel fraction %g outside (0,1]", i, e, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Parse reads a plan from a compact spec. Events are separated by ';',
// each of the form
//
//	kind[:target]@time[xfactor][+duration]
//
// where kind is crash|slow|degrade|cancel, target is p<i> or d<i>
// (prefill/decode instance i, required for crash and slow), time and
// duration are seconds, and factor is the kind's parameter. Examples:
//
//	crash:d0@15          decode 0 dies at t=15s, permanently
//	crash:p1@10+5        prefill 1 dies at t=10s, restores at t=15s
//	slow:d0@10x2+20      decode 0 runs 2x slower from t=10s to t=30s
//	degrade@20x0.25+30   links at 25% bandwidth from t=20s to t=50s
//	cancel@12x0.2        20% of in-flight requests cancelled at t=12s
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, raw := range strings.Split(spec, ";") {
		s := strings.TrimSpace(raw)
		if s == "" {
			continue
		}
		ev, err := parseEvent(s)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseEvent(s string) (Event, error) {
	head, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: missing @time", s)
	}
	var ev Event
	kind, target, hasTarget := strings.Cut(head, ":")
	switch kind {
	case "crash":
		ev.Kind = Crash
	case "slow":
		ev.Kind = Slowdown
	case "degrade":
		ev.Kind = LinkDegrade
	case "cancel":
		ev.Kind = Cancel
	default:
		return Event{}, fmt.Errorf("fault: event %q: unknown kind %q", s, kind)
	}
	needsTarget := ev.Kind == Crash || ev.Kind == Slowdown
	if needsTarget != hasTarget {
		return Event{}, fmt.Errorf("fault: event %q: %s %s a :target", s, kind,
			map[bool]string{true: "requires", false: "does not take"}[needsTarget])
	}
	if hasTarget {
		role, idx, err := parseTarget(target)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: %v", s, err)
		}
		ev.Role, ev.Instance = role, idx
	}
	// rest is time[xfactor][+duration]; cut the '+' first since factors
	// never contain one.
	timeFactor, durStr, hasDur := strings.Cut(rest, "+")
	timeStr, factorStr, hasFactor := strings.Cut(timeFactor, "x")
	at, err := strconv.ParseFloat(timeStr, 64)
	if err != nil {
		return Event{}, fmt.Errorf("fault: event %q: bad time %q", s, timeStr)
	}
	ev.At = sim.Time(at)
	if hasFactor {
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: bad factor %q", s, factorStr)
		}
		ev.Factor = f
	} else if ev.Kind != Crash {
		return Event{}, fmt.Errorf("fault: event %q: %s requires an xfactor", s, kind)
	}
	if hasDur {
		d, err := strconv.ParseFloat(durStr, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: bad duration %q", s, durStr)
		}
		ev.Duration = sim.Seconds(d)
	}
	return ev, nil
}

func parseTarget(t string) (Role, int, error) {
	if len(t) < 2 {
		return 0, 0, fmt.Errorf("bad target %q (want p<i> or d<i>)", t)
	}
	var role Role
	switch t[0] {
	case 'p':
		role = RolePrefill
	case 'd':
		role = RoleDecode
	default:
		return 0, 0, fmt.Errorf("bad target %q (want p<i> or d<i>)", t)
	}
	idx, err := strconv.Atoi(t[1:])
	if err != nil || idx < 0 {
		return 0, 0, fmt.Errorf("bad target index in %q", t)
	}
	return role, idx, nil
}

// Hooks are the system-side effects a plan drives. Any hook may be nil;
// its events are then dropped (a system without links ignores degrades).
type Hooks struct {
	// Crash takes the instance down; Restore brings it back (empty).
	Crash   func(role Role, idx int)
	Restore func(role Role, idx int)
	// SetSlowdown multiplies the instance's pass durations; 1 restores
	// nominal speed.
	SetSlowdown func(role Role, idx int, factor float64)
	// SetLinkDegrade scales cross-instance bandwidth; 1 restores nominal.
	SetLinkDegrade func(frac float64)
	// Cancel aborts a fraction of in-flight requests using the given
	// seed to pick victims.
	Cancel func(frac float64, seed int64)
}

// Apply schedules the plan's events on the simulator. It must be called
// before the simulation runs (all event times are absolute).
func Apply(s *sim.Simulator, p *Plan, h Hooks) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for i, e := range p.Events {
		e := e
		switch e.Kind {
		case Crash:
			if h.Crash == nil {
				continue
			}
			s.At(e.At, func() { h.Crash(e.Role, e.Instance) })
			if e.Duration > 0 && h.Restore != nil {
				s.At(e.At.Add(e.Duration), func() { h.Restore(e.Role, e.Instance) })
			}
		case Slowdown:
			if h.SetSlowdown == nil {
				continue
			}
			s.At(e.At, func() { h.SetSlowdown(e.Role, e.Instance, e.Factor) })
			if e.Duration > 0 {
				s.At(e.At.Add(e.Duration), func() { h.SetSlowdown(e.Role, e.Instance, 1) })
			}
		case LinkDegrade:
			if h.SetLinkDegrade == nil {
				continue
			}
			s.At(e.At, func() { h.SetLinkDegrade(e.Factor) })
			if e.Duration > 0 {
				s.At(e.At.Add(e.Duration), func() { h.SetLinkDegrade(1) })
			}
		case Cancel:
			if h.Cancel == nil {
				continue
			}
			// Each cancel event gets its own derived seed so reordering
			// or removing other events does not change its victims.
			seed := p.Seed + int64(i)*1000003 + 1
			s.At(e.At, func() { h.Cancel(e.Factor, seed) })
		}
	}
	return nil
}
