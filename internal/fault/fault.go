// Package fault injects failures into a serving simulation. A Plan is a
// declarative, seeded list of disturbance events — instance crashes,
// transient GPU slowdowns, interconnect degradation, client cancellations
// — that Apply compiles into simulator events against a set of
// system-provided Hooks. Because the simulator orders events totally and
// the only randomness (picking which requests a cancellation hits) is
// seeded from the plan, a run under a fault plan is exactly as
// reproducible as a run without one.
//
// Plans can be built programmatically or parsed from a compact spec
// string (see Parse):
//
//	crash:d0@15+10; slow:p0@10x1.5+20; degrade@20x0.25+30; cancel@12x0.2
//
// The recovery semantics — what a crash loses, what KV backups restore,
// how degradation feeds the Global Scheduler — live in internal/serve;
// this package only decides when each disturbance fires.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"windserve/internal/sim"
)

// Kind classifies a disturbance.
type Kind int

const (
	// Crash takes an instance down, losing its KV cache and in-flight
	// work. With a Duration the instance restores afterwards (empty).
	Crash Kind = iota
	// Slowdown multiplies an instance's pass durations by Factor
	// (thermal throttling, a noisy neighbor). Factor >= 1.
	Slowdown
	// LinkDegrade scales all cross-instance link bandwidth to Factor of
	// nominal (0 < Factor <= 1) — congestion or a failing NIC.
	LinkDegrade
	// Cancel aborts a Factor fraction of the currently in-flight
	// requests, chosen by the plan's seeded RNG (client disconnects).
	Cancel
	// ReplicaCrash takes a whole replica down in a fleet run: every
	// instance of the prefill/decode group loses its KV and in-flight
	// work at once. With a Duration the replica restores afterwards
	// (empty). Target is r<i>.
	ReplicaCrash
	// ReplicaSlow multiplies pass durations on every instance of one
	// replica by Factor (>= 1) — a whole slow node.
	ReplicaSlow
	// ReplicaPartition cuts the network path between the router and one
	// replica: the replica keeps executing its in-flight work, but the
	// router stops routing to it and treats its requests as timed out.
	// Duration 0 partitions it for the rest of the run.
	ReplicaPartition
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Slowdown:
		return "slow"
	case LinkDegrade:
		return "degrade"
	case Cancel:
		return "cancel"
	case ReplicaCrash:
		return "rcrash"
	case ReplicaSlow:
		return "rslow"
	case ReplicaPartition:
		return "rpart"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// needsTarget reports whether the kind addresses a specific instance or
// replica (and so requires a :target in the spec syntax).
func (k Kind) needsTarget() bool {
	switch k {
	case Crash, Slowdown, ReplicaCrash, ReplicaSlow, ReplicaPartition:
		return true
	}
	return false
}

// needsFactor reports whether the kind is parameterized by an xfactor.
func (k Kind) needsFactor() bool {
	switch k {
	case Slowdown, LinkDegrade, Cancel, ReplicaSlow:
		return true
	}
	return false
}

// targetsReplica reports whether the kind's target is a fleet replica
// (r<i>) rather than a single instance (p<i>/d<i>).
func (k Kind) targetsReplica() bool {
	switch k {
	case ReplicaCrash, ReplicaSlow, ReplicaPartition:
		return true
	}
	return false
}

// Role selects which side of the disaggregated deployment an instance
// event targets. Systems without the role (vLLM has no decode instances)
// map both roles onto their replica set.
type Role int

const (
	// RolePrefill targets prefill instance Event.Instance.
	RolePrefill Role = iota
	// RoleDecode targets decode instance Event.Instance.
	RoleDecode
	// RoleReplica targets whole replica Event.Instance in a fleet run.
	// Set implicitly by the replica-granularity kinds.
	RoleReplica
)

func (r Role) String() string {
	switch r {
	case RoleDecode:
		return "d"
	case RoleReplica:
		return "r"
	default:
		return "p"
	}
}

// Event is one scheduled disturbance.
type Event struct {
	Kind Kind
	// Role and Instance pick the target for Crash and Slowdown.
	Role     Role
	Instance int
	// At is when the disturbance begins.
	At sim.Time
	// Duration is how long it lasts; 0 means it persists to the end of
	// the run (permanent for Crash/Slowdown/LinkDegrade, irrelevant for
	// Cancel, which is instantaneous).
	Duration sim.Duration
	// Factor parameterizes the disturbance: slowdown multiplier (>= 1),
	// remaining bandwidth fraction (0..1], or cancelled request fraction
	// (0..1].
	Factor float64
}

func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", e.Kind)
	if e.Kind.needsTarget() {
		fmt.Fprintf(&b, ":%s%d", e.Role, e.Instance)
	}
	fmt.Fprintf(&b, "@%g", float64(e.At))
	if e.Kind.needsFactor() {
		fmt.Fprintf(&b, "x%g", e.Factor)
	}
	if e.Duration > 0 {
		fmt.Fprintf(&b, "+%g", e.Duration.Seconds())
	}
	return b.String()
}

// Plan is a seeded set of disturbances for one run.
type Plan struct {
	// Seed drives the plan's own randomness (cancellation victims). The
	// workload seed stays separate so the same trace can be replayed
	// under different plans.
	Seed   int64
	Events []Event
}

// String renders the plan in the spec syntax Parse accepts.
func (p *Plan) String() string {
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, "; ")
}

// Validate checks every event for well-formedness, and rejects plans
// whose binary-state windows (crash/rcrash/rpart) overlap on the same
// target: an overlapping pair would fire a restore inside the other
// window, silently resurrecting a target that should still be down.
func (p *Plan) Validate() error {
	for i, e := range p.Events {
		if e.At < 0 {
			return fmt.Errorf("fault: event %d (%s): negative time", i, e)
		}
		if e.Duration < 0 {
			return fmt.Errorf("fault: event %d (%s): negative duration", i, e)
		}
		if e.Instance < 0 {
			return fmt.Errorf("fault: event %d (%s): negative instance index", i, e)
		}
		if e.Kind.targetsReplica() && e.Role != RoleReplica {
			return fmt.Errorf("fault: event %d (%s): %s targets a replica (r<i>), role %s given",
				i, e, e.Kind, e.Role)
		}
		switch e.Kind {
		case Crash, ReplicaCrash, ReplicaPartition:
			if e.Factor != 0 {
				return fmt.Errorf("fault: event %d (%s): %s takes no factor", i, e, e.Kind)
			}
		case Slowdown, ReplicaSlow:
			if e.Factor < 1 {
				return fmt.Errorf("fault: event %d (%s): slowdown factor %g < 1", i, e, e.Factor)
			}
		case LinkDegrade:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d (%s): degrade factor %g outside (0,1]", i, e, e.Factor)
			}
		case Cancel:
			if e.Factor <= 0 || e.Factor > 1 {
				return fmt.Errorf("fault: event %d (%s): cancel fraction %g outside (0,1]", i, e, e.Factor)
			}
		default:
			return fmt.Errorf("fault: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return p.validateWindows()
}

// validateWindows rejects overlapping crash (or partition) windows on the
// same target. A zero Duration is permanent and overlaps everything later
// on that target.
func (p *Plan) validateWindows() error {
	type window struct {
		idx int
		e   Event
	}
	byTarget := make(map[[3]int][]window)
	for i, e := range p.Events {
		switch e.Kind {
		case Crash, ReplicaCrash, ReplicaPartition:
			key := [3]int{int(e.Kind), int(e.Role), e.Instance}
			byTarget[key] = append(byTarget[key], window{i, e})
		}
	}
	for _, ws := range byTarget {
		sort.Slice(ws, func(a, b int) bool { return ws[a].e.At < ws[b].e.At })
		for i := 1; i < len(ws); i++ {
			prev, cur := ws[i-1], ws[i]
			if prev.e.Duration == 0 || prev.e.At.Add(prev.e.Duration) > cur.e.At {
				return fmt.Errorf("fault: events %d (%s) and %d (%s): overlapping %s windows on the same target",
					prev.idx, prev.e, cur.idx, cur.e, prev.e.Kind)
			}
		}
	}
	return nil
}

// ValidateTargets rejects events that reference targets outside the
// deployment being run: instance events (crash/slow) must address a
// prefill or decode instance below the given counts, and replica events
// (rcrash/rslow/rpart) a replica below numReplicas. A count of zero means
// that target space does not exist in the calling context — a
// single-testbed run has no replicas; a fleet plan addresses replicas,
// not individual instances — so any event addressing it is rejected
// rather than silently ignored.
func (p *Plan) ValidateTargets(numPrefill, numDecode, numReplicas int) error {
	for i, e := range p.Events {
		if !e.Kind.needsTarget() {
			continue
		}
		if e.Kind.targetsReplica() {
			if numReplicas == 0 {
				return fmt.Errorf("fault: event %d (%s): replica event in a run with no replica tier", i, e)
			}
			if e.Instance >= numReplicas {
				return fmt.Errorf("fault: event %d (%s): targets replica %d of %d replicas",
					i, e, e.Instance, numReplicas)
			}
			continue
		}
		limit := numPrefill
		if e.Role == RoleDecode {
			limit = numDecode
		}
		if limit == 0 {
			return fmt.Errorf("fault: event %d (%s): instance event in a run with no addressable %s instances (use r<i> targets in fleet plans)",
				i, e, e.Role)
		}
		if e.Instance >= limit {
			return fmt.Errorf("fault: event %d (%s): targets instance %d of %d %s instances",
				i, e, e.Instance, limit, e.Role)
		}
	}
	return nil
}

// Parse reads a plan from a compact spec. Events are separated by ';',
// each of the form
//
//	kind[:target]@time[xfactor][+duration]
//
// where kind is crash|slow|degrade|cancel|rcrash|rslow|rpart, target is
// p<i> or d<i> (prefill/decode instance i, required for crash and slow)
// or r<i> (replica i, required for the r* kinds), time and duration are
// seconds, and factor is the kind's parameter. Examples:
//
//	crash:d0@15          decode 0 dies at t=15s, permanently
//	crash:p1@10+5        prefill 1 dies at t=10s, restores at t=15s
//	slow:d0@10x2+20      decode 0 runs 2x slower from t=10s to t=30s
//	degrade@20x0.25+30   links at 25% bandwidth from t=20s to t=50s
//	cancel@12x0.2        20% of in-flight requests cancelled at t=12s
//	rcrash:r3@30+15      replica 3 dies at t=30s, restores at t=45s
//	rslow:r1@10x2+20     every instance of replica 1 2x slower for 20s
//	rpart:r0@25+10       router loses replica 0 from t=25s to t=35s
func Parse(spec string) (*Plan, error) {
	p := &Plan{}
	for _, raw := range strings.Split(spec, ";") {
		s := strings.TrimSpace(raw)
		if s == "" {
			continue
		}
		ev, err := parseEvent(s)
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, ev)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func parseEvent(s string) (Event, error) {
	head, rest, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: missing @time", s)
	}
	var ev Event
	kind, target, hasTarget := strings.Cut(head, ":")
	switch kind {
	case "crash":
		ev.Kind = Crash
	case "slow":
		ev.Kind = Slowdown
	case "degrade":
		ev.Kind = LinkDegrade
	case "cancel":
		ev.Kind = Cancel
	case "rcrash":
		ev.Kind = ReplicaCrash
	case "rslow":
		ev.Kind = ReplicaSlow
	case "rpart":
		ev.Kind = ReplicaPartition
	default:
		return Event{}, fmt.Errorf("fault: event %q: unknown kind %q", s, kind)
	}
	needsTarget := ev.Kind.needsTarget()
	if needsTarget != hasTarget {
		return Event{}, fmt.Errorf("fault: event %q: %s %s a :target", s, kind,
			map[bool]string{true: "requires", false: "does not take"}[needsTarget])
	}
	if hasTarget {
		role, idx, err := parseTarget(target)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: %v", s, err)
		}
		if ev.Kind.targetsReplica() != (role == RoleReplica) {
			want := "p<i> or d<i>"
			if ev.Kind.targetsReplica() {
				want = "r<i>"
			}
			return Event{}, fmt.Errorf("fault: event %q: %s takes a %s target, got %q", s, kind, want, target)
		}
		ev.Role, ev.Instance = role, idx
	}
	// rest is time[xfactor][+duration]; cut the '+' first since factors
	// never contain one.
	timeFactor, durStr, hasDur := strings.Cut(rest, "+")
	timeStr, factorStr, hasFactor := strings.Cut(timeFactor, "x")
	at, err := strconv.ParseFloat(timeStr, 64)
	if err != nil {
		return Event{}, fmt.Errorf("fault: event %q: bad time %q", s, timeStr)
	}
	ev.At = sim.Time(at)
	if hasFactor {
		if !ev.Kind.needsFactor() {
			return Event{}, fmt.Errorf("fault: event %q: %s does not take an xfactor", s, kind)
		}
		f, err := strconv.ParseFloat(factorStr, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: bad factor %q", s, factorStr)
		}
		ev.Factor = f
	} else if ev.Kind.needsFactor() {
		return Event{}, fmt.Errorf("fault: event %q: %s requires an xfactor", s, kind)
	}
	if hasDur {
		d, err := strconv.ParseFloat(durStr, 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: event %q: bad duration %q", s, durStr)
		}
		ev.Duration = sim.Seconds(d)
	}
	return ev, nil
}

func parseTarget(t string) (Role, int, error) {
	if len(t) < 2 {
		return 0, 0, fmt.Errorf("bad target %q (want p<i>, d<i>, or r<i>)", t)
	}
	var role Role
	switch t[0] {
	case 'p':
		role = RolePrefill
	case 'd':
		role = RoleDecode
	case 'r':
		role = RoleReplica
	default:
		return 0, 0, fmt.Errorf("bad target %q (want p<i>, d<i>, or r<i>)", t)
	}
	idx, err := strconv.Atoi(t[1:])
	if err != nil || idx < 0 {
		return 0, 0, fmt.Errorf("bad target index in %q", t)
	}
	return role, idx, nil
}

// Hooks are the system-side effects a plan drives. Any hook may be nil;
// its events are then dropped (a system without links ignores degrades).
type Hooks struct {
	// Crash takes the instance down; Restore brings it back (empty).
	Crash   func(role Role, idx int)
	Restore func(role Role, idx int)
	// SetSlowdown multiplies the instance's pass durations; 1 restores
	// nominal speed.
	SetSlowdown func(role Role, idx int, factor float64)
	// SetLinkDegrade scales cross-instance bandwidth; 1 restores nominal.
	SetLinkDegrade func(frac float64)
	// Cancel aborts a fraction of in-flight requests using the given
	// seed to pick victims.
	Cancel func(frac float64, seed int64)

	// Fleet-level hooks (replica-granularity events).
	ReplicaCrash   func(idx int)
	ReplicaRestore func(idx int)
	// SetReplicaSlowdown slows every instance of a replica; 1 restores.
	SetReplicaSlowdown func(idx int, factor float64)
	// SetPartition cuts (true) or heals (false) the router→replica path.
	SetPartition func(idx int, partitioned bool)
}

// Apply schedules the plan's events on the simulator. It must be called
// before the simulation runs (all event times are absolute).
func Apply(s *sim.Simulator, p *Plan, h Hooks) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	for i, e := range p.Events {
		e := e
		switch e.Kind {
		case Crash:
			if h.Crash == nil {
				continue
			}
			s.At(e.At, func() { h.Crash(e.Role, e.Instance) })
			if e.Duration > 0 && h.Restore != nil {
				s.At(e.At.Add(e.Duration), func() { h.Restore(e.Role, e.Instance) })
			}
		case Slowdown:
			if h.SetSlowdown == nil {
				continue
			}
			s.At(e.At, func() { h.SetSlowdown(e.Role, e.Instance, e.Factor) })
			if e.Duration > 0 {
				s.At(e.At.Add(e.Duration), func() { h.SetSlowdown(e.Role, e.Instance, 1) })
			}
		case LinkDegrade:
			if h.SetLinkDegrade == nil {
				continue
			}
			s.At(e.At, func() { h.SetLinkDegrade(e.Factor) })
			if e.Duration > 0 {
				s.At(e.At.Add(e.Duration), func() { h.SetLinkDegrade(1) })
			}
		case Cancel:
			if h.Cancel == nil {
				continue
			}
			// Each cancel event gets its own derived seed so reordering
			// or removing other events does not change its victims.
			seed := p.Seed + int64(i)*1000003 + 1
			s.At(e.At, func() { h.Cancel(e.Factor, seed) })
		case ReplicaCrash:
			if h.ReplicaCrash == nil {
				continue
			}
			s.At(e.At, func() { h.ReplicaCrash(e.Instance) })
			if e.Duration > 0 && h.ReplicaRestore != nil {
				s.At(e.At.Add(e.Duration), func() { h.ReplicaRestore(e.Instance) })
			}
		case ReplicaSlow:
			if h.SetReplicaSlowdown == nil {
				continue
			}
			s.At(e.At, func() { h.SetReplicaSlowdown(e.Instance, e.Factor) })
			if e.Duration > 0 {
				s.At(e.At.Add(e.Duration), func() { h.SetReplicaSlowdown(e.Instance, 1) })
			}
		case ReplicaPartition:
			if h.SetPartition == nil {
				continue
			}
			s.At(e.At, func() { h.SetPartition(e.Instance, true) })
			if e.Duration > 0 {
				s.At(e.At.Add(e.Duration), func() { h.SetPartition(e.Instance, false) })
			}
		}
	}
	return nil
}
