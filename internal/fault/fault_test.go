package fault

import (
	"fmt"
	"testing"

	"windserve/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "crash:d0@15+10; slow:p1@10x1.5+20; degrade@20x0.25+30; cancel@12x0.2"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: Crash, Role: RoleDecode, Instance: 0, At: 15, Duration: 10},
		{Kind: Slowdown, Role: RolePrefill, Instance: 1, At: 10, Factor: 1.5, Duration: 20},
		{Kind: LinkDegrade, At: 20, Factor: 0.25, Duration: 30},
		{Kind: Cancel, At: 12, Factor: 0.2},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(p.Events), len(want))
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	// String must re-parse to the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	for i := range p.Events {
		if p2.Events[i] != p.Events[i] {
			t.Errorf("round-trip event %d = %+v, want %+v", i, p2.Events[i], p.Events[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"crash@10",           // crash needs a target
		"degrade:p0@10x0.5",  // degrade takes no target
		"cancel@10",          // cancel needs a factor
		"slow:d0@10x0.5",     // slowdown factor < 1
		"degrade@10x1.5",     // degrade factor > 1
		"cancel@10x0",        // cancel fraction must be positive
		"boom:d0@10",         // unknown kind
		"crash:x0@10",        // bad role
		"crash:d-1@10",       // bad index
		"crash:d0@-5",        // negative time
		"crash:d0@5+-1",      // negative duration
		"crash:d0",           // missing @time
		"slow:p0@tenx2",      // bad time
		"degrade@5xfast",     // bad factor
		"crash:p0@5+forever", // bad duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseSkipsEmptyEvents(t *testing.T) {
	p, err := Parse(" ; cancel@5x0.5 ;; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 || p.Events[0].Kind != Cancel {
		t.Fatalf("got %+v, want one cancel event", p.Events)
	}
}

func TestApplySchedulesAndRestores(t *testing.T) {
	s := sim.New()
	p := &Plan{Seed: 7, Events: []Event{
		{Kind: Crash, Role: RoleDecode, Instance: 1, At: 5, Duration: 3},
		{Kind: Slowdown, Role: RolePrefill, Instance: 0, At: 2, Factor: 2, Duration: 4},
		{Kind: LinkDegrade, At: 1, Factor: 0.5, Duration: 2},
		{Kind: Cancel, At: 4, Factor: 0.25},
	}}
	var log []string
	h := Hooks{
		Crash: func(role Role, idx int) {
			log = append(log, fmt.Sprintf("crash %s%d @%v", role, idx, s.Now()))
		},
		Restore: func(role Role, idx int) {
			log = append(log, fmt.Sprintf("restore %s%d @%v", role, idx, s.Now()))
		},
		SetSlowdown: func(role Role, idx int, f float64) {
			log = append(log, fmt.Sprintf("slow %s%d x%g @%v", role, idx, f, s.Now()))
		},
		SetLinkDegrade: func(f float64) {
			log = append(log, fmt.Sprintf("degrade x%g @%v", f, s.Now()))
		},
		Cancel: func(f float64, seed int64) {
			log = append(log, fmt.Sprintf("cancel %g seed=%d @%v", f, seed, s.Now()))
		},
	}
	if err := Apply(s, p, h); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	want := []string{
		"degrade x0.5 @1.000000s",
		"slow p0 x2 @2.000000s",
		"degrade x1 @3.000000s",
		"cancel 0.25 seed=3000017 @4.000000s",
		"crash d1 @5.000000s",
		"slow p0 x1 @6.000000s",
		"restore d1 @8.000000s",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v\nwant  %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

func TestApplyNilHooksAndPlan(t *testing.T) {
	s := sim.New()
	if err := Apply(s, nil, Hooks{}); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Events: []Event{{Kind: Crash, Role: RolePrefill, At: 1}}}
	if err := Apply(s, p, Hooks{}); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("nil hooks scheduled %d events", s.Pending())
	}
}

func TestApplyValidates(t *testing.T) {
	s := sim.New()
	p := &Plan{Events: []Event{{Kind: Slowdown, Factor: 0.5, At: 1}}}
	if err := Apply(s, p, Hooks{SetSlowdown: func(Role, int, float64) {}}); err == nil {
		t.Fatal("Apply accepted an invalid plan")
	}
}

func TestParseReplicaRoundTrip(t *testing.T) {
	spec := "rcrash:r3@30+15; rslow:r1@10x2+20; rpart:r0@25+10"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: ReplicaCrash, Role: RoleReplica, Instance: 3, At: 30, Duration: 15},
		{Kind: ReplicaSlow, Role: RoleReplica, Instance: 1, At: 10, Factor: 2, Duration: 20},
		{Kind: ReplicaPartition, Role: RoleReplica, Instance: 0, At: 25, Duration: 10},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(p.Events), len(want))
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	for i := range p.Events {
		if p2.Events[i] != p.Events[i] {
			t.Errorf("round-trip event %d = %+v, want %+v", i, p2.Events[i], p.Events[i])
		}
	}
}

func TestParseReplicaErrors(t *testing.T) {
	for _, spec := range []string{
		"rcrash@10",       // replica crash needs a target
		"rcrash:p0@10",    // replica kinds take r<i>, not instance targets
		"rslow:d1@10x2",   // same, via slow
		"rpart:r0@10x0.5", // partition takes no factor
		"rslow:r0@10x0.5", // replica slowdown factor < 1
		"rslow:r0@10",     // replica slowdown needs a factor
		"crash:r0@10",     // instance kinds reject replica targets
		"slow:r2@10x2",    // same, via slow
		"rcrash:r-1@10",   // bad index
		"rcrash:rzero@10", // non-numeric index
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestValidateRejectsOverlappingWindows(t *testing.T) {
	for _, tc := range []struct {
		spec string
		ok   bool
	}{
		{"crash:d0@10+5; crash:d0@12+5", false}, // windows intersect
		{"crash:d0@10; crash:d0@50+5", false},   // permanent overlaps everything later
		{"crash:d0@10+5; crash:d0@15+5", true},  // back-to-back is fine
		{"crash:d0@10+5; crash:d1@12+5", true},  // different instance
		{"crash:d0@10+5; crash:p0@12+5", true},  // different role
		{"crash:d0@10+5; rcrash:r0@12+5", true}, // instance vs replica space
		{"rcrash:r2@10+5; rcrash:r2@12+5", false},
		{"rpart:r1@10+5; rpart:r1@12+5", false},
		{"rpart:r1@10+5; rcrash:r1@12+5", true},  // partition and crash are separate windows
		{"slow:d0@10x2+5; slow:d0@12x2+5", true}, // slowdowns may overlap
	} {
		_, err := Parse(tc.spec)
		if tc.ok && err != nil {
			t.Errorf("Parse(%q) = %v, want ok", tc.spec, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Parse(%q) succeeded, want overlap error", tc.spec)
		}
	}
}

func TestValidateTargets(t *testing.T) {
	instPlan := mustParse(t, "crash:p1@10+5; slow:d2@10x2+5")
	if err := instPlan.ValidateTargets(2, 3, 0); err != nil {
		t.Errorf("in-range instance events rejected: %v", err)
	}
	if err := instPlan.ValidateTargets(1, 3, 0); err == nil {
		t.Error("p1 accepted with only 1 prefill instance")
	}
	if err := instPlan.ValidateTargets(2, 2, 0); err == nil {
		t.Error("d2 accepted with only 2 decode instances")
	}
	if err := instPlan.ValidateTargets(0, 0, 8); err == nil {
		t.Error("instance events accepted in a fleet-plan context")
	}

	repPlan := mustParse(t, "rcrash:r7@10+5; rpart:r0@30+5; degrade@40x0.5+5; cancel@50x0.1")
	if err := repPlan.ValidateTargets(0, 0, 8); err != nil {
		t.Errorf("in-range replica events rejected: %v", err)
	}
	if err := repPlan.ValidateTargets(0, 0, 7); err == nil {
		t.Error("r7 accepted with only 7 replicas")
	}
	if err := repPlan.ValidateTargets(2, 2, 0); err == nil {
		t.Error("replica events accepted in a single-testbed context")
	}
}

func TestApplyReplicaHooks(t *testing.T) {
	s := sim.New()
	p := mustParse(t, "rcrash:r2@5+3; rslow:r0@2x2+4; rpart:r1@1+6")
	var log []string
	h := Hooks{
		ReplicaCrash: func(idx int) {
			log = append(log, fmt.Sprintf("rcrash r%d @%v", idx, s.Now()))
		},
		ReplicaRestore: func(idx int) {
			log = append(log, fmt.Sprintf("rrestore r%d @%v", idx, s.Now()))
		},
		SetReplicaSlowdown: func(idx int, f float64) {
			log = append(log, fmt.Sprintf("rslow r%d x%g @%v", idx, f, s.Now()))
		},
		SetPartition: func(idx int, part bool) {
			log = append(log, fmt.Sprintf("rpart r%d %v @%v", idx, part, s.Now()))
		},
	}
	if err := Apply(s, p, h); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	want := []string{
		"rpart r1 true @1.000000s",
		"rslow r0 x2 @2.000000s",
		"rcrash r2 @5.000000s",
		"rslow r0 x1 @6.000000s",
		"rpart r1 false @7.000000s",
		"rrestore r2 @8.000000s",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v\nwant  %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

func mustParse(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}
