package fault

import (
	"fmt"
	"testing"

	"windserve/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	spec := "crash:d0@15+10; slow:p1@10x1.5+20; degrade@20x0.25+30; cancel@12x0.2"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: Crash, Role: RoleDecode, Instance: 0, At: 15, Duration: 10},
		{Kind: Slowdown, Role: RolePrefill, Instance: 1, At: 10, Factor: 1.5, Duration: 20},
		{Kind: LinkDegrade, At: 20, Factor: 0.25, Duration: 30},
		{Kind: Cancel, At: 12, Factor: 0.2},
	}
	if len(p.Events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(p.Events), len(want))
	}
	for i, e := range p.Events {
		if e != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, want[i])
		}
	}
	// String must re-parse to the same plan.
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	for i := range p.Events {
		if p2.Events[i] != p.Events[i] {
			t.Errorf("round-trip event %d = %+v, want %+v", i, p2.Events[i], p.Events[i])
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"crash@10",           // crash needs a target
		"degrade:p0@10x0.5",  // degrade takes no target
		"cancel@10",          // cancel needs a factor
		"slow:d0@10x0.5",     // slowdown factor < 1
		"degrade@10x1.5",     // degrade factor > 1
		"cancel@10x0",        // cancel fraction must be positive
		"boom:d0@10",         // unknown kind
		"crash:x0@10",        // bad role
		"crash:d-1@10",       // bad index
		"crash:d0@-5",        // negative time
		"crash:d0@5+-1",      // negative duration
		"crash:d0",           // missing @time
		"slow:p0@tenx2",      // bad time
		"degrade@5xfast",     // bad factor
		"crash:p0@5+forever", // bad duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestParseSkipsEmptyEvents(t *testing.T) {
	p, err := Parse(" ; cancel@5x0.5 ;; ")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 1 || p.Events[0].Kind != Cancel {
		t.Fatalf("got %+v, want one cancel event", p.Events)
	}
}

func TestApplySchedulesAndRestores(t *testing.T) {
	s := sim.New()
	p := &Plan{Seed: 7, Events: []Event{
		{Kind: Crash, Role: RoleDecode, Instance: 1, At: 5, Duration: 3},
		{Kind: Slowdown, Role: RolePrefill, Instance: 0, At: 2, Factor: 2, Duration: 4},
		{Kind: LinkDegrade, At: 1, Factor: 0.5, Duration: 2},
		{Kind: Cancel, At: 4, Factor: 0.25},
	}}
	var log []string
	h := Hooks{
		Crash: func(role Role, idx int) {
			log = append(log, fmt.Sprintf("crash %s%d @%v", role, idx, s.Now()))
		},
		Restore: func(role Role, idx int) {
			log = append(log, fmt.Sprintf("restore %s%d @%v", role, idx, s.Now()))
		},
		SetSlowdown: func(role Role, idx int, f float64) {
			log = append(log, fmt.Sprintf("slow %s%d x%g @%v", role, idx, f, s.Now()))
		},
		SetLinkDegrade: func(f float64) {
			log = append(log, fmt.Sprintf("degrade x%g @%v", f, s.Now()))
		},
		Cancel: func(f float64, seed int64) {
			log = append(log, fmt.Sprintf("cancel %g seed=%d @%v", f, seed, s.Now()))
		},
	}
	if err := Apply(s, p, h); err != nil {
		t.Fatal(err)
	}
	s.RunAll()
	want := []string{
		"degrade x0.5 @1.000000s",
		"slow p0 x2 @2.000000s",
		"degrade x1 @3.000000s",
		"cancel 0.25 seed=3000017 @4.000000s",
		"crash d1 @5.000000s",
		"slow p0 x1 @6.000000s",
		"restore d1 @8.000000s",
	}
	if len(log) != len(want) {
		t.Fatalf("log = %v\nwant  %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Errorf("log[%d] = %q, want %q", i, log[i], want[i])
		}
	}
}

func TestApplyNilHooksAndPlan(t *testing.T) {
	s := sim.New()
	if err := Apply(s, nil, Hooks{}); err != nil {
		t.Fatal(err)
	}
	p := &Plan{Events: []Event{{Kind: Crash, Role: RolePrefill, At: 1}}}
	if err := Apply(s, p, Hooks{}); err != nil {
		t.Fatal(err)
	}
	if s.Pending() != 0 {
		t.Fatalf("nil hooks scheduled %d events", s.Pending())
	}
}

func TestApplyValidates(t *testing.T) {
	s := sim.New()
	p := &Plan{Events: []Event{{Kind: Slowdown, Factor: 0.5, At: 1}}}
	if err := Apply(s, p, Hooks{SetSlowdown: func(Role, int, float64) {}}); err == nil {
		t.Fatal("Apply accepted an invalid plan")
	}
}
