package cluster

import (
	"testing"

	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/perf"
)

func TestPlanPaperPlacement13B(t *testing.T) {
	// Table 3: OPT-13B = [TP-2,PP-1] prefill + [TP-2,PP-1] decode.
	topo := gpu.PaperTestbed()
	asg, err := Plan(topo, model.OPT13B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RolePrefill, Place: perf.Placement{TP: 2, PP: 1}},
		InstanceSpec{Role: RoleDecode, Place: perf.Placement{TP: 2, PP: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg) != 2 {
		t.Fatalf("assignments = %d", len(asg))
	}
	// Devices 0,1 form an NVLink pair → TP link must be NVLink.
	if asg[0].CM.TPLink.Kind != gpu.LinkNVLink {
		t.Errorf("prefill TP link = %v, want NVLink", asg[0].CM.TPLink.Kind)
	}
	if asg[0].Devices[0] != 0 || asg[0].Devices[1] != 1 {
		t.Errorf("prefill devices = %v", asg[0].Devices)
	}
	if asg[1].Devices[0] != 2 || asg[1].Devices[1] != 3 {
		t.Errorf("decode devices = %v", asg[1].Devices)
	}
	if asg[0].KVTokens < 50_000 {
		t.Errorf("prefill KV capacity = %d tokens, implausibly small", asg[0].KVTokens)
	}
	// Cross-instance transfers 0/1 → 2/3 go over the PCIe switch.
	if l := TransferLink(topo, asg[0], asg[1]); l.Kind != gpu.LinkPCIeSwitch {
		t.Errorf("transfer link = %v, want PCIe switch", l.Kind)
	}
}

func TestPlanPaperPlacement66B(t *testing.T) {
	// Table 3: OPT-66B = [TP-2,PP-2] + [TP-2,PP-2] → all 8 GPUs.
	topo := gpu.PaperTestbed()
	asg, err := Plan(topo, model.OPT66B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RolePrefill, Place: perf.Placement{TP: 2, PP: 2}},
		InstanceSpec{Role: RoleDecode, Place: perf.Placement{TP: 2, PP: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := asg[1].Devices; got[0] != 4 || got[3] != 7 {
		t.Errorf("decode devices = %v, want 4..7", got)
	}
	// 66B on 4 GPUs: ~33 GB weights per GPU leaves real KV room.
	if asg[0].KVTokens <= 0 {
		t.Error("no KV capacity for 66B placement")
	}
}

func TestPlanRejectsOversubscription(t *testing.T) {
	topo := gpu.HomogeneousTestbed(2, gpu.A800)
	_, err := Plan(topo, model.OPT13B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RolePrefill, Place: perf.Placement{TP: 2, PP: 1}},
		InstanceSpec{Role: RoleDecode, Place: perf.Placement{TP: 2, PP: 1}},
	)
	if err == nil {
		t.Fatal("4 GPUs on a 2-GPU topology accepted")
	}
}

func TestPlanRejectsWeightOverflow(t *testing.T) {
	// LLaMA2-70B (~140 GB) cannot fit one 80 GB GPU.
	topo := gpu.PaperTestbed()
	_, err := Plan(topo, model.LLaMA270B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RoleColocated, Place: perf.Placement{TP: 1, PP: 1}},
	)
	if err == nil {
		t.Fatal("70B on one GPU accepted")
	}
}

func TestPlanRejectsInvalidPlacement(t *testing.T) {
	topo := gpu.PaperTestbed()
	_, err := Plan(topo, model.OPT13B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RolePrefill, Place: perf.Placement{TP: 3, PP: 1}},
	)
	if err == nil {
		t.Fatal("TP-3 accepted for 40 heads")
	}
}

func TestIntraLinkCrossPairIsPCIe(t *testing.T) {
	// A TP-4 group spans two NVLink pairs; collectives bottleneck on PCIe.
	topo := gpu.PaperTestbed()
	asg, err := Plan(topo, model.OPT66B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RolePrefill, Place: perf.Placement{TP: 4, PP: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if asg[0].CM.TPLink.Kind != gpu.LinkPCIeSwitch {
		t.Errorf("TP-4 link = %v, want PCIe switch", asg[0].CM.TPLink.Kind)
	}
}

func TestSingleGPUInstance(t *testing.T) {
	topo := gpu.PaperTestbed()
	asg, err := Plan(topo, model.OPT13B, perf.DefaultParams(), 0.1,
		InstanceSpec{Role: RoleDecode, Place: perf.Placement{TP: 1, PP: 1}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(asg[0].Devices) != 1 {
		t.Errorf("devices = %v", asg[0].Devices)
	}
}
