// Package cluster maps serving instances onto the GPU topology: it
// assigns devices to each instance's TP×PP group (preferring NVLink
// pairs for tensor parallelism, as the paper's testbed layout implies),
// builds the per-instance cost models, and budgets KV capacity from the
// memory left after weights.
package cluster

import (
	"fmt"

	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/perf"
)

// Role labels what an instance does.
type Role string

// Instance roles.
const (
	RolePrefill   Role = "prefill"
	RoleDecode    Role = "decode"
	RoleColocated Role = "colocated"
)

// InstanceSpec requests one instance of a given shape.
type InstanceSpec struct {
	Role  Role
	Place perf.Placement
}

// Assignment is a placed instance.
type Assignment struct {
	Role    Role
	Devices []gpu.DeviceID
	CM      *perf.CostModel
	// KVTokens is the instance's KV capacity after weights and the
	// activation reservation.
	KVTokens int
}

// Plan places the instances onto consecutive devices of the topology.
// reserveFrac is the per-GPU memory fraction reserved for activations.
func Plan(topo *gpu.Topology, cfg model.Config, params perf.Params, reserveFrac float64, specs ...InstanceSpec) ([]Assignment, error) {
	next := 0
	out := make([]Assignment, 0, len(specs))
	for i, spec := range specs {
		n := spec.Place.GPUs()
		if next+n > topo.NumDevices() {
			return nil, fmt.Errorf("cluster: instance %d needs %d GPUs but only %d remain",
				i, n, topo.NumDevices()-next)
		}
		devs := make([]gpu.DeviceID, n)
		for j := range devs {
			devs[j] = gpu.DeviceID(next + j)
		}
		next += n

		tpLink := intraLink(topo, devs, spec.Place)
		cm, err := perf.New(cfg, topo.Device(devs[0]).Spec, spec.Place, tpLink, params)
		if err != nil {
			return nil, fmt.Errorf("cluster: instance %d: %w", i, err)
		}
		kv := cm.KVCapacityTokens(reserveFrac)
		if kv <= 0 {
			return nil, fmt.Errorf("cluster: instance %d (%s on %d GPUs) cannot hold %s weights",
				i, spec.Place, n, cfg.Name)
		}
		out = append(out, Assignment{Role: spec.Role, Devices: devs, CM: cm, KVTokens: kv})
	}
	return out, nil
}

// intraLink picks the link used for TP collectives within one instance:
// the slowest path inside each TP group bounds the collective.
func intraLink(topo *gpu.Topology, devs []gpu.DeviceID, place perf.Placement) gpu.LinkSpec {
	if len(devs) < 2 {
		return topo.Link(gpu.LinkNVLink) // unused when TP=1,PP=1
	}
	// TP groups are consecutive runs of TP devices.
	worst := gpu.LinkSpec{GBs: -1}
	for g := 0; g+place.TP <= len(devs); g += place.TP {
		for a := g; a < g+place.TP; a++ {
			for b := a + 1; b < g+place.TP; b++ {
				l := topo.PathBetween(devs[a], devs[b])
				if worst.GBs < 0 || l.GBs < worst.GBs {
					worst = l
				}
			}
		}
	}
	if worst.GBs < 0 {
		// PP-only placement: inter-stage sends use the path between
		// consecutive stages.
		worst = topo.PathBetween(devs[0], devs[1])
	}
	return worst
}

// TransferLink returns the path cross-instance KV transfers take between
// two assignments.
func TransferLink(topo *gpu.Topology, a, b Assignment) gpu.LinkSpec {
	return topo.BestPairLink(a.Devices, b.Devices)
}
