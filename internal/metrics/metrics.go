// Package metrics records per-request latency timelines and instance-level
// utilization for the WindServe experiments. The quantities here are
// exactly the paper's evaluation metrics (§5.1): TTFT (arrival → first
// token, including queuing), TPOT (mean per-token time after the first),
// their percentiles, and the SLO attainment rate — the fraction of
// requests meeting both the TTFT and TPOT SLOs.
package metrics

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"slices"
	"strconv"
	"sync"

	"windserve/internal/sim"
)

// SLO is a service level objective pair (paper Table 4).
type SLO struct {
	TTFT sim.Duration
	TPOT sim.Duration
}

// Outcome classifies how a request's lifecycle ended.
type Outcome int

const (
	// OutcomeCompleted: every output token was produced.
	OutcomeCompleted Outcome = iota
	// OutcomeAborted: terminated in flight — a TTFT-deadline abort or a
	// client cancellation.
	OutcomeAborted
	// OutcomeRejected: shed at admission before any work was done.
	OutcomeRejected
)

func (o Outcome) String() string {
	switch o {
	case OutcomeCompleted:
		return "completed"
	case OutcomeAborted:
		return "aborted"
	case OutcomeRejected:
		return "rejected"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Record is the life of one request through the serving system.
type Record struct {
	ID           uint64
	PromptTokens int
	// OutputTokens is the planned output length; Emitted counts tokens
	// actually produced by the time the record finalized. For completed
	// requests they agree; an aborted request stops short, and its TPOT
	// must average over the gaps that actually happened, not the plan.
	OutputTokens int
	Emitted      int
	Outcome      Outcome

	Arrival      sim.Time
	PrefillStart sim.Time // prefill began executing
	FirstToken   sim.Time // prefill finished (first output token emitted)
	DecodeStart  sim.Time // first decode iteration began
	Completion   sim.Time // EOS emitted (or the abort/reject instant)

	done bool
}

// TTFT is the time-to-first-token including queuing delay.
func (r *Record) TTFT() sim.Duration { return r.FirstToken.Sub(r.Arrival) }

// tokensOut is the token count TPOT averages over: tokens actually
// emitted once the record is finalized, the planned output length for
// hand-built or still-open records (where Emitted was never set).
func (r *Record) tokensOut() int {
	if r.done || r.Emitted > 0 {
		return r.Emitted
	}
	return r.OutputTokens
}

// TPOT is the mean time per emitted token excluding the first. Requests
// that produced at most one token have no inter-token gaps; their TPOT
// is 0. Aborted requests average over the tokens they actually emitted —
// dividing their truncated decode span by the planned OutputTokens would
// deflate TPOT percentiles and SLO attainment under fault plans.
func (r *Record) TPOT() sim.Duration {
	n := r.tokensOut()
	if n <= 1 {
		return 0
	}
	return sim.Duration(r.Completion.Sub(r.FirstToken).Seconds() / float64(n-1))
}

// E2E is the total latency from arrival to completion.
func (r *Record) E2E() sim.Duration { return r.Completion.Sub(r.Arrival) }

// PrefillQueueDelay is the time spent waiting before prefill began.
func (r *Record) PrefillQueueDelay() sim.Duration { return r.PrefillStart.Sub(r.Arrival) }

// DecodeQueueDelay is the time between first token and the first decode
// step (KV transfer + decode queue for disaggregated systems). Zero for
// requests that never reached decode (single-token outputs, aborts
// during the handoff).
func (r *Record) DecodeQueueDelay() sim.Duration {
	if r.tokensOut() <= 1 || r.DecodeStart == 0 {
		return 0
	}
	return r.DecodeStart.Sub(r.FirstToken)
}

// MeetsSLO reports whether the request met both targets.
func (r *Record) MeetsSLO(slo SLO) bool {
	return r.TTFT() <= slo.TTFT && r.TPOT() <= slo.TPOT
}

// Recorder accumulates request records during a simulation.
type Recorder struct {
	open      map[uint64]*Record
	completed []*Record
	aborted   []*Record
	rejected  []*Record
	// idsScratch backs OpenIDs, so the fault-recovery path (which calls
	// it on every crash and cancellation event) reuses one buffer instead
	// of allocating and sorting a fresh slice per call.
	idsScratch []uint64
	// stream, when non-nil, folds finalized records into online aggregates
	// and recycles the Record structs past a retention cap, bounding memory
	// on long horizons. Nil for the exact (default) recorder.
	stream *streamAgg
}

// NewRecorder returns an empty exact recorder: every finalized record is
// retained, and Summarize computes exact percentiles over all of them.
func NewRecorder() *Recorder {
	return &Recorder{open: make(map[uint64]*Record)}
}

// Arrive registers a new request.
func (rec *Recorder) Arrive(id uint64, prompt, output int, at sim.Time) {
	if _, ok := rec.open[id]; ok {
		panic(fmt.Sprintf("metrics: duplicate arrival for request %d", id))
	}
	if s := rec.stream; s != nil {
		if n := len(s.free); n > 0 {
			r := s.free[n-1]
			s.free = s.free[:n-1]
			*r = Record{ID: id, PromptTokens: prompt, OutputTokens: output, Arrival: at}
			rec.open[id] = r
			return
		}
	}
	rec.open[id] = &Record{ID: id, PromptTokens: prompt, OutputTokens: output, Arrival: at}
}

func (rec *Recorder) get(id uint64) *Record {
	r, ok := rec.open[id]
	if !ok {
		panic(fmt.Sprintf("metrics: unknown request %d", id))
	}
	return r
}

// PrefillStart marks the beginning of prefill execution. Called once; for
// chunked prefill, on the first chunk.
func (rec *Recorder) PrefillStart(id uint64, at sim.Time) {
	r := rec.get(id)
	if r.PrefillStart == 0 {
		r.PrefillStart = at
	}
}

// FirstToken marks prefill completion (first call wins — a request that
// re-prefills after crash recovery already streamed its first token).
func (rec *Recorder) FirstToken(id uint64, at sim.Time) {
	r := rec.get(id)
	if r.FirstToken == 0 {
		r.FirstToken = at
	}
}

// DecodeStart marks the first decode iteration (first call wins).
func (rec *Recorder) DecodeStart(id uint64, at sim.Time) {
	r := rec.get(id)
	if r.DecodeStart == 0 {
		r.DecodeStart = at
	}
}

// Complete marks EOS and finalizes the record.
func (rec *Recorder) Complete(id uint64, at sim.Time) {
	r := rec.get(id)
	r.Completion = at
	r.Emitted = r.OutputTokens
	r.done = true
	if s := rec.stream; s != nil {
		s.observeCompleted(r)
		rec.completed = s.retain(rec.completed, r)
	} else {
		rec.completed = append(rec.completed, r)
	}
	delete(rec.open, id)
}

// Abort finalizes an in-flight request as aborted (deadline miss or
// client cancellation), recording how many output tokens it actually
// produced so TPOT averages over real gaps. Its record leaves the open
// set so it no longer counts as outstanding, and it never joins the
// completed list.
func (rec *Recorder) Abort(id uint64, at sim.Time, emitted int) {
	r := rec.get(id)
	r.Completion = at
	if emitted < 0 {
		emitted = 0
	}
	if emitted > r.OutputTokens {
		emitted = r.OutputTokens
	}
	r.Emitted = emitted
	r.Outcome = OutcomeAborted
	r.done = true
	if s := rec.stream; s != nil {
		s.observeClass(&s.aborted, r)
		rec.aborted = s.retain(rec.aborted, r)
	} else {
		rec.aborted = append(rec.aborted, r)
	}
	delete(rec.open, id)
}

// Reject finalizes a request shed at admission.
func (rec *Recorder) Reject(id uint64, at sim.Time) {
	r := rec.get(id)
	r.Completion = at
	r.Outcome = OutcomeRejected
	r.done = true
	if s := rec.stream; s != nil {
		s.observeClass(&s.rejected, r)
		rec.rejected = s.retain(rec.rejected, r)
	} else {
		rec.rejected = append(rec.rejected, r)
	}
	delete(rec.open, id)
}

// Completed returns finalized records in completion order.
func (rec *Recorder) Completed() []*Record { return rec.completed }

// Aborted returns aborted records in abort order.
func (rec *Recorder) Aborted() []*Record { return rec.aborted }

// Rejected returns shed records in rejection order.
func (rec *Recorder) Rejected() []*Record { return rec.rejected }

// Outstanding returns the number of requests still in flight.
func (rec *Recorder) Outstanding() int { return len(rec.open) }

// InFlight reports whether the request is still open (arrived, not yet
// completed, aborted, or rejected).
func (rec *Recorder) InFlight(id uint64) bool {
	_, ok := rec.open[id]
	return ok
}

// HasFirstToken reports whether an in-flight request has produced its
// first output token (false for unknown or finalized requests).
func (rec *Recorder) HasFirstToken(id uint64) bool {
	r, ok := rec.open[id]
	return ok && r.FirstToken != 0
}

// OpenIDs returns the in-flight request ids in ascending order — the
// deterministic sampling frame for client-cancellation faults. The
// returned slice is the recorder's scratch buffer: it stays valid only
// until the next OpenIDs call, and callers must not retain it.
func (rec *Recorder) OpenIDs() []uint64 {
	ids := rec.idsScratch[:0]
	if cap(ids) < len(rec.open) {
		ids = make([]uint64, 0, len(rec.open))
	}
	for id := range rec.open {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	rec.idsScratch = ids
	return ids
}

// Summary is the digest the benchmark harness prints (one row per system
// per request rate in Fig. 10/11).
type Summary struct {
	Requests int

	TTFTP50, TTFTP90, TTFTP99 sim.Duration
	TPOTP50, TPOTP90, TPOTP99 sim.Duration
	TTFTMean, TPOTMean        sim.Duration

	PrefillQueueMean sim.Duration
	DecodeQueueMean  sim.Duration
	DecodeQueueP99   sim.Duration

	// Attainment is the fraction of requests meeting both SLOs; the
	// TTFT/TPOT variants count each target alone (Fig. 12 diagnoses which
	// target binds).
	Attainment     float64
	TTFTAttainment float64
	TPOTAttainment float64

	ThroughputRPS float64 // completed requests per second of span
	// GoodputRPS counts only SLO-attaining completions per second — the
	// quantity load shedding is meant to protect: work the system both
	// finished and finished fast enough.
	GoodputRPS   float64
	TokensPerSec float64 // output tokens per second of span
}

// summarizeScratch pools the percentile sort buffers Summarize fills and
// discards on every call — one call per printed row and per run, and the
// parallel experiment runner summarizes several runs concurrently, so the
// scratch is a sync.Pool rather than package-level state.
var summarizeScratch = sync.Pool{New: func() any { return new(scratchBufs) }}

type scratchBufs struct{ ttft, tpot, dq []float64 }

// grow returns buf resized to n, reallocating only when capacity is short.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Summarize digests the completed records against an SLO.
func Summarize(records []*Record, slo SLO) Summary {
	if len(records) == 0 {
		return Summary{}
	}
	n := len(records)
	sc := summarizeScratch.Get().(*scratchBufs)
	defer summarizeScratch.Put(sc)
	sc.ttft = grow(sc.ttft, n)
	sc.tpot = grow(sc.tpot, n)
	sc.dq = grow(sc.dq, n)
	ttft, tpot, dq := sc.ttft, sc.tpot, sc.dq
	var ttftSum, tpotSum, pqSum, dqSum float64
	var meets, meetsTTFT, meetsTPOT int
	minArr, maxDone := records[0].Arrival, records[0].Completion
	outTokens := 0
	for i, r := range records {
		ttft[i] = r.TTFT().Seconds()
		tpot[i] = r.TPOT().Seconds()
		dq[i] = r.DecodeQueueDelay().Seconds()
		ttftSum += ttft[i]
		tpotSum += tpot[i]
		pqSum += r.PrefillQueueDelay().Seconds()
		dqSum += dq[i]
		if r.TTFT() <= slo.TTFT {
			meetsTTFT++
		}
		if r.TPOT() <= slo.TPOT {
			meetsTPOT++
		}
		if r.MeetsSLO(slo) {
			meets++
		}
		if r.Arrival < minArr {
			minArr = r.Arrival
		}
		if r.Completion > maxDone {
			maxDone = r.Completion
		}
		outTokens += r.OutputTokens
	}
	slices.Sort(ttft)
	slices.Sort(tpot)
	slices.Sort(dq)
	span := maxDone.Sub(minArr).Seconds()
	s := Summary{
		Requests: n,
		TTFTP50:  sim.Seconds(pct(ttft, 50)),
		TTFTP90:  sim.Seconds(pct(ttft, 90)),
		TTFTP99:  sim.Seconds(pct(ttft, 99)),
		TPOTP50:  sim.Seconds(pct(tpot, 50)),
		TPOTP90:  sim.Seconds(pct(tpot, 90)),
		TPOTP99:  sim.Seconds(pct(tpot, 99)),
		TTFTMean: sim.Seconds(ttftSum / float64(n)),
		TPOTMean: sim.Seconds(tpotSum / float64(n)),

		PrefillQueueMean: sim.Seconds(pqSum / float64(n)),
		DecodeQueueMean:  sim.Seconds(dqSum / float64(n)),
		DecodeQueueP99:   sim.Seconds(pct(dq, 99)),

		Attainment:     float64(meets) / float64(n),
		TTFTAttainment: float64(meetsTTFT) / float64(n),
		TPOTAttainment: float64(meetsTPOT) / float64(n),
	}
	if span > 0 {
		s.ThroughputRPS = float64(n) / span
		s.GoodputRPS = float64(meets) / span
		s.TokensPerSec = float64(outTokens) / span
	}
	return s
}

// pct interpolates a percentile on pre-sorted data. An empty class is 0,
// not NaN — NaN poisons downstream CSV parsing and comparisons the first
// time a fault plan empties a class (e.g. zero aborted requests).
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// WriteRecordsCSV emits one line per completed request — the raw material
// for latency CDFs and scatter plots outside this repo. Rows are formatted
// with strconv into one reusable buffer (a single string allocation per
// row instead of one per field) and written through a large bufio.Writer:
// on a mega-run export the per-row work, not the disk, is the bottleneck.
func WriteRecordsCSV(w io.Writer, records []*Record) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := csv.NewWriter(bw)
	if err := cw.Write([]string{
		"id", "prompt_tokens", "output_tokens",
		"arrival_s", "prefill_start_s", "first_token_s", "decode_start_s", "completion_s",
		"ttft_ms", "tpot_ms", "e2e_ms", "prefill_queue_ms", "decode_queue_ms",
		"outcome", "emitted_tokens",
	}); err != nil {
		return err
	}
	var row [15]string
	var marks [16]int
	buf := make([]byte, 0, 256)
	for _, r := range records {
		buf = buf[:0]
		marks[0] = 0
		appendMark := func(i int) { marks[i+1] = len(buf) }
		buf = strconv.AppendUint(buf, r.ID, 10)
		appendMark(0)
		buf = strconv.AppendInt(buf, int64(r.PromptTokens), 10)
		appendMark(1)
		buf = strconv.AppendInt(buf, int64(r.OutputTokens), 10)
		appendMark(2)
		for i, t := range [5]float64{
			float64(r.Arrival), float64(r.PrefillStart), float64(r.FirstToken),
			float64(r.DecodeStart), float64(r.Completion),
		} {
			buf = strconv.AppendFloat(buf, t, 'f', 6, 64)
			appendMark(3 + i)
		}
		for i, d := range [5]float64{
			r.TTFT().Milliseconds(), r.TPOT().Milliseconds(), r.E2E().Milliseconds(),
			r.PrefillQueueDelay().Milliseconds(), r.DecodeQueueDelay().Milliseconds(),
		} {
			buf = strconv.AppendFloat(buf, d, 'f', 4, 64)
			appendMark(8 + i)
		}
		buf = strconv.AppendInt(buf, int64(r.tokensOut()), 10)
		appendMark(13)
		line := string(buf)
		for i := 0; i < 13; i++ {
			row[i] = line[marks[i]:marks[i+1]]
		}
		row[13] = r.Outcome.String()
		row[14] = line[marks[13]:marks[14]]
		if err := cw.Write(row[:]); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	return bw.Flush()
}

// Gauge integrates a piecewise-constant value over virtual time — used for
// the Fig. 2 utilization measurements (tensor-core utilization of prefill
// instances, memory-bandwidth utilization of decode instances).
type Gauge struct {
	weighted float64 // ∫ value dt
	total    float64 // ∫ dt
}

// AddInterval accumulates value over [from, to].
func (g *Gauge) AddInterval(from, to sim.Time, value float64) {
	if to < from {
		panic("metrics: gauge interval ends before it starts")
	}
	dt := to.Sub(from).Seconds()
	g.weighted += value * dt
	g.total += dt
}

// Mean returns the time-weighted mean over all recorded intervals,
// treating uncovered time as not observed.
func (g *Gauge) Mean() float64 {
	if g.total == 0 {
		return 0
	}
	return g.weighted / g.total
}

// MeanOver returns the time-weighted mean across a full window of length
// span, counting unobserved time as zero (idle).
func (g *Gauge) MeanOver(span sim.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return g.weighted / span.Seconds()
}

// ObservedTime returns the total covered time.
func (g *Gauge) ObservedTime() sim.Duration { return sim.Seconds(g.total) }

// Series is an append-only time series for plotted quantities (queue
// depths, free blocks, ...).
//
// Setting Cap (>= 2) before the first Append bounds the retained points:
// once the series fills, resolution halves — adjacent points merge into
// buckets holding their count-weighted mean, stamped with the bucket's
// first sample time — and later samples fold into the trailing bucket
// until it reaches the current stride. Mean and Max stay exact regardless
// (tracked as running aggregates over every sample); only the plotted
// shape is decimated. Cap == 0 retains every sample, unchanged.
type Series struct {
	Name string
	Cap  int
	T    []sim.Time
	V    []float64

	cnt    []int // samples merged into each retained point (Cap > 0 only)
	stride int   // samples a full bucket holds; doubles at each compression
	lastT  sim.Time
	total  int
	sum    float64
	max    float64
}

// Append adds a sample. Samples must arrive in time order.
func (s *Series) Append(t sim.Time, v float64) {
	if s.total > 0 && t < s.lastT {
		panic("metrics: series sample out of order")
	}
	s.lastT = t
	s.sum += v
	if s.total == 0 || v > s.max {
		s.max = v
	}
	s.total++
	if s.Cap > 1 {
		if s.stride == 0 {
			s.stride = 1
		}
		if last := len(s.cnt) - 1; last >= 0 && s.cnt[last] < s.stride {
			c := float64(s.cnt[last])
			s.V[last] = (s.V[last]*c + v) / (c + 1)
			s.cnt[last]++
			return
		}
		if len(s.T) >= s.Cap {
			s.compress()
		}
		s.cnt = append(s.cnt, 1)
	}
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// compress halves the series resolution in place: adjacent buckets merge
// into their count-weighted mean at the earlier bucket's timestamp.
func (s *Series) compress() {
	j := 0
	for i := 0; i < len(s.T); i += 2 {
		if i+1 < len(s.T) {
			ca, cb := float64(s.cnt[i]), float64(s.cnt[i+1])
			s.V[j] = (s.V[i]*ca + s.V[i+1]*cb) / (ca + cb)
			s.cnt[j] = s.cnt[i] + s.cnt[i+1]
		} else {
			s.V[j] = s.V[i]
			s.cnt[j] = s.cnt[i]
		}
		s.T[j] = s.T[i]
		j++
	}
	s.T = s.T[:j]
	s.V = s.V[:j]
	s.cnt = s.cnt[:j]
	s.stride *= 2
}

// Len returns the number of retained points (== samples when uncapped).
func (s *Series) Len() int { return len(s.T) }

// Samples returns the total number of samples ever appended.
func (s *Series) Samples() int { return s.total }

// Mean returns the exact unweighted mean over all appended samples.
func (s *Series) Mean() float64 {
	if s.total == 0 {
		return 0
	}
	return s.sum / float64(s.total)
}

// Max returns the exact largest appended sample (0 if empty).
func (s *Series) Max() float64 {
	if s.total == 0 {
		return 0
	}
	return s.max
}
