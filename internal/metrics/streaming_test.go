package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"windserve/internal/sim"
)

// driveRecorders feeds the same synthetic lifecycle stream into an exact
// and a streaming recorder.
func driveRecorders(n int, slo SLO, maxRecords int) (*Recorder, *Recorder) {
	exact := NewRecorder()
	stream := NewStreamingRecorder(slo, maxRecords)
	rng := rand.New(rand.NewSource(42))
	now := sim.Time(0)
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		now = now.Add(sim.Duration(rng.ExpFloat64() * 0.05))
		arr := now
		ttft := sim.Duration(0.02 + rng.ExpFloat64()*0.08)
		tokens := 2 + rng.Intn(200)
		tpot := sim.Duration(0.01 + rng.Float64()*0.04)
		for _, rec := range []*Recorder{exact, stream} {
			rec.Arrive(id, 100+rng.Intn(5)*0, tokens, arr)
			rec.PrefillStart(id, arr.Add(ttft/2))
			rec.FirstToken(id, arr.Add(ttft))
			rec.DecodeStart(id, arr.Add(ttft+0.005))
			rec.Complete(id, arr.Add(ttft+sim.Duration(float64(tpot)*float64(tokens-1))))
		}
	}
	return exact, stream
}

// TestStreamingAgreesWithExact is the satellite's acceptance check: on
// 100k samples the streaming digest matches the exact Summarize on
// count and means bit-for-bit (same accumulation order), attainment
// exactly, and percentile sketches within 1%.
func TestStreamingAgreesWithExact(t *testing.T) {
	slo := SLO{TTFT: sim.Seconds(0.1), TPOT: sim.Seconds(0.04)}
	exact, stream := driveRecorders(100_000, slo, 1000)
	want := Summarize(exact.Completed(), slo)
	got := stream.StreamSummary()

	if got.Requests != want.Requests {
		t.Fatalf("Requests: stream %d, exact %d", got.Requests, want.Requests)
	}
	exactFields := map[string][2]float64{
		"TTFTMean":         {got.TTFTMean.Seconds(), want.TTFTMean.Seconds()},
		"TPOTMean":         {got.TPOTMean.Seconds(), want.TPOTMean.Seconds()},
		"PrefillQueueMean": {got.PrefillQueueMean.Seconds(), want.PrefillQueueMean.Seconds()},
		"DecodeQueueMean":  {got.DecodeQueueMean.Seconds(), want.DecodeQueueMean.Seconds()},
		"Attainment":       {got.Attainment, want.Attainment},
		"TTFTAttainment":   {got.TTFTAttainment, want.TTFTAttainment},
		"TPOTAttainment":   {got.TPOTAttainment, want.TPOTAttainment},
		"ThroughputRPS":    {got.ThroughputRPS, want.ThroughputRPS},
		"GoodputRPS":       {got.GoodputRPS, want.GoodputRPS},
		"TokensPerSec":     {got.TokensPerSec, want.TokensPerSec},
	}
	for name, v := range exactFields {
		if v[0] != v[1] {
			t.Errorf("%s: stream %v != exact %v (must be identical)", name, v[0], v[1])
		}
	}
	sketchFields := map[string][2]float64{
		"TTFTP50": {got.TTFTP50.Seconds(), want.TTFTP50.Seconds()},
		"TTFTP99": {got.TTFTP99.Seconds(), want.TTFTP99.Seconds()},
		"TPOTP50": {got.TPOTP50.Seconds(), want.TPOTP50.Seconds()},
		"TPOTP99": {got.TPOTP99.Seconds(), want.TPOTP99.Seconds()},
	}
	for name, v := range sketchFields {
		if err := math.Abs(v[0]-v[1]) / v[1]; err > 0.01 {
			t.Errorf("%s: sketch %v vs exact %v, relative error %.4f > 1%%", name, v[0], v[1], err)
		}
	}
}

// TestStreamingRetentionCap: the streaming recorder keeps only the first
// maxRecords records per class and recycles the rest.
func TestStreamingRetentionCap(t *testing.T) {
	slo := SLO{TTFT: sim.Seconds(0.1), TPOT: sim.Seconds(0.04)}
	_, stream := driveRecorders(5000, slo, 100)
	if n := len(stream.Completed()); n != 100 {
		t.Errorf("retained %d completed records, want cap 100", n)
	}
	cs := stream.ClassStats(OutcomeCompleted)
	if cs.Count != 5000 {
		t.Errorf("class count %d, want 5000", cs.Count)
	}
	if cs.E2EMean <= 0 || cs.E2EMax < cs.E2EMean {
		t.Errorf("implausible class stats: %v", cs)
	}
	// The retained head must be the first records in completion order.
	if stream.Completed()[0].ID == 0 || stream.Completed()[99].Completion == 0 {
		t.Error("retained records look unfinalized")
	}
}

// TestStreamingAbortReject covers the other classes' digests and pooling.
func TestStreamingAbortReject(t *testing.T) {
	slo := SLO{TTFT: sim.Seconds(0.1), TPOT: sim.Seconds(0.04)}
	rec := NewStreamingRecorder(slo, 10)
	for i := 0; i < 50; i++ {
		id := uint64(i + 1)
		rec.Arrive(id, 10, 5, sim.Time(float64(i)))
		switch i % 3 {
		case 0:
			rec.Reject(id, sim.Time(float64(i)+0.001))
		case 1:
			rec.FirstToken(id, sim.Time(float64(i)+0.1))
			rec.Abort(id, sim.Time(float64(i)+0.2), 2)
		default:
			rec.FirstToken(id, sim.Time(float64(i)+0.1))
			rec.Complete(id, sim.Time(float64(i)+0.3))
		}
	}
	if got := rec.ClassStats(OutcomeRejected).Count; got != 17 {
		t.Errorf("rejected count %d, want 17", got)
	}
	if got := rec.ClassStats(OutcomeAborted).Count; got != 17 {
		t.Errorf("aborted count %d, want 17", got)
	}
	if got := rec.ClassStats(OutcomeCompleted).Count; got != 16 {
		t.Errorf("completed count %d, want 16", got)
	}
	if n := len(rec.Aborted()); n != 10 {
		t.Errorf("retained %d aborted records, want cap 10", n)
	}
	if rec.Outstanding() != 0 {
		t.Errorf("outstanding %d, want 0", rec.Outstanding())
	}
}

// TestSeriesDecimation: a capped series stays under its cap, keeps exact
// Mean/Max, and retains time-ordered points.
func TestSeriesDecimation(t *testing.T) {
	s := Series{Name: "queue", Cap: 64}
	rng := rand.New(rand.NewSource(5))
	n := 10_000
	sum, max := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := rng.Float64() * 100
		sum += v
		if i == 0 || v > max {
			max = v
		}
		s.Append(sim.Time(float64(i)), v)
	}
	if s.Len() > 64 {
		t.Errorf("retained %d points, want <= cap 64", s.Len())
	}
	if s.Samples() != n {
		t.Errorf("Samples = %d, want %d", s.Samples(), n)
	}
	if got := s.Mean(); math.Abs(got-sum/float64(n)) > 1e-9 {
		t.Errorf("Mean = %v, want exact %v", got, sum/float64(n))
	}
	if got := s.Max(); got != max {
		t.Errorf("Max = %v, want exact %v", got, max)
	}
	for i := 1; i < s.Len(); i++ {
		if s.T[i] <= s.T[i-1] {
			t.Fatalf("decimated timestamps not increasing at %d", i)
		}
	}
	// Decimated values are means of uniform[0,100) buckets: all in range.
	for i, v := range s.V {
		if v < 0 || v > 100 {
			t.Errorf("decimated point %d out of range: %v", i, v)
		}
	}
}

// TestSeriesUncappedUnchanged pins the default path: no cap, every sample
// retained, Mean/Max as before.
func TestSeriesUncappedUnchanged(t *testing.T) {
	var s Series
	s.Append(1, 5)
	s.Append(2, 3)
	s.Append(3, 8)
	if s.Len() != 3 || s.Samples() != 3 {
		t.Fatalf("Len=%d Samples=%d, want 3,3", s.Len(), s.Samples())
	}
	if s.Mean() != (5+3+8)/3.0 || s.Max() != 8 {
		t.Errorf("Mean=%v Max=%v", s.Mean(), s.Max())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(2, 1)
}

// TestWriteRecordsCSVFormat pins the strconv fast path against the
// fmt.Sprintf formatting it replaced.
func TestWriteRecordsCSVFormat(t *testing.T) {
	rec := NewRecorder()
	rec.Arrive(7, 128, 32, 1.25)
	rec.PrefillStart(7, 1.375)
	rec.FirstToken(7, 1.5)
	rec.DecodeStart(7, 1.625)
	rec.Complete(7, 3.875)
	var sb strings.Builder
	if err := WriteRecordsCSV(&sb, rec.Completed()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	want := "7,128,32,1.250000,1.375000,1.500000,1.625000,3.875000," +
		"250.0000,76.6129,2625.0000,125.0000,125.0000,completed,32"
	if lines[1] != want {
		t.Errorf("row = %q\nwant  %q", lines[1], want)
	}
}
