package metrics

import (
	"fmt"

	"windserve/internal/sim"
	"windserve/internal/stats"
)

// ClassStats is the bounded-memory per-outcome digest a streaming
// recorder maintains: how many records finalized in the class, and the
// mean and max end-to-end latency among them.
type ClassStats struct {
	Count   int
	E2EMean sim.Duration
	E2EMax  sim.Duration
}

// classAgg accumulates one outcome class online.
type classAgg struct {
	count  int
	e2eSum float64
	e2eMax float64
}

func (c *classAgg) stats() ClassStats {
	s := ClassStats{Count: c.count, E2EMax: sim.Seconds(c.e2eMax)}
	if c.count > 0 {
		s.E2EMean = sim.Seconds(c.e2eSum / float64(c.count))
	}
	return s
}

// streamAgg folds finalized records into the online aggregates a Summary
// needs — exact sums, counts, extremes, and SLO attainment, plus P²
// sketches for the percentile fields — so a run's memory no longer scales
// with its request count. Everything except the percentile estimates is
// exact: attainment is counted per record at finalize time against the
// SLO the recorder was built with, and means accumulate in completion
// order, matching what Summarize would compute over the full record set.
type streamAgg struct {
	slo        SLO
	maxRecords int

	completedAgg classAgg
	aborted      classAgg
	rejected     classAgg

	ttftSum, tpotSum, pqSum, dqSum float64
	meets, meetsTTFT, meetsTPOT    int
	minArr, maxDone                sim.Time
	outTokens                      int

	ttftQ [3]*stats.P2Quantile // p50, p90, p99
	tpotQ [3]*stats.P2Quantile
	dqQ   *stats.P2Quantile

	// free recycles Record structs dropped past the retention cap.
	free []*Record
}

// DefaultMaxRecords is the per-class retention cap a streaming recorder
// uses when none is given: enough for CDF plots and spot checks, small
// enough that a million-request run keeps O(10^4) records alive.
const DefaultMaxRecords = 10_000

// NewStreamingRecorder returns a recorder that digests finalized records
// into online aggregates, retaining only the first maxRecords records per
// outcome class (DefaultMaxRecords if maxRecords <= 0). The SLO must be
// supplied up front because attainment is counted as records finalize.
// Use StreamSummary to read the digest; lifecycle methods and the open-set
// queries behave exactly as on an exact recorder.
func NewStreamingRecorder(slo SLO, maxRecords int) *Recorder {
	if maxRecords <= 0 {
		maxRecords = DefaultMaxRecords
	}
	s := &streamAgg{slo: slo, maxRecords: maxRecords}
	for i, p := range []float64{0.5, 0.9, 0.99} {
		s.ttftQ[i] = stats.NewP2Quantile(p)
		s.tpotQ[i] = stats.NewP2Quantile(p)
	}
	s.dqQ = stats.NewP2Quantile(0.99)
	return &Recorder{open: make(map[uint64]*Record), stream: s}
}

// Streaming reports whether this recorder digests records online.
func (rec *Recorder) Streaming() bool { return rec.stream != nil }

// ClassStats returns the online per-class digest. It requires a streaming
// recorder; exact recorders keep every record, so callers there compute
// whatever they need from Completed/Aborted/Rejected directly.
func (rec *Recorder) ClassStats(o Outcome) ClassStats {
	s := rec.stream
	if s == nil {
		panic("metrics: ClassStats requires a streaming recorder")
	}
	switch o {
	case OutcomeCompleted:
		return s.completedAgg.stats()
	case OutcomeAborted:
		return s.aborted.stats()
	default:
		return s.rejected.stats()
	}
}

// retain appends r to a finalized-record list if it is under the cap,
// otherwise recycles the struct for a future Arrive.
func (s *streamAgg) retain(list []*Record, r *Record) []*Record {
	if len(list) < s.maxRecords {
		return append(list, r)
	}
	s.free = append(s.free, r)
	return list
}

// observeClass folds a finalized record into its outcome-class digest.
func (s *streamAgg) observeClass(c *classAgg, r *Record) {
	e2e := r.E2E().Seconds()
	c.e2eSum += e2e
	if c.count == 0 || e2e > c.e2eMax {
		c.e2eMax = e2e
	}
	c.count++
}

// observeCompleted folds a completed record into the Summary aggregates.
// The accumulation order is completion order — the same order Summarize
// walks the completed list in — so the exact fields agree bit-for-bit.
func (s *streamAgg) observeCompleted(r *Record) {
	s.observeClass(&s.completedAgg, r)
	ttft := r.TTFT().Seconds()
	tpot := r.TPOT().Seconds()
	dq := r.DecodeQueueDelay().Seconds()
	s.ttftSum += ttft
	s.tpotSum += tpot
	s.pqSum += r.PrefillQueueDelay().Seconds()
	s.dqSum += dq
	if r.TTFT() <= s.slo.TTFT {
		s.meetsTTFT++
	}
	if r.TPOT() <= s.slo.TPOT {
		s.meetsTPOT++
	}
	if r.MeetsSLO(s.slo) {
		s.meets++
	}
	if s.completedAgg.count == 1 {
		s.minArr, s.maxDone = r.Arrival, r.Completion
	} else {
		if r.Arrival < s.minArr {
			s.minArr = r.Arrival
		}
		if r.Completion > s.maxDone {
			s.maxDone = r.Completion
		}
	}
	s.outTokens += r.OutputTokens
	for i := range s.ttftQ {
		s.ttftQ[i].Add(ttft)
		s.tpotQ[i].Add(tpot)
	}
	s.dqQ.Add(dq)
}

// StreamSummary assembles a Summary from the online aggregates. Counts,
// means, attainment, and throughput are exact; the percentile fields are
// P² estimates (within ~1% of exact in the tested regimes). Requires a
// streaming recorder.
func (rec *Recorder) StreamSummary() Summary {
	st := rec.stream
	if st == nil {
		panic("metrics: StreamSummary requires a streaming recorder")
	}
	n := st.completedAgg.count
	if n == 0 {
		return Summary{}
	}
	span := st.maxDone.Sub(st.minArr).Seconds()
	s := Summary{
		Requests: n,
		TTFTP50:  sim.Seconds(st.ttftQ[0].Value()),
		TTFTP90:  sim.Seconds(st.ttftQ[1].Value()),
		TTFTP99:  sim.Seconds(st.ttftQ[2].Value()),
		TPOTP50:  sim.Seconds(st.tpotQ[0].Value()),
		TPOTP90:  sim.Seconds(st.tpotQ[1].Value()),
		TPOTP99:  sim.Seconds(st.tpotQ[2].Value()),
		TTFTMean: sim.Seconds(st.ttftSum / float64(n)),
		TPOTMean: sim.Seconds(st.tpotSum / float64(n)),

		PrefillQueueMean: sim.Seconds(st.pqSum / float64(n)),
		DecodeQueueMean:  sim.Seconds(st.dqSum / float64(n)),
		DecodeQueueP99:   sim.Seconds(st.dqQ.Value()),

		Attainment:     float64(st.meets) / float64(n),
		TTFTAttainment: float64(st.meetsTTFT) / float64(n),
		TPOTAttainment: float64(st.meetsTPOT) / float64(n),
	}
	if span > 0 {
		s.ThroughputRPS = float64(n) / span
		s.GoodputRPS = float64(st.meets) / span
		s.TokensPerSec = float64(st.outTokens) / span
	}
	return s
}

// String makes ClassStats readable in test failures and debug dumps.
func (c ClassStats) String() string {
	return fmt.Sprintf("count=%d e2e_mean=%v e2e_max=%v", c.Count, c.E2EMean, c.E2EMax)
}
