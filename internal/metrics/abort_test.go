package metrics

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"

	"windserve/internal/sim"
)

// buildAborted runs one request through a recorder and aborts it mid-decode.
func buildAborted(t *testing.T, planned, emitted int, first, abortAt sim.Time) *Record {
	t.Helper()
	rec := NewRecorder()
	rec.Arrive(1, 100, planned, 0)
	rec.PrefillStart(1, 0.1)
	rec.FirstToken(1, first)
	rec.DecodeStart(1, first.Add(sim.Seconds(0.01)))
	rec.Abort(1, abortAt, emitted)
	ab := rec.Aborted()
	if len(ab) != 1 {
		t.Fatalf("aborted records = %d, want 1", len(ab))
	}
	return ab[0]
}

// TestAbortedTPOTUsesEmittedTokens is the regression test for the
// latency-accounting bug: an aborted request's TPOT must average its
// decode span over the tokens it actually emitted, not the planned
// OutputTokens. Planned 100, emitted 10, 0.9s between first token and
// abort → 9 real gaps of 0.1s. The old accounting divided by 99 and
// reported ~9ms, deflating TPOT percentiles under fault plans.
func TestAbortedTPOTUsesEmittedTokens(t *testing.T) {
	r := buildAborted(t, 100, 10, 0.5, 1.4)
	got := r.TPOT().Seconds()
	if math.Abs(got-0.1) > 1e-9 {
		t.Errorf("aborted TPOT = %vs, want 0.1s (span/emitted-1)", got)
	}
	// Explicitly rule the old behavior back in: span/(planned-1) ≈ 9.09ms.
	if old := 0.9 / 99; math.Abs(got-old) < 1e-6 {
		t.Errorf("aborted TPOT = %vs — still dividing by planned OutputTokens", got)
	}
}

func TestAbortedBeforeDecodeHasZeroTPOT(t *testing.T) {
	// Aborted after the first token but before any further emission:
	// one token, no gaps.
	r := buildAborted(t, 100, 1, 0.5, 0.6)
	if r.TPOT() != 0 {
		t.Errorf("TPOT = %v, want 0 for a single emitted token", r.TPOT())
	}
	if r.DecodeQueueDelay() != 0 {
		t.Errorf("DecodeQueueDelay = %v, want 0", r.DecodeQueueDelay())
	}
}

func TestAbortClampsEmitted(t *testing.T) {
	if r := buildAborted(t, 10, -3, 0.5, 0.6); r.tokensOut() != 0 {
		t.Errorf("negative emitted recorded as %d, want clamp to 0", r.tokensOut())
	}
	if r := buildAborted(t, 10, 25, 0.5, 0.6); r.tokensOut() != 10 {
		t.Errorf("emitted > planned recorded as %d, want clamp to 10", r.tokensOut())
	}
}

func TestCompletedRecordEmitsPlanned(t *testing.T) {
	r := buildRecord(t, 10, 1, 1.5, 2, 2.1, 2.9)
	if r.tokensOut() != 10 {
		t.Errorf("completed tokensOut = %d, want planned 10", r.tokensOut())
	}
}

func TestPctEmptyAndSingle(t *testing.T) {
	for _, p := range []float64{0, 50, 90, 99, 100} {
		if v := pct(nil, p); v != 0 {
			t.Errorf("pct(nil, %v) = %v, want 0 (never NaN)", p, v)
		}
		if v := pct([]float64{4.2}, p); v != 4.2 {
			t.Errorf("pct([4.2], %v) = %v, want 4.2", p, v)
		}
	}
}

func TestSummarizeNoNaN(t *testing.T) {
	// A summary over zero records must be all zeros — NaN poisons CSV
	// parsing the first time a fault plan empties a class.
	s := Summarize(nil, SLO{TTFT: sim.Seconds(1), TPOT: sim.Seconds(0.1)})
	for name, v := range map[string]float64{
		"TTFTP50": s.TTFTP50.Seconds(), "TTFTP99": s.TTFTP99.Seconds(),
		"TPOTP50": s.TPOTP50.Seconds(), "TPOTP99": s.TPOTP99.Seconds(),
		"Attainment": s.Attainment, "ThroughputRPS": s.ThroughputRPS,
	} {
		if math.IsNaN(v) {
			t.Errorf("Summarize(empty).%s is NaN", name)
		}
	}
}

func TestWriteRecordsCSVOutcomeColumns(t *testing.T) {
	rec := NewRecorder()
	rec.Arrive(1, 100, 50, 0)
	rec.PrefillStart(1, 0.1)
	rec.FirstToken(1, 0.5)
	rec.DecodeStart(1, 0.6)
	rec.Abort(1, 1.4, 7)
	var b strings.Builder
	if err := WriteRecordsCSV(&b, rec.Aborted()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header, row := recs[0], recs[1]
	n := len(header)
	if header[n-2] != "outcome" || header[n-1] != "emitted_tokens" {
		t.Fatalf("trailing header columns = %v, want outcome, emitted_tokens", header[n-2:])
	}
	if row[n-2] != "aborted" || row[n-1] != "7" {
		t.Errorf("trailing row columns = %v, want aborted, 7", row[n-2:])
	}
}
