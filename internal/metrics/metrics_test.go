package metrics

import (
	"encoding/csv"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"windserve/internal/sim"
)

// buildRecord runs one request through a recorder with the given timeline.
func buildRecord(t *testing.T, output int, arrival, pStart, first, dStart, done sim.Time) *Record {
	t.Helper()
	rec := NewRecorder()
	rec.Arrive(1, 100, output, arrival)
	rec.PrefillStart(1, pStart)
	rec.FirstToken(1, first)
	rec.DecodeStart(1, dStart)
	rec.Complete(1, done)
	return rec.Completed()[0]
}

func TestRecordLatencies(t *testing.T) {
	// 10 output tokens: first at t=2, done at t=2.9 → 9 gaps of 0.1.
	r := buildRecord(t, 10, 1, 1.5, 2, 2.1, 2.9)
	if got := r.TTFT(); math.Abs(got.Seconds()-1) > 1e-9 {
		t.Errorf("TTFT = %v, want 1s", got)
	}
	if got := r.TPOT(); math.Abs(got.Seconds()-0.1) > 1e-9 {
		t.Errorf("TPOT = %v, want 0.1s", got)
	}
	if got := r.E2E(); math.Abs(got.Seconds()-1.9) > 1e-9 {
		t.Errorf("E2E = %v", got)
	}
	if got := r.PrefillQueueDelay(); math.Abs(got.Seconds()-0.5) > 1e-9 {
		t.Errorf("prefill queue = %v", got)
	}
	if got := r.DecodeQueueDelay(); math.Abs(got.Seconds()-0.1) > 1e-9 {
		t.Errorf("decode queue = %v", got)
	}
}

func TestSingleTokenTPOT(t *testing.T) {
	r := buildRecord(t, 1, 0, 0, 1, 1, 1)
	if r.TPOT() != 0 {
		t.Errorf("single-token TPOT = %v, want 0", r.TPOT())
	}
	if r.DecodeQueueDelay() != 0 {
		t.Error("single-token decode queue should be 0")
	}
}

func TestMeetsSLO(t *testing.T) {
	slo := SLO{TTFT: sim.Seconds(1), TPOT: sim.Seconds(0.1)}
	good := buildRecord(t, 11, 0, 0, 0.5, 0.6, 1.5) // TTFT 0.5, TPOT 0.1
	if !good.MeetsSLO(slo) {
		t.Errorf("good record fails SLO: TTFT=%v TPOT=%v", good.TTFT(), good.TPOT())
	}
	lateFirst := buildRecord(t, 11, 0, 0, 1.5, 1.6, 2.0)
	if lateFirst.MeetsSLO(slo) {
		t.Error("TTFT violator passes")
	}
	slowTokens := buildRecord(t, 11, 0, 0, 0.5, 0.6, 3.0)
	if slowTokens.MeetsSLO(slo) {
		t.Error("TPOT violator passes")
	}
}

func TestRecorderLifecycle(t *testing.T) {
	rec := NewRecorder()
	rec.Arrive(1, 10, 5, 0)
	rec.Arrive(2, 10, 5, 1)
	if rec.Outstanding() != 2 {
		t.Errorf("Outstanding = %d", rec.Outstanding())
	}
	rec.PrefillStart(1, 2)
	rec.PrefillStart(1, 3) // second call must not overwrite
	rec.FirstToken(1, 4)
	rec.DecodeStart(1, 5)
	rec.DecodeStart(1, 6) // first call wins
	rec.Complete(1, 7)
	if rec.Outstanding() != 1 || len(rec.Completed()) != 1 {
		t.Error("lifecycle counts wrong")
	}
	r := rec.Completed()[0]
	if r.PrefillStart != 2 || r.DecodeStart != 5 {
		t.Errorf("first-call-wins violated: %+v", r)
	}
}

func TestRecorderPanics(t *testing.T) {
	rec := NewRecorder()
	rec.Arrive(1, 10, 5, 0)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate arrival should panic")
			}
		}()
		rec.Arrive(1, 10, 5, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown id should panic")
			}
		}()
		rec.FirstToken(99, 1)
	}()
}

func TestSummarize(t *testing.T) {
	rec := NewRecorder()
	// 100 requests: TTFT = i ms (i=1..100), TPOT = 50 ms each (2 tokens,
	// gap 50 ms).
	for i := 1; i <= 100; i++ {
		id := uint64(i)
		at := sim.Time(i)
		rec.Arrive(id, 10, 2, at)
		rec.PrefillStart(id, at)
		first := at.Add(sim.Milliseconds(float64(i)))
		rec.FirstToken(id, first)
		rec.DecodeStart(id, first)
		rec.Complete(id, first.Add(sim.Milliseconds(50)))
	}
	slo := SLO{TTFT: sim.Milliseconds(50), TPOT: sim.Milliseconds(60)}
	s := Summarize(rec.Completed(), slo)
	if s.Requests != 100 {
		t.Fatalf("Requests = %d", s.Requests)
	}
	if math.Abs(s.TTFTP50.Milliseconds()-50.5) > 0.6 {
		t.Errorf("TTFT P50 = %v, want ~50.5ms", s.TTFTP50)
	}
	if math.Abs(s.TTFTP99.Milliseconds()-99) > 1.1 {
		t.Errorf("TTFT P99 = %v, want ~99ms", s.TTFTP99)
	}
	if math.Abs(s.TPOTP90.Milliseconds()-50) > 1e-6 {
		t.Errorf("TPOT P90 = %v, want 50ms", s.TPOTP90)
	}
	// Exactly 50 of 100 meet TTFT <= 50 ms, all meet TPOT.
	if s.Attainment != 0.5 || s.TTFTAttainment != 0.5 || s.TPOTAttainment != 1.0 {
		t.Errorf("attainment = %v/%v/%v", s.Attainment, s.TTFTAttainment, s.TPOTAttainment)
	}
	if s.ThroughputRPS <= 0 || s.TokensPerSec <= 0 {
		t.Error("throughput not computed")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil, SLO{})
	if s.Requests != 0 || s.Attainment != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	if g.Mean() != 0 {
		t.Error("empty gauge mean should be 0")
	}
	g.AddInterval(0, 10, 0.8)
	g.AddInterval(10, 20, 0.2)
	if m := g.Mean(); math.Abs(m-0.5) > 1e-9 {
		t.Errorf("Mean = %v, want 0.5", m)
	}
	if m := g.MeanOver(sim.Seconds(40)); math.Abs(m-0.25) > 1e-9 {
		t.Errorf("MeanOver(40) = %v, want 0.25", m)
	}
	if g.ObservedTime() != 20 {
		t.Errorf("ObservedTime = %v", g.ObservedTime())
	}
	if g.MeanOver(0) != 0 {
		t.Error("MeanOver(0) should be 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backwards interval should panic")
			}
		}()
		g.AddInterval(5, 4, 1)
	}()
}

func TestSeries(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Max() != 0 || s.Len() != 0 {
		t.Error("empty series stats")
	}
	s.Append(1, 10)
	s.Append(2, 30)
	s.Append(2, 20) // equal time allowed
	if s.Len() != 3 || s.Mean() != 20 || s.Max() != 30 {
		t.Errorf("series stats = len %d mean %v max %v", s.Len(), s.Mean(), s.Max())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order append should panic")
			}
		}()
		s.Append(1, 5)
	}()
}

func TestWriteRecordsCSV(t *testing.T) {
	rec := NewRecorder()
	rec.Arrive(1, 100, 5, 0)
	rec.PrefillStart(1, 0.5)
	rec.FirstToken(1, 1)
	rec.DecodeStart(1, 1.2)
	rec.Complete(1, 2)
	var sb strings.Builder
	if err := WriteRecordsCSV(&sb, rec.Completed()); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("records = %d", len(recs))
	}
	if recs[1][0] != "1" || recs[1][1] != "100" {
		t.Errorf("row = %v", recs[1])
	}
	// TTFT column (index 8) = 1000 ms.
	if recs[1][8] != "1000.0000" {
		t.Errorf("ttft = %v", recs[1][8])
	}
}

// Property: attainment is monotone in the SLO — loosening both targets
// never lowers the attainment rate.
func TestPropertyAttainmentMonotone(t *testing.T) {
	rec := NewRecorder()
	for i := 1; i <= 200; i++ {
		id := uint64(i)
		rec.Arrive(id, 10, 5, 0)
		rec.PrefillStart(id, 0)
		first := sim.Time(float64(i) * 0.01)
		rec.FirstToken(id, first)
		rec.DecodeStart(id, first)
		rec.Complete(id, first.Add(sim.Duration(float64(i)*0.001)))
	}
	recs := rec.Completed()
	f := func(a, b uint8) bool {
		t1 := sim.Duration(float64(a%100) * 0.01)
		t2 := t1 + sim.Duration(float64(b%50)*0.01)
		s1 := Summarize(recs, SLO{TTFT: t1, TPOT: t1})
		s2 := Summarize(recs, SLO{TTFT: t2, TPOT: t2})
		return s2.Attainment >= s1.Attainment
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are ordered P50 <= P90 <= P99 and within range.
func TestPropertyPercentileOrder(t *testing.T) {
	f := func(seed uint32) bool {
		rec := NewRecorder()
		v := float64(seed%1000) + 1
		for i := 1; i <= 50; i++ {
			id := uint64(i)
			rec.Arrive(id, 10, 3, 0)
			rec.PrefillStart(id, 0)
			first := sim.Time(v * float64(i) * 1e-4)
			rec.FirstToken(id, first)
			rec.DecodeStart(id, first)
			rec.Complete(id, first.Add(0.01))
		}
		s := Summarize(rec.Completed(), SLO{})
		return s.TTFTP50 <= s.TTFTP90 && s.TTFTP90 <= s.TTFTP99 &&
			s.TPOTP50 <= s.TPOTP90 && s.TPOTP90 <= s.TPOTP99
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
