package metrics

import (
	"testing"

	"windserve/internal/sim"
)

func syntheticRecords(n int) []*Record {
	recs := make([]*Record, n)
	for i := 0; i < n; i++ {
		arr := sim.Time(float64(i) * 0.25)
		first := arr.Add(sim.Milliseconds(80 + float64(i%37)))
		recs[i] = &Record{
			ID: uint64(i), PromptTokens: 200 + i%300, OutputTokens: 64 + i%128,
			Emitted: 64 + i%128, Arrival: arr, PrefillStart: arr.Add(sim.Milliseconds(5)),
			FirstToken: first, DecodeStart: first.Add(sim.Milliseconds(12)),
			Completion: first.Add(sim.Seconds(2 + float64(i%11)/10)),
			done:       true,
		}
	}
	return recs
}

// BenchmarkSummarize measures the per-row digest — called once per
// (system, rate) point of every sweep exhibit.
func BenchmarkSummarize(b *testing.B) {
	recs := syntheticRecords(600)
	slo := SLO{TTFT: sim.Milliseconds(250), TPOT: sim.Milliseconds(100)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(recs, slo)
	}
}

// BenchmarkOpenIDs measures the fault-recovery sampling frame: sorted
// in-flight ids under a realistically sized open set.
func BenchmarkOpenIDs(b *testing.B) {
	rec := NewRecorder()
	for i := 0; i < 512; i++ {
		rec.Arrive(uint64(i*7919%100000), 100, 50, sim.Time(float64(i)*0.01))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.OpenIDs()
	}
}

// TestOpenIDsScratchReuse pins the no-allocation property after warm-up.
func TestOpenIDsScratchReuse(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 100; i++ {
		rec.Arrive(uint64(100-i), 10, 10, sim.Time(float64(i)))
	}
	ids := rec.OpenIDs() // warm the scratch
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatalf("ids not strictly ascending at %d: %d >= %d", i, ids[i-1], ids[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() { rec.OpenIDs() })
	if allocs > 0 {
		t.Fatalf("OpenIDs allocates %.1f objects/op after warm-up, want 0", allocs)
	}
}
