package engine

import (
	"fmt"

	"windserve/internal/kvcache"
	"windserve/internal/workload"
)

// Phase is a request's position in the serving pipeline.
type Phase int

// Pipeline phases. Not every system visits every phase: co-located vLLM
// never transfers, DistServe never migrates.
const (
	// PhaseWaiting: queued for prefill.
	PhaseWaiting Phase = iota
	// PhasePrefilling: prefill (possibly chunked) in progress.
	PhasePrefilling
	// PhaseTransferring: KV cache moving between instances.
	PhaseTransferring
	// PhasePendingDecode: prefilled, KV resident, waiting to join the
	// running decode batch.
	PhasePendingDecode
	// PhaseDecoding: in the running batch.
	PhaseDecoding
	// PhaseSwapped: preempted, KV in host memory.
	PhaseSwapped
	// PhaseDraining: paused for the final copy of a stall-free migration.
	PhaseDraining
	// PhaseDone: EOS produced.
	PhaseDone
	// PhaseAborted: terminated before EOS — a TTFT-deadline abort or a
	// client cancellation. Terminal; the engine drops the request from
	// every queue and releases its KV.
	PhaseAborted
)

func (p Phase) String() string {
	switch p {
	case PhaseWaiting:
		return "waiting"
	case PhasePrefilling:
		return "prefilling"
	case PhaseTransferring:
		return "transferring"
	case PhasePendingDecode:
		return "pending-decode"
	case PhaseDecoding:
		return "decoding"
	case PhaseSwapped:
		return "swapped"
	case PhaseDraining:
		return "draining"
	case PhaseDone:
		return "done"
	case PhaseAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Req is a request flowing through the simulated serving system.
type Req struct {
	W     workload.Request
	Phase Phase

	// PrefillDone counts prompt tokens already prefilled (chunked prefill
	// advances this across iterations).
	PrefillDone int
	// Generated counts output tokens produced; prefill produces the first.
	Generated int

	// Assist marks a prefill dispatched to the decode instance
	// (WindServe's Dynamic Prefill Dispatch).
	Assist bool
	// Migrating marks an in-progress stall-free migration.
	Migrating bool
	// BackupTokens is how many context tokens are already backed up at the
	// prefill instance (reduces migration cost, paper §3.3).
	BackupTokens int
	// PrefixHit is how many prompt tokens were satisfied from the
	// cross-request prefix cache when this request's KV was allocated:
	// they start out counted in PrefillDone, so prefill compute shrinks
	// by the hit length. Zero unless prefix caching is enabled. Reset
	// alongside PrefillDone when a crash or recompute-eviction forces a
	// scratch re-prefill.
	PrefixHit int
	// Evictions counts preemptions (swap-outs and recompute evictions).
	Evictions int

	// inPass marks the request as selected into a forward pass that has
	// not yet applied — pipelined prefill passes overlap, and a request
	// must never be in two passes at once.
	inPass bool
}

// NewReq wraps a workload request.
func NewReq(w workload.Request) *Req { return &Req{W: w} }

// KVID is the request's key in KV managers.
func (r *Req) KVID() kvcache.RequestID { return kvcache.RequestID(r.W.ID) }

// Ctx is the current context length (prompt plus generated tokens).
func (r *Req) Ctx() int { return r.W.PromptTokens + r.Generated }

// PrefillComplete reports whether the whole prompt has been prefilled.
func (r *Req) PrefillComplete() bool { return r.PrefillDone >= r.W.PromptTokens }

// PrefillRemaining is the number of prompt tokens still to prefill.
func (r *Req) PrefillRemaining() int { return r.W.PromptTokens - r.PrefillDone }

// Finished reports whether all output tokens have been generated.
func (r *Req) Finished() bool { return r.Generated >= r.W.OutputTokens }

func (r *Req) String() string {
	return fmt.Sprintf("req%d[%s %d/%d prompt, %d/%d out]",
		r.W.ID, r.Phase, r.PrefillDone, r.W.PromptTokens, r.Generated, r.W.OutputTokens)
}
