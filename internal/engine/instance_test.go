package engine

import (
	"testing"

	"fmt"

	"windserve/internal/gpu"
	"windserve/internal/kvcache"
	"windserve/internal/model"
	"windserve/internal/perf"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// tinyModel is a small config so tests control KV budgets precisely.
func tinyModel() model.Config {
	return model.Config{
		Name: "tiny", Layers: 4, Hidden: 512, Heads: 8, KVHeads: 8,
		FFNDim: 2048, MaxContext: 2048, VocabSize: 1000,
	}
}

type harness struct {
	s   *sim.Simulator
	ins *Instance
	kv  *kvcache.Manager

	prefilled []uint64
	decoded   []uint64
	completed []uint64
	evicted   []*Req
}

func newHarness(t *testing.T, kvTokens, cpuTokens int, mut func(*Config), hookMut func(*harness, *Hooks)) *harness {
	t.Helper()
	h := &harness{s: sim.New()}
	cm := perf.MustNew(tinyModel(), gpu.A800, perf.Placement{TP: 1, PP: 1}, gpu.NVLinkBridge, perf.DefaultParams())
	h.kv = kvcache.MustNew(kvTokens, cpuTokens, 16)
	host := xfer.NewLink(h.s, "host", gpu.HostPCIe, 1)
	cfg := Config{
		Name: "test", CM: cm, KV: h.kv, HostLink: host,
		AllowPrefill: true, MaxPrefillTokens: 4096,
	}
	if mut != nil {
		mut(&cfg)
	}
	hooks := Hooks{
		OnPrefillDone: nil,
		OnComplete:    func(r *Req) { h.completed = append(h.completed, r.W.ID) },
		OnDecodeStart: func(r *Req) { h.decoded = append(h.decoded, r.W.ID) },
	}
	hooks.OnPrefillStart = func(r *Req) { h.prefilled = append(h.prefilled, r.W.ID) }
	if hookMut != nil {
		hookMut(h, &hooks)
	}
	ins, err := NewInstance(h.s, cfg, hooks)
	if err != nil {
		t.Fatal(err)
	}
	h.ins = ins
	return h
}

func req(id uint64, prompt, output int) *Req {
	return NewReq(workload.Request{ID: id, PromptTokens: prompt, OutputTokens: output})
}

func TestReqAccessors(t *testing.T) {
	r := req(1, 100, 10)
	if r.Ctx() != 100 || r.PrefillComplete() || r.Finished() {
		t.Error("fresh request state")
	}
	r.PrefillDone = 60
	if r.PrefillRemaining() != 40 {
		t.Error("PrefillRemaining")
	}
	r.PrefillDone = 100
	r.Generated = 10
	if !r.PrefillComplete() || !r.Finished() || r.Ctx() != 110 {
		t.Error("finished request state")
	}
	if r.KVID() != kvcache.RequestID(1) {
		t.Error("KVID")
	}
	for p := PhaseWaiting; p <= PhaseDone; p++ {
		if p.String() == "" {
			t.Error("empty phase string")
		}
	}
	if Phase(99).String() == "" {
		t.Error("unknown phase string")
	}
}

func TestColocatedEndToEnd(t *testing.T) {
	h := newHarness(t, 1<<20, 1<<20, nil, nil)
	// Three requests: prefill then decode to completion locally.
	for i := 1; i <= 3; i++ {
		h.ins.EnqueuePrefill(req(uint64(i), 200, 5))
	}
	h.s.RunAll()
	if len(h.completed) != 3 {
		t.Fatalf("completed %d of 3: %v", len(h.completed), h.completed)
	}
	if len(h.prefilled) != 3 {
		t.Errorf("prefill started for %v", h.prefilled)
	}
	if h.ins.NumRunning() != 0 || h.ins.NumQueued() != 0 {
		t.Error("instance not drained")
	}
	if h.kv.UsedBlocks() != 0 {
		t.Errorf("leaked %d KV blocks", h.kv.UsedBlocks())
	}
	if h.ins.Iterations == 0 {
		t.Error("no iterations counted")
	}
}

func TestSingleTokenOutputCompletesAtPrefill(t *testing.T) {
	h := newHarness(t, 1<<20, 0, nil, nil)
	h.ins.EnqueuePrefill(req(1, 300, 1))
	h.s.RunAll()
	if len(h.completed) != 1 {
		t.Fatal("single-token request did not complete")
	}
	if len(h.decoded) != 0 {
		t.Error("single-token request should never decode")
	}
	if h.kv.UsedBlocks() != 0 {
		t.Error("KV leaked")
	}
}

func TestFCFSPrefillOrder(t *testing.T) {
	var order []uint64
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.MaxPrefillTokens = 100 // force one prompt per pass
	}, func(h *harness, hk *Hooks) {
		hk.OnPrefillDone = func(r *Req) { order = append(order, r.W.ID) }
	})
	for i := 1; i <= 4; i++ {
		h.ins.EnqueuePrefill(req(uint64(i), 100, 1))
	}
	h.s.RunAll()
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("prefill order = %v, want FCFS", order)
		}
	}
}

func TestWholePromptBatching(t *testing.T) {
	// With a 400-token budget, four 100-token prompts prefill in one pass.
	h := newHarness(t, 1<<20, 0, func(c *Config) { c.MaxPrefillTokens = 400 }, nil)
	for i := 1; i <= 4; i++ {
		h.ins.EnqueuePrefill(req(uint64(i), 100, 1))
	}
	h.s.RunAll()
	if h.ins.Iterations != 1 {
		t.Errorf("iterations = %d, want 1 batched prefill pass", h.ins.Iterations)
	}
}

func TestChunkedPrefillProgresses(t *testing.T) {
	// AlwaysChunk with a 128-token budget: a 512-token prompt needs 4
	// chunk passes.
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.ChunkSize = 128
		c.AlwaysChunk = true
	}, nil)
	h.ins.EnqueuePrefill(req(1, 512, 1))
	h.s.RunAll()
	if len(h.completed) != 1 {
		t.Fatal("chunked request did not complete")
	}
	if h.ins.Iterations != 4 {
		t.Errorf("iterations = %d, want 4 chunks", h.ins.Iterations)
	}
}

func TestHybridChunkingWhenDecodesPresent(t *testing.T) {
	// Without AlwaysChunk, chunking starts only once decodes are running:
	// request 1's prefill runs whole (queue was empty of decodes), then
	// request 2's 512-token prompt must ride along decode passes in
	// chunks of at most 128 tokens.
	tr := trace.New()
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.ChunkSize = 128
		c.Tracer = tr
	}, nil)
	h.ins.EnqueuePrefill(req(1, 256, 50)) // becomes a decode
	// Request 2 arrives once request 1 is already decoding.
	h.s.Schedule(sim.Seconds(0.02), func() { h.ins.EnqueuePrefill(req(2, 512, 1)) })
	h.s.RunAll()
	if len(h.completed) != 2 {
		t.Fatalf("completed %v", h.completed)
	}
	sawWhole, maxHybridPrefill := false, 0
	for _, sp := range tr.Filter("test") {
		var pre, dec int
		if _, err := fmt.Sscanf(sp.Detail, "pre=%d dec=%d", &pre, &dec); err != nil {
			continue
		}
		if dec == 0 && pre == 256 {
			sawWhole = true // request 1's un-chunked prefill
		}
		if dec > 0 && pre > maxHybridPrefill {
			maxHybridPrefill = pre
		}
	}
	if !sawWhole {
		t.Error("request 1 should prefill whole with no decodes running")
	}
	if maxHybridPrefill == 0 || maxHybridPrefill > 128 {
		t.Errorf("max prefill tokens in a hybrid pass = %d, want 1..128 (chunked)", maxHybridPrefill)
	}
}

func TestDecodeOnlyInstanceIgnoresPrefillQueue(t *testing.T) {
	h := newHarness(t, 1<<20, 0, func(c *Config) { c.AllowPrefill = false }, nil)
	h.ins.EnqueuePrefill(req(1, 100, 5))
	h.s.RunAll()
	if len(h.completed) != 0 {
		t.Error("decode-only instance must not prefill")
	}
	if h.ins.QueuedPrefillTokens() != 100 {
		t.Errorf("QueuedPrefillTokens = %d", h.ins.QueuedPrefillTokens())
	}
}

func TestAdmitDecodeExternalKV(t *testing.T) {
	// Decode-only instance: KV arrives via "transfer" (allocated by the
	// system), then AdmitDecode drives decoding to completion.
	h := newHarness(t, 1<<20, 0, func(c *Config) { c.AllowPrefill = false }, nil)
	r := req(1, 100, 5)
	r.PrefillDone = 100
	r.Generated = 1
	if err := h.kv.Allocate(r.KVID(), 101); err != nil {
		t.Fatal(err)
	}
	h.ins.AdmitDecode(r)
	h.s.RunAll()
	if len(h.completed) != 1 {
		t.Fatal("admitted request did not complete")
	}
	if len(h.decoded) != 1 {
		t.Error("OnDecodeStart not fired")
	}
	if h.kv.UsedBlocks() != 0 {
		t.Error("KV leaked after completion")
	}
}

func TestPreemptionSwapsAndRecovers(t *testing.T) {
	// KV for ~word 640 tokens; two requests of 256+some growth force a
	// preemption as contexts grow, then swap-in resumes and both finish.
	h := newHarness(t, 640, 1<<20, nil, nil)
	h.ins.EnqueuePrefill(req(1, 256, 120))
	h.ins.EnqueuePrefill(req(2, 256, 120))
	h.s.RunAll()
	if len(h.completed) != 2 {
		t.Fatalf("completed %v, want both", h.completed)
	}
	st := h.kv.Stats()
	if st.SwapOutEvents == 0 {
		t.Error("expected at least one preemption swap")
	}
	if st.SwapInEvents == 0 {
		t.Error("swapped request never swapped back in")
	}
	if h.ins.SwapStall <= 0 {
		t.Error("swaps should stall the engine")
	}
}

func TestEvictionToRecomputeWhenNoSwapSpace(t *testing.T) {
	var evicted []*Req
	h := newHarness(t, 640, 0 /* no swap space */, nil, func(h *harness, hk *Hooks) {
		hk.OnEvicted = func(r *Req) { evicted = append(evicted, r) }
	})
	h.ins.EnqueuePrefill(req(1, 256, 200))
	h.ins.EnqueuePrefill(req(2, 256, 200))
	h.s.RunAll()
	if h.ins.Recomputes == 0 {
		t.Fatal("expected recompute evictions without swap space")
	}
	if len(evicted) == 0 {
		t.Fatal("OnEvicted hook not called")
	}
	for _, r := range evicted {
		if r.PrefillDone != 0 {
			t.Error("evicted request should restart prefill from zero")
		}
	}
}

func TestEvictionDefaultRequeuesLocally(t *testing.T) {
	// Without OnEvicted, evicted requests re-enter the local prefill queue
	// and eventually complete (KV just large enough for one at a time).
	h := newHarness(t, 384, 0, nil, nil)
	h.ins.EnqueuePrefill(req(1, 128, 150))
	h.ins.EnqueuePrefill(req(2, 128, 150))
	h.s.RunAll()
	if len(h.completed) != 2 {
		t.Fatalf("completed %v, want both via recompute", h.completed)
	}
}

func TestSBDAssistRunsConcurrently(t *testing.T) {
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.AllowPrefill = false
		c.SBD = true
	}, nil)
	// A running decode job.
	d := req(1, 100, 400)
	d.PrefillDone, d.Generated = 100, 1
	if err := h.kv.Allocate(d.KVID(), 101); err != nil {
		t.Fatal(err)
	}
	h.ins.AdmitDecode(d)
	// An assist prefill dispatched here (KV pre-allocated by the system).
	a := req(2, 1024, 5)
	if err := h.kv.Allocate(a.KVID(), 1025); err != nil {
		t.Fatal(err)
	}
	h.ins.EnqueueAssist(a)
	h.s.RunAll()
	if len(h.completed) != 2 {
		t.Fatalf("completed %v, want both", h.completed)
	}
	// The assist must have overlapped decode iterations rather than
	// serializing: the decode stream never stops, so request 1's
	// completion time should be well below (decode iterations + full
	// prefill) serialized.
	if h.ins.AssistActive() {
		t.Error("assist still active after drain")
	}
}

func TestAssistBatchingSharesOnePass(t *testing.T) {
	// Several queued assists within the batch budget run in a single SBD
	// pass (Algorithm 1 inserts the accumulated assistRequests together);
	// an oversized backlog splits across passes.
	tr := trace.New()
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.AllowPrefill = false
		c.SBD = true
		c.AssistBatchTokens = 1024
		c.Tracer = tr
	}, nil)
	for i := 1; i <= 4; i++ {
		a := req(uint64(i), 400, 2)
		if err := h.kv.Allocate(a.KVID(), 401); err != nil {
			t.Fatal(err)
		}
		h.ins.EnqueueAssist(a)
	}
	h.s.RunAll()
	if len(h.completed) != 4 {
		t.Fatalf("completed %v", h.completed)
	}
	// 4×400 tokens under a 1024 budget → 2 passes of 2 assists each.
	passes := tr.Filter("test/stream2")
	if len(passes) != 2 {
		t.Fatalf("SBD passes = %d, want 2: %+v", len(passes), passes)
	}
	for _, p := range passes {
		if p.Detail != "2 reqs n=800" {
			t.Errorf("pass detail = %q, want batched pair", p.Detail)
		}
	}
}

func TestAssistLargerThanBudgetStillRuns(t *testing.T) {
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.AllowPrefill = false
		c.SBD = true
		c.AssistBatchTokens = 256 // smaller than the prompt
	}, nil)
	a := req(1, 1024, 2)
	if err := h.kv.Allocate(a.KVID(), 1025); err != nil {
		t.Fatal(err)
	}
	h.ins.EnqueueAssist(a)
	h.s.RunAll()
	if len(h.completed) != 1 {
		t.Fatal("oversized assist starved")
	}
}

func TestAssistWithoutSBDFallsBackToQueue(t *testing.T) {
	h := newHarness(t, 1<<20, 0, func(c *Config) { c.SBD = false }, nil)
	a := req(1, 256, 3)
	if err := h.kv.Allocate(a.KVID(), 257); err != nil {
		t.Fatal(err)
	}
	h.ins.EnqueueAssist(a)
	h.s.RunAll()
	if len(h.completed) != 1 {
		t.Fatal("assist fallback did not complete")
	}
	if !a.Assist {
		t.Error("assist flag lost")
	}
}

func TestHeadOfLineBlocksUntilKVFrees(t *testing.T) {
	// KV fits one 256-token prompt at a time; the second waits, then runs
	// after the first completes and releases.
	h := newHarness(t, 272, 0, nil, nil)
	h.ins.EnqueuePrefill(req(1, 256, 1))
	h.ins.EnqueuePrefill(req(2, 256, 1))
	h.s.RunAll()
	if len(h.completed) != 2 {
		t.Fatalf("completed %v, want both sequentially", h.completed)
	}
}

func TestMaxDecodeBatchCapsAdmission(t *testing.T) {
	// With MaxDecodeBatch=2, a third prefilled request waits in the admit
	// queue until a running slot frees, and all still finish.
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.AllowPrefill = false
		c.MaxDecodeBatch = 2
	}, nil)
	for i := 1; i <= 3; i++ {
		r := req(uint64(i), 100, 30)
		r.PrefillDone, r.Generated = 100, 1
		if err := h.kv.Allocate(r.KVID(), 101); err != nil {
			t.Fatal(err)
		}
		h.ins.AdmitDecode(r)
	}
	h.s.Step() // first scheduling pass
	if h.ins.NumRunning() != 2 || h.ins.PendingAdmits() != 1 {
		t.Fatalf("running=%d pending=%d, want 2/1", h.ins.NumRunning(), h.ins.PendingAdmits())
	}
	h.s.RunAll()
	if len(h.completed) != 3 {
		t.Fatalf("completed %v", h.completed)
	}
}

func TestObservabilityViews(t *testing.T) {
	h := newHarness(t, 1<<20, 0, nil, nil)
	h.ins.EnqueuePrefill(req(1, 300, 10))
	h.ins.EnqueuePrefill(req(2, 200, 10))
	if h.ins.QueuedPrefillTokens() != 500 {
		t.Errorf("QueuedPrefillTokens = %d", h.ins.QueuedPrefillTokens())
	}
	if !h.ins.Idle() {
		// Not yet stepped — queue is non-empty so Idle is false.
	}
	// Run one step to get busy.
	h.s.Step()
	if h.ins.BusyRemaining() <= 0 {
		t.Error("BusyRemaining should be positive during a pass")
	}
	h.s.RunAll()
	if h.ins.BusyRemaining() != 0 {
		t.Error("BusyRemaining after drain")
	}
	if !h.ins.Idle() {
		t.Error("instance should be idle after drain")
	}
	shape := h.ins.RunningShape()
	if shape.DecodeReqs != 0 {
		t.Error("RunningShape after drain")
	}
	if h.ins.FreeKVTokens() != 1<<20 {
		t.Errorf("FreeKVTokens = %d", h.ins.FreeKVTokens())
	}
}

func TestUtilizationGaugesPopulated(t *testing.T) {
	h := newHarness(t, 1<<20, 0, nil, nil)
	h.ins.EnqueuePrefill(req(1, 1024, 50))
	h.s.RunAll()
	if h.ins.ComputeGauge.ObservedTime() <= 0 {
		t.Error("compute gauge empty")
	}
	cu := h.ins.ComputeGauge.Mean()
	bu := h.ins.BWGauge.Mean()
	if cu <= 0 || cu > 1 {
		t.Errorf("compute utilization = %v", cu)
	}
	if bu <= 0 || bu > 1 {
		t.Errorf("bw utilization = %v", bu)
	}
}

func TestInsertAndRemoveRunning(t *testing.T) {
	h := newHarness(t, 1<<20, 0, func(c *Config) { c.AllowPrefill = false }, nil)
	r := req(1, 100, 50)
	r.PrefillDone, r.Generated = 100, 1
	if err := h.kv.Allocate(r.KVID(), 101); err != nil {
		t.Fatal(err)
	}
	h.ins.InsertRunning(r)
	if h.ins.NumRunning() != 1 {
		t.Fatal("InsertRunning failed")
	}
	if !h.ins.RemoveRunning(r) {
		t.Fatal("RemoveRunning failed")
	}
	if h.ins.RemoveRunning(r) {
		t.Fatal("double remove succeeded")
	}
}

func TestPPPipelinesPrefillThroughput(t *testing.T) {
	// With PP-2 (tiny model: 4 layers → 2 per stage), back-to-back
	// whole-prompt prefills overlap: 8 prompts should drain in roughly
	// half the serialized time (one initiation interval per pass plus one
	// pipeline drain), so comparing PP-2 vs PP-1 wall clock must show a
	// clear speedup despite PP-1 having lower per-pass latency.
	run := func(pp int) sim.Time {
		h := newHarness(t, 1<<20, 0, func(c *Config) {
			c.CM = perf.MustNew(tinyModel(), gpu.A800, perf.Placement{TP: 1, PP: pp}, gpu.NVLinkBridge, perf.DefaultParams())
			c.MaxPrefillTokens = 600 // one prompt per pass
		}, nil)
		for i := 1; i <= 8; i++ {
			h.ins.EnqueuePrefill(req(uint64(i), 512, 1))
		}
		h.s.RunAll()
		if len(h.completed) != 8 {
			t.Fatalf("PP-%d: completed %d", pp, len(h.completed))
		}
		return h.s.Now()
	}
	serial := run(1)
	pipelined := run(2)
	if pipelined >= serial {
		t.Errorf("PP-2 wall clock %v not below PP-1 %v for a prefill train", pipelined, serial)
	}
}

func TestPipelinedPassesDoNotDuplicateRequests(t *testing.T) {
	// A request selected into an in-flight pipelined pass must not be
	// re-selected into the next pass: each request prefills exactly once.
	var done []uint64
	h := newHarness(t, 1<<20, 0, func(c *Config) {
		c.CM = perf.MustNew(tinyModel(), gpu.A800, perf.Placement{TP: 1, PP: 2}, gpu.NVLinkBridge, perf.DefaultParams())
		c.MaxPrefillTokens = 600
	}, func(h *harness, hk *Hooks) {
		hk.OnFirstToken = func(r *Req) { done = append(done, r.W.ID) }
	})
	for i := 1; i <= 6; i++ {
		h.ins.EnqueuePrefill(req(uint64(i), 512, 1))
	}
	h.s.RunAll()
	seen := map[uint64]int{}
	for _, id := range done {
		seen[id]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("request %d prefilled %d times", id, n)
		}
	}
	if len(seen) != 6 {
		t.Errorf("only %d requests finished prefill", len(seen))
	}
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(sim.New(), Config{Name: "x"}, Hooks{}); err == nil {
		t.Fatal("missing CM/KV accepted")
	}
}
