// Package engine implements the per-instance inference engine all three
// simulated systems (vLLM, DistServe, WindServe) are built from: an
// event-driven iteration loop with continuous batching, FCFS local
// scheduling, whole-prompt and chunked prefill, hybrid batches,
// swap-based preemption, and — for WindServe's decode instances —
// stream-based disaggregation, where dispatched prefills run concurrently
// with decode iterations in a second stream.
//
// The engine provides mechanism only. Policy (where a request prefills,
// when KV moves, when to migrate) lives in internal/sched and the system
// wiring in internal/serve, attached through Hooks.
package engine

import (
	"fmt"

	"windserve/internal/kvcache"
	"windserve/internal/metrics"
	"windserve/internal/perf"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/xfer"
)

// Hooks are the policy callbacks a system attaches to an instance.
// Any hook may be nil.
type Hooks struct {
	// OnPrefillStart fires when a request's first prefill pass begins.
	OnPrefillStart func(r *Req)
	// OnFirstToken fires the moment prefill completes and the first output
	// token exists — including for requests whose output is a single token
	// (which never reach OnPrefillDone because they are already finished).
	OnFirstToken func(r *Req)
	// OnPrefillDone fires when the full prompt is prefilled and the
	// request still has tokens to decode. The request has been removed
	// from the prefill queue; the system decides what happens next (admit
	// locally, transfer, ...). The request's KV is still allocated on
	// this instance.
	OnPrefillDone func(r *Req)
	// OnDecodeStart fires when a request's first decode iteration begins.
	OnDecodeStart func(r *Req)
	// OnComplete fires at EOS. The engine has already released the
	// request's KV on this instance.
	OnComplete func(r *Req)
	// OnIterationEnd fires after each completed pass, after effects are
	// applied — the place for watermark checks (Dynamic Rescheduling).
	OnIterationEnd func()
	// OnEvicted fires when a request must restart from scratch because
	// even swap space ran out (KV already released). If nil the request
	// re-enters this instance's prefill queue.
	OnEvicted func(r *Req)
}

// Config fixes an instance's role and mechanisms.
type Config struct {
	Name string
	CM   *perf.CostModel
	KV   *kvcache.Manager
	// HostLink carries swap traffic. Swaps stall the engine (as in vLLM).
	HostLink *xfer.Link
	Tracer   *trace.Tracer

	// AllowPrefill permits prefill work in the main stream (true for
	// prefill instances and co-located engines; false for pure decode
	// instances, whose only prefill path is SBD assists).
	AllowPrefill bool
	// ChunkSize is the per-iteration new-token budget once decode jobs
	// share the main stream (chunked prefill). 0 disables chunking.
	ChunkSize int
	// AlwaysChunk forms every hybrid batch with the chunk budget even
	// when no decodes are running (vLLM's chunked-prefill mode).
	AlwaysChunk bool
	// MaxPrefillTokens bounds the total prompt tokens batched into one
	// whole-prompt prefill pass.
	MaxPrefillTokens int
	// MaxDecodeBatch bounds the running decode batch size.
	MaxDecodeBatch int
	// SBD runs assist prefills in a separate stream concurrently with
	// decode iterations (WindServe's Stream-based Disaggregation). When
	// false, assists join the prefill queue instead (the paper's
	// WindServe-no-split ablation).
	SBD bool
	// AssistBatchTokens bounds the prefill tokens batched into one SBD
	// pass (Algorithm 1 adds the whole assistRequests set to the decode
	// pipeline at once). Defaults to MaxPrefillTokens.
	AssistBatchTokens int
}

// Instance is one serving instance (a prefill, decode, or co-located
// engine) advancing on the shared simulator.
type Instance struct {
	cfg   Config
	sim   *sim.Simulator
	hooks Hooks

	prefillQ []*Req // FCFS prefill waiting queue
	assistQ  []*Req // dispatched prefills awaiting the SBD stream
	admitQ   []*Req // prefilled, KV resident, waiting to join running
	running  []*Req // decode batch
	swapped  []*Req // preempted to host memory

	busy        bool
	busyUntil   sim.Time
	stallUntil  sim.Time // swap transfers stall the next iteration
	kickPending bool
	// down marks a crashed instance: the iteration loop refuses to run
	// and epoch invalidates completions of passes that were in flight at
	// crash time (their closures compare epochs and bail).
	down  bool
	epoch uint64
	// slow multiplies pass durations (transient GPU slowdown fault);
	// 0 and 1 both mean nominal speed.
	slow float64
	// inFlight counts passes past their initiation interval but not yet
	// applied. Pipeline parallelism lets pure-prefill passes overlap: a
	// new prefill batch may enter stage 0 once the previous pass clears
	// it (one initiation interval = latency / PP), so a PP-p prefill
	// instance sustains ~p× the throughput of its per-pass latency.
	// Decode and hybrid passes never overlap (consecutive decode steps
	// are data-dependent).
	inFlight int

	assistActive []*Req // SBD pass in flight (empty when stream 2 idle)
	assistBatch  perf.Batch

	// Telemetry.
	ComputeGauge metrics.Gauge // tensor-core utilization (Fig. 2)
	BWGauge      metrics.Gauge // HBM bandwidth utilization (Fig. 2)
	Iterations   uint64
	SwapStall    sim.Duration
	Recomputes   uint64
}

// NewInstance validates config and returns an idle instance.
func NewInstance(s *sim.Simulator, cfg Config, hooks Hooks) (*Instance, error) {
	if cfg.CM == nil || cfg.KV == nil {
		return nil, fmt.Errorf("engine: %s needs a cost model and KV manager", cfg.Name)
	}
	if cfg.MaxDecodeBatch <= 0 {
		cfg.MaxDecodeBatch = 256
	}
	if cfg.MaxPrefillTokens <= 0 {
		cfg.MaxPrefillTokens = 8192
	}
	if cfg.AssistBatchTokens <= 0 {
		cfg.AssistBatchTokens = cfg.MaxPrefillTokens
	}
	return &Instance{cfg: cfg, sim: s, hooks: hooks}, nil
}

// Name returns the instance name.
func (ins *Instance) Name() string { return ins.cfg.Name }

// KV exposes the instance's block manager (systems allocate transfer
// targets and backups through it).
func (ins *Instance) KV() *kvcache.Manager { return ins.cfg.KV }

// CM exposes the cost model (the Profiler profiles against it).
func (ins *Instance) CM() *perf.CostModel { return ins.cfg.CM }

// --- Work submission -------------------------------------------------

// EnqueuePrefill adds a request to the FCFS prefill queue.
func (ins *Instance) EnqueuePrefill(r *Req) {
	r.Phase = PhaseWaiting
	ins.prefillQ = append(ins.prefillQ, r)
	ins.Kick()
}

// EnqueueAssist adds a dispatched prefill. With SBD it runs in the second
// stream; otherwise it degrades to a normal prefill enqueue. The caller
// must have allocated KV for prompt+1 tokens on this instance already.
func (ins *Instance) EnqueueAssist(r *Req) {
	r.Assist = true
	if !ins.cfg.SBD {
		ins.EnqueuePrefill(r)
		return
	}
	r.Phase = PhaseWaiting
	ins.assistQ = append(ins.assistQ, r)
	ins.Kick()
}

// AdmitDecode queues a prefilled request (KV resident here) for the
// running batch.
func (ins *Instance) AdmitDecode(r *Req) {
	r.Phase = PhasePendingDecode
	ins.admitQ = append(ins.admitQ, r)
	ins.Kick()
}

// InsertRunning adds a request directly to the running batch (migration
// resume). KV must already be resident.
func (ins *Instance) InsertRunning(r *Req) {
	r.Phase = PhaseDecoding
	ins.running = append(ins.running, r)
	ins.Kick()
}

// RemoveRunning takes a request out of the running batch (migration
// drain). Reports whether it was present.
func (ins *Instance) RemoveRunning(r *Req) bool {
	for i, x := range ins.running {
		if x == r {
			ins.running = append(ins.running[:i], ins.running[i+1:]...)
			return true
		}
	}
	return false
}

// ReleaseKV frees a request's blocks here and re-kicks the engine (freed
// space may unblock queued work).
func (ins *Instance) ReleaseKV(r *Req) {
	if ins.cfg.KV.Has(r.KVID()) {
		if err := ins.cfg.KV.Release(r.KVID()); err != nil {
			panic(fmt.Sprintf("engine: %s release %v: %v", ins.cfg.Name, r, err))
		}
	}
	ins.Kick()
}

// --- Fault injection ---------------------------------------------------

// Crash takes the instance down, losing its KV cache and all in-flight
// work: passes in either stream are invalidated (their completion events
// compare epochs and bail), queues are emptied, and every resident
// request is returned for the system layer to recover elsewhere. The
// returned orphans preserve queue order (prefill queue, assist queue,
// active assists, admit queue, running batch, swapped) so recovery is
// deterministic.
func (ins *Instance) Crash() []*Req {
	ins.down = true
	ins.epoch++
	ins.busy = false
	ins.inFlight = 0
	ins.stallUntil = 0
	var orphans []*Req
	collect := func(rs []*Req) {
		for _, r := range rs {
			r.inPass = false
			orphans = append(orphans, r)
		}
	}
	collect(ins.prefillQ)
	collect(ins.assistQ)
	collect(ins.assistActive)
	collect(ins.admitQ)
	collect(ins.running)
	collect(ins.swapped)
	ins.prefillQ, ins.assistQ, ins.assistActive = nil, nil, nil
	ins.admitQ, ins.running, ins.swapped = nil, nil, nil
	ins.assistBatch = perf.Batch{}
	ins.cfg.KV.Reset()
	return orphans
}

// Restore brings a crashed instance back, empty, and restarts its loop.
func (ins *Instance) Restore() {
	if !ins.down {
		return
	}
	ins.down = false
	ins.Kick()
}

// Down reports whether the instance is crashed.
func (ins *Instance) Down() bool { return ins.down }

// SetSlowdown multiplies future pass durations by factor (>= 1; smaller
// values restore nominal speed). Passes already in flight keep their
// original durations.
func (ins *Instance) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	ins.slow = factor
}

// Slowdown returns the current pass-duration multiplier (1 when nominal).
func (ins *Instance) Slowdown() float64 {
	if ins.slow > 1 {
		return ins.slow
	}
	return 1
}

// SetAllowPrefill changes whether the main stream accepts prefill work —
// the elastic role-flip switch. Enabling kicks the engine (queued
// prompts may now form a pass); disabling never interrupts a pass in
// flight, and requests already queued or mid-chunk keep draining (the
// batch former reads the flag per pass, so only future passes change).
func (ins *Instance) SetAllowPrefill(v bool) {
	if ins.cfg.AllowPrefill == v {
		return
	}
	ins.cfg.AllowPrefill = v
	if v {
		ins.Kick()
	}
}

// DrainPrefillQueue removes and returns the untouched portion of the
// main-stream prefill queue — requests no pass has started and no KV
// allocation binds here — preserving FCFS order. Requests mid-pass or
// with resident KV (a chunked prefill between passes, a prefix-cache
// hold) stay and finish locally; the caller re-routes the drained rest.
func (ins *Instance) DrainPrefillQueue() []*Req {
	var drained []*Req
	keep := ins.prefillQ[:0]
	for _, r := range ins.prefillQ {
		if r.inPass || ins.cfg.KV.Has(r.KVID()) {
			keep = append(keep, r)
		} else {
			drained = append(drained, r)
		}
	}
	ins.prefillQ = keep
	return drained
}

// Abort removes a cancelled request from every queue and releases its KV
// here. The caller must have set PhaseAborted first so in-flight pass
// effects (which cannot be recalled) skip the request when they apply.
// Requests unknown to this instance are a safe no-op.
func (ins *Instance) Abort(r *Req) {
	ins.prefillQ = removeReq(ins.prefillQ, r)
	ins.assistQ = removeReq(ins.assistQ, r)
	ins.admitQ = removeReq(ins.admitQ, r)
	ins.swapped = removeReq(ins.swapped, r)
	ins.RemoveRunning(r)
	// Requests in assistActive stay in the slice (the pass is running);
	// the completion loop skips aborted entries.
	ins.ReleaseKV(r)
}

func removeReq(rs []*Req, r *Req) []*Req {
	for i, x := range rs {
		if x == r {
			return append(rs[:i], rs[i+1:]...)
		}
	}
	return rs
}

// --- Observability (the Global Scheduler's view) ----------------------

// QueuedPrefillTokens sums the unprefilled prompt tokens waiting in the
// main-stream queue — Algorithm 1's load signal.
func (ins *Instance) QueuedPrefillTokens() int {
	n := 0
	for _, r := range ins.prefillQ {
		n += r.PrefillRemaining()
	}
	return n
}

// BusyRemaining is the time until the current pass completes (0 if idle).
func (ins *Instance) BusyRemaining() sim.Duration {
	if !ins.busy {
		return 0
	}
	return ins.busyUntil.Sub(ins.sim.Now())
}

// RunningShape describes the current decode batch.
func (ins *Instance) RunningShape() perf.Batch {
	b := perf.Batch{DecodeReqs: len(ins.running)}
	for _, r := range ins.running {
		b.DecodeSumCtx += r.Ctx()
	}
	return b
}

// Running returns the live decode batch (callers must not mutate).
func (ins *Instance) Running() []*Req { return ins.running }

// NumRunning returns the decode batch size.
func (ins *Instance) NumRunning() int { return len(ins.running) }

// NumSwapped returns how many requests are preempted to host memory.
func (ins *Instance) NumSwapped() int { return len(ins.swapped) }

// NumQueued returns prefill queue length.
func (ins *Instance) NumQueued() int { return len(ins.prefillQ) }

// PendingAdmits returns how many prefilled requests await decode admission.
func (ins *Instance) PendingAdmits() int { return len(ins.admitQ) }

// AssistPendingTokens sums prompt tokens of queued + active assists.
func (ins *Instance) AssistPendingTokens() int {
	n := 0
	for _, r := range ins.assistQ {
		n += r.PrefillRemaining()
	}
	for _, r := range ins.assistActive {
		n += r.W.PromptTokens
	}
	return n
}

// AssistActive reports whether an SBD prefill pass is in flight.
func (ins *Instance) AssistActive() bool { return len(ins.assistActive) > 0 }

// FreeKVTokens returns the token capacity of free blocks.
func (ins *Instance) FreeKVTokens() int { return ins.cfg.KV.FreeTokens() }

// Idle reports whether the main stream has nothing running or runnable.
func (ins *Instance) Idle() bool {
	return !ins.busy && len(ins.running) == 0 && len(ins.prefillQ) == 0 &&
		len(ins.admitQ) == 0 && len(ins.assistActive) == 0 && len(ins.assistQ) == 0
}

// --- The iteration loop ------------------------------------------------

// Kick schedules a scheduling pass if none is pending. Idempotent; safe to
// call from hooks and completions.
func (ins *Instance) Kick() {
	if ins.kickPending {
		return
	}
	ins.kickPending = true
	delay := sim.Duration(0)
	if now := ins.sim.Now(); ins.stallUntil > now && !ins.busy {
		delay = ins.stallUntil.Sub(now)
	}
	ins.sim.Schedule(delay, func() {
		ins.kickPending = false
		ins.step()
	})
}

func (ins *Instance) step() {
	if ins.down || ins.busy {
		return
	}
	if now := ins.sim.Now(); ins.stallUntil > now {
		ins.Kick()
		return
	}
	if ins.inFlight > 0 && (len(ins.running) > 0 || len(ins.admitQ) > 0 || len(ins.swapped) > 0) {
		// Decode work is runnable but prefill passes are still in the
		// pipeline; wait for them to drain (their completions re-kick).
		return
	}
	ins.trySwapIn()
	ins.admit()
	ins.maybeStartAssist()
	batch, plan := ins.formBatch()
	if batch.Empty() {
		return
	}
	start := ins.sim.Now()
	dur := ins.passDuration(batch)
	// Pure-prefill passes on a PP>1 placement pipeline: the engine frees
	// for the next batch after one initiation interval, while the pass's
	// effects land at its full latency.
	initiation := dur
	if len(plan.decodes) == 0 && ins.cfg.CM.Place.PP > 1 {
		initiation = dur / sim.Duration(ins.cfg.CM.Place.PP)
	}
	ins.busy = true
	ins.busyUntil = start.Add(dur)
	ins.inFlight++
	ins.Iterations++
	ins.recordUtilization(batch, start, dur)
	ins.tracePass(batch, plan, start, dur)
	for _, r := range plan.newDecodes {
		if ins.hooks.OnDecodeStart != nil {
			ins.hooks.OnDecodeStart(r)
		}
	}
	epoch := ins.epoch
	ins.sim.Schedule(initiation, func() {
		if ins.epoch != epoch {
			return // crashed mid-pass; Crash already reset busy
		}
		ins.busy = false
		ins.Kick()
	})
	ins.sim.Schedule(dur, func() {
		if ins.epoch != epoch {
			return // crashed mid-pass; the pass's effects are lost
		}
		ins.inFlight--
		ins.apply(plan)
		if ins.hooks.OnIterationEnd != nil {
			ins.hooks.OnIterationEnd()
		}
		ins.Kick()
	})
}

// passPlan remembers what a pass will do so apply() can commit it.
type passPlan struct {
	prefillSegs []prefillSeg
	decodes     []*Req
	newDecodes  []*Req // first decode step this pass
	batch       perf.Batch
}

type prefillSeg struct {
	r      *Req
	tokens int
}

// passDuration selects the timing model: SBD contention applies to decode
// passes while an assist prefill stream is active.
func (ins *Instance) passDuration(b perf.Batch) sim.Duration {
	if len(ins.assistActive) > 0 {
		return ins.slowed(ins.cfg.CM.SBDDecodeTime(b, ins.assistBatch))
	}
	return ins.slowed(ins.cfg.CM.IterTime(b))
}

// slowed applies the transient-slowdown fault multiplier to a pass time.
func (ins *Instance) slowed(d sim.Duration) sim.Duration {
	if ins.slow > 1 {
		return sim.Duration(float64(d) * ins.slow)
	}
	return d
}

// admit moves pending requests into the running batch.
func (ins *Instance) admit() {
	for len(ins.admitQ) > 0 && len(ins.running) < ins.cfg.MaxDecodeBatch {
		r := ins.admitQ[0]
		ins.admitQ = ins.admitQ[1:]
		r.Phase = PhaseDecoding
		ins.running = append(ins.running, r)
	}
}

// trySwapIn restores the oldest preempted request if blocks allow.
// Swapped requests take priority over new admissions (vLLM policy).
func (ins *Instance) trySwapIn() {
	for len(ins.swapped) > 0 && len(ins.running) < ins.cfg.MaxDecodeBatch {
		r := ins.swapped[0]
		tokens, err := ins.cfg.KV.SwapIn(r.KVID())
		if err != nil {
			return // no space yet; retry on a later kick
		}
		ins.swapped = ins.swapped[1:]
		ins.stall(ins.swapTime(tokens), trace.KindSwapIn, r)
		r.Phase = PhaseDecoding
		ins.running = append(ins.running, r)
	}
}

// maybeStartAssist launches the next SBD prefill pass in the second
// stream, batching queued assists up to AssistBatchTokens (Algorithm 1
// adds the accumulated assistRequests to the decode pipeline together).
func (ins *Instance) maybeStartAssist() {
	if !ins.cfg.SBD || len(ins.assistActive) > 0 || len(ins.assistQ) == 0 {
		return
	}
	var batch perf.Batch
	budget := ins.cfg.AssistBatchTokens
	for len(ins.assistQ) > 0 {
		r := ins.assistQ[0]
		n := r.PrefillRemaining()
		if n > budget && len(ins.assistActive) > 0 {
			break
		}
		ins.assistQ = ins.assistQ[1:]
		r.Phase = PhasePrefilling
		ins.assistActive = append(ins.assistActive, r)
		batch.Prefill = append(batch.Prefill, perf.PrefillSeg{NewTokens: n})
		if ins.hooks.OnPrefillStart != nil {
			ins.hooks.OnPrefillStart(r)
		}
		budget -= n
		if budget <= 0 {
			break
		}
	}
	ins.assistBatch = batch
	start := ins.sim.Now()
	dur := ins.slowed(ins.cfg.CM.SBDPrefillTime(batch, ins.RunningShape()))
	cost := ins.cfg.CM.BatchCost(batch)
	ins.ComputeGauge.AddInterval(start, start.Add(dur),
		cost.FLOPs()/(dur.Seconds()*ins.cfg.CM.GPU.FLOPS()*float64(ins.cfg.CM.Place.GPUs())))
	ins.cfg.Tracer.Add(ins.cfg.Name+"/stream2", trace.KindSBDPrefill, start, start.Add(dur),
		fmt.Sprintf("%d reqs n=%d", len(ins.assistActive), batch.PrefillTokens()))
	done := ins.assistActive
	epoch := ins.epoch
	ins.sim.Schedule(dur, func() {
		if ins.epoch != epoch {
			return // crashed mid-pass; the assist batch was orphaned
		}
		ins.assistActive = nil
		for _, r := range done {
			if r.Phase == PhaseAborted {
				continue // cancelled mid-pass; KV already released
			}
			r.PrefillDone = r.W.PromptTokens
			ins.finishPrefill(r)
		}
		ins.Kick()
	})
}

// formBatch builds the next main-stream pass under FCFS with continuous
// batching.
func (ins *Instance) formBatch() (perf.Batch, passPlan) {
	var plan passPlan
	b := perf.Batch{DecodeReqs: len(ins.running)}
	for _, r := range ins.running {
		b.DecodeSumCtx += r.Ctx()
		r.inPass = true
		plan.decodes = append(plan.decodes, r)
		if r.Generated == 1 && !r.Migrating {
			plan.newDecodes = append(plan.newDecodes, r)
		}
	}
	if ins.cfg.AllowPrefill {
		chunked := ins.cfg.ChunkSize > 0 && (ins.cfg.AlwaysChunk || len(ins.running) > 0)
		if chunked {
			ins.fillChunked(&b, &plan)
		} else {
			ins.fillWholePrompts(&b, &plan)
		}
	}
	plan.batch = b
	return b, plan
}

// fillWholePrompts batches entire prompts FCFS up to MaxPrefillTokens.
func (ins *Instance) fillWholePrompts(b *perf.Batch, plan *passPlan) {
	budget := ins.cfg.MaxPrefillTokens
	for _, r := range ins.prefillQ {
		if r.inPass {
			continue // already in a pipelined pass in flight
		}
		n := r.PrefillRemaining()
		if n > budget && len(plan.prefillSegs) > 0 {
			break // keep FCFS: stop at the first request that doesn't fit
		}
		if !ins.ensureKV(r) {
			break // head-of-line blocks until space frees
		}
		if rem := r.PrefillRemaining(); rem < n {
			n = rem // a prefix-cache hit during allocation shrank the prefill
		}
		seg := perf.PrefillSeg{NewTokens: n, CtxBefore: r.PrefillDone}
		b.Prefill = append(b.Prefill, seg)
		plan.prefillSegs = append(plan.prefillSegs, prefillSeg{r: r, tokens: n})
		r.inPass = true
		ins.startPrefillOnce(r)
		budget -= n
		if budget <= 0 {
			break
		}
	}
}

// fillChunked batches up to ChunkSize new prefill tokens FCFS.
func (ins *Instance) fillChunked(b *perf.Batch, plan *passPlan) {
	budget := ins.cfg.ChunkSize
	for _, r := range ins.prefillQ {
		if budget <= 0 {
			break
		}
		if r.inPass {
			continue
		}
		if !ins.ensureKV(r) {
			break
		}
		n := r.PrefillRemaining()
		if n > budget {
			n = budget
		}
		b.Prefill = append(b.Prefill, perf.PrefillSeg{NewTokens: n, CtxBefore: r.PrefillDone})
		plan.prefillSegs = append(plan.prefillSegs, prefillSeg{r: r, tokens: n})
		r.inPass = true
		ins.startPrefillOnce(r)
		budget -= n
	}
}

// ensureKV allocates prompt+1 tokens for a request about to prefill here.
func (ins *Instance) ensureKV(r *Req) bool {
	return ins.AllocatePrefillKV(r)
}

// AllocatePrefillKV reserves KV for a request about to prefill on this
// instance. With prefix caching enabled on the manager and prefix
// identity on the request, shared blocks are acquired instead of fresh
// ones: hit tokens count as already prefilled (shrinking the prefill
// work by the hit length), and any hit blocks demoted to the host tier
// charge their PCIe restore time as a swap-in stall before the pass
// runs. Exported so the serve layer's decode-side assist path allocates
// through the same logic.
func (ins *Instance) AllocatePrefillKV(r *Req) bool {
	kv := ins.cfg.KV
	if kv.Has(r.KVID()) {
		return true
	}
	if kv.PrefixEnabled() && r.W.PrefixGroup != 0 && r.PrefillDone == 0 {
		acq, err := kv.AllocatePrefixed(r.KVID(), r.W.PromptTokens+1, r.W.PrefixGroup, r.W.PrefixTokens)
		if err != nil {
			return false
		}
		if hit := acq.HitTokens; hit > 0 {
			// At least the last prompt token is always computed.
			if hit > r.W.PromptTokens-1 {
				hit = r.W.PromptTokens - 1
			}
			r.PrefixHit = hit
			r.PrefillDone = hit
		}
		if acq.RestoredTokens > 0 {
			if ins.cfg.HostLink != nil {
				ins.cfg.HostLink.AccountBytes(float64(acq.RestoredTokens) * ins.cfg.CM.Cfg.KVBytesPerToken())
			}
			ins.stall(ins.swapTime(acq.RestoredTokens), trace.KindSwapIn, r)
		}
		return true
	}
	return kv.Allocate(r.KVID(), r.W.PromptTokens+1) == nil
}

func (ins *Instance) startPrefillOnce(r *Req) {
	if r.Phase != PhasePrefilling {
		r.Phase = PhasePrefilling
		if ins.hooks.OnPrefillStart != nil {
			ins.hooks.OnPrefillStart(r)
		}
	}
}

// apply commits a completed pass.
func (ins *Instance) apply(plan passPlan) {
	// Prefill progress.
	for _, seg := range plan.prefillSegs {
		seg.r.inPass = false
		if seg.r.Phase == PhaseAborted {
			continue // cancelled mid-pass; already dequeued and released
		}
		seg.r.PrefillDone += seg.tokens
		if seg.r.PrefillComplete() {
			ins.dequeuePrefill(seg.r)
			ins.finishPrefill(seg.r)
		}
	}
	// Decode progress.
	for _, r := range plan.decodes {
		r.inPass = false
		if !ins.contains(r) {
			// Evicted or drained (migration) after this pass was formed —
			// possibly already running elsewhere. Its slot's token is lost.
			continue
		}
		r.Generated++
		if r.Finished() {
			ins.RemoveRunning(r)
			r.Phase = PhaseDone
			ins.ReleaseKV(r)
			if ins.hooks.OnComplete != nil {
				ins.hooks.OnComplete(r)
			}
			continue
		}
		ins.growOrPreempt(r)
	}
	ins.sampleCounters()
}

// sampleCounters records the instance's occupancy timeseries at pass
// boundaries — the only instants the values change. The exporter turns
// these into Perfetto counter tracks; sampling on simulator events (not a
// wall-clock ticker) keeps overhead zero when tracing is off and exact
// when it is on.
func (ins *Instance) sampleCounters() {
	t := ins.cfg.Tracer
	if t == nil {
		return
	}
	now := ins.sim.Now()
	name := ins.cfg.Name
	t.Counter(name+"/running", now, float64(len(ins.running)))
	t.Counter(name+"/queued", now, float64(len(ins.prefillQ)+len(ins.assistQ)+len(ins.admitQ)))
	t.Counter(name+"/kv_util", now, ins.cfg.KV.Utilization())
}

// finishPrefill handles full-prompt completion: the first output token
// exists now.
func (ins *Instance) finishPrefill(r *Req) {
	if r.Generated == 0 {
		r.Generated = 1
	}
	if ins.hooks.OnFirstToken != nil {
		ins.hooks.OnFirstToken(r)
	}
	if r.Finished() { // single-token outputs complete at prefill
		r.Phase = PhaseDone
		ins.ReleaseKV(r)
		if ins.hooks.OnComplete != nil {
			ins.hooks.OnComplete(r)
		}
		return
	}
	if ins.hooks.OnPrefillDone != nil {
		ins.hooks.OnPrefillDone(r)
		return
	}
	// Default policy (co-located engine): join the local decode batch.
	ins.AdmitDecode(r)
}

// contains reports whether r is currently in this instance's running batch.
func (ins *Instance) contains(r *Req) bool {
	for _, x := range ins.running {
		if x == r {
			return true
		}
	}
	return false
}

func (ins *Instance) dequeuePrefill(r *Req) {
	for i, x := range ins.prefillQ {
		if x == r {
			ins.prefillQ = append(ins.prefillQ[:i], ins.prefillQ[i+1:]...)
			return
		}
	}
}

// growOrPreempt extends r's KV by one token, evicting low-priority
// requests (LIFO — latest admitted first, vLLM's policy) until it fits.
func (ins *Instance) growOrPreempt(r *Req) {
	for {
		err := ins.cfg.KV.Grow(r.KVID(), r.Ctx())
		if err == nil {
			return
		}
		victim := ins.pickVictim()
		if victim == nil {
			// Nothing left to evict but the request itself.
			ins.evict(r)
			return
		}
		ins.evict(victim)
		if victim == r {
			return
		}
	}
}

// pickVictim returns the latest-admitted running request, preferring not
// to evict migrating requests (their copies are in flight).
func (ins *Instance) pickVictim() *Req {
	for i := len(ins.running) - 1; i >= 0; i-- {
		if !ins.running[i].Migrating {
			return ins.running[i]
		}
	}
	if len(ins.running) > 0 {
		return ins.running[len(ins.running)-1]
	}
	return nil
}

// evict swaps a running request out to host memory, or — if swap space is
// exhausted — releases its KV for full recomputation.
func (ins *Instance) evict(r *Req) {
	ins.RemoveRunning(r)
	r.Evictions++
	tokens, err := ins.cfg.KV.SwapOut(r.KVID())
	if err == nil {
		r.Phase = PhaseSwapped
		ins.swapped = append(ins.swapped, r)
		ins.stall(ins.swapTime(tokens), trace.KindSwapOut, r)
		return
	}
	// Recompute path: drop the KV and prefill again from scratch.
	ins.Recomputes++
	ins.ReleaseKV(r)
	r.PrefillDone = 0
	r.PrefixHit = 0
	r.Migrating = false
	if ins.hooks.OnEvicted != nil {
		r.Phase = PhaseWaiting
		ins.hooks.OnEvicted(r)
		return
	}
	ins.EnqueuePrefill(r)
}

// swapTime is the host-link time for a request's KV payload.
func (ins *Instance) swapTime(tokens int) sim.Duration {
	if ins.cfg.HostLink == nil {
		return 0
	}
	return ins.cfg.HostLink.TransferTime(float64(tokens) * ins.cfg.CM.Cfg.KVBytesPerToken())
}

// stall blocks the next iteration for d (swap transfers synchronize the
// engine, as in vLLM) and traces the swap span.
func (ins *Instance) stall(d sim.Duration, kind trace.Kind, r *Req) {
	if d <= 0 {
		return
	}
	now := ins.sim.Now()
	base := now
	if ins.stallUntil > base {
		base = ins.stallUntil
	}
	ins.stallUntil = base.Add(d)
	ins.SwapStall += d
	ins.cfg.Tracer.Add(ins.cfg.Name, kind, base, ins.stallUntil, fmt.Sprintf("req%d", r.W.ID))
}

// recordUtilization charges the pass to the Fig. 2 gauges.
func (ins *Instance) recordUtilization(b perf.Batch, start sim.Time, dur sim.Duration) {
	if dur <= 0 {
		return
	}
	cost := ins.cfg.CM.BatchCost(b)
	gpus := float64(ins.cfg.CM.Place.GPUs())
	end := start.Add(dur)
	ins.ComputeGauge.AddInterval(start, end, cost.FLOPs()/(dur.Seconds()*ins.cfg.CM.GPU.FLOPS()*gpus))
	ins.BWGauge.AddInterval(start, end, cost.IOBytes()/(dur.Seconds()*ins.cfg.CM.GPU.BandwidthBytes()*gpus))
}

func (ins *Instance) tracePass(b perf.Batch, plan passPlan, start sim.Time, dur sim.Duration) {
	if ins.cfg.Tracer == nil {
		return
	}
	kind := trace.KindDecode
	switch {
	case len(plan.prefillSegs) > 0 && b.DecodeReqs > 0:
		kind = trace.KindHybrid
	case len(plan.prefillSegs) > 0:
		kind = trace.KindPrefill
		if plan.prefillSegs[0].tokens < plan.prefillSegs[0].r.W.PromptTokens {
			kind = trace.KindChunk
		}
	case len(ins.assistActive) > 0:
		kind = trace.KindSBDDecode
	}
	ins.cfg.Tracer.Add(ins.cfg.Name, kind, start, start.Add(dur),
		fmt.Sprintf("pre=%d dec=%d", b.PrefillTokens(), b.DecodeReqs))
}
