package plan

import (
	"testing"

	"windserve/internal/model"
	"windserve/internal/perf"
	"windserve/internal/workload"
)

func TestCandidatesEnumerate(t *testing.T) {
	cands := Candidates(model.OPT13B, 4, 4)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, c := range cands {
		if c.GPUs() != 4 {
			t.Errorf("candidate %v uses %d GPUs, want 4", c, c.GPUs())
		}
		if seen[c.String()] {
			t.Errorf("duplicate candidate %v", c)
		}
		seen[c.String()] = true
	}
	// The paper's Table 3 pair must be among them.
	if !seen["[TP-2,PP-1 | TP-2,PP-1]"] {
		t.Errorf("paper placement missing from %v", cands)
	}
	// TP-3 style shapes must not appear (40 heads).
	for _, c := range cands {
		for _, p := range []perf.Placement{c.Prefill, c.Decode} {
			if p.TP != 1 && p.TP != 2 && p.TP != 4 {
				t.Errorf("unexpected TP %d", p.TP)
			}
		}
	}
}

func TestCandidatesRespectBudget(t *testing.T) {
	for _, budget := range []int{2, 4, 8} {
		for _, c := range Candidates(model.OPT13B, budget, 4) {
			if c.GPUs() != budget {
				t.Errorf("budget %d: candidate %v", budget, c)
			}
		}
	}
	// Odd budgets work too: one side gets the extra GPU via TP or PP.
	if got := Candidates(model.OPT13B, 3, 4); len(got) == 0 {
		t.Error("no 3-GPU candidates")
	}
}

func TestSearchRanksPaperPlacementHighly(t *testing.T) {
	// At the paper's OPT-13B operating point, the search should prefer a
	// balanced [TP-2 | TP-2] (Table 3) over starved-decode shapes.
	evals, err := Search(model.OPT13B, workload.ShareGPT(), 2.5, 4, Options{Requests: 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) < 2 {
		t.Fatalf("evals = %d", len(evals))
	}
	best := evals[0]
	if best.Err != nil {
		t.Fatalf("best candidate failed: %v", best.Err)
	}
	if best.Attainment <= 0.5 {
		t.Errorf("best attainment = %.2f", best.Attainment)
	}
	// The winner must dominate the worst runnable candidate.
	var worst Evaluation
	for i := len(evals) - 1; i >= 0; i-- {
		if evals[i].Err == nil {
			worst = evals[i]
			break
		}
	}
	if best.Attainment < worst.Attainment {
		t.Errorf("ranking broken: best %.2f < worst %.2f", best.Attainment, worst.Attainment)
	}
	// Paper's choice gives the decode side 2 GPUs; the planner should not
	// pick a 1-GPU decode instance at this rate (Fig. 3's bad case).
	if best.Candidate.Decode.GPUs() < 2 {
		t.Errorf("planner picked starved decode: %v", best.Candidate)
	}
}

func TestSearchWindServeSystem(t *testing.T) {
	evals, err := Search(model.OPT13B, workload.ShareGPT(), 3, 4, Options{Requests: 150, System: "windserve"})
	if err != nil {
		t.Fatal(err)
	}
	if evals[0].Err != nil {
		t.Fatal(evals[0].Err)
	}
	if evals[0].GoodputPerGPU <= 0 {
		t.Error("goodput not computed")
	}
}

func TestSearchErrors(t *testing.T) {
	if _, err := Search(model.OPT13B, workload.ShareGPT(), 1, 4, Options{System: "bogus", Requests: 10}); err == nil {
		t.Error("unknown system accepted")
	}
	// 70B on a 2-GPU budget: every candidate fails to hold weights, so
	// Best must surface an error.
	if _, err := Best(model.LLaMA270B, workload.LongBench(), 0.1, 2, Options{Requests: 10}); err == nil {
		t.Error("impossible budget should fail")
	}
}

func TestBestReturnsWinner(t *testing.T) {
	best, err := Best(model.OPT13B, workload.ShareGPT(), 2, 4, Options{Requests: 120})
	if err != nil {
		t.Fatal(err)
	}
	if best.Candidate.GPUs() != 4 {
		t.Errorf("best = %v", best.Candidate)
	}
}
