// Package plan implements simulation-based placement search: the method
// DistServe uses — and WindServe adopts (paper §5.1, "Placement
// Strategies") — to choose each instance's tensor/pipeline parallelism.
// Candidate placements are enumerated over a GPU budget, each is evaluated
// by simulating a calibration workload, and candidates are ranked by SLO
// attainment with per-GPU goodput as the tiebreaker.
//
// This is also the tool behind the paper's Table 3: running the search
// over the paper's scenarios reproduces its placement choices.
package plan

import (
	"fmt"
	"sort"

	"windserve/internal/model"
	"windserve/internal/perf"
	"windserve/internal/serve"
	"windserve/internal/workload"
)

// Candidate is one prefill/decode placement pair.
type Candidate struct {
	Prefill perf.Placement
	Decode  perf.Placement
}

// GPUs returns the candidate's total device count.
func (c Candidate) GPUs() int { return c.Prefill.GPUs() + c.Decode.GPUs() }

func (c Candidate) String() string {
	return fmt.Sprintf("[%s | %s]", c.Prefill, c.Decode)
}

// Evaluation is one candidate's simulated outcome.
type Evaluation struct {
	Candidate Candidate
	// Attainment is the fraction of requests meeting both SLOs.
	Attainment float64
	// GoodputPerGPU is SLO-satisfying requests per second per GPU — the
	// goodput metric DistServe optimizes.
	GoodputPerGPU float64
	// TTFTP50Ms and TPOTP99Ms summarize the latency profile.
	TTFTP50Ms, TPOTP99Ms float64
	// Err notes candidates that could not run (e.g. weights don't fit).
	Err error
}

// Options tunes the search.
type Options struct {
	// System evaluates candidates under this system ("windserve" or
	// "distserve"); default "distserve", matching the paper's planner.
	System string
	// Requests per candidate simulation.
	Requests int
	Seed     int64
	// MaxGPUsPerInstance bounds each instance (placements beyond TP-4 ×
	// PP-2 are rarely sensible on an 8-GPU node).
	MaxGPUsPerInstance int
}

func (o Options) withDefaults() Options {
	if o.System == "" {
		o.System = "distserve"
	}
	if o.Requests <= 0 {
		o.Requests = 300
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MaxGPUsPerInstance <= 0 {
		o.MaxGPUsPerInstance = 4
	}
	return o
}

// placements enumerates the TP×PP shapes valid for the model with at most
// maxGPUs devices.
func placements(m model.Config, maxGPUs int) []perf.Placement {
	var out []perf.Placement
	for tp := 1; tp <= maxGPUs; tp *= 2 {
		for pp := 1; tp*pp <= maxGPUs; pp *= 2 {
			p := perf.Placement{TP: tp, PP: pp}
			if p.Validate(m) == nil {
				out = append(out, p)
			}
		}
	}
	return out
}

// Candidates enumerates prefill/decode pairs that exactly use gpuBudget
// devices (the paper's linear scaling rule compares equal budgets).
func Candidates(m model.Config, gpuBudget, maxPerInstance int) []Candidate {
	var out []Candidate
	for _, pre := range placements(m, maxPerInstance) {
		for _, dec := range placements(m, maxPerInstance) {
			if pre.GPUs()+dec.GPUs() == gpuBudget {
				out = append(out, Candidate{Prefill: pre, Decode: dec})
			}
		}
	}
	return out
}

// Search simulates every candidate on the calibration workload and
// returns evaluations sorted best-first (highest attainment, then
// goodput). The trace is regenerated per candidate so the total request
// rate follows each candidate's GPU count — the linear scaling rule.
func Search(m model.Config, ds workload.Dataset, ratePerGPU float64, gpuBudget int, o Options) ([]Evaluation, error) {
	o = o.withDefaults()
	cands := Candidates(m, gpuBudget, o.MaxGPUsPerInstance)
	if len(cands) == 0 {
		return nil, fmt.Errorf("plan: no valid candidates for %s on %d GPUs", m.Name, gpuBudget)
	}
	var evals []Evaluation
	for _, cand := range cands {
		ev := Evaluation{Candidate: cand}
		cfg, err := serve.DefaultConfig(m)
		if err != nil {
			return nil, err
		}
		cfg.PrefillPlace = cand.Prefill
		cfg.DecodePlace = cand.Decode
		if ds.MaxContext > m.MaxContext {
			ds.MaxContext = m.MaxContext
		}
		g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: ratePerGPU * float64(cand.GPUs())}, o.Seed)
		reqs := g.Generate(o.Requests)
		var res *serve.Result
		switch o.System {
		case "windserve":
			res, err = serve.RunWindServe(cfg, reqs)
		case "distserve":
			res, err = serve.RunDistServe(cfg, reqs)
		default:
			return nil, fmt.Errorf("plan: unknown system %q", o.System)
		}
		if err != nil {
			ev.Err = err
			evals = append(evals, ev)
			continue
		}
		s := res.Summary
		ev.Attainment = s.Attainment
		ev.GoodputPerGPU = s.ThroughputRPS * s.Attainment / float64(cand.GPUs())
		ev.TTFTP50Ms = s.TTFTP50.Milliseconds()
		ev.TPOTP99Ms = s.TPOTP99.Milliseconds()
		evals = append(evals, ev)
	}
	sort.SliceStable(evals, func(i, j int) bool {
		a, b := evals[i], evals[j]
		if (a.Err == nil) != (b.Err == nil) {
			return a.Err == nil
		}
		if a.Attainment != b.Attainment {
			return a.Attainment > b.Attainment
		}
		return a.GoodputPerGPU > b.GoodputPerGPU
	})
	return evals, nil
}

// Best runs Search and returns only the winner.
func Best(m model.Config, ds workload.Dataset, ratePerGPU float64, gpuBudget int, o Options) (Evaluation, error) {
	evals, err := Search(m, ds, ratePerGPU, gpuBudget, o)
	if err != nil {
		return Evaluation{}, err
	}
	if evals[0].Err != nil {
		return Evaluation{}, fmt.Errorf("plan: no candidate could run: %w", evals[0].Err)
	}
	return evals[0], nil
}
