// Package elastic decides prefill↔decode role flips for a serving
// replica. The controller itself lives in the fleet router (it owns the
// delayed load views and the decision log); this package holds the pure
// decision logic — pressure signals, hysteresis, cooldown bookkeeping —
// so the router and the brown-out machinery share one notion of
// "pressure" and a property test can sweep the policy without standing
// up a fleet.
package elastic

import (
	"fmt"

	"windserve/internal/sim"
)

// Policy parameterizes the role-flip controller.
type Policy struct {
	// Enabled turns elastic role flipping on. All other fields are
	// ignored (and may stay zero) when false.
	Enabled bool
	// Every is the controller's evaluation period. Default 250ms.
	Every sim.Duration
	// Cooldown is the minimum spacing between flips of the same replica,
	// so a flip's drain/migration cost is amortized before the next
	// decision. Default 5s.
	Cooldown sim.Duration
	// Ratio is the hysteresis factor: a flip toward a role requires that
	// role's pressure to exceed the other's by at least this ratio.
	// Default 2.
	Ratio float64
	// MinPressure gates flips entirely until the winning side's pressure
	// (predicted latency / SLO target) reaches this floor — a idle
	// cluster must not oscillate on noise. Default 0.5.
	MinPressure float64
	// MinPrefill / MinDecode are the per-role instance floors a flip may
	// never violate. Default 1 each.
	MinPrefill, MinDecode int
}

// Default returns the policy used by exhibits and windbench -elastic.
func Default() Policy {
	return Policy{Enabled: true}
}

// WithDefaults fills zero fields with the documented defaults.
func (p Policy) WithDefaults() Policy {
	if !p.Enabled {
		return p
	}
	if p.Every <= 0 {
		p.Every = sim.Seconds(0.25)
	}
	if p.Cooldown <= 0 {
		p.Cooldown = sim.Seconds(5)
	}
	if p.Ratio <= 0 {
		p.Ratio = 2
	}
	if p.MinPressure <= 0 {
		p.MinPressure = 0.5
	}
	if p.MinPrefill <= 0 {
		p.MinPrefill = 1
	}
	if p.MinDecode <= 0 {
		p.MinDecode = 1
	}
	return p
}

// Validate rejects nonsensical policies before a run starts.
func (p Policy) Validate() error {
	if !p.Enabled {
		return nil
	}
	if p.Every < 0 || p.Cooldown < 0 {
		return fmt.Errorf("elastic: negative period (every %v, cooldown %v)", p.Every, p.Cooldown)
	}
	if p.Ratio < 0 || p.MinPressure < 0 {
		return fmt.Errorf("elastic: negative threshold (ratio %v, minpressure %v)", p.Ratio, p.MinPressure)
	}
	if p.MinPrefill < 0 || p.MinDecode < 0 {
		return fmt.Errorf("elastic: negative role floor (%d prefill, %d decode)", p.MinPrefill, p.MinDecode)
	}
	return nil
}

// Signals is one replica's load snapshot, as reported over the fleet
// wire: raw integers only, so the message stays comparable and
// delta-suppressible.
type Signals struct {
	// QueuedPrefillTokens is the prompt-token backlog across the
	// replica's acting-prefill instances.
	QueuedPrefillTokens int
	// Running and SumCtx describe the acting-decode batches: stream
	// count and total resident context.
	Running int
	SumCtx  int
	// ActPrefill and ActDecode are the current acting-role counts.
	ActPrefill, ActDecode int
}

// Direction is a flip decision.
type Direction int

const (
	// None: leave the replica as it is.
	None Direction = iota
	// ToPrefill: convert one acting-decode instance to prefill.
	ToPrefill
	// ToDecode: convert one acting-prefill instance to decode.
	ToDecode
)

func (d Direction) String() string {
	switch d {
	case ToPrefill:
		return "to-prefill"
	case ToDecode:
		return "to-decode"
	default:
		return "none"
	}
}

// Decide maps a pair of pressures onto a flip direction under the
// policy's hysteresis and role floors. prefillPressure and
// decodePressure are dimensionless (predicted latency over SLO target;
// 1.0 = at the objective). A flip toward the loaded role requires its
// pressure to reach MinPressure AND exceed the other side by Ratio, and
// must leave the shrinking role above its floor.
func (p Policy) Decide(prefillPressure, decodePressure float64, actPrefill, actDecode int) Direction {
	if prefillPressure >= p.MinPressure && prefillPressure >= p.Ratio*decodePressure && actDecode > p.MinDecode {
		return ToPrefill
	}
	if decodePressure >= p.MinPressure && decodePressure >= p.Ratio*prefillPressure && actPrefill > p.MinPrefill {
		return ToDecode
	}
	return None
}

// MeanQueueDepth is the fleet's shared overload signal: total queued
// requests per healthy replica (integer division, matching the router's
// historical brown-out arithmetic). Zero when no replica is healthy.
func MeanQueueDepth(total, healthy int) int {
	if healthy <= 0 {
		return 0
	}
	return total / healthy
}

// OverloadHysteresis advances a brown-out-style overload latch one
// snapshot: entering requires the mean depth to reach enter, exiting
// requires it to fall to enter/2 (integer division) — the exact
// hysteresis the fleet brown-out has always used. The flip controller
// consults the same latch on the same snapshot, so the two controllers
// cannot disagree about whether the fleet is overloaded. enter <= 0
// disables the latch.
func OverloadHysteresis(in bool, mean, enter int) bool {
	if enter <= 0 {
		return false
	}
	if in {
		return mean > enter/2
	}
	return mean >= enter
}
