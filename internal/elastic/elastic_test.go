package elastic

import (
	"testing"

	"windserve/internal/sim"
)

func TestWithDefaults(t *testing.T) {
	p := Policy{Enabled: true}.WithDefaults()
	if p.Every != sim.Seconds(0.25) || p.Cooldown != sim.Seconds(5) {
		t.Fatalf("periods: %+v", p)
	}
	if p.Ratio != 2 || p.MinPressure != 0.5 || p.MinPrefill != 1 || p.MinDecode != 1 {
		t.Fatalf("thresholds: %+v", p)
	}
	off := Policy{}.WithDefaults()
	if off != (Policy{}) {
		t.Fatalf("disabled policy must stay zero: %+v", off)
	}
}

func TestValidate(t *testing.T) {
	bad := []Policy{
		{Enabled: true, Every: -1},
		{Enabled: true, Cooldown: -1},
		{Enabled: true, Ratio: -0.5},
		{Enabled: true, MinPressure: -1},
		{Enabled: true, MinPrefill: -1},
		{Enabled: true, MinDecode: -2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Policy{Enabled: false, Every: -1}).Validate(); err != nil {
		t.Errorf("disabled policy must not validate its fields: %v", err)
	}
	if err := Default().WithDefaults().Validate(); err != nil {
		t.Errorf("default policy invalid: %v", err)
	}
}

func TestDecide(t *testing.T) {
	p := Policy{Enabled: true, Ratio: 2, MinPressure: 0.5, MinPrefill: 1, MinDecode: 1}
	cases := []struct {
		name   string
		pp, dp float64
		ap, ad int
		want   Direction
	}{
		{"idle", 0.1, 0.1, 2, 2, None},
		{"prefill-hot", 1.2, 0.3, 2, 2, ToPrefill},
		{"decode-hot", 0.3, 1.2, 2, 2, ToDecode},
		{"below-floor-pressure", 0.4, 0.1, 2, 2, None},
		{"inside-hysteresis", 1.0, 0.8, 2, 2, None},
		{"decode-floor-blocks", 2.0, 0.1, 3, 1, None},
		{"prefill-floor-blocks", 0.1, 2.0, 1, 3, None},
		{"both-hot-balanced", 3.0, 2.9, 2, 2, None},
	}
	for _, c := range cases {
		if got := p.Decide(c.pp, c.dp, c.ap, c.ad); got != c.want {
			t.Errorf("%s: Decide(%v,%v,%d,%d) = %v, want %v", c.name, c.pp, c.dp, c.ap, c.ad, got, c.want)
		}
	}
}

// TestOverloadHysteresisMatchesHistoricalBrownout is the regression test
// for the unified pressure helper: the fleet's brown-out has always been
//
//	if !in && mean >= d  -> enter
//	if in  && mean <= d/2 -> exit
//
// and the flip controller now consults OverloadHysteresis on the same
// snapshot. Sweep the full small-integer space (including the d/2
// integer-division edge at odd depths) and assert exact equivalence.
func TestOverloadHysteresisMatchesHistoricalBrownout(t *testing.T) {
	for d := 0; d <= 33; d++ {
		for total := 0; total <= 200; total++ {
			for healthy := 0; healthy <= 9; healthy++ {
				mean := MeanQueueDepth(total, healthy)
				for _, in := range []bool{false, true} {
					// Historical inline logic from fleet.updateBrownout.
					want := in
					if d > 0 {
						if !in && mean >= d {
							want = true
						} else if in && mean <= d/2 {
							want = false
						}
					} else {
						want = false
					}
					if got := OverloadHysteresis(in, mean, d); got != want {
						t.Fatalf("OverloadHysteresis(%v, mean=%d, d=%d) = %v, want %v (total=%d healthy=%d)",
							in, mean, d, got, want, total, healthy)
					}
				}
			}
		}
	}
}

func TestMeanQueueDepth(t *testing.T) {
	if got := MeanQueueDepth(10, 0); got != 0 {
		t.Fatalf("no healthy replicas: %d", got)
	}
	if got := MeanQueueDepth(10, 3); got != 3 {
		t.Fatalf("integer division: %d", got)
	}
}
