package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		p := NewPool(workers)
		got, err := Run(p, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		_, err := Run(p, 10, func(i int) (int, error) {
			switch i {
			case 3:
				return 0, errA
			case 7:
				return 0, errB
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want lowest-index error %v", workers, err, errA)
		}
	}
}

func TestRunSerialEarlyExit(t *testing.T) {
	var calls atomic.Int64
	p := NewPool(1)
	_, err := Run(p, 10, func(i int) (int, error) {
		calls.Add(1)
		if i == 2 {
			return 0, fmt.Errorf("boom at %d", i)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("serial path ran %d tasks after error at index 2, want 3", got)
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var inFlight, peak atomic.Int64
	_, err := Run(p, 50, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent tasks, pool bound is %d", p, workers)
	}
}

func TestMap(t *testing.T) {
	p := NewPool(4)
	got, err := Map(p, []string{"a", "bb", "ccc"}, func(i int, s string) (int, error) {
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("got[%d] = %d, want %d", i, got[i], want)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run(NewPool(4), 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("got %v, %v; want nil, nil", got, err)
	}
}

func TestSetDefault(t *testing.T) {
	defer SetDefault(0)
	SetDefault(7)
	if got := Default(); got != 7 {
		t.Fatalf("Default() = %d after SetDefault(7)", got)
	}
	if got := NewPool(0).Workers(); got != 7 {
		t.Fatalf("NewPool(0).Workers() = %d after SetDefault(7)", got)
	}
	SetDefault(0)
	if got := Default(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default() = %d after reset, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}
