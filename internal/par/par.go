// Package par provides a bounded worker pool for fanning independent
// simulation runs across goroutines.
//
// Every serve.Run* call builds its own sim.Simulator, RNG, cost models,
// and metrics.Recorder, so distinct runs are embarrassingly parallel.
// What the pool adds is determinism at the collection point: results come
// back indexed by submission order, and the error returned is the one the
// serial loop would have hit first (lowest index), so exhibit output is
// byte-identical whether a sweep ran on one worker or sixteen.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers overrides the pool size used by NewPool(0); zero means
// "use GOMAXPROCS". Set from the windbench -parallel flag.
var defaultWorkers atomic.Int64

// SetDefault sets the worker count NewPool(0) and Default() use.
// n <= 0 restores the GOMAXPROCS default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the current default worker count.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a bounded fan-out executor. The zero value is not usable; call
// NewPool. A Pool is stateless between calls and safe for concurrent use.
type Pool struct {
	workers int
}

// NewPool returns a pool running at most n tasks concurrently.
// n <= 0 means Default() (GOMAXPROCS unless overridden by SetDefault).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = Default()
	}
	return &Pool{workers: n}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Run invokes fn(0), fn(1), …, fn(n-1), at most p.Workers() at a time,
// and returns the results indexed by i. If any invocation fails, Run
// returns the error with the lowest index — exactly the error a serial
// loop would have surfaced first. With one worker (or one task) it
// degenerates to a plain serial loop with early exit.
func Run[R any](p *Pool, n int, fn func(i int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	results := make([]R, n)
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Map applies fn to every item, at most p.Workers() at a time, returning
// results in item order. Error semantics match Run.
func Map[T, R any](p *Pool, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return Run(p, len(items), func(i int) (R, error) { return fn(i, items[i]) })
}
