package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"windserve/internal/metrics"
	"windserve/internal/sim"
	"windserve/internal/trace"
)

// parse round-trips the writer's output through encoding/json, failing the
// test on anything malformed.
func parse(t *testing.T, buf *bytes.Buffer) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	return doc
}

func events(t *testing.T, doc map[string]any) []map[string]any {
	t.Helper()
	raw, ok := doc["traceEvents"].([]any)
	if !ok {
		t.Fatalf("traceEvents missing or not an array: %T", doc["traceEvents"])
	}
	out := make([]map[string]any, len(raw))
	for i, e := range raw {
		out[i] = e.(map[string]any)
	}
	return out
}

func TestWriteChromeTraceEmptyInputs(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	doc := parse(t, &buf)
	if doc["displayTimeUnit"] != "ms" {
		t.Errorf("displayTimeUnit = %v, want ms", doc["displayTimeUnit"])
	}
	// Still a valid file: the two process_name metadata events.
	if got := len(events(t, doc)); got != 2 {
		t.Errorf("empty trace has %d events, want 2 metadata events", got)
	}
}

func TestWriteChromeTraceInstanceTracks(t *testing.T) {
	tr := trace.New()
	tr.Add("prefill-0", trace.KindPrefill, sim.Time(1), sim.Time(2), "req1")
	tr.Add("decode-0", trace.KindDecode, sim.Time(2), sim.Time(2.5), "")
	tr.Add("scheduler", trace.KindDispatch, sim.Time(1), sim.Time(1), "req1→decode-0")
	tr.Counter("decode-0/running", sim.Time(2), 3)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr, nil); err != nil {
		t.Fatal(err)
	}
	evs := events(t, parse(t, &buf))

	threadNames := map[string]bool{}
	var sawCounter, sawInstant bool
	for _, e := range evs {
		switch e["ph"] {
		case "M":
			if e["name"] == "thread_name" {
				threadNames[e["args"].(map[string]any)["name"].(string)] = true
			}
		case "X":
			if e["dur"].(float64) <= 0 {
				t.Errorf("complete event %q has non-positive dur %v", e["name"], e["dur"])
			}
		case "C":
			sawCounter = true
			if e["name"] != "decode-0/running" {
				t.Errorf("counter name = %v", e["name"])
			}
			if v := e["args"].(map[string]any)["value"].(float64); v != 3 {
				t.Errorf("counter value = %v, want 3", v)
			}
		case "i":
			sawInstant = true
		}
	}
	for _, lane := range []string{"prefill-0", "decode-0", "scheduler"} {
		if !threadNames[lane] {
			t.Errorf("no thread_name metadata for lane %q", lane)
		}
	}
	if !sawCounter {
		t.Error("counter sample not exported")
	}
	if !sawInstant {
		t.Error("zero-length dispatch span should export as an instant")
	}

	// Each lane maps to a distinct tid.
	tids := map[float64]string{}
	for _, e := range evs {
		if e["ph"] == "M" && e["name"] == "thread_name" && e["pid"].(float64) == 1 {
			tid := e["tid"].(float64)
			name := e["args"].(map[string]any)["name"].(string)
			if prev, dup := tids[tid]; dup {
				t.Errorf("tid %v used by both %q and %q", tid, prev, name)
			}
			tids[tid] = name
		}
	}
}

func TestWriteChromeTraceRequestPhases(t *testing.T) {
	recs := []*metrics.Record{
		{ // full lifecycle
			ID: 1, PromptTokens: 100, OutputTokens: 50,
			Arrival: sim.Time(0), PrefillStart: sim.Time(0.1),
			FirstToken: sim.Time(0.3), DecodeStart: sim.Time(0.4),
			Completion: sim.Time(2),
		},
		{ // aborted mid-decode
			ID: 2, PromptTokens: 100, OutputTokens: 50, Outcome: metrics.OutcomeAborted,
			Arrival: sim.Time(1), PrefillStart: sim.Time(1.1),
			FirstToken: sim.Time(1.3), DecodeStart: sim.Time(1.4),
			Completion: sim.Time(1.8),
		},
		{ // rejected at admission: only a zero-length queue instant
			ID: 3, PromptTokens: 10, OutputTokens: 5, Outcome: metrics.OutcomeRejected,
			Arrival: sim.Time(2), Completion: sim.Time(2),
		},
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, recs); err != nil {
		t.Fatal(err)
	}
	evs := events(t, parse(t, &buf))

	phasesByTid := map[float64][]string{}
	for _, e := range evs {
		if e["pid"].(float64) != 2 || e["cat"] != "request" {
			continue
		}
		tid := e["tid"].(float64)
		phasesByTid[tid] = append(phasesByTid[tid], e["name"].(string))
	}
	want := map[float64][]string{
		1: {"queue", "prefill", "handoff", "decode"},
		2: {"queue", "prefill", "handoff", "decode", "aborted"},
		3: {"queue", "rejected"},
	}
	for tid, names := range want {
		got := phasesByTid[tid]
		if len(got) != len(names) {
			t.Errorf("tid %v phases = %v, want %v", tid, got, names)
			continue
		}
		for i := range names {
			if got[i] != names[i] {
				t.Errorf("tid %v phase %d = %q, want %q", tid, i, got[i], names[i])
			}
		}
	}

	// Completed request: phases tile arrival → completion with no gaps.
	var spans []map[string]any
	for _, e := range evs {
		if e["pid"].(float64) == 2 && e["tid"].(float64) == 1 && e["ph"] == "X" {
			spans = append(spans, e)
		}
	}
	if len(spans) != 4 {
		t.Fatalf("completed request has %d complete spans, want 4", len(spans))
	}
	cursor := 0.0
	for _, s := range spans {
		if ts := s["ts"].(float64); ts != cursor {
			t.Errorf("span %q starts at %v µs, want %v (gap)", s["name"], ts, cursor)
		}
		cursor = s["ts"].(float64) + s["dur"].(float64)
	}
	if cursor != 2e6 {
		t.Errorf("phases end at %v µs, want 2e6 (completion)", cursor)
	}
}
