// Package obs exports a run's observability artifacts in externally
// consumable formats. The main export is a Chrome-trace/Perfetto JSON
// timeline combining two views of the same run:
//
//   - instance tracks (pid 1): the Tracer's execution spans — one thread
//     per lane (engine streams, links, the scheduler) — plus counter
//     tracks for occupancy timeseries (running batch, queue depth, KV
//     utilization) sampled at pass boundaries;
//   - request tracks (pid 2): one thread per request, with its lifecycle
//     phases (queue → prefill → handoff → decode) derived from the
//     metrics records at export time, so the hot path records nothing
//     extra.
//
// Open the output at https://ui.perfetto.dev or chrome://tracing.
package obs

import (
	"encoding/json"
	"io"
	"sort"

	"windserve/internal/metrics"
	"windserve/internal/sim"
	"windserve/internal/trace"
)

// Chrome-trace process ids: instance timelines vs request timelines.
const (
	pidInstances = 1
	pidRequests  = 2
)

// event is one Chrome-trace event. ts and dur are microseconds of virtual
// time (the format's unit).
type event struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Cat  string         `json:"cat,omitempty"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

func us(t sim.Time) float64 { return float64(t) * 1e6 }

func meta(name string, pid, tid int, value string) event {
	return event{Name: name, Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": value}}
}

// WriteChromeTrace renders a run as Chrome-trace JSON: the Tracer's
// instance spans and counters, and one lifecycle track per request in
// records. Either input may be nil/empty; the output is always a valid
// trace file.
func WriteChromeTrace(w io.Writer, t *trace.Tracer, records []*metrics.Record) error {
	var evs []event
	evs = append(evs,
		meta("process_name", pidInstances, 0, "instances"),
		meta("process_name", pidRequests, 0, "requests"),
	)

	// Instance tracks: one thread per Tracer lane, in first-appearance
	// order so tids are deterministic.
	laneTid := make(map[string]int)
	for i, lane := range t.Lanes() {
		laneTid[lane] = i + 1
		evs = append(evs, meta("thread_name", pidInstances, i+1, lane))
	}
	if t != nil {
		for _, s := range t.Spans {
			e := event{
				Name: string(s.Kind),
				Cat:  "instance",
				Ts:   us(s.Start),
				Pid:  pidInstances,
				Tid:  laneTid[s.Lane],
			}
			if s.Detail != "" {
				e.Args = map[string]any{"detail": s.Detail}
			}
			if d := us(s.End) - us(s.Start); d > 0 {
				e.Ph, e.Dur = "X", d
			} else {
				e.Ph, e.S = "i", "t" // zero-length activity → thread instant
			}
			evs = append(evs, e)
		}
		for _, c := range t.Counters {
			evs = append(evs, event{
				Name: c.Track, Ph: "C", Ts: us(c.T), Pid: pidInstances,
				Args: map[string]any{"value": c.V},
			})
		}
	}

	// Request tracks: phases reconstructed from the metrics timeline.
	recs := append([]*metrics.Record(nil), records...)
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	for i, r := range recs {
		tid := i + 1
		evs = append(evs, meta("thread_name", pidRequests, tid, reqLabel(r)))
		for _, p := range requestPhases(r) {
			e := event{
				Name: string(p.kind),
				Cat:  "request",
				Ts:   us(p.start),
				Pid:  pidRequests,
				Tid:  tid,
				Args: map[string]any{
					"req":           r.ID,
					"prompt_tokens": r.PromptTokens,
					"output_tokens": r.OutputTokens,
				},
			}
			if d := us(p.end) - us(p.start); d > 0 {
				e.Ph, e.Dur = "X", d
			} else {
				e.Ph, e.S = "i", "t"
			}
			evs = append(evs, e)
		}
		if r.Outcome != metrics.OutcomeCompleted {
			evs = append(evs, event{
				Name: r.Outcome.String(), Ph: "i", Cat: "request",
				Ts: us(r.Completion), Pid: pidRequests, Tid: tid, S: "t",
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

func reqLabel(r *metrics.Record) string {
	return "req " + itoa(r.ID)
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

type reqPhase struct {
	kind  trace.Kind
	start sim.Time
	end   sim.Time
}

// requestPhases splits a record's timeline into lifecycle phases, using
// only the timestamps the request actually reached — an abort mid-queue
// yields one truncated queue span, an abort mid-decode a truncated decode
// span, and a single-token completion has no handoff or decode at all.
func requestPhases(r *metrics.Record) []reqPhase {
	var out []reqPhase
	add := func(k trace.Kind, a, b sim.Time) {
		if b < a {
			b = a
		}
		out = append(out, reqPhase{k, a, b})
	}
	switch {
	case r.PrefillStart == 0:
		// Never reached prefill: rejected at admission or aborted queued.
		add(trace.KindQueue, r.Arrival, r.Completion)
	case r.FirstToken == 0:
		add(trace.KindQueue, r.Arrival, r.PrefillStart)
		add(trace.KindPrefill, r.PrefillStart, r.Completion)
	default:
		add(trace.KindQueue, r.Arrival, r.PrefillStart)
		add(trace.KindPrefill, r.PrefillStart, r.FirstToken)
		if r.DecodeStart != 0 {
			add(trace.KindHandoff, r.FirstToken, r.DecodeStart)
			add(trace.KindDecode, r.DecodeStart, r.Completion)
		} else if r.Completion > r.FirstToken {
			// Finalized between first token and decode start (e.g. aborted
			// during the KV transfer).
			add(trace.KindHandoff, r.FirstToken, r.Completion)
		}
	}
	return out
}
