// Package trace captures a structured timeline of simulation activity —
// which batch ran on which instance's stream, when KV transfers and
// migrations happened — and renders it as an ASCII Gantt chart. This is
// how we regenerate the paper's Fig. 7 (chunked-prefill vs stream-based
// disaggregation execution timelines).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"windserve/internal/sim"
)

// Kind classifies an activity span.
type Kind string

// Activity kinds recorded by the engines and transfer machinery.
const (
	KindPrefill    Kind = "prefill"     // whole-prompt prefill pass
	KindChunk      Kind = "chunk"       // one chunked-prefill pass
	KindDecode     Kind = "decode"      // one decode iteration
	KindHybrid     Kind = "hybrid"      // mixed prefill+decode pass
	KindSBDPrefill Kind = "sbd-prefill" // prefill in its own CUDA stream
	KindSBDDecode  Kind = "sbd-decode"  // decode alongside an SBD prefill
	KindKVTransfer Kind = "kv-transfer" // cross-instance KV copy
	KindSwapOut    Kind = "swap-out"    // GPU→CPU KV eviction
	KindSwapIn     Kind = "swap-in"     // CPU→GPU KV restore
	KindMigration  Kind = "migration"   // stall-free rescheduling copy
	KindDispatch   Kind = "dispatch"    // dynamic prefill dispatch decision
	KindReschedule Kind = "reschedule"  // dynamic rescheduling decision
	KindQueue      Kind = "queue"       // request waiting for prefill
	KindHandoff    Kind = "handoff"     // first token → first decode step (transfer + decode queue)
)

// Span is one timed activity on a named lane.
type Span struct {
	Lane   string // e.g. "prefill-0", "decode-0/stream1", "link pcie"
	Kind   Kind
	Start  sim.Time
	End    sim.Time
	Detail string // free-form, e.g. request ids
}

// CounterSample is one point of a per-track timeseries (queue depths, KV
// utilization, running batch size) sampled on simulator events.
type CounterSample struct {
	Track string
	T     sim.Time
	V     float64
}

// Tracer collects spans and counter samples. A nil *Tracer is valid and
// records nothing, so engines can trace unconditionally.
type Tracer struct {
	Spans    []Span
	Counters []CounterSample
}

// New returns an empty tracer.
func New() *Tracer { return &Tracer{} }

// Add records a span. No-op on a nil tracer.
func (t *Tracer) Add(lane string, kind Kind, start, end sim.Time, detail string) {
	if t == nil {
		return
	}
	if end < start {
		panic(fmt.Sprintf("trace: span %s/%s ends before it starts", lane, kind))
	}
	t.Spans = append(t.Spans, Span{Lane: lane, Kind: kind, Start: start, End: end, Detail: detail})
}

// Counter records one timeseries sample. No-op on a nil tracer.
func (t *Tracer) Counter(track string, at sim.Time, v float64) {
	if t == nil {
		return
	}
	t.Counters = append(t.Counters, CounterSample{Track: track, T: at, V: v})
}

// CounterTracks returns the distinct counter track names in
// first-appearance order.
func (t *Tracer) CounterTracks() []string {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	var tracks []string
	for _, c := range t.Counters {
		if !seen[c.Track] {
			seen[c.Track] = true
			tracks = append(tracks, c.Track)
		}
	}
	return tracks
}

// Lanes returns the distinct lane names in first-appearance order.
func (t *Tracer) Lanes() []string {
	if t == nil {
		return nil
	}
	seen := make(map[string]bool)
	var lanes []string
	for _, s := range t.Spans {
		if !seen[s.Lane] {
			seen[s.Lane] = true
			lanes = append(lanes, s.Lane)
		}
	}
	return lanes
}

// Filter returns the spans on one lane, in start order.
func (t *Tracer) Filter(lane string) []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for _, s := range t.Spans {
		if s.Lane == lane {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// glyph maps activity kinds to Gantt fill characters.
func glyph(k Kind) byte {
	switch k {
	case KindPrefill, KindSBDPrefill:
		return 'P'
	case KindChunk:
		return 'c'
	case KindDecode, KindSBDDecode:
		return 'd'
	case KindHybrid:
		return 'H'
	case KindKVTransfer:
		return '>'
	case KindMigration:
		return 'm'
	case KindSwapOut, KindSwapIn:
		return 's'
	default:
		return '#'
	}
}

// Gantt renders all lanes over [from, to] as width-character bars.
// Later spans overwrite earlier ones where they overlap.
func (t *Tracer) Gantt(from, to sim.Time, width int) string {
	if t == nil || width <= 0 || to <= from {
		return ""
	}
	span := to.Sub(from).Seconds()
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (%c = prefill, %c = decode, %c = chunk, %c = hybrid, %c = transfer, %c = migration)\n",
		from, to, 'P', 'd', 'c', 'H', '>', 'm')
	for _, lane := range t.Lanes() {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.Filter(lane) {
			if s.End < from || s.Start > to {
				continue
			}
			lo := int(float64(width) * s.Start.Sub(from).Seconds() / span)
			hi := int(float64(width) * s.End.Sub(from).Seconds() / span)
			if lo < 0 {
				lo = 0
			}
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				row[i] = glyph(s.Kind)
			}
		}
		fmt.Fprintf(&b, "%-22s |%s|\n", lane, row)
	}
	return b.String()
}

// Bounds returns the earliest start and latest end over all spans.
func (t *Tracer) Bounds() (from, to sim.Time) {
	if t == nil || len(t.Spans) == 0 {
		return 0, 0
	}
	from, to = t.Spans[0].Start, t.Spans[0].End
	for _, s := range t.Spans {
		if s.Start < from {
			from = s.Start
		}
		if s.End > to {
			to = s.End
		}
	}
	return from, to
}
