package trace

import (
	"strings"
	"testing"
)

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Add("lane", KindDecode, 0, 1, "") // must not panic
	if tr.Lanes() != nil || tr.Filter("lane") != nil {
		t.Error("nil tracer should return nothing")
	}
	if tr.Gantt(0, 1, 10) != "" {
		t.Error("nil tracer Gantt should be empty")
	}
	if from, to := tr.Bounds(); from != 0 || to != 0 {
		t.Error("nil tracer bounds")
	}
}

func TestAddAndFilter(t *testing.T) {
	tr := New()
	tr.Add("decode-0", KindDecode, 1, 2, "r1")
	tr.Add("prefill-0", KindPrefill, 0, 3, "r2")
	tr.Add("decode-0", KindDecode, 0, 1, "r3")
	lanes := tr.Lanes()
	if len(lanes) != 2 || lanes[0] != "decode-0" || lanes[1] != "prefill-0" {
		t.Fatalf("Lanes = %v", lanes)
	}
	spans := tr.Filter("decode-0")
	if len(spans) != 2 || spans[0].Detail != "r3" {
		t.Fatalf("Filter not sorted by start: %+v", spans)
	}
}

func TestAddBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Add("l", KindDecode, 2, 1, "")
}

func TestBounds(t *testing.T) {
	tr := New()
	tr.Add("a", KindDecode, 5, 7, "")
	tr.Add("b", KindPrefill, 2, 6, "")
	from, to := tr.Bounds()
	if from != 2 || to != 7 {
		t.Errorf("Bounds = %v..%v", from, to)
	}
	if f, tt := New().Bounds(); f != 0 || tt != 0 {
		t.Error("empty bounds")
	}
}

func TestGanttRendering(t *testing.T) {
	tr := New()
	tr.Add("decode-0", KindDecode, 0, 5, "")
	tr.Add("decode-0/s2", KindSBDPrefill, 5, 10, "")
	tr.Add("link", KindKVTransfer, 2, 4, "")
	out := tr.Gantt(0, 10, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header + 3 lanes
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "d") {
		t.Errorf("decode lane missing 'd': %s", lines[1])
	}
	if !strings.Contains(lines[2], "P") {
		t.Errorf("sbd-prefill lane missing 'P': %s", lines[2])
	}
	if !strings.Contains(lines[3], ">") {
		t.Errorf("link lane missing '>': %s", lines[3])
	}
	// The decode bar occupies the first half, not the second.
	row := lines[1][strings.Index(lines[1], "|")+1:]
	if row[0] != 'd' || row[35] == 'd' {
		t.Errorf("decode bar misplaced: %q", row)
	}
}

func TestGanttEdgeCases(t *testing.T) {
	tr := New()
	tr.Add("a", KindDecode, 0, 1, "")
	if tr.Gantt(0, 1, 0) != "" {
		t.Error("zero width should render empty")
	}
	if tr.Gantt(5, 5, 10) != "" {
		t.Error("empty window should render empty")
	}
	// Span outside the window: lane renders but stays blank.
	out := tr.Gantt(10, 20, 10)
	if !strings.Contains(out, "..........") {
		t.Errorf("out-of-window span should leave blanks:\n%s", out)
	}
	// Span partially clipped by the window must not panic or overflow.
	tr.Add("a", KindPrefill, 19, 25, "")
	out = tr.Gantt(10, 20, 10)
	if !strings.Contains(out, "P") {
		t.Errorf("clipped span should still render:\n%s", out)
	}
}

func TestGlyphs(t *testing.T) {
	for k, want := range map[Kind]byte{
		KindPrefill: 'P', KindSBDPrefill: 'P', KindChunk: 'c',
		KindDecode: 'd', KindSBDDecode: 'd', KindHybrid: 'H',
		KindKVTransfer: '>', KindMigration: 'm', KindSwapOut: 's', KindSwapIn: 's',
		KindDispatch: '#', KindReschedule: '#',
	} {
		if got := glyph(k); got != want {
			t.Errorf("glyph(%s) = %c, want %c", k, got, want)
		}
	}
}
