package serve

import (
	"math/rand"
	"testing"

	"windserve/internal/model"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// TestPropertySystemInvariants fuzzes all three systems across random
// seeds, rates, and models, and checks conservation invariants:
//
//   - every submitted request completes exactly once (or is counted
//     unfinished at the horizon),
//   - completed records carry physically-consistent timestamps,
//   - output token counts match the workload exactly.
func TestPropertySystemInvariants(t *testing.T) {
	systems := []struct {
		name string
		run  runFn
	}{
		{"vLLM", RunVLLM}, {"DistServe", RunDistServe}, {"WindServe", RunWindServe},
	}
	models := []model.Config{model.OPT13B, model.LLaMA213B}
	datasets := []workload.Dataset{workload.ShareGPT(), workload.LongBench()}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		m := models[rng.Intn(len(models))]
		ds := datasets[rng.Intn(len(datasets))]
		if ds.MaxContext > m.MaxContext {
			ds.MaxContext = m.MaxContext
		}
		rate := 1 + rng.Float64()*4
		seed := rng.Int63()
		cfg, err := DefaultConfig(m)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Horizon = sim.Seconds(600)
		g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: rate * 4}, seed)
		reqs := g.Generate(150)
		byID := map[uint64]workload.Request{}
		for _, w := range reqs {
			byID[w.ID] = w
		}
		for _, sys := range systems {
			res, err := sys.run(cfg, reqs)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, sys.name, err)
			}
			if got := len(res.Records) + res.Unfinished; got != len(reqs) {
				t.Fatalf("trial %d %s: %d completed + %d unfinished != %d submitted",
					trial, sys.name, len(res.Records), res.Unfinished, len(reqs))
			}
			seen := map[uint64]bool{}
			for _, r := range res.Records {
				if seen[r.ID] {
					t.Fatalf("trial %d %s: request %d completed twice", trial, sys.name, r.ID)
				}
				seen[r.ID] = true
				w, ok := byID[r.ID]
				if !ok {
					t.Fatalf("trial %d %s: unknown request %d completed", trial, sys.name, r.ID)
				}
				if r.OutputTokens != w.OutputTokens || r.PromptTokens != w.PromptTokens {
					t.Fatalf("trial %d %s: request %d token counts mutated", trial, sys.name, r.ID)
				}
				// Timeline sanity: arrival <= prefill start <= first token
				// <= completion; decode start within [first token, completion].
				if r.PrefillStart < r.Arrival || r.FirstToken < r.PrefillStart || r.Completion < r.FirstToken {
					t.Fatalf("trial %d %s: request %d timeline inverted: %+v", trial, sys.name, r.ID, r)
				}
				if w.OutputTokens > 1 && (r.DecodeStart < r.FirstToken || r.DecodeStart > r.Completion) {
					t.Fatalf("trial %d %s: request %d decode start out of range", trial, sys.name, r.ID)
				}
			}
		}
	}
}

// TestSameTraceAcrossSystems checks that system comparison is apples to
// apples: all systems consume the identical arrival times.
func TestSameTraceAcrossSystems(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(3, 100, 5)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			if r.Arrival != reqs[r.ID-1].Arrival {
				t.Fatalf("%s: request %d arrival drifted", name, r.ID)
			}
		}
	}
}
