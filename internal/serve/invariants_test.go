package serve

import (
	"math/rand"
	"testing"

	"windserve/internal/model"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// TestPropertySystemInvariants fuzzes all three systems across random
// seeds, rates, and models, and checks conservation invariants:
//
//   - every submitted request completes exactly once (or is counted
//     unfinished at the horizon),
//   - completed records carry physically-consistent timestamps,
//   - output token counts match the workload exactly.
func TestPropertySystemInvariants(t *testing.T) {
	systems := []struct {
		name string
		run  runFn
	}{
		{"vLLM", RunVLLM}, {"DistServe", RunDistServe}, {"WindServe", RunWindServe},
	}
	models := []model.Config{model.OPT13B, model.LLaMA213B}
	datasets := []workload.Dataset{workload.ShareGPT(), workload.LongBench()}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		m := models[rng.Intn(len(models))]
		ds := datasets[rng.Intn(len(datasets))]
		if ds.MaxContext > m.MaxContext {
			ds.MaxContext = m.MaxContext
		}
		rate := 1 + rng.Float64()*4
		seed := rng.Int63()
		cfg, err := DefaultConfig(m)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Horizon = sim.Seconds(600)
		g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: rate * 4}, seed)
		reqs := g.Generate(150)
		byID := map[uint64]workload.Request{}
		for _, w := range reqs {
			byID[w.ID] = w
		}
		for _, sys := range systems {
			res, err := sys.run(cfg, reqs)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, sys.name, err)
			}
			if got := len(res.Records) + res.Unfinished; got != len(reqs) {
				t.Fatalf("trial %d %s: %d completed + %d unfinished != %d submitted",
					trial, sys.name, len(res.Records), res.Unfinished, len(reqs))
			}
			seen := map[uint64]bool{}
			for _, r := range res.Records {
				if seen[r.ID] {
					t.Fatalf("trial %d %s: request %d completed twice", trial, sys.name, r.ID)
				}
				seen[r.ID] = true
				w, ok := byID[r.ID]
				if !ok {
					t.Fatalf("trial %d %s: unknown request %d completed", trial, sys.name, r.ID)
				}
				if r.OutputTokens != w.OutputTokens || r.PromptTokens != w.PromptTokens {
					t.Fatalf("trial %d %s: request %d token counts mutated", trial, sys.name, r.ID)
				}
				// Timeline sanity: arrival <= prefill start <= first token
				// <= completion; decode start within [first token, completion].
				if r.PrefillStart < r.Arrival || r.FirstToken < r.PrefillStart || r.Completion < r.FirstToken {
					t.Fatalf("trial %d %s: request %d timeline inverted: %+v", trial, sys.name, r.ID, r)
				}
				if w.OutputTokens > 1 && (r.DecodeStart < r.FirstToken || r.DecodeStart > r.Completion) {
					t.Fatalf("trial %d %s: request %d decode start out of range", trial, sys.name, r.ID)
				}
			}
		}
	}
}

// TestPropertyLifecyclePartitionUnderFaults checks exactly-once
// accounting when requests are aborted, rejected, and crash-recovered
// mid-flight: every submitted request ends in exactly one of the four
// lifecycle states, no ID appears in more than one record list, and a
// recovered (re-prefilled) request is never counted as both aborted and
// completed — the invariant the fleet failover path builds on.
func TestPropertyLifecyclePartitionUnderFaults(t *testing.T) {
	systems := []struct {
		name string
		run  runFn
	}{
		{"vLLM", RunVLLM}, {"DistServe", RunDistServe}, {"WindServe", RunWindServe},
	}
	plans := []string{
		"crash:d0@20+10; cancel@25x0.2",
		"crash:p0@15+10; slow:d0@10x3+30",
		"degrade@10x0.2+30; cancel@12x0.3; crash:d0@35+5",
	}
	for trial, spec := range plans {
		cfg := cfg13B(t)
		cfg.Horizon = sim.Seconds(600)
		cfg.Shed = ShedPolicy{MaxQueueDepth: 64, TTFTDeadline: sim.Seconds(30)}
		cfg.Faults = mustPlan(t, int64(trial)+1, spec)
		reqs := trace13B(4, 200, int64(trial)+100)
		for _, sys := range systems {
			res, err := sys.run(cfg, reqs)
			if err != nil {
				t.Fatalf("plan %d %s: %v", trial, sys.name, err)
			}
			completed := len(res.Records)
			if got := completed + res.Aborted + res.Rejected + res.Unfinished; got != len(reqs) {
				t.Fatalf("plan %d %s: partition broken: %d completed + %d aborted + %d rejected + %d unfinished != %d",
					trial, sys.name, completed, res.Aborted, res.Rejected, res.Unfinished, len(reqs))
			}
			if len(res.AbortedRecords) != res.Aborted || len(res.RejectedRecords) != res.Rejected {
				t.Fatalf("plan %d %s: record lists disagree with counters", trial, sys.name)
			}
			state := map[uint64]string{}
			note := func(id uint64, s string) {
				if prev, ok := state[id]; ok {
					t.Fatalf("plan %d %s: request %d counted as both %s and %s",
						trial, sys.name, id, prev, s)
				}
				state[id] = s
			}
			for _, r := range res.Records {
				note(r.ID, "completed")
			}
			for _, r := range res.AbortedRecords {
				note(r.ID, "aborted")
			}
			for _, r := range res.RejectedRecords {
				note(r.ID, "rejected")
			}
			if res.Recovered > completed+res.Aborted {
				t.Fatalf("plan %d %s: recovered %d exceeds finalized in-flight requests",
					trial, sys.name, res.Recovered)
			}
		}
	}
}

// TestSameTraceAcrossSystems checks that system comparison is apples to
// apples: all systems consume the identical arrival times.
func TestSameTraceAcrossSystems(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(3, 100, 5)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			if r.Arrival != reqs[r.ID-1].Arrival {
				t.Fatalf("%s: request %d arrival drifted", name, r.ID)
			}
		}
	}
}
