package serve

import (
	"fmt"

	"windserve/internal/cluster"
	"windserve/internal/engine"
	"windserve/internal/kvcache"
	"windserve/internal/metrics"
	"windserve/internal/shard"
	"windserve/internal/sim"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// This file extends sharding beyond the fleet: one DistServe testbed's
// prefill/decode instances partitioned across shard simulators, with the
// KV-transfer links as the cross-shard wire. The coordinator actor
// (actor 0, shard 0) owns the recorder, the arrival stream, and all
// routing; each instance actor owns one engine.Instance and its local
// state. Every cross-actor interaction is a NetDelay-latent message —
// NetDelay is the group lookahead — so the run is byte-identical at any
// shard count, including 1.
//
// The message protocol deliberately prices coordination: submits,
// decode-KV reservations, and post-transfer admissions each cross the
// wire, so TTFT includes the hops a physically distributed control plane
// would pay. That makes this a distinct system variant ("DistServe-
// sharded"), not a bit-identical reimplementation of RunDistServe — the
// invariance claim is across shard counts and lookahead modes, not
// against the single-simulator testbed.

// ShardedConfig configures a sharded single-testbed DistServe run.
type ShardedConfig struct {
	// Serve is the testbed configuration. Faults, shedding, tracing,
	// elastic flipping, and prefix caching are not supported in the
	// sharded testbed and are rejected.
	Serve Config
	// Shards partitions the instances across this many shard simulators
	// (instance k on shard k % Shards; the coordinator on shard 0).
	// Default 1; clamped to the instance count.
	Shards int
	// NetDelay is the coordinator↔instance wire latency and the group's
	// conservative lookahead. Default 5 ms.
	NetDelay sim.Duration
	// Lookahead selects the barrier mode: "adaptive" (default) or
	// "fixed". Output is byte-identical either way.
	Lookahead string
	// ShardStats, when non-nil, receives the group's window/barrier
	// counters after the run (out of band — never part of Result).
	ShardStats *shard.Stats
}

// skind enumerates the sharded testbed's message types.
type skind uint8

const (
	// coordinator → prefill
	sSubmit skind = iota // w: request to prefill
	sXfer                // id, b=decode index: start the KV transfer

	// coordinator → decode
	sReserve // id, a=tokens: try to allocate decode KV

	// prefill → decode
	sAdmit // id, w, a=generated: KV landed; join the decode batch

	// instance → coordinator
	sReserveRes   // id, ok: reservation outcome
	sPrefillStart // id, t: ledger forward
	sFirstToken   // id, t: ledger forward
	sPrefillDone  // id, a=generated, b=context tokens: route a decode
	sDecodeStart  // id, t: ledger forward
	sComplete     // id, t: ledger forward (decode, or prefill for 1-token outputs)
	sFreeKV       // decode KV freed: retry a parked reservation
	sEvicted      // id, w: decode ran out of swap; re-prefill from scratch
)

// smsg is the sharded testbed's wire format; field meaning is per-kind.
type smsg struct {
	kind skind
	to   int // destination actor: 0 = coordinator, k+1 = instance k
	id   uint64
	a, b int
	ok   bool
	t    sim.Time
	w    workload.Request
}

// pdInstance is one instance actor: an engine on its shard plus the local
// request incarnations. Prefill instances also own their outbound
// transfer links (the link occupies virtual bandwidth on the prefill's
// shard; the admission that follows crosses the wire).
type pdInstance struct {
	c        *shardedPD
	k        int // 0..P-1 prefills, P..P+D-1 decodes
	sh       *shard.Shard[smsg]
	ins      *engine.Instance
	reqs     map[uint64]*engine.Req
	p2d      []*xfer.Link // prefill only: one per decode
	lastFree int          // decode only: last free-token count reported
}

// pendingXfer is one prefilled request waiting for decode KV, queued FCFS
// at the coordinator.
type pendingXfer struct {
	id       uint64
	prefill  int
	gen, ctx int
}

// shardedPD is the coordinator actor.
type shardedPD struct {
	cfg ShardedConfig
	g   *shard.Group[smsg]
	s   *sim.Simulator // shard 0's simulator — the coordinator's clock
	rec *metrics.Recorder

	insts  []*pdInstance
	nP, nD int

	rrP, rrD int
	// pending is the FCFS decode-KV queue. At most one reservation is in
	// flight at a time (reserving); cursor/tries walk the decode ring for
	// the head entry.
	pending       []pendingXfer
	reserving     bool
	cursor, tries int
	// freed remembers a decode free-KV report that arrived mid-walk, so
	// an exhausted walk restarts once instead of parking past the wakeup.
	freed bool
	// prefillAt tracks which prefill instance owns each in-flight prompt,
	// so the transfer start can be addressed back to it.
	prefillAt map[uint64]int

	evicted int // decode swap-exhaustion restarts

	src         workload.Source
	arrivalFn   func()
	nextReq     workload.Request
	haveNext    bool
	arrivals    int
	lastArrival sim.Time
}

func (c *ShardedConfig) validate() error {
	s := &c.Serve
	if s.Faults != nil {
		return fmt.Errorf("serve: sharded testbed does not support fault plans")
	}
	if s.Tracer != nil {
		return fmt.Errorf("serve: sharded testbed does not support tracing")
	}
	if s.Elastic {
		return fmt.Errorf("serve: sharded testbed does not support elastic role flipping")
	}
	if s.Prefix.Enabled {
		return fmt.Errorf("serve: sharded testbed does not support prefix caching")
	}
	if s.Shed != (ShedPolicy{}) {
		return fmt.Errorf("serve: sharded testbed does not support shedding")
	}
	switch c.Lookahead {
	case "", "adaptive", "fixed":
	default:
		return fmt.Errorf("serve: unknown lookahead mode %q (want adaptive or fixed)", c.Lookahead)
	}
	if c.Shards < 0 || c.NetDelay < 0 {
		return fmt.Errorf("serve: negative shard knob")
	}
	return s.validate()
}

// RunShardedDistServe runs the sharded testbed over a materialized trace.
func RunShardedDistServe(cfg ShardedConfig, reqs []workload.Request) (*Result, error) {
	return RunShardedDistServeFrom(cfg, workload.NewSliceSource(reqs))
}

// RunShardedDistServeFrom runs one DistServe testbed with its instances
// partitioned across shard simulators.
func RunShardedDistServeFrom(cfg ShardedConfig, src workload.Source) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.Serve.fillDefaults()
	n := cfg.Serve.NumPrefill + cfg.Serve.NumDecode
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards > n {
		cfg.Shards = n
	}
	if cfg.NetDelay == 0 {
		cfg.NetDelay = sim.Seconds(0.005)
	}
	if sim.Time(cfg.NetDelay) > sim.Time(cfg.Serve.Horizon) {
		cfg.NetDelay = cfg.Serve.Horizon
	}

	g := shard.NewGroup[smsg](cfg.Shards, cfg.NetDelay)
	if cfg.Lookahead == "fixed" {
		g.SetMode(shard.FixedGrid)
	}
	g.GrowActors(n + 1)
	rec := metrics.NewRecorder()
	if cfg.Serve.Stream.Enabled {
		rec = metrics.NewStreamingRecorder(cfg.Serve.SLO, cfg.Serve.Stream.MaxRecords)
	}
	c := &shardedPD{
		cfg: cfg, g: g, s: g.Shard(0).Sim(), rec: rec,
		nP: cfg.Serve.NumPrefill, nD: cfg.Serve.NumDecode,
		prefillAt: make(map[uint64]int),
	}
	if err := c.buildInstances(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Shards; i++ {
		g.Shard(i).OnMessage(c.dispatch)
	}

	c.src = src
	c.arrivalFn = c.arrive
	if w, ok := src.Next(); ok {
		c.nextReq, c.haveNext = w, true
		c.s.At(w.Arrival, c.arrivalFn)
	} else {
		g.SetEnd(sim.Time(0).Add(cfg.Serve.Horizon))
	}

	g.Run(cfg.Shards > 1)

	if cfg.ShardStats != nil {
		*cfg.ShardStats = g.Stats()
	}
	return c.finish(), nil
}

// buildInstances plans the cluster and places instance k's engine — and,
// for prefills, its outbound transfer links — on shard k % Shards.
func (c *shardedPD) buildInstances() error {
	cfg := c.cfg.Serve
	specs := make([]cluster.InstanceSpec, 0, c.nP+c.nD)
	for i := 0; i < c.nP; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RolePrefill, Place: cfg.PrefillPlace})
	}
	for j := 0; j < c.nD; j++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RoleDecode, Place: cfg.DecodePlace})
	}
	asg, err := cluster.Plan(cfg.Topo, cfg.Model, cfg.Params, cfg.ReserveFrac, specs...)
	if err != nil {
		return fmt.Errorf("serve: planning sharded DistServe: %w", err)
	}
	px := cfg.NamePrefix
	for k := 0; k < c.nP+c.nD; k++ {
		sh := c.g.Shard(k % c.cfg.Shards)
		pi := &pdInstance{c: c, k: k, sh: sh, reqs: make(map[uint64]*engine.Req)}
		a := asg[k]
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return err
		}
		prefill := k < c.nP
		var name string
		if prefill {
			name = fmt.Sprintf("%sprefill-%d", px, k)
		} else {
			name = fmt.Sprintf("%sdecode-%d", px, k-c.nP)
		}
		host := xfer.NewLink(sh.Sim(), name+"-host", cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		ins, err := engine.NewInstance(sh.Sim(), engine.Config{
			Name: name, CM: a.CM, KV: kv, HostLink: host,
			AllowPrefill: prefill, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
		}, pi.hooks(prefill))
		if err != nil {
			return err
		}
		pi.ins = ins
		if prefill {
			pi.p2d = make([]*xfer.Link, c.nD)
			for j := 0; j < c.nD; j++ {
				spec := cluster.TransferLink(cfg.Topo, a, asg[c.nP+j])
				pi.p2d[j] = xfer.NewLink(sh.Sim(), fmt.Sprintf("%sp%d-d%d", px, k, j), spec, xfer.DefaultEfficiency)
			}
		}
		c.insts = append(c.insts, pi)
	}
	return nil
}

// hooks wires one instance's engine callbacks to the message protocol.
func (pi *pdInstance) hooks(prefill bool) engine.Hooks {
	h := engine.Hooks{
		OnComplete: func(q *engine.Req) {
			delete(pi.reqs, q.W.ID)
			pi.send(smsg{kind: sComplete, id: q.W.ID, t: pi.sh.Sim().Now()})
			if !prefill {
				pi.reportFree()
			}
		},
	}
	if prefill {
		h.OnPrefillStart = func(q *engine.Req) {
			pi.send(smsg{kind: sPrefillStart, id: q.W.ID, t: pi.sh.Sim().Now()})
		}
		h.OnFirstToken = func(q *engine.Req) {
			pi.send(smsg{kind: sFirstToken, id: q.W.ID, t: pi.sh.Sim().Now()})
		}
		h.OnPrefillDone = func(q *engine.Req) {
			q.Phase = engine.PhaseTransferring
			pi.send(smsg{kind: sPrefillDone, id: q.W.ID, a: q.Generated, b: q.Ctx()})
		}
		return h
	}
	h.OnDecodeStart = func(q *engine.Req) {
		pi.send(smsg{kind: sDecodeStart, id: q.W.ID, t: pi.sh.Sim().Now()})
	}
	h.OnIterationEnd = pi.reportFree
	h.OnEvicted = func(q *engine.Req) {
		// Swap space exhausted: the KV is gone, so the request restarts
		// from scratch on a prefill instance, routed by the coordinator.
		delete(pi.reqs, q.W.ID)
		pi.send(smsg{kind: sEvicted, id: q.W.ID, w: q.W})
	}
	return h
}

// reportFree tells the coordinator when decode KV grew — the signal that
// a parked reservation may now succeed. Delta-suppressed: shrinking or
// unchanged free space sends nothing.
func (pi *pdInstance) reportFree() {
	free := pi.ins.FreeKVTokens()
	if free > pi.lastFree {
		pi.send(smsg{kind: sFreeKV})
	}
	pi.lastFree = free
}

// send posts a message to the coordinator.
func (pi *pdInstance) send(m smsg) {
	m.to = 0
	pi.sh.Send(0, pi.k+1, pi.c.cfg.NetDelay, m)
}

// sendTo posts a message to instance k (the prefill→decode admit path).
func (pi *pdInstance) sendTo(k int, m smsg) {
	m.to = k + 1
	pi.sh.Send(k%pi.c.cfg.Shards, pi.k+1, pi.c.cfg.NetDelay, m)
}

// handle executes one message addressed to this instance.
func (pi *pdInstance) handle(m smsg) {
	switch m.kind {
	case sSubmit:
		q := engine.NewReq(m.w)
		pi.reqs[m.w.ID] = q
		pi.ins.EnqueuePrefill(q)
	case sXfer:
		q := pi.reqs[m.id]
		j := m.b
		bytes := float64(q.Ctx()) * pi.c.cfg.Serve.Model.KVBytesPerToken()
		lk := pi.p2d[j]
		lk.Transfer(bytes, func() {
			// Payload landed: drop the prefill-side copy and hand the
			// stream to the decode instance. The admission crosses the
			// wire like every other control transition.
			pi.ins.ReleaseKV(q)
			delete(pi.reqs, m.id)
			pi.sendTo(pi.c.nP+j, smsg{kind: sAdmit, id: m.id, w: q.W, a: q.Generated})
		})
	case sReserve:
		ok := pi.ins.KV().Allocate(kvcache.RequestID(m.id), m.a) == nil
		if ok {
			pi.lastFree = pi.ins.FreeKVTokens()
		}
		pi.send(smsg{kind: sReserveRes, id: m.id, ok: ok})
	case sAdmit:
		q := &engine.Req{W: m.w, PrefillDone: m.w.PromptTokens, Generated: m.a,
			Phase: engine.PhaseTransferring}
		pi.reqs[m.w.ID] = q
		pi.ins.AdmitDecode(q)
	}
}

// dispatch is every shard's delivery handler.
func (c *shardedPD) dispatch(src int, m smsg) {
	if m.to == 0 {
		c.coordMsg(m)
		return
	}
	c.insts[m.to-1].handle(m)
}

// sendTo posts a coordinator message to instance k.
func (c *shardedPD) sendTo(k int, m smsg) {
	m.to = k + 1
	c.g.Shard(0).Send(k%c.cfg.Shards, 0, c.cfg.NetDelay, m)
}

// coordMsg handles one instance→coordinator message.
func (c *shardedPD) coordMsg(m smsg) {
	switch m.kind {
	case sPrefillStart:
		c.rec.PrefillStart(m.id, m.t)
	case sFirstToken:
		c.rec.FirstToken(m.id, m.t)
	case sDecodeStart:
		c.rec.DecodeStart(m.id, m.t)
	case sComplete:
		c.rec.Complete(m.id, m.t)
		delete(c.prefillAt, m.id) // single-token outputs never reach reserve
	case sPrefillDone:
		c.pending = append(c.pending, pendingXfer{id: m.id, prefill: c.prefillOf(m.id), gen: m.a, ctx: m.b})
		c.pump()
	case sReserveRes:
		c.reserveResolved(m)
	case sFreeKV:
		c.freed = true
		c.pump()
	case sEvicted:
		c.evicted++
		c.submitPrefill(m.w, "evict-restart")
	}
}

func (c *shardedPD) prefillOf(id uint64) int {
	return c.prefillAt[id]
}

// arrive admits one arrival and chains the next; when the source dries
// up the drain horizon becomes the group's end cap.
func (c *shardedPD) arrive() {
	w := c.nextReq
	c.arrivals++
	c.lastArrival = w.Arrival
	c.rec.Arrive(w.ID, w.PromptTokens, w.OutputTokens, c.s.Now())
	c.submitPrefill(w, "round-robin")
	if nw, ok := c.src.Next(); ok {
		c.nextReq = nw
		c.s.At(nw.Arrival, c.arrivalFn)
	} else {
		c.haveNext = false
		c.g.SetEnd(c.lastArrival.Add(c.cfg.Serve.Horizon))
	}
}

// submitPrefill routes one request to the next prefill instance.
func (c *shardedPD) submitPrefill(w workload.Request, reason string) {
	i := c.rrP % c.nP
	c.rrP++
	c.prefillAt[w.ID] = i
	c.cfg.Serve.Decisions.AddRoute(c.s.Now(), w.ID, c.insts[i].ins.Name(), reason)
	c.sendTo(i, smsg{kind: sSubmit, w: w})
}

// pump advances the FCFS decode-KV queue: at most one reservation in
// flight; the head entry walks the decode ring until a decode accepts,
// then the transfer starts and the next entry may reserve while the
// payload is still moving.
func (c *shardedPD) pump() {
	if c.reserving || len(c.pending) == 0 {
		return
	}
	if c.tries >= c.nD {
		// Every decode refused since the walk started. Park unless a free
		// report arrived meanwhile — then the walk gets one fresh pass.
		if !c.freed {
			return
		}
		c.freed, c.tries = false, 0
	}
	c.reserving = true
	head := c.pending[0]
	c.cursor = (c.rrD + c.tries) % c.nD
	c.sendTo(c.nP+c.cursor, smsg{kind: sReserve, id: head.id, a: head.ctx + 1})
}

// reserveResolved handles a decode's answer to the head reservation.
func (c *shardedPD) reserveResolved(m smsg) {
	c.reserving = false
	head := c.pending[0]
	if head.id != m.id {
		panic(fmt.Sprintf("serve: reservation reply for %d, head is %d", m.id, head.id))
	}
	if !m.ok {
		c.tries++
		c.pump()
		return
	}
	j := c.cursor
	c.rrD = (j + 1) % c.nD
	c.tries = 0
	c.pending = c.pending[1:]
	delete(c.prefillAt, head.id)
	c.cfg.Serve.Decisions.AddRoute(c.s.Now(), head.id, c.insts[c.nP+j].ins.Name(), "transfer-reserve")
	c.sendTo(head.prefill, smsg{kind: sXfer, id: head.id, b: j})
	c.pump()
}

// finish assembles the Result after the group drains.
func (c *shardedPD) finish() *Result {
	elapsed := c.g.LastFired()
	if c.g.AnyPending() {
		elapsed = c.lastArrival.Add(c.cfg.Serve.Horizon)
	}
	res := &Result{
		System:          "DistServe-sharded",
		Requests:        c.arrivals,
		Unfinished:      c.rec.Outstanding(),
		Elapsed:         elapsed,
		Records:         c.rec.Completed(),
		AbortedRecords:  c.rec.Aborted(),
		RejectedRecords: c.rec.Rejected(),
		Recovered:       c.evicted,
	}
	if c.rec.Streaming() {
		res.Summary = c.rec.StreamSummary()
	} else {
		res.Summary = metrics.Summarize(res.Records, c.cfg.Serve.SLO)
	}
	var pcu, pbu, dcu, dbu, stall float64
	for _, pi := range c.insts {
		res.LiveKVBlocks += pi.ins.KV().UsedBlocks()
		cu, bu := utilization(pi.ins, elapsed)
		stall += pi.ins.SwapStall.Seconds()
		if pi.k < c.nP {
			res.PrefillKV.Accumulate(pi.ins.KV().Stats())
			pcu += cu
			pbu += bu
			for _, lk := range pi.p2d {
				res.TransferGB += lk.BytesMoved / 1e9
			}
		} else {
			res.DecodeKV.Accumulate(pi.ins.KV().Stats())
			dcu += cu
			dbu += bu
		}
	}
	res.PrefillComputeUtil = pcu / float64(c.nP)
	res.PrefillBWUtil = pbu / float64(c.nP)
	res.DecodeComputeUtil = dcu / float64(c.nD)
	res.DecodeBWUtil = dbu / float64(c.nD)
	res.SwapStallSec = stall
	return res
}
