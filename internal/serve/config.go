// Package serve wires complete serving systems out of the substrate
// packages and runs them on workload traces:
//
//   - VLLM: a co-located engine with chunked prefill (the paper's vLLM
//     v0.4.2 baseline).
//   - DistServe: static phase disaggregation — prefill instance, decode
//     instance, serial post-prefill KV transfer, no cross-instance
//     scheduling (the paper's primary baseline).
//   - WindServe: the paper's system — DistServe plus the Global Scheduler
//     (Dynamic Prefill Dispatch, Dynamic Rescheduling), asynchronous
//     overlapped KV transfer, stall-free migration with KV backups, and
//     stream-based disaggregation in the decode instance.
//
// Ablations (WindServe-no-split, WindServe-no-resche, ...) are WindServe
// with feature flags off, as in the paper's §5.4.
package serve

import (
	"fmt"

	"windserve/internal/fault"
	"windserve/internal/gpu"
	"windserve/internal/metrics"
	"windserve/internal/model"
	"windserve/internal/perf"
	"windserve/internal/sched"
	"windserve/internal/sim"
	"windserve/internal/trace"
)

// Config describes one experiment's fixed environment.
type Config struct {
	Model  model.Config
	Topo   *gpu.Topology
	Params perf.Params
	SLO    metrics.SLO

	// PrefillPlace and DecodePlace shape the PD instances
	// (paper Table 3). VLLM uses ColocatedPlace instead.
	PrefillPlace   perf.Placement
	DecodePlace    perf.Placement
	ColocatedPlace perf.Placement
	// NumPrefill and NumDecode deploy that many instances of each shape
	// (default 1 each, the paper's setup). Multi-instance routing — the
	// paper's stated future work — is least-loaded for WindServe and
	// round-robin for DistServe.
	NumPrefill int
	NumDecode  int
	// NamePrefix prepends every instance, link, and trace name — fleet
	// replicas set "r<i>/" so names stay unique on a shared simulator.
	// Empty (the default) keeps single-testbed names unchanged.
	NamePrefix string

	// BlockSize is the KV block granularity (tokens).
	BlockSize int
	// ReserveFrac is per-GPU memory held back for activations.
	ReserveFrac float64
	// CPUSwapTokens is per-instance host swap capacity in tokens.
	CPUSwapTokens int
	// MaxPrefillTokens bounds a whole-prompt prefill batch.
	MaxPrefillTokens int
	// ChunkSize is the chunked-prefill budget.
	ChunkSize int
	// MaxDecodeBatch bounds the running batch.
	MaxDecodeBatch int
	// Horizon caps the simulation after the last arrival (safety against
	// saturated systems that would otherwise drain for hours of virtual
	// time). Zero means 7200 s.
	Horizon sim.Duration

	Tracer *trace.Tracer
	// Decisions, when non-nil, collects every scheduler decision (dispatch,
	// reschedule, route) for JSONL export. Nil skips logging entirely.
	Decisions *sched.DecisionLog

	Wind WindOptions

	// Shed is the SLO-aware request lifecycle policy (admission control
	// and TTFT-deadline aborts). The zero value disables both.
	Shed ShedPolicy
	// Faults optionally injects a disturbance plan into the run; every
	// system recovers per DESIGN.md's fault model. Nil means a clean run.
	Faults *fault.Plan

	// Stream selects bounded-memory metrics for long horizons. The zero
	// value keeps the exact recorder, so default runs are byte-identical.
	Stream StreamPolicy

	// Prefix opts every KV manager in the deployment into cross-request
	// prefix caching. The zero value keeps caching off, so default runs
	// are byte-identical.
	Prefix PrefixPolicy

	// Elastic wires the prefill/decode cluster for runtime role flipping:
	// full link matrices between same-role instances, role masks, and the
	// drain/migrate protocol behind Replica.Flip. Only the DistServe-style
	// cluster (RunDistServe, fleet replicas) supports it; the flip
	// decisions themselves come from the fleet's RoleController. The zero
	// value keeps the static wiring, so default runs are byte-identical.
	Elastic bool
}

// PrefixPolicy configures cross-request prefix caching: requests carrying
// a PrefixGroup share content-identified KV blocks for their common
// prompt prefix, shrinking prefill work by the hit length. Unreferenced
// prefix blocks are reclaimed LRU under memory pressure (backup copies
// go first); Tiered additionally demotes cold blocks to host memory and
// restores them over PCIe (charged as a swap-in stall) on a later hit.
type PrefixPolicy struct {
	// Enabled turns prefix caching on for every instance's KV manager.
	Enabled bool
	// Tiered enables GPU→CPU demotion of cold prefix blocks instead of
	// dropping them outright.
	Tiered bool
}

// StreamPolicy opts a run into bounded-memory metrics: finalized records
// fold into online aggregates (P² sketches for percentiles; everything
// else exact) and only the first MaxRecords records per outcome class
// stay retained for export. Combined with a workload.Source-fed run, a
// million-request horizon holds O(instances + in-flight + MaxRecords)
// state instead of O(requests).
type StreamPolicy struct {
	// Enabled switches the runner to a StreamingRecorder.
	Enabled bool
	// MaxRecords caps retained finalized records per class
	// (metrics.DefaultMaxRecords if 0).
	MaxRecords int
}

// ShedPolicy is SLO-aware load shedding: rather than queue arrivals
// beyond any hope of meeting the TTFT SLO (and drag every other request
// down with them), the system rejects at admission and aborts requests
// whose deadline has passed — trading raw throughput for goodput.
type ShedPolicy struct {
	// MaxQueueDepth rejects an arrival when the number of requests
	// waiting for prefill across all instances is already at least this.
	// 0 disables admission control.
	MaxQueueDepth int
	// TTFTDeadline aborts a request that has not produced its first
	// token this long after arrival (a client-side timeout). 0 disables
	// deadline aborts.
	TTFTDeadline sim.Duration
}

// WindOptions are WindServe's policy knobs and ablation switches.
type WindOptions struct {
	// DisableSBD turns stream-based disaggregation off: dispatched
	// prefills join hybrid batches (WindServe-no-split, Fig. 13a).
	DisableSBD bool
	// DisableResched turns Dynamic Rescheduling off
	// (WindServe-no-resche, Fig. 13b).
	DisableResched bool
	// DisableDispatch turns Dynamic Prefill Dispatch off.
	DisableDispatch bool
	// DisableAsyncTransfer reverts to DistServe-style serial transfers.
	DisableAsyncTransfer bool
	// DisableBackup turns proactive KV backups off.
	DisableBackup bool

	// ThresholdFrac sets Algorithm 1's thrd = frac × TTFT SLO. The paper
	// sets the threshold "slightly below the TTFT SLO"; default 0.8.
	ThresholdFrac float64
	// KVSafetyFrac keeps this fraction of decode KV free of assists.
	KVSafetyFrac float64
	// RefDecodeBatch sizes the assist budget (defaults to 16 requests at
	// half the model's context).
	RefDecodeBatch perf.Batch

	Resched sched.ReschedulePolicy
	Backup  sched.BackupPolicy
}

// PaperPlacement returns Table 3's placement for a model.
func PaperPlacement(m model.Config) (prefill, decode perf.Placement) {
	switch m.Name {
	case "OPT-66B", "LLaMA2-70B":
		return perf.Placement{TP: 2, PP: 2}, perf.Placement{TP: 2, PP: 2}
	default:
		return perf.Placement{TP: 2, PP: 1}, perf.Placement{TP: 2, PP: 1}
	}
}

// PaperSLO returns Table 4's SLOs for a model.
func PaperSLO(m model.Config) (metrics.SLO, error) {
	switch m.Name {
	case "OPT-13B":
		return metrics.SLO{TTFT: sim.Seconds(0.25), TPOT: sim.Seconds(0.1)}, nil
	case "OPT-66B":
		return metrics.SLO{TTFT: sim.Seconds(0.8), TPOT: sim.Seconds(0.15)}, nil
	case "LLaMA2-13B":
		return metrics.SLO{TTFT: sim.Seconds(4), TPOT: sim.Seconds(0.1)}, nil
	case "LLaMA2-70B":
		return metrics.SLO{TTFT: sim.Seconds(15), TPOT: sim.Seconds(0.5)}, nil
	default:
		return metrics.SLO{}, fmt.Errorf("serve: no paper SLO for %s", m.Name)
	}
}

// TotalGPUs returns the device count of the PD deployment (all prefill
// and decode instances) — the denominator of the linear scaling rule.
func (c Config) TotalGPUs() int {
	np, nd := c.NumPrefill, c.NumDecode
	if np <= 0 {
		np = 1
	}
	if nd <= 0 {
		nd = 1
	}
	return np*c.PrefillPlace.GPUs() + nd*c.DecodePlace.GPUs()
}

// DeriveTPOTSLO computes a TPOT SLO the way the paper does (§5.2): 4× the
// execution time of one decode iteration for a batch of 16 requests at
// the workload's average context length, running without prefill
// interference.
func DeriveTPOTSLO(cm *perf.CostModel, avgContextTokens int) sim.Duration {
	return 4 * cm.DecodeTime(16, 16*avgContextTokens)
}

// DefaultConfig builds the paper's experiment configuration for a model:
// Table 3 placements, Table 4 SLOs, the Fig. 9 testbed, and the serving
// defaults shared by every system.
func DefaultConfig(m model.Config) (Config, error) {
	slo, err := PaperSLO(m)
	if err != nil {
		return Config{}, err
	}
	pre, dec := PaperPlacement(m)
	cfg := Config{
		Model:          m,
		Topo:           gpu.PaperTestbed(),
		Params:         perf.DefaultParams(),
		SLO:            slo,
		PrefillPlace:   pre,
		DecodePlace:    dec,
		ColocatedPlace: pre, // vLLM replicas use the prefill shape

		BlockSize:        16,
		ReserveFrac:      0.1,
		CPUSwapTokens:    1 << 18, // ~256k tokens of host swap
		MaxPrefillTokens: 8192,
		ChunkSize:        512,
		MaxDecodeBatch:   256,
		Wind:             DefaultWindOptions(),
	}
	return cfg, nil
}

// DefaultWindOptions returns the paper-calibrated WindServe policies.
func DefaultWindOptions() WindOptions {
	return WindOptions{
		ThresholdFrac: 0.8,
		KVSafetyFrac:  0.06,
		Resched:       sched.DefaultReschedulePolicy(),
		Backup:        sched.DefaultBackupPolicy(),
	}
}

// validate rejects configurations that fillDefaults would otherwise mask
// (negative counts silently becoming 1) or that would surface as a panic
// or nonsense deep inside a run. It runs before fillDefaults, so zero
// values that mean "use the default" are still checked for sign only —
// except BlockSize, whose zero value has historically caused the
// confusing kvcache construction failure this guards against.
func (c *Config) validate() error {
	if c.NumPrefill < 0 {
		return fmt.Errorf("serve: NumPrefill %d is negative", c.NumPrefill)
	}
	if c.NumDecode < 0 {
		return fmt.Errorf("serve: NumDecode %d is negative", c.NumDecode)
	}
	if c.BlockSize <= 0 {
		return fmt.Errorf("serve: BlockSize %d must be positive", c.BlockSize)
	}
	if c.ReserveFrac < 0 || c.ReserveFrac >= 1 {
		return fmt.Errorf("serve: ReserveFrac %g outside [0,1)", c.ReserveFrac)
	}
	if c.Wind.ThresholdFrac < 0 {
		return fmt.Errorf("serve: Wind.ThresholdFrac %g is negative", c.Wind.ThresholdFrac)
	}
	if c.Wind.KVSafetyFrac < 0 || c.Wind.KVSafetyFrac >= 1 {
		return fmt.Errorf("serve: Wind.KVSafetyFrac %g outside [0,1)", c.Wind.KVSafetyFrac)
	}
	if c.Shed.MaxQueueDepth < 0 {
		return fmt.Errorf("serve: Shed.MaxQueueDepth %d is negative", c.Shed.MaxQueueDepth)
	}
	if c.Shed.TTFTDeadline < 0 {
		return fmt.Errorf("serve: Shed.TTFTDeadline %v is negative", c.Shed.TTFTDeadline)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
		np, nd := c.NumPrefill, c.NumDecode
		if np == 0 {
			np = 1
		}
		if nd == 0 {
			nd = 1
		}
		// A single-testbed run has no replica tier, so replica-granularity
		// events (rcrash/rslow/rpart) are rejected here too.
		if err := c.Faults.ValidateTargets(np, nd, 0); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	return nil
}

func (c *Config) fillDefaults() {
	if c.NumPrefill <= 0 {
		c.NumPrefill = 1
	}
	if c.NumDecode <= 0 {
		c.NumDecode = 1
	}
	if c.BlockSize <= 0 {
		c.BlockSize = 16
	}
	if c.ReserveFrac <= 0 {
		c.ReserveFrac = 0.1
	}
	if c.CPUSwapTokens <= 0 {
		c.CPUSwapTokens = 1 << 18
	}
	if c.MaxPrefillTokens <= 0 {
		c.MaxPrefillTokens = 8192
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 512
	}
	if c.MaxDecodeBatch <= 0 {
		c.MaxDecodeBatch = 256
	}
	if c.Horizon <= 0 {
		c.Horizon = sim.Seconds(7200)
	}
	if c.Wind.ThresholdFrac <= 0 {
		c.Wind.ThresholdFrac = 0.8
	}
	if c.Wind.KVSafetyFrac <= 0 {
		c.Wind.KVSafetyFrac = 0.06
	}
	if c.Wind.Resched == (sched.ReschedulePolicy{}) {
		c.Wind.Resched = sched.DefaultReschedulePolicy()
	}
	if c.Wind.Backup == (sched.BackupPolicy{}) {
		c.Wind.Backup = sched.DefaultBackupPolicy()
	}
	if c.Wind.RefDecodeBatch.Empty() {
		c.Wind.RefDecodeBatch = perf.DecodeOnly(16, 16*c.Model.MaxContext/2)
	}
}
