package serve

import (
	"fmt"
	"sort"

	"windserve/internal/engine"
	"windserve/internal/sched"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/workload"
)

// RunWindServe simulates the paper's system: phase disaggregation plus
//
//   - a Global Scheduler whose Profiler predicts iteration times from
//     offline regression (eqs. 1–2) and whose Coordinator runs Dynamic
//     Prefill Dispatch (Algorithm 1) on every arrival and Dynamic
//     Rescheduling on decode KV pressure;
//   - asynchronous KV transfer overlapped with prefill computation;
//   - stall-free rescheduling — migrating decode jobs keep decoding while
//     their KV copies, pausing only for a bounded final tail;
//   - proactive KV backups of long-context requests in prefill instances'
//     spare memory, shrinking later migrations to a delta;
//   - stream-based disaggregation in decode instances, running dispatched
//     prefills in a second stream.
//
// With multiple instances the Global Scheduler also load-balances:
// arrivals go to the least-loaded prefill instance, transfers and
// dispatches target the decode instance with the most free KV, and
// migrations pick the prefill instance with the most spare blocks.
// The ablations of §5.4 are flags in Config.Wind.
func RunWindServe(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunWindServeFrom(cfg, workload.NewSliceSource(reqs))
}

// RunWindServeFrom is RunWindServe fed from a pull-based request source.
func RunWindServeFrom(cfg Config, src workload.Source) (*Result, error) {
	if cfg.Elastic {
		return nil, fmt.Errorf("serve: WindServe manages roles through its Global Scheduler; Elastic applies to DistServe-style clusters only")
	}
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	cfg = r.cfg

	w := &windState{
		r:              r,
		cfg:            cfg,
		async:          make(map[uint64]*asyncXfer),
		migrations:     make(map[uint64]*migration),
		backupInFlight: make(map[uint64]bool),
		backupAt:       make(map[uint64]int),
	}
	d, err := newPD(r, cfg, pdHooks{
		onPrefillStart:     w.maybeStartAsyncTransfer,
		transfer:           w.finishPrefillTransfer,
		onDecodeIterEnd:    w.onDecodeIterEnd,
		onComplete:         w.onComplete,
		onTransfer:         w.observeTransfer,
		crashPrefill:       w.crashPrefill,
		crashDecode:        w.crashDecode,
		decodeSBD:          !cfg.Wind.DisableSBD,
		decodeAllowPrefill: cfg.Wind.DisableSBD,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: planning WindServe: %w", err)
	}
	w.d = d
	r.queueDepth = d.queueDepth
	r.onAbort = w.abort
	if err := installPDFaults(r, d); err != nil {
		return nil, err
	}

	prof, err := sched.Profile(d.prefills[0].CM(), nil)
	if err != nil {
		return nil, fmt.Errorf("serve: profiling: %w", err)
	}
	budget := sched.AssistBudget(d.decodes[0].CM(), cfg.Wind.RefDecodeBatch, cfg.SLO.TPOT)
	dkv := d.decodes[0].KV()
	w.coord = &sched.Coordinator{
		Prof:           prof,
		Thrd:           sim.Duration(cfg.Wind.ThresholdFrac * cfg.SLO.TTFT.Seconds()),
		BudgetTokens:   budget,
		KVSafetyTokens: int(cfg.Wind.KVSafetyFrac * float64(dkv.TotalBlocks()*dkv.BlockSize())),
	}
	prof.WarmStartTransfer(d.nominalP2DRate())

	r.scheduleStream(src, w.submit)
	res := r.run(w.systemName())
	d.finalize(res)
	res.Dispatched = w.dispatched
	res.Rescheduled = w.rescheduled
	res.Backups = w.backups
	res.TransferRateBps = prof.TransferRate()
	return res, nil
}

type windState struct {
	r     *runner
	cfg   Config
	d     *pd
	coord *sched.Coordinator

	async          map[uint64]*asyncXfer
	migrations     map[uint64]*migration
	backupInFlight map[uint64]bool
	backupAt       map[uint64]int // request → prefill instance holding its backup

	dispatched  int
	rescheduled int
	backups     int
}

func (w *windState) systemName() string {
	switch {
	case w.cfg.Wind.DisableSBD:
		return "WindServe-no-split"
	case w.cfg.Wind.DisableResched:
		return "WindServe-no-resche"
	case w.cfg.Wind.DisableDispatch:
		return "WindServe-no-dispatch"
	case w.cfg.Wind.DisableAsyncTransfer:
		return "WindServe-no-async"
	default:
		return "WindServe"
	}
}

// leastLoadedPrefillIdx is the dispatch-view prefill target (down
// instances skipped; with everything down, requests park on instance 0
// until a restore).
func (w *windState) leastLoadedPrefillIdx() int {
	best := -1
	for i := 0; i < len(w.d.prefills); i++ {
		if w.d.prefills[i].Down() {
			continue
		}
		if best < 0 || w.d.prefills[i].QueuedPrefillTokens() < w.d.prefills[best].QueuedPrefillTokens() {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// freestPrefillIdx is the migration/backup target: the live prefill
// instance with the most free KV tokens, or -1 when all are down.
func (w *windState) freestPrefillIdx() int {
	best := -1
	for i := 0; i < len(w.d.prefills); i++ {
		if w.d.prefills[i].Down() {
			continue
		}
		if best < 0 || w.d.prefills[i].FreeKVTokens() > w.d.prefills[best].FreeKVTokens() {
			best = i
		}
	}
	return best
}

// submit routes an arrival through Dynamic Prefill Dispatch (Algorithm 1).
func (w *windState) submit(q *engine.Req) {
	pi := w.leastLoadedPrefillIdx()
	if dj := w.d.pickDecode(); !w.cfg.Wind.DisableDispatch && dj >= 0 {
		dec := w.d.decodes[dj]
		in := sched.DispatchInput{
			NewPromptTokens:      q.W.PromptTokens,
			QueuedPrefillTokens:  w.d.prefills[pi].QueuedPrefillTokens(),
			PrefillBusyRemaining: w.d.prefills[pi].BusyRemaining(),
			DecodeFreeKVTokens:   dec.FreeKVTokens(),
			AssistInFlightTokens: dec.AssistPendingTokens() + dec.QueuedPrefillTokens(),
			TransferBytes:        w.d.kvBytes(q.W.PromptTokens),
			CachedTokens:         w.d.prefills[pi].KV().PeekPrefix(q.W.PrefixGroup, q.W.PrefixTokens),
		}
		decision := w.coord.DecideDispatch(in)
		toDecode := decision.ToDecode && dec.AllocatePrefillKV(q)
		target := w.d.prefills[pi].Name()
		if toDecode {
			target = dec.Name()
		}
		w.logDispatch(q, in, decision, dec, target, toDecode)
		if toDecode {
			w.dispatched++
			w.d.decodeAt[q.W.ID] = dj
			now := w.r.s.Now()
			w.cfg.Tracer.Add("scheduler", trace.KindDispatch, now, now,
				fmt.Sprintf("req%d→decode-%d pred=%v", q.W.ID, dj, decision.PredictedTTFT))
			dec.EnqueueAssist(q)
			return
		}
	} else {
		w.cfg.Decisions.AddRoute(w.r.s.Now(), q.W.ID, w.d.prefills[pi].Name(), "least-loaded")
	}
	w.d.prefillAt[q.W.ID] = pi
	w.d.prefills[pi].EnqueuePrefill(q)
}

// logDispatch records one Algorithm 1 decision with the full candidate
// set: every live prefill instance (compute + transfer terms) and the
// decode instance the assist would land on (compute only — its prefill
// needs no KV copy). No-op without a decision log.
func (w *windState) logDispatch(q *engine.Req, in sched.DispatchInput,
	decision sched.DispatchDecision, dec *engine.Instance, target string, toDecode bool) {
	log := w.cfg.Decisions
	if log == nil {
		return
	}
	rec := &sched.DispatchRecord{
		Time:           w.r.s.Now(),
		ReqID:          q.W.ID,
		PromptTokens:   q.W.PromptTokens,
		CachedTokens:   in.CachedTokens,
		Threshold:      w.coord.Thrd,
		BudgetTokens:   w.coord.BudgetTokens,
		AssistInFlight: in.AssistInFlightTokens,
		Slots:          decision.Slots,
		Target:         target,
		ToDecode:       toDecode,
	}
	tx := w.coord.Prof.PredictTransfer(in.TransferBytes)
	for _, p := range w.d.prefills {
		if p.Down() {
			continue
		}
		queued := p.QueuedPrefillTokens()
		comp := w.coord.Prof.PredictPrefill(queued+q.W.PromptTokens) + p.BusyRemaining()
		rec.Candidates = append(rec.Candidates, sched.DispatchCandidate{
			Instance:      p.Name(),
			QueuedTokens:  queued,
			ComputeTTFT:   comp,
			TransferTTFT:  tx,
			PredictedTTFT: comp + tx,
		})
	}
	dcomp := w.coord.Prof.PredictPrefill(in.AssistInFlightTokens + q.W.PromptTokens)
	rec.Candidates = append(rec.Candidates, sched.DispatchCandidate{
		Instance:      dec.Name(),
		QueuedTokens:  in.AssistInFlightTokens,
		ComputeTTFT:   dcomp,
		PredictedTTFT: dcomp,
	})
	log.AddDispatch(rec)
}

// observeTransfer feeds completed p2d copies into the Profiler so
// Algorithm 1's TTFT prediction prices the transfer a prefill-side
// placement implies — on a degraded link that bias shifts dispatch toward
// the decode instance.
func (w *windState) observeTransfer(bytes float64, elapsed sim.Duration) {
	w.coord.Prof.ObserveTransfer(bytes, elapsed)
}

// asyncXfer tracks a transfer overlapped with prefill: the request may
// only start decoding when both the prefill and the copy have finished.
type asyncXfer struct {
	xferDone    bool
	prefillDone bool
	decodeIdx   int
}

// maybeStartAsyncTransfer begins streaming a request's KV to a decode
// instance as its prefill starts (layer-by-layer in the real system; here
// the copy and the compute occupy their resources concurrently and the
// request proceeds at whichever finishes last).
func (w *windState) maybeStartAsyncTransfer(q *engine.Req) {
	if w.cfg.Wind.DisableAsyncTransfer || q.Assist {
		return
	}
	dj := w.d.pickDecode()
	if dj < 0 {
		return // every decode instance is down; serial path retries later
	}
	if w.d.decodes[dj].KV().Allocate(q.KVID(), q.W.PromptTokens+1) != nil {
		return // no decode blocks: fall back to the serial path at prefill end
	}
	ax := &asyncXfer{decodeIdx: dj}
	w.async[q.W.ID] = ax
	w.d.decodeAt[q.W.ID] = dj
	w.d.asyncXfers++
	pi := w.d.prefillIdx(q)
	start := w.r.s.Now()
	bytes := w.d.kvBytes(q.W.PromptTokens)
	w.d.p2d[pi][dj].Transfer(bytes, func() {
		w.d.observeTransfer(bytes, start)
		w.cfg.Tracer.Add(fmt.Sprintf("link p%d-d%d", pi, dj), trace.KindKVTransfer, start, w.r.s.Now(),
			fmt.Sprintf("req%d async %d tokens", q.W.ID, q.W.PromptTokens))
		ax.xferDone = true
		w.maybeFinishAsync(q, ax)
	})
}

// finishPrefillTransfer is the pd transfer hook: async requests complete
// their handoff here; others return false and take the serial path.
func (w *windState) finishPrefillTransfer(q *engine.Req) bool {
	ax, ok := w.async[q.W.ID]
	if !ok {
		return false
	}
	ax.prefillDone = true
	w.maybeFinishAsync(q, ax)
	return true
}

func (w *windState) maybeFinishAsync(q *engine.Req, ax *asyncXfer) {
	if !ax.xferDone || !ax.prefillDone {
		return
	}
	if w.async[q.W.ID] != ax {
		return // superseded: crash recovery already re-routed the request
	}
	delete(w.async, q.W.ID)
	dec := w.d.decodes[ax.decodeIdx]
	if q.Phase == engine.PhaseAborted {
		w.d.prefills[w.d.prefillIdx(q)].ReleaseKV(q)
		w.d.releaseAt(dec, q)
		return
	}
	if dec.Down() || !dec.KV().Has(q.KVID()) {
		// The destination crashed under the copy (its allocation is gone).
		// The prefilled KV still exists at the source — keep it and
		// serial-transfer to a survivor instead of recomputing.
		delete(w.d.decodeAt, q.W.ID)
		w.d.serialTransfer(q)
		return
	}
	w.d.prefills[w.d.prefillIdx(q)].ReleaseKV(q)
	dec.AdmitDecode(q)
}

// onDecodeIterEnd runs the Global Scheduler's memory-pressure logic after
// every pass of decode instance j: Dynamic Rescheduling on low watermark,
// proactive backups when the imbalance favors them.
func (w *windState) onDecodeIterEnd(j int) {
	dec := w.d.decodes[j]
	dkv := dec.KV()
	freeFrac := 1 - dkv.Utilization()
	if !w.cfg.Wind.DisableResched {
		pol := w.cfg.Wind.Resched
		if pol.ShouldTrigger(freeFrac) && len(w.migrations) < pol.MaxConcurrentMigrations {
			capTokens := dkv.TotalBlocks() * dkv.BlockSize()
			need := int((pol.TargetFree - freeFrac) * float64(capTokens))
			victims := pol.PickVictims(dec.Running(), need, pol.MaxConcurrentMigrations-len(w.migrations))
			for _, v := range victims {
				w.startMigration(v, j, freeFrac)
			}
		}
	}
	if !w.cfg.Wind.DisableBackup {
		w.maybeBackup(j, freeFrac)
	}
}

// --- Stall-free rescheduling (paper §3.3) ------------------------------

type migration struct {
	q *engine.Req
	// clean counts context tokens already resident at the target.
	clean int
	// src decode instance and dst prefill instance.
	src, dst int
	// dead invalidates the migration: one of its endpoints crashed or the
	// request was aborted while a copy was in flight. Every live migration
	// always has exactly one pending link callback, which checks dead and
	// (for a paused drain) re-homes the request instead of resuming here.
	dead bool
	// rec is the decision-log entry (nil when logging is off); copy rounds
	// append to it as they complete.
	rec *sched.RescheduleRecord
}

// die invalidates the migration and stamps its log record.
func (m *migration) die() {
	m.dead = true
	if m.rec != nil && m.rec.Outcome == "" {
		m.rec.Outcome = "dead"
	}
}

// startMigration begins moving a long-context decode job from decode
// instance src to a prefill instance without stopping its decoding.
// freeFrac is the source's free-KV fraction at trigger time (logged).
func (w *windState) startMigration(q *engine.Req, src int, freeFrac float64) {
	id := q.KVID()
	clean := 0
	dst := w.freestPrefillIdx()
	if bi, ok := w.backupAt[q.W.ID]; ok && q.BackupTokens > 0 {
		pkv := w.d.prefills[bi].KV()
		if pkv.Has(id) && pkv.IsBackup(id) && pkv.PromoteBackup(id) == nil {
			// A backup already holds the first BackupTokens of context at
			// instance bi; only the delta must move there.
			dst = bi
			clean = q.BackupTokens
			delete(w.backupAt, q.W.ID)
		}
	}
	if clean == 0 {
		if dst < 0 {
			return // every prefill instance is down; nowhere to migrate
		}
		if w.d.prefills[dst].KV().Allocate(id, q.Ctx()+1) != nil {
			return // prefill memory too tight; try again on a later trigger
		}
	}
	q.Migrating = true
	w.rescheduled++
	m := &migration{q: q, clean: clean, src: src, dst: dst}
	w.migrations[q.W.ID] = m
	now := w.r.s.Now()
	m.rec = w.cfg.Decisions.AddReschedule(&sched.RescheduleRecord{
		Time:         now,
		ReqID:        q.W.ID,
		Trigger:      "low-watermark",
		FreeFrac:     freeFrac,
		Src:          w.d.decodes[src].Name(),
		Dst:          w.d.prefills[dst].Name(),
		CtxTokens:    q.Ctx(),
		BackupTokens: clean,
	})
	w.cfg.Tracer.Add("scheduler", trace.KindReschedule, now, now,
		fmt.Sprintf("req%d d%d→p%d ctx=%d backup=%d", q.W.ID, src, dst, q.Ctx(), clean))
	w.migrationRound(m)
}

// migrationRound copies the currently-dirty span while decoding continues;
// each round the dirty span shrinks toward the drain threshold.
func (w *windState) migrationRound(m *migration) {
	if w.abortMigrationIfGone(m) {
		return
	}
	dirty := m.q.Ctx() - m.clean
	if dirty <= w.cfg.Wind.Resched.DrainThresholdTokens {
		w.drainMigration(m)
		return
	}
	target := m.q.Ctx()
	start := w.r.s.Now()
	w.d.d2p[m.src][m.dst].Transfer(w.d.kvBytes(dirty), func() {
		if m.dead {
			return // an endpoint crashed mid-round; recovery re-homed q
		}
		w.cfg.Tracer.Add(fmt.Sprintf("link d%d-p%d", m.src, m.dst), trace.KindMigration, start, w.r.s.Now(),
			fmt.Sprintf("req%d copy %d tokens", m.q.W.ID, dirty))
		if m.rec != nil {
			m.rec.Rounds = append(m.rec.Rounds, sched.CopyRound{
				Kind: "copy", Start: start, End: w.r.s.Now(), Tokens: dirty,
			})
		}
		m.clean = target
		w.migrationRound(m)
	})
}

// drainMigration pauses the request's decoding, ships the bounded tail,
// and resumes decoding on the destination prefill instance.
func (w *windState) drainMigration(m *migration) {
	if w.abortMigrationIfGone(m) {
		return
	}
	q := m.q
	dec := w.d.decodes[m.src]
	dec.RemoveRunning(q)
	q.Phase = engine.PhaseDraining
	dirty := q.Ctx() - m.clean
	start := w.r.s.Now()
	w.d.d2p[m.src][m.dst].Transfer(w.d.kvBytes(dirty), func() {
		if m.dead {
			// An endpoint crashed (or q was aborted) while the tail copied.
			// A paused drain is owned by nobody, so put the request back
			// where it can decode: its source if that still holds the KV,
			// else through decode-orphan recovery (backup or re-prefill).
			if q.Phase == engine.PhaseDraining {
				if !dec.Down() && dec.KV().Has(q.KVID()) {
					q.Migrating = false
					dec.InsertRunning(q)
				} else {
					w.recoverDecodeOrphan(q)
				}
			}
			return
		}
		w.cfg.Tracer.Add(fmt.Sprintf("link d%d-p%d", m.src, m.dst), trace.KindMigration, start, w.r.s.Now(),
			fmt.Sprintf("req%d drain %d tokens", q.W.ID, dirty))
		if m.rec != nil {
			m.rec.Rounds = append(m.rec.Rounds, sched.CopyRound{
				Kind: "drain", Start: start, End: w.r.s.Now(), Tokens: dirty,
			})
			m.rec.Outcome = "migrated"
		}
		delete(w.migrations, q.W.ID)
		q.Migrating = false
		if q.Phase == engine.PhaseDone {
			// Completed in the same pass that drained it.
			w.releaseForeign(q)
			return
		}
		if dec.KV().Has(q.KVID()) {
			_ = dec.KV().Release(q.KVID())
			dec.Kick()
		}
		delete(w.d.decodeAt, q.W.ID)
		// Catch up the destination allocation with tokens generated during
		// the copy; the engine's own growth path recovers any shortfall.
		_ = w.d.prefills[m.dst].KV().Grow(q.KVID(), q.Ctx()+1)
		q.BackupTokens = 0
		w.d.prefillAt[q.W.ID] = m.dst
		w.d.prefills[m.dst].InsertRunning(q)
	})
}

// abortMigrationIfGone cancels a migration whose request completed or got
// preempted mid-copy, releasing the destination allocation.
func (w *windState) abortMigrationIfGone(m *migration) bool {
	q := m.q
	if m.dead {
		return true
	}
	if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted ||
		q.Phase == engine.PhaseSwapped || q.Phase == engine.PhaseWaiting {
		m.die()
		delete(w.migrations, q.W.ID)
		q.Migrating = false
		pkv := w.d.prefills[m.dst].KV()
		if pkv.Has(q.KVID()) {
			_ = pkv.Release(q.KVID())
			w.d.prefills[m.dst].Kick()
		}
		return true
	}
	return false
}

// --- Proactive KV backups (paper §3.3) ---------------------------------

// maybeBackup copies a long request's KV from decode instance j to a
// prefill instance's spare blocks when the decode side is filling and the
// prefill side is not: a later migration then only moves the delta.
func (w *windState) maybeBackup(j int, decodeFreeFrac float64) {
	pi := w.freestPrefillIdx()
	if pi < 0 {
		return // no live prefill instance to hold a backup
	}
	if w.d.d2p[j][pi].Busy() {
		return // keep backups off the critical path of migrations
	}
	pkv := w.d.prefills[pi].KV()
	pol := w.cfg.Wind.Backup
	prefillFree := 1 - pkv.Utilization()
	if !pol.ShouldBackup(decodeFreeFrac, prefillFree) {
		return
	}
	var cand *engine.Req
	for _, q := range w.d.decodes[j].Running() {
		if w.backupInFlight[q.W.ID] {
			continue
		}
		if q.Migrating || q.BackupTokens > 0 || q.Ctx() < pol.MinContextTokens {
			continue
		}
		if cand == nil || q.Ctx() > cand.Ctx() {
			cand = q
		}
	}
	if cand == nil {
		return
	}
	snap := cand.Ctx()
	if pkv.AllocateBackup(cand.KVID(), snap) != nil {
		return
	}
	w.backupInFlight[cand.W.ID] = true
	start := w.r.s.Now()
	w.d.d2p[j][pi].Transfer(w.d.kvBytes(snap), func() {
		delete(w.backupInFlight, cand.W.ID)
		w.cfg.Tracer.Add(fmt.Sprintf("link d%d-p%d", j, pi), trace.KindKVTransfer, start, w.r.s.Now(),
			fmt.Sprintf("req%d backup %d tokens", cand.W.ID, snap))
		if cand.Phase == engine.PhaseDone || cand.Phase == engine.PhaseAborted ||
			!pkv.Has(cand.KVID()) || !pkv.IsBackup(cand.KVID()) {
			return // finished, cancelled, or promoted while copying
		}
		cand.BackupTokens = snap
		w.backupAt[cand.W.ID] = pi
		w.backups++
	})
}

// onComplete cleans up cross-instance state for a finished request.
func (w *windState) onComplete(q *engine.Req) {
	w.releaseForeign(q)
}

// releaseForeign drops any allocation the request holds on instances it
// did NOT complete on (backups, stale migration targets, async copies).
func (w *windState) releaseForeign(q *engine.Req) {
	id := q.KVID()
	for _, ins := range w.d.prefills {
		if ins.KV().Has(id) {
			_ = ins.KV().Release(id)
			ins.Kick()
		}
	}
	for _, ins := range w.d.decodes {
		if ins.KV().Has(id) {
			_ = ins.KV().Release(id)
			ins.Kick()
		}
	}
	delete(w.async, q.W.ID)
	delete(w.backupAt, q.W.ID)
}

// --- Failure recovery (fault injection) --------------------------------
//
// The fault model and its invariants are documented in DESIGN.md. The
// short version: a crash loses an instance's KV and in-flight work;
// payloads already on a link are "captured" and complete; orphans restore
// from a KV backup when one survives, and re-prefill from scratch (losing
// generated-token KV, hence re-decoding) otherwise. All map iteration
// below walks sorted keys so recovery order — and therefore the whole
// simulation — is deterministic.

// abort is the runner's onAbort: scrub a terminated request (Phase is
// already PhaseAborted) from every WindServe structure.
func (w *windState) abort(q *engine.Req) {
	if m, ok := w.migrations[q.W.ID]; ok {
		m.die()
		delete(w.migrations, q.W.ID)
		q.Migrating = false
	}
	delete(w.backupInFlight, q.W.ID)
	w.d.abort(q)
	w.releaseForeign(q)
}

// crashPrefill handles prefill instance i dying: engine orphans plus
// requests waiting on i's KV for a serial transfer re-enter dispatch;
// backups held at i evaporate; migrations targeting i die (their victims
// keep decoding at the source).
func (w *windState) crashPrefill(i int) {
	orphans := w.d.prefills[i].Crash()
	keep := w.d.transferPending[:0]
	for _, q := range w.d.transferPending {
		if w.d.prefillAt[q.W.ID] == i {
			orphans = append(orphans, q)
		} else {
			keep = append(keep, q)
		}
	}
	w.d.transferPending = keep
	for _, id := range sortedIDs(w.backupAt) {
		if w.backupAt[id] != i {
			continue
		}
		delete(w.backupAt, id)
		if q, ok := w.r.live[id]; ok {
			q.BackupTokens = 0
		}
	}
	for _, id := range sortedIDs(w.migrations) {
		m := w.migrations[id]
		if m.dst != i {
			continue
		}
		m.die()
		delete(w.migrations, id)
		m.q.Migrating = false
	}
	for _, q := range orphans {
		if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
			continue
		}
		w.rePrefill(q)
	}
}

// crashDecode handles decode instance j dying: migrations out of j die
// (paused drains re-home via their pending callback), async transfers
// into j fall back to the serial path, and every orphaned request goes
// through backup-or-scratch recovery.
func (w *windState) crashDecode(j int) {
	orphans := w.d.decodes[j].Crash()
	for _, id := range sortedIDs(w.migrations) {
		m := w.migrations[id]
		if m.src != j {
			continue
		}
		m.die()
		delete(w.migrations, id)
	}
	for _, id := range sortedIDs(w.async) {
		ax := w.async[id]
		if ax.decodeIdx != j {
			continue
		}
		if !ax.prefillDone {
			// Still prefilling at the source: drop the dead transfer so
			// prefill completion takes the serial path to a survivor. The
			// stale link callback no-ops (map-identity check).
			delete(w.async, id)
			delete(w.d.decodeAt, id)
		}
		// With prefillDone set the request waits only on the copy; its
		// callback's Down/Has guard re-routes it when it fires.
	}
	for _, q := range orphans {
		if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
			continue
		}
		delete(w.d.decodeAt, q.W.ID)
		w.recoverDecodeOrphan(q)
	}
}

// recoverDecodeOrphan re-homes a request whose decode-side KV vanished.
// If a live prefill instance still holds a proactive backup, the backup
// promotes to a working copy and decoding resumes there, rolled back to
// the snapshot (tokens generated after the backup lost their KV with the
// crash and are re-decoded). Otherwise the request re-prefills from
// scratch.
func (w *windState) recoverDecodeOrphan(q *engine.Req) {
	id := q.W.ID
	delete(w.async, id)
	delete(w.backupInFlight, id)
	delete(w.d.decodeAt, id)
	if m, ok := w.migrations[id]; ok {
		m.die()
		delete(w.migrations, id)
	}
	q.Migrating = false
	if bi, ok := w.backupAt[id]; ok && q.BackupTokens > 0 && !w.d.prefills[bi].Down() {
		pkv := w.d.prefills[bi].KV()
		if pkv.Has(q.KVID()) && pkv.IsBackup(q.KVID()) && pkv.PromoteBackup(q.KVID()) == nil {
			delete(w.backupAt, id)
			// Drop any other allocation the request holds (a dead
			// migration's target, a stale async copy) — everything but the
			// promoted backup.
			for pi, ins := range w.d.prefills {
				if pi != bi {
					w.d.releaseAt(ins, q)
				}
			}
			for _, ins := range w.d.decodes {
				w.d.releaseAt(ins, q)
			}
			snap := q.BackupTokens
			q.BackupTokens = 0
			if gen := snap - q.W.PromptTokens; gen >= 1 && gen < q.Generated {
				q.Generated = gen
			}
			w.d.prefillAt[id] = bi
			w.r.markRecovered(q)
			w.d.prefills[bi].InsertRunning(q)
			return
		}
	}
	w.rePrefill(q)
}

// rePrefill is scratch recovery: release everything the request holds
// anywhere, forget its placement and progress (generated tokens lost
// their KV with the crash), and send it back through dispatch.
func (w *windState) rePrefill(q *engine.Req) {
	w.releaseForeign(q)
	delete(w.d.prefillAt, q.W.ID)
	delete(w.d.decodeAt, q.W.ID)
	delete(w.backupInFlight, q.W.ID)
	q.PrefillDone = 0
	q.PrefixHit = 0
	q.Generated = 0
	q.Assist = false
	q.Migrating = false
	q.BackupTokens = 0
	w.r.markRecovered(q)
	w.submit(q)
}

// sortedIDs returns a map's keys ascending — deterministic recovery order.
func sortedIDs[V any](m map[uint64]V) []uint64 {
	ids := make([]uint64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Ablation helpers so benchmarks read naturally.

// RunWindServeNoSplit runs the WindServe-no-split ablation (Fig. 13a).
func RunWindServeNoSplit(cfg Config, reqs []workload.Request) (*Result, error) {
	cfg.Wind.DisableSBD = true
	return RunWindServe(cfg, reqs)
}

// RunWindServeNoResched runs the WindServe-no-resche ablation (Fig. 13b).
func RunWindServeNoResched(cfg Config, reqs []workload.Request) (*Result, error) {
	cfg.Wind.DisableResched = true
	return RunWindServe(cfg, reqs)
}
