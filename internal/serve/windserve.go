package serve

import (
	"fmt"

	"windserve/internal/engine"
	"windserve/internal/sched"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/workload"
)

// RunWindServe simulates the paper's system: phase disaggregation plus
//
//   - a Global Scheduler whose Profiler predicts iteration times from
//     offline regression (eqs. 1–2) and whose Coordinator runs Dynamic
//     Prefill Dispatch (Algorithm 1) on every arrival and Dynamic
//     Rescheduling on decode KV pressure;
//   - asynchronous KV transfer overlapped with prefill computation;
//   - stall-free rescheduling — migrating decode jobs keep decoding while
//     their KV copies, pausing only for a bounded final tail;
//   - proactive KV backups of long-context requests in prefill instances'
//     spare memory, shrinking later migrations to a delta;
//   - stream-based disaggregation in decode instances, running dispatched
//     prefills in a second stream.
//
// With multiple instances the Global Scheduler also load-balances:
// arrivals go to the least-loaded prefill instance, transfers and
// dispatches target the decode instance with the most free KV, and
// migrations pick the prefill instance with the most spare blocks.
// The ablations of §5.4 are flags in Config.Wind.
func RunWindServe(cfg Config, reqs []workload.Request) (*Result, error) {
	r := newRunner(cfg)
	cfg = r.cfg

	w := &windState{
		r:              r,
		cfg:            cfg,
		async:          make(map[uint64]*asyncXfer),
		migrations:     make(map[uint64]*migration),
		backupInFlight: make(map[uint64]bool),
		backupAt:       make(map[uint64]int),
	}
	d, err := newPD(r, cfg, pdHooks{
		onPrefillStart:     w.maybeStartAsyncTransfer,
		transfer:           w.finishPrefillTransfer,
		onDecodeIterEnd:    w.onDecodeIterEnd,
		onComplete:         w.onComplete,
		decodeSBD:          !cfg.Wind.DisableSBD,
		decodeAllowPrefill: cfg.Wind.DisableSBD,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: planning WindServe: %w", err)
	}
	w.d = d

	prof, err := sched.Profile(d.prefills[0].CM(), nil)
	if err != nil {
		return nil, fmt.Errorf("serve: profiling: %w", err)
	}
	budget := sched.AssistBudget(d.decodes[0].CM(), cfg.Wind.RefDecodeBatch, cfg.SLO.TPOT)
	dkv := d.decodes[0].KV()
	w.coord = &sched.Coordinator{
		Prof:           prof,
		Thrd:           sim.Duration(cfg.Wind.ThresholdFrac * cfg.SLO.TTFT.Seconds()),
		BudgetTokens:   budget,
		KVSafetyTokens: int(cfg.Wind.KVSafetyFrac * float64(dkv.TotalBlocks()*dkv.BlockSize())),
	}

	r.scheduleArrivals(reqs, w.submit)
	res := r.run(reqs, w.systemName())
	d.finalize(res)
	res.Dispatched = w.dispatched
	res.Rescheduled = w.rescheduled
	res.Backups = w.backups
	return res, nil
}

type windState struct {
	r     *runner
	cfg   Config
	d     *pd
	coord *sched.Coordinator

	async          map[uint64]*asyncXfer
	migrations     map[uint64]*migration
	backupInFlight map[uint64]bool
	backupAt       map[uint64]int // request → prefill instance holding its backup

	dispatched  int
	rescheduled int
	backups     int
}

func (w *windState) systemName() string {
	switch {
	case w.cfg.Wind.DisableSBD:
		return "WindServe-no-split"
	case w.cfg.Wind.DisableResched:
		return "WindServe-no-resche"
	case w.cfg.Wind.DisableDispatch:
		return "WindServe-no-dispatch"
	case w.cfg.Wind.DisableAsyncTransfer:
		return "WindServe-no-async"
	default:
		return "WindServe"
	}
}

// leastLoadedPrefillIdx is the dispatch-view prefill target.
func (w *windState) leastLoadedPrefillIdx() int {
	best := 0
	for i := 1; i < len(w.d.prefills); i++ {
		if w.d.prefills[i].QueuedPrefillTokens() < w.d.prefills[best].QueuedPrefillTokens() {
			best = i
		}
	}
	return best
}

// freestPrefillIdx is the migration/backup target: most free KV tokens.
func (w *windState) freestPrefillIdx() int {
	best := 0
	for i := 1; i < len(w.d.prefills); i++ {
		if w.d.prefills[i].FreeKVTokens() > w.d.prefills[best].FreeKVTokens() {
			best = i
		}
	}
	return best
}

// submit routes an arrival through Dynamic Prefill Dispatch (Algorithm 1).
func (w *windState) submit(q *engine.Req) {
	pi := w.leastLoadedPrefillIdx()
	if !w.cfg.Wind.DisableDispatch {
		dj := w.d.pickDecode()
		dec := w.d.decodes[dj]
		in := sched.DispatchInput{
			NewPromptTokens:      q.W.PromptTokens,
			QueuedPrefillTokens:  w.d.prefills[pi].QueuedPrefillTokens(),
			PrefillBusyRemaining: w.d.prefills[pi].BusyRemaining(),
			DecodeFreeKVTokens:   dec.FreeKVTokens(),
			AssistInFlightTokens: dec.AssistPendingTokens() + dec.QueuedPrefillTokens(),
		}
		decision := w.coord.DecideDispatch(in)
		if decision.ToDecode && dec.KV().Allocate(q.KVID(), q.W.PromptTokens+1) == nil {
			w.dispatched++
			w.d.decodeAt[q.W.ID] = dj
			now := w.r.s.Now()
			w.cfg.Tracer.Add("scheduler", trace.KindDispatch, now, now,
				fmt.Sprintf("req%d→decode-%d pred=%v", q.W.ID, dj, decision.PredictedTTFT))
			dec.EnqueueAssist(q)
			return
		}
	}
	w.d.prefillAt[q.W.ID] = pi
	w.d.prefills[pi].EnqueuePrefill(q)
}

// asyncXfer tracks a transfer overlapped with prefill: the request may
// only start decoding when both the prefill and the copy have finished.
type asyncXfer struct {
	xferDone    bool
	prefillDone bool
	decodeIdx   int
}

// maybeStartAsyncTransfer begins streaming a request's KV to a decode
// instance as its prefill starts (layer-by-layer in the real system; here
// the copy and the compute occupy their resources concurrently and the
// request proceeds at whichever finishes last).
func (w *windState) maybeStartAsyncTransfer(q *engine.Req) {
	if w.cfg.Wind.DisableAsyncTransfer || q.Assist {
		return
	}
	dj := w.d.pickDecode()
	if w.d.decodes[dj].KV().Allocate(q.KVID(), q.W.PromptTokens+1) != nil {
		return // no decode blocks: fall back to the serial path at prefill end
	}
	ax := &asyncXfer{decodeIdx: dj}
	w.async[q.W.ID] = ax
	w.d.decodeAt[q.W.ID] = dj
	w.d.asyncXfers++
	pi := w.d.prefillIdx(q)
	start := w.r.s.Now()
	w.d.p2d[pi][dj].Transfer(w.d.kvBytes(q.W.PromptTokens), func() {
		w.cfg.Tracer.Add(fmt.Sprintf("link p%d-d%d", pi, dj), trace.KindKVTransfer, start, w.r.s.Now(),
			fmt.Sprintf("req%d async %d tokens", q.W.ID, q.W.PromptTokens))
		ax.xferDone = true
		w.maybeFinishAsync(q, ax)
	})
}

// finishPrefillTransfer is the pd transfer hook: async requests complete
// their handoff here; others return false and take the serial path.
func (w *windState) finishPrefillTransfer(q *engine.Req) bool {
	ax, ok := w.async[q.W.ID]
	if !ok {
		return false
	}
	ax.prefillDone = true
	w.maybeFinishAsync(q, ax)
	return true
}

func (w *windState) maybeFinishAsync(q *engine.Req, ax *asyncXfer) {
	if !ax.xferDone || !ax.prefillDone {
		return
	}
	delete(w.async, q.W.ID)
	w.d.prefills[w.d.prefillIdx(q)].ReleaseKV(q)
	w.d.decodes[ax.decodeIdx].AdmitDecode(q)
}

// onDecodeIterEnd runs the Global Scheduler's memory-pressure logic after
// every pass of decode instance j: Dynamic Rescheduling on low watermark,
// proactive backups when the imbalance favors them.
func (w *windState) onDecodeIterEnd(j int) {
	dec := w.d.decodes[j]
	dkv := dec.KV()
	freeFrac := 1 - dkv.Utilization()
	if !w.cfg.Wind.DisableResched {
		pol := w.cfg.Wind.Resched
		if pol.ShouldTrigger(freeFrac) && len(w.migrations) < pol.MaxConcurrentMigrations {
			capTokens := dkv.TotalBlocks() * dkv.BlockSize()
			need := int((pol.TargetFree - freeFrac) * float64(capTokens))
			victims := pol.PickVictims(dec.Running(), need, pol.MaxConcurrentMigrations-len(w.migrations))
			for _, v := range victims {
				w.startMigration(v, j)
			}
		}
	}
	if !w.cfg.Wind.DisableBackup {
		w.maybeBackup(j, freeFrac)
	}
}

// --- Stall-free rescheduling (paper §3.3) ------------------------------

type migration struct {
	q *engine.Req
	// clean counts context tokens already resident at the target.
	clean int
	// src decode instance and dst prefill instance.
	src, dst int
}

// startMigration begins moving a long-context decode job from decode
// instance src to a prefill instance without stopping its decoding.
func (w *windState) startMigration(q *engine.Req, src int) {
	id := q.KVID()
	clean := 0
	dst := w.freestPrefillIdx()
	if bi, ok := w.backupAt[q.W.ID]; ok && q.BackupTokens > 0 {
		pkv := w.d.prefills[bi].KV()
		if pkv.Has(id) && pkv.IsBackup(id) && pkv.PromoteBackup(id) == nil {
			// A backup already holds the first BackupTokens of context at
			// instance bi; only the delta must move there.
			dst = bi
			clean = q.BackupTokens
			delete(w.backupAt, q.W.ID)
		}
	}
	if clean == 0 {
		if w.d.prefills[dst].KV().Allocate(id, q.Ctx()+1) != nil {
			return // prefill memory too tight; try again on a later trigger
		}
	}
	q.Migrating = true
	w.rescheduled++
	m := &migration{q: q, clean: clean, src: src, dst: dst}
	w.migrations[q.W.ID] = m
	now := w.r.s.Now()
	w.cfg.Tracer.Add("scheduler", trace.KindReschedule, now, now,
		fmt.Sprintf("req%d d%d→p%d ctx=%d backup=%d", q.W.ID, src, dst, q.Ctx(), clean))
	w.migrationRound(m)
}

// migrationRound copies the currently-dirty span while decoding continues;
// each round the dirty span shrinks toward the drain threshold.
func (w *windState) migrationRound(m *migration) {
	if w.abortMigrationIfGone(m) {
		return
	}
	dirty := m.q.Ctx() - m.clean
	if dirty <= w.cfg.Wind.Resched.DrainThresholdTokens {
		w.drainMigration(m)
		return
	}
	target := m.q.Ctx()
	start := w.r.s.Now()
	w.d.d2p[m.src][m.dst].Transfer(w.d.kvBytes(dirty), func() {
		w.cfg.Tracer.Add(fmt.Sprintf("link d%d-p%d", m.src, m.dst), trace.KindMigration, start, w.r.s.Now(),
			fmt.Sprintf("req%d copy %d tokens", m.q.W.ID, dirty))
		m.clean = target
		w.migrationRound(m)
	})
}

// drainMigration pauses the request's decoding, ships the bounded tail,
// and resumes decoding on the destination prefill instance.
func (w *windState) drainMigration(m *migration) {
	if w.abortMigrationIfGone(m) {
		return
	}
	q := m.q
	dec := w.d.decodes[m.src]
	dec.RemoveRunning(q)
	q.Phase = engine.PhaseDraining
	dirty := q.Ctx() - m.clean
	start := w.r.s.Now()
	w.d.d2p[m.src][m.dst].Transfer(w.d.kvBytes(dirty), func() {
		w.cfg.Tracer.Add(fmt.Sprintf("link d%d-p%d", m.src, m.dst), trace.KindMigration, start, w.r.s.Now(),
			fmt.Sprintf("req%d drain %d tokens", q.W.ID, dirty))
		delete(w.migrations, q.W.ID)
		q.Migrating = false
		if q.Phase == engine.PhaseDone {
			// Completed in the same pass that drained it.
			w.releaseForeign(q)
			return
		}
		if dec.KV().Has(q.KVID()) {
			_ = dec.KV().Release(q.KVID())
			dec.Kick()
		}
		delete(w.d.decodeAt, q.W.ID)
		// Catch up the destination allocation with tokens generated during
		// the copy; the engine's own growth path recovers any shortfall.
		_ = w.d.prefills[m.dst].KV().Grow(q.KVID(), q.Ctx()+1)
		q.BackupTokens = 0
		w.d.prefillAt[q.W.ID] = m.dst
		w.d.prefills[m.dst].InsertRunning(q)
	})
}

// abortMigrationIfGone cancels a migration whose request completed or got
// preempted mid-copy, releasing the destination allocation.
func (w *windState) abortMigrationIfGone(m *migration) bool {
	q := m.q
	if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseSwapped || q.Phase == engine.PhaseWaiting {
		delete(w.migrations, q.W.ID)
		q.Migrating = false
		pkv := w.d.prefills[m.dst].KV()
		if pkv.Has(q.KVID()) {
			_ = pkv.Release(q.KVID())
			w.d.prefills[m.dst].Kick()
		}
		return true
	}
	return false
}

// --- Proactive KV backups (paper §3.3) ---------------------------------

// maybeBackup copies a long request's KV from decode instance j to a
// prefill instance's spare blocks when the decode side is filling and the
// prefill side is not: a later migration then only moves the delta.
func (w *windState) maybeBackup(j int, decodeFreeFrac float64) {
	pi := w.freestPrefillIdx()
	if w.d.d2p[j][pi].Busy() {
		return // keep backups off the critical path of migrations
	}
	pkv := w.d.prefills[pi].KV()
	pol := w.cfg.Wind.Backup
	prefillFree := 1 - pkv.Utilization()
	if !pol.ShouldBackup(decodeFreeFrac, prefillFree) {
		return
	}
	var cand *engine.Req
	for _, q := range w.d.decodes[j].Running() {
		if w.backupInFlight[q.W.ID] {
			continue
		}
		if q.Migrating || q.BackupTokens > 0 || q.Ctx() < pol.MinContextTokens {
			continue
		}
		if cand == nil || q.Ctx() > cand.Ctx() {
			cand = q
		}
	}
	if cand == nil {
		return
	}
	snap := cand.Ctx()
	if pkv.AllocateBackup(cand.KVID(), snap) != nil {
		return
	}
	w.backupInFlight[cand.W.ID] = true
	start := w.r.s.Now()
	w.d.d2p[j][pi].Transfer(w.d.kvBytes(snap), func() {
		delete(w.backupInFlight, cand.W.ID)
		w.cfg.Tracer.Add(fmt.Sprintf("link d%d-p%d", j, pi), trace.KindKVTransfer, start, w.r.s.Now(),
			fmt.Sprintf("req%d backup %d tokens", cand.W.ID, snap))
		if cand.Phase == engine.PhaseDone || !pkv.Has(cand.KVID()) || !pkv.IsBackup(cand.KVID()) {
			return // finished or promoted while copying
		}
		cand.BackupTokens = snap
		w.backupAt[cand.W.ID] = pi
		w.backups++
	})
}

// onComplete cleans up cross-instance state for a finished request.
func (w *windState) onComplete(q *engine.Req) {
	w.releaseForeign(q)
}

// releaseForeign drops any allocation the request holds on instances it
// did NOT complete on (backups, stale migration targets, async copies).
func (w *windState) releaseForeign(q *engine.Req) {
	id := q.KVID()
	for _, ins := range w.d.prefills {
		if ins.KV().Has(id) {
			_ = ins.KV().Release(id)
			ins.Kick()
		}
	}
	for _, ins := range w.d.decodes {
		if ins.KV().Has(id) {
			_ = ins.KV().Release(id)
			ins.Kick()
		}
	}
	delete(w.async, q.W.ID)
	delete(w.backupAt, q.W.ID)
}

// Ablation helpers so benchmarks read naturally.

// RunWindServeNoSplit runs the WindServe-no-split ablation (Fig. 13a).
func RunWindServeNoSplit(cfg Config, reqs []workload.Request) (*Result, error) {
	cfg.Wind.DisableSBD = true
	return RunWindServe(cfg, reqs)
}

// RunWindServeNoResched runs the WindServe-no-resche ablation (Fig. 13b).
func RunWindServeNoResched(cfg Config, reqs []workload.Request) (*Result, error) {
	cfg.Wind.DisableResched = true
	return RunWindServe(cfg, reqs)
}
