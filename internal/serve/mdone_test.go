package serve

import (
	"math"
	"testing"

	"windserve/internal/workload"
)

// TestQueueMatchesMD1 validates the simulator against queueing theory:
// with fixed-size prompts, Poisson arrivals, one prompt per prefill pass,
// and a decode side too fast to ever backpressure, the prefill instance is
// an M/D/1 queue, whose mean wait is Wq = ρ·S / (2(1−ρ)). The measured
// mean prefill queue delay must track that closed form.
func TestQueueMatchesMD1(t *testing.T) {
	cfg := cfg13B(t)
	const prompt = 512
	cfg.MaxPrefillTokens = prompt // exactly one prompt per pass
	// Measure the deterministic service time S of one pass by serving a
	// single request far from any queueing.
	probe := workload.NewGenerator(workload.Fixed(prompt, 1, 2048), workload.UniformArrivals{Rate: 0.01}, 1)
	pres, err := RunDistServe(cfg, probe.Generate(1))
	if err != nil {
		t.Fatal(err)
	}
	S := pres.Records[0].TTFT().Seconds() // no queue → pure service time

	for _, rho := range []float64{0.3, 0.5, 0.7} {
		lambda := rho / S
		g := workload.NewGenerator(workload.Fixed(prompt, 1, 2048), workload.PoissonArrivals{Rate: lambda}, 7)
		reqs := g.Generate(4000)
		res, err := RunDistServe(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("rho=%.1f: %d unfinished", rho, res.Unfinished)
		}
		want := rho * S / (2 * (1 - rho))
		got := res.Summary.PrefillQueueMean.Seconds()
		// Monte-Carlo noise plus the simulator's 0-delay kick granularity:
		// accept 20% relative error (plus a small absolute floor at low ρ).
		tol := math.Max(0.20*want, 0.1*S)
		if math.Abs(got-want) > tol {
			t.Errorf("rho=%.1f: mean queue delay = %.1f ms, M/D/1 predicts %.1f ms (S=%.1f ms)",
				rho, got*1e3, want*1e3, S*1e3)
		}
	}
}
