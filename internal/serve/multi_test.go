package serve

import (
	"testing"

	"windserve/internal/perf"
	"windserve/internal/workload"
)

// multiCfg is a 2-prefill + 2-decode OPT-13B deployment on 8 GPUs.
func multiCfg(t *testing.T) Config {
	t.Helper()
	cfg := cfg13B(t)
	cfg.NumPrefill = 2
	cfg.NumDecode = 2
	return cfg
}

func TestMultiInstanceDrainsAllSystems(t *testing.T) {
	cfg := multiCfg(t)
	if cfg.TotalGPUs() != 8 {
		t.Fatalf("TotalGPUs = %d", cfg.TotalGPUs())
	}
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 3 * 8}, 42)
	reqs := g.Generate(400)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Unfinished != 0 {
			t.Errorf("%s: %d unfinished", name, res.Unfinished)
		}
		if len(res.Records) != 400 {
			t.Errorf("%s: %d records", name, len(res.Records))
		}
	}
}

// The linear scaling rule (paper §2.2): doubling instances at the same
// per-GPU rate should keep per-GPU service quality roughly constant.
func TestLinearScalingAcrossInstances(t *testing.T) {
	single := cfg13B(t)
	double := multiCfg(t)
	const rate = 3.0
	mk := func(cfg Config, seed int64) []workload.Request {
		g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate * float64(cfg.TotalGPUs())}, seed)
		return g.Generate(500)
	}
	s, err := RunWindServe(single, mk(single, 42))
	if err != nil {
		t.Fatal(err)
	}
	d, err := RunWindServe(double, mk(double, 42))
	if err != nil {
		t.Fatal(err)
	}
	// Attainment within 12 points; the doubled deployment must not
	// collapse (routing works) nor dramatically exceed (no free lunch).
	if diff := d.Summary.Attainment - s.Summary.Attainment; diff < -0.12 || diff > 0.12 {
		t.Errorf("attainment drifted across scales: 1x=%.2f 2x=%.2f", s.Summary.Attainment, d.Summary.Attainment)
	}
	if d.Dispatched == 0 {
		t.Error("multi-instance WindServe never dispatched")
	}
}

func TestMultiInstanceWindServeMechanisms(t *testing.T) {
	// Starved decode instances: migrations must flow in the multi-instance
	// wiring too, picking real source/destination pairs.
	cfg := multiCfg(t)
	cfg.DecodePlace = perf.Placement{TP: 1, PP: 1}
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 3 * float64(cfg.TotalGPUs())}, 42)
	reqs := g.Generate(500)
	res, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	if res.Rescheduled == 0 {
		t.Error("no migrations with starved multi decode instances")
	}
	if res.Dispatched == 0 {
		t.Error("no dispatch with multi instances")
	}
}

func TestMultiInstanceDistServeRoundRobins(t *testing.T) {
	cfg := multiCfg(t)
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 2 * 8}, 9)
	reqs := g.Generate(200)
	res, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	// Both decode instances must have seen KV traffic: peak usage
	// aggregated over instances exceeds one instance's plausible share.
	if res.DecodeKV.PeakBlocks == 0 {
		t.Error("no decode KV usage recorded")
	}
	if res.TransferGB <= 0 {
		t.Error("no transfers")
	}
}

func TestMultiInstanceRejectsOversizedDeployment(t *testing.T) {
	cfg := cfg13B(t)
	cfg.NumPrefill = 3
	cfg.NumDecode = 2 // 10 GPUs on an 8-GPU testbed
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 8}, 1)
	if _, err := RunDistServe(cfg, g.Generate(10)); err == nil {
		t.Fatal("oversubscribed deployment accepted")
	}
}
