package serve

import (
	"testing"

	"windserve/internal/engine"
	"windserve/internal/sched"
	"windserve/internal/workload"
)

// newWindStateForTest builds a windState over a real pd without running a
// workload, for unit-testing the migration state machine's edges.
func newWindStateForTest(t *testing.T) *windState {
	t.Helper()
	r, err := newRunner(cfg13B(t))
	if err != nil {
		t.Fatal(err)
	}
	d, err := newPD(r, r.cfg, pdHooks{})
	if err != nil {
		t.Fatal(err)
	}
	prof, err := sched.Profile(d.prefills[0].CM(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return &windState{
		r: r, cfg: r.cfg, d: d,
		coord:          &sched.Coordinator{Prof: prof, Thrd: r.cfg.SLO.TTFT},
		async:          make(map[uint64]*asyncXfer),
		migrations:     make(map[uint64]*migration),
		backupInFlight: make(map[uint64]bool),
		backupAt:       make(map[uint64]int),
	}
}

func TestAbortMigrationReleasesDestination(t *testing.T) {
	for _, phase := range []engine.Phase{engine.PhaseDone, engine.PhaseSwapped, engine.PhaseWaiting} {
		w := newWindStateForTest(t)
		q := engine.NewReq(workload.Request{ID: 7, PromptTokens: 500, OutputTokens: 50})
		q.PrefillDone, q.Generated = 500, 10
		q.Migrating = true
		q.Phase = phase
		pkv := w.d.prefills[0].KV()
		if err := pkv.Allocate(q.KVID(), q.Ctx()+1); err != nil {
			t.Fatal(err)
		}
		m := &migration{q: q, src: 0, dst: 0}
		w.migrations[q.W.ID] = m
		if !w.abortMigrationIfGone(m) {
			t.Fatalf("phase %v: abort not taken", phase)
		}
		if q.Migrating {
			t.Errorf("phase %v: Migrating flag not cleared", phase)
		}
		if len(w.migrations) != 0 {
			t.Errorf("phase %v: migration entry not removed", phase)
		}
		if pkv.Has(q.KVID()) {
			t.Errorf("phase %v: destination allocation leaked", phase)
		}
	}
}

func TestAbortMigrationNotTakenWhileDecoding(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 8, PromptTokens: 500, OutputTokens: 50})
	q.PrefillDone, q.Generated = 500, 10
	q.Phase = engine.PhaseDecoding
	m := &migration{q: q, src: 0, dst: 0}
	w.migrations[q.W.ID] = m
	if w.abortMigrationIfGone(m) {
		t.Fatal("abort taken for a live decoding request")
	}
	if len(w.migrations) != 1 {
		t.Fatal("live migration dropped")
	}
}

func TestStartMigrationFailsGracefullyWithoutPrefillKV(t *testing.T) {
	w := newWindStateForTest(t)
	// Fill the prefill instance's KV so the destination allocation fails.
	pkv := w.d.prefills[0].KV()
	if err := pkv.Allocate(999, pkv.FreeTokens()); err != nil {
		t.Fatal(err)
	}
	q := engine.NewReq(workload.Request{ID: 9, PromptTokens: 1000, OutputTokens: 50})
	q.PrefillDone, q.Generated = 1000, 5
	q.Phase = engine.PhaseDecoding
	w.startMigration(q, 0, 0.05)
	if q.Migrating || len(w.migrations) != 0 || w.rescheduled != 0 {
		t.Error("migration should not start without destination blocks")
	}
}

func TestStartMigrationUsesBackupDelta(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 10, PromptTokens: 1000, OutputTokens: 200})
	q.PrefillDone, q.Generated = 1000, 100
	q.Phase = engine.PhaseDecoding
	// The engine will decode it to completion and report to the recorder.
	w.r.rec.Arrive(q.W.ID, q.W.PromptTokens, q.W.OutputTokens, 0)
	w.r.rec.PrefillStart(q.W.ID, 0)
	w.r.rec.FirstToken(q.W.ID, 0)
	q.BackupTokens = 1050
	w.backupAt[q.W.ID] = 0
	pkv := w.d.prefills[0].KV()
	if err := pkv.AllocateBackup(q.KVID(), 1050); err != nil {
		t.Fatal(err)
	}
	// Decode-side allocation so the drain path can release it.
	if err := w.d.decodes[0].KV().Allocate(q.KVID(), q.Ctx()+1); err != nil {
		t.Fatal(err)
	}
	w.d.decodes[0].InsertRunning(q)
	w.startMigration(q, 0, 0.05)
	if !q.Migrating {
		t.Fatal("migration did not start")
	}
	m := w.migrations[q.W.ID]
	if m == nil || m.clean != 1050 {
		t.Fatalf("migration clean = %+v, want backup-seeded 1050", m)
	}
	if pkv.IsBackup(q.KVID()) {
		t.Error("backup not promoted")
	}
	// Let the copy rounds, the drain, and the remaining decoding (now on
	// the prefill instance) run to completion.
	w.r.s.RunAll()
	if q.Migrating {
		t.Error("migration never drained")
	}
	if !q.Finished() {
		t.Errorf("request did not finish post-migration: %v", q)
	}
	if w.d.decodes[0].KV().Has(q.KVID()) || pkv.Has(q.KVID()) {
		t.Error("KV leaked after post-migration completion")
	}
	// Completion cleanup removes routing entries.
	if len(w.d.decodeAt) != 0 {
		t.Error("decode routing table not cleaned")
	}
}

// TestMigrationAbortedWhenRequestCompletesMidRound: the request finishes
// decoding while a copy round is still on the wire. The next round must
// observe the terminal phase, cancel the migration, and release the
// destination allocation instead of copying a dead request's KV.
func TestMigrationAbortedWhenRequestCompletesMidRound(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 11, PromptTokens: 4000, OutputTokens: 200})
	q.PrefillDone, q.Generated = 4000, 100
	q.Phase = engine.PhaseDecoding
	w.startMigration(q, 0, 0.05) // dirty span ≫ drain threshold → copy round in flight
	if !q.Migrating {
		t.Fatal("migration did not start")
	}
	pkv := w.d.prefills[w.migrations[q.W.ID].dst].KV()
	if !pkv.Has(q.KVID()) {
		t.Fatal("destination not allocated")
	}
	// The request completes while the round's transfer is still in flight.
	q.Phase = engine.PhaseDone
	w.r.s.RunAll()
	if q.Migrating {
		t.Error("Migrating flag survived completion")
	}
	if len(w.migrations) != 0 {
		t.Error("migration entry survived completion")
	}
	if pkv.Has(q.KVID()) {
		t.Error("destination allocation leaked after mid-round completion")
	}
}

// TestDrainMigrationRacesDecodeKVEviction: while the bounded tail copies,
// the decode side reclaims the request's blocks (exhaustion-driven
// eviction). The drain callback must not double-release, and the request
// must still resume decoding on the destination.
func TestDrainMigrationRacesDecodeKVEviction(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 12, PromptTokens: 1000, OutputTokens: 200})
	q.PrefillDone, q.Generated = 1000, 100
	q.Phase = engine.PhaseDecoding
	w.r.rec.Arrive(q.W.ID, q.W.PromptTokens, q.W.OutputTokens, 0)
	w.r.rec.PrefillStart(q.W.ID, 0)
	w.r.rec.FirstToken(q.W.ID, 0)
	// Backup-seeded so the dirty span is below the drain threshold and the
	// migration goes straight to the drain.
	q.BackupTokens = 1050
	w.backupAt[q.W.ID] = 0
	if err := w.d.prefills[0].KV().AllocateBackup(q.KVID(), 1050); err != nil {
		t.Fatal(err)
	}
	dkv := w.d.decodes[0].KV()
	if err := dkv.Allocate(q.KVID(), q.Ctx()+1); err != nil {
		t.Fatal(err)
	}
	w.d.decodes[0].InsertRunning(q)
	w.startMigration(q, 0, 0.05)
	if q.Phase != engine.PhaseDraining {
		t.Fatalf("phase %v, want immediate drain", q.Phase)
	}
	// Decode-side blocks vanish while the tail is on the wire.
	if err := dkv.Release(q.KVID()); err != nil {
		t.Fatal(err)
	}
	w.r.s.RunAll()
	if q.Migrating || len(w.migrations) != 0 {
		t.Error("migration never resolved")
	}
	if !q.Finished() {
		t.Errorf("request did not resume on the destination: %v", q)
	}
	if w.d.prefills[0].KV().Has(q.KVID()) || dkv.Has(q.KVID()) {
		t.Error("KV leaked after drain raced eviction")
	}
}
