package serve

import (
	"testing"

	"windserve/internal/engine"
	"windserve/internal/workload"
)

// newWindStateForTest builds a windState over a real pd without running a
// workload, for unit-testing the migration state machine's edges.
func newWindStateForTest(t *testing.T) *windState {
	t.Helper()
	r := newRunner(cfg13B(t))
	d, err := newPD(r, r.cfg, pdHooks{})
	if err != nil {
		t.Fatal(err)
	}
	return &windState{
		r: r, cfg: r.cfg, d: d,
		async:          make(map[uint64]*asyncXfer),
		migrations:     make(map[uint64]*migration),
		backupInFlight: make(map[uint64]bool),
		backupAt:       make(map[uint64]int),
	}
}

func TestAbortMigrationReleasesDestination(t *testing.T) {
	for _, phase := range []engine.Phase{engine.PhaseDone, engine.PhaseSwapped, engine.PhaseWaiting} {
		w := newWindStateForTest(t)
		q := engine.NewReq(workload.Request{ID: 7, PromptTokens: 500, OutputTokens: 50})
		q.PrefillDone, q.Generated = 500, 10
		q.Migrating = true
		q.Phase = phase
		pkv := w.d.prefills[0].KV()
		if err := pkv.Allocate(q.KVID(), q.Ctx()+1); err != nil {
			t.Fatal(err)
		}
		m := &migration{q: q, src: 0, dst: 0}
		w.migrations[q.W.ID] = m
		if !w.abortMigrationIfGone(m) {
			t.Fatalf("phase %v: abort not taken", phase)
		}
		if q.Migrating {
			t.Errorf("phase %v: Migrating flag not cleared", phase)
		}
		if len(w.migrations) != 0 {
			t.Errorf("phase %v: migration entry not removed", phase)
		}
		if pkv.Has(q.KVID()) {
			t.Errorf("phase %v: destination allocation leaked", phase)
		}
	}
}

func TestAbortMigrationNotTakenWhileDecoding(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 8, PromptTokens: 500, OutputTokens: 50})
	q.PrefillDone, q.Generated = 500, 10
	q.Phase = engine.PhaseDecoding
	m := &migration{q: q, src: 0, dst: 0}
	w.migrations[q.W.ID] = m
	if w.abortMigrationIfGone(m) {
		t.Fatal("abort taken for a live decoding request")
	}
	if len(w.migrations) != 1 {
		t.Fatal("live migration dropped")
	}
}

func TestStartMigrationFailsGracefullyWithoutPrefillKV(t *testing.T) {
	w := newWindStateForTest(t)
	// Fill the prefill instance's KV so the destination allocation fails.
	pkv := w.d.prefills[0].KV()
	if err := pkv.Allocate(999, pkv.FreeTokens()); err != nil {
		t.Fatal(err)
	}
	q := engine.NewReq(workload.Request{ID: 9, PromptTokens: 1000, OutputTokens: 50})
	q.PrefillDone, q.Generated = 1000, 5
	q.Phase = engine.PhaseDecoding
	w.startMigration(q, 0)
	if q.Migrating || len(w.migrations) != 0 || w.rescheduled != 0 {
		t.Error("migration should not start without destination blocks")
	}
}

func TestStartMigrationUsesBackupDelta(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 10, PromptTokens: 1000, OutputTokens: 200})
	q.PrefillDone, q.Generated = 1000, 100
	q.Phase = engine.PhaseDecoding
	// The engine will decode it to completion and report to the recorder.
	w.r.rec.Arrive(q.W.ID, q.W.PromptTokens, q.W.OutputTokens, 0)
	w.r.rec.PrefillStart(q.W.ID, 0)
	w.r.rec.FirstToken(q.W.ID, 0)
	q.BackupTokens = 1050
	w.backupAt[q.W.ID] = 0
	pkv := w.d.prefills[0].KV()
	if err := pkv.AllocateBackup(q.KVID(), 1050); err != nil {
		t.Fatal(err)
	}
	// Decode-side allocation so the drain path can release it.
	if err := w.d.decodes[0].KV().Allocate(q.KVID(), q.Ctx()+1); err != nil {
		t.Fatal(err)
	}
	w.d.decodes[0].InsertRunning(q)
	w.startMigration(q, 0)
	if !q.Migrating {
		t.Fatal("migration did not start")
	}
	m := w.migrations[q.W.ID]
	if m == nil || m.clean != 1050 {
		t.Fatalf("migration clean = %+v, want backup-seeded 1050", m)
	}
	if pkv.IsBackup(q.KVID()) {
		t.Error("backup not promoted")
	}
	// Let the copy rounds, the drain, and the remaining decoding (now on
	// the prefill instance) run to completion.
	w.r.s.RunAll()
	if q.Migrating {
		t.Error("migration never drained")
	}
	if !q.Finished() {
		t.Errorf("request did not finish post-migration: %v", q)
	}
	if w.d.decodes[0].KV().Has(q.KVID()) || pkv.Has(q.KVID()) {
		t.Error("KV leaked after post-migration completion")
	}
	// Completion cleanup removes routing entries.
	if len(w.d.decodeAt) != 0 {
		t.Error("decode routing table not cleaned")
	}
}
