package serve

import (
	"testing"

	"windserve/internal/sim"
	"windserve/internal/workload"
)

// elasticPD builds a 2-prefill/2-decode cluster wired for role flips and
// returns the runner to drive it.
func elasticPD(t *testing.T) (*runner, *pd) {
	t.Helper()
	cfg := cfg13B(t)
	cfg.Elastic = true
	cfg.NumPrefill = 2
	cfg.NumDecode = 2
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newPD(r, r.cfg, pdHooks{})
	if err != nil {
		t.Fatal(err)
	}
	r.queueDepth = d.queueDepth
	r.onAbort = d.abort
	return r, d
}

// burst builds n requests with the given shape arriving dt apart.
func burst(n, prompt, output int, dt sim.Duration) []workload.Request {
	reqs := make([]workload.Request, n)
	for i := range reqs {
		reqs[i] = workload.Request{
			ID: uint64(i + 1), Arrival: sim.Time(0).Add(sim.Duration(i) * dt),
			PromptTokens: prompt, OutputTokens: output,
		}
	}
	return reqs
}

// TestFlipToDecodeRequeuesQueuedPrefills floods the prefill queues, flips
// an acting prefill to decode mid-backlog, and requires the drained
// queue to re-route — and every request to still finish exactly once.
func TestFlipToDecodeRequeuesQueuedPrefills(t *testing.T) {
	r, d := elasticPD(t)
	var fr FlipResult
	r.s.At(sim.Time(0).Add(sim.Seconds(0.3)), func() { fr = d.flip(true) })
	r.scheduleStream(workload.NewSliceSource(burst(80, 1500, 8, sim.Seconds(0.002))), d.prefillRR)
	res := r.run("elastic-test")
	if !fr.OK || !fr.ToDecode {
		t.Fatalf("flip did not execute: %+v", fr)
	}
	if fr.Requeued == 0 {
		t.Fatalf("flip under a deep prefill backlog requeued nothing: %+v", fr)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished after flip", res.Unfinished)
	}
	if res.Summary.Requests != 80 {
		t.Fatalf("summarized %d of 80", res.Summary.Requests)
	}
	if res.LiveKVBlocks != 0 {
		t.Fatalf("KV leak after flip: %d blocks", res.LiveKVBlocks)
	}
}

// TestFlipToPrefillMigratesRunningStreams flips an acting decode away
// while its batch is mid-generation: the streams must migrate to the
// remaining decode and every request must still finish exactly once,
// with no KV left on either side.
func TestFlipToPrefillMigratesRunningStreams(t *testing.T) {
	r, d := elasticPD(t)
	var fr FlipResult
	r.s.At(sim.Time(0).Add(sim.Seconds(1.5)), func() { fr = d.flip(false) })
	r.scheduleStream(workload.NewSliceSource(burst(40, 200, 300, sim.Seconds(0.01))), d.prefillRR)
	res := r.run("elastic-test")
	if !fr.OK || fr.ToDecode {
		t.Fatalf("flip did not execute: %+v", fr)
	}
	if fr.Migrating == 0 {
		t.Fatalf("flip mid-decode migrated nothing: %+v", fr)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished after migration", res.Unfinished)
	}
	if res.Summary.Requests != 40 {
		t.Fatalf("summarized %d of 40", res.Summary.Requests)
	}
	if res.LiveKVBlocks != 0 {
		t.Fatalf("KV leak after migration: %d blocks", res.LiveKVBlocks)
	}
}

// TestFlipRoundTrip bends the cluster both ways and back under load: to
// 1P/3D, back to 2P/2D, then to 3P/1D. Selection must unflip first
// (restoring the static layout before flipping a home instance), and the
// run must drain completely.
func TestFlipRoundTrip(t *testing.T) {
	r, d := elasticPD(t)
	var results []FlipResult
	flipAt := func(at float64, toDecode bool) {
		r.s.At(sim.Time(0).Add(sim.Seconds(at)), func() { results = append(results, d.flip(toDecode)) })
	}
	flipAt(0.5, true)  // 1P/3D: p-side home flips to decode
	flipAt(1.5, false) // back to 2P/2D: must unflip that same instance
	flipAt(2.5, false) // 3P/1D: a home decode flips to prefill
	r.scheduleStream(workload.NewSliceSource(burst(60, 800, 100, sim.Seconds(0.01))), d.prefillRR)
	res := r.run("elastic-test")
	if len(results) != 3 {
		t.Fatalf("expected 3 flips, got %d", len(results))
	}
	for i, fr := range results {
		if !fr.OK {
			t.Fatalf("flip %d failed: %+v", i, fr)
		}
	}
	if results[0].Instance != results[1].Instance {
		t.Fatalf("unflip-first violated: flip-to-decode took %s but flip-to-prefill took %s",
			results[0].Instance, results[1].Instance)
	}
	for i, m := range d.pFlipped {
		if m {
			t.Fatalf("prefill %d still flipped after round trip", i)
		}
	}
	if !d.dFlipped[0] && !d.dFlipped[1] {
		t.Fatal("no home decode acting as prefill after the final flip")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished after round trip", res.Unfinished)
	}
	if res.LiveKVBlocks != 0 {
		t.Fatalf("KV leak after round trip: %d blocks", res.LiveKVBlocks)
	}
}

// TestFlipFloorNeverEmptiesRole drains a role to one acting instance and
// requires further shrinking flips to refuse.
func TestFlipFloorNeverEmptiesRole(t *testing.T) {
	r, d := elasticPD(t)
	var frs [3]FlipResult
	r.s.At(sim.Time(0).Add(sim.Seconds(0.1)), func() {
		frs[0] = d.flip(true) // 1P/3D
		frs[1] = d.flip(true) // would empty prefill: must refuse
		frs[2] = d.flip(true)
	})
	r.scheduleStream(workload.NewSliceSource(burst(10, 400, 20, sim.Seconds(0.01))), d.prefillRR)
	res := r.run("elastic-test")
	if !frs[0].OK {
		t.Fatalf("first flip refused: %+v", frs[0])
	}
	if frs[1].OK || frs[2].OK {
		t.Fatalf("flip emptied the prefill role: %+v %+v", frs[1], frs[2])
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
}

// TestStaticPDRefusesFlip pins the gate: with Elastic off, flip is a
// structured no-op and the masks stay nil.
func TestStaticPDRefusesFlip(t *testing.T) {
	cfg := cfg13B(t)
	cfg.NumPrefill = 2
	cfg.NumDecode = 2
	r, err := newRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := newPD(r, r.cfg, pdHooks{})
	if err != nil {
		t.Fatal(err)
	}
	if fr := d.flip(true); fr.OK {
		t.Fatalf("static pd accepted a flip: %+v", fr)
	}
	if d.pFlipped != nil || d.dFlipped != nil || d.pp != nil || d.dd != nil {
		t.Fatal("static pd built elastic state")
	}
}

// TestElasticRejectedOutsideDistServe pins the config surface: WindServe
// and vLLM refuse Elastic rather than silently ignoring it.
func TestElasticRejectedOutsideDistServe(t *testing.T) {
	cfg := cfg13B(t)
	cfg.Elastic = true
	reqs := burst(2, 100, 10, sim.Seconds(0.1))
	if _, err := RunWindServe(cfg, reqs); err == nil {
		t.Fatal("WindServe accepted Elastic")
	}
	if _, err := RunVLLM(cfg, reqs); err == nil {
		t.Fatal("vLLM accepted Elastic")
	}
}
