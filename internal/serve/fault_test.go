package serve

import (
	"testing"

	"windserve/internal/engine"
	"windserve/internal/fault"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// mustPlan parses a fault spec or fails the test.
func mustPlan(t *testing.T, seed int64, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	p.Seed = seed
	return p
}

// checkConservation asserts the request-lifecycle partition: every
// submitted request is in exactly one terminal (or unfinished) state.
func checkConservation(t *testing.T, name string, res *Result, submitted int) {
	t.Helper()
	got := len(res.Records) + res.Aborted + res.Rejected + res.Unfinished
	if got != submitted {
		t.Fatalf("%s: %d completed + %d aborted + %d rejected + %d unfinished = %d, want %d submitted",
			name, len(res.Records), res.Aborted, res.Rejected, res.Unfinished, got, submitted)
	}
	seen := map[uint64]bool{}
	for _, r := range res.Records {
		if seen[r.ID] {
			t.Fatalf("%s: request %d completed twice", name, r.ID)
		}
		seen[r.ID] = true
	}
}

// TestFaultRunsAreDeterministic: the same trace under the same plan must
// produce bit-identical outcomes, twice, for every system.
func TestFaultRunsAreDeterministic(t *testing.T) {
	cfg := cfg13B(t)
	cfg.NumDecode = 2
	cfg.Faults = mustPlan(t, 7, "crash:d0@20; slow:p0@5x2+15; degrade@10x0.3+20; cancel@25x0.25")
	cfg.Shed = ShedPolicy{MaxQueueDepth: 64, TTFTDeadline: sim.Seconds(30)}
	reqs := trace13B(2, 120, 11)
	for name, run := range allSystems() {
		a, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(a.Records) != len(b.Records) || a.Aborted != b.Aborted ||
			a.Rejected != b.Rejected || a.Recovered != b.Recovered ||
			a.Unfinished != b.Unfinished || a.Elapsed != b.Elapsed {
			t.Fatalf("%s: runs diverged:\n  a: %v\n  b: %v", name, a, b)
		}
		for i := range a.Records {
			if a.Records[i].ID != b.Records[i].ID || a.Records[i].Completion != b.Records[i].Completion {
				t.Fatalf("%s: record %d diverged between identical runs", name, i)
			}
		}
	}
}

// TestDecodeCrashRecovered: a permanent mid-trace decode crash with a
// surviving peer. Every request must still reach a terminal state, the
// orphans must be recovered, and no KV may leak.
func TestDecodeCrashRecovered(t *testing.T) {
	cfg := cfg13B(t)
	cfg.NumDecode = 2
	cfg.Faults = mustPlan(t, 1, "crash:d0@25")
	reqs := trace13B(1.5, 100, 3)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, res, len(reqs))
		if res.Unfinished != 0 {
			t.Errorf("%s: %d requests never finished after decode crash", name, res.Unfinished)
		}
		if name != "vLLM" && res.Recovered == 0 {
			t.Errorf("%s: decode crash at t=25 orphaned nothing (suspicious)", name)
		}
		if res.Unfinished == 0 && res.LiveKVBlocks != 0 {
			t.Errorf("%s: %d KV blocks leaked after crash recovery", name, res.LiveKVBlocks)
		}
	}
}

// TestPrefillCrashRecovered: same for a prefill instance, with restore.
func TestPrefillCrashRecovered(t *testing.T) {
	cfg := cfg13B(t)
	cfg.NumPrefill = 2
	cfg.Faults = mustPlan(t, 1, "crash:p0@15+30")
	reqs := trace13B(1.5, 100, 5)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, res, len(reqs))
		if res.Unfinished != 0 {
			t.Errorf("%s: %d requests never finished after prefill crash", name, res.Unfinished)
		}
		if res.Unfinished == 0 && res.LiveKVBlocks != 0 {
			t.Errorf("%s: %d KV blocks leaked", name, res.LiveKVBlocks)
		}
	}
}

// TestSingleInstanceCrashAndRestore: with nothing to fail over to, work
// parks until the instance restores, then drains.
func TestSingleInstanceCrashAndRestore(t *testing.T) {
	cfg := cfg13B(t)
	cfg.Faults = mustPlan(t, 1, "crash:d0@20+10; crash:p0@40+10")
	reqs := trace13B(1, 60, 9)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, res, len(reqs))
		if res.Unfinished != 0 {
			t.Errorf("%s: %d requests stuck after restore", name, res.Unfinished)
		}
	}
}

// TestAdmissionControlSheds: a tight queue bound under heavy load must
// reject arrivals (distinct terminal state) while the rest complete.
func TestAdmissionControlSheds(t *testing.T) {
	cfg := cfg13B(t)
	cfg.Shed.MaxQueueDepth = 2
	reqs := trace13B(8, 150, 21)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, res, len(reqs))
		if res.Rejected == 0 {
			t.Errorf("%s: queue bound 2 at 8 req/s/GPU shed nothing", name)
		}
		if res.Aborted != 0 {
			t.Errorf("%s: admission control alone aborted %d in-flight requests", name, res.Aborted)
		}
	}
}

// TestTTFTDeadlineAborts: an aggressive client timeout under overload
// must abort queued requests that never produced a first token.
func TestTTFTDeadlineAborts(t *testing.T) {
	cfg := cfg13B(t)
	cfg.Shed.TTFTDeadline = sim.Seconds(1)
	reqs := trace13B(12, 150, 22)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkConservation(t, name, res, len(reqs))
		if res.Aborted == 0 {
			t.Errorf("%s: 1s TTFT deadline at 12 req/s/GPU aborted nothing", name)
		}
		for _, r := range res.Records {
			if r.TTFT() > sim.Seconds(1) {
				t.Errorf("%s: request %d completed with TTFT %v past the deadline", name, r.ID, r.TTFT())
				break
			}
		}
	}
}

// TestCancelFaultPicksSameVictims: the seeded cancellation must abort the
// same fraction and the same request ids on repeated runs.
func TestCancelFaultPicksSameVictims(t *testing.T) {
	cfg := cfg13B(t)
	cfg.Faults = mustPlan(t, 42, "cancel@20x0.4")
	reqs := trace13B(2, 100, 17)
	victims := func() map[uint64]bool {
		res, err := RunWindServe(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Aborted == 0 {
			t.Fatal("cancel@20x0.4 aborted nothing")
		}
		got := map[uint64]bool{}
		for _, r := range res.Records {
			got[r.ID] = true
		}
		return got
	}
	a, b := victims(), victims()
	if len(a) != len(b) {
		t.Fatalf("completion sets differ: %d vs %d", len(a), len(b))
	}
	for id := range a {
		if !b[id] {
			t.Fatalf("request %d completed in run A but not run B", id)
		}
	}
}

// TestDegradedLinksSlowDistServe: serial post-prefill transfers on a
// 10%-bandwidth interconnect must lengthen the decode queue delay.
func TestDegradedLinksSlowDistServe(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(1.5, 80, 31)
	clean, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = mustPlan(t, 1, "degrade@0x0.05")
	slow, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Summary.DecodeQueueMean <= clean.Summary.DecodeQueueMean {
		t.Errorf("degraded links did not lengthen transfers: clean %v, degraded %v",
			clean.Summary.DecodeQueueMean, slow.Summary.DecodeQueueMean)
	}
}

// TestSlowdownHurtsLatency: a 3x GPU slowdown on the only prefill
// instance must raise TTFT.
func TestSlowdownHurtsLatency(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(1.5, 80, 33)
	clean, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = mustPlan(t, 1, "slow:p0@0x3")
	slow, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Summary.TTFTMean <= clean.Summary.TTFTMean {
		t.Errorf("slowdown did not raise TTFT: clean %v, slowed %v",
			clean.Summary.TTFTMean, slow.Summary.TTFTMean)
	}
}

// TestRecoverDecodeOrphanUsesBackup unit-tests the backup-restore path:
// a surviving snapshot promotes in place, generation rolls back to it,
// and the request resumes decoding on the backup's instance.
func TestRecoverDecodeOrphanUsesBackup(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 5, PromptTokens: 1000, OutputTokens: 300})
	q.PrefillDone, q.Generated = 1000, 200
	q.Phase = engine.PhaseDecoding
	w.r.live[q.W.ID] = q
	w.r.rec.Arrive(q.W.ID, q.W.PromptTokens, q.W.OutputTokens, 0)
	q.BackupTokens = 1100 // snapshot taken at generated=100
	w.backupAt[q.W.ID] = 0
	pkv := w.d.prefills[0].KV()
	if err := pkv.AllocateBackup(q.KVID(), 1100); err != nil {
		t.Fatal(err)
	}
	w.recoverDecodeOrphan(q)
	if !pkv.Has(q.KVID()) || pkv.IsBackup(q.KVID()) {
		t.Fatal("backup was not promoted to a working copy")
	}
	if q.Generated != 100 {
		t.Errorf("generation not rolled back to the snapshot: %d, want 100", q.Generated)
	}
	if q.BackupTokens != 0 || len(w.backupAt) != 0 {
		t.Error("backup bookkeeping not cleared")
	}
	if w.d.prefills[0].NumRunning() != 1 {
		t.Error("request not resumed on the backup's instance")
	}
	if len(w.r.recovered) != 1 {
		t.Error("recovery not counted")
	}
}

// TestRecoverDecodeOrphanScratch: without a backup the orphan loses all
// progress and re-enters dispatch as a fresh prefill.
func TestRecoverDecodeOrphanScratch(t *testing.T) {
	w := newWindStateForTest(t)
	q := engine.NewReq(workload.Request{ID: 6, PromptTokens: 800, OutputTokens: 100})
	q.PrefillDone, q.Generated = 800, 40
	q.Phase = engine.PhaseDecoding
	w.r.live[q.W.ID] = q
	w.r.rec.Arrive(q.W.ID, q.W.PromptTokens, q.W.OutputTokens, 0)
	w.recoverDecodeOrphan(q)
	if q.Generated != 0 || q.PrefillDone != 0 {
		t.Errorf("scratch recovery kept progress: prefill=%d generated=%d", q.PrefillDone, q.Generated)
	}
	queued := 0
	for _, ins := range w.d.prefills {
		queued += ins.NumQueued()
	}
	for _, ins := range w.d.decodes {
		queued += ins.NumQueued() + ins.PendingAdmits() + len(ins.Running())
	}
	if queued != 1 {
		t.Errorf("orphan not resubmitted exactly once (found %d)", queued)
	}
	if len(w.r.recovered) != 1 {
		t.Error("recovery not counted")
	}
}

// TestPropertyInvariantsUnderFaults fuzzes all systems under a rotating
// set of fault plans and shed policies: conservation must hold and no KV
// (including backups) may outlive its requests.
func TestPropertyInvariantsUnderFaults(t *testing.T) {
	plans := []string{
		"crash:d0@15",
		"crash:p0@10+20; cancel@30x0.3",
		"crash:d1@12; crash:p1@18+10; degrade@5x0.2+30",
		"slow:d0@5x2.5+25; cancel@10x0.15; cancel@20x0.15",
	}
	cfg := cfg13B(t)
	cfg.NumPrefill, cfg.NumDecode = 2, 2
	cfg.Shed = ShedPolicy{MaxQueueDepth: 128, TTFTDeadline: sim.Seconds(60)}
	for pi, spec := range plans {
		cfg.Faults = mustPlan(t, int64(pi+1), spec)
		reqs := trace13B(1.5, 90, int64(100+pi))
		for name, run := range allSystems() {
			res, err := run(cfg, reqs)
			if err != nil {
				t.Fatalf("plan %q %s: %v", spec, name, err)
			}
			checkConservation(t, name+"/"+spec, res, len(reqs))
			if res.Unfinished == 0 && res.LiveKVBlocks != 0 {
				t.Errorf("plan %q %s: %d KV blocks leaked", spec, name, res.LiveKVBlocks)
			}
		}
	}
}

// TestConfigValidationRejectsBadValues covers the hardened validation.
func TestConfigValidationRejectsBadValues(t *testing.T) {
	base := cfg13B(t)
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative NumPrefill", func(c *Config) { c.NumPrefill = -1 }},
		{"negative NumDecode", func(c *Config) { c.NumDecode = -2 }},
		{"zero BlockSize", func(c *Config) { c.BlockSize = 0 }},
		{"ReserveFrac 1", func(c *Config) { c.ReserveFrac = 1 }},
		{"negative ThresholdFrac", func(c *Config) { c.Wind.ThresholdFrac = -0.5 }},
		{"KVSafetyFrac 2", func(c *Config) { c.Wind.KVSafetyFrac = 2 }},
		{"negative MaxQueueDepth", func(c *Config) { c.Shed.MaxQueueDepth = -1 }},
		{"negative TTFTDeadline", func(c *Config) { c.Shed.TTFTDeadline = -sim.Seconds(1) }},
		{"fault targets missing instance", func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Crash, Role: fault.RoleDecode, Instance: 5, At: 1}}}
		}},
		{"invalid fault factor", func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Slowdown, Factor: 0.5, At: 1}}}
		}},
	}
	reqs := trace13B(1, 3, 1)
	for _, tc := range cases {
		cfg := base
		tc.mut(&cfg)
		for name, run := range allSystems() {
			if _, err := run(cfg, reqs); err == nil {
				t.Errorf("%s: %s accepted", name, tc.name)
			}
		}
	}
	// A large-but-legal ThresholdFrac stays accepted (Fig. 5 sweeps it).
	cfg := base
	cfg.Wind.ThresholdFrac = 40
	if _, err := RunWindServe(cfg, trace13B(1, 3, 1)); err != nil {
		t.Errorf("ThresholdFrac 40 rejected: %v", err)
	}
}
