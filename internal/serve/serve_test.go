package serve

import (
	"testing"

	"windserve/internal/model"
	"windserve/internal/perf"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// trace13B builds a deterministic ShareGPT trace at a per-GPU rate for the
// 4-GPU OPT-13B PD deployment.
func trace13B(perGPURate float64, n int, seed int64) []workload.Request {
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: perGPURate * 4}, seed)
	return g.Generate(n)
}

func cfg13B(t *testing.T) Config {
	t.Helper()
	cfg, err := DefaultConfig(model.OPT13B)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

type runFn func(Config, []workload.Request) (*Result, error)

func allSystems() map[string]runFn {
	return map[string]runFn{
		"vLLM":      RunVLLM,
		"DistServe": RunDistServe,
		"WindServe": RunWindServe,
	}
}

func TestAllSystemsDrainModerateLoad(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(2, 250, 42)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Unfinished != 0 {
			t.Errorf("%s: %d unfinished requests", name, res.Unfinished)
		}
		if res.Summary.Requests != 250 {
			t.Errorf("%s: summarized %d requests", name, res.Summary.Requests)
		}
		// Latencies must be physical: positive TTFT, TPOT under a second
		// at this easy load.
		if res.Summary.TTFTP50 <= 0 {
			t.Errorf("%s: TTFT p50 = %v", name, res.Summary.TTFTP50)
		}
		if res.Summary.TPOTP99 > sim.Seconds(1) {
			t.Errorf("%s: TPOT p99 = %v at light load", name, res.Summary.TPOTP99)
		}
	}
}

func TestNoKVLeaks(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(5, 400, 7)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Unfinished != 0 {
			t.Fatalf("%s: %d unfinished", name, res.Unfinished)
		}
		// After a full drain every block must be free again — PeakBlocks
		// tells us allocation actually happened.
		if res.DecodeKV.PeakBlocks == 0 {
			t.Errorf("%s: no decode KV activity recorded", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(4, 200, 11)
	for name, run := range allSystems() {
		a, err := run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := run(cfg, reqs)
		if err != nil {
			t.Fatal(err)
		}
		if a.Summary != b.Summary {
			t.Errorf("%s: non-deterministic summaries:\n%+v\n%+v", name, a.Summary, b.Summary)
		}
	}
}

func TestTTFTIncludesQueueing(t *testing.T) {
	// Under overload the median TTFT must blow past pure prefill time for
	// the baselines (queuing), evidencing Fig. 1/3 behavior.
	cfg := cfg13B(t)
	res, err := RunDistServe(cfg, trace13B(6, 400, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.TTFTP50 < sim.Milliseconds(300) {
		t.Errorf("DistServe overloaded TTFT p50 = %v, expected heavy queuing", res.Summary.TTFTP50)
	}
	if res.Summary.PrefillQueueMean <= 0 {
		t.Error("prefill queue delay not recorded")
	}
}

// The headline end-to-end claim (Fig. 10/11): at high request rates
// WindServe beats DistServe on median TTFT by a large factor and on SLO
// attainment, and DistServe's decode queue delay exceeds WindServe's.
func TestWindServeBeatsBaselinesAtHighRate(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(4, 500, 42)
	wind, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	vllm, err := RunVLLM(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if wind.Dispatched == 0 {
		t.Error("WindServe never dispatched under prefill overload")
	}
	ratio := dist.Summary.TTFTP50.Seconds() / wind.Summary.TTFTP50.Seconds()
	if ratio < 1.65 {
		t.Errorf("TTFT p50 improvement = %.2fx, paper reports 1.65-4.28x", ratio)
	}
	if wind.Summary.Attainment <= dist.Summary.Attainment {
		t.Errorf("WindServe SLO %.2f <= DistServe %.2f", wind.Summary.Attainment, dist.Summary.Attainment)
	}
	if wind.Summary.Attainment <= vllm.Summary.Attainment {
		t.Errorf("WindServe SLO %.2f <= vLLM %.2f", wind.Summary.Attainment, vllm.Summary.Attainment)
	}
	if dist.Summary.Attainment <= 0 || vllm.Summary.Attainment <= 0 {
		t.Error("baselines should still serve some requests within SLO")
	}
}

func TestVLLMNeverTransfers(t *testing.T) {
	cfg := cfg13B(t)
	res, err := RunVLLM(cfg, trace13B(2, 150, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.TransferGB != 0 {
		t.Errorf("co-located vLLM moved %v GB across instances", res.TransferGB)
	}
	// Co-located: decode starts immediately after prefill, no transfer
	// delay.
	if res.Summary.DecodeQueueMean > sim.Milliseconds(1) {
		t.Errorf("vLLM decode queue mean = %v, want ~0", res.Summary.DecodeQueueMean)
	}
}

func TestDistServePaysTransferDelay(t *testing.T) {
	cfg := cfg13B(t)
	res, err := RunDistServe(cfg, trace13B(2, 200, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Every decode start waits for its KV to cross PCIe: the mean decode
	// queue delay must be at least a typical transfer (~20+ ms for ~700
	// tokens at 23 GB/s effective).
	if res.Summary.DecodeQueueMean < sim.Milliseconds(10) {
		t.Errorf("DistServe decode queue mean = %v, expected transfer latency", res.Summary.DecodeQueueMean)
	}
	if res.TransferGB <= 0 {
		t.Error("no KV crossed the interconnect")
	}
}

func TestWindServeAsyncTransferHidesLatency(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(2, 200, 5)
	wind, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	dist, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if wind.AsyncXfers == 0 {
		t.Fatal("no transfers were overlapped")
	}
	if wind.Summary.DecodeQueueMean >= dist.Summary.DecodeQueueMean {
		t.Errorf("async transfer decode queue %v not below serial %v",
			wind.Summary.DecodeQueueMean, dist.Summary.DecodeQueueMean)
	}
	// Ablation: disabling async transfer restores the serial delay.
	cfg.Wind.DisableAsyncTransfer = true
	noAsync, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if noAsync.AsyncXfers != 0 {
		t.Error("DisableAsyncTransfer still overlapped transfers")
	}
	if noAsync.Summary.DecodeQueueMean <= wind.Summary.DecodeQueueMean {
		t.Errorf("no-async decode queue %v should exceed async %v",
			noAsync.Summary.DecodeQueueMean, wind.Summary.DecodeQueueMean)
	}
}

func TestWindServeReschedulingUnderMemoryPressure(t *testing.T) {
	// Force decode KV pressure at a high rate; rescheduling and backups
	// must engage (Fig. 13b's mechanism).
	cfg := cfg13B(t)
	res, err := RunWindServe(cfg, trace13B(6, 600, 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rescheduled == 0 {
		t.Error("no migrations under memory pressure")
	}
	if res.Backups == 0 {
		t.Error("no proactive backups under pressure")
	}
	if res.Unfinished != 0 {
		t.Errorf("%d unfinished", res.Unfinished)
	}
}

func TestAblationFlagsChangeBehavior(t *testing.T) {
	cfg := cfg13B(t)
	reqs := trace13B(5, 400, 9)
	full, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	noSplit, err := RunWindServeNoSplit(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if noSplit.System != "WindServe-no-split" {
		t.Errorf("system name = %s", noSplit.System)
	}
	noRe, err := RunWindServeNoResched(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if noRe.System != "WindServe-no-resche" {
		t.Errorf("system name = %s", noRe.System)
	}
	if noRe.Rescheduled != 0 {
		t.Error("no-resche still migrated")
	}
	// No-dispatch behaves like DistServe on the dispatch axis.
	cfgND := cfg
	cfgND.Wind.DisableDispatch = true
	noDisp, err := RunWindServe(cfgND, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if noDisp.Dispatched != 0 {
		t.Error("no-dispatch still dispatched")
	}
	if full.Dispatched == 0 {
		t.Error("full WindServe should dispatch at this rate")
	}
	// Dispatch is the TTFT lever: removing it must hurt median TTFT.
	if noDisp.Summary.TTFTP50 <= full.Summary.TTFTP50 {
		t.Errorf("no-dispatch TTFT p50 %v should exceed full %v",
			noDisp.Summary.TTFTP50, full.Summary.TTFTP50)
	}
}

func TestSBDAblationHurtsTPOT(t *testing.T) {
	// WindServe-no-split puts dispatched prefills into hybrid batches; at
	// a dispatch-heavy rate its TPOT tail must be worse than full
	// WindServe's (paper Fig. 13a).
	cfg := cfg13B(t)
	reqs := trace13B(5, 500, 21)
	full, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	noSplit, err := RunWindServeNoSplit(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if noSplit.Summary.TPOTP99 <= full.Summary.TPOTP99 {
		t.Errorf("no-split TPOT p99 %v should exceed full WindServe %v",
			noSplit.Summary.TPOTP99, full.Summary.TPOTP99)
	}
}

func TestUtilizationShapesMatchFig2(t *testing.T) {
	// Fig. 2: prefill instances are compute-heavy, decode instances are
	// bandwidth-heavy; both leave headroom.
	cfg := cfg13B(t)
	res, err := RunDistServe(cfg, trace13B(4, 400, 42))
	if err != nil {
		t.Fatal(err)
	}
	if res.PrefillComputeUtil <= res.PrefillBWUtil {
		t.Errorf("prefill compute %.2f should exceed its BW util %.2f",
			res.PrefillComputeUtil, res.PrefillBWUtil)
	}
	if res.DecodeBWUtil <= res.DecodeComputeUtil {
		t.Errorf("decode BW %.2f should exceed its compute util %.2f",
			res.DecodeBWUtil, res.DecodeComputeUtil)
	}
	if res.DecodeComputeUtil > 0.5 {
		t.Errorf("decode compute util %.2f, paper shows heavy underutilization", res.DecodeComputeUtil)
	}
}

func TestPaperSLOTable4(t *testing.T) {
	for _, c := range []struct {
		m    model.Config
		ttft float64
	}{
		{model.OPT13B, 0.25}, {model.OPT66B, 0.8}, {model.LLaMA213B, 4}, {model.LLaMA270B, 15},
	} {
		slo, err := PaperSLO(c.m)
		if err != nil {
			t.Fatal(err)
		}
		if slo.TTFT.Seconds() != c.ttft {
			t.Errorf("%s TTFT SLO = %v", c.m.Name, slo.TTFT)
		}
	}
	if _, err := PaperSLO(model.OPT30B); err == nil {
		t.Error("unlisted model should have no paper SLO")
	}
}

func TestPaperPlacementsTable3(t *testing.T) {
	p, d := PaperPlacement(model.OPT13B)
	if p.GPUs() != 2 || d.GPUs() != 2 {
		t.Errorf("13B placement = %v,%v", p, d)
	}
	p, d = PaperPlacement(model.LLaMA270B)
	if p != (perf.Placement{TP: 2, PP: 2}) || d != (perf.Placement{TP: 2, PP: 2}) {
		t.Errorf("70B placement = %v,%v", p, d)
	}
}

func TestLLaMA70BLongBenchEndToEnd(t *testing.T) {
	// The summarization scenario: long prompts, short outputs, 8 GPUs.
	cfg, err := DefaultConfig(model.LLaMA270B)
	if err != nil {
		t.Fatal(err)
	}
	g := workload.NewGenerator(workload.LongBench(), workload.PoissonArrivals{Rate: 0.25 * 8}, 42)
	reqs := g.Generate(120)
	for name, run := range allSystems() {
		res, err := run(cfg, reqs)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Unfinished != 0 {
			t.Errorf("%s: %d unfinished", name, res.Unfinished)
		}
	}
}

func TestSaturatedSystemHitsHorizonGracefully(t *testing.T) {
	cfg := cfg13B(t)
	cfg.Horizon = sim.Seconds(30) // tight horizon
	res, err := RunDistServe(cfg, trace13B(20, 2000, 1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished == 0 {
		t.Error("absurd overload should leave unfinished requests at the horizon")
	}
	// Summary still computed over completed requests only.
	if res.Summary.Requests+res.Unfinished != 2000 {
		t.Errorf("requests %d + unfinished %d != 2000", res.Summary.Requests, res.Unfinished)
	}
}

func TestDecodeQueueDelayMetricConsistency(t *testing.T) {
	cfg := cfg13B(t)
	res, err := RunWindServe(cfg, trace13B(3, 300, 13))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.TTFT() < 0 {
			t.Fatalf("req%d negative TTFT %v", r.ID, r.TTFT())
		}
		if r.TPOT() < 0 {
			t.Fatalf("req%d negative TPOT %v", r.ID, r.TPOT())
		}
		if r.DecodeQueueDelay() < 0 {
			t.Fatalf("req%d negative decode queue delay", r.ID)
		}
		if r.OutputTokens > 1 && r.DecodeStart < r.FirstToken {
			t.Fatalf("req%d decode started before first token", r.ID)
		}
	}
}

func TestThresholdTradeoffFig5Shape(t *testing.T) {
	// Fig. 5: a threshold near the SLO yields better attainment than an
	// extreme threshold at either end (too eager floods decode, too lazy
	// never relieves the prefill queue).
	cfg := cfg13B(t)
	reqs := trace13B(4, 500, 42)
	att := func(frac float64) float64 {
		c := cfg
		c.Wind.ThresholdFrac = frac
		res, err := RunWindServe(c, reqs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary.Attainment
	}
	mid := att(0.8)
	hi := att(40) // threshold 10 s: effectively never dispatch
	if mid <= hi {
		t.Errorf("attainment at thrd=0.8*SLO (%.2f) should beat never-dispatch (%.2f)", mid, hi)
	}
}

func TestPendingTransfersQueueAndDrain(t *testing.T) {
	// A starved decode instance ([TP-2, TP-1]) cannot hold every prefilled
	// request's KV at once: transfers must queue and drain as decodes
	// complete — the retry path behind DistServe's decode queuing delay.
	cfg := cfg13B(t)
	cfg.DecodePlace = perf.Placement{TP: 1, PP: 1}
	g := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: 3 * 3}, 42)
	reqs := g.Generate(400)
	res, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	// Queued transfers show up as decode-queue delay well beyond a raw
	// PCIe copy, plus failed decode allocations.
	if res.Summary.DecodeQueueP99 < sim.Milliseconds(200) {
		t.Errorf("decode queue p99 = %v, expected heavy transfer queuing", res.Summary.DecodeQueueP99)
	}
	if res.DecodeKV.FailedAllocs == 0 {
		t.Error("expected failed decode allocations while transfers waited")
	}
}

func TestMigrationAbortPathsSurviveShortOutputs(t *testing.T) {
	// LongBench-shaped traffic on OPT-13B with a starved decode instance:
	// long contexts trigger migrations, but tiny outputs finish requests
	// mid-copy, exercising the migration abort/cleanup paths. The run must
	// stay conservation-clean.
	cfg := cfg13B(t)
	cfg.DecodePlace = perf.Placement{TP: 1, PP: 1}
	ds := workload.LongBench()
	ds.MaxContext = cfg.Model.MaxContext
	g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: 2 * 3}, 42)
	reqs := g.Generate(500)
	res, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished", res.Unfinished)
	}
	if len(res.Records) != 500 {
		t.Fatalf("records = %d", len(res.Records))
	}
}

func TestDeriveTPOTSLOTracksTable4(t *testing.T) {
	// §5.2's rule (TPOT SLO = 4× a decode iteration at batch 16 and the
	// dataset's average context) should land within the order of magnitude
	// of Table 4 on our calibrated substrate.
	cases := []struct {
		m      model.Config
		avgCtx int // dataset average prompt+output
	}{
		{model.OPT13B, 965},     // ShareGPT: 768 + 196
		{model.OPT66B, 965},     //
		{model.LLaMA213B, 2988}, // LongBench: 2890 + 97
		{model.LLaMA270B, 2988}, //
	}
	for _, c := range cases {
		cfg, err := DefaultConfig(c.m)
		if err != nil {
			t.Fatal(err)
		}
		pre, _ := PaperPlacement(c.m)
		cm, err := perf.New(c.m, cfg.Topo.Device(0).Spec, pre, cfg.Topo.Link(0), cfg.Params)
		if err != nil {
			t.Fatal(err)
		}
		derived := DeriveTPOTSLO(cm, c.avgCtx)
		ratio := derived.Seconds() / cfg.SLO.TPOT.Seconds()
		// Our simulated backend is faster than the authors' for some
		// models, so require order-of-magnitude agreement.
		if ratio < 0.25 || ratio > 2.5 {
			t.Errorf("%s: derived TPOT SLO %v vs Table 4 %v (ratio %.2f)", c.m.Name, derived, cfg.SLO.TPOT, ratio)
		}
	}
}

func TestConfigDefaultsFilled(t *testing.T) {
	var cfg Config
	cfg.Model = model.OPT13B
	cfg.fillDefaults()
	if cfg.BlockSize != 16 || cfg.ChunkSize != 512 || cfg.MaxDecodeBatch != 256 {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	if cfg.Wind.Resched.LowWatermark == 0 || cfg.Wind.Backup.MinContextTokens == 0 {
		t.Error("wind policy defaults not filled")
	}
	if cfg.Wind.RefDecodeBatch.Empty() {
		t.Error("reference decode batch not defaulted")
	}
	if _, err := DefaultConfig(model.OPT30B); err == nil {
		t.Error("DefaultConfig should fail without a paper SLO")
	}
}

func TestResultString(t *testing.T) {
	cfg := cfg13B(t)
	res, err := RunVLLM(cfg, trace13B(1, 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if len(s) == 0 || res.Summary.Requests != 50 {
		t.Errorf("result string %q", s)
	}
}
