package serve

import (
	"testing"

	"windserve/internal/sched"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// TestRetryTransfersFCFS is the regression test for transfer-queue
// ordering under repeated decode-block/unblock churn: a burst of
// equal-length prompts saturates decode KV so prefilled requests pile up
// in transferPending, a decode crash orphans and re-enters some of them,
// its restore exercises the fault-kick path (Restore → retryTransfers),
// and client cancels punch holes in the queue. The property: requests
// that start their transfer exactly once do so in prefill-completion
// order, i.e. strictly increasing request ID (one prefill instance and
// fixed-size prompts make arrival, prefill, and ID order coincide).
// Crash orphans re-prefill and legitimately transfer twice, so they are
// exempt from the ordering check.
func TestRetryTransfersFCFS(t *testing.T) {
	cfg := cfg13B(t)
	cfg.NumPrefill = 1
	cfg.NumDecode = 2
	cfg.Decisions = sched.NewDecisionLog()
	cfg.Faults = mustPlan(t, 3, "crash:d1@20+15; cancel@25x0.1")

	g := workload.NewGenerator(workload.Fixed(1024, 512, 2048), workload.PoissonArrivals{Rate: 60}, 11)
	reqs := g.Generate(400)
	res, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}

	// The run must actually have churned: decode allocations failed (so
	// transferPending was exercised) and everything still drained cleanly.
	if res.DecodeKV.FailedAllocs == 0 {
		t.Fatal("decode KV never filled; the transfer queue was not exercised")
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d requests unfinished", res.Unfinished)
	}
	if res.LiveKVBlocks != 0 {
		t.Fatalf("KV leak: %d blocks live after drain", res.LiveKVBlocks)
	}

	starts := map[uint64]int{}
	var order []*sched.RouteRecord
	kicked := false
	restoreAt := sim.Time(35) // crash:d1@20+15
	for _, rr := range cfg.Decisions.Routes {
		if rr.Reason != "transfer-round-robin" {
			continue
		}
		starts[rr.ReqID]++
		order = append(order, rr)
		if rr.Target == "decode-1" && rr.Time >= restoreAt {
			kicked = true
		}
	}
	if !kicked {
		t.Fatal("no transfer reached decode-1 after its restore; the fault-kick path did not fire")
	}
	last := uint64(0)
	for _, rr := range order {
		if starts[rr.ReqID] != 1 {
			continue // crash orphan: re-prefilled, transfers twice
		}
		if rr.ReqID <= last {
			t.Fatalf("FCFS violated: request %d started its transfer after request %d", rr.ReqID, last)
		}
		last = rr.ReqID
	}
	if len(order) == 0 {
		t.Fatal("no transfer decisions logged")
	}
}
