package serve

import (
	"fmt"
	"sort"
	"strings"

	"windserve/internal/engine"
	"windserve/internal/kvcache"
	"windserve/internal/perf"
	"windserve/internal/sched"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// Replica is one fleet member: a complete DistServe-style prefill/decode
// group living on a simulator and recorder shared with its siblings. The
// fleet router owns the request lifecycle — arrivals, admission, deadline
// aborts, failover — and a Replica only executes what is submitted to it.
// Intra-replica routing stays what DistServe does (round-robin prefill,
// round-robin transfer), and every decision still flows through the
// shared DecisionLog under the replica's NamePrefix.
type Replica struct {
	name string
	r    *runner
	d    *pd
	down bool
}

// NewReplica plans one replica on the given simulator — the router's own,
// or a shard simulator the replica shares only with same-shard siblings —
// writing lifecycle events through led (a *metrics.Recorder, or a proxy
// forwarding each timestamped call to the router's shard).
// cfg.NamePrefix (e.g. "r3/") keeps instance, link, and trace names
// unique across the fleet; cfg.Shed and cfg.Faults must be zero — the
// router owns shedding, and fault plans compile at the fleet level.
// onComplete (optional) fires once per request after its record closes,
// so the router can retire its own bookkeeping.
func NewReplica(s *sim.Simulator, led Ledger, cfg Config, onComplete func(q *engine.Req)) (*Replica, error) {
	if cfg.Faults != nil {
		return nil, fmt.Errorf("serve: replica %q: fault plans attach to the fleet, not a replica", cfg.NamePrefix)
	}
	if cfg.Shed != (ShedPolicy{}) {
		return nil, fmt.Errorf("serve: replica %q: shedding is the router's job; leave Shed zero", cfg.NamePrefix)
	}
	r, err := newRunnerOn(s, led, cfg)
	if err != nil {
		return nil, err
	}
	cfg = r.cfg
	d, err := newPD(r, cfg, pdHooks{onComplete: onComplete})
	if err != nil {
		return nil, fmt.Errorf("serve: planning replica %q: %w", cfg.NamePrefix, err)
	}
	r.queueDepth = d.queueDepth
	r.onAbort = d.abort
	name := strings.TrimSuffix(cfg.NamePrefix, "/")
	if name == "" {
		name = "replica"
	}
	return &Replica{name: name, r: r, d: d}, nil
}

func (rp *Replica) Name() string { return rp.name }

// Down reports whether the replica is crashed at the fleet level (between
// Crash and Restore). A partitioned replica is NOT down — it keeps
// executing; only the router stops talking to it.
func (rp *Replica) Down() bool { return rp.down }

// QueueDepth is the replica's load signal: requests waiting for prefill
// anywhere plus prefilled requests stuck waiting for decode KV.
func (rp *Replica) QueueDepth() int { return rp.d.queueDepth() }

// InFlight is the number of requests currently owned by this replica.
func (rp *Replica) InFlight() int { return len(rp.r.live) }

// Submit hands a request to the replica. The router has already recorded
// the arrival; a failover submits a fresh request object under the same
// ID, which the first-call-wins recorder folds into the original record.
func (rp *Replica) Submit(w workload.Request) {
	q := engine.NewReq(w)
	rp.r.live[w.ID] = q
	rp.d.prefillRR(q)
}

// Abort terminates a request owned by this replica: the record finalizes
// as aborted and the engines scrub it. No-op if the request already left.
func (rp *Replica) Abort(id uint64) { rp.r.abortReq(id) }

// Evict removes a request from this replica WITHOUT finalizing its
// record — the failover path. The returned request carries the work lost
// with it (PrefillDone + Generated tokens); nil if the request is not
// live here. The router resubmits the same workload request elsewhere.
func (rp *Replica) Evict(id uint64) *engine.Req {
	q, ok := rp.r.live[id]
	if !ok {
		return nil
	}
	delete(rp.r.live, id)
	q.Phase = engine.PhaseAborted
	rp.d.abort(q)
	return q
}

// Crash takes the whole replica down: every instance loses its KV and
// in-flight passes, and every request still owned here is orphaned. The
// orphans come back in ID order (deterministic), already scrubbed and
// phase-aborted, with their lost work readable off PrefillDone/Generated;
// their records stay open so the router can fail them over.
func (rp *Replica) Crash() []*engine.Req {
	rp.down = true
	for _, ins := range rp.d.prefills {
		if !ins.Down() {
			ins.Crash()
		}
	}
	for _, ins := range rp.d.decodes {
		if !ins.Down() {
			ins.Crash()
		}
	}
	ids := make([]uint64, 0, len(rp.r.live))
	for id := range rp.r.live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	orphans := make([]*engine.Req, 0, len(ids))
	for _, id := range ids {
		q := rp.r.live[id]
		delete(rp.r.live, id)
		q.Phase = engine.PhaseAborted
		orphans = append(orphans, q)
	}
	rp.d.transferPending = rp.d.transferPending[:0]
	clear(rp.d.prefillAt)
	clear(rp.d.decodeAt)
	// In-flight migration callbacks check the registry by pointer and
	// no-op once their entries are gone.
	clear(rp.d.migrating)
	return orphans
}

// Restore brings a crashed replica back with empty caches.
func (rp *Replica) Restore() {
	rp.down = false
	for _, ins := range rp.d.prefills {
		ins.Restore()
	}
	for _, ins := range rp.d.decodes {
		ins.Restore()
	}
}

// SetSlowdown scales every instance's compute time (1 restores nominal) —
// the whole-replica slow-node fault.
func (rp *Replica) SetSlowdown(factor float64) {
	for _, ins := range rp.d.prefills {
		ins.SetSlowdown(factor)
	}
	for _, ins := range rp.d.decodes {
		ins.SetSlowdown(factor)
	}
}

// DegradeLinks scales the replica's cross-instance bandwidth.
func (rp *Replica) DegradeLinks(frac float64) { rp.d.degradeLinks(frac) }

// LoadSignals is the replica's elastic pressure snapshot: prompt-token
// backlog across acting prefills, stream count and summed context across
// acting decodes, and the acting role counts. With Elastic off the
// acting counts are simply the home counts.
func (rp *Replica) LoadSignals() (qTokens, running, sumCtx, actP, actD int) {
	return rp.d.loadSignals()
}

// Flip converts one of the replica's instances to the other role —
// toDecode true turns an acting prefill into a decode, false the
// reverse — draining its in-flight work onto the remaining instances.
// Returns a zero result (OK false) when the replica is down, the config
// is not elastic, or the flip would empty a role.
func (rp *Replica) Flip(toDecode bool) FlipResult {
	if rp.down || !rp.r.cfg.Elastic {
		return FlipResult{}
	}
	return rp.d.flip(toDecode)
}

// Flips is how many role flips this replica has executed.
func (rp *Replica) Flips() int { return rp.d.flips }

// CostModels exposes the planned prefill and decode instance cost models
// (first instance of each role — replicas deploy identical shapes). The
// fleet's role controller profiles these to predict TTFT and TPOT from
// the replica's reported load signals.
func (rp *Replica) CostModels() (prefill, decode *perf.CostModel) {
	return rp.d.prefills[0].CM(), rp.d.decodes[0].CM()
}

// Aborted is how many requests this replica terminated via Abort.
func (rp *Replica) Aborted() int { return rp.r.aborted }

// Decisions returns the replica's private decision log (nil when the
// fleet isn't collecting decisions). The fleet merges per-actor logs
// into the caller's log in canonical order at the end of a run.
func (rp *Replica) Decisions() *sched.DecisionLog { return rp.r.cfg.Decisions }

// ReplicaStats is a replica's contribution to fleet-level accounting.
type ReplicaStats struct {
	LiveKVBlocks        int // nonzero after drain = leak
	PrefillKV, DecodeKV kvcache.Stats
	PrefillComputeUtil  float64
	DecodeComputeUtil   float64
	TransferGB          float64
}

// Stats reads the replica's end-of-run accounting; utilizations are means
// over the elapsed span, averaged across the replica's instances.
func (rp *Replica) Stats(elapsed sim.Time) ReplicaStats {
	var st ReplicaStats
	var pcu, dcu float64
	for _, ins := range rp.d.prefills {
		addStats(&st.PrefillKV, ins.KV().Stats())
		st.LiveKVBlocks += ins.KV().UsedBlocks()
		c, _ := utilization(ins, elapsed)
		pcu += c
	}
	for _, ins := range rp.d.decodes {
		addStats(&st.DecodeKV, ins.KV().Stats())
		st.LiveKVBlocks += ins.KV().UsedBlocks()
		c, _ := utilization(ins, elapsed)
		dcu += c
	}
	st.PrefillComputeUtil = pcu / float64(len(rp.d.prefills))
	st.DecodeComputeUtil = dcu / float64(len(rp.d.decodes))
	for i := range rp.d.p2d {
		for j := range rp.d.p2d[i] {
			st.TransferGB += rp.d.p2d[i][j].BytesMoved / 1e9
		}
	}
	for j := range rp.d.d2p {
		for i := range rp.d.d2p[j] {
			st.TransferGB += rp.d.d2p[j][i].BytesMoved / 1e9
		}
	}
	for _, row := range rp.d.pp {
		for _, lk := range row {
			if lk != nil {
				st.TransferGB += lk.BytesMoved / 1e9
			}
		}
	}
	for _, row := range rp.d.dd {
		for _, lk := range row {
			if lk != nil {
				st.TransferGB += lk.BytesMoved / 1e9
			}
		}
	}
	return st
}
