package serve

import (
	"math"
	"runtime"
	"testing"

	"windserve/internal/model"
	"windserve/internal/workload"
)

// streamTestConfig returns a small OPT-13B config suitable for fast runs.
func streamTestConfig(t *testing.T) Config {
	t.Helper()
	m, err := model.ByName("OPT-13B")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := DefaultConfig(m)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestStreamingRunAgreesWithExact runs the same trace through the default
// (exact) recorder and the streaming recorder. Counts, attainment, and
// means must match bit-for-bit — the streaming digest accumulates the same
// float64 sums in the same completion order — while percentile fields come
// from P² sketches and only need to be close.
func TestStreamingRunAgreesWithExact(t *testing.T) {
	cfg := streamTestConfig(t)
	g := workload.NewGenerator(workload.ShareGPT(),
		workload.PoissonArrivals{Rate: 3.0 * float64(cfg.TotalGPUs())}, 42)
	reqs := g.Generate(800)

	exact, err := RunWindServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	scfg := cfg
	scfg.Stream = StreamPolicy{Enabled: true, MaxRecords: 100}
	stream, err := RunWindServe(scfg, reqs)
	if err != nil {
		t.Fatal(err)
	}

	if stream.Requests != exact.Requests || stream.Aborted != exact.Aborted ||
		stream.Rejected != exact.Rejected || stream.Unfinished != exact.Unfinished {
		t.Fatalf("counts diverge: stream {%d %d %d %d} exact {%d %d %d %d}",
			stream.Requests, stream.Aborted, stream.Rejected, stream.Unfinished,
			exact.Requests, exact.Aborted, exact.Rejected, exact.Unfinished)
	}
	if stream.Elapsed != exact.Elapsed {
		t.Fatalf("elapsed diverges: stream %v exact %v", stream.Elapsed, exact.Elapsed)
	}
	gs, es := stream.Summary, exact.Summary
	exactPairs := map[string][2]float64{
		"Requests":       {float64(gs.Requests), float64(es.Requests)},
		"TTFTMean":       {gs.TTFTMean.Seconds(), es.TTFTMean.Seconds()},
		"TPOTMean":       {gs.TPOTMean.Seconds(), es.TPOTMean.Seconds()},
		"Attainment":     {gs.Attainment, es.Attainment},
		"TTFTAttainment": {gs.TTFTAttainment, es.TTFTAttainment},
		"TPOTAttainment": {gs.TPOTAttainment, es.TPOTAttainment},
		"ThroughputRPS":  {gs.ThroughputRPS, es.ThroughputRPS},
		"TokensPerSec":   {gs.TokensPerSec, es.TokensPerSec},
	}
	for name, v := range exactPairs {
		if v[0] != v[1] {
			t.Errorf("%s: stream %v != exact %v (must be identical)", name, v[0], v[1])
		}
	}
	sketchPairs := map[string][2]float64{
		"TTFTP50": {gs.TTFTP50.Seconds(), es.TTFTP50.Seconds()},
		"TTFTP99": {gs.TTFTP99.Seconds(), es.TTFTP99.Seconds()},
		"TPOTP50": {gs.TPOTP50.Seconds(), es.TPOTP50.Seconds()},
		"TPOTP99": {gs.TPOTP99.Seconds(), es.TPOTP99.Seconds()},
	}
	for name, v := range sketchPairs {
		if v[1] == 0 {
			continue
		}
		if relErr := math.Abs(v[0]-v[1]) / v[1]; relErr > 0.05 {
			t.Errorf("%s: sketch %v vs exact %v, relative error %.4f > 5%%",
				name, v[0], v[1], relErr)
		}
	}
	if n := len(stream.Records); n != 100 {
		t.Errorf("streaming run retained %d records, want cap 100", n)
	}
}

// TestStreamingSourceMatchesSlice: feeding the identical generator stream
// through RunDistServeFrom gives the same result as the materialized trace.
func TestStreamingSourceMatchesSlice(t *testing.T) {
	cfg := streamTestConfig(t)
	cfg.Stream = StreamPolicy{Enabled: true, MaxRecords: 50}
	rate := 3.0 * float64(cfg.TotalGPUs())
	reqs := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate}, 7).Generate(500)
	src := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate}, 7).Source(500)

	a, err := RunDistServe(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDistServeFrom(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests != b.Requests || a.Elapsed != b.Elapsed ||
		a.Summary.TTFTMean != b.Summary.TTFTMean || a.Summary.Attainment != b.Summary.Attainment {
		t.Fatalf("slice vs source diverge:\nslice  %+v\nsource %+v", a.Summary, b.Summary)
	}
}

// TestStreamingBoundedHeap is the CI memory-budget gate: steady-state heap
// growth must be O(1) in the request count when streaming. Two streaming
// runs sized 4x apart must not see live-heap growth anywhere near 4x —
// retained state is O(instances + in-flight + MaxRecords), not O(n).
func TestStreamingBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run memory measurement")
	}
	cfg := streamTestConfig(t)
	cfg.Stream = StreamPolicy{Enabled: true, MaxRecords: 100}
	rate := 3.0 * float64(cfg.TotalGPUs())

	liveAfter := func(n int) float64 {
		src := workload.NewGenerator(workload.ShareGPT(), workload.PoissonArrivals{Rate: rate}, 11).Source(n)
		res, err := RunDistServeFrom(cfg, src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != n {
			t.Fatalf("ran %d requests, want %d", res.Requests, n)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	}

	small := liveAfter(2_000)
	large := liveAfter(8_000)
	// Generous margin: the 4x run may keep at most 2x the live heap (noise
	// from GC timing and pooled buffers), never the ~4x an O(n) recorder
	// would show.
	if ratio := large / small; ratio > 2.0 {
		t.Errorf("live heap grew %.2fx across a 4x longer run (small %.0f, large %.0f) — streaming state not bounded",
			ratio, small, large)
	}
}
