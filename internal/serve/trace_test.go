package serve

import (
	"testing"

	"windserve/internal/sched"
	"windserve/internal/trace"
)

// runTraced runs WindServe with full observability on and returns the
// result plus the collectors.
func runTraced(t *testing.T, cfg Config, rate float64, n int) (*Result, *trace.Tracer, *sched.DecisionLog) {
	t.Helper()
	cfg.Tracer = trace.New()
	cfg.Decisions = sched.NewDecisionLog()
	res, err := RunWindServe(cfg, trace13B(rate, n, 42))
	if err != nil {
		t.Fatal(err)
	}
	return res, cfg.Tracer, cfg.Decisions
}

// TestWindServeLogsEveryDispatch: Algorithm 1 must leave an audit entry
// for every arriving request — a DispatchRecord when the Coordinator
// weighed candidates, or a RouteRecord on the fallback path — and the
// decode-dispatch count in the log must agree with the Result counter.
func TestWindServeLogsEveryDispatch(t *testing.T) {
	cfg := cfg13B(t)
	res, _, dl := runTraced(t, cfg, 3, 200)
	admitted := res.Requests - res.Rejected
	routesForArrivals := 0
	for _, r := range dl.Routes {
		if r.Reason != "transfer-round-robin" {
			routesForArrivals++
		}
	}
	if got := len(dl.Dispatches) + routesForArrivals; got != admitted {
		t.Errorf("dispatch+route records = %d, want one per admitted request (%d)", got, admitted)
	}
	toDecode := 0
	for _, d := range dl.Dispatches {
		if d.ToDecode {
			toDecode++
		}
		if len(d.Candidates) == 0 {
			t.Fatalf("req %d: dispatch logged with no candidates", d.ReqID)
		}
		for _, c := range d.Candidates {
			if c.PredictedTTFT != c.ComputeTTFT+c.TransferTTFT {
				t.Fatalf("req %d, %s: predicted %v != %v + %v",
					d.ReqID, c.Instance, c.PredictedTTFT, c.ComputeTTFT, c.TransferTTFT)
			}
			if c.PredictedTTFT <= 0 {
				t.Fatalf("req %d, %s: non-positive predicted TTFT %v", d.ReqID, c.Instance, c.PredictedTTFT)
			}
		}
		if d.Target == "" {
			t.Fatalf("req %d: dispatch with empty target", d.ReqID)
		}
	}
	if toDecode != res.Dispatched {
		t.Errorf("ToDecode records = %d, Result.Dispatched = %d", toDecode, res.Dispatched)
	}
}

// TestWindServeTransferRateWarmStart: with no faults, the reported link
// estimate must be non-zero even before any copy completes (the
// warm-start fix for PredictTransfer returning 0 on the first dispatch).
func TestWindServeTransferRateWarmStart(t *testing.T) {
	cfg := cfg13B(t)
	res, _, dl := runTraced(t, cfg, 2, 50)
	if res.TransferRateBps <= 0 {
		t.Fatalf("TransferRateBps = %v, want warm-started > 0", res.TransferRateBps)
	}
	// Every dispatch predicted a non-zero transfer term for prefill
	// placements — the bug was a zero estimate until the first copy.
	for _, d := range dl.Dispatches {
		for _, c := range d.Candidates {
			if c.Instance == "prefill-0" && c.TransferTTFT <= 0 {
				t.Fatalf("req %d: zero transfer term on a prefill candidate", d.ReqID)
			}
		}
	}
}

// TestWindServeEWMATracksDegradedLink: a degraded interconnect must pull
// the Profiler's EWMA well below the healthy estimate — the observed
// rate, not the nominal one, is what Dynamic Prefill Dispatch uses.
func TestWindServeEWMATracksDegradedLink(t *testing.T) {
	cfg := cfg13B(t)
	healthy, _, _ := runTraced(t, cfg, 3, 200)

	bad := cfg13B(t)
	bad.Faults = mustPlan(t, 1, "degrade@0x0.2")
	degraded, _, _ := runTraced(t, bad, 3, 200)

	if degraded.TransferRateBps <= 0 {
		t.Fatal("degraded run reported zero transfer rate")
	}
	if degraded.TransferRateBps >= 0.5*healthy.TransferRateBps {
		t.Errorf("degraded EWMA %.3g B/s did not converge below healthy %.3g B/s",
			degraded.TransferRateBps, healthy.TransferRateBps)
	}
}

// TestWindServeTraceCoversInstances: the tracer must carry at least one
// lane (span track) per instance and occupancy counters for each.
func TestWindServeTraceCoversInstances(t *testing.T) {
	cfg := cfg13B(t)
	_, tr, _ := runTraced(t, cfg, 3, 200)
	lanes := make(map[string]bool)
	for _, l := range tr.Lanes() {
		lanes[l] = true
	}
	counters := make(map[string]bool)
	for _, c := range tr.CounterTracks() {
		counters[c] = true
	}
	for _, ins := range []string{"prefill-0", "decode-0"} {
		if !lanes[ins] {
			t.Errorf("no span lane for %s (lanes: %v)", ins, tr.Lanes())
		}
		if !counters[ins+"/kv_util"] {
			t.Errorf("no kv_util counter for %s (tracks: %v)", ins, tr.CounterTracks())
		}
	}
	if len(tr.Spans) == 0 {
		t.Fatal("traced run produced no spans")
	}
}
