package serve

import (
	"fmt"

	"windserve/internal/cluster"
	"windserve/internal/engine"
	"windserve/internal/kvcache"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// RunDistServe simulates the static phase-disaggregated baseline: prefill
// and decode instances with FCFS local schedulers and no cross-instance
// coordination (§2.2). After a prompt prefills, its KV cache crosses the
// interconnect serially (blocking that request's decode start), the
// prefill-side copy is dropped, and the request queues for decode
// admission — the behaviors whose costs Fig. 1 and Fig. 3 measure.
//
// With multiple instances (Config.NumPrefill/NumDecode), requests are
// routed round-robin — DistServe's orchestration is static.
func RunDistServe(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunDistServeFrom(cfg, workload.NewSliceSource(reqs))
}

// RunDistServeFrom is RunDistServe fed from a pull-based request source:
// arrivals are scheduled one at a time as the stream is consumed, so the
// trace is never materialized.
func RunDistServeFrom(cfg Config, src workload.Source) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	cfg = r.cfg

	d, err := newPD(r, cfg, pdHooks{})
	if err != nil {
		return nil, fmt.Errorf("serve: planning DistServe: %w", err)
	}
	r.queueDepth = d.queueDepth
	r.onAbort = d.abort
	if err := installPDFaults(r, d); err != nil {
		return nil, err
	}
	r.scheduleStream(src, func(q *engine.Req) {
		d.prefillRR(q)
	})
	res := r.run("DistServe")
	d.finalize(res)
	return res, nil
}

// pd is the shared prefill+decode cluster both DistServe and WindServe
// build on. DistServe uses it as-is with round-robin routing; WindServe
// attaches the Global Scheduler.
type pd struct {
	r        *runner
	cfg      Config
	ph       pdHooks
	prefills []*engine.Instance
	decodes  []*engine.Instance
	// p2d[i][j] carries post-prefill KV transfers from prefill i to
	// decode j; d2p[j][i] carries migrations and backups the other way.
	p2d, d2p [][]*xfer.Link

	// prefillAt and decodeAt remember each request's instances, so
	// transfers pick the right link and releases hit the right manager.
	prefillAt map[uint64]int
	decodeAt  map[uint64]int

	// transferPending are prefilled requests waiting for decode KV.
	transferPending []*engine.Req

	rr struct{ prefill, decode int }

	// stats
	asyncXfers int
}

// pdHooks lets WindServe inject policy into the shared wiring.
type pdHooks struct {
	// onPrefillStart fires at a prefill instance (async transfers).
	onPrefillStart func(q *engine.Req)
	// transfer overrides the post-prefill transfer path. Return true if
	// handled; false falls back to the serial DistServe path.
	transfer func(q *engine.Req) bool
	// onDecodeIterEnd fires after each pass of decode instance j.
	onDecodeIterEnd func(j int)
	// onComplete observes completions on any instance (backup cleanup).
	onComplete func(q *engine.Req)
	// onTransfer observes every completed p2d KV copy (payload bytes and
	// wall time including link queuing) — the Profiler's transfer-rate
	// feedback.
	onTransfer func(bytes float64, elapsed sim.Duration)
	// crashPrefill/crashDecode override orphan recovery after a crash of
	// the given instance (WindServe's backup-aware path). Nil uses the
	// pd-default re-prefill-from-scratch recovery.
	crashPrefill func(i int)
	crashDecode  func(j int)
	// decodeSBD enables the second stream on decode instances.
	decodeSBD bool
	// decodeAllowPrefill lets decode instances run prefill in their main
	// stream (WindServe-no-split ablation).
	decodeAllowPrefill bool
}

func newPD(r *runner, cfg Config, ph pdHooks) (*pd, error) {
	specs := make([]cluster.InstanceSpec, 0, cfg.NumPrefill+cfg.NumDecode)
	for i := 0; i < cfg.NumPrefill; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RolePrefill, Place: cfg.PrefillPlace})
	}
	for i := 0; i < cfg.NumDecode; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RoleDecode, Place: cfg.DecodePlace})
	}
	asg, err := cluster.Plan(cfg.Topo, cfg.Model, cfg.Params, cfg.ReserveFrac, specs...)
	if err != nil {
		return nil, err
	}
	pAsg, dAsg := asg[:cfg.NumPrefill], asg[cfg.NumPrefill:]

	d := &pd{
		r: r, cfg: cfg, ph: ph,
		prefillAt: make(map[uint64]int),
		decodeAt:  make(map[uint64]int),
	}
	px := cfg.NamePrefix
	d.p2d = make([][]*xfer.Link, cfg.NumPrefill)
	d.d2p = make([][]*xfer.Link, cfg.NumDecode)
	for i := range d.p2d {
		d.p2d[i] = make([]*xfer.Link, cfg.NumDecode)
		for j := range d.p2d[i] {
			spec := cluster.TransferLink(cfg.Topo, pAsg[i], dAsg[j])
			d.p2d[i][j] = xfer.NewLink(r.s, fmt.Sprintf("%sp%d-d%d", px, i, j), spec, xfer.DefaultEfficiency)
		}
	}
	for j := range d.d2p {
		d.d2p[j] = make([]*xfer.Link, cfg.NumPrefill)
		for i := range d.d2p[j] {
			spec := cluster.TransferLink(cfg.Topo, dAsg[j], pAsg[i])
			d.d2p[j][i] = xfer.NewLink(r.s, fmt.Sprintf("%sd%d-p%d", px, j, i), spec, xfer.DefaultEfficiency)
		}
	}

	for i, a := range pAsg {
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		if cfg.Prefix.Enabled {
			kv.EnablePrefixCache(cfg.Prefix.Tiered)
		}
		host := xfer.NewLink(r.s, fmt.Sprintf("%sprefill%d-host", px, i), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks()
		hooks.OnPrefillStart = func(q *engine.Req) {
			r.led.PrefillStart(q.W.ID, r.s.Now())
			if ph.onPrefillStart != nil {
				ph.onPrefillStart(q)
			}
		}
		hooks.OnPrefillDone = func(q *engine.Req) {
			if ph.transfer != nil && ph.transfer(q) {
				return
			}
			d.serialTransfer(q)
		}
		if ph.onComplete != nil {
			base := hooks.OnComplete
			hooks.OnComplete = func(q *engine.Req) {
				base(q)
				ph.onComplete(q)
			}
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("%sprefill-%d", px, i), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: true, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
		}, hooks)
		if err != nil {
			return nil, err
		}
		d.prefills = append(d.prefills, ins)
	}

	for j, a := range dAsg {
		j := j
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		if cfg.Prefix.Enabled {
			kv.EnablePrefixCache(cfg.Prefix.Tiered)
		}
		host := xfer.NewLink(r.s, fmt.Sprintf("%sdecode%d-host", px, j), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks()
		hooks.OnPrefillDone = func(q *engine.Req) {
			// Only reachable for dispatched assists (WindServe): the first
			// token was produced here and the KV is already local.
			d.decodes[j].AdmitDecode(q)
		}
		hooks.OnIterationEnd = func() {
			d.retryTransfers()
			if ph.onDecodeIterEnd != nil {
				ph.onDecodeIterEnd(j)
			}
		}
		hooks.OnEvicted = func(q *engine.Req) {
			// Out of swap space: recompute from scratch on a prefill
			// instance.
			q.Assist = false
			delete(d.decodeAt, q.W.ID)
			d.prefillRR(q)
		}
		base := hooks.OnComplete
		hooks.OnComplete = func(q *engine.Req) {
			base(q)
			if ph.onComplete != nil {
				ph.onComplete(q)
			}
			delete(d.decodeAt, q.W.ID)
			delete(d.prefillAt, q.W.ID)
			d.retryTransfers()
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("%sdecode-%d", px, j), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: ph.decodeAllowPrefill, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
			SBD: ph.decodeSBD,
		}, hooks)
		if err != nil {
			return nil, err
		}
		d.decodes = append(d.decodes, ins)
	}
	return d, nil
}

// prefillRR enqueues a request on the next live prefill instance
// round-robin. With every instance down the request parks on instance 0's
// queue; a later Restore drains it.
func (d *pd) prefillRR(q *engine.Req) {
	n := len(d.prefills)
	i := -1
	for k := 0; k < n; k++ {
		c := (d.rr.prefill + k) % n
		if !d.prefills[c].Down() {
			i = c
			break
		}
	}
	if i < 0 {
		i = d.rr.prefill % n
	}
	d.rr.prefill = i + 1
	d.prefillAt[q.W.ID] = i
	d.cfg.Decisions.AddRoute(d.r.s.Now(), q.W.ID, d.prefills[i].Name(), "round-robin")
	d.prefills[i].EnqueuePrefill(q)
}

// prefillIdx returns the prefill instance a request belongs to (0 if it
// was never routed — defensive).
func (d *pd) prefillIdx(q *engine.Req) int { return d.prefillAt[q.W.ID] }

// pickDecode returns the live decode instance with the most free KV
// tokens, or -1 when every decode instance is down.
func (d *pd) pickDecode() int {
	best := -1
	for j := 0; j < len(d.decodes); j++ {
		if d.decodes[j].Down() {
			continue
		}
		if best < 0 || d.decodes[j].FreeKVTokens() > d.decodes[best].FreeKVTokens() {
			best = j
		}
	}
	return best
}

// kvBytes is the payload size of a request's KV cache at a token count.
func (d *pd) kvBytes(tokens int) float64 {
	return float64(tokens) * d.cfg.Model.KVBytesPerToken()
}

// nominalP2DRate is the mean healthy p2d link throughput in bytes/second
// — the Profiler's transfer-rate warm start, so the very first dispatch
// already prices the KV copy a prefill-side placement implies.
func (d *pd) nominalP2DRate() float64 {
	var sum float64
	n := 0
	for i := range d.p2d {
		for j := range d.p2d[i] {
			sum += d.p2d[i][j].NominalRate()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// serialTransfer is DistServe's path: after prefill, allocate at a decode
// instance (or queue until blocks free), then occupy the link for the
// full payload; only then may decoding start. A new request queues behind
// anything already waiting — FCFS holds even when blocks freed since the
// last retry would let the newcomer allocate immediately.
func (d *pd) serialTransfer(q *engine.Req) {
	q.Phase = engine.PhaseTransferring
	if len(d.transferPending) > 0 || !d.tryStartTransfer(q) {
		d.transferPending = append(d.transferPending, q)
	}
}

func (d *pd) tryStartTransfer(q *engine.Req) bool {
	if q.Phase == engine.PhaseAborted {
		return true // cancelled while queued for transfer; just drop it
	}
	// Static round-robin for DistServe-style transfers, but skip decode
	// instances that are down or cannot hold the request right now.
	n := len(d.decodes)
	for k := 0; k < n; k++ {
		j := (d.rr.decode + k) % n
		if d.decodes[j].Down() {
			continue
		}
		if d.decodes[j].KV().Allocate(q.KVID(), q.Ctx()+1) == nil {
			d.rr.decode = (j + 1) % n
			d.decodeAt[q.W.ID] = j
			d.cfg.Decisions.AddRoute(d.r.s.Now(), q.W.ID, d.decodes[j].Name(), "transfer-round-robin")
			i := d.prefillIdx(q)
			start := d.r.s.Now()
			bytes := d.kvBytes(q.Ctx())
			d.p2d[i][j].Transfer(bytes, func() {
				d.observeTransfer(bytes, start)
				d.cfg.Tracer.Add(fmt.Sprintf("link %sp%d-d%d", d.cfg.NamePrefix, i, j), trace.KindKVTransfer, start, d.r.s.Now(),
					fmt.Sprintf("req%d %d tokens", q.W.ID, q.Ctx()))
				d.prefills[i].ReleaseKV(q)
				if q.Phase == engine.PhaseAborted {
					d.releaseAt(d.decodes[j], q)
					return
				}
				if d.decodes[j].Down() || !d.decodes[j].KV().Has(q.KVID()) {
					// The target crashed while the payload was in flight — its
					// KV reset dropped the allocation — and may even have
					// restored already with empty blocks. Re-route through the
					// serial path to an instance holding a fresh allocation.
					delete(d.decodeAt, q.W.ID)
					d.serialTransfer(q)
					return
				}
				d.decodes[j].AdmitDecode(q)
			})
			return true
		}
	}
	return false
}

// observeTransfer feeds a completed p2d copy back to the hooks (Profiler
// transfer-rate learning).
func (d *pd) observeTransfer(bytes float64, start sim.Time) {
	if d.ph.onTransfer != nil {
		d.ph.onTransfer(bytes, d.r.s.Now().Sub(start))
	}
}

// releaseAt frees a request's KV on one instance if present, re-kicking it.
func (d *pd) releaseAt(ins *engine.Instance, q *engine.Req) {
	if ins.KV().Has(q.KVID()) {
		_ = ins.KV().Release(q.KVID())
		ins.Kick()
	}
}

// retryTransfers re-attempts queued transfers FCFS whenever decode blocks
// may have freed.
func (d *pd) retryTransfers() {
	for len(d.transferPending) > 0 {
		if !d.tryStartTransfer(d.transferPending[0]) {
			return
		}
		d.transferPending = d.transferPending[1:]
	}
}

// queueDepth is the admission-control signal: requests waiting for
// prefill anywhere, plus prefilled requests stuck waiting for decode KV.
func (d *pd) queueDepth() int {
	n := len(d.transferPending)
	for _, ins := range d.prefills {
		n += ins.NumQueued()
	}
	for _, ins := range d.decodes {
		n += ins.NumQueued()
	}
	return n
}

// abort scrubs a terminated request (Phase already PhaseAborted) from the
// cluster: both owning instances and the transfer queue. KV held on a
// link-transfer in flight is released by that transfer's own callback.
func (d *pd) abort(q *engine.Req) {
	if i, ok := d.prefillAt[q.W.ID]; ok {
		d.prefills[i].Abort(q)
		delete(d.prefillAt, q.W.ID)
	}
	if j, ok := d.decodeAt[q.W.ID]; ok {
		d.decodes[j].Abort(q)
		delete(d.decodeAt, q.W.ID)
	}
	for i, p := range d.transferPending {
		if p == q {
			d.transferPending = append(d.transferPending[:i], d.transferPending[i+1:]...)
			break
		}
	}
}

// degradeLinks scales every cross-instance link to frac of nominal
// bandwidth (1 restores). Host swap links are instance-local PCIe and stay
// nominal.
func (d *pd) degradeLinks(frac float64) {
	for i := range d.p2d {
		for j := range d.p2d[i] {
			d.p2d[i][j].SetDegradation(frac)
		}
	}
	for j := range d.d2p {
		for i := range d.d2p[j] {
			d.d2p[j][i].SetDegradation(frac)
		}
	}
}

// crashPrefillDefault is DistServe's prefill-crash recovery: every orphan
// (queued or mid-prefill on the dead instance, or prefilled but waiting on
// its now-lost KV for transfer) re-prefills from scratch on a survivor.
func (d *pd) crashPrefillDefault(i int) {
	orphans := d.prefills[i].Crash()
	keep := d.transferPending[:0]
	for _, q := range d.transferPending {
		if d.prefillAt[q.W.ID] == i {
			orphans = append(orphans, q)
		} else {
			keep = append(keep, q)
		}
	}
	d.transferPending = keep
	for _, q := range orphans {
		if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
			continue
		}
		delete(d.prefillAt, q.W.ID)
		delete(d.decodeAt, q.W.ID)
		q.PrefillDone = 0
		q.PrefixHit = 0
		d.r.markRecovered(q)
		d.prefillRR(q)
	}
}

// crashDecodeDefault is DistServe's decode-crash recovery: orphans lose
// their KV and re-enter the system as fresh prefills (no backups to
// restore from).
func (d *pd) crashDecodeDefault(j int) {
	for _, q := range d.decodes[j].Crash() {
		if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
			continue
		}
		delete(d.decodeAt, q.W.ID)
		delete(d.prefillAt, q.W.ID)
		q.PrefillDone = 0
		q.PrefixHit = 0
		q.Generated = 0 // generated-token KV died with the instance
		q.Assist = false
		d.r.markRecovered(q)
		d.prefillRR(q)
	}
}

// finalize fills the pd-specific parts of a result, aggregating across
// instances.
func (d *pd) finalize(res *Result) {
	var pStats, dStats kvcache.Stats
	var pcu, pbu, dcu, dbu, stall float64
	for _, ins := range d.prefills {
		addStats(&pStats, ins.KV().Stats())
		c, b := utilization(ins, res.Elapsed)
		pcu += c
		pbu += b
		stall += ins.SwapStall.Seconds()
	}
	for _, ins := range d.decodes {
		addStats(&dStats, ins.KV().Stats())
		c, b := utilization(ins, res.Elapsed)
		dcu += c
		dbu += b
		stall += ins.SwapStall.Seconds()
	}
	res.PrefillKV, res.DecodeKV = pStats, dStats
	for _, ins := range d.prefills {
		res.LiveKVBlocks += ins.KV().UsedBlocks()
	}
	for _, ins := range d.decodes {
		res.LiveKVBlocks += ins.KV().UsedBlocks()
	}
	res.PrefillComputeUtil = pcu / float64(len(d.prefills))
	res.PrefillBWUtil = pbu / float64(len(d.prefills))
	res.DecodeComputeUtil = dcu / float64(len(d.decodes))
	res.DecodeBWUtil = dbu / float64(len(d.decodes))
	res.SwapStallSec = stall
	for i := range d.p2d {
		for j := range d.p2d[i] {
			res.TransferGB += d.p2d[i][j].BytesMoved / 1e9
		}
	}
	for j := range d.d2p {
		for i := range d.d2p[j] {
			gb := d.d2p[j][i].BytesMoved / 1e9
			res.TransferGB += gb
			res.MigrationGB += gb
		}
	}
	res.AsyncXfers = d.asyncXfers
}

func addStats(dst *kvcache.Stats, s kvcache.Stats) { dst.Accumulate(s) }
