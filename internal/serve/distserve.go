package serve

import (
	"fmt"

	"windserve/internal/cluster"
	"windserve/internal/engine"
	"windserve/internal/kvcache"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// RunDistServe simulates the static phase-disaggregated baseline: prefill
// and decode instances with FCFS local schedulers and no cross-instance
// coordination (§2.2). After a prompt prefills, its KV cache crosses the
// interconnect serially (blocking that request's decode start), the
// prefill-side copy is dropped, and the request queues for decode
// admission — the behaviors whose costs Fig. 1 and Fig. 3 measure.
//
// With multiple instances (Config.NumPrefill/NumDecode), requests are
// routed round-robin — DistServe's orchestration is static.
func RunDistServe(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunDistServeFrom(cfg, workload.NewSliceSource(reqs))
}

// RunDistServeFrom is RunDistServe fed from a pull-based request source:
// arrivals are scheduled one at a time as the stream is consumed, so the
// trace is never materialized.
func RunDistServeFrom(cfg Config, src workload.Source) (*Result, error) {
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	cfg = r.cfg

	d, err := newPD(r, cfg, pdHooks{})
	if err != nil {
		return nil, fmt.Errorf("serve: planning DistServe: %w", err)
	}
	r.queueDepth = d.queueDepth
	r.onAbort = d.abort
	if err := installPDFaults(r, d); err != nil {
		return nil, err
	}
	r.scheduleStream(src, func(q *engine.Req) {
		d.prefillRR(q)
	})
	res := r.run("DistServe")
	d.finalize(res)
	return res, nil
}

// pd is the shared prefill+decode cluster both DistServe and WindServe
// build on. DistServe uses it as-is with round-robin routing; WindServe
// attaches the Global Scheduler.
type pd struct {
	r        *runner
	cfg      Config
	ph       pdHooks
	prefills []*engine.Instance
	decodes  []*engine.Instance
	// p2d[i][j] carries post-prefill KV transfers from prefill i to
	// decode j; d2p[j][i] carries migrations and backups the other way.
	p2d, d2p [][]*xfer.Link
	// pp and dd (elastic only) complete the link mesh for flipped roles:
	// pp[i][i'] between prefill homes, dd[j][j'] between decode homes,
	// nil on the diagonals. With Elastic off both stay nil and every
	// index space collapses to the static one — byte-identical wiring.
	pp, dd [][]*xfer.Link

	// pFlipped[i] marks home prefill i currently acting as a decode
	// instance; dFlipped[j] marks home decode j acting as prefill. Both
	// nil unless cfg.Elastic. Routing works in extended index spaces:
	// prefill-space i ∈ [0, P+D) (i ≥ P is home decode i-P acting
	// prefill) and decode-space j ∈ [0, D+P) (j ≥ D is home prefill j-D
	// acting decode); prefillAt holds prefill-space indices, decodeAt
	// decode-space indices.
	pFlipped, dFlipped []bool

	// migrating tracks decode streams mid-flight between acting decodes
	// (a role flip draining its batch). The pointer identity check
	// against the stored request guards the transfer callback: a crash
	// or abort that scrubbed and re-admitted the same ID leaves a stale
	// callback that must not touch the new incarnation.
	migrating map[uint64]*flipMigration

	// prefillAt and decodeAt remember each request's instances, so
	// transfers pick the right link and releases hit the right manager.
	prefillAt map[uint64]int
	decodeAt  map[uint64]int

	// transferPending are prefilled requests waiting for decode KV.
	transferPending []*engine.Req

	rr struct{ prefill, decode int }

	// stats
	asyncXfers int
	flips      int
}

// flipMigration is one decode stream's flight record between acting decodes.
type flipMigration struct {
	q        *engine.Req
	src, dst int // decode-space indices
}

// pdHooks lets WindServe inject policy into the shared wiring.
type pdHooks struct {
	// onPrefillStart fires at a prefill instance (async transfers).
	onPrefillStart func(q *engine.Req)
	// transfer overrides the post-prefill transfer path. Return true if
	// handled; false falls back to the serial DistServe path.
	transfer func(q *engine.Req) bool
	// onDecodeIterEnd fires after each pass of decode instance j.
	onDecodeIterEnd func(j int)
	// onComplete observes completions on any instance (backup cleanup).
	onComplete func(q *engine.Req)
	// onTransfer observes every completed p2d KV copy (payload bytes and
	// wall time including link queuing) — the Profiler's transfer-rate
	// feedback.
	onTransfer func(bytes float64, elapsed sim.Duration)
	// crashPrefill/crashDecode override orphan recovery after a crash of
	// the given instance (WindServe's backup-aware path). Nil uses the
	// pd-default re-prefill-from-scratch recovery.
	crashPrefill func(i int)
	crashDecode  func(j int)
	// decodeSBD enables the second stream on decode instances.
	decodeSBD bool
	// decodeAllowPrefill lets decode instances run prefill in their main
	// stream (WindServe-no-split ablation).
	decodeAllowPrefill bool
}

func newPD(r *runner, cfg Config, ph pdHooks) (*pd, error) {
	specs := make([]cluster.InstanceSpec, 0, cfg.NumPrefill+cfg.NumDecode)
	for i := 0; i < cfg.NumPrefill; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RolePrefill, Place: cfg.PrefillPlace})
	}
	for i := 0; i < cfg.NumDecode; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RoleDecode, Place: cfg.DecodePlace})
	}
	asg, err := cluster.Plan(cfg.Topo, cfg.Model, cfg.Params, cfg.ReserveFrac, specs...)
	if err != nil {
		return nil, err
	}
	pAsg, dAsg := asg[:cfg.NumPrefill], asg[cfg.NumPrefill:]

	d := &pd{
		r: r, cfg: cfg, ph: ph,
		prefillAt: make(map[uint64]int),
		decodeAt:  make(map[uint64]int),
	}
	px := cfg.NamePrefix
	d.p2d = make([][]*xfer.Link, cfg.NumPrefill)
	d.d2p = make([][]*xfer.Link, cfg.NumDecode)
	for i := range d.p2d {
		d.p2d[i] = make([]*xfer.Link, cfg.NumDecode)
		for j := range d.p2d[i] {
			spec := cluster.TransferLink(cfg.Topo, pAsg[i], dAsg[j])
			d.p2d[i][j] = xfer.NewLink(r.s, fmt.Sprintf("%sp%d-d%d", px, i, j), spec, xfer.DefaultEfficiency)
		}
	}
	for j := range d.d2p {
		d.d2p[j] = make([]*xfer.Link, cfg.NumPrefill)
		for i := range d.d2p[j] {
			spec := cluster.TransferLink(cfg.Topo, dAsg[j], pAsg[i])
			d.d2p[j][i] = xfer.NewLink(r.s, fmt.Sprintf("%sd%d-p%d", px, j, i), spec, xfer.DefaultEfficiency)
		}
	}
	if cfg.Elastic {
		// Role flips route KV between same-home-role instances, so the
		// mesh needs the two remaining quadrants.
		d.pFlipped = make([]bool, cfg.NumPrefill)
		d.dFlipped = make([]bool, cfg.NumDecode)
		d.migrating = make(map[uint64]*flipMigration)
		d.pp = make([][]*xfer.Link, cfg.NumPrefill)
		for i := range d.pp {
			d.pp[i] = make([]*xfer.Link, cfg.NumPrefill)
			for i2 := range d.pp[i] {
				if i2 == i {
					continue
				}
				spec := cluster.TransferLink(cfg.Topo, pAsg[i], pAsg[i2])
				d.pp[i][i2] = xfer.NewLink(r.s, fmt.Sprintf("%sp%d-p%d", px, i, i2), spec, xfer.DefaultEfficiency)
			}
		}
		d.dd = make([][]*xfer.Link, cfg.NumDecode)
		for j := range d.dd {
			d.dd[j] = make([]*xfer.Link, cfg.NumDecode)
			for j2 := range d.dd[j] {
				if j2 == j {
					continue
				}
				spec := cluster.TransferLink(cfg.Topo, dAsg[j], dAsg[j2])
				d.dd[j][j2] = xfer.NewLink(r.s, fmt.Sprintf("%sd%d-d%d", px, j, j2), spec, xfer.DefaultEfficiency)
			}
		}
	}

	for i, a := range pAsg {
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		if cfg.Prefix.Enabled {
			kv.EnablePrefixCache(cfg.Prefix.Tiered)
		}
		host := xfer.NewLink(r.s, fmt.Sprintf("%sprefill%d-host", px, i), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks()
		hooks.OnPrefillStart = func(q *engine.Req) {
			r.led.PrefillStart(q.W.ID, r.s.Now())
			if ph.onPrefillStart != nil {
				ph.onPrefillStart(q)
			}
		}
		hooks.OnPrefillDone = func(q *engine.Req) {
			if ph.transfer != nil && ph.transfer(q) {
				return
			}
			d.serialTransfer(q)
		}
		if ph.onComplete != nil || cfg.Elastic {
			base := hooks.OnComplete
			hooks.OnComplete = func(q *engine.Req) {
				base(q)
				if ph.onComplete != nil {
					ph.onComplete(q)
				}
				if cfg.Elastic {
					// A home prefill acting as decode retires streams here.
					delete(d.decodeAt, q.W.ID)
					delete(d.prefillAt, q.W.ID)
					d.retryTransfers()
				}
			}
		}
		if cfg.Elastic {
			hooks.OnIterationEnd = func() {
				d.retryTransfers()
			}
			hooks.OnEvicted = func(q *engine.Req) {
				// Acting decode out of swap space: recompute from scratch
				// on a current acting prefill.
				q.Assist = false
				delete(d.decodeAt, q.W.ID)
				d.prefillRR(q)
			}
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("%sprefill-%d", px, i), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: true, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
		}, hooks)
		if err != nil {
			return nil, err
		}
		d.prefills = append(d.prefills, ins)
	}

	for j, a := range dAsg {
		j := j
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		if cfg.Prefix.Enabled {
			kv.EnablePrefixCache(cfg.Prefix.Tiered)
		}
		host := xfer.NewLink(r.s, fmt.Sprintf("%sdecode%d-host", px, j), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks()
		hooks.OnPrefillDone = func(q *engine.Req) {
			if cfg.Elastic && !q.Assist {
				// Main-stream prefill on a home decode acting as prefill:
				// the KV crosses to an acting decode like any other.
				if ph.transfer != nil && ph.transfer(q) {
					return
				}
				d.serialTransfer(q)
				return
			}
			// Only reachable for dispatched assists (WindServe): the first
			// token was produced here and the KV is already local.
			d.decodes[j].AdmitDecode(q)
		}
		hooks.OnIterationEnd = func() {
			d.retryTransfers()
			if ph.onDecodeIterEnd != nil {
				ph.onDecodeIterEnd(j)
			}
		}
		hooks.OnEvicted = func(q *engine.Req) {
			// Out of swap space: recompute from scratch on a prefill
			// instance.
			q.Assist = false
			delete(d.decodeAt, q.W.ID)
			d.prefillRR(q)
		}
		base := hooks.OnComplete
		hooks.OnComplete = func(q *engine.Req) {
			base(q)
			if ph.onComplete != nil {
				ph.onComplete(q)
			}
			delete(d.decodeAt, q.W.ID)
			delete(d.prefillAt, q.W.ID)
			d.retryTransfers()
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("%sdecode-%d", px, j), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: ph.decodeAllowPrefill, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
			SBD: ph.decodeSBD,
		}, hooks)
		if err != nil {
			return nil, err
		}
		d.decodes = append(d.decodes, ins)
	}
	return d, nil
}

// --- Extended index spaces (elastic role flipping) ---------------------
//
// With Elastic off every helper collapses to the static layout: pSpace
// is len(prefills), dSpace is len(decodes), the masks are nil (so every
// home index acts its home role), and pdLink hits p2d — the exact wiring
// the static systems have always had.

// pSpace is the prefill-space size: home prefills, then home decodes.
func (d *pd) pSpace() int {
	if !d.cfg.Elastic {
		return len(d.prefills)
	}
	return len(d.prefills) + len(d.decodes)
}

// dSpace is the decode-space size: home decodes, then home prefills.
func (d *pd) dSpace() int {
	if !d.cfg.Elastic {
		return len(d.decodes)
	}
	return len(d.decodes) + len(d.prefills)
}

// pIns resolves a prefill-space index to its physical instance.
func (d *pd) pIns(i int) *engine.Instance {
	if i < len(d.prefills) {
		return d.prefills[i]
	}
	return d.decodes[i-len(d.prefills)]
}

// dIns resolves a decode-space index to its physical instance.
func (d *pd) dIns(j int) *engine.Instance {
	if j < len(d.decodes) {
		return d.decodes[j]
	}
	return d.prefills[j-len(d.decodes)]
}

// actingPrefill reports whether prefill-space index i currently serves
// the prefill role.
func (d *pd) actingPrefill(i int) bool {
	if i < len(d.prefills) {
		return d.pFlipped == nil || !d.pFlipped[i]
	}
	return d.dFlipped[i-len(d.prefills)]
}

// actingDecode reports whether decode-space index j currently serves the
// decode role.
func (d *pd) actingDecode(j int) bool {
	if j < len(d.decodes) {
		return d.dFlipped == nil || !d.dFlipped[j]
	}
	return d.pFlipped[j-len(d.decodes)]
}

// pdLink returns the link from prefill-space i to decode-space j; nil
// when both indices name the same physical instance (the transfer is
// local).
func (d *pd) pdLink(i, j int) *xfer.Link {
	np, nd := len(d.prefills), len(d.decodes)
	switch {
	case i < np && j < nd:
		return d.p2d[i][j]
	case i < np:
		return d.pp[i][j-nd]
	case j < nd:
		return d.dd[i-np][j]
	default:
		return d.d2p[i-np][j-nd]
	}
}

// ddLink returns the link between two decode-space indices (stream
// migration); nil on the same physical instance.
func (d *pd) ddLink(j, j2 int) *xfer.Link {
	nd := len(d.decodes)
	switch {
	case j < nd && j2 < nd:
		return d.dd[j][j2]
	case j < nd:
		return d.d2p[j][j2-nd]
	case j2 < nd:
		return d.p2d[j-nd][j2]
	default:
		return d.pp[j-nd][j2-nd]
	}
}

// prefillRR enqueues a request on the next live acting-prefill instance
// round-robin. With every instance down the request parks on the
// round-robin cursor's queue; a later Restore drains it.
func (d *pd) prefillRR(q *engine.Req) {
	n := d.pSpace()
	i := -1
	for k := 0; k < n; k++ {
		c := (d.rr.prefill + k) % n
		if d.pIns(c).Down() || !d.actingPrefill(c) {
			continue
		}
		i = c
		break
	}
	if i < 0 {
		// Every acting prefill is down: park on the first acting one (a
		// later Restore drains it) — with Elastic off that is exactly the
		// historical rr.prefill%n fallback, since every index acts.
		for k := 0; k < n; k++ {
			c := (d.rr.prefill + k) % n
			if d.actingPrefill(c) {
				i = c
				break
			}
		}
	}
	if i < 0 {
		i = d.rr.prefill % n
	}
	d.rr.prefill = i + 1
	d.prefillAt[q.W.ID] = i
	d.cfg.Decisions.AddRoute(d.r.s.Now(), q.W.ID, d.pIns(i).Name(), "round-robin")
	d.pIns(i).EnqueuePrefill(q)
}

// prefillIdx returns the prefill-space index a request belongs to (0 if
// it was never routed — defensive).
func (d *pd) prefillIdx(q *engine.Req) int { return d.prefillAt[q.W.ID] }

// pickDecode returns the live acting-decode index with the most free KV
// tokens, or -1 when every decode instance is down.
func (d *pd) pickDecode() int {
	best := -1
	for j := 0; j < d.dSpace(); j++ {
		if d.dIns(j).Down() || !d.actingDecode(j) {
			continue
		}
		if best < 0 || d.dIns(j).FreeKVTokens() > d.dIns(best).FreeKVTokens() {
			best = j
		}
	}
	return best
}

// kvBytes is the payload size of a request's KV cache at a token count.
func (d *pd) kvBytes(tokens int) float64 {
	return float64(tokens) * d.cfg.Model.KVBytesPerToken()
}

// nominalP2DRate is the mean healthy p2d link throughput in bytes/second
// — the Profiler's transfer-rate warm start, so the very first dispatch
// already prices the KV copy a prefill-side placement implies.
func (d *pd) nominalP2DRate() float64 {
	var sum float64
	n := 0
	for i := range d.p2d {
		for j := range d.p2d[i] {
			sum += d.p2d[i][j].NominalRate()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// serialTransfer is DistServe's path: after prefill, allocate at a decode
// instance (or queue until blocks free), then occupy the link for the
// full payload; only then may decoding start. A new request queues behind
// anything already waiting — FCFS holds even when blocks freed since the
// last retry would let the newcomer allocate immediately.
func (d *pd) serialTransfer(q *engine.Req) {
	q.Phase = engine.PhaseTransferring
	if len(d.transferPending) > 0 || !d.tryStartTransfer(q) {
		d.transferPending = append(d.transferPending, q)
	}
}

func (d *pd) tryStartTransfer(q *engine.Req) bool {
	if q.Phase == engine.PhaseAborted {
		return true // cancelled while queued for transfer; just drop it
	}
	// Static round-robin for DistServe-style transfers, but skip decode
	// instances that are down, not acting the decode role, or unable to
	// hold the request right now.
	n := d.dSpace()
	i := d.prefillIdx(q)
	for k := 0; k < n; k++ {
		j := (d.rr.decode + k) % n
		if d.dIns(j).Down() || !d.actingDecode(j) {
			continue
		}
		if d.pIns(i) == d.dIns(j) {
			// The instance that prefilled this request flipped to decode
			// before the transfer started: the KV is already resident, so
			// the stream decodes in place with no copy at all.
			if !d.dIns(j).KV().Has(q.KVID()) {
				continue
			}
			d.rr.decode = (j + 1) % n
			d.decodeAt[q.W.ID] = j
			d.cfg.Decisions.AddRoute(d.r.s.Now(), q.W.ID, d.dIns(j).Name(), "transfer-local")
			d.dIns(j).AdmitDecode(q)
			return true
		}
		if d.dIns(j).KV().Allocate(q.KVID(), q.Ctx()+1) == nil {
			d.rr.decode = (j + 1) % n
			d.decodeAt[q.W.ID] = j
			d.cfg.Decisions.AddRoute(d.r.s.Now(), q.W.ID, d.dIns(j).Name(), "transfer-round-robin")
			start := d.r.s.Now()
			bytes := d.kvBytes(q.Ctx())
			lk := d.pdLink(i, j)
			lk.Transfer(bytes, func() {
				d.observeTransfer(bytes, start)
				d.cfg.Tracer.Add("link "+lk.Name(), trace.KindKVTransfer, start, d.r.s.Now(),
					fmt.Sprintf("req%d %d tokens", q.W.ID, q.Ctx()))
				d.pIns(i).ReleaseKV(q)
				if q.Phase == engine.PhaseAborted {
					d.releaseAt(d.dIns(j), q)
					return
				}
				if d.dIns(j).Down() || !d.dIns(j).KV().Has(q.KVID()) {
					// The target crashed while the payload was in flight — its
					// KV reset dropped the allocation — and may even have
					// restored already with empty blocks. Re-route through the
					// serial path to an instance holding a fresh allocation.
					delete(d.decodeAt, q.W.ID)
					d.serialTransfer(q)
					return
				}
				if d.cfg.Elastic && !d.actingDecode(j) {
					// The target flipped to prefill while the payload was in
					// flight; hand the stream to a current acting decode
					// instead of loading the fresh prefill role with it.
					d.releaseAt(d.dIns(j), q)
					delete(d.decodeAt, q.W.ID)
					d.serialTransfer(q)
					return
				}
				d.dIns(j).AdmitDecode(q)
			})
			return true
		}
	}
	return false
}

// observeTransfer feeds a completed p2d copy back to the hooks (Profiler
// transfer-rate learning).
func (d *pd) observeTransfer(bytes float64, start sim.Time) {
	if d.ph.onTransfer != nil {
		d.ph.onTransfer(bytes, d.r.s.Now().Sub(start))
	}
}

// releaseAt frees a request's KV on one instance if present, re-kicking it.
func (d *pd) releaseAt(ins *engine.Instance, q *engine.Req) {
	if ins.KV().Has(q.KVID()) {
		_ = ins.KV().Release(q.KVID())
		ins.Kick()
	}
}

// retryTransfers re-attempts queued transfers FCFS whenever decode blocks
// may have freed.
func (d *pd) retryTransfers() {
	for len(d.transferPending) > 0 {
		if !d.tryStartTransfer(d.transferPending[0]) {
			return
		}
		d.transferPending = d.transferPending[1:]
	}
}

// queueDepth is the admission-control signal: requests waiting for
// prefill anywhere, plus prefilled requests stuck waiting for decode KV.
func (d *pd) queueDepth() int {
	n := len(d.transferPending)
	for _, ins := range d.prefills {
		n += ins.NumQueued()
	}
	for _, ins := range d.decodes {
		n += ins.NumQueued()
	}
	return n
}

// abort scrubs a terminated request (Phase already PhaseAborted) from the
// cluster: both owning instances and the transfer queue. KV held on a
// link-transfer in flight is released by that transfer's own callback.
func (d *pd) abort(q *engine.Req) {
	if i, ok := d.prefillAt[q.W.ID]; ok {
		d.pIns(i).Abort(q)
		delete(d.prefillAt, q.W.ID)
	}
	if j, ok := d.decodeAt[q.W.ID]; ok {
		d.dIns(j).Abort(q)
		delete(d.decodeAt, q.W.ID)
	}
	if mig, ok := d.migrating[q.W.ID]; ok && mig.q == q {
		// Mid-migration: KV may be held at both ends; the in-flight
		// transfer callback sees the registry entry gone and bails.
		delete(d.migrating, q.W.ID)
		d.releaseAt(d.dIns(mig.src), q)
		d.releaseAt(d.dIns(mig.dst), q)
	}
	for i, p := range d.transferPending {
		if p == q {
			d.transferPending = append(d.transferPending[:i], d.transferPending[i+1:]...)
			break
		}
	}
}

// degradeLinks scales every cross-instance link to frac of nominal
// bandwidth (1 restores). Host swap links are instance-local PCIe and stay
// nominal.
func (d *pd) degradeLinks(frac float64) {
	for i := range d.p2d {
		for j := range d.p2d[i] {
			d.p2d[i][j].SetDegradation(frac)
		}
	}
	for j := range d.d2p {
		for i := range d.d2p[j] {
			d.d2p[j][i].SetDegradation(frac)
		}
	}
	for _, row := range d.pp {
		for _, lk := range row {
			if lk != nil {
				lk.SetDegradation(frac)
			}
		}
	}
	for _, row := range d.dd {
		for _, lk := range row {
			if lk != nil {
				lk.SetDegradation(frac)
			}
		}
	}
}

// crashPrefillDefault is DistServe's prefill-crash recovery: every orphan
// (queued or mid-prefill on the dead instance, or prefilled but waiting on
// its now-lost KV for transfer) re-prefills from scratch on a survivor.
func (d *pd) crashPrefillDefault(i int) {
	orphans := d.prefills[i].Crash()
	keep := d.transferPending[:0]
	for _, q := range d.transferPending {
		if d.prefillAt[q.W.ID] == i {
			orphans = append(orphans, q)
		} else {
			keep = append(keep, q)
		}
	}
	d.transferPending = keep
	for _, q := range orphans {
		if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
			continue
		}
		delete(d.prefillAt, q.W.ID)
		delete(d.decodeAt, q.W.ID)
		q.PrefillDone = 0
		q.PrefixHit = 0
		d.r.markRecovered(q)
		d.prefillRR(q)
	}
}

// crashDecodeDefault is DistServe's decode-crash recovery: orphans lose
// their KV and re-enter the system as fresh prefills (no backups to
// restore from).
func (d *pd) crashDecodeDefault(j int) {
	for _, q := range d.decodes[j].Crash() {
		if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
			continue
		}
		delete(d.decodeAt, q.W.ID)
		delete(d.prefillAt, q.W.ID)
		q.PrefillDone = 0
		q.PrefixHit = 0
		q.Generated = 0 // generated-token KV died with the instance
		q.Assist = false
		d.r.markRecovered(q)
		d.prefillRR(q)
	}
}

// finalize fills the pd-specific parts of a result, aggregating across
// instances.
func (d *pd) finalize(res *Result) {
	var pStats, dStats kvcache.Stats
	var pcu, pbu, dcu, dbu, stall float64
	for _, ins := range d.prefills {
		addStats(&pStats, ins.KV().Stats())
		c, b := utilization(ins, res.Elapsed)
		pcu += c
		pbu += b
		stall += ins.SwapStall.Seconds()
	}
	for _, ins := range d.decodes {
		addStats(&dStats, ins.KV().Stats())
		c, b := utilization(ins, res.Elapsed)
		dcu += c
		dbu += b
		stall += ins.SwapStall.Seconds()
	}
	res.PrefillKV, res.DecodeKV = pStats, dStats
	for _, ins := range d.prefills {
		res.LiveKVBlocks += ins.KV().UsedBlocks()
	}
	for _, ins := range d.decodes {
		res.LiveKVBlocks += ins.KV().UsedBlocks()
	}
	res.PrefillComputeUtil = pcu / float64(len(d.prefills))
	res.PrefillBWUtil = pbu / float64(len(d.prefills))
	res.DecodeComputeUtil = dcu / float64(len(d.decodes))
	res.DecodeBWUtil = dbu / float64(len(d.decodes))
	res.SwapStallSec = stall
	for i := range d.p2d {
		for j := range d.p2d[i] {
			res.TransferGB += d.p2d[i][j].BytesMoved / 1e9
		}
	}
	for j := range d.d2p {
		for i := range d.d2p[j] {
			gb := d.d2p[j][i].BytesMoved / 1e9
			res.TransferGB += gb
			res.MigrationGB += gb
		}
	}
	for _, row := range d.pp {
		for _, lk := range row {
			if lk != nil {
				res.TransferGB += lk.BytesMoved / 1e9
			}
		}
	}
	for _, row := range d.dd {
		for _, lk := range row {
			if lk != nil {
				gb := lk.BytesMoved / 1e9
				res.TransferGB += gb
				res.MigrationGB += gb
			}
		}
	}
	res.AsyncXfers = d.asyncXfers
}

func addStats(dst *kvcache.Stats, s kvcache.Stats) { dst.Accumulate(s) }
