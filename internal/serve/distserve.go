package serve

import (
	"fmt"

	"windserve/internal/cluster"
	"windserve/internal/engine"
	"windserve/internal/kvcache"
	"windserve/internal/trace"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// RunDistServe simulates the static phase-disaggregated baseline: prefill
// and decode instances with FCFS local schedulers and no cross-instance
// coordination (§2.2). After a prompt prefills, its KV cache crosses the
// interconnect serially (blocking that request's decode start), the
// prefill-side copy is dropped, and the request queues for decode
// admission — the behaviors whose costs Fig. 1 and Fig. 3 measure.
//
// With multiple instances (Config.NumPrefill/NumDecode), requests are
// routed round-robin — DistServe's orchestration is static.
func RunDistServe(cfg Config, reqs []workload.Request) (*Result, error) {
	r := newRunner(cfg)
	cfg = r.cfg

	d, err := newPD(r, cfg, pdHooks{})
	if err != nil {
		return nil, fmt.Errorf("serve: planning DistServe: %w", err)
	}
	r.scheduleArrivals(reqs, func(q *engine.Req) {
		d.prefillRR(q)
	})
	res := r.run(reqs, "DistServe")
	d.finalize(res)
	return res, nil
}

// pd is the shared prefill+decode cluster both DistServe and WindServe
// build on. DistServe uses it as-is with round-robin routing; WindServe
// attaches the Global Scheduler.
type pd struct {
	r        *runner
	cfg      Config
	prefills []*engine.Instance
	decodes  []*engine.Instance
	// p2d[i][j] carries post-prefill KV transfers from prefill i to
	// decode j; d2p[j][i] carries migrations and backups the other way.
	p2d, d2p [][]*xfer.Link

	// prefillAt and decodeAt remember each request's instances, so
	// transfers pick the right link and releases hit the right manager.
	prefillAt map[uint64]int
	decodeAt  map[uint64]int

	// transferPending are prefilled requests waiting for decode KV.
	transferPending []*engine.Req

	rr struct{ prefill, decode int }

	// stats
	asyncXfers int
}

// pdHooks lets WindServe inject policy into the shared wiring.
type pdHooks struct {
	// onPrefillStart fires at a prefill instance (async transfers).
	onPrefillStart func(q *engine.Req)
	// transfer overrides the post-prefill transfer path. Return true if
	// handled; false falls back to the serial DistServe path.
	transfer func(q *engine.Req) bool
	// onDecodeIterEnd fires after each pass of decode instance j.
	onDecodeIterEnd func(j int)
	// onComplete observes completions on any instance (backup cleanup).
	onComplete func(q *engine.Req)
	// decodeSBD enables the second stream on decode instances.
	decodeSBD bool
	// decodeAllowPrefill lets decode instances run prefill in their main
	// stream (WindServe-no-split ablation).
	decodeAllowPrefill bool
}

func newPD(r *runner, cfg Config, ph pdHooks) (*pd, error) {
	specs := make([]cluster.InstanceSpec, 0, cfg.NumPrefill+cfg.NumDecode)
	for i := 0; i < cfg.NumPrefill; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RolePrefill, Place: cfg.PrefillPlace})
	}
	for i := 0; i < cfg.NumDecode; i++ {
		specs = append(specs, cluster.InstanceSpec{Role: cluster.RoleDecode, Place: cfg.DecodePlace})
	}
	asg, err := cluster.Plan(cfg.Topo, cfg.Model, cfg.Params, cfg.ReserveFrac, specs...)
	if err != nil {
		return nil, err
	}
	pAsg, dAsg := asg[:cfg.NumPrefill], asg[cfg.NumPrefill:]

	d := &pd{
		r: r, cfg: cfg,
		prefillAt: make(map[uint64]int),
		decodeAt:  make(map[uint64]int),
	}
	d.p2d = make([][]*xfer.Link, cfg.NumPrefill)
	d.d2p = make([][]*xfer.Link, cfg.NumDecode)
	for i := range d.p2d {
		d.p2d[i] = make([]*xfer.Link, cfg.NumDecode)
		for j := range d.p2d[i] {
			spec := cluster.TransferLink(cfg.Topo, pAsg[i], dAsg[j])
			d.p2d[i][j] = xfer.NewLink(r.s, fmt.Sprintf("p%d-d%d", i, j), spec, xfer.DefaultEfficiency)
		}
	}
	for j := range d.d2p {
		d.d2p[j] = make([]*xfer.Link, cfg.NumPrefill)
		for i := range d.d2p[j] {
			spec := cluster.TransferLink(cfg.Topo, dAsg[j], pAsg[i])
			d.d2p[j][i] = xfer.NewLink(r.s, fmt.Sprintf("d%d-p%d", j, i), spec, xfer.DefaultEfficiency)
		}
	}

	for i, a := range pAsg {
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		host := xfer.NewLink(r.s, fmt.Sprintf("prefill%d-host", i), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks()
		hooks.OnPrefillStart = func(q *engine.Req) {
			r.rec.PrefillStart(q.W.ID, r.s.Now())
			if ph.onPrefillStart != nil {
				ph.onPrefillStart(q)
			}
		}
		hooks.OnPrefillDone = func(q *engine.Req) {
			if ph.transfer != nil && ph.transfer(q) {
				return
			}
			d.serialTransfer(q)
		}
		if ph.onComplete != nil {
			base := hooks.OnComplete
			hooks.OnComplete = func(q *engine.Req) {
				base(q)
				ph.onComplete(q)
			}
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("prefill-%d", i), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: true, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
		}, hooks)
		if err != nil {
			return nil, err
		}
		d.prefills = append(d.prefills, ins)
	}

	for j, a := range dAsg {
		j := j
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		host := xfer.NewLink(r.s, fmt.Sprintf("decode%d-host", j), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks()
		hooks.OnPrefillDone = func(q *engine.Req) {
			// Only reachable for dispatched assists (WindServe): the first
			// token was produced here and the KV is already local.
			d.decodes[j].AdmitDecode(q)
		}
		hooks.OnIterationEnd = func() {
			d.retryTransfers()
			if ph.onDecodeIterEnd != nil {
				ph.onDecodeIterEnd(j)
			}
		}
		hooks.OnEvicted = func(q *engine.Req) {
			// Out of swap space: recompute from scratch on a prefill
			// instance.
			q.Assist = false
			delete(d.decodeAt, q.W.ID)
			d.prefillRR(q)
		}
		base := hooks.OnComplete
		hooks.OnComplete = func(q *engine.Req) {
			base(q)
			if ph.onComplete != nil {
				ph.onComplete(q)
			}
			delete(d.decodeAt, q.W.ID)
			delete(d.prefillAt, q.W.ID)
			d.retryTransfers()
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("decode-%d", j), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: ph.decodeAllowPrefill, ChunkSize: cfg.ChunkSize,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
			SBD: ph.decodeSBD,
		}, hooks)
		if err != nil {
			return nil, err
		}
		d.decodes = append(d.decodes, ins)
	}
	return d, nil
}

// prefillRR enqueues a request on the next prefill instance round-robin.
func (d *pd) prefillRR(q *engine.Req) {
	i := d.rr.prefill % len(d.prefills)
	d.rr.prefill++
	d.prefillAt[q.W.ID] = i
	d.prefills[i].EnqueuePrefill(q)
}

// prefillIdx returns the prefill instance a request belongs to (0 if it
// was never routed — defensive).
func (d *pd) prefillIdx(q *engine.Req) int { return d.prefillAt[q.W.ID] }

// pickDecode returns the decode instance with the most free KV tokens.
func (d *pd) pickDecode() int {
	best := 0
	for j := 1; j < len(d.decodes); j++ {
		if d.decodes[j].FreeKVTokens() > d.decodes[best].FreeKVTokens() {
			best = j
		}
	}
	return best
}

// kvBytes is the payload size of a request's KV cache at a token count.
func (d *pd) kvBytes(tokens int) float64 {
	return float64(tokens) * d.cfg.Model.KVBytesPerToken()
}

// serialTransfer is DistServe's path: after prefill, allocate at a decode
// instance (or queue until blocks free), then occupy the link for the
// full payload; only then may decoding start.
func (d *pd) serialTransfer(q *engine.Req) {
	q.Phase = engine.PhaseTransferring
	if !d.tryStartTransfer(q) {
		d.transferPending = append(d.transferPending, q)
	}
}

func (d *pd) tryStartTransfer(q *engine.Req) bool {
	// Static round-robin for DistServe-style transfers, but skip decode
	// instances that cannot hold the request right now.
	n := len(d.decodes)
	for k := 0; k < n; k++ {
		j := (d.rr.decode + k) % n
		if d.decodes[j].KV().Allocate(q.KVID(), q.Ctx()+1) == nil {
			d.rr.decode = (j + 1) % n
			d.decodeAt[q.W.ID] = j
			i := d.prefillIdx(q)
			start := d.r.s.Now()
			d.p2d[i][j].Transfer(d.kvBytes(q.Ctx()), func() {
				d.cfg.Tracer.Add(fmt.Sprintf("link p%d-d%d", i, j), trace.KindKVTransfer, start, d.r.s.Now(),
					fmt.Sprintf("req%d %d tokens", q.W.ID, q.Ctx()))
				d.prefills[i].ReleaseKV(q)
				d.decodes[j].AdmitDecode(q)
			})
			return true
		}
	}
	return false
}

// retryTransfers re-attempts queued transfers FCFS whenever decode blocks
// may have freed.
func (d *pd) retryTransfers() {
	for len(d.transferPending) > 0 {
		if !d.tryStartTransfer(d.transferPending[0]) {
			return
		}
		d.transferPending = d.transferPending[1:]
	}
}

// finalize fills the pd-specific parts of a result, aggregating across
// instances.
func (d *pd) finalize(res *Result) {
	var pStats, dStats kvcache.Stats
	var pcu, pbu, dcu, dbu, stall float64
	for _, ins := range d.prefills {
		addStats(&pStats, ins.KV().Stats())
		c, b := utilization(ins, res.Elapsed)
		pcu += c
		pbu += b
		stall += ins.SwapStall.Seconds()
	}
	for _, ins := range d.decodes {
		addStats(&dStats, ins.KV().Stats())
		c, b := utilization(ins, res.Elapsed)
		dcu += c
		dbu += b
		stall += ins.SwapStall.Seconds()
	}
	res.PrefillKV, res.DecodeKV = pStats, dStats
	res.PrefillComputeUtil = pcu / float64(len(d.prefills))
	res.PrefillBWUtil = pbu / float64(len(d.prefills))
	res.DecodeComputeUtil = dcu / float64(len(d.decodes))
	res.DecodeBWUtil = dbu / float64(len(d.decodes))
	res.SwapStallSec = stall
	for i := range d.p2d {
		for j := range d.p2d[i] {
			res.TransferGB += d.p2d[i][j].BytesMoved / 1e9
		}
	}
	for j := range d.d2p {
		for i := range d.d2p[j] {
			gb := d.d2p[j][i].BytesMoved / 1e9
			res.TransferGB += gb
			res.MigrationGB += gb
		}
	}
	res.AsyncXfers = d.asyncXfers
}

func addStats(dst *kvcache.Stats, s kvcache.Stats) {
	dst.SwapOutEvents += s.SwapOutEvents
	dst.SwapInEvents += s.SwapInEvents
	dst.SwapOutTokens += s.SwapOutTokens
	dst.SwapInTokens += s.SwapInTokens
	dst.FailedAllocs += s.FailedAllocs
	if s.PeakBlocks > dst.PeakBlocks {
		dst.PeakBlocks = s.PeakBlocks
	}
}
