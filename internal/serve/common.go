package serve

import (
	"math"
	"math/rand"
	"sort"

	"windserve/internal/engine"
	"windserve/internal/metrics"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// Ledger is the request-lifecycle surface a system writes through. A
// single-testbed run writes straight into a *metrics.Recorder; a fleet
// replica running on its own shard writes through a proxy that forwards
// each call — with its explicit timestamp — as a cross-shard message to
// the router, which owns the one real Recorder. Every method carries the
// event time, so applying a forwarded call later in wall-clock terms
// records exactly the same virtual-time fact.
type Ledger interface {
	Arrive(id uint64, promptTokens, outputTokens int, at sim.Time)
	Reject(id uint64, at sim.Time)
	PrefillStart(id uint64, at sim.Time)
	FirstToken(id uint64, at sim.Time)
	DecodeStart(id uint64, at sim.Time)
	Complete(id uint64, at sim.Time)
	Abort(id uint64, at sim.Time, emitted int)
	InFlight(id uint64) bool
	HasFirstToken(id uint64) bool
	OpenIDs() []uint64
}

// runner holds the state every system run shares: the simulator, the
// metrics recorder, and the request-lifecycle machinery (admission
// control, deadline aborts, cancellation faults, crash recovery
// accounting) that the three systems plug their policies into.
type runner struct {
	s   *sim.Simulator
	led Ledger
	// rec is led when the ledger is a real recorder (single-testbed
	// runs); nil on a fleet replica, whose router owns the recorder.
	// Only run() — never called on a replica — requires it.
	rec *metrics.Recorder
	cfg Config

	// live indexes in-flight requests by id so the lifecycle machinery
	// (deadline aborts, cancellation faults) can reach them without a
	// per-system lookup. Systems never touch it directly: scheduleArrivals
	// adds, recorderHooks' OnComplete and abortReq remove.
	live map[uint64]*engine.Req
	// recovered collects ids that survived an instance crash (re-prefilled
	// or restored from backup). A set, not a counter: one request can be
	// orphaned by several crashes but counts once.
	recovered map[uint64]bool

	aborted  int
	rejected int

	// queueDepth reports how many requests are waiting for prefill across
	// all instances — the admission-control signal. Systems set it before
	// arrivals start; nil disables shedding even if configured.
	queueDepth func() int
	// onAbort removes an aborted request from the owning system's
	// structures (queues, running batches, KV, transfer maps). The
	// request's Phase is already PhaseAborted when it is called.
	onAbort func(q *engine.Req)

	// Arrival streaming: one pending arrival event at a time. arrive pulls
	// nextReq from src, feeds it to submit, then schedules the successor —
	// so a million-request source never has more than one arrival event
	// pending, and arrivalFn (a method value built once) keeps the chain
	// allocation-free.
	src         workload.Source
	submit      func(q *engine.Req)
	arrivalFn   func()
	nextReq     workload.Request
	haveNext    bool
	arrivals    int
	lastArrival sim.Time
}

func newRunner(cfg Config) (*runner, error) {
	rec := metrics.NewRecorder()
	if cfg.Stream.Enabled {
		rec = metrics.NewStreamingRecorder(cfg.SLO, cfg.Stream.MaxRecords)
	}
	return newRunnerOn(sim.New(), rec, cfg)
}

// newRunnerOn builds a runner on an existing simulator and ledger, so a
// fleet replica can live on its own shard simulator and report lifecycle
// events through a message-forwarding ledger. The caller drives the
// simulation.
func newRunnerOn(s *sim.Simulator, led Ledger, cfg Config) (*runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	rec, _ := led.(*metrics.Recorder)
	return &runner{
		s:         s,
		led:       led,
		rec:       rec,
		cfg:       cfg,
		live:      make(map[uint64]*engine.Req),
		recovered: make(map[uint64]bool),
	}, nil
}

// scheduleArrivals feeds a materialized trace into the system via submit.
func (r *runner) scheduleArrivals(reqs []workload.Request, submit func(*engine.Req)) {
	r.scheduleStream(workload.NewSliceSource(reqs), submit)
}

// scheduleStream feeds a request source into the system via submit,
// scheduling only the first arrival; each arrival event then pulls its
// successor from the source on demand. Sources must yield non-decreasing
// arrival times (generator streams and validated traces do).
func (r *runner) scheduleStream(src workload.Source, submit func(*engine.Req)) {
	r.src, r.submit = src, submit
	r.arrivalFn = r.arrive
	w, ok := src.Next()
	if !ok {
		return
	}
	r.nextReq, r.haveNext = w, true
	r.s.At(w.Arrival, r.arrivalFn)
}

// arrive handles one arrival event: admit (or shed) the due request, then
// chain the next arrival.
func (r *runner) arrive() {
	w := r.nextReq
	r.arrivals++
	r.lastArrival = w.Arrival
	r.admit(w)
	if nw, ok := r.src.Next(); ok {
		r.nextReq = nw
		r.s.At(nw.Arrival, r.arrivalFn)
	} else {
		r.haveNext = false
	}
}

// admit applies the shed policy to one arrival: admission control first (a
// rejected request does no work at all), then a TTFT-deadline timer that
// aborts the request if it has produced no first token in time.
func (r *runner) admit(w workload.Request) {
	r.led.Arrive(w.ID, w.PromptTokens, w.OutputTokens, r.s.Now())
	if d := r.cfg.Shed.MaxQueueDepth; d > 0 && r.queueDepth != nil && r.queueDepth() >= d {
		r.led.Reject(w.ID, r.s.Now())
		r.rejected++
		return
	}
	q := engine.NewReq(w)
	r.live[w.ID] = q
	if dl := r.cfg.Shed.TTFTDeadline; dl > 0 {
		id := w.ID
		r.s.Schedule(dl, func() {
			if r.led.InFlight(id) && !r.led.HasFirstToken(id) {
				r.abortReq(id)
			}
		})
	}
	r.submit(q)
	if r.cfg.Tracer != nil && r.queueDepth != nil {
		r.cfg.Tracer.Counter("cluster/queue_depth", r.s.Now(), float64(r.queueDepth()))
	}
}

// abortReq terminates one in-flight request: finalize its record, flip
// its phase to PhaseAborted (so any engine pass or transfer callback
// still holding it skips it), then let the system scrub its structures.
func (r *runner) abortReq(id uint64) {
	q, ok := r.live[id]
	if !ok || !r.led.InFlight(id) {
		return
	}
	delete(r.live, id)
	r.led.Abort(id, r.s.Now(), q.Generated)
	r.aborted++
	q.Phase = engine.PhaseAborted
	if r.onAbort != nil {
		r.onAbort(q)
	}
}

// cancelFrac aborts a seeded-random fraction of the currently in-flight
// requests — the client-cancellation fault. The victim sample is drawn
// from the sorted open-id list with a dedicated PRNG so the same plan
// cancels the same requests on every system and every run.
func (r *runner) cancelFrac(frac float64, seed int64) {
	ids := r.led.OpenIDs()
	n := len(ids)
	k := int(math.Round(frac * float64(n)))
	if k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	picks := rand.New(rand.NewSource(seed)).Perm(n)[:k]
	sort.Ints(picks)
	for _, i := range picks {
		r.abortReq(ids[i])
	}
}

// markRecovered notes that a request survived an instance crash.
func (r *runner) markRecovered(q *engine.Req) { r.recovered[q.W.ID] = true }

// run drains the simulation (bounded by the horizon past the last arrival)
// and assembles the shared parts of the result. With a pull-based source
// the last arrival time is unknown up front, so the run proceeds in two
// phases: step until the arrival chain ends (every event fired in this
// phase is at or before the final arrival, exactly as a bounded run would
// fire it), then drain the tail under the configured horizon.
func (r *runner) run(system string) *Result {
	for r.haveNext {
		if !r.s.Step() {
			break
		}
	}
	r.s.Run(r.lastArrival.Add(r.cfg.Horizon))
	res := &Result{
		System:          system,
		Requests:        r.arrivals,
		Unfinished:      r.rec.Outstanding(),
		Elapsed:         r.s.Now(),
		Records:         r.rec.Completed(),
		AbortedRecords:  r.rec.Aborted(),
		RejectedRecords: r.rec.Rejected(),
		Aborted:         r.aborted,
		Rejected:        r.rejected,
		Recovered:       len(r.recovered),
	}
	if r.rec.Streaming() {
		res.Summary = r.rec.StreamSummary()
	} else {
		res.Summary = metrics.Summarize(res.Records, r.cfg.SLO)
	}
	return res
}

// recorderHooks builds the metric-recording half of an instance's hooks;
// systems extend the returned struct with their policy callbacks.
func (r *runner) recorderHooks() engine.Hooks {
	return engine.Hooks{
		OnPrefillStart: func(q *engine.Req) { r.led.PrefillStart(q.W.ID, r.s.Now()) },
		OnFirstToken:   func(q *engine.Req) { r.led.FirstToken(q.W.ID, r.s.Now()) },
		OnPrefillDone:  nil, // system-specific; nil = admit locally
		OnDecodeStart:  func(q *engine.Req) { r.led.DecodeStart(q.W.ID, r.s.Now()) },
		OnComplete: func(q *engine.Req) {
			delete(r.live, q.W.ID)
			r.led.Complete(q.W.ID, r.s.Now())
		},
	}
}

// utilization extracts Fig. 2's mean utilizations from an instance over
// the run's elapsed span.
func utilization(ins *engine.Instance, elapsed sim.Time) (compute, bw float64) {
	span := sim.Duration(elapsed)
	return ins.ComputeGauge.MeanOver(span), ins.BWGauge.MeanOver(span)
}
