package serve

import (
	"windserve/internal/engine"
	"windserve/internal/metrics"
	"windserve/internal/sim"
	"windserve/internal/workload"
)

// runner holds the state every system run shares.
type runner struct {
	s   *sim.Simulator
	rec *metrics.Recorder
	cfg Config
}

func newRunner(cfg Config) *runner {
	cfg.fillDefaults()
	return &runner{s: sim.New(), rec: metrics.NewRecorder(), cfg: cfg}
}

// scheduleArrivals feeds the trace into the system via submit.
func (r *runner) scheduleArrivals(reqs []workload.Request, submit func(*engine.Req)) {
	for _, w := range reqs {
		w := w
		r.s.At(w.Arrival, func() {
			r.rec.Arrive(w.ID, w.PromptTokens, w.OutputTokens, r.s.Now())
			submit(engine.NewReq(w))
		})
	}
}

// run drains the simulation (bounded by the horizon past the last arrival)
// and assembles the shared parts of the result.
func (r *runner) run(reqs []workload.Request, system string) *Result {
	horizon := sim.Time(0)
	if n := len(reqs); n > 0 {
		horizon = reqs[n-1].Arrival
	}
	r.s.Run(horizon.Add(r.cfg.Horizon))
	res := &Result{
		System:     system,
		Requests:   len(reqs),
		Unfinished: r.rec.Outstanding(),
		Elapsed:    r.s.Now(),
		Records:    r.rec.Completed(),
	}
	res.Summary = metrics.Summarize(res.Records, r.cfg.SLO)
	return res
}

// recorderHooks builds the metric-recording half of an instance's hooks;
// systems extend the returned struct with their policy callbacks.
func (r *runner) recorderHooks() engine.Hooks {
	return engine.Hooks{
		OnPrefillStart: func(q *engine.Req) { r.rec.PrefillStart(q.W.ID, r.s.Now()) },
		OnFirstToken:   func(q *engine.Req) { r.rec.FirstToken(q.W.ID, r.s.Now()) },
		OnPrefillDone:  nil, // system-specific; nil = admit locally
		OnDecodeStart:  func(q *engine.Req) { r.rec.DecodeStart(q.W.ID, r.s.Now()) },
		OnComplete:     func(q *engine.Req) { r.rec.Complete(q.W.ID, r.s.Now()) },
	}
}

// utilization extracts Fig. 2's mean utilizations from an instance over
// the run's elapsed span.
func utilization(ins *engine.Instance, elapsed sim.Time) (compute, bw float64) {
	span := sim.Duration(elapsed)
	return ins.ComputeGauge.MeanOver(span), ins.BWGauge.MeanOver(span)
}
