package serve

// Elastic role flipping: the drain/migrate protocol behind Replica.Flip.
// The decision to flip lives in the fleet's RoleController; this file
// only executes a flip against the shared prefill/decode cluster —
// re-routing an instance's untouched prefill queue when it turns into a
// decode, and migrating its running decode batch over the link mesh when
// it turns into a prefill. Everything here is gated on Config.Elastic;
// with it off none of this code is reachable and the static systems stay
// byte-identical.

import (
	"fmt"
	"sort"

	"windserve/internal/engine"
	"windserve/internal/sim"
	"windserve/internal/trace"
	"windserve/internal/xfer"
)

// FlipResult reports what one role flip did.
type FlipResult struct {
	// OK is false when no instance could flip (role floor, all down, or
	// elastic off).
	OK bool
	// Instance names the flipped engine.
	Instance string
	// ToDecode is the direction that was executed.
	ToDecode bool
	// Requeued counts untouched queued prefills re-routed to the
	// remaining acting prefills (flip-to-decode only).
	Requeued int
	// Migrating counts decode streams whose KV started migrating to
	// other acting decodes (flip-to-prefill only). Streams that could
	// not be placed finish on the flipped instance.
	Migrating int
}

// flip converts one instance to the other role and starts its drain.
// Selection is deterministic: instances already flipped away from their
// home role are unflipped first (restoring the static layout before
// bending it further), then the least-loaded home instance of the
// shrinking role is taken, ties to the lowest index. The flip never
// drops the acting count of the shrinking role to zero.
func (d *pd) flip(toDecode bool) FlipResult {
	if !d.cfg.Elastic {
		return FlipResult{}
	}
	if toDecode {
		return d.flipToDecode()
	}
	return d.flipToPrefill()
}

// flipToDecode converts an acting prefill into a decode instance.
func (d *pd) flipToDecode() FlipResult {
	np := len(d.prefills)
	pick, acting := -1, 0
	better := func(a, b int) bool { // prefill-space candidates
		fa, fb := a >= np, b >= np // flipped-home-decode candidates first
		if fa != fb {
			return fa
		}
		ta, tb := d.pIns(a).QueuedPrefillTokens(), d.pIns(b).QueuedPrefillTokens()
		if ta != tb {
			return ta < tb
		}
		return a < b
	}
	for i := 0; i < d.pSpace(); i++ {
		if !d.actingPrefill(i) || d.pIns(i).Down() {
			continue
		}
		acting++
		if pick < 0 || better(i, pick) {
			pick = i
		}
	}
	if pick < 0 || acting <= 1 {
		return FlipResult{}
	}
	ins := d.pIns(pick)
	if pick < np {
		d.pFlipped[pick] = true
	} else {
		d.dFlipped[pick-np] = false
	}
	// AllowPrefill stays on (sticky): requests mid-chunk or holding KV
	// here must finish their prefill; the role masks alone keep new work
	// away.
	requeued := 0
	for _, q := range ins.DrainPrefillQueue() {
		if q.Phase == engine.PhaseAborted {
			continue
		}
		d.prefillRR(q)
		requeued++
	}
	d.flips++
	return FlipResult{OK: true, Instance: ins.Name(), ToDecode: true, Requeued: requeued}
}

// flipToPrefill converts an acting decode into a prefill instance and
// migrates its running batch to the remaining acting decodes.
func (d *pd) flipToPrefill() FlipResult {
	nd := len(d.decodes)
	pick, acting := -1, 0
	better := func(a, b int) bool { // decode-space candidates
		fa, fb := a >= nd, b >= nd // flipped-home-prefill candidates first
		if fa != fb {
			return fa
		}
		ra, rb := d.dIns(a).NumRunning(), d.dIns(b).NumRunning()
		if ra != rb {
			return ra < rb
		}
		return a < b
	}
	for j := 0; j < d.dSpace(); j++ {
		if !d.actingDecode(j) || d.dIns(j).Down() {
			continue
		}
		acting++
		if pick < 0 || better(j, pick) {
			pick = j
		}
	}
	if pick < 0 || acting <= 1 {
		return FlipResult{}
	}
	ins := d.dIns(pick)
	if pick < nd {
		d.dFlipped[pick] = true
		// Sticky enable: once a home decode has prefilled anything, the
		// flag never turns off again, so a later flip back to decode
		// cannot strand a mid-chunk prefill.
		ins.SetAllowPrefill(true)
	} else {
		d.pFlipped[pick-nd] = false
	}
	migrated := d.migrateRunning(pick)
	d.flips++
	return FlipResult{OK: true, Instance: ins.Name(), Migrating: migrated}
}

// migrateRunning drains src's running batch: each stream's KV crosses
// the mesh to the acting decode with the most free KV able to hold it
// (batch order, deterministic). Streams with no viable destination keep
// decoding on src until they finish — a graceful drain, never a drop.
func (d *pd) migrateRunning(src int) int {
	ins := d.dIns(src)
	batch := append([]*engine.Req(nil), ins.Running()...)
	migrated := 0
	for _, q := range batch {
		if q.Phase != engine.PhaseDecoding || q.Migrating {
			continue
		}
		dst := d.pickMigrationDst(src, q)
		if dst < 0 {
			continue
		}
		ins.RemoveRunning(q)
		q.Migrating = true
		q.Phase = engine.PhaseDraining
		d.migrating[q.W.ID] = &flipMigration{q: q, src: src, dst: dst}
		bytes := d.kvBytes(q.Ctx())
		start := d.r.s.Now()
		lk := d.ddLink(src, dst)
		qq, dt := q, dst
		lk.Transfer(bytes, func() { d.finishMigration(qq, src, dt, start, lk) })
		migrated++
	}
	ins.Kick()
	return migrated
}

// pickMigrationDst chooses the migration destination for one stream:
// acting decodes other than src, most free KV first (ties to the lowest
// index), first one whose manager accepts the allocation.
func (d *pd) pickMigrationDst(src int, q *engine.Req) int {
	var cands []int
	for j := 0; j < d.dSpace(); j++ {
		if j == src || !d.actingDecode(j) || d.dIns(j).Down() {
			continue
		}
		cands = append(cands, j)
	}
	sort.Slice(cands, func(a, b int) bool {
		fa, fb := d.dIns(cands[a]).FreeKVTokens(), d.dIns(cands[b]).FreeKVTokens()
		if fa != fb {
			return fa > fb
		}
		return cands[a] < cands[b]
	})
	for _, j := range cands {
		if d.dIns(j).KV().Allocate(q.KVID(), q.Ctx()+1) == nil {
			return j
		}
	}
	return -1
}

// finishMigration lands one migrated stream at its destination. The
// registry's pointer identity check makes the callback idempotent
// against everything that can happen while the payload is in flight: an
// abort or replica crash scrubbed the entry (and possibly re-admitted
// the same request ID), so a stale callback must do nothing.
func (d *pd) finishMigration(q *engine.Req, src, dst int, start sim.Time, lk *xfer.Link) {
	mig, ok := d.migrating[q.W.ID]
	if !ok || mig.q != q {
		return
	}
	delete(d.migrating, q.W.ID)
	d.cfg.Tracer.Add("link "+lk.Name(), trace.KindKVTransfer, start, d.r.s.Now(),
		fmt.Sprintf("req%d migrate %d tokens", q.W.ID, q.Ctx()))
	srcIns, dstIns := d.dIns(src), d.dIns(dst)
	if q.Phase == engine.PhaseAborted {
		d.releaseAt(srcIns, q)
		d.releaseAt(dstIns, q)
		return
	}
	if dstIns.Down() || !dstIns.KV().Has(q.KVID()) {
		// Destination crashed mid-flight. The source still holds the
		// authoritative KV: resume there (even though it now acts as
		// prefill — a graceful drain beats losing the stream). If the
		// source died too, recover as a fresh prefill.
		if !srcIns.Down() && srcIns.KV().Has(q.KVID()) {
			q.Migrating = false
			srcIns.InsertRunning(q)
			return
		}
		delete(d.decodeAt, q.W.ID)
		delete(d.prefillAt, q.W.ID)
		q.PrefillDone = 0
		q.PrefixHit = 0
		q.Generated = 0
		q.Migrating = false
		q.Assist = false
		d.r.markRecovered(q)
		d.prefillRR(q)
		return
	}
	d.releaseAt(srcIns, q)
	d.decodeAt[q.W.ID] = dst
	q.Migrating = false
	dstIns.InsertRunning(q)
}

// loadSignals is the replica's elastic pressure snapshot: prompt-token
// backlog across acting prefills, stream count and total context across
// acting decodes, and the acting role counts. Plain integers so the
// fleet wire can delta-suppress reports.
func (d *pd) loadSignals() (qTokens, running, sumCtx, actP, actD int) {
	for i := 0; i < d.pSpace(); i++ {
		if !d.actingPrefill(i) {
			continue
		}
		actP++
		qTokens += d.pIns(i).QueuedPrefillTokens()
	}
	for j := 0; j < d.dSpace(); j++ {
		if !d.actingDecode(j) {
			continue
		}
		actD++
		running += d.dIns(j).NumRunning()
		for _, q := range d.dIns(j).Running() {
			sumCtx += q.Ctx()
		}
	}
	return qTokens, running, sumCtx, actP, actD
}
