package serve

import (
	"fmt"
	"testing"

	"windserve/internal/shard"
	"windserve/internal/sim"
)

func shardedCfg(t *testing.T) ShardedConfig {
	t.Helper()
	cfg := cfg13B(t)
	cfg.NumPrefill = 2
	cfg.NumDecode = 2
	return ShardedConfig{Serve: cfg}
}

// TestShardedPDByteIdentity is the single-testbed half of the tentpole
// property: one DistServe testbed partitioned across shard simulators must
// print a byte-identical Result at every shard count — including 1 — and
// in both lookahead modes.
func TestShardedPDByteIdentity(t *testing.T) {
	reqs := trace13B(3, 200, 17)
	ref := ""
	for _, mode := range []string{"adaptive", "fixed"} {
		for _, shards := range []int{1, 2, 4, 8} { // 8 clamps to the 4 instances
			cfg := shardedCfg(t)
			cfg.Shards = shards
			cfg.Lookahead = mode
			res, err := RunShardedDistServe(cfg, reqs)
			if err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%+v", res)
			if ref == "" {
				ref = got
				if res.Unfinished != 0 {
					t.Fatalf("%d unfinished requests", res.Unfinished)
				}
				if res.Summary.Requests != 200 {
					t.Fatalf("summarized %d requests, want 200", res.Summary.Requests)
				}
				continue
			}
			if got != ref {
				t.Fatalf("result diverges at %d shards (%s lookahead):\nref: %s\ngot: %s",
					shards, mode, ref, got)
			}
		}
	}
}

// TestShardedPDPhysical pins the system semantics: every request drains,
// latencies are physical, both phases see KV traffic, and the prefill→
// decode links actually moved bytes (the transfer path is exercised, not
// bypassed).
func TestShardedPDPhysical(t *testing.T) {
	cfg := shardedCfg(t)
	cfg.NetDelay = sim.Seconds(0.005)
	res, err := RunShardedDistServe(cfg, trace13B(4, 300, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "DistServe-sharded" {
		t.Errorf("system = %q", res.System)
	}
	if res.Unfinished != 0 {
		t.Fatalf("%d unfinished requests", res.Unfinished)
	}
	if res.Summary.TTFTP50 <= 0 {
		t.Errorf("TTFT p50 = %v", res.Summary.TTFTP50)
	}
	if res.Summary.TPOTP99 > sim.Seconds(1) {
		t.Errorf("TPOT p99 = %v at light load", res.Summary.TPOTP99)
	}
	if res.PrefillKV.PeakBlocks == 0 || res.DecodeKV.PeakBlocks == 0 {
		t.Error("a phase saw no KV activity")
	}
	if res.LiveKVBlocks != 0 {
		t.Errorf("%d KV blocks leaked", res.LiveKVBlocks)
	}
	if res.TransferGB <= 0 {
		t.Error("no bytes moved on the prefill→decode links")
	}
	// The wire prices coordination: TTFT must include at least the
	// submit hop plus the admission hop.
	if res.Summary.TTFTP50 < cfg.NetDelay {
		t.Errorf("TTFT p50 %v below one wire hop", res.Summary.TTFTP50)
	}
}

// TestShardedPDStats checks the out-of-band barrier counters: adaptive
// mode must execute at least as few full crossings as fixed mode on the
// same workload, and the counters must reconcile.
func TestShardedPDStats(t *testing.T) {
	reqs := trace13B(2, 120, 9)
	run := func(mode string) shard.Stats {
		cfg := shardedCfg(t)
		cfg.Shards = 4
		cfg.Lookahead = mode
		var st shard.Stats
		cfg.ShardStats = &st
		if _, err := RunShardedDistServe(cfg, reqs); err != nil {
			t.Fatal(err)
		}
		return st
	}
	ad, fx := run("adaptive"), run("fixed")
	if ad.Windows != ad.Crossings+ad.SoloWindows {
		t.Errorf("adaptive counters do not reconcile: %+v", ad)
	}
	if fx.SoloWindows != 0 {
		t.Errorf("fixed mode ran %d solo windows", fx.SoloWindows)
	}
	if ad.Crossings > fx.Crossings {
		t.Errorf("adaptive crossings %d > fixed %d", ad.Crossings, fx.Crossings)
	}
	if ad.Delivered == 0 {
		t.Error("no cross-shard envelopes delivered")
	}
}

// TestShardedPDRejectsUnsupported pins the v1 surface: knobs the sharded
// testbed does not model must fail loudly, not silently misbehave.
func TestShardedPDRejectsUnsupported(t *testing.T) {
	cases := map[string]func(*ShardedConfig){
		"shedding":  func(c *ShardedConfig) { c.Serve.Shed.MaxQueueDepth = 4 },
		"elastic":   func(c *ShardedConfig) { c.Serve.Elastic = true },
		"prefix":    func(c *ShardedConfig) { c.Serve.Prefix.Enabled = true },
		"lookahead": func(c *ShardedConfig) { c.Lookahead = "bogus" },
	}
	for name, mutate := range cases {
		cfg := shardedCfg(t)
		mutate(&cfg)
		if _, err := RunShardedDistServe(cfg, trace13B(1, 5, 1)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
