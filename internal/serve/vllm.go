package serve

import (
	"fmt"

	"windserve/internal/cluster"
	"windserve/internal/engine"
	"windserve/internal/kvcache"
	"windserve/internal/workload"
	"windserve/internal/xfer"
)

// RunVLLM simulates the co-located baseline: continuous batching with
// chunked prefill enabled (the configuration the paper compares against,
// vLLM v0.4.2 with chunked prefill). Prefill and decode jobs share hybrid
// batches, so each decode iteration pays the prefill chunks' latency —
// the interference PD systems remove.
//
// To occupy the same GPU budget as the disaggregated pair (the paper's
// linear scaling rule compares per-GPU rates), vLLM deploys
// (prefill+decode GPUs) / ColocatedPlace.GPUs() identical replicas with
// round-robin request routing.
func RunVLLM(cfg Config, reqs []workload.Request) (*Result, error) {
	return RunVLLMFrom(cfg, workload.NewSliceSource(reqs))
}

// RunVLLMFrom is RunVLLM fed from a pull-based request source.
func RunVLLMFrom(cfg Config, src workload.Source) (*Result, error) {
	if cfg.Elastic {
		return nil, fmt.Errorf("serve: vLLM colocates both phases on every instance; Elastic applies to DistServe-style clusters only")
	}
	r, err := newRunner(cfg)
	if err != nil {
		return nil, err
	}
	cfg = r.cfg

	totalGPUs := cfg.TotalGPUs()
	replicas := totalGPUs / cfg.ColocatedPlace.GPUs()
	if replicas < 1 {
		replicas = 1
	}
	specs := make([]cluster.InstanceSpec, replicas)
	for i := range specs {
		specs[i] = cluster.InstanceSpec{Role: cluster.RoleColocated, Place: cfg.ColocatedPlace}
	}
	asg, err := cluster.Plan(cfg.Topo, cfg.Model, cfg.Params, cfg.ReserveFrac, specs...)
	if err != nil {
		return nil, fmt.Errorf("serve: planning vLLM: %w", err)
	}

	at := make(map[uint64]int) // request → replica, for abort scrubbing
	instances := make([]*engine.Instance, replicas)
	kvs := make([]*kvcache.Manager, replicas)
	for i, a := range asg {
		kv, err := kvcache.New(a.KVTokens, cfg.CPUSwapTokens, cfg.BlockSize)
		if err != nil {
			return nil, err
		}
		if cfg.Prefix.Enabled {
			kv.EnablePrefixCache(cfg.Prefix.Tiered)
		}
		kvs[i] = kv
		host := xfer.NewLink(r.s, fmt.Sprintf("host-%d", i), cfg.Topo.HostPath(), xfer.DefaultEfficiency)
		hooks := r.recorderHooks() // nil OnPrefillDone: finished prompts join the local batch
		base := hooks.OnComplete
		// Scrub the routing entry on completion, not just on abort —
		// otherwise the map grows with every request ever served.
		hooks.OnComplete = func(q *engine.Req) {
			base(q)
			delete(at, q.W.ID)
		}
		ins, err := engine.NewInstance(r.s, engine.Config{
			Name: fmt.Sprintf("vllm-%d", i), CM: a.CM, KV: kv, HostLink: host, Tracer: cfg.Tracer,
			AllowPrefill: true, ChunkSize: cfg.ChunkSize, AlwaysChunk: true,
			MaxPrefillTokens: cfg.MaxPrefillTokens, MaxDecodeBatch: cfg.MaxDecodeBatch,
		}, hooks)
		if err != nil {
			return nil, err
		}
		instances[i] = ins
	}

	next := 0
	route := func(q *engine.Req) {
		// Round-robin over live replicas; with all replicas down, park on
		// the nominal one until a restore drains its queue.
		i := -1
		for k := 0; k < replicas; k++ {
			c := (next + k) % replicas
			if !instances[c].Down() {
				i = c
				break
			}
		}
		if i < 0 {
			i = next % replicas
		}
		next = i + 1
		at[q.W.ID] = i
		cfg.Decisions.AddRoute(r.s.Now(), q.W.ID, instances[i].Name(), "round-robin")
		instances[i].EnqueuePrefill(q)
	}
	r.queueDepth = func() int {
		n := 0
		for _, ins := range instances {
			n += ins.NumQueued()
		}
		return n
	}
	r.onAbort = func(q *engine.Req) {
		if i, ok := at[q.W.ID]; ok {
			instances[i].Abort(q)
			delete(at, q.W.ID)
		}
	}
	if err := installVLLMFaults(r, instances, route); err != nil {
		return nil, err
	}
	r.scheduleStream(src, route)
	res := r.run("vLLM")

	// Aggregate replica telemetry.
	var stats kvcache.Stats
	var cu, bu, stall float64
	for i, ins := range instances {
		addStats(&stats, kvs[i].Stats())
		c, b := utilization(ins, res.Elapsed)
		cu += c
		bu += b
		stall += ins.SwapStall.Seconds()
		res.LiveKVBlocks += kvs[i].UsedBlocks()
	}
	res.DecodeKV = stats
	res.PrefillKV = stats
	res.PrefillComputeUtil, res.PrefillBWUtil = cu/float64(replicas), bu/float64(replicas)
	res.DecodeComputeUtil, res.DecodeBWUtil = res.PrefillComputeUtil, res.PrefillBWUtil
	res.SwapStallSec = stall
	return res, nil
}
