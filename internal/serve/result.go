package serve

import (
	"fmt"

	"windserve/internal/kvcache"
	"windserve/internal/metrics"
	"windserve/internal/sim"
)

// Result is what one system run produces — the row material for every
// figure in the paper's evaluation.
type Result struct {
	System   string
	Requests int
	// Unfinished counts requests still in flight when the simulation hit
	// its horizon (a saturated system).
	Unfinished int
	// Aborted counts requests terminated in flight (TTFT-deadline misses
	// and client cancellations); Rejected counts arrivals shed at
	// admission. Together with completions and Unfinished they partition
	// the trace: every request ends in exactly one of the four states.
	Aborted  int
	Rejected int
	// Recovered counts requests that survived an instance crash — orphaned
	// mid-flight and then restored from a KV backup or re-prefilled.
	Recovered int
	// LiveKVBlocks is the GPU+CPU blocks still allocated across all
	// instances when the run ended; nonzero with Unfinished == 0 means a
	// leak (crash recovery failed to release something).
	LiveKVBlocks int
	Elapsed      sim.Time

	Summary metrics.Summary
	Records []*metrics.Record
	// AbortedRecords and RejectedRecords are the finalized records of
	// requests that did not complete — excluded from Summary but needed by
	// timeline export, where a truncated lifecycle is still a track.
	AbortedRecords  []*metrics.Record
	RejectedRecords []*metrics.Record

	// Per-instance allocator stats (Fig. 1a's swap counts).
	PrefillKV, DecodeKV kvcache.Stats

	// Mean utilizations over the whole run (Fig. 2). For VLLM both pairs
	// report the single co-located instance.
	PrefillComputeUtil, PrefillBWUtil float64
	DecodeComputeUtil, DecodeBWUtil   float64

	// WindServe activity counters.
	Dispatched   int     // prefills sent to the decode instance
	Rescheduled  int     // decode jobs migrated to the prefill instance
	Backups      int     // proactive KV backups taken
	AsyncXfers   int     // transfers overlapped with prefill
	TransferGB   float64 // all cross-instance traffic
	MigrationGB  float64 // decode→prefill traffic (migrations + backups)
	SwapStallSec float64 // engine time lost to swap synchronization
	// TransferRateBps is the Profiler's final link-throughput estimate
	// (bytes/second): warm-started from nominal bandwidth, then EWMA-tracked
	// over observed copies, so under a degraded link it converges below
	// nominal. WindServe only; 0 elsewhere.
	TransferRateBps float64
}

func (r *Result) String() string {
	s := r.Summary
	out := fmt.Sprintf(
		"%s: %d reqs (%d unfinished) | TTFT p50=%v p99=%v | TPOT p90=%v p99=%v | SLO %.1f%% (ttft %.1f%%, tpot %.1f%%)",
		r.System, r.Requests, r.Unfinished,
		s.TTFTP50, s.TTFTP99, s.TPOTP90, s.TPOTP99,
		100*s.Attainment, 100*s.TTFTAttainment, 100*s.TPOTAttainment)
	if r.Aborted > 0 || r.Rejected > 0 || r.Recovered > 0 {
		out += fmt.Sprintf(" | aborted %d, rejected %d, recovered %d, goodput %.2f rps",
			r.Aborted, r.Rejected, r.Recovered, s.GoodputRPS)
	}
	return out
}
