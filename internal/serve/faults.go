package serve

import (
	"windserve/internal/engine"
	"windserve/internal/fault"
)

// installPDFaults compiles the configured fault plan into hooks against a
// prefill/decode cluster. Crash recovery defaults to the pd layer's
// re-prefill-from-scratch path; WindServe overrides it with the
// backup-aware recovery through pdHooks.crashPrefill/crashDecode.
func installPDFaults(r *runner, d *pd) error {
	if r.cfg.Faults == nil {
		return nil
	}
	crashP, crashD := d.crashPrefillDefault, d.crashDecodeDefault
	if d.ph.crashPrefill != nil {
		crashP = d.ph.crashPrefill
	}
	if d.ph.crashDecode != nil {
		crashD = d.ph.crashDecode
	}
	h := fault.Hooks{
		Crash: func(role fault.Role, idx int) {
			if role == fault.RolePrefill {
				if idx < len(d.prefills) && !d.prefills[idx].Down() {
					crashP(idx)
				}
			} else if idx < len(d.decodes) && !d.decodes[idx].Down() {
				crashD(idx)
			}
		},
		Restore: func(role fault.Role, idx int) {
			if role == fault.RolePrefill {
				if idx < len(d.prefills) {
					d.prefills[idx].Restore()
				}
			} else if idx < len(d.decodes) {
				d.decodes[idx].Restore()
				// Fresh decode KV may unblock transfers queued on survivors.
				d.retryTransfers()
			}
		},
		SetSlowdown: func(role fault.Role, idx int, factor float64) {
			if role == fault.RolePrefill {
				if idx < len(d.prefills) {
					d.prefills[idx].SetSlowdown(factor)
				}
			} else if idx < len(d.decodes) {
				d.decodes[idx].SetSlowdown(factor)
			}
		},
		SetLinkDegrade: d.degradeLinks,
		Cancel:         r.cancelFrac,
	}
	return fault.Apply(r.s, r.cfg.Faults, h)
}

// installVLLMFaults maps a plan onto vLLM's replica set. With no
// prefill/decode split, both roles address replica idx%len(instances);
// link degradation has no cross-instance link to act on and is ignored.
// Crash orphans re-prefill from scratch on the replica route provides.
func installVLLMFaults(r *runner, instances []*engine.Instance, route func(q *engine.Req)) error {
	if r.cfg.Faults == nil {
		return nil
	}
	n := len(instances)
	pick := func(idx int) *engine.Instance { return instances[idx%n] }
	h := fault.Hooks{
		Crash: func(_ fault.Role, idx int) {
			ins := pick(idx)
			if ins.Down() {
				return
			}
			for _, q := range ins.Crash() {
				if q.Phase == engine.PhaseDone || q.Phase == engine.PhaseAborted {
					continue
				}
				q.PrefillDone = 0
				q.PrefixHit = 0
				q.Generated = 0
				r.markRecovered(q)
				route(q)
			}
		},
		Restore: func(_ fault.Role, idx int) { pick(idx).Restore() },
		SetSlowdown: func(_ fault.Role, idx int, factor float64) {
			pick(idx).SetSlowdown(factor)
		},
		Cancel: r.cancelFrac,
	}
	return fault.Apply(r.s, r.cfg.Faults, h)
}
