// Package perf turns the analytical per-layer costs of internal/model into
// wall-clock iteration times on a simulated GPU: a roofline model (an
// iteration is compute-bound or IO-bound per layer, whichever is worse)
// plus tensor-parallel collective costs, pipeline-parallel staging, kernel
// launch and host-side scheduling overheads.
//
// The same model plays two roles, mirroring the paper:
//
//   - It is the simulated hardware: internal/engine asks it how long each
//     batch takes and schedules the completion event.
//   - It is what the Global Scheduler's Profiler profiles: the Profiler
//     samples it at a few batch shapes and fits the paper's eqs. (1)–(2)
//     by regression, then predicts from the fit (so prediction error is
//     real, as in the paper).
//
// It also implements the stream-based disaggregation (SBD) contention
// model: a compute-bound prefill stream and an IO-bound decode stream
// sharing one GPU each lose a slice of the resource the other one uses,
// calibrated against the paper's Fig. 8.
package perf

import (
	"fmt"
	"math"
	"sync"

	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/sim"
)

// Placement is the parallelism strategy of one serving instance, written
// [TP-t, PP-p] in the paper.
type Placement struct {
	TP int // tensor-parallel degree
	PP int // pipeline-parallel degree
}

// GPUs returns the number of devices the placement occupies.
func (p Placement) GPUs() int { return p.TP * p.PP }

// Validate checks the placement against a model config.
func (p Placement) Validate(cfg model.Config) error {
	if p.TP < 1 || p.PP < 1 {
		return fmt.Errorf("perf: placement %v must have TP,PP >= 1", p)
	}
	if cfg.Heads%p.TP != 0 {
		return fmt.Errorf("perf: TP-%d does not divide %d heads", p.TP, cfg.Heads)
	}
	if cfg.Layers%p.PP != 0 {
		return fmt.Errorf("perf: PP-%d does not divide %d layers", p.PP, cfg.Layers)
	}
	return nil
}

func (p Placement) String() string { return fmt.Sprintf("TP-%d,PP-%d", p.TP, p.PP) }

// Params are the calibration constants of the simulated backend.
type Params struct {
	// ComputeEff is the fraction of peak tensor FLOPS large GEMMs achieve.
	ComputeEff float64
	// BWEff is the fraction of peak HBM bandwidth streaming kernels achieve.
	BWEff float64
	// KernelOverhead is fixed launch/dispatch time per transformer layer.
	KernelOverhead sim.Duration
	// TPCommLatency is the fixed latency of one tensor-parallel allreduce.
	TPCommLatency sim.Duration
	// CPUOverhead is per-iteration host-side scheduling cost (batching,
	// tokenization bookkeeping, Python driver in the original system).
	CPUOverhead sim.Duration
	// SBDComputeShare scales how much of the decode stream's compute
	// demand is stolen from the concurrent prefill stream (0..1).
	SBDComputeShare float64
	// SBDBWShare scales how much of the prefill stream's HBM traffic is
	// stolen from the concurrent decode stream (0..1).
	SBDBWShare float64
	// SBDTax is the fixed relative slowdown both streams pay for
	// concurrent execution (scheduler pressure, cache pollution).
	SBDTax float64
	// HybridTax is the relative overhead of a single pass that mixes
	// prefill segments and decode tokens. Pre-POD-Attention kernels
	// serialize the two attention shapes and schedule them poorly; the
	// POD-Attention paper reports 20-30% headroom on exactly these
	// batches, which is the cost vLLM-style chunked prefill and hybrid
	// batching pay here.
	HybridTax float64
}

// DefaultParams returns the calibration used for all paper experiments.
// ComputeEff/BWEff are typical of FlashAttention-2-era serving stacks;
// the SBD constants reproduce the paper's Fig. 8 ratios (decode inflates
// ~3–8%, prefill ~7–15% when co-scheduled in separate streams).
func DefaultParams() Params {
	return Params{
		ComputeEff:      0.55,
		BWEff:           0.85,
		KernelOverhead:  sim.Microseconds(20),
		TPCommLatency:   sim.Microseconds(10),
		CPUOverhead:     sim.Milliseconds(4),
		SBDComputeShare: 0.5,
		SBDBWShare:      1.0,
		SBDTax:          0.03,
		HybridTax:       0.25,
	}
}

// PrefillSeg is one sequence's contribution of new tokens to a forward
// pass: NewTokens fresh tokens attending over CtxBefore already-cached
// tokens (CtxBefore = 0 for a whole-prompt prefill; > 0 for later chunks
// of a chunked prefill).
type PrefillSeg struct {
	NewTokens int
	CtxBefore int
}

// Batch is the shape of one forward pass.
type Batch struct {
	// Prefill segments in this pass (empty for decode-only).
	Prefill []PrefillSeg
	// DecodeReqs is the number of decode requests (one token each).
	DecodeReqs int
	// DecodeSumCtx is ΣL, the total context length over decode requests.
	DecodeSumCtx int
}

// PrefillTokens returns the total number of new prefill tokens in the pass.
func (b Batch) PrefillTokens() int {
	n := 0
	for _, s := range b.Prefill {
		n += s.NewTokens
	}
	return n
}

// Tokens returns the total new tokens (prefill + decode) in the pass —
// the activation width for TP collectives.
func (b Batch) Tokens() int { return b.PrefillTokens() + b.DecodeReqs }

// Empty reports whether the batch has no work.
func (b Batch) Empty() bool { return len(b.Prefill) == 0 && b.DecodeReqs == 0 }

// PrefillOnly builds a batch with a single from-scratch prefill.
func PrefillOnly(n int) Batch {
	return Batch{Prefill: []PrefillSeg{{NewTokens: n}}}
}

// DecodeOnly builds a decode-only batch.
func DecodeOnly(reqs, sumCtx int) Batch {
	return Batch{DecodeReqs: reqs, DecodeSumCtx: sumCtx}
}

// CostModel computes iteration times for one (model, GPU, placement).
//
// IterTime results are memoized by batch signature, so the configuration
// fields must not be mutated after the first IterTime call — build a new
// model (they are cheap) instead of editing one in flight.
type CostModel struct {
	Cfg    model.Config
	GPU    gpu.Spec
	Place  Placement
	TPLink gpu.LinkSpec // link used for TP collectives and PP sends
	P      Params

	iterCache iterCache
}

// iterKey is the cacheable signature of a forward pass. Decode-only
// batches (which repeat shapes constantly — the same running set decodes
// for hundreds of iterations) and single-segment prefill/hybrid batches
// cover virtually every engine call; multi-segment prefill passes bypass
// the cache rather than hashing a slice.
type iterKey struct {
	hasPrefill           bool
	newTokens, ctxBefore int32
	decodeReqs, sumCtx   int32
}

// iterKeyFor extracts a key, reporting whether the batch is cacheable.
func iterKeyFor(b Batch) (iterKey, bool) {
	if len(b.Prefill) > 1 {
		return iterKey{}, false
	}
	k := iterKey{decodeReqs: int32(b.DecodeReqs), sumCtx: int32(b.DecodeSumCtx)}
	if len(b.Prefill) == 1 {
		k.hasPrefill = true
		k.newTokens = int32(b.Prefill[0].NewTokens)
		k.ctxBefore = int32(b.Prefill[0].CtxBefore)
	}
	return k, true
}

// iterCacheMax bounds the memo; past it the map is reset wholesale (shapes
// cluster tightly, so a full cache means the run moved to a new regime).
const iterCacheMax = 1 << 12

// iterCache memoizes IterTime. The mutex makes a model safe to share
// across the parallel experiment runner's workers, though runs normally
// build their own.
type iterCache struct {
	mu sync.Mutex
	m  map[iterKey]sim.Duration
}

func (c *iterCache) get(k iterKey) (sim.Duration, bool) {
	c.mu.Lock()
	t, ok := c.m[k]
	c.mu.Unlock()
	return t, ok
}

func (c *iterCache) put(k iterKey, t sim.Duration) {
	c.mu.Lock()
	if c.m == nil || len(c.m) >= iterCacheMax {
		c.m = make(map[iterKey]sim.Duration)
	}
	c.m[k] = t
	c.mu.Unlock()
}

// New builds a cost model, validating the placement.
func New(cfg model.Config, g gpu.Spec, place Placement, tpLink gpu.LinkSpec, p Params) (*CostModel, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := place.Validate(cfg); err != nil {
		return nil, err
	}
	if p.ComputeEff <= 0 || p.BWEff <= 0 {
		return nil, fmt.Errorf("perf: efficiencies must be positive, got %+v", p)
	}
	return &CostModel{Cfg: cfg, GPU: g, Place: place, TPLink: tpLink, P: p}, nil
}

// MustNew is New that panics on error; for tests and static tables.
func MustNew(cfg model.Config, g gpu.Spec, place Placement, tpLink gpu.LinkSpec, p Params) *CostModel {
	m, err := New(cfg, g, place, tpLink, p)
	if err != nil {
		panic(err)
	}
	return m
}

// layerCost accumulates the Table 1 FLOPs/IO of one layer for the batch.
func (m *CostModel) layerCost(b Batch) model.LayerCost {
	var total model.LayerCost
	h := float64(m.Cfg.Hidden)
	kvRatio := float64(m.Cfg.KVDim()) / h
	for _, s := range b.Prefill {
		lc := m.Cfg.PrefillLayerCost(s.NewTokens)
		if s.CtxBefore > 0 {
			// A chunk attends over its prefix too: score/value matmuls are
			// new×(ctx+new) rather than new×new, and the cached prefix KV
			// must be re-read from HBM.
			extra := 4 * float64(s.NewTokens) * float64(s.CtxBefore) * h
			lc.AttnFLOPs += extra
			lc.AttnIOBytes += 4 * float64(s.CtxBefore) * h * kvRatio
		}
		total.AttnFLOPs += lc.AttnFLOPs
		total.FFNFLOPs += lc.FFNFLOPs
		// Weight reads are shared across the whole pass; add them once
		// below rather than per segment.
	}
	if b.DecodeReqs > 0 {
		lc := m.Cfg.DecodeLayerCost(b.DecodeReqs, b.DecodeSumCtx)
		total.AttnFLOPs += lc.AttnFLOPs
		total.FFNFLOPs += lc.FFNFLOPs
		total.AttnIOBytes += lc.AttnIOBytes - m.Cfg.WeightBytesPerLayer()*attnWeightFrac(m.Cfg)
		total.FFNIOBytes += lc.FFNIOBytes - m.Cfg.WeightBytesPerLayer()*(1-attnWeightFrac(m.Cfg))
	}
	// One weight read per layer per pass, however many segments share it.
	if !b.Empty() {
		total.AttnIOBytes += m.Cfg.WeightBytesPerLayer() * attnWeightFrac(m.Cfg)
		total.FFNIOBytes += m.Cfg.WeightBytesPerLayer() * (1 - attnWeightFrac(m.Cfg))
		// Activation traffic: read+write of token activations.
		act := 4 * float64(b.Tokens()) * h
		total.AttnIOBytes += act
		total.FFNIOBytes += act
	}
	return total
}

func attnWeightFrac(c model.Config) float64 {
	attn := 2*float64(c.Hidden)*float64(c.Hidden) + 2*float64(c.Hidden)*float64(c.KVDim())
	return attn / c.ParamsPerLayer()
}

// layerTime applies the roofline to one layer's cost, dividing work across
// TP ranks, and adds launch overhead and TP collective time.
func (m *CostModel) layerTime(lc model.LayerCost, tokens int) sim.Duration {
	tp := float64(m.Place.TP)
	compute := lc.FLOPs() / tp / (m.GPU.FLOPS() * m.P.ComputeEff)
	io := lc.IOBytes() / tp / (m.GPU.BandwidthBytes() * m.P.BWEff)
	t := sim.Seconds(math.Max(compute, io)) + m.P.KernelOverhead
	if m.Place.TP > 1 {
		// Two allreduces per layer (attention output, FFN output), ring
		// algorithm: 2(t-1)/t of the activation bytes cross the link.
		bytes := float64(tokens) * float64(m.Cfg.Hidden) * model.BytesFP16
		ring := 2 * (tp - 1) / tp * bytes / m.TPLink.BytesPerSecond()
		t += 2 * (sim.Seconds(ring) + m.P.TPCommLatency)
	}
	return t
}

// IterTime returns the latency of one forward pass of the batch, executed
// as a single (possibly hybrid) kernel sequence — the paper's "Regular"
// batching. Decode requests in a hybrid batch observe this full latency,
// which is exactly the prefill-decode interference the paper measures.
func (m *CostModel) IterTime(b Batch) sim.Duration {
	if b.Empty() {
		return 0
	}
	key, cacheable := iterKeyFor(b)
	if cacheable {
		if t, ok := m.iterCache.get(key); ok {
			return t
		}
	}
	t := m.iterTime(b)
	if cacheable {
		m.iterCache.put(key, t)
	}
	return t
}

// iterTime is the uncached roofline computation behind IterTime.
func (m *CostModel) iterTime(b Batch) sim.Duration {
	lc := m.layerCost(b)
	lt := m.layerTime(lc, b.Tokens())
	total := lt * sim.Duration(m.Cfg.Layers)
	total += m.ppCommTime(b.Tokens())
	total += m.lmHeadTime(b.Tokens())
	if len(b.Prefill) > 0 && b.DecodeReqs > 0 {
		total *= sim.Duration(1 + m.P.HybridTax)
	}
	total += m.P.CPUOverhead
	return total
}

// ppCommTime is the inter-stage activation send cost for pipeline
// parallelism (PP-1 hops of token activations).
func (m *CostModel) ppCommTime(tokens int) sim.Duration {
	if m.Place.PP <= 1 {
		return 0
	}
	bytes := float64(tokens) * float64(m.Cfg.Hidden) * model.BytesFP16
	per := sim.Seconds(bytes/m.TPLink.BytesPerSecond()) + sim.Microseconds(m.TPLink.LatencyUS)
	return per * sim.Duration(m.Place.PP-1)
}

// lmHeadTime is the final-projection + sampling cost.
func (m *CostModel) lmHeadTime(tokens int) sim.Duration {
	flops := 2 * float64(tokens) * float64(m.Cfg.Hidden) * float64(m.Cfg.VocabSize)
	return sim.Seconds(flops / float64(m.Place.TP) / (m.GPU.FLOPS() * m.P.ComputeEff))
}

// PrefillTime is the latency of prefilling n prompt tokens in isolation.
func (m *CostModel) PrefillTime(n int) sim.Duration { return m.IterTime(PrefillOnly(n)) }

// DecodeTime is the latency of one decode iteration for b requests with
// total context sumCtx, in isolation.
func (m *CostModel) DecodeTime(b, sumCtx int) sim.Duration {
	return m.IterTime(DecodeOnly(b, sumCtx))
}

// SBDTimes models stream-based disaggregation: the prefill batch and the
// decode batch start concurrently in separate streams on the same instance,
// and the returned values are each stream's completion time.
//
// While both streams are in flight, the IO-bound decode stream loses the
// HBM bandwidth the prefill stream's (small) IO demand occupies, and the
// compute-bound prefill stream loses the SM time the decode stream's
// (small) compute demand occupies; both pay a fixed concurrency tax. Once
// the shorter stream drains, the survivor runs at full speed — so a tiny
// prefill only perturbs the start of a long decode pass, not all of it.
func (m *CostModel) SBDTimes(prefill Batch, decode Batch) (tp, td sim.Duration) {
	tpIso := m.IterTime(prefill)
	tdIso := m.IterTime(decode)
	if prefill.Empty() || decode.Empty() {
		return tpIso, tdIso
	}
	rp, rd := m.SBDRates(prefill, decode)
	return overlapTimes(tpIso, tdIso, rp, rd)
}

// SBDRates returns the progress rates (fraction of isolated speed, 0..1)
// of the prefill and decode streams while both are in flight.
//
// The hardware arbitrates HBM and SM resources between streams roughly
// demand-proportionally, so a stream whose bottleneck resource the other
// stream also uses slows down by (1 + otherDemand), bounded near 2× even
// when both streams want the same resource — it never starves. The
// SBD*Share knobs scale the stolen demand and SBDTax adds the fixed
// concurrency overhead; defaults reproduce the paper's Fig. 8 ratios.
func (m *CostModel) SBDRates(prefill Batch, decode Batch) (rp, rd float64) {
	if prefill.Empty() || decode.Empty() {
		return 1, 1
	}
	plc := m.layerCost(prefill)
	dlc := m.layerCost(decode)
	tpf := float64(m.Place.TP)
	// Fraction of the GPU's bandwidth the prefill stream uses while running.
	pIO := plc.IOBytes() / tpf / (m.GPU.BandwidthBytes() * m.P.BWEff)
	pTotal := math.Max(pIO, plc.FLOPs()/tpf/(m.GPU.FLOPS()*m.P.ComputeEff))
	prefillBWDemand := clamp01(pIO / pTotal * m.P.SBDBWShare)
	// Fraction of the GPU's compute the decode stream uses while running.
	dCompute := dlc.FLOPs() / tpf / (m.GPU.FLOPS() * m.P.ComputeEff)
	dTotal := math.Max(dCompute, dlc.IOBytes()/tpf/(m.GPU.BandwidthBytes()*m.P.BWEff))
	decodeComputeDemand := clamp01(dCompute / dTotal * m.P.SBDComputeShare)
	rp = 1 / ((1 + decodeComputeDemand) * (1 + m.P.SBDTax))
	rd = 1 / ((1 + prefillBWDemand) * (1 + m.P.SBDTax))
	return rp, rd
}

// SBDDecodeTime returns the duration of one decode pass while a prefill
// stream runs continuously alongside it (the engine's steady-state case,
// and the setup of the paper's Fig. 8).
func (m *CostModel) SBDDecodeTime(decode Batch, prefill Batch) sim.Duration {
	td := m.IterTime(decode)
	if prefill.Empty() {
		return td
	}
	_, rd := m.SBDRates(prefill, decode)
	return sim.Duration(td.Seconds() / rd)
}

// SBDPrefillTime returns the duration of a prefill pass while decode
// iterations run continuously alongside it in the other stream.
func (m *CostModel) SBDPrefillTime(prefill Batch, decode Batch) sim.Duration {
	tp := m.IterTime(prefill)
	if decode.Empty() {
		return tp
	}
	rp, _ := m.SBDRates(prefill, decode)
	return sim.Duration(tp.Seconds() / rp)
}

// overlapTimes finishes two jobs with isolated durations wa, wb that run
// concurrently at degraded rates ra, rb until one completes, after which
// the survivor proceeds at full rate.
func overlapTimes(wa, wb sim.Duration, ra, rb float64) (ta, tb sim.Duration) {
	// Wall time for each if contention lasted forever.
	fullA := sim.Duration(wa.Seconds() / ra)
	fullB := sim.Duration(wb.Seconds() / rb)
	if fullA <= fullB {
		// A finishes first at fullA; B has done fullA·rb of its work.
		doneB := sim.Duration(fullA.Seconds() * rb)
		return fullA, fullA + (wb - doneB)
	}
	doneA := sim.Duration(fullB.Seconds() * ra)
	return fullB + (wa - doneA), fullB
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 0.95 { // never let one stream fully starve the other
		return 0.95
	}
	return x
}

// BatchCost returns the whole-model FLOPs/IO accounting of one pass of the
// batch — used by the engines to report tensor-core and memory-bandwidth
// utilization (paper Fig. 2).
func (m *CostModel) BatchCost(b Batch) model.LayerCost {
	lc := m.layerCost(b)
	l := float64(m.Cfg.Layers)
	return model.LayerCost{
		AttnFLOPs:   lc.AttnFLOPs * l,
		FFNFLOPs:    lc.FFNFLOPs * l,
		AttnIOBytes: lc.AttnIOBytes * l,
		FFNIOBytes:  lc.FFNIOBytes * l,
	}
}

// WeightBytesPerGPU returns the model weight bytes resident on each GPU of
// the placement.
func (m *CostModel) WeightBytesPerGPU() float64 {
	return m.Cfg.WeightBytes() / float64(m.Place.GPUs())
}

// KVCapacityTokens returns how many tokens of KV cache the placement can
// hold, given the per-GPU memory budget left after weights and the
// activation reservation.
//
// reserveFrac is the fraction of device memory kept free for activations
// and fragmentation slack (0.1 is typical).
func (m *CostModel) KVCapacityTokens(reserveFrac float64) int {
	perGPU := m.GPU.MemoryBytes()*(1-reserveFrac) - m.WeightBytesPerGPU()
	if perGPU <= 0 {
		return 0
	}
	total := perGPU * float64(m.Place.GPUs())
	return int(total / m.Cfg.KVBytesPerToken())
}
