package perf

import (
	"math"
	"testing"
	"testing/quick"

	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/sim"
)

func opt13bTP2() *CostModel {
	return MustNew(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, DefaultParams())
}

func llama70b() *CostModel {
	return MustNew(model.LLaMA270B, gpu.A800, Placement{TP: 2, PP: 2}, gpu.NVLinkBridge, DefaultParams())
}

func TestPlacementValidate(t *testing.T) {
	if err := (Placement{TP: 2, PP: 1}).Validate(model.OPT13B); err != nil {
		t.Errorf("TP-2 on OPT-13B: %v", err)
	}
	if err := (Placement{TP: 0, PP: 1}).Validate(model.OPT13B); err == nil {
		t.Error("TP-0 should fail")
	}
	if err := (Placement{TP: 3, PP: 1}).Validate(model.OPT13B); err == nil {
		t.Error("TP-3 should fail (40 heads)")
	}
	if err := (Placement{TP: 2, PP: 3}).Validate(model.OPT13B); err == nil {
		t.Error("PP-3 should fail (40 layers)")
	}
	if (Placement{TP: 2, PP: 2}).GPUs() != 4 {
		t.Error("GPUs")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(model.OPT13B, gpu.A800, Placement{TP: 3, PP: 1}, gpu.NVLinkBridge, DefaultParams()); err == nil {
		t.Error("invalid placement accepted")
	}
	bad := DefaultParams()
	bad.ComputeEff = 0
	if _, err := New(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, bad); err == nil {
		t.Error("zero efficiency accepted")
	}
	badCfg := model.OPT13B
	badCfg.Layers = 0
	if _, err := New(badCfg, gpu.A800, Placement{TP: 1, PP: 1}, gpu.NVLinkBridge, DefaultParams()); err == nil {
		t.Error("invalid model accepted")
	}
}

func TestPrefillQuadraticDecodeLinear(t *testing.T) {
	m := opt13bTP2()
	// Prefill: superlinear growth in N (quadratic attention term), so
	// doubling N should more than double net compute time.
	p1 := m.PrefillTime(1024) - m.P.CPUOverhead
	p2 := m.PrefillTime(2048) - m.P.CPUOverhead
	if p2 < p1*2 {
		t.Errorf("prefill not superlinear: T(1024)=%v, T(2048)=%v", p1, p2)
	}
	// Decode: linear in ΣL after subtracting constant weight-read floor.
	d0 := m.DecodeTime(16, 0)
	d1 := m.DecodeTime(16, 16*1024)
	d2 := m.DecodeTime(16, 32*1024)
	grow1 := d1 - d0
	grow2 := d2 - d1
	if math.Abs(grow1.Seconds()-grow2.Seconds()) > 0.05*grow1.Seconds() {
		t.Errorf("decode growth not linear: +%v then +%v", grow1, grow2)
	}
}

func TestDecodeTimeNearPaperScale(t *testing.T) {
	// OPT-13B TP-2: one decode iteration at batch 16, avg ShareGPT ctx
	// (~866 tokens) should be O(10ms) — the scale the paper's 0.1 s TPOT
	// SLO (≈4× an iteration, §5.2) implies.
	m := opt13bTP2()
	d := m.DecodeTime(16, 16*866)
	if d < sim.Milliseconds(5) || d > sim.Milliseconds(40) {
		t.Errorf("OPT-13B decode iteration = %v, want 5-40ms", d)
	}
	// OPT-66B on TP-2,PP-2 should be a few× slower.
	m66 := MustNew(model.OPT66B, gpu.A800, Placement{TP: 2, PP: 2}, gpu.NVLinkBridge, DefaultParams())
	d66 := m66.DecodeTime(16, 16*866)
	if d66 < d {
		t.Errorf("OPT-66B iteration %v should exceed OPT-13B %v", d66, d)
	}
	if d66 > sim.Milliseconds(120) {
		t.Errorf("OPT-66B iteration = %v, implausibly slow", d66)
	}
}

func TestPrefillTimeNearPaperScale(t *testing.T) {
	// OPT-13B TP-2 prefill of the ShareGPT P90 prompt (1556 tokens)
	// must fit within the 0.25 s TTFT SLO (Table 4) with room to queue.
	m := opt13bTP2()
	p := m.PrefillTime(1556)
	if p > sim.Milliseconds(250) {
		t.Errorf("P90 prefill %v exceeds the whole TTFT SLO", p)
	}
	if p < sim.Milliseconds(20) {
		t.Errorf("P90 prefill %v implausibly fast", p)
	}
}

func TestHybridBatchInterference(t *testing.T) {
	// A decode iteration inside a hybrid batch with a 2048-token prefill
	// must be much slower than a decode-only iteration — the interference
	// that motivates the paper (§1).
	m := opt13bTP2()
	dAlone := m.DecodeTime(16, 16*1024)
	hybrid := m.IterTime(Batch{
		Prefill:      []PrefillSeg{{NewTokens: 2048}},
		DecodeReqs:   16,
		DecodeSumCtx: 16 * 1024,
	})
	if hybrid < dAlone*3 {
		t.Errorf("hybrid pass %v should be >=3x decode-only %v", hybrid, dAlone)
	}
}

func TestSBDMatchesFig8Shape(t *testing.T) {
	// Paper Fig. 8 (and §3.4 case study): with SBD, decode time stays
	// within a few percent of decode-only, and prefill pays a modest
	// penalty — far better than the hybrid pass for decode.
	for _, m := range []*CostModel{opt13bTP2(), llama70b()} {
		pre := PrefillOnly(2048)
		dec := DecodeOnly(16, 16*2048)
		tpIso := m.IterTime(pre)
		tdIso := m.IterTime(dec)
		tp := m.SBDPrefillTime(pre, dec)
		td := m.SBDDecodeTime(dec, pre)
		decSlow := td.Seconds() / tdIso.Seconds()
		preSlow := tp.Seconds() / tpIso.Seconds()
		if decSlow < 1.0 || decSlow > 1.25 {
			t.Errorf("%s: SBD decode slowdown = %.3f, want 1.00-1.25", m.Cfg.Name, decSlow)
		}
		if preSlow < 1.0 || preSlow > 1.35 {
			t.Errorf("%s: SBD prefill slowdown = %.3f, want 1.00-1.35", m.Cfg.Name, preSlow)
		}
		// SBD decode must beat the hybrid pass decode latency.
		hybrid := m.IterTime(Batch{Prefill: pre.Prefill, DecodeReqs: 16, DecodeSumCtx: 16 * 2048})
		if td >= hybrid {
			t.Errorf("%s: SBD decode %v not better than hybrid %v", m.Cfg.Name, td, hybrid)
		}
	}
}

func TestSBDLLaMA70BCaseStudy(t *testing.T) {
	// §3.4: LLaMA2-70B, 2048-token prefill. Paper: prefill-only ≈ 0.70 s
	// → 0.75 s under SBD (~1.07×); decode 0.33 → 0.34 s (~1.03×). Our
	// absolute times differ (their backend is less efficient) but the
	// ratios must land close.
	m := llama70b()
	pre := PrefillOnly(2048)
	dec := DecodeOnly(16, 16*2048)
	// Steady-state streams, as in the paper's measurement: decode
	// iterations run back-to-back for the prefill's whole duration.
	tp := m.SBDPrefillTime(pre, dec)
	td := m.SBDDecodeTime(dec, pre)
	preRatio := tp.Seconds() / m.IterTime(pre).Seconds()
	decRatio := td.Seconds() / m.IterTime(dec).Seconds()
	if preRatio < 1.02 || preRatio > 1.25 {
		t.Errorf("prefill SBD ratio = %.3f, want ~1.07", preRatio)
	}
	if decRatio < 1.01 || decRatio > 1.15 {
		t.Errorf("decode SBD ratio = %.3f, want ~1.03", decRatio)
	}
}

func TestSBDDegenerateBatches(t *testing.T) {
	m := opt13bTP2()
	pre := PrefillOnly(512)
	dec := DecodeOnly(8, 8*512)
	tp, td := m.SBDTimes(pre, Batch{})
	if tp != m.IterTime(pre) || td != 0 {
		t.Error("SBD with empty decode should degenerate to isolated prefill")
	}
	tp, td = m.SBDTimes(Batch{}, dec)
	if td != m.IterTime(dec) || tp != 0 {
		t.Error("SBD with empty prefill should degenerate to isolated decode")
	}
}

func TestChunkedSegmentCost(t *testing.T) {
	// A later chunk (with cached prefix) must cost more than the same
	// chunk from scratch (it attends over the prefix) but far less than
	// prefilling prefix+chunk from scratch.
	m := opt13bTP2()
	fromScratch := m.IterTime(Batch{Prefill: []PrefillSeg{{NewTokens: 512}}})
	withPrefix := m.IterTime(Batch{Prefill: []PrefillSeg{{NewTokens: 512, CtxBefore: 1536}}})
	whole := m.IterTime(Batch{Prefill: []PrefillSeg{{NewTokens: 2048}}})
	if withPrefix <= fromScratch {
		t.Errorf("chunk with prefix %v should exceed from-scratch %v", withPrefix, fromScratch)
	}
	if withPrefix >= whole {
		t.Errorf("chunk with prefix %v should be below whole prefill %v", withPrefix, whole)
	}
}

func TestChunkedPrefillSumExceedsWhole(t *testing.T) {
	// Chunked prefill trades prefill latency for decode latency: the sum
	// of chunk times exceeds the single-pass time (paper §3.4 claims ~2×
	// at chunk=512 for a 2048 prompt once decode interference is added;
	// even alone, chunking must cost extra).
	m := opt13bTP2()
	whole := m.IterTime(PrefillOnly(2048))
	var chunked sim.Duration
	for done := 0; done < 2048; done += 512 {
		chunked += m.IterTime(Batch{Prefill: []PrefillSeg{{NewTokens: 512, CtxBefore: done}}})
	}
	if chunked <= whole {
		t.Errorf("chunked total %v should exceed whole %v", chunked, whole)
	}
}

func TestTPSpeedsUpPrefill(t *testing.T) {
	p1 := MustNew(model.OPT13B, gpu.A800, Placement{TP: 1, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	p2 := opt13bTP2()
	t1 := p1.PrefillTime(2048)
	t2 := p2.PrefillTime(2048)
	if t2 >= t1 {
		t.Errorf("TP-2 prefill %v not faster than TP-1 %v", t2, t1)
	}
	// But not superlinear.
	if t2 < t1/2 {
		t.Errorf("TP-2 prefill %v superlinear vs %v", t2, t1)
	}
}

func TestPPAddsCommLatency(t *testing.T) {
	pp1 := MustNew(model.OPT66B, gpu.A800, Placement{TP: 4, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	pp2 := MustNew(model.OPT66B, gpu.A800, Placement{TP: 2, PP: 2}, gpu.NVLinkBridge, DefaultParams())
	// Same GPU count; TP-4 should give lower decode latency than TP-2,PP-2
	// (PP does not cut per-iteration latency).
	d1 := pp1.DecodeTime(16, 16*1024)
	d2 := pp2.DecodeTime(16, 16*1024)
	if d1 >= d2 {
		t.Errorf("TP-4 decode %v should beat TP-2,PP-2 %v", d1, d2)
	}
}

func TestKVCapacity(t *testing.T) {
	m := opt13bTP2()
	tokens := m.KVCapacityTokens(0.1)
	// 2×80 GB, ~26 GB weights, 90% usable → ~115 GB for KV at ~0.82 MB/token
	// → ~140k tokens. Sanity-range check.
	if tokens < 80_000 || tokens > 220_000 {
		t.Errorf("KV capacity = %d tokens, want ~140k", tokens)
	}
	// A placement that cannot even hold the weights has zero capacity.
	m70, err := New(model.LLaMA270B, gpu.A800, Placement{TP: 1, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if got := m70.KVCapacityTokens(0.1); got != 0 {
		t.Errorf("70B on one GPU KV capacity = %d, want 0", got)
	}
}

func TestBatchHelpers(t *testing.T) {
	b := Batch{Prefill: []PrefillSeg{{NewTokens: 100}, {NewTokens: 50, CtxBefore: 10}}, DecodeReqs: 4, DecodeSumCtx: 400}
	if b.PrefillTokens() != 150 {
		t.Errorf("PrefillTokens = %d", b.PrefillTokens())
	}
	if b.Tokens() != 154 {
		t.Errorf("Tokens = %d", b.Tokens())
	}
	if b.Empty() {
		t.Error("Empty")
	}
	if !(Batch{}).Empty() {
		t.Error("zero batch should be empty")
	}
	if (Batch{}).Tokens() != 0 {
		t.Error("zero batch tokens")
	}
	if m := opt13bTP2(); m.IterTime(Batch{}) != 0 {
		t.Error("empty batch should take zero time")
	}
}

// Property: iteration time is monotone under adding work.
func TestPropertyIterTimeMonotone(t *testing.T) {
	m := opt13bTP2()
	f := func(n, b, extra uint16) bool {
		nn := int(n%2048) + 1
		bb := int(b%64) + 1
		ctx := bb * (int(extra%1024) + 1)
		base := m.IterTime(Batch{Prefill: []PrefillSeg{{NewTokens: nn}}, DecodeReqs: bb, DecodeSumCtx: ctx})
		bigger := m.IterTime(Batch{Prefill: []PrefillSeg{{NewTokens: nn + 64}}, DecodeReqs: bb + 1, DecodeSumCtx: ctx + 64})
		return bigger >= base && base > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: SBD never makes either stream faster than isolated execution,
// and the extra delay each stream suffers is bounded by the overlap with
// the other stream (each stream always progresses at >= ~5% speed, so the
// overlap window is at most ~21x the other stream's isolated time).
func TestPropertySBDBounded(t *testing.T) {
	m := opt13bTP2()
	f := func(n, b uint16) bool {
		pre := PrefillOnly(int(n%2048) + 1)
		bb := int(b%32) + 1
		dec := DecodeOnly(bb, bb*512)
		tp, td := m.SBDTimes(pre, dec)
		tpIso, tdIso := m.IterTime(pre), m.IterTime(dec)
		const maxStall = 21
		return tp >= tpIso && td >= tdIso &&
			tp <= tpIso+maxStall*tdIso && td <= tdIso+maxStall*tpIso
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: under the overlap model a short prefill perturbs a long decode
// pass by at most the prefill's own (contended) duration.
func TestSBDShortPrefillSmallPenalty(t *testing.T) {
	m := opt13bTP2()
	pre := PrefillOnly(2)
	dec := DecodeOnly(15, 15*512)
	tp, td := m.SBDTimes(pre, dec)
	tdIso := m.IterTime(dec)
	if penalty := td - tdIso; penalty > tp {
		t.Errorf("decode penalty %v exceeds prefill overlap %v", penalty, tp)
	}
	if td > tdIso*3 {
		t.Errorf("tiny prefill inflated decode %v vs iso %v", td, tdIso)
	}
}

func TestWeightBytesPerGPU(t *testing.T) {
	m := llama70b()
	perGPU := m.WeightBytesPerGPU()
	if total := perGPU * 4; math.Abs(total-m.Cfg.WeightBytes()) > 1 {
		t.Error("weights should divide evenly across 4 GPUs")
	}
	// 70B FP16 = ~140 GB / 4 = ~35 GB per GPU.
	if gb := perGPU / 1e9; gb < 30 || gb > 40 {
		t.Errorf("per-GPU weights = %.1f GB, want ~35", gb)
	}
}

func TestPlacementString(t *testing.T) {
	if s := (Placement{TP: 2, PP: 1}).String(); s != "TP-2,PP-1" {
		t.Errorf("String = %q", s)
	}
}
