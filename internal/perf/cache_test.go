package perf

import (
	"testing"
)

// batchShapes is a mix of the shapes engines actually submit: decode-only
// at varying sizes, whole-prompt prefills, chunked-prefill segments, and
// hybrid passes. The multi-segment case exercises the cache bypass.
func batchShapes() []Batch {
	return []Batch{
		DecodeOnly(1, 512),
		DecodeOnly(16, 16*2048),
		DecodeOnly(64, 64*900),
		PrefillOnly(128),
		PrefillOnly(2048),
		{Prefill: []PrefillSeg{{NewTokens: 512, CtxBefore: 1024}}},
		{Prefill: []PrefillSeg{{NewTokens: 256}}, DecodeReqs: 12, DecodeSumCtx: 12 * 700},
		{Prefill: []PrefillSeg{{NewTokens: 128}, {NewTokens: 384, CtxBefore: 512}}, DecodeReqs: 4, DecodeSumCtx: 3000},
	}
}

// TestIterTimeCacheEquivalence: the memoized IterTime must return exactly
// what the uncached computation returns, on first call and on hits.
func TestIterTimeCacheEquivalence(t *testing.T) {
	for _, m := range []*CostModel{opt13bTP2(), llama70b()} {
		ref := MustNew(m.Cfg, m.GPU, m.Place, m.TPLink, m.P)
		for _, b := range batchShapes() {
			want := ref.iterTime(b)
			if got := m.IterTime(b); got != want {
				t.Errorf("%s %+v: first call %v != uncached %v", m.Cfg.Name, b, got, want)
			}
			if got := m.IterTime(b); got != want {
				t.Errorf("%s %+v: cached call %v != uncached %v", m.Cfg.Name, b, got, want)
			}
		}
	}
}

// TestIterKeyFor pins cacheability: ≤1 prefill segment is cacheable,
// more is not, and distinct shapes get distinct keys.
func TestIterKeyFor(t *testing.T) {
	if _, ok := iterKeyFor(Batch{Prefill: []PrefillSeg{{NewTokens: 1}, {NewTokens: 2}}}); ok {
		t.Error("multi-segment batch should not be cacheable")
	}
	k1, ok1 := iterKeyFor(DecodeOnly(8, 4096))
	k2, ok2 := iterKeyFor(DecodeOnly(8, 4097))
	if !ok1 || !ok2 {
		t.Fatal("decode-only batches must be cacheable")
	}
	if k1 == k2 {
		t.Error("different sumCtx collapsed to one key")
	}
	// A pure decode and a hybrid with a zero-token segment must not alias.
	k3, _ := iterKeyFor(Batch{Prefill: []PrefillSeg{{}}, DecodeReqs: 8, DecodeSumCtx: 4096})
	if k1 == k3 {
		t.Error("prefill-bearing batch aliased with decode-only key")
	}
}

// TestIterCacheReset: overflowing the cache resets it and stays correct.
func TestIterCacheReset(t *testing.T) {
	m := opt13bTP2()
	want := m.IterTime(DecodeOnly(3, 3000))
	for i := 0; i < iterCacheMax+10; i++ {
		m.IterTime(DecodeOnly(1, 100+i))
	}
	if got := m.IterTime(DecodeOnly(3, 3000)); got != want {
		t.Errorf("after cache reset: %v != %v", got, want)
	}
}

// BenchmarkIterTimeCached measures the steady-state engine pattern:
// repeated decode batches of recurring shapes hitting the memo.
func BenchmarkIterTimeCached(b *testing.B) {
	m := opt13bTP2()
	shapes := make([]Batch, 32)
	for i := range shapes {
		shapes[i] = DecodeOnly(8+i%4, (8+i%4)*(600+i*13))
	}
	for _, s := range shapes {
		m.IterTime(s)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.IterTime(shapes[i%len(shapes)])
	}
}

// BenchmarkIterTimeUncached is the same shapes through the raw roofline,
// the baseline the memo is beating.
func BenchmarkIterTimeUncached(b *testing.B) {
	m := opt13bTP2()
	shapes := make([]Batch, 32)
	for i := range shapes {
		shapes[i] = DecodeOnly(8+i%4, (8+i%4)*(600+i*13))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.iterTime(shapes[i%len(shapes)])
	}
}
