package perf

import (
	"math"
	"testing"
	"testing/quick"

	"windserve/internal/gpu"
	"windserve/internal/model"
	"windserve/internal/sim"
)

func TestOverlapTimesBothFullSpeed(t *testing.T) {
	// Rates of 1 mean no contention: completion equals isolated time.
	ta, tb := overlapTimes(2, 3, 1, 1)
	if ta != 2 || tb != 3 {
		t.Errorf("overlapTimes(1,1) = %v, %v", ta, tb)
	}
}

func TestOverlapTimesShortFirst(t *testing.T) {
	// A: 1s of work at half speed → finishes at 2s.
	// B: 10s of work at half speed until A drains (2s wall → 1s of B work
	// done), then full speed → 2 + 9 = 11s.
	ta, tb := overlapTimes(1, 10, 0.5, 0.5)
	if math.Abs(float64(ta)-2) > 1e-12 {
		t.Errorf("ta = %v, want 2", ta)
	}
	if math.Abs(float64(tb)-11) > 1e-12 {
		t.Errorf("tb = %v, want 11", tb)
	}
	// Symmetric case.
	tb2, ta2 := overlapTimes(10, 1, 0.5, 0.5)
	if ta2 != ta || tb2 != tb {
		t.Errorf("asymmetric: %v,%v vs %v,%v", ta2, tb2, ta, tb)
	}
}

// Property: overlapTimes never finishes earlier than isolated and never
// later than fully-contended execution.
func TestPropertyOverlapTimesBounds(t *testing.T) {
	f := func(a, b uint16, ra, rb uint8) bool {
		wa := sim.Duration(float64(a%1000)+1) / 1000
		wb := sim.Duration(float64(b%1000)+1) / 1000
		fa := 0.05 + 0.95*float64(ra)/255
		fb := 0.05 + 0.95*float64(rb)/255
		ta, tb := overlapTimes(wa, wb, fa, fb)
		if ta < wa || tb < wb {
			return false
		}
		return ta <= sim.Duration(wa.Seconds()/fa)+1e-12 && tb <= sim.Duration(wb.Seconds()/fb)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {0.95, 0.95}, {0.99, 0.95}, {2, 0.95},
	}
	for _, c := range cases {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestHybridTaxAppliesOnlyToMixedBatches(t *testing.T) {
	m := MustNew(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	noTax := DefaultParams()
	noTax.HybridTax = 0
	m0 := MustNew(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, noTax)

	pre := PrefillOnly(512)
	dec := DecodeOnly(8, 8*512)
	hybrid := Batch{Prefill: pre.Prefill, DecodeReqs: dec.DecodeReqs, DecodeSumCtx: dec.DecodeSumCtx}

	// Pure passes: identical with and without the tax.
	if m.IterTime(pre) != m0.IterTime(pre) {
		t.Error("hybrid tax leaked into pure prefill")
	}
	if m.IterTime(dec) != m0.IterTime(dec) {
		t.Error("hybrid tax leaked into pure decode")
	}
	// Mixed pass: taxed run strictly slower; the compute portion scales by
	// ~(1+tax) while the fixed CPU overhead does not.
	taxed, plain := m.IterTime(hybrid), m0.IterTime(hybrid)
	if taxed <= plain {
		t.Fatalf("hybrid tax not applied: %v vs %v", taxed, plain)
	}
	gotScale := (taxed - m.P.CPUOverhead).Seconds() / (plain - m0.P.CPUOverhead).Seconds()
	if math.Abs(gotScale-1.25) > 1e-9 {
		t.Errorf("hybrid scale = %v, want 1.25", gotScale)
	}
}

func TestPPCommAndLMHead(t *testing.T) {
	m := MustNew(model.OPT66B, gpu.A800, Placement{TP: 2, PP: 2}, gpu.NVLinkBridge, DefaultParams())
	if d := m.ppCommTime(0); d <= 0 {
		t.Error("PP comm should include fixed latency even for 0 tokens")
	}
	if m1, m2 := m.ppCommTime(100), m.ppCommTime(10000); m2 <= m1 {
		t.Error("PP comm should grow with tokens")
	}
	mTP := MustNew(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	if mTP.ppCommTime(1000) != 0 {
		t.Error("PP-1 should have no stage sends")
	}
	if l1, l2 := m.lmHeadTime(1), m.lmHeadTime(100); l2 <= l1 {
		t.Error("LM head should scale with tokens")
	}
}

func TestAttnWeightFrac(t *testing.T) {
	// OPT (FFN=4H, MHA): attention holds 4H² of 12H² params = 1/3.
	if f := attnWeightFrac(model.OPT13B); math.Abs(f-1.0/3) > 1e-9 {
		t.Errorf("OPT attn weight fraction = %v, want 1/3", f)
	}
	// GQA shrinks the attention share.
	if f := attnWeightFrac(model.LLaMA270B); f >= 1.0/3 {
		t.Errorf("LLaMA2-70B attn fraction = %v, should be below OPT's", f)
	}
}

func TestSBDRatesDegenerate(t *testing.T) {
	m := MustNew(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	rp, rd := m.SBDRates(Batch{}, DecodeOnly(4, 400))
	if rp != 1 || rd != 1 {
		t.Errorf("empty prefill rates = %v, %v", rp, rd)
	}
	rp, rd = m.SBDRates(PrefillOnly(100), Batch{})
	if rp != 1 || rd != 1 {
		t.Errorf("empty decode rates = %v, %v", rp, rd)
	}
}

// Property: SBD rates are in (0,1] and a bigger decode batch never speeds
// up the prefill stream.
func TestPropertySBDRates(t *testing.T) {
	m := MustNew(model.OPT13B, gpu.A800, Placement{TP: 2, PP: 1}, gpu.NVLinkBridge, DefaultParams())
	f := func(n uint16, b1, b2 uint8) bool {
		pre := PrefillOnly(int(n%2048) + 1)
		s, l := int(b1%32)+1, int(b2%32)+1
		if s > l {
			s, l = l, s
		}
		rpS, _ := m.SBDRates(pre, DecodeOnly(s, s*512))
		rpL, _ := m.SBDRates(pre, DecodeOnly(l, l*512))
		okRange := rpS > 0 && rpS <= 1 && rpL > 0 && rpL <= 1
		return okRange && rpL <= rpS+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
