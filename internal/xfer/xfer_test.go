package xfer

import (
	"math"
	"testing"
	"testing/quick"

	"windserve/internal/gpu"
	"windserve/internal/sim"
)

func TestTransferTimeMatchesPaperExample(t *testing.T) {
	// Paper §2.2: ~1.5 GB of KV over PCIe Gen4 ×16 takes ~65 ms.
	s := sim.New()
	l := NewLink(s, "pcie", gpu.PCIeGen4, DefaultEfficiency)
	d := l.TransferTime(1.5e9)
	if ms := d.Milliseconds(); ms < 55 || ms > 75 {
		t.Errorf("1.5 GB PCIe transfer = %.1f ms, want ~65 ms", ms)
	}
	// NVLink makes the same payload near-free (paper: "near-zero for
	// devices with GPU high-speed interconnects").
	nv := NewLink(s, "nvlink", gpu.NVLinkBridge, DefaultEfficiency)
	if ratio := d.Seconds() / nv.TransferTime(1.5e9).Seconds(); ratio < 5 {
		t.Errorf("PCIe/NVLink ratio = %.1f, want >5", ratio)
	}
}

func TestTransferFIFOOrdering(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "link", gpu.PCIeGen4, 1)
	var done []int
	l.Transfer(32e9, func() { done = append(done, 1) }) // 1 s
	l.Transfer(16e9, func() { done = append(done, 2) }) // 0.5 s, queued
	if !l.Busy() || l.QueueLen() != 1 {
		t.Fatalf("busy=%v queue=%d", l.Busy(), l.QueueLen())
	}
	if l.Backlog() <= 0 {
		t.Error("backlog should be positive")
	}
	s.RunAll()
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("done order = %v", done)
	}
	if l.Busy() || l.QueueLen() != 0 {
		t.Error("link not drained")
	}
	if l.BytesMoved != 48e9 {
		t.Errorf("BytesMoved = %v", l.BytesMoved)
	}
	if l.BusyTime() <= sim.Seconds(1.4) {
		t.Errorf("BusyTime = %v, want ~1.5s", l.BusyTime())
	}
}

func TestLatencyFloor(t *testing.T) {
	s := sim.New()
	l := NewLink(s, "link", gpu.LinkSpec{Kind: gpu.LinkPCIeSwitch, GBs: 32, LatencyUS: 100}, 1)
	// Even a zero-byte transfer pays the link latency.
	if d := l.TransferTime(0); math.Abs(d.Seconds()-100e-6) > 1e-12 {
		t.Errorf("zero-byte transfer = %v, want 100us", d)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	s := sim.New()
	for _, eff := range []float64{0, -1, 1.5} {
		eff := eff
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("efficiency %v accepted", eff)
				}
			}()
			NewLink(s, "bad", gpu.PCIeGen4, eff)
		}()
	}
	l := NewLink(s, "link", gpu.PCIeGen4, 1)
	defer func() {
		if recover() == nil {
			t.Error("negative size accepted")
		}
	}()
	l.TransferTime(-1)
}

func TestSpecAccessor(t *testing.T) {
	l := NewLink(sim.New(), "link", gpu.NVLinkBridge, 0.9)
	if l.Spec().Kind != gpu.LinkNVLink {
		t.Error("Spec lost")
	}
}

// Property: transfer time scales linearly with size above the latency
// floor, and queued transfers never complete out of order.
func TestPropertyLinearAndOrdered(t *testing.T) {
	f := func(a, b uint32) bool {
		s := sim.New()
		l := NewLink(s, "link", gpu.PCIeGen4, DefaultEfficiency)
		x, y := float64(a%1000)*1e6, float64(b%1000)*1e6
		lat := sim.Microseconds(gpu.PCIeGen4.LatencyUS)
		tx, ty := l.TransferTime(x)-lat, l.TransferTime(y)-lat
		sum := l.TransferTime(x+y) - lat
		if math.Abs((tx + ty - sum).Seconds()) > 1e-9 {
			return false
		}
		var order []int
		l.Transfer(y, func() { order = append(order, 1) })
		l.Transfer(x, func() { order = append(order, 2) })
		s.RunAll()
		return len(order) == 2 && order[0] == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
