// Package xfer moves KV-cache bytes across the simulated interconnect:
// cross-instance transfers after prefill (DistServe-style and WindServe's
// asynchronous overlapped variant), GPU↔host swap traffic, and the copy
// streams behind WindServe's stall-free rescheduling and KV backups.
//
// A Link is a unidirectional FIFO pipe with a protocol-efficiency factor;
// the paper's §2.2 example — ~65 ms for a 1.5 GB KV cache over PCIe Gen4
// ×16 — calibrates the default efficiency.
package xfer

import (
	"fmt"

	"windserve/internal/gpu"
	"windserve/internal/sim"
)

// DefaultEfficiency is the achieved fraction of link bandwidth for bulk
// KV copies (protocol framing, block scatter/gather). 1.5e9 bytes over
// 32 GB/s × 0.72 ≈ 65 ms, matching the paper's measurement.
const DefaultEfficiency = 0.72

// Link is a serially-shared unidirectional interconnect path.
type Link struct {
	res  *sim.FIFOResource
	spec gpu.LinkSpec
	eff  float64
	// degrade scales effective bandwidth below nominal (fault injection);
	// 0 and 1 both mean healthy.
	degrade float64

	// BytesMoved accumulates total payload for utilization reporting.
	BytesMoved float64
}

// NewLink builds a link on the simulator from a hardware spec.
func NewLink(s *sim.Simulator, name string, spec gpu.LinkSpec, efficiency float64) *Link {
	if efficiency <= 0 || efficiency > 1 {
		panic(fmt.Sprintf("xfer: efficiency %v out of (0,1]", efficiency))
	}
	return &Link{res: sim.NewFIFOResource(s, name), spec: spec, eff: efficiency}
}

// Spec returns the underlying hardware path.
func (l *Link) Spec() gpu.LinkSpec { return l.spec }

// Name returns the link's trace/debug name.
func (l *Link) Name() string { return l.res.Name() }

// NominalRate returns the healthy effective throughput in bytes/second
// (raw bandwidth × protocol efficiency, ignoring any injected
// degradation) — the Profiler's transfer-rate warm start.
func (l *Link) NominalRate() float64 { return l.spec.BytesPerSecond() * l.eff }

// SetDegradation scales the link to frac of nominal bandwidth (fault
// injection: congestion, a failing NIC). frac of 1 restores full speed;
// values outside (0,1] are clamped to healthy. Transfers already in
// flight keep their original durations — only new submissions see the
// changed rate.
func (l *Link) SetDegradation(frac float64) {
	if frac <= 0 || frac >= 1 {
		frac = 1
	}
	l.degrade = frac
}

// Degradation returns the current bandwidth fraction (1 when healthy).
func (l *Link) Degradation() float64 {
	if l.degrade <= 0 || l.degrade > 1 {
		return 1
	}
	return l.degrade
}

// TransferTime returns the service time for a payload of the given size,
// excluding queuing.
func (l *Link) TransferTime(bytes float64) sim.Duration {
	if bytes < 0 {
		panic("xfer: negative transfer size")
	}
	bw := l.spec.BytesPerSecond() * l.eff * l.Degradation()
	return sim.Seconds(bytes/bw) + sim.Microseconds(l.spec.LatencyUS)
}

// Transfer enqueues a copy; done fires when the payload has fully crossed
// the link (after any queued transfers ahead of it).
func (l *Link) Transfer(bytes float64, done func()) {
	l.BytesMoved += bytes
	l.res.Submit(l.TransferTime(bytes), done)
}

// AccountBytes records payload that crossed the link outside the FIFO
// queue. Engine-synchronous copies (swap stalls, prefix-cache restores)
// block the engine for TransferTime instead of submitting to the queue;
// crediting their bytes here keeps BytesMoved a complete traffic count.
func (l *Link) AccountBytes(bytes float64) {
	if bytes < 0 {
		panic("xfer: negative transfer size")
	}
	l.BytesMoved += bytes
}

// Busy reports whether a transfer is in flight.
func (l *Link) Busy() bool { return l.res.Busy() }

// QueueLen returns the number of waiting transfers.
func (l *Link) QueueLen() int { return l.res.QueueLen() }

// Backlog returns the total queued (not yet started) service time.
func (l *Link) Backlog() sim.Duration { return l.res.Backlog() }

// BusyTime returns cumulative occupied time, for utilization metrics.
func (l *Link) BusyTime() sim.Duration { return l.res.BusyTime }
