// Package workload generates the request streams WindServe is evaluated
// on. The paper uses two real datasets — ShareGPT (chatbot) and LongBench
// (summarization) — whose token-length statistics it reports in Table 2.
// We have neither dataset, so this package provides synthetic samplers
// whose prompt/output length distributions match Table 2's average, median
// and P90 by construction (empirical quantile curves with log-linear
// interpolation), plus Poisson arrivals as in the paper's §5.1.
//
// Traces can be saved to and replayed from JSON so that every system under
// comparison sees the identical request stream.
package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"windserve/internal/sim"
)

// Request is one inference request: a prompt to prefill and a number of
// output tokens to decode. Output length is how long the request *will*
// run — known to the workload generator (and used by the simulated engine
// to decide when EOS happens) but never revealed to the schedulers.
type Request struct {
	ID           uint64   `json:"id"`
	Arrival      sim.Time `json:"arrival"`
	PromptTokens int      `json:"prompt_tokens"`
	OutputTokens int      `json:"output_tokens"`

	// Session/prefix identity, set by scenario sources (zero elsewhere;
	// omitempty keeps legacy traces byte-identical). SessionID groups the
	// turns of one conversation for affinity routing. PrefixGroup names
	// the content-hash chain the prompt's first PrefixTokens tokens
	// belong to: two requests with the same group share KV blocks over
	// min(PrefixTokens) when prefix caching is on (see internal/kvcache).
	SessionID    uint64 `json:"session_id,omitempty"`
	PrefixGroup  uint64 `json:"prefix_group,omitempty"`
	PrefixTokens int    `json:"prefix_tokens,omitempty"`
}

// TotalTokens is the request's final context length.
func (r Request) TotalTokens() int { return r.PromptTokens + r.OutputTokens }

// QuantileKnot anchors the inverse CDF: a fraction U of samples fall at or
// below Value.
type QuantileKnot struct {
	U     float64
	Value float64
}

// LengthDist samples token counts from a piecewise log-linear inverse CDF
// through its knots. Median and P90 match the knots exactly; knot placement
// tunes the mean.
type LengthDist struct {
	Name  string
	Knots []QuantileKnot
}

// Validate checks knots are a proper inverse CDF over [0,1].
func (d LengthDist) Validate() error {
	if len(d.Knots) < 2 {
		return fmt.Errorf("workload: %s needs >= 2 knots", d.Name)
	}
	if d.Knots[0].U != 0 || d.Knots[len(d.Knots)-1].U != 1 {
		return fmt.Errorf("workload: %s knots must span u=0..1", d.Name)
	}
	for i := 1; i < len(d.Knots); i++ {
		if d.Knots[i].U <= d.Knots[i-1].U {
			return fmt.Errorf("workload: %s knot u values must increase", d.Name)
		}
		if d.Knots[i].Value < d.Knots[i-1].Value {
			return fmt.Errorf("workload: %s knot values must be non-decreasing", d.Name)
		}
	}
	if d.Knots[0].Value <= 0 {
		return fmt.Errorf("workload: %s values must be positive for log interpolation", d.Name)
	}
	return nil
}

// Quantile returns the token count at quantile u in [0,1].
func (d LengthDist) Quantile(u float64) int {
	if u <= 0 {
		return int(math.Round(d.Knots[0].Value))
	}
	if u >= 1 {
		return int(math.Round(d.Knots[len(d.Knots)-1].Value))
	}
	i := sort.Search(len(d.Knots), func(i int) bool { return d.Knots[i].U >= u })
	if i == 0 {
		i = 1
	}
	a, b := d.Knots[i-1], d.Knots[i]
	frac := (u - a.U) / (b.U - a.U)
	v := math.Exp(math.Log(a.Value) + frac*(math.Log(b.Value)-math.Log(a.Value)))
	n := int(math.Round(v))
	if n < 1 {
		n = 1
	}
	return n
}

// Sample draws one token count.
func (d LengthDist) Sample(rng *rand.Rand) int { return d.Quantile(rng.Float64()) }

// ExpectedMean returns the analytic mean of the distribution (the integral
// of the inverse CDF), used by tests to verify Table 2 agreement.
func (d LengthDist) ExpectedMean() float64 {
	total := 0.0
	for i := 1; i < len(d.Knots); i++ {
		a, b := d.Knots[i-1], d.Knots[i]
		w := b.U - a.U
		if a.Value == b.Value {
			total += w * a.Value
			continue
		}
		// Mean of exp(lerp(ln a, ln b)) over the segment.
		total += w * (b.Value - a.Value) / math.Log(b.Value/a.Value)
	}
	return total
}

// Dataset pairs a prompt and an output length distribution.
type Dataset struct {
	Name   string
	Prompt LengthDist
	Output LengthDist
	// MaxContext truncates prompt+output to the serving model's limit.
	MaxContext int
}

// ShareGPT approximates the ShareGPT dataset of Table 2:
// prompt avg 768.2 / median 695 / P90 1556; output avg 195.9 / median 87 /
// P90 518. Contexts are capped at OPT's 2048-token limit.
func ShareGPT() Dataset {
	return Dataset{
		Name: "ShareGPT",
		Prompt: LengthDist{Name: "sharegpt-prompt", Knots: []QuantileKnot{
			{0, 8}, {0.25, 350}, {0.5, 695}, {0.75, 1200}, {0.9, 1556}, {0.99, 1950}, {1, 2040},
		}},
		Output: LengthDist{Name: "sharegpt-output", Knots: []QuantileKnot{
			{0, 1}, {0.5, 87}, {0.9, 518}, {0.99, 1200}, {1, 1500},
		}},
		MaxContext: 2048,
	}
}

// LongBench approximates the LongBench dataset of Table 2:
// prompt avg 2890.4 / median 2887 / P90 3792; output avg 97.4 / median 12 /
// P90 369. Contexts are capped at LLaMA2's 4096-token limit.
func LongBench() Dataset {
	return Dataset{
		Name: "LongBench",
		Prompt: LengthDist{Name: "longbench-prompt", Knots: []QuantileKnot{
			{0, 1800}, {0.25, 2400}, {0.5, 2887}, {0.75, 3350}, {0.9, 3792}, {0.99, 4050}, {1, 4090},
		}},
		// The 0.9 knot sits above the target P90 of 369 because the 4096
		// context cap clips outputs drawn alongside long prompts; the
		// post-cap P90 lands on Table 2's value.
		Output: LengthDist{Name: "longbench-output", Knots: []QuantileKnot{
			{0, 1}, {0.5, 12}, {0.9, 415}, {0.99, 700}, {1, 1200},
		}},
		MaxContext: 4096,
	}
}

// Fixed returns a degenerate dataset where every request has exactly the
// given prompt and output lengths — useful for microbenchmarks and tests.
func Fixed(prompt, output, maxContext int) Dataset {
	return Dataset{
		Name: fmt.Sprintf("fixed-%dx%d", prompt, output),
		Prompt: LengthDist{Name: "fixed-prompt", Knots: []QuantileKnot{
			{0, float64(prompt)}, {1, float64(prompt)},
		}},
		Output: LengthDist{Name: "fixed-output", Knots: []QuantileKnot{
			{0, float64(output)}, {1, float64(output)},
		}},
		MaxContext: maxContext,
	}
}

// Mixture blends two datasets: each request draws its lengths from A with
// probability WeightA, else from B — the "mixed downstream workloads"
// scenario that motivates disaggregated serving (chatbot and summarization
// sharing one cluster).
func Mixture(a, b Dataset, weightA float64, maxContext int) Dataset {
	if weightA < 0 || weightA > 1 {
		panic("workload: mixture weight out of [0,1]")
	}
	return Dataset{
		Name:       fmt.Sprintf("mix(%.0f%% %s, %.0f%% %s)", 100*weightA, a.Name, 100*(1-weightA), b.Name),
		Prompt:     mixtureDist(a.Prompt, b.Prompt, weightA),
		Output:     mixtureDist(a.Output, b.Output, weightA),
		MaxContext: maxContext,
	}
}

// mixtureDist approximates the mixture of two quantile-knot distributions
// by sampling both on a fine grid of the mixture CDF. The resulting knot
// set reproduces the mixture's quantiles to grid resolution.
func mixtureDist(a, b LengthDist, wa float64) LengthDist {
	// Evaluate the mixture CDF on a merged value grid, then invert.
	const gridN = 256
	var knots []QuantileKnot
	lo := math.Min(a.Knots[0].Value, b.Knots[0].Value)
	hi := math.Max(a.Knots[len(a.Knots)-1].Value, b.Knots[len(b.Knots)-1].Value)
	cdf := func(d LengthDist, v float64) float64 {
		// Invert the quantile function numerically (it is monotone).
		loU, hiU := 0.0, 1.0
		for i := 0; i < 30; i++ {
			mid := (loU + hiU) / 2
			if float64(d.Quantile(mid)) <= v {
				loU = mid
			} else {
				hiU = mid
			}
		}
		return (loU + hiU) / 2
	}
	prevU := -1.0
	for i := 0; i <= gridN; i++ {
		v := lo + (hi-lo)*float64(i)/gridN
		u := wa*cdf(a, v) + (1-wa)*cdf(b, v)
		if i == 0 {
			u = 0
		}
		if i == gridN {
			u = 1
		}
		if u <= prevU {
			continue
		}
		prevU = u
		knots = append(knots, QuantileKnot{U: u, Value: math.Max(v, 1)})
	}
	if knots[len(knots)-1].U != 1 {
		knots = append(knots, QuantileKnot{U: 1, Value: hi})
	}
	return LengthDist{Name: fmt.Sprintf("mix-%s-%s", a.Name, b.Name), Knots: knots}
}

// ArrivalProcess produces inter-arrival gaps.
type ArrivalProcess interface {
	// NextGap returns the time until the next arrival.
	NextGap(rng *rand.Rand) sim.Duration
	Name() string
}

// PoissonArrivals models a Poisson process at the given rate (req/s), the
// arrival model of the paper's evaluation.
type PoissonArrivals struct{ Rate float64 }

// NextGap draws an exponential inter-arrival gap.
func (p PoissonArrivals) NextGap(rng *rand.Rand) sim.Duration {
	return sim.Seconds(rng.ExpFloat64() / p.Rate)
}

// Name implements ArrivalProcess.
func (p PoissonArrivals) Name() string { return fmt.Sprintf("poisson(%.2f)", p.Rate) }

// UniformArrivals spaces requests exactly 1/Rate apart (no burstiness).
type UniformArrivals struct{ Rate float64 }

// NextGap returns the constant gap.
func (u UniformArrivals) NextGap(rng *rand.Rand) sim.Duration {
	return sim.Seconds(1 / u.Rate)
}

// Name implements ArrivalProcess.
func (u UniformArrivals) Name() string { return fmt.Sprintf("uniform(%.2f)", u.Rate) }

// BurstyArrivals is a hyperexponential process: with probability BurstProb
// the gap shrinks by BurstFactor, modelling flash crowds. Mean rate stays
// Rate.
type BurstyArrivals struct {
	Rate        float64
	BurstProb   float64 // fraction of arrivals in bursts
	BurstFactor float64 // how much tighter burst gaps are (>1)
}

// NextGap draws from the two-phase hyperexponential.
func (b BurstyArrivals) NextGap(rng *rand.Rand) sim.Duration {
	// Scale the two phases so the mean gap remains 1/Rate.
	slowScale := (1 - b.BurstProb*(1-1/b.BurstFactor)) // normalizer
	mean := 1 / b.Rate
	if rng.Float64() < b.BurstProb {
		return sim.Seconds(rng.ExpFloat64() * mean / b.BurstFactor / slowScale)
	}
	return sim.Seconds(rng.ExpFloat64() * mean / slowScale)
}

// Name implements ArrivalProcess.
func (b BurstyArrivals) Name() string {
	return fmt.Sprintf("bursty(%.2f,p=%.2f,f=%.1f)", b.Rate, b.BurstProb, b.BurstFactor)
}

// Generator materializes request traces.
type Generator struct {
	Dataset Dataset
	Process ArrivalProcess
	rng     *rand.Rand
	nextID  uint64
	clock   sim.Time
}

// NewGenerator builds a deterministic generator from a seed.
func NewGenerator(ds Dataset, p ArrivalProcess, seed int64) *Generator {
	return &Generator{Dataset: ds, Process: p, rng: rand.New(rand.NewSource(seed)), nextID: 1}
}

// Next produces the next request in the trace.
func (g *Generator) Next() Request {
	g.clock = g.clock.Add(g.Process.NextGap(g.rng))
	prompt := g.Dataset.Prompt.Sample(g.rng)
	output := g.Dataset.Output.Sample(g.rng)
	if g.Dataset.MaxContext > 0 {
		if prompt > g.Dataset.MaxContext-1 {
			prompt = g.Dataset.MaxContext - 1
		}
		if prompt+output > g.Dataset.MaxContext {
			output = g.Dataset.MaxContext - prompt
		}
	}
	if output < 1 {
		output = 1
	}
	r := Request{ID: g.nextID, Arrival: g.clock, PromptTokens: prompt, OutputTokens: output}
	g.nextID++
	return r
}

// Source yields requests one at a time in non-decreasing arrival order.
// It is the streaming counterpart of a materialized []Request trace: the
// serve loop pulls the next request only when the previous arrival event
// fires, so a million-request run never holds the full trace in memory.
type Source interface {
	// Next returns the next request, or ok=false when the stream ends.
	Next() (Request, bool)
}

// SliceSource replays a materialized trace as a Source.
type SliceSource struct {
	reqs []Request
	i    int
}

// NewSliceSource wraps an existing trace.
func NewSliceSource(reqs []Request) *SliceSource { return &SliceSource{reqs: reqs} }

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.i >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

// genSource streams n requests from a generator.
type genSource struct {
	g         *Generator
	remaining int
}

func (s *genSource) Next() (Request, bool) {
	if s.remaining <= 0 {
		return Request{}, false
	}
	s.remaining--
	return s.g.Next(), true
}

// genForSource streams requests until one arrives past end; that request
// is consumed and discarded, exactly as GenerateFor always did, so the
// generator's state after draining matches the materialized path.
type genForSource struct {
	g    *Generator
	end  sim.Time
	done bool
}

func (s *genForSource) Next() (Request, bool) {
	if s.done {
		return Request{}, false
	}
	r := s.g.Next()
	if r.Arrival > s.end {
		s.done = true
		return Request{}, false
	}
	return r, true
}

// Source returns a stream of the generator's next n requests. Draining it
// yields the identical sequence Generate(n) materializes for the same
// generator state.
func (g *Generator) Source(n int) Source { return &genSource{g: g, remaining: n} }

// SourceFor returns a stream of requests arriving within d of virtual time.
func (g *Generator) SourceFor(d sim.Duration) Source {
	return &genForSource{g: g, end: sim.Time(0).Add(d)}
}

// RateEstimator is implemented by arrival processes that know their
// long-run mean rate (req/s); generators use it to size preallocations.
type RateEstimator interface{ MeanRate() float64 }

// MeanRate implements RateEstimator.
func (p PoissonArrivals) MeanRate() float64 { return p.Rate }

// MeanRate implements RateEstimator.
func (u UniformArrivals) MeanRate() float64 { return u.Rate }

// MeanRate implements RateEstimator. Bursty gaps are normalized so the
// long-run mean rate stays Rate regardless of the burst parameters.
func (b BurstyArrivals) MeanRate() float64 { return b.Rate }

// Generate produces n requests in arrival order.
func (g *Generator) Generate(n int) []Request {
	out := make([]Request, 0, n)
	src := g.Source(n)
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// GenerateFor produces requests until the trace spans d of virtual time.
// The expected count (span times the process's mean rate) sizes the slice
// up front, so long traces don't pay repeated append regrowth.
func (g *Generator) GenerateFor(d sim.Duration) []Request {
	hint := 16
	if re, ok := g.Process.(RateEstimator); ok {
		hint += int(d.Seconds() * re.MeanRate())
	}
	out := make([]Request, 0, hint)
	src := g.SourceFor(d)
	for {
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Concat joins two traces into one request stream: b's arrivals are
// shifted to begin gap after a's last arrival and all IDs are renumbered
// sequentially. Use it to build load-shift scenarios (e.g. a rate step).
func Concat(a, b []Request, gap sim.Duration) []Request {
	out := make([]Request, 0, len(a)+len(b))
	out = append(out, a...)
	var offset sim.Time
	if len(a) > 0 {
		offset = a[len(a)-1].Arrival.Add(gap)
	}
	var bStart sim.Time
	if len(b) > 0 {
		bStart = b[0].Arrival
	}
	for _, r := range b {
		r.Arrival = offset.Add(r.Arrival.Sub(bStart))
		out = append(out, r)
	}
	for i := range out {
		out[i].ID = uint64(i + 1)
	}
	return out
}

// SaveTrace writes requests as a JSON array.
func SaveTrace(w io.Writer, reqs []Request) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(reqs)
}

// TraceReader streams a JSON trace one request at a time, validating
// arrival ordering as it goes, without ever materializing the array.
// Follow the bufio.Scanner convention: iterate Next until it returns
// ok=false, then check Err.
type TraceReader struct {
	dec     *json.Decoder
	err     error
	started bool
	done    bool
	idx     int
	last    sim.Time
}

// NewTraceReader wraps a JSON trace stream.
func NewTraceReader(r io.Reader) *TraceReader {
	return &TraceReader{dec: json.NewDecoder(r)}
}

// Next implements Source. It returns ok=false at end of trace or on the
// first malformed entry; Err distinguishes the two.
func (t *TraceReader) Next() (Request, bool) {
	if t.done || t.err != nil {
		return Request{}, false
	}
	if !t.started {
		t.started = true
		tok, err := t.dec.Token()
		if err != nil {
			t.fail(err)
			return Request{}, false
		}
		if d, ok := tok.(json.Delim); !ok || d != '[' {
			t.err = fmt.Errorf("workload: decoding trace: expected JSON array, got %v", tok)
			return Request{}, false
		}
	}
	if !t.dec.More() {
		if _, err := t.dec.Token(); err != nil { // consume the closing ']'
			t.fail(err)
			return Request{}, false
		}
		t.done = true
		return Request{}, false
	}
	var r Request
	if err := t.dec.Decode(&r); err != nil {
		t.fail(err)
		return Request{}, false
	}
	if t.idx > 0 && r.Arrival < t.last {
		t.err = fmt.Errorf("workload: trace not sorted by arrival at index %d", t.idx)
		return Request{}, false
	}
	t.last = r.Arrival
	t.idx++
	return r, true
}

func (t *TraceReader) fail(err error) {
	t.err = fmt.Errorf("workload: decoding trace: %w", err)
}

// Err returns the first error encountered, if any. A truncated stream
// (including one cut mid-line) surfaces here as an unexpected-EOF decode
// error rather than silently ending the trace.
func (t *TraceReader) Err() error { return t.err }

// LoadTrace reads a JSON trace and validates ordering. It is a thin
// adapter over TraceReader that materializes the stream.
func LoadTrace(r io.Reader) ([]Request, error) {
	tr := NewTraceReader(r)
	var reqs []Request
	for {
		q, ok := tr.Next()
		if !ok {
			break
		}
		reqs = append(reqs, q)
	}
	if err := tr.Err(); err != nil {
		return nil, err
	}
	return reqs, nil
}

// TraceStats summarizes a trace the way Table 2 does.
type TraceStats struct {
	Count                              int
	PromptAvg, PromptMedian, PromptP90 float64
	OutputAvg, OutputMedian, OutputP90 float64
	DurationSec                        float64
	RatePerSec                         float64
}

// Summarize computes Table 2-style statistics for a trace.
func Summarize(reqs []Request) TraceStats {
	if len(reqs) == 0 {
		return TraceStats{}
	}
	prompts := make([]float64, len(reqs))
	outputs := make([]float64, len(reqs))
	for i, r := range reqs {
		prompts[i] = float64(r.PromptTokens)
		outputs[i] = float64(r.OutputTokens)
	}
	sort.Float64s(prompts)
	sort.Float64s(outputs)
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	pct := func(xs []float64, p float64) float64 {
		idx := p / 100 * float64(len(xs)-1)
		lo := int(idx)
		if lo >= len(xs)-1 {
			return xs[len(xs)-1]
		}
		frac := idx - float64(lo)
		return xs[lo]*(1-frac) + xs[lo+1]*frac
	}
	dur := float64(reqs[len(reqs)-1].Arrival - reqs[0].Arrival)
	st := TraceStats{
		Count:        len(reqs),
		PromptAvg:    mean(prompts),
		PromptMedian: pct(prompts, 50),
		PromptP90:    pct(prompts, 90),
		OutputAvg:    mean(outputs),
		OutputMedian: pct(outputs, 50),
		OutputP90:    pct(outputs, 90),
		DurationSec:  dur,
	}
	if dur > 0 {
		st.RatePerSec = float64(len(reqs)) / dur
	}
	return st
}
