package workload

import (
	"strings"
	"testing"

	"windserve/internal/sim"
)

// TestSourceMatchesGenerate pins the tentpole's bit-identical contract:
// pulling requests lazily from a Source yields the exact sequence
// Generate materializes for the same seed.
func TestSourceMatchesGenerate(t *testing.T) {
	const n = 2000
	want := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 8}, 42).Generate(n)
	src := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 8}, 42).Source(n)
	for i := 0; i < n; i++ {
		r, ok := src.Next()
		if !ok {
			t.Fatalf("source ended early at %d", i)
		}
		if r != want[i] {
			t.Fatalf("request %d: source %+v != generate %+v", i, r, want[i])
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("source yielded more than n requests")
	}
}

// TestSourceForMatchesGenerateFor does the same for duration-bounded
// streams, including the trailing discarded draw that advances the rng.
func TestSourceForMatchesGenerateFor(t *testing.T) {
	const span = sim.Duration(120)
	g1 := NewGenerator(LongBench(), PoissonArrivals{Rate: 3}, 7)
	want := g1.GenerateFor(span)
	g2 := NewGenerator(LongBench(), PoissonArrivals{Rate: 3}, 7)
	src := g2.SourceFor(span)
	var got []Request
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, r)
	}
	if len(got) != len(want) {
		t.Fatalf("source yielded %d requests, generate %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d differs: %+v != %+v", i, got[i], want[i])
		}
	}
	// Generator state must match too: the next draw after draining is the
	// same either way.
	if a, b := g1.Next(), g2.Next(); a != b {
		t.Errorf("post-drain generator state diverged: %+v != %+v", a, b)
	}
}

func TestSliceSource(t *testing.T) {
	reqs := NewGenerator(ShareGPT(), UniformArrivals{Rate: 2}, 1).Generate(5)
	src := NewSliceSource(reqs)
	for i := 0; i < 5; i++ {
		r, ok := src.Next()
		if !ok || r != reqs[i] {
			t.Fatalf("slice source at %d: got %+v ok=%v", i, r, ok)
		}
	}
	if _, ok := src.Next(); ok {
		t.Fatal("slice source did not end")
	}
	if _, ok := NewSliceSource(nil).Next(); ok {
		t.Fatal("empty slice source yielded a request")
	}
}

// TestGenerateForPrealloc checks the ExpectedMean-derived capacity hint
// actually lands near the final length (no repeated regrowth, no gross
// overallocation).
func TestGenerateForPrealloc(t *testing.T) {
	g := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 10}, 42)
	out := g.GenerateFor(300) // expect ~3000 requests
	if c := cap(out); c < len(out)/2 || c > 4*len(out) {
		t.Errorf("cap %d far from len %d: hint not effective", c, len(out))
	}
}

func TestLoadTraceTruncated(t *testing.T) {
	full := `[{"id":1,"arrival":0.5,"prompt_tokens":10,"output_tokens":2},
{"id":2,"arrival":1.5,"prompt_tokens":20,"output_tokens":3}]`
	// Cut mid-record: decoding must fail, not silently return a prefix.
	for _, cut := range []int{len(full) / 3, len(full) - 1} {
		if _, err := LoadTrace(strings.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated trace at %d bytes loaded without error", cut)
		}
	}
	if _, err := LoadTrace(strings.NewReader("")); err == nil {
		t.Error("empty input loaded without error")
	}
}

func TestLoadTraceNonNumericField(t *testing.T) {
	bad := `[{"id":1,"arrival":"soon","prompt_tokens":10,"output_tokens":2}]`
	if _, err := LoadTrace(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric arrival loaded without error")
	}
	bad = `[{"id":1,"arrival":0.5,"prompt_tokens":"many","output_tokens":2}]`
	if _, err := LoadTrace(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric prompt_tokens loaded without error")
	}
}

func TestLoadTraceNotArray(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader(`{"id":1}`)); err == nil {
		t.Error("non-array trace loaded without error")
	}
}

// TestTraceReaderStreams round-trips a saved trace through the streaming
// reader and checks unsorted input fails at the offending index.
func TestTraceReaderStreams(t *testing.T) {
	reqs := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 5}, 9).Generate(50)
	var buf strings.Builder
	if err := SaveTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	tr := NewTraceReader(strings.NewReader(buf.String()))
	i := 0
	for {
		r, ok := tr.Next()
		if !ok {
			break
		}
		if r != reqs[i] {
			t.Fatalf("streamed request %d differs", i)
		}
		i++
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(reqs) {
		t.Fatalf("streamed %d requests, want %d", i, len(reqs))
	}

	unsorted := `[{"id":1,"arrival":5},{"id":2,"arrival":1}]`
	tr = NewTraceReader(strings.NewReader(unsorted))
	for {
		if _, ok := tr.Next(); !ok {
			break
		}
	}
	if tr.Err() == nil {
		t.Error("unsorted trace streamed without error")
	}
}
