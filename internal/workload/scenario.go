package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"windserve/internal/sim"
)

// A Scenario is a named workload preset over the package's Table-2-style
// samplers and pull-based Sources, shaped after a production traffic
// class. Scenarios that model conversations or tool loops emit correlated
// *sessions* — multiple requests sharing a SessionID whose prompts grow
// by accumulated context, with PrefixGroup/PrefixTokens describing the
// span a prefix cache could reuse. Single-shot scenarios set prefix
// identity where real sharing exists (RAG corpus documents, a shared
// system template) and leave it zero elsewhere.
//
// Sources are deterministic per (n, rate, seed) and yield requests in
// non-decreasing arrival order, so scenario runs are byte-identical and
// replayable like every other trace in the repo.
type Scenario struct {
	// Name is the ScenarioByName key, e.g. "chat".
	Name string
	// Desc is a one-line description for usage text and docs.
	Desc string

	build func(n int, rate float64, seed int64) Source
}

// Source returns a pull-based source of n requests with mean arrival
// rate req/s, deterministic in seed.
func (sc Scenario) Source(n int, rate float64, seed int64) Source {
	return sc.build(n, rate, seed)
}

// scenarios is the library, in display order.
var scenarios = []Scenario{
	{
		Name: "chat",
		Desc: "multi-turn conversations sharing a per-session context chain (system prompt + history)",
		build: func(n int, rate float64, seed int64) Source {
			return newSessionSource(n, seed, sessionCfg{
				// Sessions arrive so that turns average out to rate.
				process:   PoissonArrivals{Rate: rate / 5.0},
				turnsMin:  2,
				turnsMax:  8,
				gapMean:   12, // think time between turns, seconds
				sysMin:    160,
				sysMax:    480,
				userDist:  chatTurnDist(),
				outDist:   chatReplyDist(),
				maxCtx:    2048,
				groupBase: 1 << 32,
			})
		},
	},
	{
		Name: "rag",
		Desc: "retrieval-augmented: long prompts over a small shared document corpus, short answers",
		build: func(n int, rate float64, seed int64) Source {
			return newRAGSource(n, rate, seed)
		},
	},
	{
		Name: "agentic",
		Desc: "tool loops: bursty correlated sessions of short steps over fast-growing context",
		build: func(n int, rate float64, seed int64) Source {
			return newSessionSource(n, seed, sessionCfg{
				process:   BurstyArrivals{Rate: rate / 6.0, BurstProb: 0.3, BurstFactor: 8},
				turnsMin:  3,
				turnsMax:  10,
				gapMean:   1.5, // tool round-trips, not human think time
				sysMin:    256,
				sysMax:    768,
				userDist:  toolResultDist(),
				outDist:   toolCallDist(),
				maxCtx:    4096,
				groupBase: 2 << 32,
			})
		},
	},
	{
		Name: "reasoning",
		Desc: "short prompts, very long chains of thought: decode-side pressure, no shared prefixes",
		build: func(n int, rate float64, seed int64) Source {
			g := NewGenerator(Dataset{
				Name: "reasoning",
				Prompt: LengthDist{Name: "reasoning-prompt", Knots: []QuantileKnot{
					{0, 16}, {0.5, 96}, {0.9, 256}, {1, 512},
				}},
				Output: LengthDist{Name: "reasoning-output", Knots: []QuantileKnot{
					{0, 256}, {0.5, 1024}, {0.9, 2400}, {1, 3500},
				}},
				MaxContext: 4096,
			}, PoissonArrivals{Rate: rate}, seed)
			return g.Source(n)
		},
	},
	{
		Name: "diurnal",
		Desc: "ShareGPT traffic on a compressed day cycle with a flash crowd at the afternoon peak",
		build: func(n int, rate float64, seed int64) Source {
			g := NewGenerator(ShareGPT(), newDiurnalArrivals(rate), seed)
			return g.Source(n)
		},
	},
	{
		Name: "mixshift",
		Desc: "square-wave swings between prompt-heavy and decode-heavy traffic with a flash crowd — the shifting phase mix role flipping exploits",
		build: func(n int, rate float64, seed int64) Source {
			return newMixShiftSource(n, rate, seed)
		},
	},
}

// Scenarios returns the scenario library in display order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarios))
	copy(out, scenarios)
	return out
}

// ScenarioNames returns the valid ScenarioByName keys, sorted.
func ScenarioNames() []string {
	names := make([]string, len(scenarios))
	for i, sc := range scenarios {
		names[i] = sc.Name
	}
	sort.Strings(names)
	return names
}

// ScenarioByName looks up a scenario by its name.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range scenarios {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("workload: unknown scenario %q (want one of %v)", name, ScenarioNames())
}

// Per-turn length distributions. Chat turns are much shorter than
// ShareGPT's whole-conversation prompts: the bulk of each prompt is
// history, which the session source accumulates explicitly.

func chatTurnDist() LengthDist {
	return LengthDist{Name: "chat-turn", Knots: []QuantileKnot{
		{0, 8}, {0.5, 80}, {0.9, 300}, {1, 700},
	}}
}

func chatReplyDist() LengthDist {
	return LengthDist{Name: "chat-reply", Knots: []QuantileKnot{
		{0, 16}, {0.5, 140}, {0.9, 420}, {1, 900},
	}}
}

func toolResultDist() LengthDist {
	return LengthDist{Name: "tool-result", Knots: []QuantileKnot{
		{0, 32}, {0.5, 200}, {0.9, 600}, {1, 1200},
	}}
}

func toolCallDist() LengthDist {
	return LengthDist{Name: "tool-call", Knots: []QuantileKnot{
		{0, 16}, {0.5, 60}, {0.9, 200}, {1, 400},
	}}
}

// sessionCfg parameterizes a correlated-session source.
type sessionCfg struct {
	process            ArrivalProcess // session (not request) arrivals
	turnsMin, turnsMax int            // uniform turns per session
	gapMean            float64        // mean seconds between a reply and the next turn
	sysMin, sysMax     int            // shared system-prompt span, uniform
	userDist           LengthDist     // new tokens added by each turn
	outDist            LengthDist     // reply tokens per turn
	maxCtx             int
	groupBase          uint64 // namespace for PrefixGroup/SessionID values
}

// session is one in-flight conversation.
type session struct {
	sid       uint64
	ctx       int // accumulated context = next turn's cached prefix
	turnsLeft int
}

// turnEvent is a pending next-turn in the source's event heap.
type turnEvent struct {
	at  sim.Time
	seq uint64 // tie-break: FIFO among equal times
	s   *session
}

// sessionSource merges session starts (from the arrival process) with
// pending next-turns (a min-heap on arrival time) into one non-decreasing
// request stream. Turn t of a session carries PrefixTokens equal to the
// session's accumulated context, so with prefix caching on, each turn
// re-pays only its new tokens.
type sessionSource struct {
	cfg       sessionCfg
	rng       *rand.Rand
	remaining int
	nextID    uint64
	nextSID   uint64
	clock     sim.Time // next session start
	seq       uint64
	heap      []turnEvent
}

func newSessionSource(n int, seed int64, cfg sessionCfg) *sessionSource {
	src := &sessionSource{
		cfg: cfg, rng: rand.New(rand.NewSource(seed)),
		remaining: n, nextID: 1, nextSID: 1,
	}
	src.clock = sim.Time(0).Add(cfg.process.NextGap(src.rng))
	return src
}

// Next implements Source.
func (s *sessionSource) Next() (Request, bool) {
	if s.remaining <= 0 {
		return Request{}, false
	}
	// Start sessions until the earliest pending turn precedes the next
	// session start; then emit that turn.
	for len(s.heap) == 0 || s.heap[0].at > s.clock {
		sess := &session{
			sid:       s.cfg.groupBase + s.nextSID,
			ctx:       s.cfg.sysMin + s.rng.Intn(s.cfg.sysMax-s.cfg.sysMin+1),
			turnsLeft: s.cfg.turnsMin + s.rng.Intn(s.cfg.turnsMax-s.cfg.turnsMin+1),
		}
		s.nextSID++
		s.push(turnEvent{at: s.clock, s: sess})
		s.clock = s.clock.Add(s.cfg.process.NextGap(s.rng))
	}
	ev := s.pop()
	sess := ev.s

	user := s.cfg.userDist.Sample(s.rng)
	out := s.cfg.outDist.Sample(s.rng)
	prefix := sess.ctx
	prompt := sess.ctx + user
	if prompt > s.cfg.maxCtx-1 {
		prompt = s.cfg.maxCtx - 1
	}
	if prefix > prompt-1 {
		prefix = prompt - 1
	}
	if prompt+out > s.cfg.maxCtx {
		out = s.cfg.maxCtx - prompt
	}
	if out < 1 {
		out = 1
	}
	r := Request{
		ID: s.nextID, Arrival: ev.at,
		PromptTokens: prompt, OutputTokens: out,
		SessionID:    sess.sid,
		PrefixGroup:  sess.sid, // one content chain per conversation
		PrefixTokens: prefix,
	}
	s.nextID++
	s.remaining--

	sess.ctx = prompt + out
	sess.turnsLeft--
	// The next turn arrives a think-time after this reply would land;
	// sessions whose context approaches the window simply end.
	if sess.turnsLeft > 0 && sess.ctx < s.cfg.maxCtx-s.cfg.maxCtx/8 {
		gap := sim.Seconds(s.cfg.gapMean * s.rng.ExpFloat64())
		s.push(turnEvent{at: ev.at.Add(gap), s: sess})
	}
	return r, true
}

func (s *sessionSource) push(ev turnEvent) {
	s.seq++
	ev.seq = s.seq
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !turnLess(s.heap[i], s.heap[p]) {
			break
		}
		s.heap[i], s.heap[p] = s.heap[p], s.heap[i]
		i = p
	}
}

func (s *sessionSource) pop() turnEvent {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && turnLess(s.heap[l], s.heap[m]) {
			m = l
		}
		if r < last && turnLess(s.heap[r], s.heap[m]) {
			m = r
		}
		if m == i {
			break
		}
		s.heap[i], s.heap[m] = s.heap[m], s.heap[i]
		i = m
	}
	return top
}

func turnLess(a, b turnEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// ragSource issues single-shot retrieval-augmented requests: each prompt
// is a shared corpus document (the cacheable span) plus a fresh query,
// with popularity skewed toward the head of the corpus so hot documents
// stay cached and cold ones exercise eviction/demotion.
type ragSource struct {
	rng       *rand.Rand
	process   ArrivalProcess
	remaining int
	nextID    uint64
	clock     sim.Time
	docTokens [ragCorpusDocs]int
}

const (
	ragCorpusDocs = 24
	ragGroupBase  = 3 << 32
)

func newRAGSource(n int, rate float64, seed int64) *ragSource {
	src := &ragSource{
		rng: rand.New(rand.NewSource(seed)), process: PoissonArrivals{Rate: rate},
		remaining: n, nextID: 1,
	}
	for i := range src.docTokens {
		// Document lengths 600–2200 tokens, fixed per document.
		src.docTokens[i] = 600 + src.rng.Intn(1601)
	}
	return src
}

// Next implements Source.
func (s *ragSource) Next() (Request, bool) {
	if s.remaining <= 0 {
		return Request{}, false
	}
	s.clock = s.clock.Add(s.process.NextGap(s.rng))
	// Popularity ~ u²: the head of the corpus takes most of the traffic.
	doc := int(float64(ragCorpusDocs) * math.Pow(s.rng.Float64(), 2))
	if doc >= ragCorpusDocs {
		doc = ragCorpusDocs - 1
	}
	query := 60 + s.rng.Intn(341)
	out := 20 + s.rng.Intn(141)
	const maxCtx = 4096
	prompt := s.docTokens[doc] + query
	if prompt > maxCtx-1 {
		prompt = maxCtx - 1
	}
	if prompt+out > maxCtx {
		out = maxCtx - prompt
	}
	r := Request{
		ID: s.nextID, Arrival: s.clock,
		PromptTokens: prompt, OutputTokens: out,
		PrefixGroup:  ragGroupBase + uint64(doc),
		PrefixTokens: s.docTokens[doc],
	}
	s.nextID++
	s.remaining--
	return r, true
}

// diurnalArrivals modulates a Poisson process with a compressed day
// cycle (sinusoidal, one hour per "day") plus a flash crowd — a window
// at the afternoon peak where the instantaneous rate multiplies. The
// process integrates its own virtual clock from the gaps it hands out,
// so it stays a drop-in ArrivalProcess.
type diurnalArrivals struct {
	base float64
	t    float64 // seconds of virtual time already emitted
}

const (
	diurnalPeriod    = 3600.0 // one compressed day
	diurnalSwing     = 0.45   // rate swings base*(1±swing)
	flashCrowdStart  = 0.55   // fraction of the period
	flashCrowdLen    = 0.06
	flashCrowdFactor = 5.0
	diurnalRateFloor = 0.05
)

func newDiurnalArrivals(rate float64) *diurnalArrivals {
	return &diurnalArrivals{base: rate}
}

// rateAt is the instantaneous rate at phase t.
func (d *diurnalArrivals) rateAt(t float64) float64 {
	phase := math.Mod(t, diurnalPeriod) / diurnalPeriod
	r := d.base * (1 + diurnalSwing*math.Sin(2*math.Pi*(phase-0.25)))
	if phase >= flashCrowdStart && phase < flashCrowdStart+flashCrowdLen {
		r *= flashCrowdFactor
	}
	if r < d.base*diurnalRateFloor {
		r = d.base * diurnalRateFloor
	}
	return r
}

// NextGap draws an exponential gap at the current instantaneous rate.
func (d *diurnalArrivals) NextGap(rng *rand.Rand) sim.Duration {
	gap := rng.ExpFloat64() / d.rateAt(d.t)
	d.t += gap
	return sim.Seconds(gap)
}

// Name implements ArrivalProcess.
func (d *diurnalArrivals) Name() string {
	return fmt.Sprintf("diurnal(%.2f,flash x%.0f)", d.base, flashCrowdFactor)
}

// MeanRate implements RateEstimator (the sinusoid averages out; the
// flash crowd adds ~flashCrowdLen·(factor-1)).
func (d *diurnalArrivals) MeanRate() float64 {
	return d.base * (1 + flashCrowdLen*(flashCrowdFactor-1))
}

// mixShiftSource alternates the request *shape* on a square wave: phases
// of long prompts with near-trivial outputs (all the work is prefill)
// swap with phases of short prompts and long generations (all the work
// is decode), plus one flash crowd inside a decode-heavy phase. The
// aggregate rate barely moves — what shifts is which phase the tokens
// land on, so a static prefill:decode split is wrong half the time. This
// is the workload elastic role flipping is built for, and the ext-elastic
// exhibit runs it.
type mixShiftSource struct {
	rng       *rand.Rand
	rate      float64
	remaining int
	nextID    uint64
	t         float64 // seconds of virtual time already emitted
}

const (
	// mixShiftPhaseSec is the half-cycle: prompt-heavy for one phase,
	// decode-heavy for the next.
	mixShiftPhaseSec = 120.0
	// The flash crowd hits inside the first decode-heavy phase
	// (t in [mixShiftFlashAt, mixShiftFlashAt+mixShiftFlashLen)).
	mixShiftFlashAt     = 180.0
	mixShiftFlashLen    = 20.0
	mixShiftFlashFactor = 4.0
	mixShiftMaxCtx      = 4096
)

func newMixShiftSource(n int, rate float64, seed int64) *mixShiftSource {
	return &mixShiftSource{
		rng: rand.New(rand.NewSource(seed)), rate: rate,
		remaining: n, nextID: 1,
	}
}

func mixShiftPromptHeavy() (prompt, output LengthDist) {
	return LengthDist{Name: "mixshift-doc", Knots: []QuantileKnot{
			{0, 512}, {0.5, 1400}, {0.9, 2600}, {1, 3600},
		}}, LengthDist{Name: "mixshift-summary", Knots: []QuantileKnot{
			{0, 8}, {0.5, 24}, {0.9, 64}, {1, 128},
		}}
}

func mixShiftDecodeHeavy() (prompt, output LengthDist) {
	return LengthDist{Name: "mixshift-question", Knots: []QuantileKnot{
			{0, 24}, {0.5, 96}, {0.9, 256}, {1, 512},
		}}, LengthDist{Name: "mixshift-generation", Knots: []QuantileKnot{
			{0, 128}, {0.5, 420}, {0.9, 900}, {1, 1400},
		}}
}

// Next implements Source.
func (s *mixShiftSource) Next() (Request, bool) {
	if s.remaining <= 0 {
		return Request{}, false
	}
	r := s.rate
	if s.t >= mixShiftFlashAt && s.t < mixShiftFlashAt+mixShiftFlashLen {
		r *= mixShiftFlashFactor
	}
	s.t += s.rng.ExpFloat64() / r
	pd, od := mixShiftPromptHeavy()
	if int(s.t/mixShiftPhaseSec)%2 == 1 {
		pd, od = mixShiftDecodeHeavy()
	}
	prompt := pd.Sample(s.rng)
	out := od.Sample(s.rng)
	if prompt > mixShiftMaxCtx-1 {
		prompt = mixShiftMaxCtx - 1
	}
	if prompt+out > mixShiftMaxCtx {
		out = mixShiftMaxCtx - prompt
	}
	req := Request{
		ID: s.nextID, Arrival: sim.Time(s.t),
		PromptTokens: prompt, OutputTokens: out,
	}
	s.nextID++
	s.remaining--
	return req, true
}
