package workload

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"windserve/internal/sim"
)

func within(got, want, relTol float64) bool {
	return math.Abs(got-want) <= relTol*want
}

func TestDistValidate(t *testing.T) {
	good := ShareGPT().Prompt
	if err := good.Validate(); err != nil {
		t.Errorf("ShareGPT prompt: %v", err)
	}
	bad := []LengthDist{
		{Name: "one-knot", Knots: []QuantileKnot{{0, 1}}},
		{Name: "no-zero", Knots: []QuantileKnot{{0.1, 1}, {1, 2}}},
		{Name: "no-one", Knots: []QuantileKnot{{0, 1}, {0.9, 2}}},
		{Name: "non-monotone-u", Knots: []QuantileKnot{{0, 1}, {0.5, 2}, {0.5, 3}, {1, 4}}},
		{Name: "decreasing-v", Knots: []QuantileKnot{{0, 5}, {0.5, 2}, {1, 9}}},
		{Name: "zero-value", Knots: []QuantileKnot{{0, 0}, {1, 9}}},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%s: expected validation error", d.Name)
		}
	}
}

func TestQuantileEndpointsAndMonotone(t *testing.T) {
	d := ShareGPT().Prompt
	if d.Quantile(0) != 8 || d.Quantile(-1) != 8 {
		t.Errorf("Q(0) = %d", d.Quantile(0))
	}
	if d.Quantile(1) != 2040 || d.Quantile(2) != 2040 {
		t.Errorf("Q(1) = %d", d.Quantile(1))
	}
	prev := 0
	for u := 0.0; u <= 1.0; u += 0.01 {
		v := d.Quantile(u)
		if v < prev {
			t.Fatalf("quantile not monotone at u=%.2f: %d < %d", u, v, prev)
		}
		prev = v
	}
}

// The headline fidelity test: sampled statistics must match the paper's
// Table 2 within tight tolerances.
func TestTable2Statistics(t *testing.T) {
	cases := []struct {
		ds               Dataset
		pAvg, pMed, pP90 float64
		oAvg, oMed, oP90 float64
	}{
		{ShareGPT(), 768.2, 695, 1556, 195.9, 87, 518},
		{LongBench(), 2890.4, 2887, 3792, 97.4, 12, 369},
	}
	for _, c := range cases {
		g := NewGenerator(c.ds, UniformArrivals{Rate: 1}, 42)
		reqs := g.Generate(60000)
		st := Summarize(reqs)
		if !within(st.PromptAvg, c.pAvg, 0.08) {
			t.Errorf("%s prompt avg = %.1f, want %.1f ±8%%", c.ds.Name, st.PromptAvg, c.pAvg)
		}
		if !within(st.PromptMedian, c.pMed, 0.05) {
			t.Errorf("%s prompt median = %.1f, want %.1f ±5%%", c.ds.Name, st.PromptMedian, c.pMed)
		}
		if !within(st.PromptP90, c.pP90, 0.05) {
			t.Errorf("%s prompt P90 = %.1f, want %.1f ±5%%", c.ds.Name, st.PromptP90, c.pP90)
		}
		if !within(st.OutputAvg, c.oAvg, 0.12) {
			t.Errorf("%s output avg = %.1f, want %.1f ±12%%", c.ds.Name, st.OutputAvg, c.oAvg)
		}
		if math.Abs(st.OutputMedian-c.oMed) > math.Max(0.06*c.oMed, 2) {
			t.Errorf("%s output median = %.1f, want %.1f", c.ds.Name, st.OutputMedian, c.oMed)
		}
		if !within(st.OutputP90, c.oP90, 0.08) {
			t.Errorf("%s output P90 = %.1f, want %.1f ±8%%", c.ds.Name, st.OutputP90, c.oP90)
		}
	}
}

func TestExpectedMeanCloseToTable2(t *testing.T) {
	if m := ShareGPT().Prompt.ExpectedMean(); !within(m, 768.2, 0.08) {
		t.Errorf("ShareGPT prompt analytic mean = %.1f", m)
	}
	if m := LongBench().Prompt.ExpectedMean(); !within(m, 2890.4, 0.05) {
		t.Errorf("LongBench prompt analytic mean = %.1f", m)
	}
	if m := LongBench().Output.ExpectedMean(); !within(m, 97.4, 0.12) {
		t.Errorf("LongBench output analytic mean = %.1f", m)
	}
}

func TestContextCap(t *testing.T) {
	g := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 10}, 7)
	for _, r := range g.Generate(20000) {
		if r.TotalTokens() > 2048 {
			t.Fatalf("request %d exceeds context: %d+%d", r.ID, r.PromptTokens, r.OutputTokens)
		}
		if r.PromptTokens < 1 || r.OutputTokens < 1 {
			t.Fatalf("request %d has empty prompt/output", r.ID)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	g := NewGenerator(Fixed(100, 10, 2048), PoissonArrivals{Rate: 8}, 3)
	reqs := g.Generate(40000)
	st := Summarize(reqs)
	if !within(st.RatePerSec, 8, 0.05) {
		t.Errorf("empirical rate = %.2f, want 8 ±5%%", st.RatePerSec)
	}
}

func TestUniformArrivals(t *testing.T) {
	g := NewGenerator(Fixed(100, 10, 2048), UniformArrivals{Rate: 4}, 3)
	reqs := g.Generate(100)
	for i := 1; i < len(reqs); i++ {
		gap := float64(reqs[i].Arrival - reqs[i-1].Arrival)
		if math.Abs(gap-0.25) > 1e-9 {
			t.Fatalf("gap = %v, want 0.25", gap)
		}
	}
}

func TestBurstyArrivalsKeepsMeanRate(t *testing.T) {
	b := BurstyArrivals{Rate: 5, BurstProb: 0.3, BurstFactor: 5}
	g := NewGenerator(Fixed(100, 10, 2048), b, 11)
	reqs := g.Generate(60000)
	st := Summarize(reqs)
	if !within(st.RatePerSec, 5, 0.06) {
		t.Errorf("bursty empirical rate = %.2f, want 5 ±6%%", st.RatePerSec)
	}
	// Burstiness: coefficient of variation of gaps must exceed Poisson's 1.
	var gaps []float64
	for i := 1; i < len(reqs); i++ {
		gaps = append(gaps, float64(reqs[i].Arrival-reqs[i-1].Arrival))
	}
	mean, ss := 0.0, 0.0
	for _, x := range gaps {
		mean += x
	}
	mean /= float64(len(gaps))
	for _, x := range gaps {
		ss += (x - mean) * (x - mean)
	}
	cv := math.Sqrt(ss/float64(len(gaps))) / mean
	if cv <= 1.05 {
		t.Errorf("bursty CV = %.2f, want > 1.05", cv)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 4}, 99).Generate(500)
	b := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 4}, 99).Generate(500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 4}, 100).Generate(500)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateFor(t *testing.T) {
	g := NewGenerator(Fixed(10, 5, 100), UniformArrivals{Rate: 2}, 1)
	reqs := g.GenerateFor(sim.Seconds(10))
	if len(reqs) < 18 || len(reqs) > 21 {
		t.Errorf("got %d requests in 10s at 2/s, want ~20", len(reqs))
	}
	for _, r := range reqs {
		if r.Arrival > 10 {
			t.Fatalf("request at %v beyond horizon", r.Arrival)
		}
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	reqs := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 4}, 5).Generate(50)
	var buf bytes.Buffer
	if err := SaveTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(reqs) {
		t.Fatalf("round trip lost requests: %d vs %d", len(got), len(reqs))
	}
	for i := range got {
		if got[i] != reqs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestLoadTraceRejectsUnsorted(t *testing.T) {
	bad := []Request{{ID: 1, Arrival: 5}, {ID: 2, Arrival: 1}}
	var buf bytes.Buffer
	if err := SaveTrace(&buf, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(&buf); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	if _, err := LoadTrace(bytes.NewBufferString("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	st := Summarize(nil)
	if st.Count != 0 || st.RatePerSec != 0 {
		t.Errorf("empty summary = %+v", st)
	}
}

func TestFixedDataset(t *testing.T) {
	g := NewGenerator(Fixed(128, 32, 2048), UniformArrivals{Rate: 1}, 1)
	for _, r := range g.Generate(10) {
		if r.PromptTokens != 128 || r.OutputTokens != 32 {
			t.Fatalf("fixed dataset produced %d/%d", r.PromptTokens, r.OutputTokens)
		}
	}
}

func TestMixtureStats(t *testing.T) {
	m := Mixture(ShareGPT(), LongBench(), 0.5, 4096)
	if err := m.Prompt.Validate(); err != nil {
		t.Fatalf("mixture prompt dist invalid: %v", err)
	}
	if err := m.Output.Validate(); err != nil {
		t.Fatalf("mixture output dist invalid: %v", err)
	}
	g := NewGenerator(m, UniformArrivals{Rate: 1}, 42)
	st := Summarize(g.Generate(40000))
	// Mixture mean = weighted component means: 0.5×768.2 + 0.5×2890.4 ≈ 1829.
	if !within(st.PromptAvg, 1829, 0.08) {
		t.Errorf("mixture prompt avg = %.1f, want ~1829", st.PromptAvg)
	}
	// The mixture must be bimodal-ish: a ShareGPT-scale 25th percentile
	// and a LongBench-scale 90th.
	if st.PromptP90 < 3200 {
		t.Errorf("mixture P90 = %.0f, want LongBench-scale", st.PromptP90)
	}
	// Weight extremes degenerate to the components.
	pure := Mixture(ShareGPT(), LongBench(), 1, 2048)
	gp := NewGenerator(pure, UniformArrivals{Rate: 1}, 42)
	stp := Summarize(gp.Generate(30000))
	if !within(stp.PromptAvg, 768.2, 0.10) {
		t.Errorf("weight-1 mixture prompt avg = %.1f, want ShareGPT's", stp.PromptAvg)
	}
}

func TestConcat(t *testing.T) {
	a := NewGenerator(Fixed(100, 10, 2048), UniformArrivals{Rate: 2}, 1).Generate(4)
	b := NewGenerator(Fixed(200, 20, 2048), UniformArrivals{Rate: 2}, 2).Generate(3)
	out := Concat(a, b, sim.Seconds(1))
	if len(out) != 7 {
		t.Fatalf("len = %d", len(out))
	}
	for i, r := range out {
		if r.ID != uint64(i+1) {
			t.Fatalf("IDs not renumbered: %v", out)
		}
		if i > 0 && out[i].Arrival < out[i-1].Arrival {
			t.Fatalf("arrivals not ordered at %d", i)
		}
	}
	// Phase 2 starts exactly gap after phase 1's last arrival.
	if gap := out[4].Arrival.Sub(out[3].Arrival); gap != sim.Seconds(1) {
		t.Errorf("gap = %v, want 1s", gap)
	}
	// Lengths preserved per phase.
	if out[0].PromptTokens != 100 || out[4].PromptTokens != 200 {
		t.Error("phase lengths mixed up")
	}
	// Degenerate cases.
	if got := Concat(nil, b, 0); len(got) != 3 || got[0].ID != 1 {
		t.Errorf("Concat(nil, b) = %v", got)
	}
	if got := Concat(a, nil, 0); len(got) != 4 {
		t.Errorf("Concat(a, nil) = %v", got)
	}
}

func TestMixtureRejectsBadWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mixture(ShareGPT(), LongBench(), 1.5, 4096)
}

// Property: arrivals are strictly ordered and IDs sequential.
func TestPropertyTraceOrdered(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		k := int(n%100) + 2
		reqs := NewGenerator(ShareGPT(), PoissonArrivals{Rate: 4}, seed).Generate(k)
		if !sort.SliceIsSorted(reqs, func(i, j int) bool { return reqs[i].Arrival < reqs[j].Arrival }) {
			return false
		}
		for i, r := range reqs {
			if r.ID != uint64(i+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: samples always fall inside the knot range.
func TestPropertySampleInRange(t *testing.T) {
	d := LongBench().Output
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := d.Sample(rng)
		if v < 1 || v > 1200 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}
