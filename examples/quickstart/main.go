// Quickstart: serve one ShareGPT-like trace with all three systems and
// compare the paper's headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"windserve"
)

func main() {
	// The paper's OPT-13B deployment: [TP-2] prefill + [TP-2] decode on
	// the 8×A800 testbed, 0.25s/0.1s TTFT/TPOT SLOs (Tables 3–4).
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		log.Fatal(err)
	}

	// 500 chatbot requests at 4 req/s per GPU — the high-load regime where
	// the paper's Fig. 10 separates the systems.
	trace := windserve.GenerateTrace(windserve.ShareGPT(), 4.0, cfg, 500, 42)

	results, err := windserve.Compare(cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("OPT-13B, ShareGPT, 4 req/s/GPU, 500 requests:")
	for _, res := range results {
		fmt.Printf("  %s\n", res)
	}

	// The numbers to look at, per the paper:
	//   - WindServe's TTFT p50 should be a multiple below DistServe's
	//     (Dynamic Prefill Dispatch drains the prefill queue).
	//   - WindServe's SLO attainment should lead both baselines.
	wind, dist := results[2], results[1]
	fmt.Printf("\nTTFT p50 improvement over DistServe: %.2fx (paper: 1.65-4.28x)\n",
		dist.Summary.TTFTP50.Seconds()/wind.Summary.TTFTP50.Seconds())
	fmt.Printf("Dispatched prefills: %d, async KV transfers: %d\n",
		wind.Dispatched, wind.AsyncXfers)
}
