// Summarization serving: LLaMA2-13B on LongBench-like workloads — long
// prompts (≈2900 tokens), short outputs. This is the regime where KV
// transfer cost dominates (paper §5.2, Fig. 10c/d): WindServe's
// asynchronous transfer hides it, and this example quantifies exactly
// that by also running the no-async ablation.
//
//	go run ./examples/summarization
package main

import (
	"fmt"
	"log"

	"windserve"
)

func main() {
	cfg, err := windserve.NewConfig("LLaMA2-13B")
	if err != nil {
		log.Fatal(err)
	}
	trace := windserve.GenerateTrace(windserve.LongBench(), 1.25, cfg, 400, 42)

	dist, err := windserve.Run(windserve.SystemDistServe, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	wind, err := windserve.Run(windserve.SystemWindServe, cfg, trace)
	if err != nil {
		log.Fatal(err)
	}
	// Ablation: WindServe with DistServe-style serial transfers.
	noAsync := cfg
	noAsync.Wind.DisableAsyncTransfer = true
	windSerial, err := windserve.Run(windserve.SystemWindServe, noAsync, trace)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("LLaMA2-13B, LongBench, 1.25 req/s/GPU, 400 requests:")
	for _, res := range []*windserve.Result{dist, wind, windSerial} {
		name := res.System
		if res == windSerial {
			name += " (serial transfer)"
		}
		fmt.Printf("  %-28s TTFT p50=%v  decodeQ mean=%v  TPOT p99=%v  SLO %.1f%%\n",
			name, res.Summary.TTFTP50, res.Summary.DecodeQueueMean,
			res.Summary.TPOTP99, 100*res.Summary.Attainment)
	}

	// A LongBench prompt's KV is ~2900 tokens; on LLaMA2-13B that is
	// ~2.4 GB — over 100 ms on PCIe. Serial systems put that directly in
	// the decode-start path; WindServe overlaps it with the prefill.
	perReq := float64(2900) * cfg.Model.KVBytesPerToken() / 1e9
	fmt.Printf("\nKV payload per request ≈ %.2f GB; overlapped transfers: %d/%d\n",
		perReq, wind.AsyncXfers, len(trace))
	fmt.Printf("Decode-queue delay hidden by async transfer: %v → %v (mean)\n",
		windSerial.Summary.DecodeQueueMean, wind.Summary.DecodeQueueMean)
}
