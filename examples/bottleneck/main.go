// Bottleneck awareness: the paper's Fig. 12 experiment as an example.
// Deliberately misallocate resources in both directions — a starved
// decode instance ([TP-2, TP-1]) and a redundant one ([TP-2, TP-2]) —
// and watch which SLO binds for DistServe, and how WindServe's two
// dynamic mechanisms (Rescheduling vs Dispatch) each fix one case.
//
//	go run ./examples/bottleneck
package main

import (
	"fmt"
	"log"

	"windserve"
	"windserve/internal/perf"
)

func main() {
	for _, alloc := range []struct {
		name   string
		decode perf.Placement
		rate   float64
	}{
		{"[TP-2, TP-1] (decode starved)", perf.Placement{TP: 1, PP: 1}, 3},
		{"[TP-2, TP-2] (decode redundant)", perf.Placement{TP: 2, PP: 1}, 5},
	} {
		cfg, err := windserve.NewConfig("OPT-13B")
		if err != nil {
			log.Fatal(err)
		}
		cfg.DecodePlace = alloc.decode
		trace := windserve.GenerateTrace(windserve.ShareGPT(), alloc.rate, cfg, 400, 42)

		fmt.Printf("%s @ %.1f req/s/GPU\n", alloc.name, alloc.rate)
		for _, sys := range []windserve.System{windserve.SystemDistServe, windserve.SystemWindServe} {
			res, err := windserve.Run(sys, cfg, trace)
			if err != nil {
				log.Fatal(err)
			}
			s := res.Summary
			fmt.Printf("  %-10s SLO %.1f%% (TTFT-only %.1f%%, TPOT-only %.1f%%)"+
				"  dispatched=%d rescheduled=%d swaps=%d\n",
				res.System, 100*s.Attainment, 100*s.TTFTAttainment, 100*s.TPOTAttainment,
				res.Dispatched, res.Rescheduled, res.DecodeKV.SwapOutEvents)
		}
		fmt.Println()
	}
	fmt.Println("Reading the rows: with a starved decode instance DistServe is")
	fmt.Println("TPOT-limited (decode queue + swapping); WindServe migrates long")
	fmt.Println("decodes to the prefill instance. With a redundant decode instance")
	fmt.Println("DistServe is TTFT-limited (prefill queue); WindServe dispatches")
	fmt.Println("prefills into the decode instance's idle compute.")
}
