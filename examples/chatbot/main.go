// Chatbot capacity planning: sweep per-GPU request rates for an OPT-13B
// chatbot deployment (ShareGPT lengths) and find how far each system can
// be pushed before its SLO attainment collapses — the operator's view of
// the paper's Fig. 10a/11a.
//
//	go run ./examples/chatbot
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"windserve"
)

func main() {
	cfg, err := windserve.NewConfig("OPT-13B")
	if err != nil {
		log.Fatal(err)
	}
	const target = 0.9 // we want 90% of requests inside both SLOs

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rate\tsystem\tTTFT p50\tTPOT p99\tSLO attainment\tgoodput (req/s)")
	best := map[windserve.System]float64{}
	for _, rate := range []float64{2, 3, 4, 5, 6} {
		trace := windserve.GenerateTrace(windserve.ShareGPT(), rate, cfg, 400, 1)
		for _, sys := range []windserve.System{windserve.SystemVLLM, windserve.SystemDistServe, windserve.SystemWindServe} {
			res, err := windserve.Run(sys, cfg, trace)
			if err != nil {
				log.Fatal(err)
			}
			s := res.Summary
			fmt.Fprintf(tw, "%.1f\t%s\t%v\t%v\t%.1f%%\t%.2f\n",
				rate, res.System, s.TTFTP50, s.TPOTP99, 100*s.Attainment, s.ThroughputRPS*s.Attainment)
			if s.Attainment >= target && rate > best[sys] {
				best[sys] = rate
			}
		}
	}
	tw.Flush()

	fmt.Printf("\nHighest per-GPU rate sustaining %.0f%% SLO attainment:\n", 100*target)
	for _, sys := range []windserve.System{windserve.SystemVLLM, windserve.SystemDistServe, windserve.SystemWindServe} {
		if r, ok := best[sys]; ok {
			fmt.Printf("  %-22s %.1f req/s/GPU\n", sys, r)
		} else {
			fmt.Printf("  %-22s below %.0f%% at every tested rate\n", sys, 100*target)
		}
	}
}
