// Package windserve is a simulation-backed reproduction of "WindServe:
// Efficient Phase-Disaggregated LLM Serving with Stream-based Dynamic
// Scheduling" (Feng et al., ISCA 2025).
//
// It provides three complete serving systems over a deterministic
// discrete-event GPU cluster simulator —
//
//   - WindServe: phase disaggregation with a Global Scheduler (Dynamic
//     Prefill Dispatch, Dynamic Rescheduling), stall-free KV migration,
//     asynchronous KV transfer, and stream-based disaggregation;
//   - DistServe: the static phase-disaggregated baseline;
//   - vLLM: the co-located continuous-batching baseline with chunked
//     prefill —
//
// plus workload generators matched to the paper's datasets and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
//	cfg, _ := windserve.NewConfig("OPT-13B")
//	trace := windserve.GenerateTrace(windserve.ShareGPT(), 4.0, cfg, 500, 42)
//	res, _ := windserve.Run(windserve.SystemWindServe, cfg, trace)
//	fmt.Println(res)
//
// All simulation runs on virtual time: a multi-minute serving experiment
// completes in milliseconds and is bit-for-bit reproducible from its seed.
package windserve

import (
	"fmt"
	"io"

	"windserve/internal/metrics"
	"windserve/internal/model"
	"windserve/internal/serve"
	"windserve/internal/workload"
)

// Re-exported core types. The aliases give external users stable names
// for the configuration and result types used throughout the API.
type (
	// Config is the full experiment environment: model, topology,
	// placements, SLOs, engine parameters, and WindServe policy knobs.
	Config = serve.Config
	// Result is one run's digest: latency percentiles, SLO attainment,
	// utilization, and scheduler activity counters.
	Result = serve.Result
	// Request is one inference request of a workload trace.
	Request = workload.Request
	// Dataset is a prompt/output length distribution pair.
	Dataset = workload.Dataset
	// SLO is a TTFT/TPOT target pair.
	SLO = metrics.SLO
	// Summary holds a run's latency and attainment statistics.
	Summary = metrics.Summary
	// Record is one completed request's full latency timeline.
	Record = metrics.Record
	// ModelConfig describes a transformer architecture.
	ModelConfig = model.Config
	// Source yields a workload's requests one at a time in arrival order.
	// RunFrom pulls from it lazily, so million-request horizons never
	// materialize the trace in memory.
	Source = workload.Source
	// StreamPolicy opts a run into bounded-memory streaming metrics
	// (Config.Stream); the zero value keeps the exact recorder.
	StreamPolicy = serve.StreamPolicy
)

// System selects which serving system to simulate.
type System string

// Available systems, including the paper's §5.4 ablations.
const (
	SystemVLLM               System = "vllm"
	SystemDistServe          System = "distserve"
	SystemWindServe          System = "windserve"
	SystemWindServeNoSplit   System = "windserve-no-split"
	SystemWindServeNoResched System = "windserve-no-resche"
)

// Systems lists all selectable systems.
func Systems() []System {
	return []System{SystemVLLM, SystemDistServe, SystemWindServe,
		SystemWindServeNoSplit, SystemWindServeNoResched}
}

// Models lists the built-in model names usable with NewConfig.
func Models() []string {
	return []string{"OPT-13B", "OPT-66B", "LLaMA2-13B", "LLaMA2-70B"}
}

// NewConfig returns the paper's experiment configuration for a model
// name: Table 3 placement, Table 4 SLOs, the Fig. 9 8×A800 testbed, and
// default engine/scheduler parameters. Mutate the returned Config to
// explore other placements or policies.
func NewConfig(modelName string) (Config, error) {
	m, err := model.ByName(modelName)
	if err != nil {
		return Config{}, err
	}
	return serve.DefaultConfig(m)
}

// ShareGPT returns the chatbot workload distribution (paper Table 2).
func ShareGPT() Dataset { return workload.ShareGPT() }

// LongBench returns the summarization workload distribution (Table 2).
func LongBench() Dataset { return workload.LongBench() }

// FixedWorkload returns a degenerate dataset where every request has
// exactly the given prompt and output token counts.
func FixedWorkload(prompt, output, maxContext int) Dataset {
	return workload.Fixed(prompt, output, maxContext)
}

// MixedWorkload blends two datasets: each request draws from a with
// probability weightA, else from b — e.g. chatbot and summarization
// traffic sharing one cluster.
func MixedWorkload(a, b Dataset, weightA float64, maxContext int) Dataset {
	return workload.Mixture(a, b, weightA, maxContext)
}

// GenerateTrace produces n Poisson-arriving requests at ratePerGPU
// requests/s per GPU (the paper's linear scaling rule: the total rate is
// ratePerGPU × the config's GPU count). The dataset's context cap is
// tightened to the serving model's limit.
func GenerateTrace(ds Dataset, ratePerGPU float64, cfg Config, n int, seed int64) []Request {
	if ds.MaxContext > cfg.Model.MaxContext {
		ds.MaxContext = cfg.Model.MaxContext
	}
	gpus := float64(cfg.TotalGPUs())
	g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: ratePerGPU * gpus}, seed)
	return g.Generate(n)
}

// TraceSource is GenerateTrace's pull-based twin: it yields the same n
// requests (bit-identical for the same seed) one at a time, so arbitrarily
// long horizons run in O(1) trace memory. Combine with Config.Stream to
// bound the metrics side too.
func TraceSource(ds Dataset, ratePerGPU float64, cfg Config, n int, seed int64) Source {
	if ds.MaxContext > cfg.Model.MaxContext {
		ds.MaxContext = cfg.Model.MaxContext
	}
	gpus := float64(cfg.TotalGPUs())
	g := workload.NewGenerator(ds, workload.PoissonArrivals{Rate: ratePerGPU * gpus}, seed)
	return g.Source(n)
}

// SaveTrace writes a request trace as JSON, so the identical stream can be
// replayed against other systems or configurations.
func SaveTrace(w io.Writer, reqs []Request) error { return workload.SaveTrace(w, reqs) }

// LoadTrace reads a JSON trace written by SaveTrace.
func LoadTrace(r io.Reader) ([]Request, error) { return workload.LoadTrace(r) }

// WriteRecordsCSV dumps a run's per-request latency records as CSV, for
// CDF and scatter plots (`Result.Records` holds them).
func WriteRecordsCSV(w io.Writer, records []*Record) error {
	return metrics.WriteRecordsCSV(w, records)
}

// Run simulates serving the trace with the chosen system.
func Run(sys System, cfg Config, reqs []Request) (*Result, error) {
	switch sys {
	case SystemVLLM:
		return serve.RunVLLM(cfg, reqs)
	case SystemDistServe:
		return serve.RunDistServe(cfg, reqs)
	case SystemWindServe:
		return serve.RunWindServe(cfg, reqs)
	case SystemWindServeNoSplit:
		return serve.RunWindServeNoSplit(cfg, reqs)
	case SystemWindServeNoResched:
		return serve.RunWindServeNoResched(cfg, reqs)
	default:
		return nil, fmt.Errorf("windserve: unknown system %q", sys)
	}
}

// RunFrom simulates serving requests pulled lazily from src — the
// streaming counterpart of Run. With a generator-backed source
// (TraceSource) and Config.Stream enabled, memory stays O(in-flight +
// retained records) regardless of how many requests the source yields.
func RunFrom(sys System, cfg Config, src Source) (*Result, error) {
	switch sys {
	case SystemVLLM:
		return serve.RunVLLMFrom(cfg, src)
	case SystemDistServe:
		return serve.RunDistServeFrom(cfg, src)
	case SystemWindServe:
		return serve.RunWindServeFrom(cfg, src)
	case SystemWindServeNoSplit:
		cfg.Wind.DisableSBD = true
		return serve.RunWindServeFrom(cfg, src)
	case SystemWindServeNoResched:
		cfg.Wind.DisableResched = true
		return serve.RunWindServeFrom(cfg, src)
	default:
		return nil, fmt.Errorf("windserve: unknown system %q", sys)
	}
}

// Compare runs several systems on the same trace and returns results in
// the order requested.
func Compare(cfg Config, reqs []Request, systems ...System) ([]*Result, error) {
	if len(systems) == 0 {
		systems = []System{SystemVLLM, SystemDistServe, SystemWindServe}
	}
	out := make([]*Result, 0, len(systems))
	for _, s := range systems {
		res, err := Run(s, cfg, reqs)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
