// Command windserve runs one serving simulation and prints its report.
//
// Usage:
//
//	windserve -system windserve -model OPT-13B -dataset sharegpt -rate 4 -n 500
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"windserve"
	"windserve/internal/workload"
)

func main() {
	system := flag.String("system", "windserve", "system: vllm | distserve | windserve | windserve-no-split | windserve-no-resche")
	modelName := flag.String("model", "OPT-13B", "model: OPT-13B | OPT-66B | LLaMA2-13B | LLaMA2-70B")
	dataset := flag.String("dataset", "sharegpt", "dataset: sharegpt | longbench")
	rate := flag.Float64("rate", 4, "per-GPU request rate (req/s)")
	n := flag.Int("n", 500, "number of requests")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	thrd := flag.Float64("thrd", 0, "dispatch threshold as a fraction of the TTFT SLO (0 = default 0.8)")
	verbose := flag.Bool("v", false, "print per-quantile detail")
	traceIn := flag.String("trace", "", "replay a saved JSON trace instead of generating one")
	traceOut := flag.String("save-trace", "", "write the generated trace to this JSON file")
	recordsOut := flag.String("records", "", "write per-request latency records as CSV to this file")
	flag.Parse()

	cfg, err := windserve.NewConfig(*modelName)
	if err != nil {
		fatal(err)
	}
	if *thrd > 0 {
		cfg.Wind.ThresholdFrac = *thrd
	}
	var ds windserve.Dataset
	switch strings.ToLower(*dataset) {
	case "sharegpt":
		ds = windserve.ShareGPT()
	case "longbench":
		ds = windserve.LongBench()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
	var reqs []windserve.Request
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fatal(err)
		}
		reqs, err = workload.LoadTrace(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		reqs = windserve.GenerateTrace(ds, *rate, cfg, *n, *seed)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := workload.SaveTrace(f, reqs); err != nil {
			fatal(err)
		}
		f.Close()
	}

	res, err := windserve.Run(windserve.System(strings.ToLower(*system)), cfg, reqs)
	if err != nil {
		fatal(err)
	}
	if *recordsOut != "" {
		f, err := os.Create(*recordsOut)
		if err != nil {
			fatal(err)
		}
		if err := windserve.WriteRecordsCSV(f, res.Records); err != nil {
			fatal(err)
		}
		f.Close()
	}
	fmt.Printf("%s | %s on %s @ %.2f req/s/GPU (%d requests, seed %d)\n",
		res.System, *modelName, ds.Name, *rate, len(reqs), *seed)
	fmt.Println(res)
	if *verbose {
		s := res.Summary
		fmt.Printf("  TTFT: mean=%v p50=%v p90=%v p99=%v\n", s.TTFTMean, s.TTFTP50, s.TTFTP90, s.TTFTP99)
		fmt.Printf("  TPOT: mean=%v p50=%v p90=%v p99=%v\n", s.TPOTMean, s.TPOTP50, s.TPOTP90, s.TPOTP99)
		fmt.Printf("  queues: prefill mean=%v decode mean=%v decode p99=%v\n",
			s.PrefillQueueMean, s.DecodeQueueMean, s.DecodeQueueP99)
		fmt.Printf("  throughput: %.2f req/s, %.0f tok/s\n", s.ThroughputRPS, s.TokensPerSec)
		fmt.Printf("  utilization: prefill compute %.1f%% / bw %.1f%%, decode compute %.1f%% / bw %.1f%%\n",
			100*res.PrefillComputeUtil, 100*res.PrefillBWUtil, 100*res.DecodeComputeUtil, 100*res.DecodeBWUtil)
		fmt.Printf("  scheduler: dispatched=%d rescheduled=%d backups=%d asyncXfers=%d transfers=%.2f GB swapStall=%.2fs\n",
			res.Dispatched, res.Rescheduled, res.Backups, res.AsyncXfers, res.TransferGB, res.SwapStallSec)
		fmt.Printf("  decode KV: swaps out/in %d/%d, peak blocks %d, failed allocs %d\n",
			res.DecodeKV.SwapOutEvents, res.DecodeKV.SwapInEvents, res.DecodeKV.PeakBlocks, res.DecodeKV.FailedAllocs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "windserve:", err)
	os.Exit(1)
}
