// Command windtrace renders Fig. 7-style execution timelines comparing
// chunked prefill against stream-based disaggregation on one decode
// instance serving three decoding requests when a 2048-token prefill
// arrives.
package main

import (
	"fmt"
	"os"

	"windserve/internal/bench"
)

func main() {
	if _, _, err := bench.ExpFig7(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "windtrace:", err)
		os.Exit(1)
	}
}
