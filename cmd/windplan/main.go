// Command windplan searches placements by simulation, the way DistServe
// plans and WindServe adopts (paper §5.1): every prefill/decode TP×PP pair
// fitting the GPU budget is simulated on a calibration workload and ranked
// by SLO attainment, then per-GPU goodput.
//
//	windplan -model OPT-13B -dataset sharegpt -rate 3 -gpus 4
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"windserve/internal/model"
	"windserve/internal/plan"
	"windserve/internal/workload"
)

func main() {
	modelName := flag.String("model", "OPT-13B", "model to plan for")
	dataset := flag.String("dataset", "sharegpt", "calibration dataset: sharegpt | longbench")
	rate := flag.Float64("rate", 3, "per-GPU request rate (req/s)")
	gpus := flag.Int("gpus", 4, "total GPU budget")
	n := flag.Int("n", 300, "requests per candidate simulation")
	system := flag.String("system", "distserve", "system to evaluate under: distserve | windserve")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	flag.Parse()

	m, err := model.ByName(*modelName)
	if err != nil {
		fatal(err)
	}
	var ds workload.Dataset
	switch strings.ToLower(*dataset) {
	case "sharegpt":
		ds = workload.ShareGPT()
	case "longbench":
		ds = workload.LongBench()
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}

	evals, err := plan.Search(m, ds, *rate, *gpus, plan.Options{
		System: *system, Requests: *n, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("placement search: %s on %s @ %.2f req/s/GPU, %d GPUs, under %s\n\n",
		m.Name, ds.Name, *rate, *gpus, *system)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tplacement\tSLO attainment\tgoodput/GPU\tTTFT p50 (ms)\tTPOT p99 (ms)")
	for i, ev := range evals {
		if ev.Err != nil {
			fmt.Fprintf(tw, "%d\t%v\tFAILED: %v\t\t\t\n", i+1, ev.Candidate, ev.Err)
			continue
		}
		fmt.Fprintf(tw, "%d\t%v\t%.1f%%\t%.3f\t%.1f\t%.1f\n",
			i+1, ev.Candidate, 100*ev.Attainment, ev.GoodputPerGPU, ev.TTFTP50Ms, ev.TPOTP99Ms)
	}
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "windplan:", err)
	os.Exit(1)
}
