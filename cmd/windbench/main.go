// Command windbench regenerates the paper's tables and figures.
//
// Usage:
//
//	windbench [-n requests] [-seed N] exhibit [exhibit ...]
//	windbench all
//
// Exhibits: table1-table4, fig1-fig13, profiler, and the ext-* extension
// studies; run with no arguments for the full list.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"windserve/internal/bench"
	"windserve/internal/fault"
	"windserve/internal/obs"
	"windserve/internal/par"
)

// main delegates to run so deferred profile writers fire before exit.
func main() { os.Exit(run()) }

func run() int {
	n := flag.Int("n", 600, "requests per simulation run")
	seed := flag.Int64("seed", 42, "workload RNG seed")
	parallel := flag.Int("parallel", 0, "max concurrent simulation runs per exhibit (0 = GOMAXPROCS); output is byte-identical at any setting")
	stream := flag.Bool("stream", false, "use the bounded-memory streaming recorder (P² percentile sketches instead of exact percentiles)")
	maxRecords := flag.Int("maxrecords", 0, "per-class record retention cap with -stream (0 = default 10000)")
	csvPath := flag.String("csv", "", "also write the fig10/fig11 sweep rows as CSV to this file")
	faults := flag.String("faults", "", `fault plan for ext-faults and -trace, e.g. "crash:d0@60; degrade@90x0.5+30"`)
	fleetN := flag.Int("fleet", 16, "replica count for ext-fleet-chaos (and ext-fleet-scale when set explicitly)")
	shards := flag.Int("shards", 0, "shard count for fleet runs: partitions replicas across parallel shard simulators; results are byte-identical at any value (0 = sequential; for ext-fleet-scale, restricts the sweep to {1, N})")
	lookahead := flag.String("lookahead", "", "shard-barrier mode for fleet runs: adaptive (default) derives each window end from the global event horizon and runs single-shard windows without a barrier; fixed uses the static lookahead grid; results are byte-identical either way")
	placement := flag.String("placement", "", "replica→shard layout for sharded fleet runs: round-robin (default) or cost (LPT greedy over measured per-replica message counts); placement changes wall clock only, never output")
	scenarioName := flag.String("scenario", "", "restrict ext-scenarios to one named workload scenario (chat, rag, agentic, reasoning, diurnal, mixshift)")
	prefixCache := flag.Bool("prefixcache", false, "restrict ext-scenarios to its prefix-caching-on configurations")
	elasticFlag := flag.Bool("elastic", false, "run ext-fleet-chaos's fleets with the default elastic role-flipping policy (ext-elastic always compares elastic vs static)")
	chaos := flag.String("chaos", "", `chaos plan for ext-fleet-chaos, e.g. "rcrash:r0@60+30; rslow:r1@90x8+60" (default: a crash+partition+slow+cancel schedule scaled to the run)`)
	tracePath := flag.String("trace", "", "run a traced WindServe capture and write its Chrome-trace JSON here (open at ui.perfetto.dev)")
	decisionsPath := flag.String("decisions", "", "write the traced capture's scheduler decision log here as JSONL")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
	memProfile := flag.String("memprofile", "", "write an allocation heap profile to this file on exit")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 && *tracePath == "" && *decisionsPath == "" {
		usage()
		return 2
	}
	par.SetDefault(*parallel)
	o := bench.Options{Requests: *n, Seed: *seed, Parallel: *parallel,
		Stream: *stream, MaxRecords: *maxRecords}
	// ext-mega defaults to a million requests and ext-fleet-chaos to a
	// hundred thousand; an explicit -n overrides both.
	o.MegaRequests = 1_000_000
	o.FleetRequests = 100_000
	o.FleetReplicas = *fleetN
	o.FleetShards = *shards
	o.FleetScaleRequests = 1_000_000
	o.ScenarioRequests = 5_000
	o.ElasticRequests = 20_000
	o.Scenario = *scenarioName
	o.PrefixCache = *prefixCache
	o.Elastic = *elasticFlag
	o.Lookahead = *lookahead
	o.Placement = *placement
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "n":
			o.MegaRequests = *n
			o.FleetRequests = *n
			o.FleetScaleRequests = *n
			o.ScenarioRequests = *n
			o.ElasticRequests = *n
		case "fleet":
			o.FleetScaleReplicas = *fleetN
		}
	})

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "windbench: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "windbench: -cpuprofile: %v\n", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeFile(*memProfile, func(f *os.File) error {
				runtime.GC() // get up-to-date allocation statistics
				return pprof.Lookup("allocs").WriteTo(f, 0)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "windbench: -memprofile: %v\n", err)
			}
		}()
	}

	var plan *fault.Plan
	if *faults != "" {
		var err error
		if plan, err = fault.Parse(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "windbench: -faults: %v\n", err)
			return 2
		}
		plan.Seed = *seed
	}
	var chaosPlan *fault.Plan
	if *chaos != "" {
		var err error
		if chaosPlan, err = fault.Parse(*chaos); err != nil {
			fmt.Fprintf(os.Stderr, "windbench: -chaos: %v\n", err)
			return 2
		}
		chaosPlan.Seed = *seed
	}

	writeCSV := func(rows []bench.Row) error {
		if *csvPath == "" {
			return nil
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		return bench.WriteRowsCSV(f, rows)
	}

	exhibits := map[string]func(io.Writer) error{
		"table1":   bench.ExpTable1,
		"table2":   func(w io.Writer) error { _, err := bench.ExpTable2(o, w); return err },
		"table3":   bench.ExpTable3,
		"table4":   bench.ExpTable4,
		"fig1":     func(w io.Writer) error { _, err := bench.ExpFig1(o, w); return err },
		"fig2":     func(w io.Writer) error { _, err := bench.ExpFig2(o, w); return err },
		"fig3":     func(w io.Writer) error { _, err := bench.ExpFig3(o, w); return err },
		"fig5":     func(w io.Writer) error { _, err := bench.ExpFig5(o, w); return err },
		"fig7":     func(w io.Writer) error { _, _, err := bench.ExpFig7(w); return err },
		"fig8":     func(w io.Writer) error { _, err := bench.ExpFig8(w); return err },
		"fig9":     bench.ExpFig9,
		"profiler": func(w io.Writer) error { _, err := bench.ExpProfiler(w); return err },
		"fig10": func(w io.Writer) error {
			rows, err := bench.ExpFig10(o, w)
			if err != nil {
				return err
			}
			return writeCSV(rows)
		},
		"fig11": func(w io.Writer) error {
			rows, err := bench.ExpFig11(o, w, nil)
			if err != nil {
				return err
			}
			return writeCSV(rows)
		},
		"fig12": func(w io.Writer) error { _, err := bench.ExpFig12(o, w); return err },
		"fig13": func(w io.Writer) error { _, err := bench.ExpFig13(o, w); return err },
		// Extensions beyond the paper's exhibits.
		"ext-hetero":    func(w io.Writer) error { _, err := bench.ExpHetero(o, w); return err },
		"ext-ablations": func(w io.Writer) error { _, err := bench.ExpDesignAblations(o, w); return err },
		"ext-victim":    func(w io.Writer) error { _, err := bench.ExpVictimPolicy(o, w); return err },
		"ext-burst":     func(w io.Writer) error { _, err := bench.ExpBurst(o, w); return err },
		"ext-chunk":     func(w io.Writer) error { _, err := bench.ExpChunkSize(o, w); return err },
		"ext-scale":     func(w io.Writer) error { _, err := bench.ExpScale(o, w); return err },
		"ext-mixed":     func(w io.Writer) error { _, err := bench.ExpMixed(o, w); return err },
		"ext-shift":     func(w io.Writer) error { _, err := bench.ExpShift(o, w); return err },
		"ext-faults":    func(w io.Writer) error { _, err := bench.ExpResilience(o, w, plan); return err },
		"ext-mega":      func(w io.Writer) error { _, err := bench.ExpMega(o, w); return err },
		"ext-fleet-chaos": func(w io.Writer) error {
			_, err := bench.ExpFleetChaos(o, w, chaosPlan)
			return err
		},
		"ext-scenarios":   func(w io.Writer) error { _, err := bench.ExpScenarios(o, w); return err },
		"ext-fleet-scale": func(w io.Writer) error { _, err := bench.ExpFleetScale(o, w); return err },
		"ext-elastic":     func(w io.Writer) error { _, err := bench.ExpElastic(o, w); return err },
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for k := range exhibits {
			// ext-mega's, ext-fleet-chaos's, ext-scenarios's,
			// ext-fleet-scale's, and ext-elastic's runtimes scale with -n
			// (defaults of a million, a hundred thousand, five thousand
			// over a 20-run grid, a million per shard count, and twenty
			// thousand per split), so they only run when named explicitly.
			if k == "ext-mega" || k == "ext-fleet-chaos" || k == "ext-scenarios" || k == "ext-fleet-scale" || k == "ext-elastic" {
				continue
			}
			args = append(args, k)
		}
		sort.Strings(args)
	}
	for _, name := range args {
		exp, ok := exhibits[strings.ToLower(name)]
		if !ok {
			fmt.Fprintf(os.Stderr, "windbench: unknown exhibit %q\n", name)
			return 2
		}
		fmt.Printf("==== %s ====\n", name)
		if err := exp(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "windbench: %s: %v\n", name, err)
			return 1
		}
		fmt.Println()
	}

	if *tracePath != "" || *decisionsPath != "" {
		fmt.Println("==== trace-capture ====")
		art, err := bench.ExpTraceCapture(o, os.Stdout, plan)
		if err != nil {
			fmt.Fprintf(os.Stderr, "windbench: trace capture: %v\n", err)
			return 1
		}
		if *tracePath != "" {
			if err := writeFile(*tracePath, func(f *os.File) error {
				return obs.WriteChromeTrace(f, art.Tracer, art.AllRecords())
			}); err != nil {
				fmt.Fprintf(os.Stderr, "windbench: -trace: %v\n", err)
				return 1
			}
			fmt.Printf("wrote Chrome trace to %s (open at https://ui.perfetto.dev)\n", *tracePath)
		}
		if *decisionsPath != "" {
			if err := writeFile(*decisionsPath, func(f *os.File) error {
				return art.Decisions.WriteJSONL(f)
			}); err != nil {
				fmt.Fprintf(os.Stderr, "windbench: -decisions: %v\n", err)
				return 1
			}
			fmt.Printf("wrote %d scheduler decisions to %s\n", art.Decisions.Len(), *decisionsPath)
		}
	}
	return 0
}

// writeFile creates path, streams through write, and surfaces close errors
// (a full disk shows up at Close, not Write).
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func usage() {
	fmt.Fprintf(os.Stderr, `windbench regenerates the WindServe paper's tables and figures.

usage: windbench [-n requests] [-seed N] exhibit [exhibit ...]
       windbench -trace out.json [-decisions out.jsonl] [-faults PLAN]

exhibits:
  table1  per-layer FLOPs/IO accounting
  table2  dataset statistics vs paper
  table3  placement strategies
  table4  SLOs
  fig1    motivation: DistServe degradation under load
  fig2    prefill/decode instance utilization
  fig3    queuing delays across placements
  fig5    dispatch threshold sweep
  fig7    chunked-prefill vs SBD timelines
  fig8    single-pass interference microbenchmark
  fig9      testbed topology
  profiler  Global Scheduler regression fits (eqs. 1-2)
  fig10   end-to-end latency sweeps (all scenarios)
  fig11   SLO attainment sweeps
  fig12   bottleneck-awareness across allocations
  fig13   ablations (no-split, no-resche)
  all     everything above

extensions (not paper exhibits):
  ext-hetero     heterogeneous prefill hardware (paper §7 proposal)
  ext-ablations  design-knob sweeps (drain threshold, watermark, backups)
  ext-victim     longest-first (WindServe) vs shortest-first (Llumnix) migration victims
  ext-burst      bursty-arrival robustness vs Poisson at equal mean rate
  ext-chunk      vLLM chunked-prefill chunk-size trade-off
  ext-scale      linear scaling across instance counts (multi-instance routing)
  ext-mixed      blended chatbot + summarization workload on one cluster
  ext-shift      load step mid-trace (dynamic adaptation vs static planning)
  ext-faults     fault injection: crash/degrade/cancel recovery and load shedding
                 (customize the plan with -faults "crash:d0@60; cancel@90x0.2")
  ext-mega       million-request horizon: streaming source + bounded-memory
                 metrics; reports sim req/s and peak heap (not part of "all";
                 -n overrides the 1,000,000-request default)
  ext-fleet-chaos  multi-replica fleet under seeded chaos: routing policies ×
                 {clean, chaos}, reporting goodput, SLO, failovers, wasted
                 work, and crash-recovery time (not part of "all"; size with
                 -fleet and -n, override the plan with -chaos
                 "rcrash:r0@60+30; rpart:r1@90+20")
  ext-scenarios  named workload scenarios (chat, rag, agentic, reasoning,
                 diurnal) × {prefix cache off/on} × {prefix-affinity routing
                 off/on}: goodput, TTFT, SLO, and prefix-cache hit ratio per
                 traffic class (not part of "all"; restrict with -scenario
                 and -prefixcache, size with -n)
  ext-fleet-scale  parallel-in-time scaling: one 64-replica fleet run at
                 shard counts {1, 4, 8, NumCPU}, reporting wall seconds,
                 sim req/s, speedup, barrier windows/crossings, and a
                 result digest proving the runs byte-identical; plus a
                 lookahead section (adaptive vs fixed barrier crossings
                 on an idle-heavy diurnal) and a single-testbed section
                 (one DistServe testbed sharded across {1, 2, 4}
                 simulators) (not part of "all"; size with -n and
                 -fleet, pin the sweep with -shards, pick the barrier
                 with -lookahead and placement with -placement)
  ext-elastic    elastic role flipping on the mixshift scenario: static
                 2P/2D, 3P/1D, and 1P/3D splits vs an elastic 2P/2D fleet
                 whose controller flips instances between prefill and
                 decode as the phase mix moves; reports goodput-at-SLO,
                 flip/migration counts, and per-run result digests
                 (not part of "all"; size with -n, pin shards with
                 -shards; -elastic additionally applies the policy to
                 ext-fleet-chaos)

flags:
`)
	flag.PrintDefaults()
}
