module windserve

go 1.22
