// Benchmarks regenerating the paper's tables and figures, one Benchmark
// per exhibit. Each iteration performs the full experiment (all system
// runs for that figure), so ns/op reports the cost of reproducing the
// exhibit; run with -benchtime=1x for a single regeneration:
//
//	go test -bench . -benchtime=1x
//
// The printable rows (what the paper's plots show) are produced by the
// same functions via `go run ./cmd/windbench <exhibit>`, which is also
// what EXPERIMENTS.md records.
package windserve_test

import (
	"io"
	"testing"

	"windserve/internal/bench"
)

// benchOpts keeps the per-iteration cost moderate while preserving the
// statistical shapes the assertions in internal/bench verify.
func benchOpts() bench.Options { return bench.Options{Requests: 300, Seed: 42} }

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.ExpTable1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpTable2(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.ExpTable3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.ExpTable4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig1(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig2(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig3(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig5(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.ExpFig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProfiler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpProfiler(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.ExpFig9(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig10(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig11(benchOpts(), io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig12(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpFig13(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// Extension experiments (beyond the paper's own exhibits).

func BenchmarkExtHetero(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpHetero(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtDesignAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpDesignAblations(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtVictimPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpVictimPolicy(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtBurst(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpBurst(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtChunkSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpChunkSize(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpScale(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMixed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpMixed(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ExpShift(benchOpts(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
